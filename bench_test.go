// Package tracenet's repository-level benchmarks regenerate every table and
// figure of the paper's evaluation, one benchmark per artifact, and report
// the headline numbers as custom metrics:
//
//	go test -bench=. -benchmem
//
// Absolute values come from the simulated substrate, not the authors'
// testbed; EXPERIMENTS.md records the paper-vs-measured comparison.
package tracenet

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"tracenet/internal/collect"
	"tracenet/internal/core"
	"tracenet/internal/daemon"
	"tracenet/internal/experiments"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/telemetry"
	"tracenet/internal/topo"
)

// BenchmarkTable1_Internet2 regenerates Table 1: tracenet over the
// Internet2-like network, reporting the §4.1 exact-match and similarity
// headline numbers.
func BenchmarkTable1_Internet2(b *testing.B) {
	var res *experiments.ResearchResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table1Internet2(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.ExactRate, "exact-%")
	b.ReportMetric(100*res.ExactRateResponsive, "exact-resp-%")
	b.ReportMetric(res.PrefixSimilarity, "prefix-sim")
	b.ReportMetric(res.SizeSimilarity, "size-sim")
	b.ReportMetric(float64(res.Probes), "probes")
}

// BenchmarkTable2_GEANT regenerates Table 2.
func BenchmarkTable2_GEANT(b *testing.B) {
	var res *experiments.ResearchResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table2GEANT(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.ExactRate, "exact-%")
	b.ReportMetric(100*res.ExactRateResponsive, "exact-resp-%")
	b.ReportMetric(res.PrefixSimilarityResponsive, "prefix-sim-resp")
	b.ReportMetric(res.SizeSimilarityResponsive, "size-sim-resp")
	b.ReportMetric(float64(res.Probes), "probes")
}

// BenchmarkTable3_Protocols regenerates Table 3 (ICMP vs UDP vs TCP).
func BenchmarkTable3_Protocols(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table3(7)
		if err != nil {
			b.Fatal(err)
		}
	}
	icmp, udp, tcp := 0, 0, 0
	for _, r := range rows {
		icmp += r.ICMP
		udp += r.UDP
		tcp += r.TCP
	}
	b.ReportMetric(float64(icmp), "icmp-subnets")
	b.ReportMetric(float64(udp), "udp-subnets")
	b.ReportMetric(float64(tcp), "tcp-subnets")
}

// benchISP runs the shared three-vantage campaign once per benchmark
// iteration.
func benchISP(b *testing.B) *experiments.ISPResult {
	b.Helper()
	var res *experiments.ISPResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunISP(7)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkFigure6_Venn regenerates the cross-vantage agreement figure.
func BenchmarkFigure6_Venn(b *testing.B) {
	res := benchISP(b)
	v := res.Figure6()
	fa, _, _ := v.AgreementAll()
	ga, _, _ := v.AgreementAny()
	b.ReportMetric(100*fa, "all-three-%")
	b.ReportMetric(100*ga, "any-other-%")
	b.ReportMetric(float64(v.ABC), "abc-subnets")
}

// BenchmarkFigure7_IPDistribution regenerates the per-ISP IP address
// distribution panels.
func BenchmarkFigure7_IPDistribution(b *testing.B) {
	res := benchISP(b)
	rows := res.Figure7(0)
	for _, d := range rows {
		if d.ISP == "SprintLink" {
			b.ReportMetric(float64(d.Unsubnetized), "sprint-unsub")
		}
		if d.ISP == "NTTAmerica" {
			b.ReportMetric(float64(d.Subnetized), "ntt-sub")
		}
	}
}

// BenchmarkFigure8_SubnetPerISP regenerates the subnet-per-ISP counts.
func BenchmarkFigure8_SubnetPerISP(b *testing.B) {
	res := benchISP(b)
	counts := res.Figure8(0)
	b.ReportMetric(float64(counts["SprintLink"]), "sprint")
	b.ReportMetric(float64(counts["NTTAmerica"]), "ntt")
	b.ReportMetric(float64(counts["Level3"]), "level3")
	b.ReportMetric(float64(counts["AboveNet"]), "abovenet")
}

// BenchmarkFigure9_PrefixDistribution regenerates the prefix-length
// frequency series.
func BenchmarkFigure9_PrefixDistribution(b *testing.B) {
	res := benchISP(b)
	h := res.Figure9(0)
	b.ReportMetric(float64(h[31]), "slash31")
	b.ReportMetric(float64(h[30]), "slash30")
	b.ReportMetric(float64(h[29]), "slash29")
	b.ReportMetric(float64(h[28]), "slash28")
}

// BenchmarkOverheadModel validates the §3.6 probing-cost model.
func BenchmarkOverheadModel(b *testing.B) {
	var points []experiments.OverheadPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Overhead()
		if err != nil {
			b.Fatal(err)
		}
	}
	var maxRatio float64
	for _, p := range points {
		if p.PointToPoint {
			continue
		}
		if r := float64(p.Probes) / float64(p.PaperUpperBound); r > maxRatio {
			maxRatio = r
		}
	}
	b.ReportMetric(maxRatio, "max-cost/paper-bound")
}

// BenchmarkAblationBottomUp compares bottom-up growth with the §3.8
// top-down strawman.
func BenchmarkAblationBottomUp(b *testing.B) {
	var res experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationBottomUp()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Baseline, "bottom-up-probes")
	b.ReportMetric(res.Ablated, "top-down-probes")
}

// BenchmarkAblationHalfFill measures the half-fill stopping rule's savings.
func BenchmarkAblationHalfFill(b *testing.B) {
	var res experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationHalfFill()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Baseline, "guarded-probes")
	b.ReportMetric(res.Ablated, "unguarded-probes")
}

// BenchmarkAblationFluctuation measures the §3.7 two-ingress H6 tolerance
// under load balancing.
func BenchmarkAblationFluctuation(b *testing.B) {
	var res experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationTwoIngress()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Baseline, "two-ingress-members")
	b.ReportMetric(res.Ablated, "single-ingress-members")
}

// BenchmarkAblationRetry measures the §3.8 re-probe-on-silence choice.
func BenchmarkAblationRetry(b *testing.B) {
	var res experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationRetry()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Baseline, "with-retry-subnets")
	b.ReportMetric(res.Ablated, "no-retry-subnets")
}

// BenchmarkCoverage compares traceroute and tracenet discovery yield
// (the Figure 1 motivation).
func BenchmarkCoverage(b *testing.B) {
	var res *experiments.CoverageResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Coverage(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.TracerouteAddrs), "traceroute-addrs")
	b.ReportMetric(float64(res.DiscarteAddrs), "discarte-addrs")
	b.ReportMetric(float64(res.TracenetAddrs), "tracenet-addrs")
	b.ReportMetric(float64(res.Subnets), "subnets")
}

// BenchmarkSingleTrace measures the latency and probe cost of one tracenet
// session over the Figure 3 micro-topology (the library's hot path).
func BenchmarkSingleTrace(b *testing.B) {
	top := topo.Figure3()
	dst := ipv4.MustParseAddr("10.0.5.2")
	b.ResetTimer()
	var probes uint64
	for i := 0; i < b.N; i++ {
		n := netsim.New(top, netsim.Config{})
		port, err := n.PortFor("vantage")
		if err != nil {
			b.Fatal(err)
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
		if _, err := core.Trace(pr, dst, core.Config{}); err != nil {
			b.Fatal(err)
		}
		probes = pr.Stats().Sent
	}
	b.ReportMetric(float64(probes), "probes/trace")
}

// BenchmarkProbeExchange measures the simulator's raw packet path: encode,
// walk, reply, decode.
func BenchmarkProbeExchange(b *testing.B) {
	n := netsim.New(topo.Figure3(), netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		b.Fatal(err)
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{NoRetry: true})
	dst := ipv4.MustParseAddr("10.0.5.2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.Probe(dst, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// fullTelemetry builds a Telemetry over clock with every surface attached and
// writing to io.Discard, so benchmarks measure instrumentation cost without
// I/O noise.
func fullTelemetry(clock telemetry.Clock) *telemetry.Telemetry {
	tel := telemetry.New(clock)
	tel.Recorder = telemetry.NewFlightRecorder(telemetry.DefaultFlightRecorderSize)
	tel.Tracer = telemetry.NewTracer(io.Discard)
	return tel
}

// BenchmarkSingleTraceTelemetry is BenchmarkSingleTrace with the full
// observability pipeline attached: the delta against the bare benchmark is
// the enabled-telemetry overhead of a session.
func BenchmarkSingleTraceTelemetry(b *testing.B) {
	top := topo.Figure3()
	dst := ipv4.MustParseAddr("10.0.5.2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := netsim.New(top, netsim.Config{})
		port, err := n.PortFor("vantage")
		if err != nil {
			b.Fatal(err)
		}
		tel := fullTelemetry(n)
		n.SetTelemetry(tel)
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true, Telemetry: tel})
		if _, err := core.Trace(pr, dst, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbeExchangeTelemetry is BenchmarkProbeExchange with telemetry
// enabled on the probe hot path.
func BenchmarkProbeExchangeTelemetry(b *testing.B) {
	n := netsim.New(topo.Figure3(), netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		b.Fatal(err)
	}
	tel := fullTelemetry(n)
	n.SetTelemetry(tel)
	pr := probe.New(port, port.LocalAddr(), probe.Options{NoRetry: true, Telemetry: tel})
	dst := ipv4.MustParseAddr("10.0.5.2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.Probe(dst, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineVsOffline compares tracenet with the offline
// subnet-inference baseline [7].
func BenchmarkOnlineVsOffline(b *testing.B) {
	var res *experiments.OnlineVsOfflineResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.OnlineVsOffline(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.OfflineExact, "offline-exact-%")
	b.ReportMetric(100*res.OnlineExact, "online-exact-%")
}

// BenchmarkRouterMap runs the tracenet + alias-resolution pipeline.
func BenchmarkRouterMap(b *testing.B) {
	var res *experiments.RouterMapResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RouterMap(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Precision, "precision")
	b.ReportMetric(res.Recall, "recall")
	b.ReportMetric(float64(res.ProbesWithConstraint), "probes-constrained")
	b.ReportMetric(float64(res.ProbesWithout), "probes-unconstrained")
}

// rttTransport models a real probe's round-trip latency on top of the
// simulated substrate: every exchange sleeps for rtt before forwarding.
// Campaign probing — like real traceroute probing — is latency-bound, not
// CPU-bound; this is the regime where parallel workers pay off, because
// their RTT waits overlap.
type rttTransport struct {
	inner probe.Transport
	rtt   time.Duration
}

func (t rttTransport) Exchange(raw []byte) ([]byte, error) {
	time.Sleep(t.rtt)
	return t.inner.Exchange(raw)
}

// ExchangeAppend forwards the zero-alloc reply path when the wrapped
// transport has one, so modelling latency doesn't silently knock the campaign
// off the fast path it is supposed to measure.
func (t rttTransport) ExchangeAppend(raw, dst []byte) ([]byte, error) {
	time.Sleep(t.rtt)
	if ea, ok := t.inner.(probe.ExchangeAppender); ok {
		return ea.ExchangeAppend(raw, dst)
	}
	reply, err := t.inner.Exchange(raw)
	if err != nil || reply == nil {
		return nil, err
	}
	return append(dst, reply...), nil
}

// Wait forwards retry-backoff waits so the simulator's virtual clock (and its
// rate-limit buckets) advance as they would on the unwrapped port.
func (t rttTransport) Wait(ticks uint64) {
	if w, ok := t.inner.(probe.Waiter); ok {
		w.Wait(ticks)
	}
}

// benchCampaign runs one full collection over a fresh network per iteration.
func benchCampaign(b *testing.B, tp *netsim.Topology, targets []ipv4.Addr, parallel int, rtt time.Duration) {
	b.Helper()
	var stats collect.Stats
	for i := 0; i < b.N; i++ {
		n := netsim.New(tp, netsim.Config{Seed: 7})
		rep, err := collect.Run(context.Background(), collect.Config{
			Targets:  targets,
			Parallel: parallel,
			Probe:    probe.Options{Cache: true},
			Dial: func(opts probe.Options) (*probe.Prober, error) {
				port, err := n.PortFor("vantage")
				if err != nil {
					return nil, err
				}
				var tr probe.Transport = port
				if rtt > 0 {
					tr = rttTransport{inner: port, rtt: rtt}
				}
				return probe.New(tr, port.LocalAddr(), opts), nil
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		stats = rep.Stats
	}
	b.ReportMetric(float64(stats.WireProbes), "wire-probes")
	b.ReportMetric(float64(stats.ProbesSaved), "probes-saved")
}

// BenchmarkCampaign measures the parallel multi-destination collection engine
// (internal/collect) on a 24-leaf random topology whose destinations share an
// 8-router backbone. The merged topology and metrics exposition are
// byte-identical across worker counts (test-asserted in internal/collect);
// the sub-benchmarks expose what varies — wall clock — and the cache's
// schedule-independent wire-probe savings.
//
// Two regimes per worker count: rtt=0 is engine-bound, fast enough that the
// harness gets a stable iteration count (the headline for simulator-path
// regressions), while rtt=50µs is the latency-bound regime real probing
// lives in, where the parallel=8/parallel=1 wall-clock ratio is the
// lock-contention gauge — overlapped sleeps scale freely, so any shortfall
// from ~8x is serialization inside the exchange path.
func BenchmarkCampaign(b *testing.B) {
	spec := topo.RandomSpec{Seed: 42, Backbone: 8, Leaves: 24, LANFraction: 0.25, ExtraLinks: 2}
	tp, targets := topo.Random(spec)
	for _, rtt := range []time.Duration{0, 50 * time.Microsecond} {
		for _, parallel := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("rtt=%s/parallel=%d", rtt, parallel), func(b *testing.B) {
				benchCampaign(b, tp, targets, parallel, rtt)
			})
		}
	}
}

// BenchmarkCampaignScaling is the parallel-efficiency curve: the 50µs-RTT
// latency-bound regime over 96 destinations, enough work units that the
// longest single trace no longer dominates the tail and the wall-clock ratio
// across worker counts reflects exchange-path serialization alone. With the
// simulator's injection path lock-free, parallel=8 lands at or above 7x over
// parallel=1; a drop in this curve means a shared lock crept back into the
// probe hot path.
func BenchmarkCampaignScaling(b *testing.B) {
	spec := topo.RandomSpec{Seed: 42, Backbone: 8, Leaves: 96, LANFraction: 0.25, ExtraLinks: 2}
	tp, targets := topo.Random(spec)
	for _, parallel := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", parallel), func(b *testing.B) {
			benchCampaign(b, tp, targets, parallel, 50*time.Microsecond)
		})
	}
}

// BenchmarkCampaign10k measures collection at survey scale: every address of
// every subnet on a ~1000-leaf random topology, truncated to ten thousand
// destinations — live hosts, dead addresses awaiting their retry budget, and
// transit links answering with unreachables. Engine-bound (no modelled RTT)
// under full worker concurrency, this is the scheduler, cache, and sharded
// simulator under the workload shape of a real survey sweep.
func BenchmarkCampaign10k(b *testing.B) {
	spec := topo.RandomSpec{Seed: 42, Backbone: 32, Leaves: 1024, LANFraction: 0.5, ExtraLinks: 8}
	tp, _ := topo.Random(spec)
	var targets []ipv4.Addr
	for _, s := range tp.Subnets {
		for a := s.Prefix.Base(); a < s.Prefix.Base()+ipv4.Addr(s.Prefix.Size()) && len(targets) < 10000; a++ {
			targets = append(targets, a)
		}
		if len(targets) == 10000 {
			break
		}
	}
	if len(targets) < 10000 {
		b.Fatalf("topology yields only %d destinations", len(targets))
	}
	b.ResetTimer()
	benchCampaign(b, tp, targets, 8, 0)
}

// BenchmarkCampaignProgress measures what live progress tracking costs the
// campaign engine: the same 24-leaf collection run with and without a
// collect.Progress attached (the state behind the observability plane's
// /campaigns endpoint and health checks). The per-probe accounting is pure
// atomics (probe.Activity), so the delta must stay in the noise; the
// per-probe zero-allocation claim is separately pinned by the allocbudget
// gate and TestActivityMarkZeroAlloc.
func BenchmarkCampaignProgress(b *testing.B) {
	spec := topo.RandomSpec{Seed: 42, Backbone: 8, Leaves: 24, LANFraction: 0.25, ExtraLinks: 2}
	for _, tracked := range []bool{false, true} {
		name := "off"
		if tracked {
			name = "on"
		}
		b.Run("progress="+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tp, targets := topo.Random(spec)
				n := netsim.New(tp, netsim.Config{Seed: 7})
				cfg := collect.Config{
					Targets:  targets,
					Parallel: 4,
					Probe:    probe.Options{Cache: true},
					Dial: func(opts probe.Options) (*probe.Prober, error) {
						port, err := n.PortFor("vantage")
						if err != nil {
							return nil, err
						}
						return probe.New(port, port.LocalAddr(), opts), nil
					},
				}
				if tracked {
					cfg.Progress = collect.NewProgress()
				}
				if _, err := collect.Run(context.Background(), cfg); err != nil {
					b.Fatal(err)
				}
				if tracked && !cfg.Progress.Finished() {
					b.Fatal("progress never reported finished")
				}
			}
		})
	}
}

// BenchmarkAccuracy runs the ground-truth accuracy ensemble (DESIGN.md §10)
// and reports the per-regime subnet/address precision and recall, so
// BENCH_*.json baselines record what the collector gets RIGHT alongside what
// it costs. The committed floors in internal/experiments gate regressions;
// this benchmark makes the actual values diffable across baselines.
func BenchmarkAccuracy(b *testing.B) {
	var results []*experiments.AccuracyResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.AccuracySweep(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, res := range results {
		r := string(res.Regime)
		b.ReportMetric(res.SubnetPrecision, r+"-subnet-prec")
		b.ReportMetric(res.SubnetRecall, r+"-subnet-rec")
		b.ReportMetric(res.AddrPrecision, r+"-addr-prec")
		b.ReportMetric(res.AddrRecall, r+"-addr-rec")
	}
}

// BenchmarkDaemonThroughput measures the tracenetd scheduler end to end:
// each iteration starts a daemon over a fresh spool, pushes a batch of
// single-target campaigns through the HTTP-facing submission path
// (daemon.Submit), and waits for the scheduler to land every one — spool
// journaling, tenant accounting, and artifact rendering included.
func BenchmarkDaemonThroughput(b *testing.B) {
	const campaigns = 8
	for i := 0; i < b.N; i++ {
		d, err := daemon.New(daemon.Config{Spool: b.TempDir(), Concurrent: 4})
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Start(); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < campaigns; j++ {
			if _, err := d.Submit(&daemon.Spec{Tenant: "bench", Topology: "figure3"}); err != nil {
				b.Fatal(err)
			}
		}
		for {
			done := 0
			for _, doc := range d.List() {
				if doc.Status != "queued" && doc.Status != "running" {
					done++
				}
			}
			if done == campaigns {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
		if err := d.Drain(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(campaigns, "campaigns/op")
}
