// Multivantage: the §4.2 cross-validation methodology. Three vantage points
// trace a common target set into four ISP cores; the subnets each collects
// are compared region by region, reproducing Figure 6's observation that
// around 60% of a vantage point's subnets are seen by all three and roughly
// 80% by at least one other.
//
//	go run ./examples/multivantage
package main

import (
	"fmt"
	"log"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/metrics"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

func main() {
	const structSeed = 7

	collected := make([]map[ipv4.Prefix]bool, len(topo.VantageNames))
	for i, vantage := range topo.VantageNames {
		// Every campaign sees the same network structure but its own
		// responsiveness conditions (campaign seed), like measurement
		// campaigns run at different times.
		sc := topo.ISPCores(structSeed, structSeed+int64(i+1)*1000)
		network := netsim.New(sc.Topo, netsim.Config{LossRate: 0.02, Seed: int64(i) * 101})
		port, err := network.PortFor(vantage)
		if err != nil {
			log.Fatal(err)
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true, FlowID: uint16(7 + i)})
		sess := core.NewSession(pr, core.Config{})
		for _, target := range sc.TargetsFor() {
			if _, err := sess.Trace(target); err != nil {
				log.Fatal(err)
			}
		}
		collected[i] = map[ipv4.Prefix]bool{}
		for _, s := range sess.Subnets() {
			if s.Prefix.Bits() < 32 {
				collected[i][s.Prefix] = true
			}
		}
		fmt.Printf("%-8s collected %4d subnets with %6d probes\n",
			vantage, len(collected[i]), pr.Stats().Sent)
	}

	v := metrics.VennOf(collected[0], collected[1], collected[2])
	fmt.Printf("\nVenn regions (paper Figure 6):\n")
	fmt.Printf("  only %-8s %4d\n", topo.VantageNames[0], v.OnlyA)
	fmt.Printf("  only %-8s %4d\n", topo.VantageNames[1], v.OnlyB)
	fmt.Printf("  only %-8s %4d\n", topo.VantageNames[2], v.OnlyC)
	fmt.Printf("  two vantages  %4d / %4d / %4d\n", v.AB, v.AC, v.BC)
	fmt.Printf("  all three     %4d\n", v.ABC)
	fa, fb, fc := v.AgreementAll()
	ga, gb, gc := v.AgreementAny()
	fmt.Printf("\nobserved by all three:          %.0f%% / %.0f%% / %.0f%%  (paper: ~60%%)\n",
		100*fa, 100*fb, 100*fc)
	fmt.Printf("observed by at least one other: %.0f%% / %.0f%% / %.0f%%  (paper: ~80%%)\n",
		100*ga, 100*gb, 100*gc)
}
