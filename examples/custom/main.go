// Custom: build your own simulated network with the netsim Builder and run
// tracenet over it — the path a downstream user takes to test collection
// behaviour against a topology of their choosing (or to regression-test a
// production network's numbering plan before deployment).
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
)

func main() {
	// A small enterprise-like network: an edge router, a firewall-protected
	// management LAN, a dual-homed server LAN, and an anonymous core hop.
	b := netsim.NewBuilder()

	vantage := b.Host("vantage")
	edge := b.Router("edge")
	coreRtr := b.Router("core")
	distA := b.Router("dist-a")
	distB := b.Router("dist-b")
	server := b.Host("server")

	access := b.Subnet("192.0.2.0/30")
	b.Attach(vantage, access, "192.0.2.1")
	b.Attach(edge, access, "192.0.2.2")

	uplink := b.Subnet("10.10.0.0/31")
	b.Attach(edge, uplink, "10.10.0.0")
	b.Attach(coreRtr, uplink, "10.10.0.1")

	// The core router stays anonymous for TTL-scoped probes — a common
	// enterprise configuration.
	coreRtr.IndirectPolicy = netsim.PolicyNil

	// Management LAN behind a probe-dropping firewall.
	mgmt := b.Subnet("10.10.8.0/29")
	b.Attach(coreRtr, mgmt, "10.10.8.1")
	b.Attach(distA, mgmt, "10.10.8.2")
	mgmt.Unresponsive = true

	// Server LAN, well utilized.
	srvLAN := b.Subnet("10.10.16.0/29")
	b.Attach(coreRtr, srvLAN, "10.10.16.1")
	b.Attach(distA, srvLAN, "10.10.16.2")
	b.Attach(distB, srvLAN, "10.10.16.3")
	for i := 4; i <= 5; i++ {
		r := b.Router(fmt.Sprintf("srv%d", i))
		b.AttachA(r, srvLAN, ipv4.MustParseAddr("10.10.16.0")+ipv4.Addr(i))
	}

	hosting := b.Subnet("10.10.24.0/30")
	b.Attach(distB, hosting, "10.10.24.1")
	b.Attach(server, hosting, "10.10.24.2")

	topology, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	network := netsim.New(topology, netsim.Config{})
	port, err := network.PortFor("vantage")
	if err != nil {
		log.Fatal(err)
	}
	prober := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	session := core.NewSession(prober, core.Config{})

	res, err := session.Trace(ipv4.MustParseAddr("10.10.24.2"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
	fmt.Println("\nwhat tracenet sees of this network:")
	for _, s := range session.Subnets() {
		fmt.Printf("  %v\n", s)
	}
	fmt.Println("\nnote: the anonymous core hop is bridged, and the firewalled")
	fmt.Println("management LAN 10.10.8.0/29 is invisible — exactly the paper's")
	fmt.Println("'totally unresponsive subnet' class.")
}
