// Overlay: the paper's Figure 2 motivation. An overlay designer wants node-
// and link-disjoint paths A→D and B→C. Traceroute reports two address lists
// with nothing in common, so the paths look disjoint — but routers R2, R4,
// R5, and R8 share one multi-access LAN, and both paths cross it. tracenet
// groups the per-path addresses into subnets and exposes the shared link.
//
//	go run ./examples/overlay
package main

import (
	"fmt"
	"log"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
	"tracenet/internal/trace"
)

func main() {
	topology := topo.Figure2()
	network := netsim.New(topology, netsim.Config{})

	// Path P1: A → D via R1 (host A is dual-homed to R1 and R3; the flow
	// identifier steers the equal-cost choice, so pick a flow that uses the
	// R1 branch — the paper's P1). Path P3: B → C.
	pathAD := tracePath(network, "A", "10.2.3.1", 0)
	for flow := uint16(1); flow <= 64; flow++ {
		if len(pathAD.route.Addrs()) > 0 && pathAD.route.Addrs()[0] == ipv4.MustParseAddr("10.2.0.2") {
			break
		}
		pathAD = tracePath(network, "A", "10.2.3.1", flow)
	}
	pathBC := tracePath(network, "B", "10.2.2.1", 0)

	fmt.Println("traceroute view:")
	fmt.Printf("  A->D: %v\n", pathAD.route.Addrs())
	fmt.Printf("  B->C: %v\n", pathBC.route.Addrs())
	shared := sharedAddrs(pathAD.route.Addrs(), pathBC.route.Addrs())
	if shared == 0 {
		fmt.Println("  shared addresses: 0 -> traceroute calls the paths link-disjoint")
	} else {
		fmt.Printf("  shared addresses: %d\n", shared)
	}
	fmt.Println()

	fmt.Println("tracenet view:")
	fmt.Printf("  A->D subnets: %v\n", prefixes(pathAD.subnets))
	fmt.Printf("  B->C subnets: %v\n", prefixes(pathBC.subnets))
	overlaps := sharedSubnets(pathAD.subnets, pathBC.subnets)
	if len(overlaps) == 0 {
		fmt.Println("  no shared subnets found (unexpected for Figure 2)")
		return
	}
	fmt.Println("  shared LANs detected:")
	for _, o := range overlaps {
		fmt.Printf("    %v and %v overlap -> P1 and P3 are NOT link-disjoint\n", o[0], o[1])
	}
}

type pathResult struct {
	route   *trace.Route
	subnets []*core.Subnet
}

func tracePath(network *netsim.Network, vantage, dest string, flowID uint16) pathResult {
	port, err := network.PortFor(vantage)
	if err != nil {
		log.Fatal(err)
	}
	dst := ipv4.MustParseAddr(dest)

	prober := probe.New(port, port.LocalAddr(), probe.Options{Cache: true, FlowID: flowID})
	route, err := trace.Run(prober, dst, trace.Options{})
	if err != nil {
		log.Fatal(err)
	}

	prober2 := probe.New(port, port.LocalAddr(), probe.Options{Cache: true, FlowID: flowID})
	res, err := core.Trace(prober2, dst, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	return pathResult{route: route, subnets: res.Subnets}
}

func sharedAddrs(a, b []ipv4.Addr) int {
	seen := map[ipv4.Addr]bool{}
	for _, x := range a {
		seen[x] = true
	}
	n := 0
	for _, x := range b {
		if seen[x] {
			n++
		}
	}
	return n
}

func prefixes(subs []*core.Subnet) []ipv4.Prefix {
	var out []ipv4.Prefix
	for _, s := range subs {
		if s.Prefix.Bits() < 32 {
			out = append(out, s.Prefix)
		}
	}
	return out
}

// sharedSubnets reports pairs of collected subnets (one per path) whose
// address ranges overlap: the same physical LAN seen from two paths.
func sharedSubnets(a, b []*core.Subnet) [][2]ipv4.Prefix {
	var out [][2]ipv4.Prefix
	for _, sa := range a {
		if sa.Prefix.Bits() >= 32 {
			continue
		}
		for _, sb := range b {
			if sb.Prefix.Bits() >= 32 {
				continue
			}
			if sa.Prefix.Overlaps(sb.Prefix) {
				out = append(out, [2]ipv4.Prefix{sa.Prefix, sb.Prefix})
			}
		}
	}
	return out
}
