// Routermap: the downstream pipeline the paper motivates in §1 — from raw
// probes to a router-level map. tracenet collects the subnets along several
// paths, the subnet map assembles them, and Ally-style alias resolution
// (pruned by tracenet's same-subnet constraint) groups the interfaces into
// routers.
//
//	go run ./examples/routermap
package main

import (
	"fmt"
	"log"

	"tracenet/internal/alias"
	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
	"tracenet/internal/topomap"
)

func main() {
	topology := topo.Figure3()
	network := netsim.New(topology, netsim.Config{})
	port, err := network.PortFor("vantage")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Collect subnets along three paths.
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	sess := core.NewSession(pr, core.Config{})
	m := topomap.New()
	for _, dst := range []string{"10.0.5.2", "10.0.4.1", "10.0.3.1"} {
		res, err := sess.Trace(ipv4.MustParseAddr(dst))
		if err != nil {
			log.Fatal(err)
		}
		m.AddSession(res)
	}
	fmt.Println("subnet-level map:")
	fmt.Print(m)

	// 2. Group the interfaces into routers with Ally, using the subnets to
	// prune candidate pairs.
	var subnets [][]ipv4.Addr
	var addrs []ipv4.Addr
	seen := map[ipv4.Addr]bool{}
	for _, e := range m.Subnets() {
		subnets = append(subnets, e.Addrs)
		for _, a := range e.Addrs {
			if iface := topology.IfaceByAddr(a); iface != nil && iface.Router.IsHost {
				continue // hosts are not part of the router-level map
			}
			if !seen[a] {
				seen[a] = true
				addrs = append(addrs, a)
			}
		}
	}
	rv := alias.NewResolver(port, port.LocalAddr())
	groups, err := rv.Resolve(addrs, alias.SameSubnetConstraint(subnets))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nrouter-level map (%d probes for alias resolution):\n", rv.Probes())
	for i, g := range groups {
		fmt.Printf("  router %d: %v\n", i+1, g)
	}
	fmt.Println("\nground truth for comparison:")
	for _, r := range topology.Routers {
		if r.IsHost {
			continue
		}
		var ifaces []ipv4.Addr
		for _, i := range r.Ifaces {
			ifaces = append(ifaces, i.Addr)
		}
		fmt.Printf("  %s: %v\n", r.Name, ifaces)
	}
}
