// Protocols: the Table 3 methodology. The same tracenet session is run with
// ICMP, UDP, and TCP probe packets against one ISP core; the number of
// collected subnets per protocol reproduces the paper's finding that ICMP
// clearly outperforms UDP, and TCP is negligible.
//
//	go run ./examples/protocols
package main

import (
	"fmt"
	"log"

	"tracenet/internal/core"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

func main() {
	const seed = 7
	for _, proto := range []probe.Protocol{probe.ICMP, probe.UDP, probe.TCP} {
		// A fresh but identical network per protocol run.
		sc := topo.ISPCores(seed, seed+1000)
		network := netsim.New(sc.Topo, netsim.Config{Seed: seed})
		port, err := network.PortFor(topo.VantageNames[0])
		if err != nil {
			log.Fatal(err)
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true, Protocol: proto})
		sess := core.NewSession(pr, core.Config{})
		for _, target := range sc.TargetsFor() {
			if _, err := sess.Trace(target); err != nil {
				log.Fatal(err)
			}
		}
		perISP := map[string]int{}
		total := 0
		for _, s := range sess.Subnets() {
			if s.Prefix.Bits() >= 32 {
				continue
			}
			if p := sc.ISPOf(s.Prefix.Base()); p != nil {
				perISP[p.Name]++
				total++
			}
		}
		fmt.Printf("%-5s -> %4d subnets (", proto, total)
		for i, p := range sc.Profiles {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s %d", p.Name, perISP[p.Name])
		}
		fmt.Printf("), %d probes\n", pr.Stats().Sent)
	}
	fmt.Println("\npaper Table 3 totals: ICMP 11995, UDP 3779, TCP 68 (scaled ~1:10 here)")
}
