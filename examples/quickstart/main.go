// Quickstart: build a small simulated network, run traceroute and tracenet
// toward the same destination, and compare what each sees.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
	"tracenet/internal/trace"
)

func main() {
	// The paper's Figure 3 scene: a multi-access subnet S with four routers
	// between the vantage point and the destination.
	topology := topo.Figure3()
	network := netsim.New(topology, netsim.Config{})

	port, err := network.PortFor("vantage")
	if err != nil {
		log.Fatal(err)
	}
	dst := ipv4.MustParseAddr("10.0.5.2")

	// 1. Classic traceroute: one address per hop.
	prober := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	route, err := trace.Run(prober, dst, trace.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("traceroute view:")
	fmt.Print(route)
	fmt.Printf("-> %d addresses, %d probes\n\n", len(route.Addrs()), prober.Stats().Sent)

	// 2. tracenet: the complete subnet at every hop.
	prober2 := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	res, err := core.Trace(prober2, dst, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tracenet view:")
	fmt.Print(res)
	fmt.Println("\ncollected subnets:")
	for _, s := range res.Subnets {
		kind := "multi-access LAN"
		if s.PointToPoint() {
			kind = "point-to-point"
		}
		fmt.Printf("  %v  (%s, %d interfaces)\n", s, kind, len(s.Addrs))
	}
	fmt.Printf("-> %d addresses, %d probes\n", res.AddrCount(), prober2.Stats().Sent)
}
