// Package discarte implements the record-route baseline the paper cites in
// its related work (§2): "Discarte project sets record-route option of probe
// packets to force the compliant routers to stamp the packets with outgoing
// IP address. As a result, it obtains two IP addresses per hop."
//
// The collector runs a TTL-scoped trace with the RR option set: each hop
// yields the ICMP time-exceeded source (one address) plus, for the first
// nine hops (the RR option's slot limit) and compliant routers only, the
// outgoing interface stamped by the router one position earlier. It is a
// useful comparator between plain traceroute and tracenet: more addresses
// than the former, far fewer than the latter, and no subnet structure.
package discarte

import (
	"fmt"
	"strings"

	"tracenet/internal/ipv4"
	"tracenet/internal/probe"
)

// Hop is one row of a record-route trace.
type Hop struct {
	TTL int
	// Addr is the ICMP responder (as in plain traceroute); Zero if silent.
	Addr ipv4.Addr
	// Stamped is the outgoing interface recorded by this hop's router,
	// recovered from the stamps of deeper probes (Zero when the router is
	// non-compliant or beyond the nine-slot RR limit).
	Stamped ipv4.Addr
	Kind    probe.Kind
}

// Route is a completed record-route trace.
type Route struct {
	Dst     ipv4.Addr
	Hops    []Hop
	Reached bool
}

// Addrs returns all distinct addresses discovered: responders and stamps.
func (r *Route) Addrs() []ipv4.Addr {
	seen := map[ipv4.Addr]bool{}
	var out []ipv4.Addr
	add := func(a ipv4.Addr) {
		if !a.IsZero() && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, h := range r.Hops {
		add(h.Addr)
		add(h.Stamped)
	}
	return out
}

// String renders the route, two addresses per hop where available.
func (r *Route) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "discarte trace to %v (%d hops, reached=%v)\n", r.Dst, len(r.Hops), r.Reached)
	for _, h := range r.Hops {
		in := "*"
		if !h.Addr.IsZero() {
			in = h.Addr.String()
		}
		out := "-"
		if !h.Stamped.IsZero() {
			out = h.Stamped.String()
		}
		fmt.Fprintf(&b, "%3d  in %-15s out %s\n", h.TTL, in, out)
	}
	return b.String()
}

// Options configure a record-route trace.
type Options struct {
	// MaxTTL bounds the trace length. Default 30.
	MaxTTL int
	// MaxConsecutiveGaps ends the trace after this many silent hops. Default 4.
	MaxConsecutiveGaps int
}

// Run performs a record-route trace. The prober must have been created with
// probe.Options.RecordRoute set; Run returns an error otherwise (the stamps
// would silently be missing).
func Run(p *probe.Prober, dst ipv4.Addr, opts Options) (*Route, error) {
	if opts.MaxTTL == 0 {
		opts.MaxTTL = 30
	}
	if opts.MaxConsecutiveGaps == 0 {
		opts.MaxConsecutiveGaps = 4
	}
	route := &Route{Dst: dst}
	// stamps[i] is the outgoing interface of the router at hop i+1, learned
	// from the deepest probe that traversed it.
	var stamps []ipv4.Addr
	gaps := 0
	for ttl := 1; ttl <= opts.MaxTTL; ttl++ {
		res, err := p.Probe(dst, ttl)
		if err != nil {
			return route, err
		}
		route.Hops = append(route.Hops, Hop{TTL: ttl, Addr: res.From, Kind: res.Kind})
		// A probe expiring at hop d carries stamps from the first d-1
		// routers (bounded by slots and compliance); keep the longest run.
		if len(res.Recorded) > len(stamps) {
			stamps = res.Recorded
		}
		switch {
		case res.Alive():
			route.Reached = true
			ttl = opts.MaxTTL // done
		case res.Silent():
			gaps++
			if gaps >= opts.MaxConsecutiveGaps {
				ttl = opts.MaxTTL
			}
		default:
			gaps = 0
		}
		if route.Reached || gaps >= opts.MaxConsecutiveGaps {
			break
		}
	}
	// Attribute stamp i to hop i+1 (the router that forwarded and stamped).
	for i, s := range stamps {
		if i < len(route.Hops) {
			route.Hops[i].Stamped = s
		}
	}
	return route, nil
}
