package discarte

import (
	"strings"
	"testing"

	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
	"tracenet/internal/trace"
)

func addr(s string) ipv4.Addr { return ipv4.MustParseAddr(s) }

func prober(t *testing.T, topol *netsim.Topology, opts probe.Options) *probe.Prober {
	t.Helper()
	n := netsim.New(topol, netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	opts.RecordRoute = true
	return probe.New(port, port.LocalAddr(), opts)
}

func TestTwoAddressesPerHop(t *testing.T) {
	p := prober(t, topo.Figure3(), probe.Options{Cache: true})
	route, err := Run(p, addr("10.0.5.2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !route.Reached {
		t.Fatalf("not reached:\n%v", route)
	}
	// Hop 1 (R1): responder 10.0.0.2 (incoming), stamp 10.0.1.0 (outgoing
	// toward R2) — the paper's "two IP addresses per hop".
	h1 := route.Hops[0]
	if h1.Addr != addr("10.0.0.2") {
		t.Errorf("hop 1 responder = %v", h1.Addr)
	}
	if h1.Stamped != addr("10.0.1.0") {
		t.Errorf("hop 1 stamp = %v, want R1's outgoing 10.0.1.0", h1.Stamped)
	}
	// Hop 2 (R2): responder 10.0.1.1, stamp = R2's iface onto S.
	h2 := route.Hops[1]
	if h2.Addr != addr("10.0.1.1") || h2.Stamped != addr("10.0.2.1") {
		t.Errorf("hop 2 = %+v, want responder 10.0.1.1 stamp 10.0.2.1", h2)
	}
}

func TestMoreThanTracerouteLessThanTracenet(t *testing.T) {
	top := topo.Figure3()
	// Plain traceroute.
	pPlain := func() *probe.Prober {
		n := netsim.New(top, netsim.Config{})
		port, _ := n.PortFor("vantage")
		return probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	}()
	plain, err := trace.Run(pPlain, addr("10.0.5.2"), trace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Record-route trace.
	p := prober(t, top, probe.Options{Cache: true})
	rr, err := Run(p, addr("10.0.5.2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Addrs()) <= len(plain.Addrs()) {
		t.Fatalf("record route found %d addrs, plain traceroute %d — expected more",
			len(rr.Addrs()), len(plain.Addrs()))
	}
	// But still far from tracenet's 10 (see core tests): the stamps add the
	// outgoing interfaces only, never the other LAN members.
	if len(rr.Addrs()) >= 10 {
		t.Fatalf("record route found %d addrs, should be below tracenet's coverage", len(rr.Addrs()))
	}
}

func TestNonCompliantRoutersSkipStamps(t *testing.T) {
	top := topo.Figure3()
	for _, r := range top.Routers {
		if r.Name == "R1" {
			r.RRCompliant = false
		}
	}
	p := prober(t, top, probe.Options{Cache: true})
	route, err := Run(p, addr("10.0.5.2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// R1 never stamps, and since stamps are positional the slot sequence
	// starts at R2's outgoing interface instead.
	if route.Hops[0].Stamped != addr("10.0.2.1") {
		t.Errorf("hop 1 stamp = %v; non-compliant R1 should leave R2's stamp first", route.Hops[0].Stamped)
	}
}

func TestNineSlotLimit(t *testing.T) {
	p := prober(t, topo.Chain(14), probe.Options{Cache: true})
	route, err := Run(p, addr("10.9.255.2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !route.Reached {
		t.Fatal("not reached")
	}
	stamped := 0
	for _, h := range route.Hops {
		if !h.Stamped.IsZero() {
			stamped++
		}
	}
	if stamped != 9 {
		t.Fatalf("stamped hops = %d, want the RR option's 9-slot limit", stamped)
	}
}

func TestRendering(t *testing.T) {
	p := prober(t, topo.Figure3(), probe.Options{Cache: true})
	route, err := Run(p, addr("10.0.5.2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := route.String()
	for _, want := range []string{"discarte trace", "in 10.0.0.2", "out 10.0.1.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering lacks %q:\n%s", want, s)
		}
	}
}

func TestUnroutableGivesUp(t *testing.T) {
	p := prober(t, topo.Figure3(), probe.Options{NoRetry: true})
	route, err := Run(p, addr("172.16.0.1"), Options{MaxConsecutiveGaps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if route.Reached || len(route.Hops) > 6 {
		t.Fatalf("unroutable trace: %+v", route)
	}
}
