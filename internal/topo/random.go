package topo

import (
	"fmt"
	"math/rand"

	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
)

// RandomSpec parameterizes the seeded random topology generator, used for
// property-style testing (tracenet must behave sanely on arbitrary
// topologies) and by cmd/topogen.
type RandomSpec struct {
	// Seed drives every random choice; equal specs generate equal networks.
	Seed int64
	// Backbone is the number of backbone routers (connected as a random
	// tree plus extra cross links). Default 8.
	Backbone int
	// Leaves is the number of stub routers hanging off the backbone.
	// Default 24.
	Leaves int
	// LANFraction is the probability that an attachment subnet is a
	// multi-access LAN (/29…/27) rather than a point-to-point link.
	// Default 0.25.
	LANFraction float64
	// ExtraLinks adds redundant backbone cross links (creating ECMP).
	// Default 2.
	ExtraLinks int
	// Unresponsive is the probability that a payload subnet is firewalled.
	Unresponsive float64
}

func (s RandomSpec) withDefaults() RandomSpec {
	if s.Backbone == 0 {
		s.Backbone = 8
	}
	if s.Leaves == 0 {
		s.Leaves = 24
	}
	if s.LANFraction == 0 {
		s.LANFraction = 0.25
	}
	if s.ExtraLinks == 0 {
		s.ExtraLinks = 2
	}
	return s
}

// Random generates a connected random topology with a vantage host and a set
// of traceable destination addresses.
func Random(spec RandomSpec) (*netsim.Topology, []ipv4.Addr) {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	b := netsim.NewBuilder()
	al := &allocator{next: ipv4.MustParseAddr("10.128.0.0")}

	v := b.Host("vantage")
	access := b.Subnet("192.168.100.0/30")
	b.Attach(v, access, "192.168.100.1")

	backbone := make([]*netsim.Router, spec.Backbone)
	for i := range backbone {
		backbone[i] = b.Router(fmt.Sprintf("bb%d", i))
	}
	b.Attach(backbone[0], access, "192.168.100.2")

	// spacedP2P places each point-to-point link in its own /28-aligned block
	// so that same-head-end links never sit in adjacent ranges (see the
	// same-head-end merge analysis in the ISP generator).
	spacedP2P := func(a, c *netsim.Router) ipv4.Prefix {
		block := al.alloc(28)
		p := ipv4.NewPrefix(block.Base(), 31)
		s := b.SubnetP(p)
		b.AttachA(a, s, p.Base())
		b.AttachA(c, s, p.Base()+1)
		return p
	}

	// Random tree over the backbone, then extra cross links for ECMP.
	for i := 1; i < spec.Backbone; i++ {
		parent := backbone[rng.Intn(i)]
		spacedP2P(parent, backbone[i])
	}
	for i := 0; i < spec.ExtraLinks; i++ {
		x, y := rng.Intn(spec.Backbone), rng.Intn(spec.Backbone)
		if x == y {
			continue
		}
		spacedP2P(backbone[x], backbone[y])
	}

	var targets []ipv4.Addr
	for i := 0; i < spec.Leaves; i++ {
		hub := backbone[rng.Intn(spec.Backbone)]
		if rng.Float64() < spec.LANFraction {
			bits := 27 + rng.Intn(3) // /27…/29
			p := al.alloc(bits)
			s := b.SubnetP(p)
			members := int(p.Size())/2 + 1
			b.AttachA(hub, s, p.Base()+1)
			for m := 2; m <= members; m++ {
				r := b.Router(fmt.Sprintf("lan%d-%d", i, m))
				b.AttachA(r, s, p.Base()+ipv4.Addr(m))
			}
			if rng.Float64() < spec.Unresponsive {
				s.Unresponsive = true
			}
			targets = append(targets, p.Base()+2)
		} else {
			leaf := b.Router(fmt.Sprintf("leaf%d", i))
			p := spacedP2P(hub, leaf)
			if rng.Float64() < spec.Unresponsive {
				// The builder returned the subnet indirectly; look it up on
				// the leaf's interface.
				leaf.Ifaces[0].Subnet.Unresponsive = true
			}
			targets = append(targets, p.Base()+1)
		}
	}
	return b.MustBuild(), targets
}
