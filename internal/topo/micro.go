// Package topo builds the topologies the evaluation runs against: the
// paper-figure micro-topologies used by tests and examples, Internet2-like
// and GEANT-like research networks with the paper's exact original subnet
// distributions (Tables 1 and 2), four ISP-like cores for the multi-vantage
// experiments (Figures 6–9, Table 3), and a seeded random generator.
package topo

import (
	"tracenet/internal/netsim"
)

// Figure3 builds the subnet-exploration scene of the paper's Figure 3: a
// vantage host behind R1, ingress router R2, a multi-access subnet S
// (10.0.2.0/24) hosting R2/R3/R4/R6, a close-fringe /31 R2–R7, a far-fringe
// /31 R4–R5, and a destination host behind R4.
//
//	vantage --A-- R1 --P1-- R2 ==S== {R3, R4, R6}
//	                        |T               |F    \DS
//	                        R7               R5     dest
//
// Addresses: vantage 10.0.0.1, dest 10.0.5.2; S members 10.0.2.1 (R2,
// contra-pivot), 10.0.2.2 (R3), 10.0.2.3 (R4), 10.0.2.4 (R6).
func Figure3() *netsim.Topology {
	b := netsim.NewBuilder()
	v := b.Host("vantage")
	r1 := b.Router("R1")
	r2 := b.Router("R2")
	r3 := b.Router("R3")
	r4 := b.Router("R4")
	r5 := b.Router("R5")
	r6 := b.Router("R6")
	r7 := b.Router("R7")
	d := b.Host("dest")

	a := b.Subnet("10.0.0.0/30")
	b.Attach(v, a, "10.0.0.1")
	b.Attach(r1, a, "10.0.0.2")

	p1 := b.Subnet("10.0.1.0/31")
	b.Attach(r1, p1, "10.0.1.0")
	b.Attach(r2, p1, "10.0.1.1")

	s := b.Subnet("10.0.2.0/24")
	b.Attach(r2, s, "10.0.2.1")
	b.Attach(r3, s, "10.0.2.2")
	b.Attach(r4, s, "10.0.2.3")
	b.Attach(r6, s, "10.0.2.4")

	t := b.Subnet("10.0.3.0/31")
	b.Attach(r2, t, "10.0.3.0")
	b.Attach(r7, t, "10.0.3.1")

	f := b.Subnet("10.0.4.0/31")
	b.Attach(r4, f, "10.0.4.0")
	b.Attach(r5, f, "10.0.4.1")

	ds := b.Subnet("10.0.5.0/30")
	b.Attach(r4, ds, "10.0.5.1")
	b.Attach(d, ds, "10.0.5.2")

	return b.MustBuild()
}

// Chain builds a linear chain of n routers joined by /31 point-to-point
// links, with a vantage host in front and a destination host at the end —
// the minimal workload for trace and overhead tests.
//
//	vantage --/30-- R1 --/31-- R2 --/31-- ... --Rn --/30-- dest
func Chain(n int) *netsim.Topology {
	b := netsim.NewBuilder()
	v := b.Host("vantage")
	a := b.Subnet("10.9.0.0/30")
	b.Attach(v, a, "10.9.0.1")

	prev := b.Router("R1")
	b.Attach(prev, a, "10.9.0.2")
	for i := 2; i <= n; i++ {
		r := b.Router(routerName(i))
		link := b.SubnetP(p2pPrefix(i))
		b.AttachA(prev, link, p2pPrefix(i).Base())
		b.AttachA(r, link, p2pPrefix(i).Base()+1)
		prev = r
	}
	d := b.Host("dest")
	ds := b.Subnet("10.9.255.0/30")
	b.Attach(prev, ds, "10.9.255.1")
	b.Attach(d, ds, "10.9.255.2")
	return b.MustBuild()
}

// Figure2 builds the overlay-network motivation scene of the paper's
// Figure 2: hosts A, B, C, D around a core where routers R2, R4, R5, R8
// share one multi-access LAN, so the seemingly disjoint paths P1 (A→D via
// R1,R2,R5,R9) and P3 (B→C via R6,R3,R4,R8) in fact share a link.
func Figure2() *netsim.Topology {
	b := netsim.NewBuilder()
	hostA := b.Host("A")
	hostB := b.Host("B")
	hostC := b.Host("C")
	hostD := b.Host("D")
	r1 := b.Router("R1")
	r2 := b.Router("R2")
	r3 := b.Router("R3")
	r4 := b.Router("R4")
	r5 := b.Router("R5")
	r6 := b.Router("R6")
	r8 := b.Router("R8")
	r9 := b.Router("R9")

	// Access LANs.
	la := b.Subnet("10.2.0.0/29") // A's LAN: R1 and R3 both attached
	b.Attach(hostA, la, "10.2.0.1")
	b.Attach(r1, la, "10.2.0.2")
	b.Attach(r3, la, "10.2.0.3")

	lb := b.Subnet("10.2.1.0/30")
	b.Attach(hostB, lb, "10.2.1.1")
	b.Attach(r6, lb, "10.2.1.2")

	lc := b.Subnet("10.2.2.0/30")
	b.Attach(hostC, lc, "10.2.2.1")
	b.Attach(r8, lc, "10.2.2.2")

	ld := b.Subnet("10.2.3.0/30")
	b.Attach(hostD, ld, "10.2.3.1")
	b.Attach(r9, ld, "10.2.3.2")

	// The shared multi-access LAN between R2, R4, R5, R8 — the link that
	// breaks the disjointness inference.
	shared := b.Subnet("10.2.4.0/29")
	b.Attach(r2, shared, "10.2.4.1")
	b.Attach(r4, shared, "10.2.4.2")
	b.Attach(r5, shared, "10.2.4.3")
	b.Attach(r8, shared, "10.2.4.4")

	// Point-to-point core links.
	p2p := func(cidr, aAddr, bAddr string, ra, rb *netsim.Router) {
		s := b.Subnet(cidr)
		b.Attach(ra, s, aAddr)
		b.Attach(rb, s, bAddr)
	}
	p2p("10.2.5.0/31", "10.2.5.0", "10.2.5.1", r1, r2)
	p2p("10.2.5.2/31", "10.2.5.2", "10.2.5.3", r3, r4)
	p2p("10.2.5.4/31", "10.2.5.4", "10.2.5.5", r5, r9)
	p2p("10.2.5.6/31", "10.2.5.6", "10.2.5.7", r6, r3)

	return b.MustBuild()
}
