package topo

import (
	"fmt"

	"tracenet/internal/ipv4"
)

func routerName(i int) string { return fmt.Sprintf("R%d", i) }

// p2pPrefix deterministically allocates the /31 link prefix for chain hop i
// out of 10.9.1.0/24.
func p2pPrefix(i int) ipv4.Prefix {
	base := ipv4.MustParseAddr("10.9.1.0") + ipv4.Addr((i-2)*2)
	return ipv4.NewPrefix(base, 31)
}
