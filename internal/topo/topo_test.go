package topo

import (
	"testing"

	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
)

func addr(s string) ipv4.Addr { return ipv4.MustParseAddr(s) }

func TestFigure3Shape(t *testing.T) {
	top := Figure3()
	if len(top.Subnets) != 6 {
		t.Fatalf("subnets = %d, want 6", len(top.Subnets))
	}
	if len(top.Hosts) != 2 {
		t.Fatalf("hosts = %d, want 2", len(top.Hosts))
	}
	s := top.SubnetByPrefix(ipv4.MustParsePrefix("10.0.2.0/24"))
	if s == nil || len(s.Ifaces) != 4 {
		t.Fatalf("multi-access subnet wrong: %+v", s)
	}
	n := netsim.New(top, netsim.Config{})
	if d := n.DistanceTo("vantage", addr("10.0.5.2")); d != 4 {
		t.Fatalf("destination distance = %d, want 4", d)
	}
}

func TestChainShape(t *testing.T) {
	for _, k := range []int{1, 2, 5, 12} {
		top := Chain(k)
		n := netsim.New(top, netsim.Config{})
		want := k + 1 // k routers + the final delivery hop to the dest host
		if d := n.DistanceTo("vantage", addr("10.9.255.2")); d != want {
			t.Errorf("Chain(%d): dest distance = %d, want %d", k, d, want)
		}
	}
}

func TestFigure2SharedLANDistances(t *testing.T) {
	top := Figure2()
	n := netsim.New(top, netsim.Config{})
	// The shared LAN members sit 2–3 hops from A. Routing targets the
	// subnet, so a packet for R2's LAN interface may enter through R4 and
	// cross the LAN (3 hops) or arrive directly through R1 (2 hops),
	// depending on the flow hash.
	for _, c := range []struct {
		a        string
		min, max int
	}{
		{"10.2.4.1", 2, 3}, // R2: via R1, or via R3-R4 across the LAN
		{"10.2.4.2", 2, 3}, // R4: via R3, or via R1-R2 across the LAN
		{"10.2.4.3", 3, 3}, // R5
		{"10.2.4.4", 3, 3}, // R8
	} {
		if d := n.DistanceTo("A", addr(c.a)); d < c.min || d > c.max {
			t.Errorf("DistanceTo(A, %s) = %d, want %d..%d", c.a, d, c.min, c.max)
		}
	}
	// ...and the same LAN is on B's paths to C.
	if d := n.DistanceTo("B", addr("10.2.2.1")); d != 5 {
		t.Errorf("DistanceTo(B, C) = %d, want 5", d)
	}
}

func TestInternet2GroundTruth(t *testing.T) {
	r := Internet2()
	if len(r.Originals) != 179 {
		t.Fatalf("originals = %d, want 179", len(r.Originals))
	}
	perBits := map[int]int{}
	unresponsive := 0
	partial := 0
	for _, o := range r.Originals {
		perBits[o.Prefix.Bits()]++
		if o.TotallyUnresponsive {
			unresponsive++
		}
		if o.PartiallyUnresponsive {
			partial++
		}
	}
	want := map[int]int{24: 6, 25: 1, 27: 2, 28: 26, 29: 20, 30: 101, 31: 23}
	for bits, n := range want {
		if perBits[bits] != n {
			t.Errorf("/%d count = %d, want %d", bits, perBits[bits], n)
		}
	}
	if unresponsive != 21 {
		t.Errorf("totally unresponsive = %d, want 21", unresponsive)
	}
	if partial != 19 {
		t.Errorf("partially unresponsive = %d, want 19", partial)
	}
	if len(r.Targets()) != 179 {
		t.Errorf("targets = %d, want one per original", len(r.Targets()))
	}
}

func TestGEANTGroundTruth(t *testing.T) {
	r := GEANT()
	if len(r.Originals) != 271 {
		t.Fatalf("originals = %d, want 271", len(r.Originals))
	}
	perBits := map[int]int{}
	for _, o := range r.Originals {
		perBits[o.Prefix.Bits()]++
	}
	want := map[int]int{28: 24, 29: 109, 30: 138}
	for bits, n := range want {
		if perBits[bits] != n {
			t.Errorf("/%d count = %d, want %d", bits, perBits[bits], n)
		}
	}
}

func TestResearchOriginalsMatchTopology(t *testing.T) {
	for _, r := range []*Research{Internet2(), GEANT()} {
		for _, o := range r.Originals {
			s := r.Topo.SubnetByPrefix(o.Prefix)
			if s == nil {
				t.Errorf("%s: original %v has no subnet in the topology", r.Name, o.Prefix)
				continue
			}
			if o.TotallyUnresponsive != s.Unresponsive {
				t.Errorf("%s: %v unresponsive flag mismatch", r.Name, o.Prefix)
			}
			if !o.Prefix.Contains(o.Target) {
				t.Errorf("%s: target %v outside its subnet %v", r.Name, o.Target, o.Prefix)
			}
		}
	}
}

func TestResearchAllTargetsRoutable(t *testing.T) {
	r := Internet2()
	n := netsim.New(r.Topo, netsim.Config{})
	reachable := 0
	for _, o := range r.Originals {
		if o.TotallyUnresponsive {
			continue
		}
		if d := n.DistanceTo("vantage", o.Target); d > 0 {
			reachable++
		}
	}
	// Every responsive, assigned target must be reachable; sparse subnets
	// with deliberately unassigned targets are the only exceptions.
	unassigned := 0
	for _, o := range r.Originals {
		if !o.TotallyUnresponsive && r.Topo.IfaceByAddr(o.Target) == nil {
			unassigned++
		}
	}
	want := len(r.Originals) - 21 - unassigned
	if reachable != want {
		t.Fatalf("reachable targets = %d, want %d", reachable, want)
	}
}

func TestISPCoresStructure(t *testing.T) {
	sc := ISPCores(7, 1007)
	if len(sc.Topo.Hosts) != 3 {
		t.Fatalf("hosts = %d, want 3 vantage points", len(sc.Topo.Hosts))
	}
	for _, p := range sc.Profiles {
		if len(sc.Targets[p.Name]) == 0 {
			t.Errorf("%s has no targets", p.Name)
		}
		for _, target := range sc.Targets[p.Name] {
			if !p.Block.Contains(target) {
				t.Errorf("%s target %v outside block %v", p.Name, target, p.Block)
			}
		}
	}
	// ISPOf resolves blocks.
	if got := sc.ISPOf(addr("21.0.0.1")); got == nil || got.Name != "NTTAmerica" {
		t.Errorf("ISPOf(21.0.0.1) = %v", got)
	}
	if sc.ISPOf(addr("192.168.0.1")) != nil {
		t.Error("vantage space attributed to an ISP")
	}
}

func TestISPCoresDeterministicStructure(t *testing.T) {
	a := ISPCores(7, 1)
	b := ISPCores(7, 2)
	// Different campaign seeds must not change the structure: same subnets,
	// same addresses, same targets.
	if len(a.Topo.Subnets) != len(b.Topo.Subnets) || len(a.Topo.Routers) != len(b.Topo.Routers) {
		t.Fatalf("structure differs across campaigns: %d/%d subnets, %d/%d routers",
			len(a.Topo.Subnets), len(b.Topo.Subnets), len(a.Topo.Routers), len(b.Topo.Routers))
	}
	ta, tb := a.TargetsFor(), b.TargetsFor()
	if len(ta) != len(tb) {
		t.Fatalf("target counts differ: %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("target %d differs: %v vs %v", i, ta[i], tb[i])
		}
	}
	// But the campaign flaky draws must differ somewhere.
	differs := false
	for i := range a.Topo.Routers {
		if a.Topo.Routers[i].DirectPolicy != b.Topo.Routers[i].DirectPolicy {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("campaign seeds produced identical flaky sets")
	}
}

func TestISPCoresVantageIsolation(t *testing.T) {
	// Vantage v's peering and entry-chain subnets must be unreachable as
	// transit for other vantages' traffic — they only appear on v's paths.
	sc := ISPCores(7, 1007)
	n := netsim.New(sc.Topo, netsim.Config{})
	// Distance from each vantage to the first Sprint target must exist.
	for _, v := range VantageNames {
		if d := n.DistanceTo(v, sc.Targets["SprintLink"][len(sc.Targets["SprintLink"])-30]); d <= 0 {
			t.Errorf("vantage %s cannot reach SprintLink targets", v)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, ta := Random(RandomSpec{Seed: 5})
	b, tb := Random(RandomSpec{Seed: 5})
	if len(a.Subnets) != len(b.Subnets) || len(ta) != len(tb) {
		t.Fatal("same seed produced different topologies")
	}
	c, _ := Random(RandomSpec{Seed: 6})
	if len(a.Subnets) == len(c.Subnets) {
		// Sizes can coincide; compare subnet sets.
		same := true
		for i := range a.Subnets {
			if a.Subnets[i].Prefix != c.Subnets[i].Prefix {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical topologies")
		}
	}
}

func TestRandomConnected(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		top, targets := Random(RandomSpec{Seed: seed})
		n := netsim.New(top, netsim.Config{})
		for _, target := range targets {
			if top.IfaceByAddr(target) == nil {
				t.Errorf("seed %d: target %v unassigned", seed, target)
				continue
			}
			if s := top.SubnetContaining(target); s != nil && s.Unresponsive {
				continue // firewalled targets are intentionally dark
			}
			if d := n.DistanceTo("vantage", target); d <= 0 {
				t.Errorf("seed %d: target %v unreachable", seed, target)
			}
		}
	}
}
