package topo

import (
	"fmt"
	"math/rand"

	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
)

// ISPProfile parameterizes one simulated commercial ISP. Counts are scaled
// roughly 1:10 from the paper's observations (Table 3, Figures 7–9) so the
// full multi-vantage experiment runs in seconds; ratios between ISPs and
// between prefix lengths preserve the paper's shapes.
type ISPProfile struct {
	Name  string
	Block ipv4.Prefix // the ISP's address block (for attribution)

	// Links and LANs per prefix length. Point-to-point entries hang off
	// aggregation routers; multi-access LANs are well utilized so they
	// collect at their true size.
	P2P31, P2P30 int
	LANs         map[int]int // prefix length -> count (bits <= 29 or large LANs)

	// Lonely is the number of /30 links whose far side never answers: their
	// targets come out un-subnetized (/32), the dominant class at SprintLink
	// in Figure 7.
	Lonely int

	// UDPFrac and TCPFrac are the fractions of routers answering UDP and TCP
	// probes (Table 3: ICMP ≫ UDP ≫ TCP, with per-ISP variation).
	UDPFrac, TCPFrac float64

	// FlakyFrac is the fraction of destination routers (point-to-point far
	// ends and LAN members) that ignore direct probes during a given
	// measurement campaign. Which routers are flaky is drawn from the
	// campaign seed, so campaigns from different vantage points observe
	// different subsets — the paper's §4.2 explanation of cross-vantage
	// disagreement (load-dependent rate limiting and responsiveness).
	FlakyFrac float64

	// BorderChain is the length of the entry chain between each border
	// router and the ring core. Vantage v peers only with border v, so the
	// chain's subnets appear exclusively on v's paths — the paper's "around
	// 20% of subnets being observed uniquely by each vantage point is a
	// natural outcome stemming from different border routers appearing in
	// the paths" (§4.2). Consecutive chain routers are joined by parallel
	// /31 pairs balanced per flow, adding the "various paths being taken
	// toward the destinations".
	BorderChain int
}

// ISPProfiles returns the four profiles used throughout the §4.2
// experiments: SprintLink, NTT America, Level3, AboveNet.
func ISPProfiles() []ISPProfile {
	return []ISPProfile{
		{
			Name:  "SprintLink",
			Block: ipv4.MustParsePrefix("20.0.0.0/12"),
			P2P31: 140, P2P30: 150,
			LANs:    map[int]int{29: 40, 28: 10, 27: 3, 26: 2},
			Lonely:  90,
			UDPFrac: 0.41, TCPFrac: 0.004,
			FlakyFrac:   0.22,
			BorderChain: 7,
		},
		{
			Name:  "NTTAmerica",
			Block: ipv4.MustParsePrefix("21.0.0.0/12"),
			P2P31: 40, P2P30: 45,
			LANs:    map[int]int{29: 18, 28: 6, 27: 3, 24: 2, 23: 1, 22: 1},
			Lonely:  10,
			UDPFrac: 0.07, TCPFrac: 0.003,
			FlakyFrac:   0.14,
			BorderChain: 4,
		},
		{
			Name:  "Level3",
			Block: ipv4.MustParsePrefix("22.0.0.0/12"),
			P2P31: 110, P2P30: 130,
			LANs:    map[int]int{29: 35, 28: 8, 27: 2, 26: 1},
			Lonely:  35,
			UDPFrac: 0.30, TCPFrac: 0.004,
			FlakyFrac:   0.19,
			BorderChain: 6,
		},
		{
			Name:  "AboveNet",
			Block: ipv4.MustParsePrefix("23.0.0.0/12"),
			P2P31: 70, P2P30: 85,
			LANs:    map[int]int{29: 22, 28: 5, 27: 1},
			Lonely:  20,
			UDPFrac: 0.33, TCPFrac: 0.017,
			FlakyFrac:   0.17,
			BorderChain: 5,
		},
	}
}

// VantageNames are the three PlanetLab-like vantage points of §4.2.
var VantageNames = []string{"rice", "uoregon", "umass"}

// ISPScape is the full multi-vantage experiment topology: four ISP cores,
// three vantage hosts entering each ISP at a different border router, and
// the per-ISP target address sets.
type ISPScape struct {
	Topo     *netsim.Topology
	Profiles []ISPProfile
	// Targets[ispName] is the destination set drawn from that ISP.
	Targets map[string][]ipv4.Addr
}

// TargetsFor returns the combined target set, ISP by ISP in profile order.
func (sc *ISPScape) TargetsFor() []ipv4.Addr {
	var out []ipv4.Addr
	for _, p := range sc.Profiles {
		out = append(out, sc.Targets[p.Name]...)
	}
	return out
}

// ISPOf returns the profile whose block contains addr, or nil.
func (sc *ISPScape) ISPOf(addr ipv4.Addr) *ISPProfile {
	for i := range sc.Profiles {
		if sc.Profiles[i].Block.Contains(addr) {
			return &sc.Profiles[i]
		}
	}
	return nil
}

// ISPCores builds the §4.2 experiment topology. Each ISP is a 12-router
// ring core with two aggregation routers per core router; point-to-point
// links and LANs hang off the aggregation layer. Three borders per ISP
// attach at ring positions 0, 4, and 8 through vantage-specific entry
// chains; vantage v peers only with border v of every ISP.
//
// structSeed fixes the network structure and protocol-responsiveness mix
// (identical for every campaign); campaignSeed draws the per-campaign flaky
// router set, modelling the time-varying responsiveness that makes two
// measurement campaigns disagree.
func ISPCores(structSeed, campaignSeed int64) *ISPScape {
	structRNG := rand.New(rand.NewSource(structSeed))
	campaignRNG := rand.New(rand.NewSource(campaignSeed))
	b := netsim.NewBuilder()
	sc := &ISPScape{Profiles: ISPProfiles(), Targets: map[string][]ipv4.Addr{}}

	// Vantage hosts and their transit routers.
	transits := make([]*netsim.Router, len(VantageNames))
	for i, name := range VantageNames {
		h := b.Host(name)
		acc := b.Subnet(fmt.Sprintf("192.168.%d.0/30", i))
		b.AttachA(h, acc, acc.Prefix.Base()+1)
		transits[i] = b.Router("transit-" + name)
		b.AttachA(transits[i], acc, acc.Prefix.Base()+2)
	}

	for k := range sc.Profiles {
		buildISP(b, structRNG, campaignRNG, &sc.Profiles[k], transits, sc)
	}

	sc.Topo = b.MustBuild()
	return sc
}

const ringSize = 12

// buildISP lays out one ISP core and registers its targets.
func buildISP(b *netsim.Builder, structRNG, campaignRNG *rand.Rand, p *ISPProfile, transits []*netsim.Router, sc *ISPScape) {
	al := &allocator{next: p.Block.Base()}
	// Protocol responsiveness is drawn per site, not per router: UDP
	// port-unreachable filtering (and TCP RST suppression) is a site-wide
	// policy in practice, so a dozen consecutive routers share one draw.
	// Correlation is what makes the fraction of *collected* subnets under
	// UDP track the per-router fraction (Table 3) instead of its square.
	routerCount := 0
	var siteMask netsim.ProtoMask
	newRouter := func(kind string, i int) *netsim.Router {
		if routerCount%12 == 0 {
			siteMask = drawProtoMix(structRNG, p)
		}
		routerCount++
		r := b.Router(fmt.Sprintf("%s-%s%d", p.Name, kind, i))
		r.IndirectProtos = netsim.ProtoMaskAll
		r.DirectProtos = siteMask
		return r
	}
	// flaky marks a destination router unresponsive to direct probes for
	// this campaign.
	flaky := func(r *netsim.Router, frac float64) {
		if frac > 0 && campaignRNG.Float64() < frac {
			r.DirectPolicy = netsim.PolicyNil
		}
	}

	link := func(bits int, a, c *netsim.Router) (ipv4.Prefix, *netsim.Iface, *netsim.Iface) {
		pr := al.alloc(bits)
		s := b.SubnetP(pr)
		var near, far *netsim.Iface
		if bits == 31 {
			near = b.AttachA(a, s, pr.Base())
			far = b.AttachA(c, s, pr.Base()+1)
		} else {
			near = b.AttachA(a, s, pr.Base()+1)
			far = b.AttachA(c, s, pr.Base()+2)
		}
		return pr, near, far
	}
	// spacedLink places a /31 in its own /28-aligned block. Same-head-end
	// point-to-point links in adjacent address ranges are indistinguishable
	// from one multi-access subnet to the heuristics (every link's
	// contra-pivot is the same router), so parallel and chain links are
	// spaced out the way operators number them.
	spacedLink := func(a, c *netsim.Router) {
		block := al.alloc(28)
		s := b.SubnetP(ipv4.NewPrefix(block.Base(), 31))
		b.AttachA(a, s, block.Base())
		b.AttachA(c, s, block.Base()+1)
	}

	// Ring core.
	ring := make([]*netsim.Router, ringSize)
	for i := range ring {
		ring[i] = newRouter("core", i)
	}
	for i := range ring {
		link(31, ring[i], ring[(i+1)%ringSize])
	}

	// Aggregation routers, two per core router. The uplink /30s are
	// allocated interleaved (all first uplinks, then all second uplinks) so
	// that address-adjacent uplinks head at *different* core routers —
	// sibling links of one device numbered from adjacent ranges are
	// indistinguishable from a single multi-access subnet to the heuristics
	// and would be merged (see spacedLink).
	var aggs []*netsim.Router
	for j := 0; j < 2; j++ {
		for i, c := range ring {
			a := newRouter("agg", i*2+j)
			link(30, c, a)
			aggs = append(aggs, a)
		}
	}
	// A "site" is an aggregation router plus every customer router behind
	// it: UDP/TCP filtering policy is uniform within a site, so the
	// fraction of subnets collectable over UDP tracks the per-site fraction
	// (Table 3) rather than its square.
	siteOf := map[*netsim.Router]netsim.ProtoMask{}
	for _, a := range aggs {
		siteOf[a] = drawProtoMix(structRNG, p)
		a.DirectProtos = siteOf[a]
	}
	nextAgg := 0
	agg := func() *netsim.Router {
		a := aggs[nextAgg%len(aggs)]
		nextAgg++
		return a
	}
	inherit := func(r *netsim.Router, a *netsim.Router) {
		r.DirectProtos = siteOf[a]
	}

	addTarget := func(a ipv4.Addr) { sc.Targets[p.Name] = append(sc.Targets[p.Name], a) }

	// Borders: vantage v peers only with border v and enters the core over
	// a chain of parallel /31 pairs; every subnet of the chain sits on v's
	// paths and on nobody else's.
	for v, tr := range transits {
		border := newRouter("border", v)
		peer := al.alloc(30)
		s := b.SubnetP(peer)
		b.AttachA(tr, s, peer.Base()+1)
		b.AttachA(border, s, peer.Base()+2)
		prev := border
		for i := 0; i < p.BorderChain; i++ {
			c := newRouter("bchain", v*100+i)
			// A bundle of five parallel /31s, flow-balanced: across the
			// campaign's many destination flows every member of the bundle
			// carries traffic and is collected.
			for j := 0; j < 5; j++ {
				spacedLink(prev, c)
			}
			prev = c
		}
		spacedLink(prev, ring[(v*4)%ringSize])
	}

	// Point-to-point payload links. Lonely links (silent near side) are
	// spaced into their own /28-aligned blocks: with the near side dark, a
	// depth-staggered responsive leaf in the adjacent range would be
	// accepted as a contra-pivot and two customer links would merge.
	leafN := 0
	p2p := func(bits int, lonely bool) {
		a := agg()
		leaf := newRouter("leaf", leafN)
		leafN++
		var near, far *netsim.Iface
		if lonely {
			block := al.alloc(28)
			s := b.SubnetP(ipv4.NewPrefix(block.Base(), bits))
			near = b.AttachA(a, s, block.Base()+1)
			far = b.AttachA(leaf, s, block.Base()+2)
		} else {
			_, near, far = link(bits, a, leaf)
		}
		inherit(leaf, a)
		if lonely {
			// The aggregation-side interface never answers: the far side is
			// discovered but cannot be subnetized beyond /32 (Figure 7's
			// un-subnetized class).
			near.Responsive = false
		} else {
			flaky(leaf, p.FlakyFrac)
		}
		addTarget(far.Addr)
	}
	for i := 0; i < p.P2P31; i++ {
		p2p(31, false)
	}
	for i := 0; i < p.P2P30; i++ {
		p2p(30, false)
	}
	for i := 0; i < p.Lonely; i++ {
		p2p(30, true)
	}

	// Multi-access LANs, well utilized (more than half of every growth
	// level) so they collect at their true prefix.
	lanN := 0
	for bits := 20; bits <= 29; bits++ {
		for i := 0; i < p.LANs[bits]; i++ {
			a := agg()
			pr := al.alloc(bits)
			s := b.SubnetP(pr)
			members := 1<<(32-bits)/2 + 1
			b.AttachA(a, s, pr.Base()+1)
			for m := 2; m <= members; m++ {
				r := newRouter("lan", lanN)
				lanN++
				inherit(r, a)
				b.AttachA(r, s, pr.Base()+ipv4.Addr(m))
				flaky(r, p.FlakyFrac*0.6)
			}
			addTarget(pr.Base() + 2)
			// A second target deeper in the LAN, like the paper's random
			// multi-address target sets.
			if members > 4 {
				addTarget(pr.Base() + ipv4.Addr(members/2+1))
			}
		}
	}

	// A block whose addresses never answer, reproducing Figure 7's "not all
	// target IP addresses responded": routed (the subnet exists at an
	// aggregation router) but the probed addresses are unassigned.
	dead := al.alloc(28)
	ds := b.SubnetP(dead)
	deadIface := b.AttachA(agg(), ds, dead.Base()+1)
	deadIface.Responsive = false
	for i := 0; i < 12; i++ {
		addTarget(dead.Base() + ipv4.Addr(2+i))
	}
}

// drawProtoMix draws one site's direct-probe responsiveness. TTL-exceeded
// generation is protocol-agnostic on real routers, so indirect responsiveness
// stays open; what varies per protocol is the willingness to answer probes
// addressed to the router itself — port unreachables for UDP are widely
// filtered and TCP probes almost never draw a RST from core routers
// (Table 3 and [9]).
func drawProtoMix(rng *rand.Rand, p *ISPProfile) netsim.ProtoMask {
	mask := netsim.ProtoMaskICMP
	if rng.Float64() < p.UDPFrac {
		mask |= netsim.ProtoMaskUDP
	}
	if rng.Float64() < p.TCPFrac*3 {
		mask |= netsim.ProtoMaskTCP
	}
	return mask
}
