package topo

import (
	"fmt"

	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
)

// Original is one ground-truth subnet of a research network, with the
// responsiveness annotations the evaluation needs to attribute misses and
// underestimations (paper §4.1.1 distinguishes algorithm-caused from
// unresponsiveness-caused errors).
type Original struct {
	Prefix ipv4.Prefix
	// Target is the evaluation destination drawn from this subnet ("we build
	// destination IP address sets by selecting a random IP address from each
	// of their original subnets", §4.1). Like the paper's random picks, the
	// target of a sparsely utilized subnet may be an unassigned address.
	Target ipv4.Addr
	// TotallyUnresponsive marks a subnet behind a probe-blocking firewall.
	TotallyUnresponsive bool
	// PartiallyUnresponsive marks a subnet with a mix of responsive and
	// unresponsive interfaces.
	PartiallyUnresponsive bool
}

// Research is a generated research network (Internet2-like or GEANT-like):
// the simulated topology plus its ground-truth subnet inventory.
type Research struct {
	Name      string
	Topo      *netsim.Topology
	Originals []Original
}

// Targets returns the evaluation destination set, one address per original
// subnet.
func (r *Research) Targets() []ipv4.Addr {
	out := make([]ipv4.Addr, len(r.Originals))
	for i, o := range r.Originals {
		out[i] = o.Target
	}
	return out
}

// planKind describes how one original subnet is realized, chosen so that the
// collected distribution reproduces the corresponding Table 1/2 row.
type planKind uint8

const (
	planExact       planKind = iota // well utilized, fully responsive
	planTotallyUnrs                 // firewalled: miss\unrs row
	planPartialUnrs                 // responsive/unresponsive mix: undes\unrs row
	planSparse                      // sparsely utilized, assigned target: undes row
	planSparseMiss                  // sparsely utilized, unassigned target: miss row
	planOverres                     // /30 with an unpublished parallel link: ovres row
)

type plan struct {
	bits int
	kind planKind
}

// researchSpec is the blueprint of a research network.
type researchSpec struct {
	name  string
	hubs  int
	plans []plan
	// backboneBits is the prefix length of the inventory subnets used as
	// hub-to-hub backbone links.
	backboneBits int
	// base is the inventory address block.
	base ipv4.Addr
}

func repeat(dst []plan, bits int, kind planKind, n int) []plan {
	for i := 0; i < n; i++ {
		dst = append(dst, plan{bits: bits, kind: kind})
	}
	return dst
}

// internet2Spec reproduces the original subnet distribution of Table 1
// (179 subnets: 6 /24, 1 /25, 2 /27, 26 /28, 20 /29, 101 /30, 23 /31) with
// the responsiveness mix that yields the paper's collected rows.
func internet2Spec() researchSpec {
	var p []plan
	// /24: 4 firewalled, 1 sparse-missed, 1 sparse-underestimated.
	p = repeat(p, 24, planTotallyUnrs, 4)
	p = repeat(p, 24, planSparseMiss, 1)
	p = repeat(p, 24, planSparse, 1)
	// /25: firewalled.
	p = repeat(p, 25, planTotallyUnrs, 1)
	// /27: firewalled.
	p = repeat(p, 27, planTotallyUnrs, 2)
	// /28: 2 exact, 1 firewalled, 2 sparse-missed, 2 sparse, 19 partial.
	p = repeat(p, 28, planExact, 2)
	p = repeat(p, 28, planTotallyUnrs, 1)
	p = repeat(p, 28, planSparseMiss, 2)
	p = repeat(p, 28, planSparse, 2)
	p = repeat(p, 28, planPartialUnrs, 19)
	// /29: 16 exact, 4 firewalled.
	p = repeat(p, 29, planExact, 16)
	p = repeat(p, 29, planTotallyUnrs, 4)
	// /30: 92 exact (10 of them realized as the hub backbone links),
	// 8 firewalled, 1 overestimated.
	p = repeat(p, 30, planExact, 82)
	p = repeat(p, 30, planTotallyUnrs, 8)
	p = repeat(p, 30, planOverres, 1)
	// /31: 22 exact, 1 firewalled.
	p = repeat(p, 31, planExact, 22)
	p = repeat(p, 31, planTotallyUnrs, 1)
	return researchSpec{
		name:         "Internet2",
		hubs:         11,
		plans:        p,
		backboneBits: 30,
		base:         ipv4.MustParseAddr("172.16.0.0"),
	}
}

// geantSpec reproduces the original subnet distribution of Table 2
// (271 subnets: 24 /28, 109 /29, 138 /30).
func geantSpec() researchSpec {
	var p []plan
	// /28: 10 firewalled, 3 sparse, 11 partial.
	p = repeat(p, 28, planTotallyUnrs, 10)
	p = repeat(p, 28, planSparse, 3)
	p = repeat(p, 28, planPartialUnrs, 11)
	// /29: 41 exact, 1 sparse-missed, 53 firewalled, 14 partial.
	p = repeat(p, 29, planExact, 41)
	p = repeat(p, 29, planSparseMiss, 1)
	p = repeat(p, 29, planTotallyUnrs, 53)
	p = repeat(p, 29, planPartialUnrs, 14)
	// /30: 104 exact (11 of them realized as the hub backbone links),
	// 34 firewalled.
	p = repeat(p, 30, planExact, 93)
	p = repeat(p, 30, planTotallyUnrs, 34)
	return researchSpec{
		name:         "GEANT",
		hubs:         12,
		plans:        p,
		backboneBits: 30,
		base:         ipv4.MustParseAddr("172.20.0.0"),
	}
}

// Internet2 generates the Internet2-like research network of Table 1.
func Internet2() *Research { return buildResearch(internet2Spec()) }

// GEANT generates the GEANT-like research network of Table 2.
func GEANT() *Research { return buildResearch(geantSpec()) }

// allocator hands out address blocks from a base, aligned to their size.
type allocator struct{ next ipv4.Addr }

func (a *allocator) alloc(bits int) ipv4.Prefix {
	size := ipv4.Addr(uint32(1) << (32 - bits))
	// Align up.
	if rem := a.next % size; rem != 0 {
		a.next += size - rem
	}
	p := ipv4.NewPrefix(a.next, bits)
	a.next += size
	return p
}

// buildResearch lays the inventory out as a caterpillar: a chain of hub
// routers joined by inventory backbone links, with every other inventory
// subnet hanging off a hub — point-to-point subnets toward a fresh leaf
// router, multi-access subnets toward several. Consecutive allocations go to
// consecutive hubs, so address-adjacent subnets sit at different hop depths;
// that staggering is what lets heuristics H2–H8 separate neighbouring
// address ranges, just as depth variation does in real networks.
func buildResearch(spec researchSpec) *Research {
	b := netsim.NewBuilder()
	al := &allocator{next: spec.base}
	res := &Research{Name: spec.name}

	v := b.Host("vantage")
	access := b.Subnet("192.168.0.0/30")
	b.Attach(v, access, "192.168.0.1")

	hubs := make([]*netsim.Router, spec.hubs)
	for i := range hubs {
		hubs[i] = b.Router(fmt.Sprintf("hub%d", i))
	}
	b.Attach(hubs[0], access, "192.168.0.2")

	// Backbone: hub_i—hub_i+1 links drawn from the inventory. They are fully
	// utilized point-to-point subnets and collect exactly.
	leafN := 0
	newLeaf := func() *netsim.Router {
		leafN++
		return b.Router(fmt.Sprintf("leaf%d", leafN))
	}
	attachP2P := func(p ipv4.Prefix, near, far *netsim.Router) (*netsim.Subnet, ipv4.Addr) {
		s := b.SubnetP(p)
		var a0, a1 ipv4.Addr
		if p.Bits() == 31 {
			a0, a1 = p.Base(), p.Base()+1
		} else {
			a0, a1 = p.Base()+1, p.Base()+2
		}
		b.AttachA(near, s, a0)
		b.AttachA(far, s, a1)
		return s, a1
	}

	for i := 0; i+1 < len(hubs); i++ {
		p := al.alloc(spec.backboneBits)
		_, far := attachP2P(p, hubs[i], hubs[i+1])
		res.Originals = append(res.Originals, Original{Prefix: p, Target: far})
	}

	hubAt := func(i int) *netsim.Router { return hubs[i%len(hubs)] }

	for idx, pl := range spec.plans {
		hub := hubAt(idx)
		p := al.alloc(pl.bits)
		o := Original{Prefix: p}
		switch {
		case pl.bits >= 30 && pl.kind != planOverres:
			// Point-to-point.
			s, far := attachP2P(p, hub, newLeaf())
			o.Target = far
			if pl.kind == planTotallyUnrs {
				s.Unresponsive = true
				o.TotallyUnresponsive = true
			}
		case pl.kind == planOverres:
			// A /30 plus an unpublished parallel /30 between the same router
			// pair in the adjacent address block: the parallel link passes
			// every heuristic (its interfaces are on the same two routers at
			// the same distances), so the inventory subnet is collected as
			// the covering /29 — the paper's overestimation class.
			leaf := newLeaf()
			_, far := attachP2P(p, hub, leaf)
			hidden := al.alloc(30)
			attachP2P(hidden, hub, leaf)
			o.Target = far
		default:
			// Multi-access: member count per kind.
			s := b.SubnetP(p)
			members := memberOffsets(pl)
			var ifaces []*netsim.Iface
			for i, off := range members {
				var r *netsim.Router
				if i == 0 {
					r = hub
				} else {
					r = newLeaf()
				}
				ifaces = append(ifaces, b.AttachA(r, s, p.Base()+ipv4.Addr(off)))
			}
			switch pl.kind {
			case planExact:
				o.Target = ifaces[1].Addr
			case planTotallyUnrs:
				s.Unresponsive = true
				o.TotallyUnresponsive = true
				o.Target = ifaces[1].Addr
			case planPartialUnrs:
				// The upper half of the members stays silent; the subnet is
				// observed at roughly half its true size and the collected
				// covering prefix lands one level short.
				o.PartiallyUnresponsive = true
				for _, ifc := range ifaces[len(ifaces)/2:] {
					ifc.Responsive = false
				}
				o.Target = ifaces[1].Addr
			case planSparse:
				o.Target = ifaces[1].Addr
			case planSparseMiss:
				// Like the paper's random pick landing on an unassigned
				// address of a sparsely utilized subnet: the trace dies at
				// the ingress and the subnet is never explored.
				o.Target = p.Last() - 1
			}
		}
		res.Originals = append(res.Originals, o)
	}

	res.Topo = b.MustBuild()
	return res
}

// memberOffsets returns the assigned host offsets for a multi-access plan.
func memberOffsets(pl plan) []int {
	switch pl.kind {
	case planExact, planTotallyUnrs:
		// Well utilized: more than half of each growth level, spanning both
		// halves of the prefix, e.g. 9 members for a /28 and 5 for a /29.
		n := 1<<(32-pl.bits)/2 + 1
		out := make([]int, n)
		for i := range out {
			out[i] = i + 1
		}
		return out
	case planPartialUnrs:
		// Well utilized on paper, but half the interfaces won't answer.
		n := 1<<(32-pl.bits)/2 + 3
		if max := 1<<(32-pl.bits) - 2; n > max {
			n = max
		}
		out := make([]int, n)
		for i := range out {
			out[i] = i + 1
		}
		return out
	default: // planSparse, planSparseMiss
		// A handful of assigned addresses with gaps.
		return []int{1, 2, 5}
	}
}
