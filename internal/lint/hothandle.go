package lint

import (
	"go/types"
	"strings"
)

// HotHandleAnalyzer keeps by-name telemetry lookups off the per-probe path.
// Registry.Counter and friends take a mutex and hash the metric name on every
// call; the telemetry layer's contract (DESIGN §8) is that hot code
// pre-resolves handles once and bumps atomics thereafter. Hot functions are
// declared, not inferred: a `//tracenet:hotpath` directive in a function's doc
// comment makes it a root, and the analyzer walks the call graph from each
// root, reporting the first call edge of any chain that reaches a by-name
// lookup — however many module-local calls deep it hides.
var HotHandleAnalyzer = &Analyzer{
	Name: "hothandle",
	Doc: "forbid by-name telemetry registry lookups (Counter/Gauge/Histogram) " +
		"reachable from //tracenet:hotpath functions; pre-resolve handles",
	Run: runHotHandle,
}

// hotpathDirective marks a function as a per-probe hot path root.
const hotpathDirective = "//tracenet:hotpath"

// telemetryPkg is the package whose registry lookups are the sinks.
const telemetryPkg = "tracenet/internal/telemetry"

// hotLookupSink classifies the by-name lookup entry points: Counter, Gauge,
// and Histogram methods on the telemetry Registry (and the Telemetry
// convenience wrappers around them). Works from signatures alone, so sinks
// resolve even when telemetry is loaded as a dependency without bodies.
func hotLookupSink(fn *types.Func) string {
	if fn.Pkg() == nil || fn.Pkg().Path() != telemetryPkg {
		return ""
	}
	switch fn.Name() {
	case "Counter", "Gauge", "Histogram":
	default:
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return "by-name registry lookup"
}

func runHotHandle(pass *Pass) error {
	reach := pass.Reach("hothandle", hotLookupSink)
	hot := pass.Prog.Memo("hothandle.roots", func() any {
		return hotpathRoots(pass.Graph())
	}).(map[*types.Func]bool)
	for _, node := range pass.Graph().Nodes() {
		if node.Pkg != pass.Pkg || !hot[node.Fn] {
			continue
		}
		if reach.Reason(node.Fn) != "" || !reach.Tainted(node.Fn) {
			continue
		}
		path := reach.Path(node.Fn)
		e := path[0]
		if hot[e.Callee] {
			// The callee is itself a hot root: it reports its own chain.
			continue
		}
		pass.Reportf(e.Pos,
			"hot path %s performs a by-name telemetry lookup: %s; pre-resolve the handle outside the probe loop",
			FuncDisplay(node.Fn, pass.Pkg.Types),
			reach.Describe(node.Fn, pass.Pkg.Types))
	}
	return nil
}

// hotpathRoots collects every function whose doc comment carries the
// //tracenet:hotpath directive.
func hotpathRoots(g *CallGraph) map[*types.Func]bool {
	roots := make(map[*types.Func]bool)
	for _, node := range g.Nodes() {
		if node.Decl.Doc == nil {
			continue
		}
		for _, c := range node.Decl.Doc.List {
			if strings.HasPrefix(c.Text, hotpathDirective) {
				roots[node.Fn] = true
				break
			}
		}
	}
	return roots
}
