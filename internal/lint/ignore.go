package lint

import (
	"go/token"
	"strings"
)

// Suppression directives. A finding can be silenced in place with
//
//	//lint:ignore <analyzer> <reason>
//
// written either as a trailing comment on the offending line or on the line
// directly above it. The reason is mandatory: an ignore without one is
// rejected with its own diagnostic and suppresses nothing, so every
// exception in the tree carries its justification. A directive silences only
// the named analyzer — sibling findings on the same line keep firing.

// ignoreAnalyzer is the pseudo-analyzer name malformed directives are
// reported under.
const ignoreAnalyzer = "lintignore"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos      token.Position
	analyzer string
	reason   string
}

// parseIgnores extracts every //lint:ignore directive from pkg's comments.
func parseIgnores(pkg *Package) []ignoreDirective {
	var out []ignoreDirective
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				d := ignoreDirective{pos: pkg.Fset.Position(c.Pos())}
				if len(fields) > 0 {
					d.analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applyIgnores filters diags through every package's //lint:ignore
// directives and appends a diagnostic for each malformed one.
func applyIgnores(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	suppress := make(map[key]bool)
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, d := range parseIgnores(pkg) {
			if d.analyzer == "" || d.reason == "" {
				out = append(out, Diagnostic{
					Pos:      d.pos,
					Analyzer: ignoreAnalyzer,
					Message:  "//lint:ignore needs an analyzer name and a reason: //lint:ignore <analyzer> <reason>",
				})
				continue
			}
			// The directive covers its own line (trailing comment) and the
			// line below (comment above the offending statement).
			suppress[key{d.pos.Filename, d.pos.Line, d.analyzer}] = true
			suppress[key{d.pos.Filename, d.pos.Line + 1, d.analyzer}] = true
		}
	}
	for _, d := range diags {
		if suppress[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
