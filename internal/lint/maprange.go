package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapRangeAnalyzer flags map iterations whose order can leak into output in
// the measurement-critical packages. Go randomizes map iteration order per
// run, so a `for range m` that appends to an outer slice or writes to a
// stream produces run-dependent results — exactly the silent drift that made
// "misleading stars"-style topology artifacts so hard to attribute. A loop is
// exempt when it provably doesn't encode order: it exits on match
// (break/return), only mutates commutative state (counters, map entries,
// deletes), or the surrounding function sorts afterwards.
var MapRangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc: "flag map-iteration-order-dependent output in measurement code; " +
		"collect then sort, or range over a sorted key slice",
	Run: runMapRange,
}

func runMapRange(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorts := callsSortAPI(fd.Body, info)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if sorts || exitsEarly(rng.Body) {
					return true
				}
				if escape := orderEscapes(rng, info); escape != "" {
					pass.Reportf(rng.Pos(),
						"map iteration order escapes via %s; sort before emitting (map order is randomized per run)",
						escape)
				}
				return true
			})
		}
	}
	return nil
}

// exitsEarly reports whether the loop body can stop the iteration: a
// match-and-exit loop observes at most one element, so order doesn't order
// any output.
func exitsEarly(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			// break/goto leave the loop (unlabelled break counts; continue
			// doesn't).
			if s.Tok == token.BREAK || s.Tok == token.GOTO {
				found = true
			}
		case *ast.FuncLit:
			return false // a nested closure's returns don't exit our loop
		}
		return !found
	})
	return found
}

// callsSortAPI reports whether the function body calls into package sort or
// slices, or a local sorting helper (a function whose name starts with
// "sort", like core's sortAddrs) — the collect-then-sort idiom that makes
// map iteration safe.
func callsSortAPI(body *ast.BlockStmt, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if obj, ok := info.Uses[x.Sel]; ok && obj.Pkg() != nil {
				switch obj.Pkg().Path() {
				case "sort", "slices":
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && strings.HasPrefix(strings.ToLower(id.Name), "sort") {
				found = true
			}
		}
		return !found
	})
	return found
}

// orderEscapes reports how the loop body lets iteration order reach output:
// appending to a slice declared outside the loop, or writing to a stream.
// It returns "" when every statement is order-commutative.
func orderEscapes(rng *ast.RangeStmt, info *types.Info) string {
	escape := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if escape != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			// Builtin append: the element order of some slice now follows
			// map order.
			if _, isBuiltin := info.Uses[fn].(*types.Builtin); isBuiltin && fn.Name == "append" {
				escape = "append"
			}
		case *ast.SelectorExpr:
			obj, ok := info.Uses[fn.Sel]
			if !ok || obj.Pkg() == nil {
				return true
			}
			name := fn.Sel.Name
			if obj.Pkg().Path() == "fmt" && (name == "Fprintf" || name == "Fprintln" || name == "Fprint") {
				escape = "fmt." + name
			}
			if name == "Write" || name == "WriteString" || name == "WriteByte" {
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
					escape = name
				}
			}
		}
		return escape == ""
	})
	return escape
}
