package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMixAnalyzer flags struct fields that are accessed through sync/atomic
// in one place and plainly in another. A field updated with atomic.AddUint32
// on one path and written with `=` on a concurrently reachable path is a data
// race the -race detector only catches when both paths fire in one test run;
// the mix is visible statically. The call graph supplies the exemption: plain
// accesses in code reachable only from unexported entry points (constructors
// initializing a value before it is published) are pre-publication and legal,
// so only functions reachable from the package's exported API are reported.
var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc: "forbid mixing sync/atomic and plain accesses to the same struct " +
		"field in code reachable from exported API",
	Run: runAtomicMix,
}

// atomicSite records where a field was first accessed atomically.
type atomicSite struct {
	pos token.Position
}

// atomicFacts is the program-wide result shared across per-package passes.
type atomicFacts struct {
	fields   map[*types.Var]atomicSite
	args     map[*ast.SelectorExpr]bool
	exported map[*types.Func]bool
}

func runAtomicMix(pass *Pass) error {
	g := pass.Graph()
	facts := pass.Prog.Memo("atomicmix", func() any {
		fields, args := collectAtomicAccesses(pass.Prog)
		return &atomicFacts{fields: fields, args: args, exported: exportedReach(g)}
	}).(*atomicFacts)
	atomicFields, atomicArgs, exported := facts.fields, facts.args, facts.exported
	if len(atomicFields) == 0 {
		return nil
	}
	for _, node := range g.Nodes() {
		if node.Pkg != pass.Pkg || !exported[node.Fn] {
			continue
		}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgs[sel] {
				return true
			}
			s, ok := node.Pkg.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			field, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			site, isAtomic := atomicFields[field]
			if !isAtomic {
				return true
			}
			pass.Reportf(sel.Pos(),
				"field %s is accessed via sync/atomic at %s:%d but plainly here; use sync/atomic consistently",
				field.Name(), baseName(site.pos.Filename), site.pos.Line)
			return true
		})
	}
	return nil
}

// collectAtomicAccesses walks every function body of the program and returns
// (a) the struct fields whose address is passed to a sync/atomic package-level
// function, keyed to the first such site, and (b) the selector expressions
// that form those `&x.f` arguments, so the reporting pass does not flag the
// atomic accesses themselves.
func collectAtomicAccesses(prog *Program) (map[*types.Var]atomicSite, map[*ast.SelectorExpr]bool) {
	fields := make(map[*types.Var]atomicSite)
	args := make(map[*ast.SelectorExpr]bool)
	for _, node := range prog.Graph().Nodes() {
		info := node.Pkg.Info
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(call, info) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				s, ok := info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					continue
				}
				field, ok := s.Obj().(*types.Var)
				if !ok {
					continue
				}
				args[sel] = true
				if _, seen := fields[field]; !seen {
					fields[field] = atomicSite{pos: node.Pkg.Fset.Position(sel.Pos())}
				}
			}
			return true
		})
	}
	return fields, args
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// function (the legacy pointer-based API; the typed atomic.Uint64-style API
// uses methods and cannot be mixed with plain accesses in the first place).
func isAtomicCall(call *ast.CallExpr, info *types.Info) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// exportedReach computes the set of program functions forward-reachable from
// any exported function or method — the code that can run after a value has
// been published to callers outside the package. Ref edges count: a function
// passed as a value to exported code may be called from it.
func exportedReach(g *CallGraph) map[*types.Func]bool {
	reach := make(map[*types.Func]bool)
	var queue []*FuncNode
	for _, n := range g.Nodes() {
		if n.Fn.Exported() {
			reach[n.Fn] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Edges {
			if reach[e.Callee] {
				continue
			}
			reach[e.Callee] = true
			if cn := g.Node(e.Callee); cn != nil {
				queue = append(queue, cn)
			}
		}
	}
	return reach
}
