package allocbudget

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `# tracenet/internal/wire
/repo/internal/wire/packet.go:41:12: make([]byte, 0, totalLen) escapes to heap:
/repo/internal/wire/packet.go:41:12:   flow: ~r0 = &{storage for make([]byte, 0, totalLen)}:
/repo/internal/wire/packet.go:41:12:     from make([]byte, 0, totalLen) (spilled) at /repo/internal/wire/packet.go:41:12
/repo/internal/wire/packet.go:41:12: make([]byte, 0, totalLen) escapes to heap
/repo/internal/wire/ip.go:17:6: hdr escapes to heap:
/repo/internal/wire/ip.go:17:6:   flow: {heap} = &hdr:
/repo/internal/wire/ip.go:17:6: moved to heap: hdr
/repo/internal/wire/packet.go:12:6: can inline Checksum
/repo/internal/wire/packet.go:80:15: leaking param: b to result ~r0 level=0
/repo/internal/wire/packet.go:93:20: p does not escape
`

func TestParseEscapesDedupes(t *testing.T) {
	escapes := ParseEscapes(sampleOutput)
	if len(escapes) != 2 {
		t.Fatalf("ParseEscapes = %d escapes, want 2 (deduped): %v", len(escapes), escapes)
	}
	if escapes[0].Msg != "moved to heap: hdr" || escapes[0].Line != 17 {
		t.Errorf("escape[0] = %+v", escapes[0])
	}
	if !strings.HasSuffix(escapes[1].Msg, "escapes to heap") || escapes[1].Col != 12 {
		t.Errorf("escape[1] = %+v", escapes[1])
	}
}

func TestBudgetsRoundTrip(t *testing.T) {
	counts := map[Key]int{
		{Pkg: "tracenet/internal/wire", Func: "(*Packet).Encode"}: 1,
		{Pkg: "tracenet/internal/wire", Func: "Decode"}:           3,
		{Pkg: "tracenet/internal/probe", Func: "NewProber"}:       2,
	}
	text := FormatBudgets(counts, "go-test")
	parsed, err := ParseBudgets(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(counts) {
		t.Fatalf("round trip lost entries: %v", parsed)
	}
	for k, v := range counts {
		if parsed[k] != v {
			t.Errorf("round trip %v = %d, want %d", k, parsed[k], v)
		}
	}
}

func TestParseBudgetsRejectsMalformed(t *testing.T) {
	if _, err := ParseBudgets(strings.NewReader("only two fields\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ParseBudgets(strings.NewReader("pkg fn notanumber\n")); err == nil {
		t.Error("bad count accepted")
	}
}

func TestDiffVerdicts(t *testing.T) {
	escapes := []Escape{
		{Pkg: "p", Func: "Over", File: "a.go", Line: 1, Msg: "moved to heap: x"},
		{Pkg: "p", Func: "Over", File: "a.go", Line: 2, Msg: "moved to heap: y"},
		{Pkg: "p", Func: "Exact", File: "a.go", Line: 3, Msg: "moved to heap: z"},
		{Pkg: "p", Func: "Under", File: "a.go", Line: 4, Msg: "moved to heap: w"},
		{Pkg: "p", Func: "New", File: "a.go", Line: 5, Msg: "moved to heap: v"},
	}
	budgets := map[Key]int{
		{Pkg: "p", Func: "Over"}:  1,
		{Pkg: "p", Func: "Exact"}: 1,
		{Pkg: "p", Func: "Under"}: 3,
		{Pkg: "p", Func: "Gone"}:  2,
	}
	violations, ratchets := Diff(escapes, budgets)
	if len(violations) != 2 {
		t.Fatalf("violations = %v, want Over and New", violations)
	}
	if violations[0].Key.Func != "New" || violations[0].Budget != 0 {
		t.Errorf("violations[0] = %+v, want unbudgeted New", violations[0])
	}
	if violations[1].Key.Func != "Over" || violations[1].Actual != 2 {
		t.Errorf("violations[1] = %+v, want Over 2>1", violations[1])
	}
	if len(ratchets) != 2 {
		t.Errorf("ratchets = %v, want Under and stale Gone", ratchets)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}

func measureFixture(t *testing.T, fixture string) []Escape {
	t.Helper()
	if testing.Short() {
		t.Skip("compiler-backed measurement is not short")
	}
	escapes, err := Measure(moduleRoot(t), []string{"tracenet/internal/lint/allocbudget/testdata/" + fixture})
	if err != nil {
		t.Fatal(err)
	}
	return escapes
}

func loadFixtureBudget(t *testing.T, name string) map[Key]int {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	budgets, err := ParseBudgets(f)
	if err != nil {
		t.Fatal(err)
	}
	return budgets
}

// TestGateCleanFixture: escapes matching the budget pass the gate.
func TestGateCleanFixture(t *testing.T) {
	escapes := measureFixture(t, "clean")
	violations, ratchets := Diff(escapes, loadFixtureBudget(t, "clean.budget"))
	if len(violations) != 0 {
		t.Errorf("clean fixture violated its budget: %v", violations)
	}
	if len(ratchets) != 0 {
		t.Errorf("clean fixture produced ratchet warnings: %v", ratchets)
	}
}

// TestGateSeededEscapeFails is the gate's regression proof: a heap escape the
// budget does not record (seeded.Leak) must fail with the exact function.
func TestGateSeededEscapeFails(t *testing.T) {
	escapes := measureFixture(t, "seeded")
	violations, _ := Diff(escapes, loadFixtureBudget(t, "seeded.budget"))
	if len(violations) != 1 {
		t.Fatalf("seeded fixture violations = %v, want exactly the Leak escape", violations)
	}
	v := violations[0]
	if v.Key.Func != "Leak" || v.Budget != 0 || v.Actual < 1 {
		t.Errorf("violation = %+v, want unbudgeted Leak", v)
	}
	if !strings.Contains(v.Describe(), "escapes to heap") {
		t.Errorf("Describe() = %q, want the compiler's reason", v.Describe())
	}
}

// TestRepositoryWithinBudgets mirrors the check.sh gate over the real
// hot-path packages against the committed budgets.txt.
func TestRepositoryWithinBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("compiler-backed measurement is not short")
	}
	root := moduleRoot(t)
	escapes, err := Measure(root, Packages)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(root, BudgetsFile))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	budgets, err := ParseBudgets(f)
	if err != nil {
		t.Fatal(err)
	}
	violations, _ := Diff(escapes, budgets)
	for _, v := range violations {
		t.Errorf("over budget: %s", v.Describe())
	}
}
