// Package clean is the gate's passing fixture: its escapes exactly match the
// committed budget in testdata/clean.budget.
package clean

// Boxed escapes its local: one budgeted heap escape.
func Boxed() *int {
	x := 42
	return &x
}

// Sum allocates nothing.
func Sum(a, b int) int { return a + b }
