// Package seeded is the gate's failing fixture: Leak's escape is deliberately
// missing from testdata/seeded.budget, modelling a new allocation creeping
// onto a budgeted hot path.
package seeded

// Boxed matches its budget entry.
func Boxed() *int {
	x := 42
	return &x
}

// Leak is the seeded regression: an unbudgeted heap escape.
func Leak() []byte {
	return make([]byte, 64)
}
