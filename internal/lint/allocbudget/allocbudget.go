// Package allocbudget is the compiler-backed half of tracenetlint v2: it runs
// the escape analysis the gc toolchain already performs (`go build
// -gcflags=<pkg>=-m=2`) over the hot probe-path packages, attributes every
// heap escape to the function containing it, and diffs the counts against a
// committed per-function budget file. A new escape on the probe path —
// exactly the regression that silently turns a 15-alloc exchange into a
// 16-alloc one — fails scripts/check.sh and CI with the file, line, function,
// and the compiler's own reason. Shrinking a count only produces a ratchet
// warning: regenerate budgets.txt (cmd/tracenetlint -allocbudget-write) to
// lock in the improvement.
package allocbudget

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Packages are the hot probe-path packages the gate watches: everything a
// single Prober.probe call executes per packet, including the simulator's
// reply-synthesis path on the other side of the port.
var Packages = []string{
	"tracenet/internal/wire",
	"tracenet/internal/probe",
	"tracenet/internal/ipv4",
	"tracenet/internal/telemetry",
	"tracenet/internal/netsim",
}

// BudgetsFile is the committed budget file, relative to the module root.
const BudgetsFile = "internal/lint/allocbudget/budgets.txt"

// Escape is one heap escape the compiler reported.
type Escape struct {
	File string // absolute path
	Line int
	Col  int
	Msg  string // compiler message, e.g. "moved to heap: x"
	Pkg  string // import path
	Func string // enclosing function, rendered (*T).M / T.M / F
}

// Key identifies one budget entry: a function within a package.
type Key struct {
	Pkg  string
	Func string
}

// Measure compiles pkgs with escape-analysis diagnostics enabled and returns
// every heap escape attributed to its enclosing function. The build runs with
// -a: cached compilations emit no diagnostics, so everything in the watched
// packages must actually recompile.
func Measure(modRoot string, pkgs []string) ([]Escape, error) {
	args := []string{"build", "-a"}
	for _, p := range pkgs {
		args = append(args, "-gcflags="+p+"=-m=2")
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = modRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("allocbudget: go build: %v\n%s", err, stderr.String())
	}
	escapes := ParseEscapes(stderr.String())
	// The compiler reports paths relative to the build directory.
	for i := range escapes {
		if !filepath.IsAbs(escapes[i].File) {
			escapes[i].File = filepath.Join(modRoot, escapes[i].File)
		}
	}
	if err := attribute(modRoot, pkgs, escapes); err != nil {
		return nil, err
	}
	return escapes, nil
}

// ParseEscapes extracts the heap-escape lines from compiler -m output. One
// allocation site surfaces several times at -m=2 — the colon-suffixed form
// introducing flow detail, the bare repeat, and for variables both "x escapes
// to heap" and "moved to heap: x" — so escapes collapse to one per source
// position, preferring the "moved to heap" message when present.
func ParseEscapes(out string) []Escape {
	type posKey struct {
		file      string
		line, col int
	}
	best := make(map[posKey]string)
	var order []posKey
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		file, lineNo, col, msg, ok := splitDiag(line)
		if !ok || !strings.HasSuffix(file, ".go") {
			continue
		}
		msg = strings.TrimSuffix(msg, ":")
		if !strings.HasSuffix(msg, " escapes to heap") && !strings.HasPrefix(msg, "moved to heap: ") {
			continue
		}
		k := posKey{file, lineNo, col}
		cur, seen := best[k]
		if !seen {
			order = append(order, k)
			best[k] = msg
		} else if strings.HasPrefix(msg, "moved to heap: ") && !strings.HasPrefix(cur, "moved to heap: ") {
			best[k] = msg
		}
	}
	escapes := make([]Escape, 0, len(order))
	for _, k := range order {
		escapes = append(escapes, Escape{File: k.file, Line: k.line, Col: k.col, Msg: best[k]})
	}
	sort.Slice(escapes, func(i, j int) bool {
		a, b := escapes[i], escapes[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Msg < b.Msg
	})
	return escapes
}

// splitDiag parses "file.go:line:col: msg". Flow-detail continuation lines
// share the prefix but carry indented messages; they are filtered by the
// caller's message matching, not here.
func splitDiag(line string) (file string, lineNo, col int, msg string, ok bool) {
	i := strings.Index(line, ".go:")
	if i < 0 {
		return "", 0, 0, "", false
	}
	file = line[:i+3]
	parts := strings.SplitN(line[i+4:], ": ", 2)
	if len(parts) != 2 {
		return "", 0, 0, "", false
	}
	if _, err := fmt.Sscanf(parts[0], "%d:%d", &lineNo, &col); err != nil {
		return "", 0, 0, "", false
	}
	msg = parts[1]
	if strings.HasPrefix(msg, " ") {
		// Indented flow detail ("  flow: ...", "    from ...").
		return "", 0, 0, "", false
	}
	return file, lineNo, col, msg, true
}

// listedPackage is the slice of `go list -json` the attributor needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// attribute fills in Pkg and Func for every escape by mapping source lines to
// the enclosing top-level function declaration.
func attribute(modRoot string, pkgs []string, escapes []Escape) error {
	type span struct {
		name       string
		start, end int
	}
	spans := make(map[string][]span) // file path -> decl spans
	pkgOf := make(map[string]string) // file path -> import path
	fset := token.NewFileSet()
	for _, pkg := range pkgs {
		cmd := exec.Command("go", "list", "-json", pkg)
		cmd.Dir = modRoot
		out, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("allocbudget: go list %s: %v", pkg, err)
		}
		var lp listedPackage
		if err := json.Unmarshal(out, &lp); err != nil {
			return fmt.Errorf("allocbudget: decoding go list %s: %v", pkg, err)
		}
		for _, name := range lp.GoFiles {
			path := filepath.Join(lp.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return fmt.Errorf("allocbudget: %v", err)
			}
			pkgOf[path] = lp.ImportPath
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				spans[path] = append(spans[path], span{
					name:  declDisplay(fd),
					start: fset.Position(fd.Pos()).Line,
					end:   fset.Position(fd.End()).Line,
				})
			}
		}
	}
	for i := range escapes {
		e := &escapes[i]
		e.Pkg = pkgOf[e.File]
		e.Func = "(package scope)"
		for _, s := range spans[e.File] {
			if e.Line >= s.start && e.Line <= s.end {
				e.Func = s.name
				break
			}
		}
	}
	return nil
}

// declDisplay renders a FuncDecl the way budgets.txt names functions:
// (*T).M, T.M, or F.
func declDisplay(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	switch rt := fd.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		return "(*" + recvBase(rt.X) + ")." + fd.Name.Name
	default:
		return recvBase(rt) + "." + fd.Name.Name
	}
}

func recvBase(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr:
		return recvBase(x.X)
	case *ast.IndexListExpr:
		return recvBase(x.X)
	}
	return "?"
}

// Count folds escapes into per-function totals.
func Count(escapes []Escape) map[Key]int {
	counts := make(map[Key]int)
	for _, e := range escapes {
		counts[Key{Pkg: e.Pkg, Func: e.Func}]++
	}
	return counts
}

// ParseBudgets reads a budgets file: one `<pkg> <func> <count>` triple per
// line, '#' comments and blank lines ignored. The function name may itself
// contain spaces (the "(package scope)" pseudo-function for escapes in
// package-level initializers), so it is everything between the first and
// last fields.
func ParseBudgets(r io.Reader) (map[Key]int, error) {
	budgets := make(map[Key]int)
	sc := bufio.NewScanner(r)
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("allocbudget: budgets line %d: want `<pkg> <func> <count>`, got %q", n, line)
		}
		var count int
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%d", &count); err != nil {
			return nil, fmt.Errorf("allocbudget: budgets line %d: bad count %q", n, fields[len(fields)-1])
		}
		fn := strings.Join(fields[1:len(fields)-1], " ")
		budgets[Key{Pkg: fields[0], Func: fn}] = count
	}
	return budgets, sc.Err()
}

// FormatBudgets renders counts as a budgets file, sorted, with a header
// explaining the regeneration workflow.
func FormatBudgets(counts map[Key]int, goVersion string) []byte {
	keys := make([]Key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Pkg != keys[j].Pkg {
			return keys[i].Pkg < keys[j].Pkg
		}
		return keys[i].Func < keys[j].Func
	})
	var b bytes.Buffer
	fmt.Fprintf(&b, "# tracenet per-function heap-escape budgets (%s).\n", goVersion)
	fmt.Fprintf(&b, "# Generated by `go run ./cmd/tracenetlint -allocbudget-write`; checked by\n")
	fmt.Fprintf(&b, "# `-allocbudget` in scripts/check.sh. A count above budget fails the gate;\n")
	fmt.Fprintf(&b, "# below budget is a ratchet warning — regenerate to lock the win in.\n")
	fmt.Fprintf(&b, "# <package> <function> <max heap escapes>\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %s %d\n", k.Pkg, k.Func, counts[k])
	}
	return b.Bytes()
}

// Violation is one budget breach: more escapes than budgeted.
type Violation struct {
	Key     Key
	Actual  int
	Budget  int
	Escapes []Escape // the offending sites, for the error message
}

// Diff compares measured escapes against budgets. Violations (actual over
// budget, including functions with no entry at all) fail the gate; ratchets
// (actual under budget, or stale entries for escape-free functions) are
// informational.
func Diff(escapes []Escape, budgets map[Key]int) (violations []Violation, ratchets []string) {
	counts := Count(escapes)
	byKey := make(map[Key][]Escape)
	for _, e := range escapes {
		byKey[Key{Pkg: e.Pkg, Func: e.Func}] = append(byKey[Key{Pkg: e.Pkg, Func: e.Func}], e)
	}
	keys := make([]Key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Pkg != keys[j].Pkg {
			return keys[i].Pkg < keys[j].Pkg
		}
		return keys[i].Func < keys[j].Func
	})
	for _, k := range keys {
		actual, budget := counts[k], budgets[k]
		switch {
		case actual > budget:
			violations = append(violations, Violation{Key: k, Actual: actual, Budget: budget, Escapes: byKey[k]})
		case actual < budget:
			ratchets = append(ratchets, fmt.Sprintf("%s %s: %d escapes, budget %d — regenerate budgets.txt to ratchet down", k.Pkg, k.Func, actual, budget))
		}
	}
	stale := make([]Key, 0)
	for k := range budgets {
		if _, ok := counts[k]; !ok {
			stale = append(stale, k)
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		if stale[i].Pkg != stale[j].Pkg {
			return stale[i].Pkg < stale[j].Pkg
		}
		return stale[i].Func < stale[j].Func
	})
	for _, k := range stale {
		ratchets = append(ratchets, fmt.Sprintf("%s %s: no escapes measured, budget %d is stale — regenerate budgets.txt", k.Pkg, k.Func, budgets[k]))
	}
	return violations, ratchets
}

// Describe renders a violation for the gate's error output.
func (v Violation) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s: %d heap escape(s), budget %d", v.Key.Pkg, v.Key.Func, v.Actual, v.Budget)
	for _, e := range v.Escapes {
		fmt.Fprintf(&b, "\n\t%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
	}
	return b.String()
}
