package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WireErrAnalyzer enforces wire-error discipline: error returns from the
// packet codec (tracenet/internal/wire) and from JSON encode/decode
// (encoding/json — checkpoints, fault plans, topology files) must not be
// discarded. A swallowed decode error turns a mangled datagram or a corrupt
// checkpoint into silently wrong topology — the failure mode the resilience
// layer exists to make explicit (Degraded/Confidence annotations), so every
// one of these errors must reach a handler.
var WireErrAnalyzer = &Analyzer{
	Name: "wireerr",
	Doc: "flag discarded error returns from internal/wire codecs and " +
		"encoding/json encode/decode",
	Run: runWireErr,
}

func runWireErr(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				checkDiscardedCall(pass, s.X, info)
			case *ast.DeferStmt:
				checkDiscardedCall(pass, s.Call, info)
			case *ast.GoStmt:
				checkDiscardedCall(pass, s.Call, info)
			case *ast.AssignStmt:
				checkBlankError(pass, s, info)
			}
			return true
		})
	}
	return nil
}

// checkDiscardedCall flags a call used as a bare statement when the callee is
// error-disciplined and returns an error.
func checkDiscardedCall(pass *Pass, e ast.Expr, info *types.Info) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(call, info)
	if fn == nil || !disciplinedCallee(fn) {
		return
	}
	if errIdx := errorResultIndex(fn); errIdx >= 0 {
		pass.Reportf(call.Pos(),
			"result of %s includes an error that is discarded; wire/JSON errors must be handled",
			qualifiedName(fn))
	}
}

// checkBlankError flags assignments that bind an error-disciplined callee's
// error result to the blank identifier.
func checkBlankError(pass *Pass, s *ast.AssignStmt, info *types.Info) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(call, info)
	if fn == nil || !disciplinedCallee(fn) {
		return
	}
	errIdx := errorResultIndex(fn)
	if errIdx < 0 || errIdx >= len(s.Lhs) {
		return
	}
	if id, ok := s.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(s.Pos(),
			"error result of %s assigned to _; wire/JSON errors must be handled",
			qualifiedName(fn))
	}
}

// calleeFunc resolves the called function or method, or nil for builtins,
// function values, and type conversions.
func calleeFunc(call *ast.CallExpr, info *types.Info) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// disciplinedCallee reports whether fn belongs to an API whose errors must
// never be discarded: the wire codec and encoding/json.
func disciplinedCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch {
	case strings.HasSuffix(pkg.Path(), "internal/wire"):
		return true
	case pkg.Path() == "encoding/json":
		return true
	}
	return false
}

// errorResultIndex returns the index of fn's final error result, or -1.
func errorResultIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return -1
	}
	last := sig.Results().Len() - 1
	if named, ok := sig.Results().At(last).Type().(*types.Named); ok &&
		named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
		return last
	}
	return -1
}

func qualifiedName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())) + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
