// Package lint is tracenet's project-specific static-analysis framework: a
// deliberately small, stdlib-only mirror of golang.org/x/tools/go/analysis.
// The build environment pins the repo to the standard library, so instead of
// the upstream framework the package implements the same three ideas from
// scratch: an Analyzer (a named check with a Run function over one
// type-checked package), a Pass (the per-package invocation context), and a
// Diagnostic (one finding at one position).
//
// The analyzers encode invariants the compiler cannot see but the paper's
// methodology depends on: deterministic measurement (§3 subnet inference is
// only replayable if every probe observation is a pure function of the seed),
// locking discipline around the shared simulated network, wire-level error
// hygiene, and no aliasing of decode buffers. See cmd/tracenetlint for the
// multichecker that applies them to the whole repository.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Match restricts the analyzer to packages whose import path it accepts;
	// nil applies the analyzer everywhere.
	Match func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Package is one loaded, type-checked package (non-test files only).
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass carries one analyzer's invocation over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(Diagnostic)
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package it matches and returns the
// findings ordered by file, line, and column.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, report: func(d Diagnostic) {
				diags = append(diags, d)
			}}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full tracenetlint suite with its per-package scoping
// configured. The determinism and map-order analyzers apply only to the
// measurement-critical packages (netsim, core, probe, telemetry, collect):
// elsewhere wall-clock time and iteration order are legitimate (e.g. CLI
// progress output). Telemetry counts as measurement-critical by design:
// byte-identical same-seed output is part of its contract, so it gets the
// same policing — and collect promises byte-identical reports regardless of
// worker scheduling, which only holds if nothing in it leaks map order or
// wall-clock time.
func All() []*Analyzer {
	measurement := matchPaths(
		"tracenet/internal/netsim",
		"tracenet/internal/core",
		"tracenet/internal/probe",
		"tracenet/internal/telemetry",
		"tracenet/internal/collect",
	)
	det := *DeterminismAnalyzer
	det.Match = measurement
	mr := *MapRangeAnalyzer
	mr.Match = measurement
	lc := *LockCheckAnalyzer
	lc.Match = matchPaths("tracenet/internal/netsim")
	return []*Analyzer{&det, &mr, &lc, WireErrAnalyzer, IPAliasAnalyzer}
}

func matchPaths(paths ...string) func(string) bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return func(p string) bool { return set[p] }
}
