// Package lint is tracenet's project-specific static-analysis framework: a
// deliberately small, stdlib-only mirror of golang.org/x/tools/go/analysis.
// The build environment pins the repo to the standard library, so instead of
// the upstream framework the package implements the same three ideas from
// scratch: an Analyzer (a named check with a Run function over one
// type-checked package), a Pass (the per-package invocation context), and a
// Diagnostic (one finding at one position).
//
// The analyzers encode invariants the compiler cannot see but the paper's
// methodology depends on: deterministic measurement (§3 subnet inference is
// only replayable if every probe observation is a pure function of the seed),
// locking discipline around the shared simulated network, wire-level error
// hygiene, and no aliasing of decode buffers. See cmd/tracenetlint for the
// multichecker that applies them to the whole repository.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Match restricts the analyzer to packages whose import path it accepts;
	// nil applies the analyzer everywhere.
	Match func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Package is one loaded, type-checked package (non-test files only).
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass carries one analyzer's invocation over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Prog is the whole load: every package of the Run, with the shared call
	// graph and fact-propagation results the interprocedural analyzers use.
	Prog *Program

	report func(Diagnostic)
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Graph returns the program-wide call graph (built lazily, shared by every
// pass of the Run).
func (p *Pass) Graph() *CallGraph { return p.Prog.Graph() }

// Reach returns the memoized fact-propagation result for the named sink
// classifier; key must identify the classifier uniquely within the Run
// (analyzers use their own name).
func (p *Pass) Reach(key string, sink SinkFunc) *ReachSet { return p.Prog.Reach(key, sink) }

// Matches reports whether this pass's analyzer would also analyze the package
// with the given import path — how the interprocedural analyzers decide
// whether a callee is inside their reporting scope (and will be reported
// there) or outside it (and must be reported at the escaping edge).
func (p *Pass) Matches(pkgPath string) bool {
	return p.Analyzer.Match == nil || p.Analyzer.Match(pkgPath)
}

// Program is one Run's load: the packages under analysis plus the lazily
// built interprocedural state shared across analyzers.
type Program struct {
	Pkgs []*Package

	graph   *CallGraph
	reaches map[string]*ReachSet
	memo    map[string]any
}

// NewProgram wraps a set of loaded packages for analysis.
func NewProgram(pkgs []*Package) *Program {
	return &Program{
		Pkgs:    pkgs,
		reaches: make(map[string]*ReachSet),
		memo:    make(map[string]any),
	}
}

// Memo caches a program-wide fact computed by an analyzer (e.g. "every field
// accessed atomically anywhere") so per-package passes share one computation.
// Run is sequential, so no locking is needed.
func (p *Program) Memo(key string, compute func() any) any {
	if v, ok := p.memo[key]; ok {
		return v
	}
	v := compute()
	p.memo[key] = v
	return v
}

// Graph builds (once) and returns the program call graph.
func (p *Program) Graph() *CallGraph {
	if p.graph == nil {
		p.graph = BuildCallGraph(p.Pkgs)
	}
	return p.graph
}

// Reach memoizes CallGraph.Reach per classifier key. Run is sequential, so no
// locking is needed.
func (p *Program) Reach(key string, sink SinkFunc) *ReachSet {
	if r, ok := p.reaches[key]; ok {
		return r
	}
	r := p.Graph().Reach(sink)
	p.reaches[key] = r
	return r
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package it matches and returns the
// findings ordered by file, line, and column. Findings carrying a
// well-formed `//lint:ignore <analyzer> <reason>` directive on their own or
// the preceding line are suppressed; malformed directives (no reason) are
// themselves findings and suppress nothing.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog := NewProgram(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog, report: func(d Diagnostic) {
				diags = append(diags, d)
			}}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	diags = applyIgnores(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full tracenetlint suite with its per-package scoping
// configured. The determinism and map-order analyzers apply only to the
// measurement-critical packages (netsim, core, probe, telemetry, collect,
// obs, daemon): elsewhere wall-clock time and iteration order are legitimate
// (e.g. CLI progress output). Telemetry counts as measurement-critical by
// design: byte-identical same-seed output is part of its contract, so it
// gets the same policing — collect promises byte-identical reports
// regardless of worker scheduling, which only holds if nothing in it leaks
// map order or wall-clock time, and obs serves those artifacts live, so a
// wall-clock or map-order leak there would break the /metrics and /campaigns
// golden contract the same way. The daemon joins the set because its
// scheduler clock, freshness deadlines, and resume-invariant reports are all
// derived from the seeds: one time.Now() or ranged map in it would make a
// drained-and-restarted run diverge from its control.
func All() []*Analyzer {
	measurement := matchPaths(
		"tracenet/internal/netsim",
		"tracenet/internal/core",
		"tracenet/internal/probe",
		"tracenet/internal/telemetry",
		"tracenet/internal/collect",
		"tracenet/internal/obs",
		"tracenet/internal/daemon",
	)
	examples := matchPrefix("tracenet/examples/")
	commands := matchPrefix("tracenet/cmd/")
	det := *DeterminismAnalyzer
	det.Match = orMatch(measurement, examples)
	cs := *ClockSourceAnalyzer
	cs.Match = orMatch(measurement, examples)
	mr := *MapRangeAnalyzer
	mr.Match = orMatch(measurement, commands, examples)
	lc := *LockCheckAnalyzer
	lc.Match = matchPaths("tracenet/internal/netsim")
	return []*Analyzer{
		&det, &cs, &mr, &lc,
		WireErrAnalyzer, IPAliasAnalyzer,
		AtomicMixAnalyzer, HotHandleAnalyzer,
	}
}

func matchPaths(paths ...string) func(string) bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return func(p string) bool { return set[p] }
}

func matchPrefix(prefix string) func(string) bool {
	return func(p string) bool { return strings.HasPrefix(p, prefix) }
}

func orMatch(ms ...func(string) bool) func(string) bool {
	return func(p string) bool {
		for _, m := range ms {
			if m(p) {
				return true
			}
		}
		return false
	}
}
