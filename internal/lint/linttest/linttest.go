// Package linttest is the testdata-driven harness for the lint analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest with the same
// convention: each analyzer has a testdata/src/<pkg> directory of Go files
// annotated with `// want "regexp"` comments on the lines where it must
// report, and every unannotated line must stay clean. Testdata packages may
// import standard-library packages and module-local packages (e.g.
// tracenet/internal/wire); both are type-checked from source.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"tracenet/internal/lint"
)

// wantRE extracts the expectation list from a `// want` comment; quotedRE
// then pulls out each double- or backtick-quoted pattern.
var wantRE = regexp.MustCompile(`//\s*want\s+(.+)`)

var quotedRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads testdata/src/<pkg> relative to dir, applies the analyzer
// (ignoring its Match scoping — testdata stands in for matched packages), and
// compares the diagnostics against the file's want annotations.
func Run(t *testing.T, dir string, a *lint.Analyzer, pkg string) {
	t.Helper()
	srcDir := filepath.Join(dir, "src", pkg)
	fset := token.NewFileSet()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(srcDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no Go files under %s", srcDir)
	}

	loaded, err := lint.CheckFiles(fset, pkg, srcDir, files, newImporter(t, fset))
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	// Strip the analyzer's package scoping: the harness decides applicability.
	unscoped := *a
	unscoped.Match = nil
	diags, err := lint.Run([]*lint.Package{loaded}, []*lint.Analyzer{&unscoped})
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	compare(t, fset, files, diags)
}

// compare matches reported diagnostics against want annotations line by line.
func compare(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					pat := q[1]
					if pat == "" {
						pat = q[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("linttest: %s: bad want pattern %q: %v", pos, pat, err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], rx)
				}
			}
		}
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	keys := make([]key, 0, len(wants))
	for k := range wants {
		if len(wants[k]) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, rx := range wants[k] {
			t.Errorf("missing diagnostic at %s:%d matching %q", k.file, k.line, rx)
		}
	}
}

// testImporter satisfies testdata imports: module-local packages come from a
// process-wide lint.Resolver (one shared type universe, so ipv4.Addr is the
// same type everywhere), everything else from the stdlib source importer.
type testImporter struct {
	t   *testing.T
	std types.ImporterFrom
}

var (
	resolverOnce sync.Once
	resolver     *lint.Resolver
	resolverErr  error
)

func newImporter(t *testing.T, fset *token.FileSet) *testImporter {
	return &testImporter{
		t:   t,
		std: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

func (ti *testImporter) Import(path string) (*types.Package, error) {
	return ti.ImportFrom(path, "", 0)
}

func (ti *testImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if !strings.HasPrefix(path, "tracenet/") {
		return ti.std.ImportFrom(path, dir, mode)
	}
	resolverOnce.Do(func() {
		resolver, resolverErr = lint.NewResolver(moduleRoot(ti.t))
	})
	if resolverErr != nil {
		return nil, fmt.Errorf("linttest: module resolver: %w", resolverErr)
	}
	return resolver.Import(path)
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot(t *testing.T) string {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("linttest: no go.mod above %s", dir)
		}
		dir = parent
	}
}
