// Package linttest is the testdata-driven harness for the lint analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest with the same
// convention: each analyzer has a testdata/src/<pkg> directory of Go files
// annotated with `// want "regexp"` comments on the lines where it must
// report, and every unannotated line must stay clean. Testdata packages may
// import standard-library packages and module-local packages (e.g.
// tracenet/internal/wire); both are type-checked from source.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"tracenet/internal/lint"
)

// wantRE extracts the expectation list from a `// want` comment; quotedRE
// then pulls out each double- or backtick-quoted pattern.
var wantRE = regexp.MustCompile(`//\s*want\s+(.+)`)

var quotedRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads testdata/src/<pkg> relative to dir, applies the analyzer
// (ignoring its Match scoping — testdata stands in for matched packages), and
// compares the diagnostics against the file's want annotations.
func Run(t *testing.T, dir string, a *lint.Analyzer, pkg string) {
	t.Helper()
	RunScoped(t, dir, a, nil, pkg)
}

// RunScoped is Run for interprocedural analyzers: it loads several testdata
// packages (dependencies first — a package may import an earlier sibling by
// its bare name, e.g. `import "clockhelper"`) into one shared program, applies
// the analyzer with an explicit Match function in place of its own (nil
// matches every package), and compares diagnostics against the want
// annotations across all loaded files. The match split is how testdata models
// in-scope measurement code calling out-of-scope helpers.
func RunScoped(t *testing.T, dir string, a *lint.Analyzer, match func(string) bool, pkgs ...string) {
	t.Helper()
	fset, files, loaded := loadPkgs(t, dir, pkgs)
	compare(t, fset, files, runOn(t, a, match, loaded))
}

// Diagnostics loads the same way as RunScoped but returns the raw findings
// instead of comparing want annotations — for tests asserting what a
// different analyzer does (not) report on shared testdata.
func Diagnostics(t *testing.T, dir string, a *lint.Analyzer, match func(string) bool, pkgs ...string) []lint.Diagnostic {
	t.Helper()
	_, _, loaded := loadPkgs(t, dir, pkgs)
	return runOn(t, a, match, loaded)
}

func runOn(t *testing.T, a *lint.Analyzer, match func(string) bool, loaded []*lint.Package) []lint.Diagnostic {
	t.Helper()
	scoped := *a
	scoped.Match = match
	diags, err := lint.Run(loaded, []*lint.Analyzer{&scoped})
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	return diags
}

// loadPkgs parses and type-checks the named testdata packages in order into
// one file set, letting later packages import earlier ones by bare name.
func loadPkgs(t *testing.T, dir string, pkgs []string) (*token.FileSet, []*ast.File, []*lint.Package) {
	t.Helper()
	fset := token.NewFileSet()
	si := &siblingImporter{base: newImporter(t, fset), local: make(map[string]*types.Package)}
	var allFiles []*ast.File
	var loaded []*lint.Package
	for _, pkg := range pkgs {
		srcDir := filepath.Join(dir, "src", pkg)
		entries, err := os.ReadDir(srcDir)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(srcDir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("linttest: %v", err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			t.Fatalf("linttest: no Go files under %s", srcDir)
		}
		lp, err := lint.CheckFiles(fset, pkg, srcDir, files, si)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		si.local[pkg] = lp.Types
		allFiles = append(allFiles, files...)
		loaded = append(loaded, lp)
	}
	return fset, allFiles, loaded
}

// siblingImporter resolves already-loaded testdata siblings by bare import
// path before falling back to the module/stdlib importer.
type siblingImporter struct {
	base  *testImporter
	local map[string]*types.Package
}

func (si *siblingImporter) Import(path string) (*types.Package, error) {
	return si.ImportFrom(path, "", 0)
}

func (si *siblingImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := si.local[path]; ok {
		return p, nil
	}
	return si.base.ImportFrom(path, dir, mode)
}

// compare matches reported diagnostics against want annotations line by line.
func compare(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					pat := q[1]
					if pat == "" {
						pat = q[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("linttest: %s: bad want pattern %q: %v", pos, pat, err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], rx)
				}
			}
		}
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	keys := make([]key, 0, len(wants))
	for k := range wants {
		if len(wants[k]) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, rx := range wants[k] {
			t.Errorf("missing diagnostic at %s:%d matching %q", k.file, k.line, rx)
		}
	}
}

// testImporter satisfies testdata imports: module-local packages come from a
// process-wide lint.Resolver (one shared type universe, so ipv4.Addr is the
// same type everywhere), everything else from the stdlib source importer.
type testImporter struct {
	t   *testing.T
	std types.ImporterFrom
}

var (
	resolverOnce sync.Once
	resolver     *lint.Resolver
	resolverErr  error
)

func newImporter(t *testing.T, fset *token.FileSet) *testImporter {
	return &testImporter{
		t:   t,
		std: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

func (ti *testImporter) Import(path string) (*types.Package, error) {
	return ti.ImportFrom(path, "", 0)
}

func (ti *testImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if !strings.HasPrefix(path, "tracenet/") {
		return ti.std.ImportFrom(path, dir, mode)
	}
	resolverOnce.Do(func() {
		resolver, resolverErr = lint.NewResolver(moduleRoot(ti.t))
	})
	if resolverErr != nil {
		return nil, fmt.Errorf("linttest: module resolver: %w", resolverErr)
	}
	return resolver.Import(path)
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot(t *testing.T) string {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("linttest: no go.mod above %s", dir)
		}
		dir = parent
	}
}
