package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"tracenet/internal/lint"
)

// TestAnalyzerSuite sanity-checks the configured multichecker surface.
func TestAnalyzerSuite(t *testing.T) {
	all := lint.All()
	if len(all) != 8 {
		t.Fatalf("lint.All() = %d analyzers, want 8", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{
		"determinism", "clocksource", "maprange", "lockcheck",
		"wireerr", "ipalias", "atomicmix", "hothandle",
	} {
		if !seen[want] {
			t.Errorf("missing analyzer %q", want)
		}
	}
}

// TestRepositoryClean runs the full suite over the repository, the same gate
// scripts/check.sh enforces: the tree must stay free of invariant violations.
// A failure here reproduces `go run ./cmd/tracenetlint ./...`.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo lint is not short")
	}
	root := repoRoot(t)
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func repoRoot(t *testing.T) string {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}
