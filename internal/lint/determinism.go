package lint

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer forbids ambient sources of non-determinism in the
// measurement-critical packages. The paper's subnet-inference results (§3)
// are validated by replaying seeded campaigns; PR 1's chaos harness asserts
// bit-identical reruns. Both guarantees die the moment a probe observation
// depends on the wall clock or the shared global random stream, so those
// packages must use the simulator's virtual clock and an injected seeded
// *rand.Rand exclusively.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time and global math/rand in measurement code; " +
		"use the virtual clock and injected seeded *rand.Rand",
	Run: runDeterminism,
}

// forbiddenTimeFuncs are the package-level time functions that read or wait
// on the wall clock. time.Duration arithmetic and constants stay legal.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
	"Since": true, "Until": true,
}

// allowedRandFuncs are the math/rand constructors for seeded local streams;
// every other package-level function draws from the shared global source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				// Methods (e.g. (*rand.Rand).Intn, (time.Time).Sub) operate
				// on injected state and are fine.
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock; measurement code must use the virtual clock (netsim ticks)",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global rand.%s draws from the shared unseeded stream; use an injected seeded *rand.Rand",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
