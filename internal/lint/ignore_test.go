package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestBareIgnoreRejected: a //lint:ignore with no reason (or no analyzer)
// suppresses nothing and is itself reported, so every suppression in the tree
// carries its justification.
func TestBareIgnoreRejected(t *testing.T) {
	const src = `package bare

import "time"

func noReason() int64 {
	//lint:ignore determinism
	return time.Now().UnixNano()
}

func noAnalyzer() int64 {
	//lint:ignore
	return time.Now().UnixNano()
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "bare.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := CheckFiles(fset, "bare", "", []*ast.File{f}, importer.ForCompiler(fset, "source", nil))
	if err != nil {
		t.Fatal(err)
	}
	det := *DeterminismAnalyzer
	det.Match = nil
	diags, err := Run([]*Package{pkg}, []*Analyzer{&det})
	if err != nil {
		t.Fatal(err)
	}
	var bare, clock int
	for _, d := range diags {
		switch {
		case d.Analyzer == ignoreAnalyzer && strings.Contains(d.Message, "needs an analyzer name and a reason"):
			bare++
		case d.Analyzer == "determinism" && strings.Contains(d.Message, "reads the wall clock"):
			clock++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if bare != 2 {
		t.Errorf("bare-directive rejections = %d, want 2", bare)
	}
	if clock != 2 {
		t.Errorf("determinism findings = %d, want 2 (bare ignores must not suppress)", clock)
	}
}
