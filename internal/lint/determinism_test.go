package lint_test

import (
	"testing"

	"tracenet/internal/lint"
	"tracenet/internal/lint/linttest"
)

func TestDeterminismAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata", lint.DeterminismAnalyzer, "determinism")
}
