// Package atomicmix exercises the atomic/plain access mix detector. The mix
// is inherently cross-function — the atomic site and the plain site live in
// different functions — and the exemption for pre-publication code depends on
// call-graph reachability from the exported API, so a single-function analyzer
// cannot reproduce any of these verdicts.
package atomicmix

import "sync/atomic"

type counter struct {
	hits  uint32
	total uint32
	cold  uint32
}

// Bump is the atomic access site for every field.
func Bump(c *counter) {
	atomic.AddUint32(&c.hits, 1)
	atomic.AddUint32(&c.total, 1)
	atomic.AddUint32(&c.cold, 1)
}

// Run reaches the plain access two call-graph edges down.
func Run(c *counter) uint32 {
	return step(c)
}

func step(c *counter) uint32 {
	return read(c)
}

func read(c *counter) uint32 {
	return c.hits // want `field hits is accessed via sync/atomic`
}

// Peek mixes directly in an exported function.
func Peek(c *counter) uint32 {
	return c.total // want `field total is accessed via sync/atomic`
}

// newCounter is unexported and uncalled by any exported function, so reset's
// plain write is pre-publication and legal.
func newCounter() *counter {
	c := &counter{}
	reset(c)
	return c
}

func reset(c *counter) {
	c.total = 0
}

// Load is atomic everywhere: clean.
func Load(c *counter) uint32 {
	return atomic.LoadUint32(&c.cold)
}
