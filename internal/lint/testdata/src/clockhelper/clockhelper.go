// Package clockhelper stands in for an out-of-scope utility package: the
// clocksource testdata imports it, so the ambient sources sit two and three
// call-graph edges away from the measurement code under analysis.
package clockhelper

import (
	"math/rand"
	"time"
)

// Stamp is two edges from the wall clock (Stamp → now → time.Now).
func Stamp() int64 { return now() }

func now() int64 { return time.Now().UnixNano() }

// Jitter is two edges from the global rand stream.
func Jitter() int { return draw() }

func draw() int { return rand.Intn(10) }

// Pure has no path to an ambient source.
func Pure(x int) int { return x * 2 }
