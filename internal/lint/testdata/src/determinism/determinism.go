// Package determinism exercises the determinism analyzer: wall-clock reads
// and global math/rand draws are flagged; injected seeded streams and pure
// Duration arithmetic are not.
package determinism

import (
	"math/rand"
	"time"
)

// Bad: ambient non-determinism.
func clockAndGlobalRand() (int64, int) {
	now := time.Now().UnixNano()       // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)       // want `time\.Sleep reads the wall clock`
	<-time.After(time.Millisecond)     // want `time\.After reads the wall clock`
	n := rand.Intn(10)                 // want `global rand\.Intn draws from the shared unseeded stream`
	f := rand.Float64()                // want `global rand\.Float64 draws from the shared unseeded stream`
	rand.Shuffle(n, func(i, j int) {}) // want `global rand\.Shuffle draws from the shared unseeded stream`
	return now, n + int(f)
}

// Good: a seeded local stream, constructed with the allowed constructors,
// and time.Duration values that never touch the wall clock.
func seededStream(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	const tick = 10 * time.Millisecond
	_ = tick
	return rng.Intn(10) + int(rng.Int63n(4))
}

// Good: methods on time.Time values (no clock read) stay legal.
func durationMath(a, b time.Time) time.Duration { return b.Sub(a) }
