// Package clocksource is the in-scope measurement package: every finding here
// is a call whose non-determinism hides at least two call-graph edges away in
// clockhelper, which the intraprocedural determinism analyzer provably cannot
// see (TestClockSourceBeyondDeterminism asserts it reports nothing on this
// package).
package clocksource

import (
	"time"

	"clockhelper"
)

func measure() int64 {
	return clockhelper.Stamp() // want `call to clockhelper.Stamp reaches a non-deterministic source: .*time.Now \(reads the wall clock\)`
}

func jitter() int {
	return clockhelper.Jitter() // want `draws from the global rand stream`
}

func clean(x int) int {
	return clockhelper.Pure(x)
}

// deferred passes the tainted function around as a value: a may-call edge.
func deferred() func() int64 {
	return clockhelper.Stamp // want `reaches a non-deterministic source`
}

// outer is clean at its own call site: inner is inside the analyzer's scope,
// so the taint is reported once, at inner's escaping edge.
func outer() int64 {
	return inner()
}

func inner() int64 {
	return clockhelper.Stamp() // want `reaches a non-deterministic source`
}

// direct sink calls are the determinism analyzer's findings, not clocksource's
// (no diagnostic expected here under clocksource).
func direct() int64 {
	return time.Now().UnixNano()
}
