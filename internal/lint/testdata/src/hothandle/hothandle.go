// Package hothandle exercises the hot-path telemetry handle check against the
// real telemetry package. The by-name lookup hides two module-local edges
// below the annotated root (exchange → record → note → Counter), which an
// intraprocedural scan of the root's body cannot see.
package hothandle

import "tracenet/internal/telemetry"

type probe struct {
	tel     *telemetry.Telemetry
	packets *telemetry.Counter
}

//tracenet:hotpath
func (p *probe) exchange() {
	p.packets.Add(1) // pre-resolved handle: clean
	p.record()       // want `performs a by-name telemetry lookup`
}

func (p *probe) record() {
	p.note()
}

func (p *probe) note() {
	p.tel.Counter("tracenet_probes_total").Add(1)
}

// once calls another hot root; the chain is reported at exchange, not here.
//
//tracenet:hotpath
func (p *probe) once() {
	p.exchange()
}

// setup is not a hot root: by-name lookups are exactly what setup code
// should do.
func (p *probe) setup() {
	p.packets = p.tel.Counter("tracenet_packets_total")
}
