// Package ignore exercises //lint:ignore suppression: well-formed directives
// silence exactly the named analyzer on their own or the following line, and
// nothing else.
package ignore

import "time"

// suppressed carries a well-formed directive on the line above the finding.
func suppressed() int64 {
	//lint:ignore determinism replay shim deliberately reads the wall clock
	return time.Now().UnixNano()
}

// trailing carries the directive on the finding's own line.
func trailing() int64 {
	return time.Now().UnixNano() //lint:ignore determinism trailing form
}

// sibling has no directive: the same finding still fires.
func sibling() int64 {
	return time.Now().UnixNano() // want `reads the wall clock`
}

// wrongName names a different analyzer, which suppresses nothing here.
func wrongName() int64 {
	//lint:ignore maprange not the analyzer that fires on this line
	return time.Now().UnixNano() // want `reads the wall clock`
}
