// Package callgraph is the builder's own fixture: a cycle, a method value, an
// interface dispatch, unresolved function-value calls, and a ref edge, dumped
// against a golden file.
package callgraph

type greeter interface {
	greet() string
}

type impl struct{}

func (impl) greet() string { return "hi" }

// a and b form a cycle.
func a(n int) int {
	if n == 0 {
		return 0
	}
	return b(n - 1)
}

func b(n int) int {
	return a(n)
}

// methodValue passes a concrete method around as a value.
func methodValue(i impl) func() string {
	return i.greet
}

// dynamic dispatches through the interface: callee unknown, edge conservative.
func dynamic(g greeter) string {
	return g.greet()
}

// unknown calls a function-typed parameter: unresolved callee.
func unknown(f func() int) int {
	return f()
}

// use passes leaf into run, which invokes it indirectly.
func use() {
	run(leaf)
}

func run(f func()) {
	f()
}

func leaf() {}
