// Package wireerr exercises the wire-error-discipline analyzer: discarded
// error returns from the tracenet/internal/wire codec and from encoding/json
// are flagged; handled errors and error-free helpers are not.
package wireerr

import (
	"encoding/json"
	"io"

	"tracenet/internal/ipv4"
	"tracenet/internal/wire"
)

func addr() ipv4.Addr { return ipv4.MustParseAddr("10.0.0.1") }

// Bad: wire decode/encode errors dropped on the floor.
func droppedWireErrors(raw []byte) {
	wire.Decode(raw) // want `result of wire\.Decode includes an error that is discarded`
	pkt := wire.NewEchoRequest(addr(), addr(), 9, 1, 2)
	pkt.Encode()            // want `includes an error that is discarded`
	_, _ = wire.Decode(raw) // want `error result of wire\.Decode assigned to _`
	enc, _ := pkt.Encode()  // want `assigned to _`
	_ = enc
}

// Bad: checkpoint-style JSON encode/decode errors discarded.
func droppedJSONErrors(w io.Writer, v any) {
	json.NewEncoder(w).Encode(v) // want `includes an error that is discarded`
	_, _ = json.Marshal(v)       // want `assigned to _`
}

// Good: every error reaches a handler.
func handled(raw []byte, w io.Writer, v any) error {
	if _, err := wire.Decode(raw); err != nil {
		return err
	}
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return err
	}
	return nil
}

// Good: error-free wire helpers need nothing.
func errFree(opts []byte) {
	wire.StampRecordRoute(opts, addr())
}
