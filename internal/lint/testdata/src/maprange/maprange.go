// Package maprange exercises the map-iteration-order analyzer: loops whose
// iteration order reaches a slice or a stream are flagged; match-and-exit
// loops, commutative folds, and collect-then-sort functions are not.
package maprange

import (
	"fmt"
	"io"
	"sort"
)

// Bad: the output slice's element order follows randomized map order.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order escapes via append`
		out = append(out, k)
	}
	return out
}

// Bad: stream writes happen in map order.
func dump(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration order escapes via fmt\.Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Good: collect then sort — order is re-established before anyone observes it.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Good: a local sorting helper counts as collect-then-sort too.
func keysSortedLocally(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) { sort.Strings(s) }

// Good: match-and-exit observes at most one element.
func lookup(m map[string]int, want int) string {
	for k, v := range m {
		if v == want {
			return k
		}
	}
	return ""
}

// Good: commutative fold — summation doesn't depend on order.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
