// Package lockcheck exercises the mutex-guarded-fields analyzer: fields
// declared after a sync.Mutex are guarded; functions touching them must lock
// or carry a "caller holds" doc comment. Fields before the mutex are
// unguarded.
package lockcheck

import "sync"

// Engine mirrors netsim.Network's layout: Topo is immutable (before mu),
// everything after mu is guarded.
type Engine struct {
	Name string // immutable, unguarded

	mu    sync.Mutex
	clock uint64
	count int
}

// Good: takes the lock itself.
func (e *Engine) Tick() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clock++
	return e.clock
}

// Good: documents the contract — called with e.mu held.
func (e *Engine) step() {
	e.clock++
	e.count++
}

// Bad: touches guarded state with neither lock nor contract comment.
func (e *Engine) Skew(d uint64) {
	e.clock += d // want `clock is guarded by mu`
}

// Good: unguarded field access needs nothing.
func (e *Engine) Label() string { return e.Name }
