// Package ipalias exercises the decode-buffer-aliasing analyzer: struct
// fields that retain a sub-slice of a []byte parameter are flagged; explicit
// copies and transient local views are not.
package ipalias

type header struct {
	payload []byte
	options []byte
	kind    uint8
}

// Bad: the decoded message keeps pointing into the caller's buffer.
func (h *header) unmarshalAliasing(b []byte) {
	h.kind = b[0]
	h.payload = b[8:]  // want `field payload retains a slice of decode parameter "b"`
	h.options = b[1:5] // want `field options retains a slice of decode parameter "b"`
}

// Bad: whole-parameter retention and composite-literal retention.
func decodeAliasing(b []byte) *header {
	return &header{
		payload: b[8:], // want `composite literal field retains a slice of decode parameter "b"`
	}
}

// Good: copies own their bytes.
func (h *header) unmarshalCopying(b []byte) {
	h.kind = b[0]
	h.payload = append([]byte(nil), b[8:]...)
	h.options = append([]byte(nil), b[1:5]...)
}

// Good: local views that don't outlive the call.
func checksum(b []byte) (sum uint8) {
	view := b[1:]
	for _, v := range view {
		sum += v
	}
	return sum
}
