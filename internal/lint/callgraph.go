package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file is the interprocedural half of the lint engine: a call graph over
// every package of one load, plus a fact-propagation fixpoint (Reach) that
// analyzers use to chase properties — "reads the wall clock", "performs a
// by-name registry lookup" — through module-local call chains. The builder is
// deliberately conservative where static resolution ends: calls through
// function values and interface methods are recorded as dynamic edges
// ("unknown callee"), and bare references to functions (method values,
// functions passed as arguments) become may-call edges, so a fact can never
// be laundered by passing the offending function around as a value.

// Edge is one potential call from a function body: a direct call, a call
// through an interface method, or a bare function reference (a method value
// or a function passed as an argument — treated as a may-call).
type Edge struct {
	// Pos is the call or reference site.
	Pos token.Pos
	// Callee is the invoked function. For interface-method calls it is the
	// interface method itself (no body in the program); Dynamic is then set.
	Callee *types.Func
	// Dynamic marks interface dispatch: the concrete callee is unknown, and
	// analyzers must treat the target conservatively.
	Dynamic bool
	// Ref marks a bare function reference rather than a call expression.
	Ref bool
}

// FuncNode is one function or method with a body in the loaded program.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Edges are the node's outgoing call/reference edges in source order.
	Edges []Edge
	// Unresolved holds call sites whose callee could not be resolved to any
	// *types.Func at all (calls of function-typed variables, map/slice
	// elements, returned closures): the "unknown callee" fact.
	Unresolved []token.Pos
}

// CallGraph is the module-local call graph of one analysis load.
type CallGraph struct {
	fset  *token.FileSet
	nodes map[*types.Func]*FuncNode
	order []*FuncNode // deterministic: by package path, then position
}

// BuildCallGraph walks every function body of pkgs and records its outgoing
// edges. All packages must share one *token.FileSet (which lint.Load and the
// linttest harness guarantee).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*FuncNode)}
	if len(pkgs) > 0 {
		g.fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				collectEdges(node, fd.Body, pkg.Info)
				g.nodes[fn] = node
				g.order = append(g.order, node)
			}
		}
	}
	sort.Slice(g.order, func(i, j int) bool {
		a, b := g.order[i], g.order[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return posLess(g.fset, a.Decl.Pos(), b.Decl.Pos())
	})
	return g
}

// Node returns the graph node for fn, or nil when fn has no body in the load.
func (g *CallGraph) Node(fn *types.Func) *FuncNode { return g.nodes[fn] }

// Nodes returns every node in deterministic order.
func (g *CallGraph) Nodes() []*FuncNode { return g.order }

// collectEdges records every call and function reference in body. Function
// literals are attributed to the enclosing declaration: a closure's calls are
// reachable whenever the closure may run, which is the conservative reading.
func collectEdges(node *FuncNode, body *ast.BlockStmt, info *types.Info) {
	// First pass: remember which expressions appear in call position (so the
	// second pass can tell a call from a bare reference) and which idents are
	// the .Sel of a selector (so they aren't double-counted as plain idents).
	callFun := make(map[ast.Expr]bool)
	selIdent := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			callFun[unparen(x.Fun)] = true
		case *ast.SelectorExpr:
			selIdent[x.Sel] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fun := unparen(x.Fun)
			switch f := fun.(type) {
			case *ast.Ident:
				switch obj := info.Uses[f].(type) {
				case *types.Func:
					node.Edges = append(node.Edges, Edge{Pos: x.Pos(), Callee: obj})
				case *types.Var:
					// Calling a function-typed variable: unknown callee.
					node.Unresolved = append(node.Unresolved, x.Pos())
				}
				// Builtins and type conversions carry no edge.
			case *ast.SelectorExpr:
				switch obj := info.Uses[f.Sel].(type) {
				case *types.Func:
					node.Edges = append(node.Edges, Edge{
						Pos:     x.Pos(),
						Callee:  obj,
						Dynamic: isInterfaceMethod(obj),
					})
				case *types.Var:
					node.Unresolved = append(node.Unresolved, x.Pos())
				}
			case *ast.FuncLit:
				// Immediately-invoked literal: its body is walked anyway.
			default:
				// Anything else (map/slice index yielding a func, a call
				// returning a func) is an unknown callee.
				node.Unresolved = append(node.Unresolved, x.Pos())
			}
		case *ast.Ident:
			if callFun[ast.Expr(x)] || selIdent[x] {
				return true
			}
			if fn, ok := info.Uses[x].(*types.Func); ok {
				node.Edges = append(node.Edges, Edge{Pos: x.Pos(), Callee: fn, Ref: true})
			}
		case *ast.SelectorExpr:
			if callFun[ast.Expr(x)] {
				return true
			}
			if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
				node.Edges = append(node.Edges, Edge{
					Pos:     x.Pos(),
					Callee:  fn,
					Dynamic: isInterfaceMethod(fn),
					Ref:     true,
				})
			}
		}
		return true
	})
}

func unparen(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

// isInterfaceMethod reports whether fn is declared on an interface type, i.e.
// a call through it is dynamic dispatch.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

func posLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	return pa.Column < pb.Column
}

// FuncDisplay renders fn the way diagnostics name functions: methods as
// (*T).M or T.M, functions as pkgname.F — qualified with the package name
// when fn lives outside rel.
func FuncDisplay(fn *types.Func, rel *types.Package) string {
	qual := func(p *types.Package) string {
		if p == rel {
			return ""
		}
		return p.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := types.TypeString(sig.Recv().Type(), qual)
		if strings.HasPrefix(rt, "*") {
			return "(" + rt + ")." + fn.Name()
		}
		return rt + "." + fn.Name()
	}
	if fn.Pkg() != nil && fn.Pkg() != rel {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// Dump writes the graph as stable text — one line per edge, nodes and edges
// in deterministic order — for golden-file tests:
//
//	a -> b (callgraph.go:12:9)
//	a -> io.Writer.Write (callgraph.go:14:2) [dynamic]
//	c -> d (callgraph.go:20:2) [ref]
//	e ~> unknown (callgraph.go:30:2)
func (g *CallGraph) Dump(w io.Writer) {
	for _, node := range g.order {
		name := FuncDisplay(node.Fn, node.Pkg.Types)
		for _, e := range node.Edges {
			pos := g.fset.Position(e.Pos)
			marks := ""
			if e.Dynamic {
				marks += " [dynamic]"
			}
			if e.Ref {
				marks += " [ref]"
			}
			fmt.Fprintf(w, "%s -> %s (%s:%d:%d)%s\n",
				name, FuncDisplay(e.Callee, node.Pkg.Types),
				baseName(pos.Filename), pos.Line, pos.Column, marks)
		}
		for _, p := range node.Unresolved {
			pos := g.fset.Position(p)
			fmt.Fprintf(w, "%s ~> unknown (%s:%d:%d)\n",
				name, baseName(pos.Filename), pos.Line, pos.Column)
		}
	}
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// SinkFunc classifies a call target: a non-empty return marks fn as a fact
// source (a "sink" the analyzers chase), and the string says why — e.g.
// "reads the wall clock". It is consulted for every callee, including ones
// with no body in the program (stdlib functions, resolver-loaded imports).
type SinkFunc func(fn *types.Func) string

// ReachSet answers, for every function in the program, whether it can reach
// a sink through the call graph, with a shortest witness path for
// diagnostics. Built by CallGraph.Reach via breadth-first fixpoint from the
// sinks backward, so witness chains are minimal and deterministic.
type ReachSet struct {
	g       *CallGraph
	sink    SinkFunc
	reasons map[*types.Func]string
	via     map[*types.Func]Edge
	depth   map[*types.Func]int
}

// Reach runs the fact-propagation fixpoint for one sink classifier.
func (g *CallGraph) Reach(sink SinkFunc) *ReachSet {
	r := &ReachSet{
		g:       g,
		sink:    sink,
		reasons: make(map[*types.Func]string),
		via:     make(map[*types.Func]Edge),
		depth:   make(map[*types.Func]int),
	}
	for changed, round := true, 1; changed; round++ {
		changed = false
		for _, node := range g.order {
			if _, done := r.via[node.Fn]; done {
				continue
			}
			for _, e := range node.Edges {
				if r.calleeDepth(e.Callee) < round {
					r.via[node.Fn] = e
					r.depth[node.Fn] = round
					changed = true
					break
				}
			}
		}
	}
	return r
}

// calleeDepth is 0 for sinks, the taint depth for tainted program functions,
// and a large value otherwise.
func (r *ReachSet) calleeDepth(fn *types.Func) int {
	if r.Reason(fn) != "" {
		return 0
	}
	if d, ok := r.depth[fn]; ok {
		return d
	}
	return int(^uint(0) >> 1)
}

// Reason returns the sink classification of fn ("" when fn is not a sink),
// memoized.
func (r *ReachSet) Reason(fn *types.Func) string {
	if reason, ok := r.reasons[fn]; ok {
		return reason
	}
	reason := r.sink(fn)
	r.reasons[fn] = reason
	return reason
}

// Tainted reports whether fn transitively reaches a sink (sinks themselves
// are tainted too).
func (r *ReachSet) Tainted(fn *types.Func) bool {
	if r.Reason(fn) != "" {
		return true
	}
	_, ok := r.via[fn]
	return ok
}

// Path returns the witness chain from fn to the sink: successive call edges,
// ending with the edge into the sink. Nil when fn is untainted or itself a
// sink.
func (r *ReachSet) Path(fn *types.Func) []Edge {
	var out []Edge
	for {
		e, ok := r.via[fn]
		if !ok {
			return out
		}
		out = append(out, e)
		if r.Reason(e.Callee) != "" {
			return out
		}
		fn = e.Callee
	}
}

// Describe renders fn's witness chain for a diagnostic: the called functions
// in order, ending with the sink and its reason, e.g.
//
//	(*Telemetry).Incident → (*Telemetry).Counter (by-name registry lookup)
func (r *ReachSet) Describe(fn *types.Func, rel *types.Package) string {
	path := r.Path(fn)
	if len(path) == 0 {
		return ""
	}
	var b strings.Builder
	for i, e := range path {
		if i > 0 {
			b.WriteString(" → ")
		}
		b.WriteString(FuncDisplay(e.Callee, rel))
	}
	last := path[len(path)-1].Callee
	fmt.Fprintf(&b, " (%s)", r.Reason(last))
	return b.String()
}
