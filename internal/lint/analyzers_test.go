package lint_test

import (
	"strings"
	"testing"

	"tracenet/internal/lint"
	"tracenet/internal/lint/linttest"
)

func TestMapRangeAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapRangeAnalyzer, "maprange")
}

func TestLockCheckAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata", lint.LockCheckAnalyzer, "lockcheck")
}

func TestWireErrAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata", lint.WireErrAnalyzer, "wireerr")
}

func TestIPAliasAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata", lint.IPAliasAnalyzer, "ipalias")
}

// matchOnly scopes an analyzer to exactly one testdata package, modelling the
// in-scope/out-of-scope split the interprocedural analyzers reason about.
func matchOnly(pkg string) func(string) bool {
	return func(p string) bool { return p == pkg }
}

func TestClockSourceAnalyzer(t *testing.T) {
	linttest.RunScoped(t, "testdata", lint.ClockSourceAnalyzer,
		matchOnly("clocksource"), "clockhelper", "clocksource")
}

// TestClockSourceBeyondDeterminism proves the interprocedural cases are ones
// the PR-2 intraprocedural determinism analyzer misses: scoped to the same
// measurement package, determinism reports nothing there — every ambient
// source sits ≥2 call-graph edges away in clockhelper.
func TestClockSourceBeyondDeterminism(t *testing.T) {
	diags := linttest.Diagnostics(t, "testdata", lint.DeterminismAnalyzer,
		matchOnly("clocksource"), "clockhelper", "clocksource")
	// The only thing determinism can see is func direct's literal time.Now —
	// the one case clocksource deliberately leaves to it.
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "time.Now reads the wall clock") {
		t.Errorf("determinism on clocksource testdata = %v, want exactly the direct time.Now finding", diags)
	}
}

func TestAtomicMixAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata", lint.AtomicMixAnalyzer, "atomicmix")
}

func TestHotHandleAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata", lint.HotHandleAnalyzer, "hothandle")
}

// TestIgnoreDirectives proves a well-formed //lint:ignore suppresses exactly
// the named analyzer on its own or the following line, while unsuppressed
// siblings still fire.
func TestIgnoreDirectives(t *testing.T) {
	linttest.Run(t, "testdata", lint.DeterminismAnalyzer, "ignore")
}
