package lint_test

import (
	"testing"

	"tracenet/internal/lint"
	"tracenet/internal/lint/linttest"
)

func TestMapRangeAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapRangeAnalyzer, "maprange")
}

func TestLockCheckAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata", lint.LockCheckAnalyzer, "lockcheck")
}

func TestWireErrAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata", lint.WireErrAnalyzer, "wireerr")
}

func TestIPAliasAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata", lint.IPAliasAnalyzer, "ipalias")
}
