package lint

import (
	"bytes"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture type-checks one testdata package that imports nothing outside
// the standard library.
func loadFixture(t *testing.T, pkg string) *Package {
	t.Helper()
	srcDir := filepath.Join("testdata", "src", pkg)
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(srcDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	loaded, err := CheckFiles(fset, pkg, srcDir, files, importer.ForCompiler(fset, "source", nil))
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

func fixtureGraph(t *testing.T) *CallGraph {
	t.Helper()
	return BuildCallGraph([]*Package{loadFixture(t, "callgraph")})
}

// findFn resolves a package-level function or method by its display name.
func findFn(t *testing.T, g *CallGraph, name string) *types.Func {
	t.Helper()
	for _, n := range g.Nodes() {
		if FuncDisplay(n.Fn, n.Pkg.Types) == name {
			return n.Fn
		}
	}
	t.Fatalf("function %s not in graph", name)
	return nil
}

// TestCallGraphGolden pins the builder's full output — edge kinds, order, and
// rendering — against testdata/callgraph.golden. Regenerate with
// LINT_UPDATE_GOLDEN=1 go test ./internal/lint -run TestCallGraphGolden.
func TestCallGraphGolden(t *testing.T) {
	var buf bytes.Buffer
	fixtureGraph(t).Dump(&buf)
	golden := filepath.Join("testdata", "callgraph.golden")
	if os.Getenv("LINT_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("call graph dump mismatch:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestReachCycle: the a↔b cycle terminates the fixpoint and stays untainted
// when nothing in it reaches a sink.
func TestReachCycle(t *testing.T) {
	g := fixtureGraph(t)
	r := g.Reach(func(fn *types.Func) string {
		if fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			return "reads the wall clock"
		}
		return ""
	})
	for _, name := range []string{"a", "b"} {
		if fn := findFn(t, g, name); r.Tainted(fn) {
			t.Errorf("%s tainted, want clean (cycle with no sink)", name)
		}
	}
}

// TestReachRefEdge: a bare function reference (leaf passed into run) is a
// may-call, so use is tainted when leaf is the sink — and the witness path
// ends at the sink with the right reason.
func TestReachRefEdge(t *testing.T) {
	g := fixtureGraph(t)
	r := g.Reach(func(fn *types.Func) string {
		if fn.Name() == "leaf" {
			return "is the sink"
		}
		return ""
	})
	use := findFn(t, g, "use")
	if !r.Tainted(use) {
		t.Fatal("use not tainted through ref edge to leaf")
	}
	pkg := g.Node(use).Pkg.Types
	if got := r.Describe(use, pkg); got != "leaf (is the sink)" {
		t.Errorf("Describe(use) = %q", got)
	}
	// run only ever calls its function-typed parameter: unresolved, so the
	// conservative fact is recorded as an unknown callee, not a taint.
	run := findFn(t, g, "run")
	if r.Tainted(run) {
		t.Error("run tainted, want clean (unknown callee is a separate fact)")
	}
	if n := g.Node(run); len(n.Unresolved) != 1 {
		t.Errorf("run unresolved sites = %d, want 1", len(n.Unresolved))
	}
}

// TestReachDynamic: interface dispatch falls back to the interface method
// itself as a conservative callee, so sinking the interface method taints the
// dynamic caller.
func TestReachDynamic(t *testing.T) {
	g := fixtureGraph(t)
	r := g.Reach(func(fn *types.Func) string {
		if fn.Name() == "greet" && isInterfaceMethod(fn) {
			return "dynamic dispatch"
		}
		return ""
	})
	dynamic := findFn(t, g, "dynamic")
	if !r.Tainted(dynamic) {
		t.Fatal("dynamic not tainted through interface-method sink")
	}
	// The concrete method is a different object: methodValue references
	// impl.greet, not greeter.greet, and stays clean under this sink.
	if mv := findFn(t, g, "methodValue"); r.Tainted(mv) {
		t.Error("methodValue tainted via concrete method, want clean")
	}
}

// TestReachMethodValue: sinking the concrete method catches the method value
// (a may-call edge), proving facts cannot be laundered by passing methods
// around as values.
func TestReachMethodValue(t *testing.T) {
	g := fixtureGraph(t)
	r := g.Reach(func(fn *types.Func) string {
		if fn.Name() == "greet" && !isInterfaceMethod(fn) {
			return "concrete sink"
		}
		return ""
	})
	if mv := findFn(t, g, "methodValue"); !r.Tainted(mv) {
		t.Error("methodValue not tainted through method-value ref edge")
	}
}
