package lint

import (
	"go/types"
)

// ClockSourceAnalyzer is the interprocedural companion to determinism: it
// chases wall-clock reads and global math/rand draws through the call graph,
// so a helper two packages away cannot launder non-determinism into
// measurement code. The determinism analyzer reports direct uses inside the
// measurement packages; clocksource reports the escaping call edge — a call
// from a measurement function to an out-of-scope callee whose transitive
// closure reaches time.Now, rand.Intn, and friends — with the full witness
// chain in the message. Between them every path from a determinism-contract
// root to an ambient source is caught exactly once.
var ClockSourceAnalyzer = &Analyzer{
	Name: "clocksource",
	Doc: "forbid transitive wall-clock and global math/rand reads from " +
		"measurement code: calls into helpers outside the determinism scope " +
		"whose call chains reach the ambient sources",
	Run: runClockSource,
}

// clockSink classifies the ambient non-determinism sources, sharing the
// determinism analyzer's definitions of forbidden time and rand functions.
func clockSink(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		// Methods ((*rand.Rand).Intn, (time.Time).Sub) operate on injected
		// state — same carve-out as the determinism analyzer.
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[fn.Name()] {
			return "reads the wall clock"
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[fn.Name()] {
			return "draws from the global rand stream"
		}
	}
	return ""
}

func runClockSource(pass *Pass) error {
	reach := pass.Reach("clocksource", clockSink)
	for _, node := range pass.Graph().Nodes() {
		if node.Pkg != pass.Pkg {
			continue
		}
		for _, e := range node.Edges {
			if reach.Reason(e.Callee) != "" {
				// Direct sink call: the determinism analyzer reports it.
				continue
			}
			if !reach.Tainted(e.Callee) {
				continue
			}
			if e.Callee.Pkg() != nil && pass.Matches(e.Callee.Pkg().Path()) {
				// The callee is itself in scope: the taint is reported at its
				// own escaping edge, not at every caller.
				continue
			}
			pass.Reportf(e.Pos,
				"call to %s reaches a non-deterministic source: %s",
				FuncDisplay(e.Callee, pass.Pkg.Types),
				reach.Describe(e.Callee, pass.Pkg.Types))
		}
	}
	return nil
}
