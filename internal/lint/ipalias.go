package lint

import (
	"go/ast"
	"go/types"
)

// IPAliasAnalyzer flags decode paths that retain a sub-slice of their input
// buffer in a struct field. A transport reads every datagram into a reused
// buffer; a decoded packet whose Payload (or net.IP / []byte field) aliases
// that buffer is silently rewritten by the next read — the classic
// "yesterday's reply wearing today's bytes" corruption, unreproducible and
// seed-dependent. Decoders must copy what they keep:
// append([]byte(nil), b[i:j]...).
var IPAliasAnalyzer = &Analyzer{
	Name: "ipalias",
	Doc: "flag struct fields retaining sub-slices of a []byte decode " +
		"parameter without a copy",
	Run: runIPAlias,
}

func runIPAlias(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := byteSliceParams(fd, info)
			if len(params) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					for i, lhs := range s.Lhs {
						if i >= len(s.Rhs) {
							break
						}
						checkRetention(pass, lhs, s.Rhs[i], params, info)
					}
				case *ast.CompositeLit:
					for _, elt := range s.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if isByteSliceLike(info.Types[kv.Value].Type) && aliasesParam(kv.Value, params, info) {
							pass.Reportf(kv.Pos(),
								"composite literal field retains a slice of decode parameter %q without a copy",
								paramName(kv.Value, params, info))
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkRetention flags `x.Field = b[i:j]` (and `x.Field = b`) where b is a
// []byte parameter of the enclosing function.
func checkRetention(pass *Pass, lhs, rhs ast.Expr, params map[*types.Var]bool, info *types.Info) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	if !isByteSliceLike(s.Obj().Type()) {
		return
	}
	if aliasesParam(rhs, params, info) {
		pass.Reportf(lhs.Pos(),
			"field %s retains a slice of decode parameter %q; copy it (append([]byte(nil), ...))",
			sel.Sel.Name, paramName(rhs, params, info))
	}
}

// aliasesParam reports whether e is a []byte parameter or a slice expression
// over one (through any nesting of slice expressions and parens). A call on
// the right-hand side (append, bytes.Clone-style helpers) breaks the alias.
func aliasesParam(e ast.Expr, params map[*types.Var]bool, info *types.Info) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			return ok && params[v]
		default:
			return false
		}
	}
}

// paramName names the aliased parameter for the diagnostic.
func paramName(e ast.Expr, params map[*types.Var]bool, info *types.Info) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			return x.Name
		default:
			return "?"
		}
	}
}

// byteSliceParams collects the function's parameters of type []byte (or a
// named type whose underlying type is []byte, like net.IP).
func byteSliceParams(fd *ast.FuncDecl, info *types.Info) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			v, ok := info.Defs[name].(*types.Var)
			if ok && isByteSliceLike(v.Type()) {
				out[v] = true
			}
		}
	}
	return out
}

// isByteSliceLike reports whether t's underlying type is []byte.
func isByteSliceLike(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint8
}
