package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
}

// Load resolves patterns (e.g. "./...") against the module rooted at dir and
// returns the matched non-standard-library packages, type-checked in
// dependency order. Standard-library imports are satisfied by the source
// importer (no compiled export data required), module-local imports by the
// packages checked earlier in the same load.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	matched := make(map[string]bool)
	for _, lp := range listed {
		if !lp.Standard {
			matched[lp.ImportPath] = true
		}
	}
	// Pull in module-local dependencies of the matched set so every local
	// import can be satisfied from this load (patterns like a single package
	// still need their intra-module deps type-checked first).
	deps, err := goList(dir, append([]string{"-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listedPackage)
	for i := range deps {
		lp := &deps[i]
		if !lp.Standard {
			byPath[lp.ImportPath] = lp
		}
	}

	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	ld := &loader{
		fset:    fset,
		listed:  byPath,
		std:     std,
		checked: make(map[string]*Package),
	}
	var out []*Package
	// Deterministic order: the dependency walk below is order-insensitive,
	// but diagnostics and error messages should not depend on map order.
	paths := make([]string, 0, len(matched))
	for p := range matched {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// goList runs `go list -json` with args in dir and decodes the JSON stream.
func goList(dir string, args []string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", args, err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// loader type-checks module-local packages recursively, memoizing results.
type loader struct {
	fset    *token.FileSet
	listed  map[string]*listedPackage
	std     types.ImporterFrom
	checked map[string]*Package
	stack   []string
}

func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.checked[path]; ok {
		return pkg, nil
	}
	for _, s := range l.stack {
		if s == path {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
	}
	lp, ok := l.listed[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %s not in go list output", path)
	}
	l.stack = append(l.stack, path)
	defer func() { l.stack = l.stack[:len(l.stack)-1] }()
	for _, imp := range lp.Imports {
		if _, local := l.listed[imp]; local {
			if _, err := l.load(imp); err != nil {
				return nil, err
			}
		}
	}

	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	pkg, err := CheckFiles(l.fset, lp.ImportPath, lp.Dir, files, l)
	if err != nil {
		return nil, err
	}
	l.checked[path] = pkg
	return pkg, nil
}

// Import implements types.Importer over the loader's chain: module-local
// packages come from this load, everything else from the stdlib source
// importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.checked[path]; ok {
		return pkg.Types, nil
	}
	if _, local := l.listed[path]; local {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Resolver satisfies imports of module-local packages on demand while
// sharing one type universe across every load — two packages that both
// import tracenet/internal/ipv4 see the identical *types.Package. The
// linttest harness uses one process-wide Resolver so testdata packages can
// import real module packages.
type Resolver struct {
	ld *loader
}

// NewResolver indexes every package of the module rooted at dir.
func NewResolver(dir string) (*Resolver, error) {
	deps, err := goList(dir, []string{"-deps", "./..."})
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listedPackage)
	for i := range deps {
		lp := &deps[i]
		if !lp.Standard {
			byPath[lp.ImportPath] = lp
		}
	}
	fset := token.NewFileSet()
	return &Resolver{ld: &loader{
		fset:    fset,
		listed:  byPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		checked: make(map[string]*Package),
	}}, nil
}

// Import implements types.Importer.
func (r *Resolver) Import(path string) (*types.Package, error) {
	return r.ld.Import(path)
}

// ImportFrom implements types.ImporterFrom.
func (r *Resolver) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return r.ld.ImportFrom(path, dir, mode)
}

// CheckFiles type-checks parsed files as one package and wraps the result.
// It is the shared back end of the module loader and the linttest harness.
func CheckFiles(fset *token.FileSet, path, dir string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
