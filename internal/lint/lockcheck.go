package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// LockCheckAnalyzer enforces the mutex-guarded-fields convention on the
// simulator: in any struct with a sync.Mutex/RWMutex field, the fields
// declared after the mutex are guarded by it (the standard Go layout
// convention, and how netsim.Network documents itself). A function that
// touches a guarded field must either take the lock in its own body or carry
// a doc comment declaring that its caller holds it (e.g. "called with n.mu
// held") — making the engine-side helper contract machine-checked instead of
// a section comment that refactors silently invalidate.
var LockCheckAnalyzer = &Analyzer{
	Name: "lockcheck",
	Doc: "flag access to mutex-guarded struct fields from functions that " +
		"neither lock the mutex nor document that the caller holds it",
	Run: runLockCheck,
}

// heldDocRE matches doc-comment phrasings that transfer lock responsibility
// to the caller.
var heldDocRE = regexp.MustCompile(`(?i)(mu|lock|mutex)\s+(is\s+)?held|caller\s+holds|while\s+holding|holds\s+(the\s+)?(lock|mutex)`)

func runLockCheck(pass *Pass) error {
	guarded := guardedFields(pass.Pkg.Types)
	if len(guarded) == 0 {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Doc != nil && heldDocRE.MatchString(fd.Doc.Text()) {
				continue
			}
			if locksAMutex(fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s := pass.Pkg.Info.Selections[sel]
				if s == nil || s.Kind() != types.FieldVal {
					return true
				}
				if mutexName, ok := guarded[s.Obj().(*types.Var)]; ok {
					pass.Reportf(sel.Pos(),
						"%s is guarded by %s, but this function neither locks it nor documents \"called with %s held\"",
						sel.Sel.Name, mutexName, mutexName)
				}
				return true
			})
		}
	}
	return nil
}

// guardedFields maps every mutex-guarded field object in the package to the
// name of the mutex guarding it: for each struct with a sync.Mutex/RWMutex
// field, the fields declared after the mutex.
func guardedFields(pkg *types.Package) map[*types.Var]string {
	out := make(map[*types.Var]string)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		mutexIdx, mutexName := -1, ""
		for i := 0; i < st.NumFields(); i++ {
			if isSyncMutex(st.Field(i).Type()) {
				mutexIdx, mutexName = i, st.Field(i).Name()
				break
			}
		}
		if mutexIdx < 0 {
			continue
		}
		for i := mutexIdx + 1; i < st.NumFields(); i++ {
			out[st.Field(i)] = mutexName
		}
	}
	return out
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly via
// a pointer).
func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// locksAMutex reports whether the body calls Lock or RLock on some mutex
// field (e.g. n.mu.Lock()): the function manages the lock itself.
func locksAMutex(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if name := sel.Sel.Name; name == "Lock" || name == "RLock" {
			if _, viaField := sel.X.(*ast.SelectorExpr); viaField || isIdent(sel.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isIdent(e ast.Expr) bool {
	_, ok := e.(*ast.Ident)
	return ok
}
