// Package alias implements Ally-style IP alias resolution (Spring et al.,
// Rocketfuel [21]; Gunes & Sarac [10]) — the post-processing step that turns
// interface-level data into router-level maps by grouping the addresses that
// belong to one router.
//
// The technique: many routers draw the IP identifier of every packet they
// originate from a single shared counter. Probing two candidate addresses in
// quick succession and observing mutually interleaved, close identifiers
// proves the replies came from one box. tracenet's subnet data slashes the
// O(n²) candidate space: two addresses on the same collected subnet cannot
// be aliases (a router has one interface per subnet), which is one of the
// paper's arguments for collecting subnets in the first place.
package alias

import (
	"fmt"

	"tracenet/internal/ipv4"
	"tracenet/internal/probe"
	"tracenet/internal/telemetry"
)

// Resolver runs pairwise Ally tests through an uncached prober.
type Resolver struct {
	pr *probe.Prober
	// Window is the maximum identifier span accepted as "one counter"
	// across a probe pair sequence. Default 64.
	Window uint16
	// Rounds is how many interleaved probe rounds a pair test uses.
	// Default 3.
	Rounds int

	tel    *telemetry.Telemetry
	cTests *telemetry.Counter
	cHits  *telemetry.Counter
}

// NewResolver creates a resolver probing through tr from src. The prober is
// created without a response cache: alias tests need fresh identifiers on
// every probe.
func NewResolver(tr probe.Transport, src ipv4.Addr) *Resolver {
	r := &Resolver{
		pr:     probe.New(tr, src, probe.Options{}),
		Window: 64,
		Rounds: 3,
	}
	r.SetTelemetry(nil)
	return r
}

// SetTelemetry attaches the run's telemetry layer to the resolver and its
// prober, so alias-resolution probing shares the session's metric registry,
// trace, and flight recorder.
func (r *Resolver) SetTelemetry(tel *telemetry.Telemetry) {
	r.tel = tel
	r.pr.SetTelemetry(tel)
	r.cTests = tel.Counter("tracenet_alias_tests_total")
	r.cHits = tel.Counter("tracenet_alias_aliases_total")
}

// Probes returns the number of packets spent so far.
func (r *Resolver) Probes() uint64 { return r.pr.Stats().Sent }

// SameRouter runs one Ally test: interleaved direct probes to a and b whose
// reply identifiers must form a single monotonically increasing sequence
// within the window. Unresponsive addresses and random-ID routers fail the
// test (reported as not aliases — the technique's known false-negative
// class).
func (r *Resolver) SameRouter(a, b ipv4.Addr) (bool, error) {
	if a == b {
		return true, nil
	}
	r.cTests.Inc()
	span := r.tel.StartSpan("alias", "a", a.String(), "b", b.String())
	scope := r.pr.Scope()
	same, err := r.sameRouter(a, b)
	scope.CountInto(span)
	if same {
		r.cHits.Inc()
		span.Count("aliases", 1)
	}
	span.End()
	return same, err
}

func (r *Resolver) sameRouter(a, b ipv4.Addr) (bool, error) {
	var ids []uint16
	for i := 0; i < r.Rounds; i++ {
		for _, target := range []ipv4.Addr{a, b} {
			res, err := r.pr.Direct(target)
			if err != nil {
				return false, fmt.Errorf("alias: probing %v: %w", target, err)
			}
			if !res.Alive() {
				return false, nil
			}
			ids = append(ids, res.IPID)
		}
	}
	return interleaved(ids, r.Window), nil
}

// interleaved reports whether ids form one strictly increasing sequence
// (with 16-bit wraparound) whose total span stays within window.
func interleaved(ids []uint16, window uint16) bool {
	if len(ids) < 2 {
		return false
	}
	var span uint16
	for i := 1; i < len(ids); i++ {
		delta := ids[i] - ids[i-1] // wraparound-correct unsigned delta
		if delta == 0 || delta > window {
			return false
		}
		span += delta
		if span > window {
			return false
		}
	}
	return true
}

// Constraint prunes a candidate pair before probing. Return false to skip
// the pair (known non-aliases).
type Constraint func(a, b ipv4.Addr) bool

// SameSubnetConstraint builds a Constraint from collected subnets: two
// member addresses of one subnet cannot belong to the same router.
func SameSubnetConstraint(subnets [][]ipv4.Addr) Constraint {
	subnetOf := map[ipv4.Addr]int{}
	for i, members := range subnets {
		for _, a := range members {
			subnetOf[a] = i
		}
	}
	return func(a, b ipv4.Addr) bool {
		sa, oka := subnetOf[a]
		sb, okb := subnetOf[b]
		return !(oka && okb && sa == sb)
	}
}

// QuarantineConstraint builds a Constraint from a session's quarantined
// addresses (core.Session.Quarantined): an address whose responses were
// internally inconsistent must not be merged into any alias set — a shared
// anycast-style source would otherwise collapse distinct routers into one.
func QuarantineConstraint(quarantined []ipv4.Addr) Constraint {
	bad := make(map[ipv4.Addr]bool, len(quarantined))
	for _, a := range quarantined {
		bad[a] = true
	}
	return func(a, b ipv4.Addr) bool {
		return !bad[a] && !bad[b]
	}
}

// Resolve groups addrs into alias sets (routers) by pairwise testing with
// union-find, skipping pairs rejected by any constraint. The result is a
// partition of addrs; singletons are routers with one known interface.
func (r *Resolver) Resolve(addrs []ipv4.Addr, constraints ...Constraint) ([][]ipv4.Addr, error) {
	parent := make([]int, len(addrs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}

	allowed := func(a, b ipv4.Addr) bool {
		for _, c := range constraints {
			if !c(a, b) {
				return false
			}
		}
		return true
	}
	for i := 0; i < len(addrs); i++ {
		for j := i + 1; j < len(addrs); j++ {
			if find(i) == find(j) {
				continue // already grouped transitively
			}
			if !allowed(addrs[i], addrs[j]) {
				continue
			}
			same, err := r.SameRouter(addrs[i], addrs[j])
			if err != nil {
				return nil, err
			}
			if same {
				parent[find(j)] = find(i)
			}
		}
	}

	groups := map[int][]ipv4.Addr{}
	for i, a := range addrs {
		root := find(i)
		groups[root] = append(groups[root], a)
	}
	out := make([][]ipv4.Addr, 0, len(groups))
	for i := range addrs {
		if find(i) == i {
			out = append(out, groups[i])
		}
	}
	return out, nil
}
