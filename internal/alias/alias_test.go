package alias

import (
	"testing"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/telemetry"
	"tracenet/internal/topo"
)

func addr(s string) ipv4.Addr { return ipv4.MustParseAddr(s) }

func resolver(t *testing.T, topol *netsim.Topology) (*Resolver, *netsim.Network) {
	t.Helper()
	n := netsim.New(topol, netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	return NewResolver(port, port.LocalAddr()), n
}

func TestSameRouterPositive(t *testing.T) {
	r, _ := resolver(t, topo.Figure3())
	// R4 hosts 10.0.2.3, 10.0.4.0, and 10.0.5.1.
	for _, pair := range [][2]string{
		{"10.0.2.3", "10.0.4.0"},
		{"10.0.2.3", "10.0.5.1"},
		{"10.0.0.2", "10.0.1.0"}, // R1's two interfaces
	} {
		same, err := r.SameRouter(addr(pair[0]), addr(pair[1]))
		if err != nil {
			t.Fatal(err)
		}
		if !same {
			t.Errorf("%s and %s are aliases but Ally said no", pair[0], pair[1])
		}
	}
}

func TestSameRouterNegative(t *testing.T) {
	r, _ := resolver(t, topo.Figure3())
	for _, pair := range [][2]string{
		{"10.0.2.2", "10.0.2.3"}, // R3 vs R4
		{"10.0.1.0", "10.0.1.1"}, // R1 vs R2
		{"10.0.3.1", "10.0.4.1"}, // R7 vs R5
	} {
		same, err := r.SameRouter(addr(pair[0]), addr(pair[1]))
		if err != nil {
			t.Fatal(err)
		}
		if same {
			t.Errorf("%s and %s are different routers but Ally said alias", pair[0], pair[1])
		}
	}
}

func TestSameRouterUnresponsive(t *testing.T) {
	top := topo.Figure3()
	top.IfaceByAddr(addr("10.0.2.2")).Responsive = false
	r, _ := resolver(t, top)
	same, err := r.SameRouter(addr("10.0.2.2"), addr("10.0.2.3"))
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Error("unresponsive address resolved as alias")
	}
}

func TestRandomIPIDDefeatsAlly(t *testing.T) {
	top := topo.Figure3()
	for _, rt := range top.Routers {
		if rt.Name == "R4" {
			rt.IPIDRandom = true
		}
	}
	r, _ := resolver(t, top)
	same, err := r.SameRouter(addr("10.0.2.3"), addr("10.0.4.0"))
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Error("random-ID router should defeat the Ally test (false negative expected)")
	}
}

func TestResolveGroupsFigure3(t *testing.T) {
	r, _ := resolver(t, topo.Figure3())
	addrs := []ipv4.Addr{
		addr("10.0.0.2"), addr("10.0.1.0"), // R1
		addr("10.0.1.1"), addr("10.0.2.1"), addr("10.0.3.0"), // R2
		addr("10.0.2.3"), addr("10.0.4.0"), addr("10.0.5.1"), // R4
		addr("10.0.2.2"), // R3
	}
	groups, err := r.Resolve(addrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("groups = %d, want 4 routers: %v", len(groups), groups)
	}
	sizes := map[int]int{}
	for _, g := range groups {
		sizes[len(g)]++
	}
	if sizes[2] != 1 || sizes[3] != 2 || sizes[1] != 1 {
		t.Fatalf("group sizes = %v, want one pair, two triples, one singleton", sizes)
	}
}

func TestSubnetConstraintSavesProbes(t *testing.T) {
	top := topo.Figure3()

	// First collect the subnets with tracenet, then resolve aliases with
	// and without the same-subnet constraint.
	n := netsim.New(top, netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	res, err := core.Trace(pr, addr("10.0.5.2"), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var subnets [][]ipv4.Addr
	var addrs []ipv4.Addr
	seen := map[ipv4.Addr]bool{}
	for _, s := range res.Subnets {
		subnets = append(subnets, s.Addrs)
		for _, a := range s.Addrs {
			if !seen[a] && a != addr("10.0.0.1") && a != addr("10.0.5.2") {
				seen[a] = true
				addrs = append(addrs, a)
			}
		}
	}

	unconstrained, _ := resolver(t, top)
	gu, err := unconstrained.Resolve(addrs)
	if err != nil {
		t.Fatal(err)
	}
	costU := unconstrained.Probes()

	constrained, _ := resolver(t, top)
	gc, err := constrained.Resolve(addrs, SameSubnetConstraint(subnets))
	if err != nil {
		t.Fatal(err)
	}
	costC := constrained.Probes()

	if len(gu) != len(gc) {
		t.Fatalf("constraint changed the result: %d vs %d groups", len(gu), len(gc))
	}
	if costC >= costU {
		t.Fatalf("subnet constraint saved nothing: %d vs %d probes", costC, costU)
	}
}

func TestInterleavedWindow(t *testing.T) {
	cases := []struct {
		ids    []uint16
		window uint16
		want   bool
	}{
		{[]uint16{10, 11, 12, 13}, 64, true},
		{[]uint16{10, 12, 15, 20}, 64, true},
		{[]uint16{10, 10}, 64, false},            // equal: not strictly increasing
		{[]uint16{10, 9}, 64, false},             // wraparound distance too large
		{[]uint16{10, 200}, 64, false},           // gap beyond window
		{[]uint16{65530, 65533, 2, 5}, 64, true}, // legitimate 16-bit wrap
		{[]uint16{5}, 64, false},
		{[]uint16{10, 40, 70, 100}, 64, false}, // cumulative span beyond window
	}
	for _, c := range cases {
		if got := interleaved(c.ids, c.window); got != c.want {
			t.Errorf("interleaved(%v, %d) = %v, want %v", c.ids, c.window, got, c.want)
		}
	}
}

func TestResolverTelemetry(t *testing.T) {
	n := netsim.New(topo.Figure3(), netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(n)
	r := NewResolver(port, port.LocalAddr())
	r.SetTelemetry(tel)

	same, err := r.SameRouter(addr("10.0.2.3"), addr("10.0.4.0")) // R4 aliases
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatal("known alias pair rejected")
	}
	if _, err := r.SameRouter(addr("10.0.2.3"), addr("10.0.2.2")); err != nil { // R4 vs R3
		t.Fatal(err)
	}
	if got := tel.Counter("tracenet_alias_tests_total").Value(); got != 2 {
		t.Errorf("alias tests counter = %d, want 2", got)
	}
	if got := tel.Counter("tracenet_alias_aliases_total").Value(); got != 1 {
		t.Errorf("alias hits counter = %d, want 1", got)
	}
	// The resolver's prober shares the pipeline: its probes are counted.
	if got := tel.Counter("tracenet_probe_sent_total", "proto", "icmp").Value(); got == 0 {
		t.Error("resolver probing left no probe counters")
	}
}
