package groundtruth

import (
	"sort"

	"tracenet/internal/netsim"
)

// Attribute annotates a score's error rows with the planned byzantine fault
// kind most plausibly responsible, closing the loop between the adversarial
// regimes of DESIGN.md §11 and the accuracy harness: an experiment does not
// just report that precision collapsed, it reports *which lie* minted each
// phantom or merged each superset.
//
// The heuristics key on each fault kind's observable symptom:
//
//   - echo responders mirror the probe destination as the reply source, so
//     they mint members that are not assigned anywhere in the truth — a
//     phantom row with MemberExtra > 0 blames echo first;
//   - liars rotate spoofed sources drawn from real interfaces, so their
//     phantoms are built from genuine addresses glued into invented prefixes
//     (MemberExtra == 0);
//   - a shared anycast-style source (alias-confuse) makes distinct links
//     look like one, so a superset spanning several true subnets blames it;
//   - hidden hops forward transparently and are never observed, so missed
//     rows are attributed to them when planned.
//
// Exact rows are never blamed; subset rows are blamed only when a
// fabrication kind (echo, liar) is planned, since benign subsets also
// happen. When the plan carries no adversarial fault the call is a no-op,
// so clean and classic-chaos scores are unchanged.
func Attribute(s *Score, plan netsim.FaultPlan) {
	planned := map[netsim.FaultKind]bool{}
	for _, f := range plan.Faults {
		if f.Kind.Adversarial() {
			planned[f.Kind] = true
		}
	}
	if len(planned) == 0 {
		return
	}
	// Deterministic fallback: the first planned adversarial kind in the
	// canonical FaultKinds order.
	var fallback string
	for _, k := range netsim.FaultKinds {
		if planned[k] {
			fallback = k.String()
			break
		}
	}

	for i := range s.Rows {
		row := &s.Rows[i]
		switch row.Verdict {
		case VerdictPhantom:
			switch {
			case row.MemberExtra > 0 && planned[netsim.FaultEcho]:
				row.Blame = netsim.FaultEcho.String()
			case planned[netsim.FaultLiar]:
				row.Blame = netsim.FaultLiar.String()
			default:
				row.Blame = fallback
			}
		case VerdictSuperset:
			switch {
			case row.Overlaps > 1 && planned[netsim.FaultAliasConfuse]:
				row.Blame = netsim.FaultAliasConfuse.String()
			case planned[netsim.FaultEcho]:
				row.Blame = netsim.FaultEcho.String()
			default:
				row.Blame = fallback
			}
		case VerdictSubset:
			// A too-narrow subnet under attack: fabricated alive replies at
			// boundary addresses trip the growth-stopping heuristics early
			// (echo), and mid-trace source rotation fragments one subnet
			// into shards pivoted at spoofed positions (liar). Benign
			// subsets happen too, so without either kind planned the row
			// stays unblamed.
			switch {
			case planned[netsim.FaultEcho]:
				row.Blame = netsim.FaultEcho.String()
			case planned[netsim.FaultLiar]:
				row.Blame = netsim.FaultLiar.String()
			}
		case VerdictMissed:
			if planned[netsim.FaultHiddenHop] {
				row.Blame = netsim.FaultHiddenHop.String()
			}
		}
	}
}

// BlameCount is one bucket of the blame histogram.
type BlameCount struct {
	Blame string `json:"blame"`
	Count int    `json:"count"`
}

// BlameSummary tallies the attributed rows by fault kind, ascending by kind
// name so renderers stay deterministic. Empty before Attribute runs or when
// nothing was blamed.
func (s *Score) BlameSummary() []BlameCount {
	counts := map[string]int{}
	for _, row := range s.Rows {
		if row.Blame != "" {
			counts[row.Blame]++
		}
	}
	out := make([]BlameCount, 0, len(counts))
	for b, n := range counts {
		out = append(out, BlameCount{Blame: b, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Blame < out[j].Blame })
	return out
}
