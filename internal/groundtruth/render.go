package groundtruth

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"tracenet/internal/telemetry"
)

// WriteText renders the evaluation as a deterministic human-readable report:
// headline precision/recall, the verdict histogram, the prefix-length error
// histogram, and one row per subnet.
func (s *Score) WriteText(w io.Writer) (int64, error) {
	var b strings.Builder

	fmt.Fprintf(&b, "ground-truth eval: %d true subnets, %d collected\n",
		s.TruthSubnets, s.CollectedSubnets)
	fmt.Fprintf(&b, "  subnet precision %.3f (%d/%d exact), recall %.3f (%d/%d matched exactly)\n",
		s.SubnetPrecision, s.ExactCollected, s.CollectedSubnets,
		s.SubnetRecall, s.ExactTruth, s.TruthSubnets)
	fmt.Fprintf(&b, "  address precision %.3f (%d/%d), recall %.3f (%d/%d)\n",
		s.AddrPrecision, s.CommonAddrs, s.CollectedAddrs,
		s.AddrRecall, s.CommonAddrs, s.TruthAddrs)

	b.WriteString("  verdicts:")
	for _, v := range Verdicts {
		if n := s.Count(v); n > 0 {
			fmt.Fprintf(&b, " %s %d", v, n)
		}
	}
	if s.MissedUnresponsive > 0 {
		fmt.Fprintf(&b, " (missed-unresponsive %d)", s.MissedUnresponsive)
	}
	b.WriteByte('\n')

	if len(s.PrefixErrs) > 0 {
		b.WriteString("  prefix-length error:")
		for _, pe := range s.PrefixErrs {
			fmt.Fprintf(&b, " %+d:%d", pe.Err, pe.Count)
		}
		b.WriteByte('\n')
	}

	for _, r := range s.Rows {
		switch r.Verdict {
		case VerdictMissed:
			fmt.Fprintf(&b, "  %-18s %-9s true %v [%d members]\n",
				"-", r.Verdict, r.Truth, r.MemberTotal)
		case VerdictPhantom:
			fmt.Fprintf(&b, "  %-18v %-9s overlaps no true subnet", r.Collected, r.Verdict)
			if r.MemberExtra > 0 {
				fmt.Fprintf(&b, " [%d phantom members]", r.MemberExtra)
			}
			b.WriteByte('\n')
		default:
			fmt.Fprintf(&b, "  %-18v %-9s true %v members %d/%d",
				r.Collected, r.Verdict, r.Truth, r.MemberHits, r.MemberTotal)
			if r.PrefixErr != 0 {
				fmt.Fprintf(&b, " k=%+d", r.PrefixErr)
			}
			if r.Overlaps > 1 {
				fmt.Fprintf(&b, " (spans %d true subnets)", r.Overlaps)
			}
			if r.MemberExtra > 0 {
				fmt.Fprintf(&b, " [%d phantom members]", r.MemberExtra)
			}
			b.WriteByte('\n')
		}
	}

	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// jsonRow is the artifact form of a Row: prefixes as CIDR strings, empty
// sides omitted.
type jsonRow struct {
	Verdict     Verdict `json:"verdict"`
	Collected   string  `json:"collected,omitempty"`
	Truth       string  `json:"truth,omitempty"`
	PrefixErr   int     `json:"prefix_err,omitempty"`
	Overlaps    int     `json:"overlaps,omitempty"`
	MemberHits  int     `json:"member_hits,omitempty"`
	MemberTotal int     `json:"member_total,omitempty"`
	MemberExtra int     `json:"member_extra,omitempty"`
}

// jsonDoc is the JSON artifact schema. Every field is a scalar or a
// deterministically ordered slice, so same-input serializations are
// byte-identical.
type jsonDoc struct {
	TruthSubnets       int              `json:"truth_subnets"`
	CollectedSubnets   int              `json:"collected_subnets"`
	ExactCollected     int              `json:"exact_collected"`
	ExactTruth         int              `json:"exact_truth"`
	MissedUnresponsive int              `json:"missed_unresponsive,omitempty"`
	SubnetPrecision    float64          `json:"subnet_precision"`
	SubnetRecall       float64          `json:"subnet_recall"`
	TruthAddrs         int              `json:"truth_addrs"`
	CollectedAddrs     int              `json:"collected_addrs"`
	CommonAddrs        int              `json:"common_addrs"`
	AddrPrecision      float64          `json:"addr_precision"`
	AddrRecall         float64          `json:"addr_recall"`
	Verdicts           map[string]int   `json:"verdicts"`
	PrefixErrs         []PrefixErrCount `json:"prefix_errs,omitempty"`
	Rows               []jsonRow        `json:"rows"`
}

// WriteJSON renders the evaluation as an indented JSON artifact. Output is
// deterministic: rows keep their order, histograms are sorted, and the
// verdict map serializes with encoding/json's sorted keys.
func (s *Score) WriteJSON(w io.Writer) error {
	doc := jsonDoc{
		TruthSubnets:       s.TruthSubnets,
		CollectedSubnets:   s.CollectedSubnets,
		ExactCollected:     s.ExactCollected,
		ExactTruth:         s.ExactTruth,
		MissedUnresponsive: s.MissedUnresponsive,
		SubnetPrecision:    s.SubnetPrecision,
		SubnetRecall:       s.SubnetRecall,
		TruthAddrs:         s.TruthAddrs,
		CollectedAddrs:     s.CollectedAddrs,
		CommonAddrs:        s.CommonAddrs,
		AddrPrecision:      s.AddrPrecision,
		AddrRecall:         s.AddrRecall,
		Verdicts:           make(map[string]int, len(Verdicts)),
		PrefixErrs:         s.PrefixErrs,
		Rows:               make([]jsonRow, 0, len(s.Rows)),
	}
	for _, v := range Verdicts {
		doc.Verdicts[string(v)] = s.Count(v)
	}
	for _, r := range s.Rows {
		jr := jsonRow{
			Verdict:     r.Verdict,
			PrefixErr:   r.PrefixErr,
			Overlaps:    r.Overlaps,
			MemberHits:  r.MemberHits,
			MemberTotal: r.MemberTotal,
			MemberExtra: r.MemberExtra,
		}
		if r.Verdict != VerdictMissed {
			jr.Collected = r.Collected.String()
		}
		if r.Verdict != VerdictPhantom {
			jr.Truth = r.Truth.String()
		}
		doc.Rows = append(doc.Rows, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ppm converts a ratio in [0,1] to integer parts-per-million, the fixed-point
// form the int64 gauge registry carries.
func ppm(r float64) int64 { return int64(r*1e6 + 0.5) }

// Export mirrors the evaluation onto the telemetry registry as the eval_*
// metric families, so accuracy is observable alongside probe cost. All
// series are registered even when zero, keeping expositions stable.
func (s *Score) Export(tel *telemetry.Telemetry) {
	for _, v := range Verdicts {
		tel.Counter("tracenet_eval_subnets_total", "verdict", string(v)).Add(uint64(s.Count(v)))
	}
	tel.Counter("tracenet_eval_addrs_total", "class", "common").Add(uint64(s.CommonAddrs))
	tel.Counter("tracenet_eval_addrs_total", "class", "collected_only").Add(uint64(s.CollectedAddrs - s.CommonAddrs))
	tel.Counter("tracenet_eval_addrs_total", "class", "missed").Add(uint64(s.TruthAddrs - s.CommonAddrs))
	tel.Gauge("tracenet_eval_subnet_precision_ppm").Set(ppm(s.SubnetPrecision))
	tel.Gauge("tracenet_eval_subnet_recall_ppm").Set(ppm(s.SubnetRecall))
	tel.Gauge("tracenet_eval_addr_precision_ppm").Set(ppm(s.AddrPrecision))
	tel.Gauge("tracenet_eval_addr_recall_ppm").Set(ppm(s.AddrRecall))
}
