package groundtruth

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/telemetry"
	"tracenet/internal/topo"
)

func addr(s string) ipv4.Addr     { return ipv4.MustParseAddr(s) }
func prefix(s string) ipv4.Prefix { return ipv4.MustParsePrefix(s) }

func addrs(ss ...string) []ipv4.Addr {
	out := make([]ipv4.Addr, len(ss))
	for i, s := range ss {
		out[i] = addr(s)
	}
	return out
}

func TestFromTopologyFigure3(t *testing.T) {
	tr := FromTopology(topo.Figure3(), Options{})
	want := []struct {
		prefix  string
		members []string
		p2p     bool
		host    bool
	}{
		{"10.0.0.0/30", []string{"10.0.0.1", "10.0.0.2"}, true, true},
		{"10.0.1.0/31", []string{"10.0.1.0", "10.0.1.1"}, true, false},
		{"10.0.2.0/24", []string{"10.0.2.1", "10.0.2.2", "10.0.2.3", "10.0.2.4"}, false, false},
		{"10.0.3.0/31", []string{"10.0.3.0", "10.0.3.1"}, true, false},
		{"10.0.4.0/31", []string{"10.0.4.0", "10.0.4.1"}, true, false},
		{"10.0.5.0/30", []string{"10.0.5.1", "10.0.5.2"}, true, true},
	}
	if len(tr.Subnets) != len(want) {
		t.Fatalf("subnets = %d, want %d: %+v", len(tr.Subnets), len(want), tr.Subnets)
	}
	for i, w := range want {
		got := tr.Subnets[i]
		if got.Prefix != prefix(w.prefix) {
			t.Errorf("subnet %d prefix = %v, want %s", i, got.Prefix, w.prefix)
		}
		if len(got.Addrs) != len(w.members) {
			t.Fatalf("subnet %s members = %v, want %v", w.prefix, got.Addrs, w.members)
		}
		for j, m := range w.members {
			if got.Addrs[j] != addr(m) {
				t.Errorf("subnet %s member %d = %v, want %s", w.prefix, j, got.Addrs[j], m)
			}
		}
		if got.PointToPoint != w.p2p {
			t.Errorf("subnet %s p2p = %v, want %v", w.prefix, got.PointToPoint, w.p2p)
		}
		if got.HostAttached != w.host {
			t.Errorf("subnet %s host = %v, want %v", w.prefix, got.HostAttached, w.host)
		}
	}
	if tr.AddrCount() != 14 {
		t.Errorf("AddrCount = %d, want 14", tr.AddrCount())
	}
	if !tr.HasAddr(addr("10.0.2.4")) || tr.HasAddr(addr("10.0.2.5")) {
		t.Error("HasAddr misclassifies membership")
	}
	if s := tr.ByPrefix(prefix("10.0.2.0/24")); s == nil || len(s.Addrs) != 4 {
		t.Errorf("ByPrefix(10.0.2.0/24) = %+v", s)
	}
}

func TestFromTopologyExcludeHostSubnets(t *testing.T) {
	tr := FromTopology(topo.Figure3(), Options{ExcludeHostSubnets: true})
	if len(tr.Subnets) != 4 {
		t.Fatalf("core subnets = %d, want 4: %+v", len(tr.Subnets), tr.Subnets)
	}
	for _, s := range tr.Subnets {
		if s.HostAttached {
			t.Errorf("host subnet %v leaked into core universe", s.Prefix)
		}
	}
}

// collect runs a clean full session over the topology toward each
// destination and reconciles the result through a topology map.
func collect(t *testing.T, top *netsim.Topology, dests ...string) []CollectedSubnet {
	t.Helper()
	n := netsim.New(top, netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{})
	sess := core.NewSession(pr, core.Config{})
	for _, dst := range addrs(dests...) {
		if _, err := sess.Trace(dst); err != nil {
			t.Fatalf("trace %v: %v", dst, err)
		}
	}
	return FromCoreSubnets(sess.Subnets())
}

func collectFigure3(t *testing.T) []CollectedSubnet {
	t.Helper()
	return collect(t, topo.Figure3(), "10.0.3.1", "10.0.4.1", "10.0.5.2")
}

// denseTopology builds a topology whose every subnet is exactly inferable
// from its assigned addresses: /31 and /30 links, plus a /29 LAN with all six
// usable addresses assigned. (Contrast figure 3's 10.0.2.0/24, where only
// four addresses are assigned, so the minimal covering prefix — the best any
// collector can infer — is a /29.)
func denseTopology() *netsim.Topology {
	b := netsim.NewBuilder()
	v := b.Host("vantage")
	r1 := b.Router("R1")
	r2 := b.Router("R2")
	r3 := b.Router("R3")
	r4 := b.Router("R4")
	r5 := b.Router("R5")
	r6 := b.Router("R6")
	r7 := b.Router("R7")
	d := b.Host("dest")

	a := b.Subnet("10.1.0.0/30")
	b.Attach(v, a, "10.1.0.1")
	b.Attach(r1, a, "10.1.0.2")

	p := b.Subnet("10.1.1.0/31")
	b.Attach(r1, p, "10.1.1.0")
	b.Attach(r2, p, "10.1.1.1")

	lan := b.Subnet("10.1.2.0/29")
	b.Attach(r2, lan, "10.1.2.1")
	b.Attach(r3, lan, "10.1.2.2")
	b.Attach(r4, lan, "10.1.2.3")
	b.Attach(r5, lan, "10.1.2.4")
	b.Attach(r6, lan, "10.1.2.5")
	b.Attach(r7, lan, "10.1.2.6")

	ds := b.Subnet("10.1.3.0/30")
	b.Attach(r4, ds, "10.1.3.1")
	b.Attach(d, ds, "10.1.3.2")

	return b.MustBuild()
}

func TestScoreDenseCleanCollectionPerfect(t *testing.T) {
	top := denseTopology()
	truth := FromTopology(top, Options{})
	score := truth.Score(collect(t, top, "10.1.3.2"))
	if !score.Perfect() {
		var b bytes.Buffer
		score.WriteText(&b)
		t.Fatalf("clean dense collection not perfect:\n%s", b.String())
	}
	if score.Count(VerdictExact) != 4 || score.Count(VerdictMissed) != 0 {
		t.Fatalf("verdicts: exact=%d missed=%d", score.Count(VerdictExact), score.Count(VerdictMissed))
	}
	if score.CommonAddrs != 12 {
		t.Fatalf("common addrs = %d, want 12", score.CommonAddrs)
	}
	if len(score.PrefixErrs) != 1 || score.PrefixErrs[0] != (PrefixErrCount{Err: 0, Count: 4}) {
		t.Fatalf("prefix errs = %+v", score.PrefixErrs)
	}
}

// TestScoreFigure3Collection documents the inherent limit the scorer must
// surface: figure 3's LAN is a /24 with only four assigned addresses, so a
// correct collector infers the minimal covering /29 — a subset verdict with
// k=+5, while address-level accuracy stays perfect.
func TestScoreFigure3Collection(t *testing.T) {
	truth := FromTopology(topo.Figure3(), Options{})
	s := truth.Score(collectFigure3(t))
	if s.Count(VerdictExact) != 5 || s.Count(VerdictSubset) != 1 || s.Count(VerdictMissed) != 0 || s.Count(VerdictPhantom) != 0 {
		var b bytes.Buffer
		s.WriteText(&b)
		t.Fatalf("figure-3 verdicts unexpected:\n%s", b.String())
	}
	if s.AddrPrecision != 1 || s.AddrRecall != 1 {
		t.Fatalf("addr precision/recall = %v/%v", s.AddrPrecision, s.AddrRecall)
	}
	var subset Row
	for _, r := range s.Rows {
		if r.Verdict == VerdictSubset {
			subset = r
		}
	}
	if subset.Collected != prefix("10.0.2.0/29") || subset.Truth != prefix("10.0.2.0/24") || subset.PrefixErr != 5 {
		t.Fatalf("subset row = %+v", subset)
	}
	if subset.MemberHits != 4 || subset.MemberTotal != 4 || subset.MemberExtra != 0 {
		t.Fatalf("subset membership = %+v", subset)
	}
}

func testTruth() *Truth {
	return FromSubnets([]TrueSubnet{
		{Prefix: prefix("10.0.1.0/31"), Addrs: addrs("10.0.1.0", "10.0.1.1"), PointToPoint: true},
		{Prefix: prefix("10.0.2.0/29"), Addrs: addrs("10.0.2.1", "10.0.2.2", "10.0.2.3")},
		{Prefix: prefix("10.0.3.0/31"), Addrs: addrs("10.0.3.0", "10.0.3.1"), PointToPoint: true, Unresponsive: true},
	})
}

func TestScoreVerdicts(t *testing.T) {
	truth := testTruth()
	collected := []CollectedSubnet{
		{Prefix: prefix("10.0.1.0/31"), Addrs: addrs("10.0.1.0", "10.0.1.1")}, // exact
		{Prefix: prefix("10.0.2.0/30"), Addrs: addrs("10.0.2.1", "10.0.2.2")}, // subset of the /29
		{Prefix: prefix("172.16.0.0/31"), Addrs: addrs("172.16.0.0")},         // phantom
	}
	s := truth.Score(collected)

	if got := []int{s.Count(VerdictExact), s.Count(VerdictSubset), s.Count(VerdictSuperset), s.Count(VerdictPhantom), s.Count(VerdictMissed)}; got[0] != 1 || got[1] != 1 || got[2] != 0 || got[3] != 1 || got[4] != 1 {
		t.Fatalf("verdict counts = %v", got)
	}
	if s.MissedUnresponsive != 1 {
		t.Errorf("missed unresponsive = %d, want 1", s.MissedUnresponsive)
	}
	if s.SubnetPrecision != 1.0/3 || s.SubnetRecall != 1.0/3 {
		t.Errorf("subnet precision/recall = %v/%v", s.SubnetPrecision, s.SubnetRecall)
	}
	// Addresses: collected 5 distinct, 4 of them real, truth has 7.
	if s.CollectedAddrs != 5 || s.CommonAddrs != 4 || s.TruthAddrs != 7 {
		t.Errorf("addr counts = %d/%d/%d", s.CollectedAddrs, s.CommonAddrs, s.TruthAddrs)
	}

	byVerdict := map[Verdict]Row{}
	for _, r := range s.Rows {
		byVerdict[r.Verdict] = r
	}
	if r := byVerdict[VerdictSubset]; r.PrefixErr != 1 || r.Truth != prefix("10.0.2.0/29") || r.MemberHits != 2 || r.MemberTotal != 3 {
		t.Errorf("subset row = %+v", r)
	}
	if r := byVerdict[VerdictPhantom]; r.MemberExtra != 1 || r.Overlaps != 0 {
		t.Errorf("phantom row = %+v", r)
	}
	if r := byVerdict[VerdictMissed]; r.Truth != prefix("10.0.3.0/31") || r.MemberTotal != 2 {
		t.Errorf("missed row = %+v", r)
	}
}

func TestScoreSupersetSpansMultipleTruths(t *testing.T) {
	truth := testTruth()
	// One wide observation covering both the /31 and part of the /29.
	s := truth.Score([]CollectedSubnet{
		{Prefix: prefix("10.0.0.0/22"), Addrs: addrs("10.0.1.0", "10.0.1.1", "10.0.2.1", "10.0.3.0", "10.0.3.1")},
	})
	if s.Count(VerdictSuperset) != 1 || s.Count(VerdictMissed) != 0 {
		t.Fatalf("superset=%d missed=%d", s.Count(VerdictSuperset), s.Count(VerdictMissed))
	}
	r := s.Rows[0]
	if r.Overlaps != 3 {
		t.Errorf("overlaps = %d, want 3", r.Overlaps)
	}
	// Primary match is the overlapped subnet sharing the most members: the
	// /31s tie at 2, the lowest-base one wins.
	if r.Truth != prefix("10.0.1.0/31") || r.PrefixErr != 22-31 {
		t.Errorf("superset row = %+v", r)
	}
	// A superset covers the truths it spans, so recall counts no misses, but
	// none are exact matches.
	if s.ExactTruth != 0 || s.SubnetRecall != 0 {
		t.Errorf("exactTruth=%d recall=%v", s.ExactTruth, s.SubnetRecall)
	}
}

func TestScoreEmptyUniverses(t *testing.T) {
	empty := FromSubnets(nil)
	s := empty.Score(nil)
	if !s.Perfect() {
		t.Fatalf("empty-vs-empty not perfect: %+v", s)
	}
	s = testTruth().Score(nil)
	if s.SubnetRecall != 0 || s.Count(VerdictMissed) != 3 || s.SubnetPrecision != 1 {
		t.Fatalf("nothing-collected score: %+v", s)
	}
}

func TestRenderingDeterministic(t *testing.T) {
	top := denseTopology()
	truth := FromTopology(top, Options{})
	collected := collect(t, top, "10.1.3.2")

	var txt1, txt2, js1, js2 bytes.Buffer
	s1 := truth.Score(collected)
	s2 := truth.Score(collected)
	if _, err := s1.WriteText(&txt1); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.WriteText(&txt2); err != nil {
		t.Fatal(err)
	}
	if err := s1.WriteJSON(&js1); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteJSON(&js2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(txt1.Bytes(), txt2.Bytes()) {
		t.Errorf("text artifacts differ:\n%s\n--- vs ---\n%s", txt1.String(), txt2.String())
	}
	if !bytes.Equal(js1.Bytes(), js2.Bytes()) {
		t.Errorf("JSON artifacts differ:\n%s\n--- vs ---\n%s", js1.String(), js2.String())
	}

	var doc map[string]any
	if err := json.Unmarshal(js1.Bytes(), &doc); err != nil {
		t.Fatalf("JSON artifact does not parse: %v", err)
	}
	if doc["subnet_precision"] != 1.0 || doc["subnet_recall"] != 1.0 {
		t.Errorf("JSON precision/recall = %v/%v", doc["subnet_precision"], doc["subnet_recall"])
	}
	rows, _ := doc["rows"].([]any)
	if len(rows) != 4 {
		t.Errorf("JSON rows = %d, want 4", len(rows))
	}
	if !strings.Contains(txt1.String(), "subnet precision 1.000") {
		t.Errorf("text artifact lacks headline:\n%s", txt1.String())
	}
	if !strings.Contains(txt1.String(), "10.1.2.0/29") {
		t.Errorf("text artifact lacks per-subnet row:\n%s", txt1.String())
	}
}

func TestRenderImperfect(t *testing.T) {
	var b bytes.Buffer
	s := testTruth().Score([]CollectedSubnet{
		{Prefix: prefix("10.0.2.0/30"), Addrs: addrs("10.0.2.1", "172.16.9.9")},
		{Prefix: prefix("172.16.0.0/31"), Addrs: addrs("172.16.0.0")},
	})
	if _, err := s.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"subset", "phantom", "missed", "missed-unresponsive 1", "k=+1", "prefix-length error", "phantom members"} {
		if !strings.Contains(out, want) {
			t.Errorf("text artifact lacks %q:\n%s", want, out)
		}
	}
	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc jsonDoc
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Verdicts["missed"] != 2 || doc.Verdicts["phantom"] != 1 || doc.Verdicts["subset"] != 1 {
		t.Errorf("JSON verdicts = %+v", doc.Verdicts)
	}
	// Missed rows omit the collected side; phantom rows omit the truth side.
	for _, r := range doc.Rows {
		switch r.Verdict {
		case VerdictMissed:
			if r.Collected != "" {
				t.Errorf("missed row carries collected prefix: %+v", r)
			}
		case VerdictPhantom:
			if r.Truth != "" {
				t.Errorf("phantom row carries truth prefix: %+v", r)
			}
		}
	}
}

func TestExportTelemetry(t *testing.T) {
	tel := telemetry.New(nil)
	s := testTruth().Score([]CollectedSubnet{
		{Prefix: prefix("10.0.1.0/31"), Addrs: addrs("10.0.1.0", "10.0.1.1")},
	})
	s.Export(tel)
	var b bytes.Buffer
	if err := tel.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`tracenet_eval_subnets_total{verdict="exact"} 1`,
		`tracenet_eval_subnets_total{verdict="missed"} 2`,
		`tracenet_eval_subnets_total{verdict="phantom"} 0`,
		`tracenet_eval_addrs_total{class="common"} 2`,
		`tracenet_eval_addrs_total{class="missed"} 5`,
		`tracenet_eval_subnet_precision_ppm 1000000`,
		`tracenet_eval_subnet_recall_ppm 333333`,
		`tracenet_eval_addr_recall_ppm 285714`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
}
