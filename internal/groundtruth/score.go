package groundtruth

import (
	"sort"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/topomap"
)

// Verdict classifies one row of the evaluation: what a collected subnet is
// relative to the truth, or that a true subnet was never collected.
type Verdict string

const (
	// VerdictExact: the collected prefix is exactly a true subnet's prefix.
	VerdictExact Verdict = "exact"
	// VerdictSubset: the collected prefix sits strictly inside one true
	// subnet (inferred narrower than reality; prefix-off-by-k with k > 0).
	VerdictSubset Verdict = "subset"
	// VerdictSuperset: the collected prefix strictly contains one or more
	// true subnets (inferred wider than reality, possibly merging several
	// real links; prefix-off-by-k with k < 0).
	VerdictSuperset Verdict = "superset"
	// VerdictPhantom: the collected prefix overlaps no true subnet at all —
	// an invented subnet.
	VerdictPhantom Verdict = "phantom"
	// VerdictMissed: a true subnet no collected entry overlaps.
	VerdictMissed Verdict = "missed"
)

// Verdicts is the canonical presentation order; renderers iterate this list
// (never a map) so artifacts stay deterministic.
var Verdicts = []Verdict{VerdictExact, VerdictSubset, VerdictSuperset, VerdictPhantom, VerdictMissed}

// CollectedSubnet is one collected observation to score: a prefix and its
// observed member addresses.
type CollectedSubnet struct {
	Prefix ipv4.Prefix `json:"prefix"`
	Addrs  []ipv4.Addr `json:"addrs"`
}

// FromTopomap adapts a merged topology map into scorable rows, in the map's
// deterministic entry order.
func FromTopomap(m *topomap.Map) []CollectedSubnet {
	entries := m.Subnets()
	out := make([]CollectedSubnet, 0, len(entries))
	for _, e := range entries {
		addrs := make([]ipv4.Addr, len(e.Addrs))
		copy(addrs, e.Addrs)
		out = append(out, CollectedSubnet{Prefix: e.Prefix, Addrs: addrs})
	}
	return out
}

// FromCoreSubnets adapts a session's collected subnets into scorable rows by
// folding them through a topology map, so overlapping observations are
// reconciled exactly the way a campaign merge reconciles them.
func FromCoreSubnets(subs []*core.Subnet) []CollectedSubnet {
	m := topomap.New()
	m.AddSubnets(subs)
	return FromTopomap(m)
}

// Row is one line of the per-subnet evaluation: a collected subnet and its
// verdict against the primary true subnet it matched (or a missed true
// subnet, with no collected side).
type Row struct {
	Verdict Verdict `json:"verdict"`
	// Collected is the observed prefix; unset (zero Bits, zero base) for
	// VerdictMissed rows.
	Collected ipv4.Prefix `json:"collected,omitempty"`
	// Truth is the primary matched true prefix; unset for VerdictPhantom.
	// For VerdictSuperset it is the overlapped true subnet sharing the most
	// member addresses with the observation.
	Truth ipv4.Prefix `json:"truth,omitempty"`
	// PrefixErr is the signed prefix-length error, collected bits minus true
	// bits: 0 for exact, k > 0 for a subnet inferred k bits too narrow,
	// k < 0 for one inferred k bits too wide. Zero for phantom/missed rows.
	PrefixErr int `json:"prefix_err,omitempty"`
	// Overlaps counts the true subnets the collected prefix intersects
	// (>1 only for superset rows that merged several real links).
	Overlaps int `json:"overlaps,omitempty"`
	// MemberHits / MemberTotal are the membership completeness of the
	// primary matched true subnet: how many of its real members the
	// observation found. MemberExtra counts observed members that are not
	// assigned addresses anywhere in the truth (phantom members).
	MemberHits  int `json:"member_hits,omitempty"`
	MemberTotal int `json:"member_total,omitempty"`
	MemberExtra int `json:"member_extra,omitempty"`
	// Blame names the planned fault kind most plausibly responsible for a
	// phantom/superset/missed row, set by Attribute. Empty when the run had
	// no adversarial faults or the row needs no explanation.
	Blame string `json:"blame,omitempty"`
}

// PrefixErrCount is one bucket of the prefix-length error histogram.
type PrefixErrCount struct {
	// Err is the signed prefix-length error (collected − true bits).
	Err int `json:"err"`
	// Count is how many non-phantom collected subnets had this error.
	Count int `json:"count"`
}

// Score is a full evaluation of one collected topology against the truth.
type Score struct {
	// TruthSubnets / CollectedSubnets are the universe sizes.
	TruthSubnets     int `json:"truth_subnets"`
	CollectedSubnets int `json:"collected_subnets"`
	// ExactCollected counts collected entries with verdict exact;
	// ExactTruth counts true subnets that have an exact collected match.
	// With deduplicated input the two are equal.
	ExactCollected int `json:"exact_collected"`
	ExactTruth     int `json:"exact_truth"`
	// MissedUnresponsive counts missed true subnets that are firewalled in
	// the simulation — misses no collector could avoid (the paper's
	// "miss\unrs" attribution).
	MissedUnresponsive int `json:"missed_unresponsive,omitempty"`

	// SubnetPrecision = exact collected / collected;
	// SubnetRecall = exactly-matched truth / truth.
	SubnetPrecision float64 `json:"subnet_precision"`
	SubnetRecall    float64 `json:"subnet_recall"`

	// Address-level accounting over the global member sets.
	TruthAddrs     int     `json:"truth_addrs"`
	CollectedAddrs int     `json:"collected_addrs"`
	CommonAddrs    int     `json:"common_addrs"`
	AddrPrecision  float64 `json:"addr_precision"`
	AddrRecall     float64 `json:"addr_recall"`

	// Rows are the per-subnet verdicts: collected rows first (in collected
	// order), then missed true subnets (in truth order).
	Rows []Row `json:"rows"`
	// PrefixErrs is the prefix-length error histogram over matched rows,
	// ascending by error.
	PrefixErrs []PrefixErrCount `json:"prefix_errs,omitempty"`

	counts map[Verdict]int
}

// Count returns how many rows carry the given verdict.
func (s *Score) Count(v Verdict) int { return s.counts[v] }

// Perfect reports whether the evaluation is flawless: every collected subnet
// exact, every true subnet collected, every member address right.
func (s *Score) Perfect() bool {
	return s.SubnetPrecision == 1 && s.SubnetRecall == 1 &&
		s.AddrPrecision == 1 && s.AddrRecall == 1
}

// ratio returns a/b, defining an empty numerator universe as perfect (an
// evaluation with nothing to collect and nothing collected scores 1).
func ratio(a, b int) float64 {
	if b == 0 {
		return 1
	}
	return float64(a) / float64(b)
}

// Score evaluates collected subnets against the truth.
func (t *Truth) Score(collected []CollectedSubnet) *Score {
	s := &Score{
		TruthSubnets:     len(t.Subnets),
		CollectedSubnets: len(collected),
		counts:           make(map[Verdict]int),
	}

	exactTruth := make(map[ipv4.Prefix]bool)
	covered := make(map[ipv4.Prefix]bool)
	errHist := map[int]int{}
	collectedAddrs := make(map[ipv4.Addr]bool)

	for _, c := range collected {
		for _, a := range c.Addrs {
			collectedAddrs[a] = true
		}
		row := Row{Collected: c.Prefix}
		overlaps := t.overlapping(c.Prefix)
		row.Overlaps = len(overlaps)
		if len(overlaps) == 0 {
			row.Verdict = VerdictPhantom
			row.MemberExtra = countExtras(c.Addrs, t)
			s.counts[row.Verdict]++
			s.Rows = append(s.Rows, row)
			continue
		}
		primary := t.primaryMatch(c, overlaps)
		ts := &t.Subnets[primary]
		row.Truth = ts.Prefix
		row.PrefixErr = c.Prefix.Bits() - ts.Prefix.Bits()
		switch {
		case row.PrefixErr == 0:
			row.Verdict = VerdictExact
			exactTruth[ts.Prefix] = true
			s.ExactCollected++
		case row.PrefixErr > 0:
			row.Verdict = VerdictSubset
		default:
			row.Verdict = VerdictSuperset
		}
		row.MemberHits, row.MemberTotal = countHits(c.Addrs, ts)
		row.MemberExtra = countExtras(c.Addrs, t)
		for _, i := range overlaps {
			covered[t.Subnets[i].Prefix] = true
		}
		errHist[row.PrefixErr]++
		s.counts[row.Verdict]++
		s.Rows = append(s.Rows, row)
	}

	for i := range t.Subnets {
		ts := &t.Subnets[i]
		if covered[ts.Prefix] {
			continue
		}
		s.counts[VerdictMissed]++
		if ts.Unresponsive {
			s.MissedUnresponsive++
		}
		s.Rows = append(s.Rows, Row{Verdict: VerdictMissed, Truth: ts.Prefix, MemberTotal: len(ts.Addrs)})
	}

	s.ExactTruth = len(exactTruth)
	s.SubnetPrecision = ratio(s.ExactCollected, s.CollectedSubnets)
	s.SubnetRecall = ratio(s.ExactTruth, s.TruthSubnets)

	common := 0
	for a := range collectedAddrs {
		if t.addrs[a] {
			common++
		}
	}
	s.TruthAddrs = t.AddrCount()
	s.CollectedAddrs = len(collectedAddrs)
	s.CommonAddrs = common
	s.AddrPrecision = ratio(common, s.CollectedAddrs)
	s.AddrRecall = ratio(common, s.TruthAddrs)

	for err, n := range errHist {
		s.PrefixErrs = append(s.PrefixErrs, PrefixErrCount{Err: err, Count: n})
	}
	sort.Slice(s.PrefixErrs, func(i, j int) bool { return s.PrefixErrs[i].Err < s.PrefixErrs[j].Err })
	return s
}

// primaryMatch picks the true subnet a collected observation is scored
// against: the exact-prefix match when there is one, otherwise the
// overlapped subnet sharing the most member addresses with the observation,
// ties broken by subnet order (base, then bits) — all deterministic.
func (t *Truth) primaryMatch(c CollectedSubnet, overlaps []int) int {
	best, bestShared := overlaps[0], -1
	for _, i := range overlaps {
		ts := &t.Subnets[i]
		if ts.Prefix == c.Prefix {
			return i
		}
		shared, _ := countHits(c.Addrs, ts)
		if shared > bestShared {
			best, bestShared = i, shared
		}
	}
	return best
}

// countHits returns how many of the true subnet's members the observation
// found, and the true member total.
func countHits(addrs []ipv4.Addr, ts *TrueSubnet) (hits, total int) {
	member := make(map[ipv4.Addr]bool, len(ts.Addrs))
	for _, a := range ts.Addrs {
		member[a] = true
	}
	for _, a := range addrs {
		if member[a] {
			hits++
		}
	}
	return hits, len(ts.Addrs)
}

// countExtras returns how many observed members are not assigned addresses
// anywhere in the truth (phantom members).
func countExtras(addrs []ipv4.Addr, t *Truth) int {
	extra := 0
	for _, a := range addrs {
		if !t.addrs[a] {
			extra++
		}
	}
	return extra
}
