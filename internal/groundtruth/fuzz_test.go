package groundtruth

import (
	"bytes"
	"encoding/json"
	"testing"

	"tracenet/internal/ipv4"
)

// fuzzTruth is the fixed ground truth every fuzz iteration scores against: a
// LAN, two point-to-point links, and an unresponsive subnet.
func fuzzTruth() *Truth {
	return FromSubnets([]TrueSubnet{
		{Prefix: prefix("10.0.0.0/30"), Addrs: addrs("10.0.0.1", "10.0.0.2"), PointToPoint: true},
		{Prefix: prefix("10.0.1.0/31"), Addrs: addrs("10.0.1.0", "10.0.1.1"), PointToPoint: true},
		{Prefix: prefix("10.0.2.0/29"),
			Addrs: addrs("10.0.2.1", "10.0.2.2", "10.0.2.3", "10.0.2.4", "10.0.2.5", "10.0.2.6")},
		{Prefix: prefix("10.0.3.0/31"), Addrs: addrs("10.0.3.0", "10.0.3.1"),
			PointToPoint: true, Unresponsive: true},
	})
}

// perturb applies one mutation per op byte to the collected set,
// deterministically: drop a member, widen or narrow a prefix, drop a whole
// subnet, or append a phantom. The result is an arbitrary — possibly
// degenerate — collection the scorer must classify without violating its
// invariants.
func perturb(collected []CollectedSubnet, ops []byte) []CollectedSubnet {
	for i, op := range ops {
		if len(collected) == 0 {
			break
		}
		j := i % len(collected)
		c := &collected[j]
		switch op % 5 {
		case 0: // drop one member
			if len(c.Addrs) > 0 {
				k := int(op) % len(c.Addrs)
				c.Addrs = append(c.Addrs[:k:k], c.Addrs[k+1:]...)
			}
		case 1: // narrow: one bit longer, re-based on the first member
			if c.Prefix.Bits() < 32 {
				base := c.Prefix.Base()
				if len(c.Addrs) > 0 {
					base = c.Addrs[0]
				}
				c.Prefix = ipv4.NewPrefix(base, c.Prefix.Bits()+1)
			}
		case 2: // widen: one bit shorter
			if c.Prefix.Bits() > 8 {
				c.Prefix = c.Prefix.Parent()
			}
		case 3: // drop the whole subnet
			collected = append(collected[:j:j], collected[j+1:]...)
		case 4: // append a phantom far from any truth
			base := ipv4.AddrFromOctets([4]byte{192, 168, op, 0})
			collected = append(collected, CollectedSubnet{
				Prefix: ipv4.NewPrefix(base, 30),
				Addrs:  []ipv4.Addr{base + 1, base + 2},
			})
		}
	}
	// Members outside the (possibly narrowed) prefix are not a valid
	// collected observation; clamp membership to the prefix the way any
	// real adapter (FromTopomap) guarantees.
	for i := range collected {
		kept := collected[i].Addrs[:0]
		for _, a := range collected[i].Addrs {
			if collected[i].Prefix.Contains(a) {
				kept = append(kept, a)
			}
		}
		collected[i].Addrs = kept
	}
	return collected
}

// FuzzScoreInvariants perturbs a perfect collection and checks the scoring
// invariants that must hold for ANY input: verdict accounting sums to the
// universe sizes, ratios stay in [0,1] and agree with their definitions,
// prefix-error signs match verdicts, and both renderings are deterministic.
func FuzzScoreInvariants(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4})
	f.Add([]byte{4, 4, 4, 4})
	f.Add([]byte{3, 3, 3, 3, 3})
	f.Add([]byte{2, 2, 2, 1, 1, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		truth := fuzzTruth()
		var base []CollectedSubnet
		for _, ts := range truth.Subnets {
			base = append(base, CollectedSubnet{
				Prefix: ts.Prefix,
				Addrs:  append([]ipv4.Addr(nil), ts.Addrs...),
			})
		}
		collected := perturb(base, ops)
		score := truth.Score(collected)

		// Universe accounting: every collected subnet is exactly one
		// non-missed row, every uncovered truth exactly one missed row.
		if score.CollectedSubnets != len(collected) {
			t.Fatalf("CollectedSubnets = %d, want %d", score.CollectedSubnets, len(collected))
		}
		if score.TruthSubnets != 4 {
			t.Fatalf("TruthSubnets = %d, want 4", score.TruthSubnets)
		}
		nonMissed := score.Count(VerdictExact) + score.Count(VerdictSubset) +
			score.Count(VerdictSuperset) + score.Count(VerdictPhantom)
		if nonMissed != score.CollectedSubnets {
			t.Fatalf("verdict counts %d don't sum to collected %d", nonMissed, score.CollectedSubnets)
		}
		if got := len(score.Rows); got != nonMissed+score.Count(VerdictMissed) {
			t.Fatalf("%d rows for %d verdicts", got, nonMissed+score.Count(VerdictMissed))
		}

		// Ratio definitions and bounds.
		for name, r := range map[string]float64{
			"subnet precision": score.SubnetPrecision, "subnet recall": score.SubnetRecall,
			"addr precision": score.AddrPrecision, "addr recall": score.AddrRecall,
		} {
			if r < 0 || r > 1 {
				t.Fatalf("%s = %v outside [0,1]", name, r)
			}
		}
		if score.ExactCollected != score.Count(VerdictExact) {
			t.Fatalf("ExactCollected %d != exact verdicts %d", score.ExactCollected, score.Count(VerdictExact))
		}
		if score.CollectedSubnets > 0 {
			want := float64(score.ExactCollected) / float64(score.CollectedSubnets)
			if score.SubnetPrecision != want {
				t.Fatalf("SubnetPrecision %v, want %v", score.SubnetPrecision, want)
			}
		}
		if score.CommonAddrs > score.TruthAddrs || score.CommonAddrs > score.CollectedAddrs {
			t.Fatalf("CommonAddrs %d exceeds a universe (truth %d, collected %d)",
				score.CommonAddrs, score.TruthAddrs, score.CollectedAddrs)
		}
		if score.MissedUnresponsive > score.Count(VerdictMissed) {
			t.Fatalf("MissedUnresponsive %d > missed %d", score.MissedUnresponsive, score.Count(VerdictMissed))
		}

		// Per-row symmetry: prefix-error sign is the verdict, missed rows
		// have no collected side, phantom rows no truth side.
		for _, row := range score.Rows {
			switch row.Verdict {
			case VerdictExact:
				if row.PrefixErr != 0 || row.Collected != row.Truth {
					t.Fatalf("exact row with err %d: %+v", row.PrefixErr, row)
				}
			case VerdictSubset:
				if row.PrefixErr <= 0 {
					t.Fatalf("subset row with err %d: %+v", row.PrefixErr, row)
				}
			case VerdictSuperset:
				if row.PrefixErr >= 0 {
					t.Fatalf("superset row with err %d: %+v", row.PrefixErr, row)
				}
			case VerdictPhantom:
				if row.Truth.IsValid() && row.Truth.Bits() != 0 {
					t.Fatalf("phantom row carries a truth: %+v", row)
				}
			case VerdictMissed:
				if row.Collected.IsValid() && row.Collected.Bits() != 0 {
					t.Fatalf("missed row carries a collected prefix: %+v", row)
				}
			}
			if row.MemberHits > row.MemberTotal {
				t.Fatalf("member hits %d > total %d: %+v", row.MemberHits, row.MemberTotal, row)
			}
		}

		// Rendering is deterministic and the JSON artifact is valid.
		var t1, t2, j1 bytes.Buffer
		if _, err := score.WriteText(&t1); err != nil {
			t.Fatal(err)
		}
		if _, err := score.WriteText(&t2); err != nil {
			t.Fatal(err)
		}
		if t1.String() != t2.String() {
			t.Fatal("text rendering not deterministic")
		}
		if err := score.WriteJSON(&j1); err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(j1.Bytes(), &doc); err != nil {
			t.Fatalf("JSON artifact invalid: %v", err)
		}
	})
}
