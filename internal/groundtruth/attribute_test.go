package groundtruth

import (
	"testing"

	"tracenet/internal/netsim"
)

func adversarialPlan(kinds ...netsim.FaultKind) netsim.FaultPlan {
	p := netsim.FaultPlan{Seed: 1}
	for _, k := range kinds {
		f := netsim.Fault{Kind: k}
		switch k {
		case netsim.FaultLiar, netsim.FaultEcho:
			f.Prob = 0.5
		case netsim.FaultAliasConfuse:
			f.Addr = "10.0.0.1"
		}
		p.Faults = append(p.Faults, f)
	}
	return p
}

func TestAttributeBlamesPlannedKinds(t *testing.T) {
	s := &Score{Rows: []Row{
		{Verdict: VerdictPhantom, MemberExtra: 2},
		{Verdict: VerdictPhantom},
		{Verdict: VerdictSuperset, Overlaps: 3},
		{Verdict: VerdictSuperset, Overlaps: 1},
		{Verdict: VerdictMissed},
		{Verdict: VerdictExact},
	}}
	Attribute(s, adversarialPlan(netsim.FaultLiar, netsim.FaultAliasConfuse, netsim.FaultHiddenHop, netsim.FaultEcho))

	want := []string{"echo", "liar", "alias-confuse", "echo", "hidden-hop", ""}
	for i, w := range want {
		if got := s.Rows[i].Blame; got != w {
			t.Errorf("row %d: blame %q, want %q", i, got, w)
		}
	}

	sum := s.BlameSummary()
	if len(sum) != 4 {
		t.Fatalf("summary buckets = %d, want 4: %v", len(sum), sum)
	}
	for i := 1; i < len(sum); i++ {
		if sum[i-1].Blame >= sum[i].Blame {
			t.Fatalf("summary not sorted: %v", sum)
		}
	}
	if sum[1].Blame != "echo" || sum[1].Count != 2 {
		t.Fatalf("echo bucket = %+v, want echo x2", sum[1])
	}
}

func TestAttributeFallbackAndNoOp(t *testing.T) {
	// A phantom with no liar planned falls back to the first planned
	// adversarial kind in canonical order.
	s := &Score{Rows: []Row{{Verdict: VerdictPhantom}}}
	Attribute(s, adversarialPlan(netsim.FaultAliasConfuse))
	if got := s.Rows[0].Blame; got != "alias-confuse" {
		t.Fatalf("fallback blame = %q, want alias-confuse", got)
	}

	// Classic chaos kinds are not adversarial: attribution is a no-op.
	s = &Score{Rows: []Row{{Verdict: VerdictPhantom}, {Verdict: VerdictMissed}}}
	Attribute(s, netsim.FaultPlan{Seed: 1, Faults: []netsim.Fault{{Kind: netsim.FaultBlackhole}}})
	for i, row := range s.Rows {
		if row.Blame != "" {
			t.Fatalf("row %d blamed %q under non-adversarial plan", i, row.Blame)
		}
	}
	if len(s.BlameSummary()) != 0 {
		t.Fatal("summary not empty for unblamed score")
	}
}
