// Package groundtruth scores collected subnet-level topologies against the
// true topology of the simulated network — the machine-checked counterpart of
// the paper's §4 evaluation, where tracenet's inferences are compared against
// Internet2/GEANT router configurations for completeness and correctness.
//
// The simulator knows every link's real prefix, member interfaces, and
// p2p/multi-access kind; this package extracts that truth from a
// netsim.Topology and scores any collected topology map against it:
// per-subnet verdicts (exact, prefix-off-by-k as superset/subset, phantom,
// missed), aggregate precision/recall on subnets and on member addresses, and
// a prefix-length error histogram. All artifacts render deterministically
// (text and JSON), so same-seed runs are byte-identical and accuracy floors
// can gate regressions in CI.
package groundtruth

import (
	"sort"

	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
)

// TrueSubnet is one subnet of the ground-truth topology.
type TrueSubnet struct {
	// Prefix is the subnet's real CIDR prefix.
	Prefix ipv4.Prefix `json:"prefix"`
	// Addrs are the assigned member interface addresses, ascending.
	Addrs []ipv4.Addr `json:"addrs"`
	// PointToPoint marks /31 and /30 links (the paper's p2p/multi-access
	// distinction).
	PointToPoint bool `json:"p2p,omitempty"`
	// HostAttached marks access subnets with a host (vantage or end system)
	// on them.
	HostAttached bool `json:"host_attached,omitempty"`
	// Unresponsive marks subnets firewalled in the simulation — subnets no
	// collector can observe, which recall accounting may want to discount.
	Unresponsive bool `json:"unresponsive,omitempty"`
}

// Options tunes truth extraction.
type Options struct {
	// ExcludeHostSubnets drops host access subnets from the scoring universe,
	// leaving only the router-to-router core (the paper's Tables 1–2 score
	// against backbone subnets). Off by default: a collector that traces
	// toward hosts legitimately observes their access subnets, and scoring
	// them as phantoms would be wrong.
	ExcludeHostSubnets bool
}

// Truth is the extracted scoring universe: the true subnets, sorted by
// prefix, plus the union of their member addresses.
type Truth struct {
	Subnets []TrueSubnet

	byPrefix map[ipv4.Prefix]int
	addrs    map[ipv4.Addr]bool
}

// FromTopology extracts the ground-truth subnet-level topology from a built
// netsim topology. The result is deterministic: subnets are sorted by base
// address then prefix length, members ascending.
func FromTopology(t *netsim.Topology, opt Options) *Truth {
	tr := &Truth{
		byPrefix: make(map[ipv4.Prefix]int),
		addrs:    make(map[ipv4.Addr]bool),
	}
	for _, s := range t.Subnets {
		if opt.ExcludeHostSubnets && s.HostAttached() {
			continue
		}
		tr.Subnets = append(tr.Subnets, TrueSubnet{
			Prefix:       s.Prefix,
			Addrs:        s.MemberAddrs(),
			PointToPoint: s.IsPointToPoint(),
			HostAttached: s.HostAttached(),
			Unresponsive: s.Unresponsive,
		})
	}
	sortTrueSubnets(tr.Subnets)
	tr.reindex()
	return tr
}

// FromSubnets builds a Truth directly from explicit subnets — for tests and
// for scoring against hand-written ground truth (e.g. a parsed router
// config).
func FromSubnets(subs []TrueSubnet) *Truth {
	tr := &Truth{
		Subnets:  make([]TrueSubnet, len(subs)),
		byPrefix: make(map[ipv4.Prefix]int),
		addrs:    make(map[ipv4.Addr]bool),
	}
	copy(tr.Subnets, subs)
	for i := range tr.Subnets {
		addrs := make([]ipv4.Addr, len(tr.Subnets[i].Addrs))
		copy(addrs, tr.Subnets[i].Addrs)
		sort.Slice(addrs, func(a, b int) bool { return addrs[a] < addrs[b] })
		tr.Subnets[i].Addrs = addrs
	}
	sortTrueSubnets(tr.Subnets)
	tr.reindex()
	return tr
}

func (t *Truth) reindex() {
	for i, s := range t.Subnets {
		t.byPrefix[s.Prefix] = i
		for _, a := range s.Addrs {
			t.addrs[a] = true
		}
	}
}

// AddrCount returns the number of distinct member addresses in the truth.
func (t *Truth) AddrCount() int { return len(t.addrs) }

// HasAddr reports whether addr is a member interface of some true subnet.
func (t *Truth) HasAddr(addr ipv4.Addr) bool { return t.addrs[addr] }

// ByPrefix returns the true subnet with exactly the given prefix, or nil.
func (t *Truth) ByPrefix(p ipv4.Prefix) *TrueSubnet {
	if i, ok := t.byPrefix[p]; ok {
		return &t.Subnets[i]
	}
	return nil
}

// overlapping returns the indices of true subnets whose address range
// intersects p, in sorted subnet order.
func (t *Truth) overlapping(p ipv4.Prefix) []int {
	var out []int
	for i := range t.Subnets {
		if t.Subnets[i].Prefix.Overlaps(p) {
			out = append(out, i)
		}
	}
	return out
}

func sortTrueSubnets(subs []TrueSubnet) {
	sort.Slice(subs, func(i, j int) bool {
		if subs[i].Prefix.Base() != subs[j].Prefix.Base() {
			return subs[i].Prefix.Base() < subs[j].Prefix.Base()
		}
		return subs[i].Prefix.Bits() < subs[j].Prefix.Bits()
	})
}
