package probe

import "sync/atomic"

// Activity is a lock-free liveness meter for the wire-probe path: a count of
// completed exchanges and the latest tick at which one completed. A campaign
// shares one Activity across all of its probers so the observability plane
// can answer "is anything still happening?" without touching the campaign's
// locks — the stall watchdog compares LastTick against the current clock, and
// the progress snapshot reads Probes for the live wire-probe total.
//
// Both fields are plain atomics: MarkAt is two atomic operations and zero
// allocations, cheap enough to sit on the per-probe hot path. A nil *Activity
// is inert, so probers pay only a nil check when no one is watching.
type Activity struct {
	probes atomic.Uint64
	last   atomic.Uint64
}

// MarkAt records one completed exchange at the given tick. The last-activity
// tick only moves forward (CAS-max), so concurrent workers racing with
// slightly different clock readings can never rewind it.
func (a *Activity) MarkAt(ticks uint64) {
	if a == nil {
		return
	}
	a.probes.Add(1)
	for {
		cur := a.last.Load()
		if ticks <= cur || a.last.CompareAndSwap(cur, ticks) {
			return
		}
	}
}

// Probes returns how many exchanges completed so far.
func (a *Activity) Probes() uint64 {
	if a == nil {
		return 0
	}
	return a.probes.Load()
}

// LastTick returns the tick of the most recent completed exchange (0 when
// none completed yet). The value is schedule-dependent under concurrency, so
// it must never feed a deterministic artifact — it exists for liveness
// judgements (stall detection), not for reports.
func (a *Activity) LastTick() uint64 {
	if a == nil {
		return 0
	}
	return a.last.Load()
}
