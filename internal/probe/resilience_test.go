package probe

import (
	"errors"
	"math/rand"
	"testing"

	"tracenet/internal/wire"
)

func TestRetryPolicyValidate(t *testing.T) {
	for name, p := range map[string]RetryPolicy{
		"negative retries":       {MaxRetries: -1},
		"jitter out of range":    {MaxRetries: 1, BackoffBase: 2, Jitter: 1},
		"negative jitter":        {MaxRetries: 1, BackoffBase: 2, Jitter: -0.1},
		"jitter without backoff": {MaxRetries: 1, Jitter: 0.2},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: policy validated", name)
		}
	}
	for name, p := range map[string]RetryPolicy{
		"zero (no retry)": {},
		"plain retries":   {MaxRetries: 3},
		"full backoff":    {MaxRetries: 4, BackoffBase: 2, BackoffMax: 32, Jitter: 0.5},
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRetryPolicyWaitDoubles(t *testing.T) {
	p := RetryPolicy{MaxRetries: 5, BackoffBase: 4, BackoffMax: 16}
	want := []uint64{4, 8, 16, 16, 16}
	for attempt, w := range want {
		if got := p.wait(attempt, nil); got != w {
			t.Errorf("wait(%d) = %d, want %d", attempt, got, w)
		}
	}
	if got := (RetryPolicy{MaxRetries: 1}).wait(0, nil); got != 0 {
		t.Errorf("wait without backoff = %d, want 0", got)
	}
}

func TestRetryPolicyWaitJitterBounds(t *testing.T) {
	p := RetryPolicy{MaxRetries: 1, BackoffBase: 100, Jitter: 0.3}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		w := p.wait(0, rng)
		if w < 70 || w > 130 {
			t.Fatalf("jittered wait %d outside [70,130]", w)
		}
	}
}

func TestOptionsRetryConflictPanics(t *testing.T) {
	for name, opts := range map[string]Options{
		"retry+retries":    {Retry: &RetryPolicy{MaxRetries: 2}, Retries: 3},
		"retry+noretry":    {Retry: &RetryPolicy{}, NoRetry: true},
		"negative retries": {Retries: -2},
		"bad breaker":      {Breaker: &BreakerConfig{Threshold: -1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", name)
				}
			}()
			New(staticTransport{}, addr("10.0.0.1"), opts)
		}()
	}
}

func TestOptionsLegacyRetryEquivalence(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want RetryPolicy
	}{
		{"default", Options{}, RetryPolicy{MaxRetries: 1}},
		{"noretry", Options{NoRetry: true}, RetryPolicy{}},
		{"legacy retries", Options{Retries: 3}, RetryPolicy{MaxRetries: 3}},
		{"noretry wins", Options{NoRetry: true, Retries: 3}, RetryPolicy{}},
		{"new policy", Options{Retry: &RetryPolicy{MaxRetries: 2, BackoffBase: 8}},
			RetryPolicy{MaxRetries: 2, BackoffBase: 8}},
	}
	for _, tc := range cases {
		p := New(staticTransport{}, addr("10.0.0.1"), tc.opts)
		if p.RetryPolicy() != tc.want {
			t.Errorf("%s: policy = %+v, want %+v", tc.name, p.RetryPolicy(), tc.want)
		}
	}
}

// waitTransport is a silent transport recording backoff waits.
type waitTransport struct {
	waited []uint64
}

func (w *waitTransport) Exchange(raw []byte) ([]byte, error) { return nil, nil }
func (w *waitTransport) Wait(ticks uint64)                   { w.waited = append(w.waited, ticks) }

func TestBackoffDrivesTransportWait(t *testing.T) {
	tr := &waitTransport{}
	p := New(tr, addr("10.0.0.1"), Options{
		Retry: &RetryPolicy{MaxRetries: 3, BackoffBase: 4, BackoffMax: 8},
	})
	if _, err := p.Probe(addr("10.0.9.9"), 8); err != nil {
		t.Fatal(err)
	}
	want := []uint64{4, 8, 8}
	if len(tr.waited) != len(want) {
		t.Fatalf("waited %v, want %v", tr.waited, want)
	}
	var total uint64
	for i, w := range want {
		if tr.waited[i] != w {
			t.Fatalf("waited %v, want %v", tr.waited, want)
		}
		total += w
	}
	st := p.Stats()
	if st.BackoffTicks != total {
		t.Errorf("BackoffTicks = %d, want %d", st.BackoffTicks, total)
	}
	if st.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", st.Timeouts)
	}
	if st.Sent != 4 || st.Retries != 3 {
		t.Errorf("Sent/Retries = %d/%d, want 4/3", st.Sent, st.Retries)
	}
}

func TestTransportErrorWrapped(t *testing.T) {
	boom := errors.New("cable cut")
	tr := errTransport{err: boom}
	p := New(tr, addr("10.0.0.1"), Options{NoRetry: true})
	_, err := p.Probe(addr("10.0.9.9"), 8)
	if !errors.Is(err, ErrTransport) {
		t.Errorf("error %v does not wrap ErrTransport", err)
	}
	if !errors.Is(err, boom) {
		t.Errorf("error %v lost the cause", err)
	}
}

type errTransport struct{ err error }

func (e errTransport) Exchange(raw []byte) ([]byte, error) { return nil, e.err }

func TestCorruptReplyCountedAsFault(t *testing.T) {
	tr := staticTransport{reply: func(raw []byte) []byte {
		return []byte{0xde, 0xad, 0xbe, 0xef}
	}}
	p := New(tr, addr("10.0.0.1"), Options{NoRetry: true})
	res, err := p.Probe(addr("10.0.9.9"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent() {
		t.Errorf("corrupt reply classified as %v", res.Kind)
	}
	st := p.Stats()
	if st.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", st.Corrupt)
	}
	if st.FaultEvents() != 1 {
		t.Errorf("FaultEvents = %d, want 1", st.FaultEvents())
	}
}

// flakyZoneTransport answers echo probes normally except for destinations in
// a silent /24, controlled per-call.
type flakyZoneTransport struct {
	silentPrefix byte // third octet of the silent 10.0.x.0/24 zone
	sent         int
	reviveAfter  int // answer the silent zone once sent exceeds this (0 = never)
}

func (f *flakyZoneTransport) Exchange(raw []byte) ([]byte, error) {
	f.sent++
	pkt, err := wire.Decode(raw)
	if err != nil {
		return nil, err
	}
	inZone := byte(pkt.IP.Dst>>8) == f.silentPrefix
	if inZone && (f.reviveAfter == 0 || f.sent <= f.reviveAfter) {
		return nil, nil
	}
	return wire.NewEchoReply(pkt.IP.Dst, pkt).Encode()
}

func TestBreakerOpensSkipsAndHalfOpens(t *testing.T) {
	tr := &flakyZoneTransport{silentPrefix: 9}
	p := New(tr, addr("10.0.0.1"), Options{
		NoRetry: true,
		Breaker: &BreakerConfig{Threshold: 3, Cooldown: 4, KeyBits: 24},
	})
	dst := addr("10.0.9.5")
	// Three silent probes trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := p.Probe(dst, 64); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1 after threshold silences", st.BreakerOpens)
	}
	sentAtOpen := st.Sent
	// While open, probes are answered locally: no packets leave.
	skipped := 0
	for p.Stats().BreakerSkips < 3 {
		if _, err := p.Probe(dst, 64); err != nil {
			t.Fatal(err)
		}
		skipped++
		if skipped > 10 {
			t.Fatal("breaker never skipped")
		}
	}
	if p.Stats().Sent != sentAtOpen {
		t.Errorf("open breaker still sent packets: %d -> %d", sentAtOpen, p.Stats().Sent)
	}
	// After the cooldown a trial probe goes out; still silent, so it reopens.
	for p.Stats().BreakerOpens < 2 {
		if _, err := p.Probe(dst, 64); err != nil {
			t.Fatal(err)
		}
		if p.Stats().BreakerSkips > 40 {
			t.Fatal("breaker never half-opened")
		}
	}
	if p.Stats().Sent != sentAtOpen+1 {
		t.Errorf("half-open trial sent %d packets, want 1", p.Stats().Sent-sentAtOpen)
	}
}

func TestBreakerClosesOnAnswerAndScopesZones(t *testing.T) {
	tr := &flakyZoneTransport{silentPrefix: 9, reviveAfter: 3}
	p := New(tr, addr("10.0.0.1"), Options{
		NoRetry: true,
		Breaker: &BreakerConfig{Threshold: 3, Cooldown: 2, KeyBits: 24},
	})
	// Trip the 10.0.9.0/24 zone.
	for i := 0; i < 3; i++ {
		if _, err := p.Probe(addr("10.0.9.5"), 64); err != nil {
			t.Fatal(err)
		}
	}
	if p.Stats().BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", p.Stats().BreakerOpens)
	}
	// A different zone is unaffected: its probes still go out and answer.
	res, err := p.Probe(addr("10.0.7.5"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Silent() {
		t.Error("healthy zone silenced by another zone's breaker")
	}
	// The zone has revived; once the breaker half-opens, the trial answer
	// closes it and probing resumes normally.
	var revived Result
	for i := 0; i < 20; i++ {
		revived, err = p.Probe(addr("10.0.9.6"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if !revived.Silent() {
			break
		}
	}
	if revived.Silent() {
		t.Fatal("breaker never recovered after the zone revived")
	}
	// Closed again: the next probe is sent immediately (no skip).
	sent := p.Stats().Sent
	if _, err := p.Probe(addr("10.0.9.7"), 64); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Sent != sent+1 {
		t.Error("closed breaker did not let the next probe through")
	}
}
