package probe

import (
	"fmt"

	"tracenet/internal/invariant"
	"tracenet/internal/ipv4"
)

// BreakerConfig tunes the per-zone circuit breaker. A zone is the group of
// destination addresses sharing a KeyBits-long prefix — a proxy for "the
// router(s) serving that address block". After Threshold consecutive silent
// logical probes into one zone the breaker opens: further probes there are
// answered locally with silence, without putting packets on the wire, until
// Cooldown logical probes later the breaker half-opens and lets one trial
// probe through. A trial answer closes the breaker; trial silence reopens it.
//
// This is what stops a collector from hammering rate-limited or dead routers
// (the probing-load concern of distributed Doubletree deployments): the
// information gained by the skipped probes is nil, but the load they would
// have added is not.
type BreakerConfig struct {
	// Threshold is how many consecutive silent logical probes open a zone's
	// breaker. Default 6.
	Threshold int
	// Cooldown is how many logical probes (across the whole prober) an open
	// breaker waits before half-opening. Default 64.
	Cooldown uint64
	// KeyBits is the prefix length grouping destinations into zones.
	// Default 24.
	KeyBits int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = 6
	}
	if c.Cooldown == 0 {
		c.Cooldown = 64
	}
	if c.KeyBits == 0 {
		c.KeyBits = 24
	}
	return c
}

// Validate rejects out-of-range breaker configuration.
func (c BreakerConfig) Validate() error {
	c = c.withDefaults()
	if c.Threshold < 1 {
		return fmt.Errorf("probe: breaker threshold %d < 1", c.Threshold)
	}
	if c.KeyBits < 0 || c.KeyBits > 32 {
		return fmt.Errorf("probe: breaker key bits %d outside [0,32]", c.KeyBits)
	}
	return nil
}

type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

type zone struct {
	state    breakerState
	fails    int
	openedAt uint64
}

// breaker tracks per-zone silence and trips after repeated failures. Time is
// the prober's logical probe counter, so the breaker is fully deterministic.
type breaker struct {
	cfg   BreakerConfig
	now   uint64
	zones map[ipv4.Addr]*zone
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg.withDefaults(), zones: make(map[ipv4.Addr]*zone)}
}

func (b *breaker) key(dst ipv4.Addr) ipv4.Addr {
	return ipv4.NewPrefix(dst, b.cfg.KeyBits).Base()
}

// allow reports whether a logical probe to dst may be sent, advancing the
// breaker's clock. An open zone transitions to half-open once its cooldown
// has elapsed, letting a single trial probe through.
func (b *breaker) allow(dst ipv4.Addr) bool {
	b.now++
	z := b.zones[b.key(dst)]
	if z == nil {
		return true
	}
	switch z.state {
	case breakerOpen:
		invariant.Assertf(z.openedAt <= b.now,
			"probe: breaker zone opened at %d, after the current tick %d", z.openedAt, b.now)
		if b.now-z.openedAt >= b.cfg.Cooldown {
			z.state = breakerHalfOpen
			return true
		}
		return false
	default:
		return true
	}
}

// record feeds the outcome of a sent logical probe back. It reports whether
// this outcome opened (or re-opened) the zone's breaker.
func (b *breaker) record(dst ipv4.Addr, answered bool) (opened bool) {
	k := b.key(dst)
	z := b.zones[k]
	if answered {
		if z != nil {
			z.state = breakerClosed
			z.fails = 0
		}
		return false
	}
	if z == nil {
		z = &zone{}
		b.zones[k] = z
	}
	z.fails++
	if z.state == breakerHalfOpen || (z.state == breakerClosed && z.fails >= b.cfg.Threshold) {
		invariant.Assertf(z.fails > 0,
			"probe: breaker opening zone %v with no recorded failures", k)
		z.state = breakerOpen
		z.openedAt = b.now
		return true
	}
	return false
}
