package probe

import (
	"sync"

	"tracenet/internal/telemetry"
)

// Pacer rate-limits wire sends. Reserve books the next send at virtual-clock
// tick now and returns how many ticks the caller must wait before putting the
// packet on the wire. A Pacer never blocks and never refuses: it answers with
// a delay, the caller waits through its Waiter (which on the simulated
// substrate advances the virtual clock), so pacing composes with the
// deterministic clock instead of fighting it. Hard refusal stays the budget's
// job — the pacer shapes rate, the budget caps volume.
type Pacer interface {
	Reserve(now uint64) (wait uint64)
}

// TokenBucket is a GCRA-style ("leaky bucket as meter") Pacer: sends drain at
// one per interval ticks with a burst allowance of burst back-to-back sends.
// Rather than tracking token refills — which would deadlock on a virtual
// clock that only advances when packets move — it keeps the theoretical
// arrival time of the next conforming send and answers every Reserve with a
// finite wait, so progress is guaranteed even when the clock stands still.
//
// The daemon shares one TokenBucket across all campaigns of a tenant; it is
// safe for concurrent use.
type TokenBucket struct {
	interval uint64 // ticks per send once the burst is spent
	depth    uint64 // (burst-1)*interval: how far tat may run ahead of now

	// cWait is the optional pre-resolved wait-tick counter. It must be a
	// handle, never a by-name lookup: Reserve runs on the hot probe path.
	cWait *telemetry.Counter

	mu  sync.Mutex
	tat uint64 // theoretical arrival time of the next send
}

// NewTokenBucket creates a bucket admitting one send per interval ticks after
// an initial burst of burst sends. interval == 0 disables pacing (every
// Reserve returns 0); burst == 0 is treated as 1.
func NewTokenBucket(interval, burst uint64) *TokenBucket {
	if burst == 0 {
		burst = 1
	}
	return &TokenBucket{interval: interval, depth: (burst - 1) * interval}
}

// SetWaitCounter arms a pre-resolved counter accumulating the total wait
// ticks this bucket has imposed (the daemon points it at the tenant's
// tracenet_tenant_pacer_wait_ticks_total family).
func (tb *TokenBucket) SetWaitCounter(c *telemetry.Counter) {
	if tb == nil {
		return
	}
	tb.mu.Lock()
	tb.cWait = c
	tb.mu.Unlock()
}

// Reserve implements Pacer. A nil bucket (and an interval of 0) admits
// everything immediately.
func (tb *TokenBucket) Reserve(now uint64) uint64 {
	if tb == nil || tb.interval == 0 {
		return 0
	}
	tb.mu.Lock()
	if tb.tat < now {
		tb.tat = now
	}
	var wait uint64
	if earliest := tb.tat - min(tb.tat, tb.depth); earliest > now {
		wait = earliest - now
	}
	tb.tat += tb.interval
	c := tb.cWait
	tb.mu.Unlock()
	if wait > 0 {
		c.Add(wait)
	}
	return wait
}
