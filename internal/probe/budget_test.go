package probe

import (
	"errors"
	"sync"
	"testing"

	"tracenet/internal/netsim"
	"tracenet/internal/topo"
)

func TestSharedBudgetAccounting(t *testing.T) {
	b := NewSharedBudget(5)
	if !b.TrySpend(3) || b.Used() != 3 || b.Remaining() != 2 {
		t.Fatalf("after spend 3: used %d remaining %d", b.Used(), b.Remaining())
	}
	if b.TrySpend(3) {
		t.Fatal("spend 3 fit in a budget with 2 remaining")
	}
	if b.Used() != 3 {
		t.Fatalf("failed spend consumed budget: used %d", b.Used())
	}
	if !b.TrySpend(2) || !b.Exhausted() || b.Remaining() != 0 {
		t.Fatalf("exact fill: used %d exhausted %v", b.Used(), b.Exhausted())
	}
	if b.TrySpend(1) {
		t.Fatal("spend succeeded on exhausted budget")
	}
}

func TestSharedBudgetUnlimited(t *testing.T) {
	var nilBudget *SharedBudget
	for _, b := range []*SharedBudget{nilBudget, NewSharedBudget(0)} {
		if !b.TrySpend(1 << 40) {
			t.Fatal("unlimited budget refused a spend")
		}
		if b.Exhausted() {
			t.Fatal("unlimited budget reports exhausted")
		}
		if b.Remaining() != ^uint64(0) {
			t.Fatalf("unlimited remaining = %d", b.Remaining())
		}
	}
}

// TestSharedBudgetConcurrentSpend races many goroutines against one budget:
// exactly cap single-packet reservations may succeed, never more, and the
// final accounting must agree with the per-goroutine tallies.
func TestSharedBudgetConcurrentSpend(t *testing.T) {
	const (
		workers  = 8
		attempts = 1000
		cap      = 3000 // < workers*attempts, so contention hits the limit
	)
	b := NewSharedBudget(cap)
	granted := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				if b.TrySpend(1) {
					granted[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, g := range granted {
		total += g
	}
	if total != cap {
		t.Fatalf("%d spends granted, cap %d", total, cap)
	}
	if b.Used() != cap || !b.Exhausted() {
		t.Fatalf("used %d exhausted %v after concurrent fill", b.Used(), b.Exhausted())
	}
}

// TestChildBudgetCharging verifies the parent chain: every child reservation
// lands in the parent, a parent refusal refunds the child, and exhaustion
// propagates upward.
func TestChildBudgetCharging(t *testing.T) {
	parent := NewSharedBudget(5)
	a := NewChildBudget(3, parent)
	b := NewChildBudget(3, parent)
	if !a.TrySpend(3) {
		t.Fatal("child a refused a spend within both caps")
	}
	if parent.Used() != 3 {
		t.Fatalf("parent used %d after child spend, want 3", parent.Used())
	}
	if a.TrySpend(1) {
		t.Fatal("child a overspent its local cap")
	}
	// b has 3 locally but the parent has only 2 left: the failed reservation
	// must be refunded from b, and the 2 that fit must land in both.
	if b.TrySpend(3) {
		t.Fatal("child b spend exceeded the parent cap")
	}
	if b.Used() != 0 {
		t.Fatalf("declined spend left %d reserved in child b", b.Used())
	}
	if !b.TrySpend(2) || parent.Used() != 5 {
		t.Fatalf("exact parent fill failed: parent used %d", parent.Used())
	}
	if !b.Exhausted() {
		t.Fatal("child b not exhausted with its parent fully spent")
	}
	if b.Remaining() != 0 {
		t.Fatalf("child b remaining %d with exhausted parent", b.Remaining())
	}
	if a.Remaining() != 0 {
		t.Fatalf("child a remaining %d with exhausted parent", a.Remaining())
	}
}

// TestChildBudgetUnlimitedLocal: a child with no local cap is purely a window
// onto its parent.
func TestChildBudgetUnlimitedLocal(t *testing.T) {
	parent := NewSharedBudget(2)
	c := NewChildBudget(0, parent)
	if c.Parent() != parent {
		t.Fatal("Parent() lost the chain")
	}
	if !c.TrySpend(2) || c.TrySpend(1) {
		t.Fatal("uncapped child did not mirror parent admission")
	}
	if c.Remaining() != 0 || !c.Exhausted() {
		t.Fatalf("uncapped child remaining %d exhausted %v", c.Remaining(), c.Exhausted())
	}
	if parent.Used() != 2 {
		t.Fatalf("parent used %d, want 2", parent.Used())
	}
}

// TestChildBudgetConcurrent races two children of one parent: the parent must
// admit exactly its cap in total, and each child must stay within its own.
func TestChildBudgetConcurrent(t *testing.T) {
	const (
		workers   = 8
		attempts  = 500
		parentCap = 1000
		childCap  = 800
	)
	parent := NewSharedBudget(parentCap)
	children := []*SharedBudget{
		NewChildBudget(childCap, parent), NewChildBudget(childCap, parent),
	}
	var wg sync.WaitGroup
	granted := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				if children[w%2].TrySpend(1) {
					granted[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, g := range granted {
		total += g
	}
	if total != parentCap {
		t.Fatalf("%d spends granted, parent cap %d", total, parentCap)
	}
	if parent.Used() != parentCap {
		t.Fatalf("parent used %d, want %d", parent.Used(), parentCap)
	}
	if sum := children[0].Used() + children[1].Used(); sum != parentCap {
		t.Fatalf("children account for %d, parent admitted %d", sum, parentCap)
	}
	for i, c := range children {
		if c.Used() > childCap {
			t.Fatalf("child %d used %d past its cap %d", i, c.Used(), childCap)
		}
	}
}

// TestProberSharedBudgetExceeded wires one SharedBudget into two probers on a
// shared network: once the collective wire spend reaches the cap, every
// further probe from either prober fails with ErrBudgetExceeded and nothing
// more goes on the wire.
func TestProberSharedBudgetExceeded(t *testing.T) {
	const cap = 6
	n := netsim.New(topo.Figure3(), netsim.Config{})
	budget := NewSharedBudget(cap)
	probers := make([]*Prober, 2)
	for i := range probers {
		port, err := n.PortFor("vantage")
		if err != nil {
			t.Fatal(err)
		}
		probers[i] = New(port, port.LocalAddr(), Options{SharedBudget: budget})
	}

	sent := 0
	for i := 0; i < cap; i++ {
		if _, err := probers[i%2].Direct(addr("10.0.2.3")); err != nil {
			t.Fatalf("probe %d within budget: %v", i, err)
		}
		sent++
	}
	for i := range probers {
		if _, err := probers[i].Direct(addr("10.0.2.3")); !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("prober %d past budget: err = %v, want ErrBudgetExceeded", i, err)
		}
	}
	if budget.Used() != cap {
		t.Fatalf("budget used %d, want %d", budget.Used(), cap)
	}
	probes, _ := n.Counters()
	if probes != uint64(sent) {
		t.Fatalf("network saw %d probes, budget admitted %d", probes, sent)
	}
}

// TestProberSharedBudgetRetries checks the budget is charged per wire packet,
// not per logical probe: a silent destination with retries enabled burns one
// reservation per attempt.
func TestProberSharedBudgetRetries(t *testing.T) {
	budget := NewSharedBudget(3)
	p, n := newProber(t, netsim.Config{}, Options{
		SharedBudget: budget,
		Retry:        &RetryPolicy{MaxRetries: 5, BackoffBase: 1, BackoffMax: 1},
	})
	// Silent address: attempts 1..3 spend the whole budget, attempt 4 trips it.
	if _, err := p.Direct(addr("10.0.2.200")); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded mid-retry", err)
	}
	if budget.Used() != 3 {
		t.Fatalf("budget used %d, want 3", budget.Used())
	}
	probes, _ := n.Counters()
	if probes != 3 {
		t.Fatalf("network saw %d probes, want 3", probes)
	}
}

func TestClearCache(t *testing.T) {
	p, _ := newProber(t, netsim.Config{}, Options{Cache: true})
	for i := 0; i < 2; i++ {
		if _, err := p.Direct(addr("10.0.2.3")); err != nil {
			t.Fatal(err)
		}
	}
	if s := p.Stats(); s.Sent != 1 || s.Cached != 1 {
		t.Fatalf("before clear: sent %d cached %d, want 1/1", s.Sent, s.Cached)
	}
	p.ClearCache()
	if _, err := p.Direct(addr("10.0.2.3")); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Sent != 2 || s.Cached != 1 {
		t.Fatalf("after clear: sent %d cached %d, want 2/1", s.Sent, s.Cached)
	}
}

func TestClearCacheWithoutCache(t *testing.T) {
	p, _ := newProber(t, netsim.Config{}, Options{})
	p.ClearCache() // must not enable caching
	for i := 0; i < 2; i++ {
		if _, err := p.Direct(addr("10.0.2.3")); err != nil {
			t.Fatal(err)
		}
	}
	if s := p.Stats(); s.Sent != 2 || s.Cached != 0 {
		t.Fatalf("sent %d cached %d, want 2/0", s.Sent, s.Cached)
	}
}
