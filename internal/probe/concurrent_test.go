package probe

import (
	"fmt"
	"sync"
	"testing"

	"tracenet/internal/netsim"
	"tracenet/internal/topo"
)

// These tests exercise the documented concurrency contract: a Prober is
// single-goroutine, but several Probers (each with its own Port) may share
// one Network. Run under -race they check the netsim locking discipline that
// tracenetlint's lockcheck analyzer enforces statically; the determinism
// test additionally checks that per-prober behaviour — retry counts, backoff
// ticks, breaker transitions — is independent of goroutine interleaving.

// workerOutcome is everything one concurrent prober observed.
type workerOutcome struct {
	kinds []Kind
	stats Stats
}

// runBreakerWorker drives one prober through a fixed script against n: a few
// answered probes, then enough silent ones to trip the zone breaker, with
// exponential backoff and jitter active so Port.Wait runs concurrently with
// other workers' Exchanges.
func runBreakerWorker(n *netsim.Network, flow uint16) (workerOutcome, error) {
	port, err := n.PortFor("vantage")
	if err != nil {
		return workerOutcome{}, err
	}
	p := New(port, port.LocalAddr(), Options{
		FlowID:  flow,
		Retry:   &RetryPolicy{MaxRetries: 1, BackoffBase: 2, BackoffMax: 8, Jitter: 0.25},
		Breaker: &BreakerConfig{}, // defaults: threshold 6, cooldown 64
	})
	var out workerOutcome
	for i := 0; i < 3; i++ {
		r, err := p.Direct(addr("10.0.2.3")) // answered: resets the zone
		if err != nil {
			return workerOutcome{}, err
		}
		out.kinds = append(out.kinds, r.Kind)
	}
	for i := 0; i < 8; i++ {
		r, err := p.Direct(addr("10.0.2.200")) // silent: fails 1..6 open the breaker
		if err != nil {
			return workerOutcome{}, err
		}
		out.kinds = append(out.kinds, r.Kind)
	}
	out.stats = p.Stats()
	return out, nil
}

func TestConcurrentProbersShareOneNetwork(t *testing.T) {
	const workers = 8
	n := netsim.New(topo.Figure3(), netsim.Config{})
	outcomes := make([]workerOutcome, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i], errs[i] = runBreakerWorker(n, uint16(0x1000+i))
		}(i)
	}
	wg.Wait()

	var totalSent uint64
	for i, out := range outcomes {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		for j, k := range out.kinds {
			want := None
			if j < 3 {
				want = EchoReply
			}
			if k != want {
				t.Errorf("worker %d probe %d: kind %v, want %v", i, j, k, want)
			}
		}
		s := out.stats
		if s.BreakerOpens != 1 || s.BreakerSkips != 2 {
			t.Errorf("worker %d: breaker opens/skips = %d/%d, want 1/2", i, s.BreakerOpens, s.BreakerSkips)
		}
		if s.Retries == 0 || s.BackoffTicks == 0 {
			t.Errorf("worker %d: retries %d, backoff %d ticks — retry policy never engaged", i, s.Retries, s.BackoffTicks)
		}
		totalSent += s.Sent
	}
	probes, replies := n.Counters()
	if probes != totalSent {
		t.Errorf("network counted %d probes, probers sent %d", probes, totalSent)
	}
	if replies > probes {
		t.Errorf("replies %d outran probes %d", replies, probes)
	}
}

// TestConcurrentProberDeterminism runs the same per-prober script once alone
// on a private network and once racing 7 other workers on a shared one. A
// prober's observable behaviour — outcome kinds, packets sent, retry and
// backoff accounting, breaker transitions — must not depend on scheduling.
func TestConcurrentProberDeterminism(t *testing.T) {
	const workers = 8
	baseline := make([]workerOutcome, workers)
	for i := 0; i < workers; i++ {
		out, err := runBreakerWorker(netsim.New(topo.Figure3(), netsim.Config{}), uint16(0x1000+i))
		if err != nil {
			t.Fatalf("baseline worker %d: %v", i, err)
		}
		baseline[i] = out
	}

	shared := netsim.New(topo.Figure3(), netsim.Config{})
	outcomes := make([]workerOutcome, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i], errs[i] = runBreakerWorker(shared, uint16(0x1000+i))
		}(i)
	}
	wg.Wait()

	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent worker %d: %v", i, errs[i])
		}
		if fmt.Sprint(outcomes[i].kinds) != fmt.Sprint(baseline[i].kinds) {
			t.Errorf("worker %d: kinds %v under contention, %v alone", i, outcomes[i].kinds, baseline[i].kinds)
		}
		if outcomes[i].stats != baseline[i].stats {
			t.Errorf("worker %d: stats %+v under contention, %+v alone", i, outcomes[i].stats, baseline[i].stats)
		}
	}
}

// TestConcurrentRetryPolicyJitterStreams checks that the jittered backoff
// stream is per-prober state: probers with the same flow identifier draw
// identical waits even when computed from racing goroutines.
func TestConcurrentRetryPolicyJitterStreams(t *testing.T) {
	const workers = 4
	ticks := make([]uint64, workers)
	var wg sync.WaitGroup
	n := netsim.New(topo.Figure3(), netsim.Config{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			port, err := n.PortFor("vantage")
			if err != nil {
				return
			}
			p := New(port, port.LocalAddr(), Options{
				FlowID: 0x2222, // same flow → same deterministic jitter stream
				Retry:  &RetryPolicy{MaxRetries: 3, BackoffBase: 4, BackoffMax: 32, Jitter: 0.5},
			})
			for j := 0; j < 5; j++ {
				if _, err := p.Direct(addr("10.0.2.200")); err != nil {
					return
				}
			}
			ticks[i] = p.Stats().BackoffTicks
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if ticks[i] != ticks[0] {
			t.Errorf("worker %d backed off %d ticks, worker 0 %d — jitter stream leaked across probers", i, ticks[i], ticks[0])
		}
	}
	if ticks[0] == 0 {
		t.Fatal("backoff never engaged")
	}
}
