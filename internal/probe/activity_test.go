package probe

import (
	"sync"
	"testing"
)

func TestActivityMarkAndRead(t *testing.T) {
	var a Activity
	if a.Probes() != 0 || a.LastTick() != 0 {
		t.Fatalf("fresh activity not zero: probes %d, last %d", a.Probes(), a.LastTick())
	}
	a.MarkAt(10)
	a.MarkAt(7) // stale tick from a racing worker must not rewind the max
	a.MarkAt(12)
	if got := a.Probes(); got != 3 {
		t.Fatalf("probes = %d, want 3", got)
	}
	if got := a.LastTick(); got != 12 {
		t.Fatalf("last tick = %d, want 12 (CAS-max must ignore stale ticks)", got)
	}
}

func TestActivityNilSafe(t *testing.T) {
	var a *Activity
	a.MarkAt(5)
	if a.Probes() != 0 || a.LastTick() != 0 {
		t.Fatal("nil activity must be inert")
	}
}

func TestActivityConcurrentMonotone(t *testing.T) {
	var a Activity
	const workers, marks = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < marks; i++ {
				a.MarkAt(uint64(w*marks + i))
			}
		}(w)
	}
	wg.Wait()
	if got := a.Probes(); got != workers*marks {
		t.Fatalf("probes = %d, want %d", got, workers*marks)
	}
	if got := a.LastTick(); got != workers*marks-1 {
		t.Fatalf("last tick = %d, want %d", got, workers*marks-1)
	}
}

// The per-probe cost of activity tracking must be zero allocations: the
// campaign wires one Activity into every prober, so anything it allocates
// multiplies by the probe count and trips the allocation-budget gate.
func TestActivityMarkZeroAlloc(t *testing.T) {
	var a Activity
	tick := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		tick++
		a.MarkAt(tick)
	}); n != 0 {
		t.Fatalf("Activity.MarkAt allocates %.1f per call, want 0", n)
	}
}

func TestProberMarksActivity(t *testing.T) {
	var a Activity
	tr := staticTransport{} // silent: every exchange completes with no reply
	p := New(tr, addr("10.0.0.1"), Options{NoRetry: true, Activity: &a})
	for i := 0; i < 4; i++ {
		if _, err := p.ProbeUncached(addr("10.0.2.3"), 3); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Probes(); got != 4 {
		t.Fatalf("activity probes = %d, want 4 (one mark per exchange)", got)
	}
}
