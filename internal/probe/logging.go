package probe

import (
	"fmt"
	"io"

	"tracenet/internal/wire"
)

// LoggingTransport wraps a Transport and writes a one-line transcript of
// every exchange — the probe-level debugging view the paper's conclusion
// suggests tracenet for ("network analysis/debugging").
type LoggingTransport struct {
	Inner Transport
	W     io.Writer
}

// Exchange forwards to the inner transport, logging the decoded probe and
// its reply.
func (l LoggingTransport) Exchange(raw []byte) ([]byte, error) {
	reply, err := l.Inner.Exchange(raw)
	fmt.Fprintf(l.W, "%s -> %s\n", describe(raw), describeReply(reply, err))
	return reply, err
}

func describe(raw []byte) string {
	p, err := wire.Decode(raw)
	if err != nil {
		return fmt.Sprintf("undecodable(%d bytes)", len(raw))
	}
	proto := "?"
	switch {
	case p.ICMP != nil:
		proto = "icmp"
	case p.UDP != nil:
		proto = "udp"
	case p.TCP != nil:
		proto = "tcp"
	}
	return fmt.Sprintf("%s %v ttl=%d", proto, p.IP.Dst, p.IP.TTL)
}

func describeReply(raw []byte, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	if raw == nil {
		return "timeout"
	}
	p, derr := wire.Decode(raw)
	if derr != nil {
		return fmt.Sprintf("undecodable reply(%d bytes)", len(raw))
	}
	switch {
	case p.ICMP != nil && p.ICMP.Type == wire.ICMPEchoReply:
		return fmt.Sprintf("echo-reply from %v id=%d", p.IP.Src, p.IP.ID)
	case p.ICMP != nil && p.ICMP.Type == wire.ICMPTimeExceeded:
		return fmt.Sprintf("ttl-exceeded from %v", p.IP.Src)
	case p.ICMP != nil && p.ICMP.Type == wire.ICMPDestUnreach:
		return fmt.Sprintf("unreachable(code %d) from %v", p.ICMP.Code, p.IP.Src)
	case p.TCP != nil:
		return fmt.Sprintf("tcp rst from %v", p.IP.Src)
	}
	return fmt.Sprintf("reply from %v", p.IP.Src)
}
