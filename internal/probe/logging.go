package probe

import (
	"fmt"
	"io"

	"tracenet/internal/telemetry"
)

// LoggingTransport wraps a Transport and writes a one-line transcript of
// every exchange — the probe-level debugging view the paper's conclusion
// suggests tracenet for ("network analysis/debugging"). Each line is a
// rendered ProbeEvent, so the transcript shows the reply's remaining TTL and
// classifies failures (timeout vs transport vs decode) instead of echoing a
// raw error string.
type LoggingTransport struct {
	Inner Transport
	W     io.Writer
	// Clock, when set, prefixes every line with the virtual tick at which
	// the exchange completed, aligning the transcript with trace and
	// flight-recorder timestamps.
	Clock telemetry.Clock
	// Sink, when set, receives the classified event instead of a rendered
	// line on W — the hook the structured logging layer (internal/obs) uses
	// to turn exchanges into leveled JSON records without this package
	// depending on it.
	Sink func(ProbeEvent)
}

// Exchange forwards to the inner transport, logging the classified exchange.
func (l LoggingTransport) Exchange(raw []byte) ([]byte, error) {
	reply, err := l.Inner.Exchange(raw)
	var ticks uint64
	if l.Clock != nil {
		ticks = l.Clock.Ticks()
	}
	ev := exchangeEvent(ticks, raw, reply, err)
	if l.Sink != nil {
		l.Sink(ev)
		return reply, err
	}
	if l.Clock != nil {
		fmt.Fprintf(l.W, "[%6d] %s\n", ev.Ticks, ev)
	} else {
		fmt.Fprintf(l.W, "%s\n", ev)
	}
	return reply, err
}
