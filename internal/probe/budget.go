package probe

import (
	"sync/atomic"

	"tracenet/internal/invariant"
)

// SharedBudget caps the number of packets a set of probers may put on the
// wire collectively — the campaign-level analogue of Options.Budget, shared
// across every worker of a parallel collection run. Reservation is atomic:
// once the cap is reached every further spend attempt fails, no matter how
// many probers race for the last packet, so the campaign can never overspend.
//
// Budgets chain: a budget built with NewChildBudget reserves against its own
// cap first and then against the parent, refunding the local reservation when
// the parent declines. The daemon uses this to give every campaign its own
// cap while a per-tenant root budget bounds the tenant's aggregate spend
// across all of its campaigns.
type SharedBudget struct {
	cap    uint64
	used   atomic.Uint64
	parent *SharedBudget
}

// NewSharedBudget creates a budget allowing cap wire packets in total.
// cap == 0 means unlimited (every spend succeeds); a nil *SharedBudget
// behaves the same, so an unbudgeted campaign carries no extra cost.
func NewSharedBudget(cap uint64) *SharedBudget {
	return &SharedBudget{cap: cap}
}

// NewChildBudget creates a budget allowing cap wire packets (0 = no local
// cap) whose every successful reservation is also charged to parent. A nil
// parent makes it equivalent to NewSharedBudget.
func NewChildBudget(cap uint64, parent *SharedBudget) *SharedBudget {
	return &SharedBudget{cap: cap, parent: parent}
}

// Parent returns the budget this one charges through, if any.
func (b *SharedBudget) Parent() *SharedBudget {
	if b == nil {
		return nil
	}
	return b.parent
}

// TrySpend reserves n packets against the budget (and its whole parent
// chain), reporting whether the reservation fit. A failed reservation
// consumes nothing at any level: a local reservation that the parent then
// declines is refunded before returning.
func (b *SharedBudget) TrySpend(n uint64) bool {
	if b == nil {
		return true
	}
	if b.cap != 0 {
		for {
			used := b.used.Load()
			if used+n > b.cap {
				return false
			}
			if b.used.CompareAndSwap(used, used+n) {
				invariant.Assertf(used+n <= b.cap,
					"probe: shared budget overspent: %d of %d", used+n, b.cap)
				break
			}
		}
	}
	if b.parent.TrySpend(n) {
		return true
	}
	if b.cap != 0 {
		b.used.Add(^uint64(n - 1)) // refund the local reservation
	}
	return false
}

// Used returns how many packets have been reserved so far.
func (b *SharedBudget) Used() uint64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Cap returns the budget's capacity (0 = unlimited).
func (b *SharedBudget) Cap() uint64 {
	if b == nil {
		return 0
	}
	return b.cap
}

// Remaining returns how many packets may still be spent, the minimum over
// the parent chain; unlimited budgets (and nil) report ^uint64(0).
func (b *SharedBudget) Remaining() uint64 {
	if b == nil {
		return ^uint64(0)
	}
	rem := ^uint64(0)
	if b.cap != 0 {
		if used := b.used.Load(); used >= b.cap {
			rem = 0
		} else {
			rem = b.cap - used
		}
	}
	if prem := b.parent.Remaining(); prem < rem {
		rem = prem
	}
	return rem
}

// Exhausted reports whether the budget — or any budget up its parent chain —
// is fully spent.
func (b *SharedBudget) Exhausted() bool {
	if b == nil {
		return false
	}
	if b.cap != 0 && b.used.Load() >= b.cap {
		return true
	}
	return b.parent.Exhausted()
}
