package probe

import (
	"sync/atomic"

	"tracenet/internal/invariant"
)

// SharedBudget caps the number of packets a set of probers may put on the
// wire collectively — the campaign-level analogue of Options.Budget, shared
// across every worker of a parallel collection run. Reservation is atomic:
// once the cap is reached every further spend attempt fails, no matter how
// many probers race for the last packet, so the campaign can never overspend.
type SharedBudget struct {
	cap  uint64
	used atomic.Uint64
}

// NewSharedBudget creates a budget allowing cap wire packets in total.
// cap == 0 means unlimited (every spend succeeds); a nil *SharedBudget
// behaves the same, so an unbudgeted campaign carries no extra cost.
func NewSharedBudget(cap uint64) *SharedBudget {
	return &SharedBudget{cap: cap}
}

// TrySpend reserves n packets against the budget, reporting whether the
// reservation fit. A failed reservation consumes nothing.
func (b *SharedBudget) TrySpend(n uint64) bool {
	if b == nil || b.cap == 0 {
		return true
	}
	for {
		used := b.used.Load()
		if used+n > b.cap {
			return false
		}
		if b.used.CompareAndSwap(used, used+n) {
			invariant.Assertf(used+n <= b.cap,
				"probe: shared budget overspent: %d of %d", used+n, b.cap)
			return true
		}
	}
}

// Used returns how many packets have been reserved so far.
func (b *SharedBudget) Used() uint64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Cap returns the budget's capacity (0 = unlimited).
func (b *SharedBudget) Cap() uint64 {
	if b == nil {
		return 0
	}
	return b.cap
}

// Remaining returns how many packets may still be spent; unlimited budgets
// (and nil) report ^uint64(0).
func (b *SharedBudget) Remaining() uint64 {
	if b == nil || b.cap == 0 {
		return ^uint64(0)
	}
	used := b.used.Load()
	if used >= b.cap {
		return 0
	}
	return b.cap - used
}

// Exhausted reports whether the budget is fully spent.
func (b *SharedBudget) Exhausted() bool {
	if b == nil || b.cap == 0 {
		return false
	}
	return b.used.Load() >= b.cap
}
