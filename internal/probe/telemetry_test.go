package probe

import (
	"errors"
	"strings"
	"testing"

	"tracenet/internal/netsim"
	"tracenet/internal/telemetry"
	"tracenet/internal/topo"
)

// newTelemetryProber builds a figure-3 network serving as the telemetry
// clock, with the full observability pipeline attached.
func newTelemetryProber(t *testing.T, opts Options) (*Prober, *telemetry.Telemetry, *strings.Builder) {
	t.Helper()
	n := netsim.New(topo.Figure3(), netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(n)
	tel.Recorder = telemetry.NewFlightRecorder(telemetry.DefaultFlightRecorderSize)
	var trace strings.Builder
	tel.Tracer = telemetry.NewTracer(&trace)
	n.SetTelemetry(tel)
	opts.Telemetry = tel
	return New(port, port.LocalAddr(), opts), tel, &trace
}

func TestProberTelemetryMirrorsStats(t *testing.T) {
	p, tel, _ := newTelemetryProber(t, Options{Cache: true})
	if _, err := p.Direct(addr("10.0.2.3")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Direct(addr("10.0.2.3")); err != nil { // served from cache
		t.Fatal(err)
	}
	if _, err := p.Direct(addr("10.0.2.200")); err != nil { // silent: retry + timeout
		t.Fatal(err)
	}
	st := p.Stats()
	for _, tc := range []struct {
		name string
		want uint64
	}{
		{"tracenet_probe_sent_total", st.Sent},
		{"tracenet_probe_answered_total", st.Answered},
		{"tracenet_probe_retries_total", st.Retries},
		{"tracenet_probe_cached_total", st.Cached},
		{"tracenet_probe_timeouts_total", st.Timeouts},
	} {
		if got := tel.Counter(tc.name, "proto", "icmp").Value(); got != tc.want {
			t.Errorf("%s = %d, want %d (Stats mirror broken)", tc.name, got, tc.want)
		}
	}
	if st.Sent == 0 || st.Cached == 0 || st.Timeouts == 0 {
		t.Fatalf("test did not exercise sent/cached/timeout paths: %+v", st)
	}
	if got := tel.Histogram("tracenet_probe_reply_ttl", ReplyTTLBuckets, "proto", "icmp").Count(); got != st.Answered {
		t.Errorf("reply-TTL observations = %d, want one per answered probe (%d)", got, st.Answered)
	}
}

func TestProberFlightRecorderAndTrace(t *testing.T) {
	p, tel, trace := newTelemetryProber(t, Options{NoRetry: true})
	if _, err := p.Probe(addr("10.0.5.2"), 2); err != nil {
		t.Fatal(err)
	}
	snap := tel.Recorder.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("recorder holds %d events, want 1: %v", len(snap), snap)
	}
	for _, want := range []string{"icmp 10.0.5.2 ttl=2", "ttl-exceeded from 10.0.1.1", "rttl="} {
		if !strings.Contains(snap[0].Msg, want) {
			t.Errorf("recorded event lacks %q: %s", want, snap[0].Msg)
		}
	}
	if err := tel.Tracer.Close(); err != nil {
		t.Fatal(err)
	}
	out := trace.String()
	for _, want := range []string{`"name":"probe"`, `"ph":"X"`, `"dst":"10.0.5.2"`, `"outcome":"ttl-exceeded"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace lacks %q:\n%s", want, out)
		}
	}
}

func TestBreakerOpenRaisesIncident(t *testing.T) {
	p, tel, _ := newTelemetryProber(t, Options{
		NoRetry: true,
		Breaker: &BreakerConfig{Threshold: 2},
	})
	var dump strings.Builder
	tel.SetIncidentWriter(&dump)
	for i := 0; i < 3; i++ {
		if _, err := p.Direct(addr("10.0.2.200")); err != nil {
			t.Fatal(err)
		}
	}
	if p.Stats().BreakerOpens == 0 {
		t.Fatal("breaker never opened; incident path not exercised")
	}
	if tel.Incidents() == 0 {
		t.Fatal("breaker opened without raising an incident")
	}
	out := dump.String()
	for _, want := range []string{"flight recorder dump #1", "breaker-open zone=10.0.2.0/24",
		"icmp 10.0.2.200"} {
		if !strings.Contains(out, want) {
			t.Errorf("incident dump lacks %q:\n%s", want, out)
		}
	}
}

// scriptedTransport replays canned (reply, err) outcomes in order.
type scriptedTransport struct {
	replies [][]byte
	errs    []error
	i       int
}

func (s *scriptedTransport) Exchange(raw []byte) ([]byte, error) {
	i := s.i
	s.i++
	return s.replies[i], s.errs[i]
}

func TestLoggingTransportClassifiesOutcomes(t *testing.T) {
	n := netsim.New(topo.Figure3(), netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	// A real echo reply, captured through the simulator.
	p := New(port, port.LocalAddr(), Options{NoRetry: true})
	if _, err := p.Direct(addr("10.0.2.3")); err != nil {
		t.Fatal(err)
	}

	script := &scriptedTransport{
		replies: [][]byte{nil, nil, {0xde, 0xad, 0xbe, 0xef}},
		errs:    []error{nil, errors.New("socket shut"), nil},
	}
	var buf strings.Builder
	lt := LoggingTransport{Inner: script, W: &buf, Clock: n}
	lp := New(lt, port.LocalAddr(), Options{NoRetry: true})
	for i := 0; i < 3; i++ {
		lp.Probe(addr("10.0.9.9"), 3)
	}
	out := buf.String()
	for _, want := range []string{
		"icmp 10.0.9.9 ttl=3 -> timeout",
		"icmp 10.0.9.9 ttl=3 -> error: transport",
		"icmp 10.0.9.9 ttl=3 -> error: decode(4 bytes)",
		"[", // tick prefix from the Clock
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "socket shut") {
		t.Errorf("transcript leaks the raw transport error instead of its kind:\n%s", out)
	}
}

func TestLoggingTransportLogsReplyTTL(t *testing.T) {
	n := netsim.New(topo.Figure3(), netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	p := New(LoggingTransport{Inner: port, W: &buf}, port.LocalAddr(), Options{NoRetry: true})
	if _, err := p.Probe(addr("10.0.5.2"), 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ttl-exceeded from 10.0.1.1", "rttl=", "ipid="} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript lacks %q:\n%s", want, out)
		}
	}
}

// TestDisabledTelemetryOverheadBudget verifies the "<5% when disabled"
// acceptance bound: the cost of the nil-guarded instrumentation sites a probe
// traverses, extrapolated generously, must stay under 5% of one probe
// exchange through the simulator.
func TestDisabledTelemetryOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison under -short")
	}
	n := netsim.New(topo.Figure3(), netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	p := New(port, port.LocalAddr(), Options{NoRetry: true})
	probeBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Probe(addr("10.0.2.3"), 64); err != nil {
				b.Fatal(err)
			}
		}
	})
	guardBench := testing.Benchmark(func(b *testing.B) {
		var c *telemetry.Counter
		var tel *telemetry.Telemetry
		for i := 0; i < b.N; i++ {
			c.Add(1)
			tel.Record("probe", "")
		}
	})
	// One logical no-retry probe executes four nil-guarded operations on the
	// answered path (cSent, cAnswered, two p.tel checks); a guardBench
	// iteration covers two, so 4 iterations over-covers a probe twofold.
	guarded := 4 * guardBench.NsPerOp()
	budget := probeBench.NsPerOp() * 5 / 100
	t.Logf("probe=%dns guard16=%dns budget(5%%)=%dns", probeBench.NsPerOp(), guarded, budget)
	if guarded > budget {
		t.Errorf("disabled telemetry costs %dns per probe, over the 5%% budget of %dns",
			guarded, budget)
	}
}
