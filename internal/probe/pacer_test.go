package probe

import (
	"sync"
	"testing"

	"tracenet/internal/netsim"
	"tracenet/internal/telemetry"
	"tracenet/internal/topo"
)

func TestTokenBucketBurstThenPacing(t *testing.T) {
	tb := NewTokenBucket(10, 3)
	// The burst admits 3 back-to-back sends at tick 0.
	for i := 0; i < 3; i++ {
		if w := tb.Reserve(0); w != 0 {
			t.Fatalf("burst send %d waited %d ticks", i, w)
		}
	}
	// Every further send at tick 0 queues one interval behind the last.
	for i, want := range []uint64{10, 20, 30} {
		if w := tb.Reserve(0); w != want {
			t.Fatalf("post-burst send %d waited %d, want %d", i, w, want)
		}
	}
}

func TestTokenBucketRefillsWithClock(t *testing.T) {
	tb := NewTokenBucket(10, 1)
	if w := tb.Reserve(0); w != 0 {
		t.Fatalf("first send waited %d", w)
	}
	if w := tb.Reserve(0); w != 10 {
		t.Fatalf("second send at the same tick waited %d, want 10", w)
	}
	// After the clock has advanced past the queue, sends are free again —
	// but an idle period must not bank extra burst.
	if w := tb.Reserve(100); w != 0 {
		t.Fatalf("send after idle waited %d", w)
	}
	if w := tb.Reserve(100); w != 10 {
		t.Fatalf("idle banked burst: second send waited %d, want 10", w)
	}
}

func TestTokenBucketDisabledAndNil(t *testing.T) {
	var nilTB *TokenBucket
	nilTB.SetWaitCounter(nil) // must not panic
	for _, tb := range []*TokenBucket{nilTB, NewTokenBucket(0, 5)} {
		for i := 0; i < 100; i++ {
			if w := tb.Reserve(0); w != 0 {
				t.Fatalf("disabled bucket imposed a wait of %d", w)
			}
		}
	}
}

func TestTokenBucketWaitCounter(t *testing.T) {
	clk := &telemetry.ManualClock{}
	tel := telemetry.New(clk)
	tb := NewTokenBucket(5, 1)
	tb.SetWaitCounter(tel.Counter("tracenet_tenant_pacer_wait_ticks_total", "tenant", "t"))
	tb.Reserve(0) // free
	tb.Reserve(0) // waits 5
	tb.Reserve(0) // waits 10
	got := tel.Counter("tracenet_tenant_pacer_wait_ticks_total", "tenant", "t").Value()
	if got != 15 {
		t.Fatalf("wait counter = %d, want 15", got)
	}
}

// TestTokenBucketConcurrentReserve races reservations: the bucket must hand
// out strictly increasing slots — total admitted work equals burst plus one
// per interval — and never panic or lose a reservation.
func TestTokenBucketConcurrentReserve(t *testing.T) {
	const (
		workers  = 8
		each     = 250
		interval = 4
		burst    = 16
	)
	tb := NewTokenBucket(interval, burst)
	waits := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				waits[w] += tb.Reserve(0)
			}
		}(w)
	}
	wg.Wait()
	// With the clock pinned at 0, reservation i (0-based, globally ordered)
	// waits max(0, (i-burst+1)*interval); the sum is schedule-independent.
	var want, got uint64
	for i := 0; i < workers*each; i++ {
		if i >= burst-1 {
			want += uint64(i-burst+1) * interval
		}
	}
	for _, w := range waits {
		got += w
	}
	if got != want {
		t.Fatalf("total pacer wait %d, want %d", got, want)
	}
}

// TestProberPacerWaits runs a paced prober on the simulator: each wire send
// past the burst must advance the virtual clock by the pacing interval, and
// the waits must land in Stats.PacerTicks and the metrics mirror.
func TestProberPacerWaits(t *testing.T) {
	const interval = 7
	n := netsim.New(topo.Figure3(), netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(n)
	p := New(port, port.LocalAddr(), Options{
		Pacer:     NewTokenBucket(interval, 1),
		Telemetry: tel,
	})
	for i := 0; i < 4; i++ {
		if _, err := p.Direct(addr("10.0.2.3")); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if s.Sent != 4 {
		t.Fatalf("sent %d, want 4", s.Sent)
	}
	if s.PacerTicks == 0 {
		t.Fatal("paced prober accumulated no pacer ticks")
	}
	if got := tel.Counter("tracenet_probe_pacer_wait_ticks_total").Value(); got != s.PacerTicks {
		t.Fatalf("metrics mirror %d, stats %d", got, s.PacerTicks)
	}
	if delta := s.Sub(Stats{PacerTicks: 1}); delta.PacerTicks != s.PacerTicks-1 {
		t.Fatalf("Stats.Sub ignores PacerTicks: %+v", delta)
	}
}

// TestProberPacerCacheBypass: cache hits and breaker skips put nothing on the
// wire, so they must not burn rate slots.
func TestProberPacerCacheBypass(t *testing.T) {
	tb := NewTokenBucket(1000, 1)
	p, _ := newProber(t, netsim.Config{}, Options{Pacer: tb, Cache: true})
	if _, err := p.Direct(addr("10.0.2.3")); err != nil {
		t.Fatal(err)
	}
	base := p.Stats().PacerTicks
	for i := 0; i < 5; i++ {
		if _, err := p.Direct(addr("10.0.2.3")); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if s.Cached != 5 {
		t.Fatalf("cached %d, want 5", s.Cached)
	}
	if s.PacerTicks != base {
		t.Fatalf("cache hits burned pacer ticks: %d -> %d", base, s.PacerTicks)
	}
}
