package probe

import (
	"fmt"
	"strconv"

	"tracenet/internal/ipv4"
	"tracenet/internal/wire"
)

// ErrKind classifies how a probe exchange failed to produce a usable reply —
// the distinction the old transcript log collapsed into a raw err string.
// Timeouts are ordinary measurement outcomes (silent-by-design address
// space accumulates them); transport and decode failures are fault evidence.
type ErrKind uint8

const (
	// ErrNone: the exchange produced a decodable reply.
	ErrNone ErrKind = iota
	// ErrTimeout: the network stayed silent within the timeout window.
	ErrTimeout
	// ErrTransportFault: the Transport itself failed (socket error, netsim
	// refusing an injection) — the condition ErrTransport wraps.
	ErrTransportFault
	// ErrDecode: a reply arrived but did not parse (mangled datagram).
	ErrDecode
)

func (k ErrKind) String() string {
	switch k {
	case ErrNone:
		return "none"
	case ErrTimeout:
		return "timeout"
	case ErrTransportFault:
		return "transport"
	case ErrDecode:
		return "decode"
	}
	return fmt.Sprintf("errkind(%d)", uint8(k))
}

// ProbeEvent is one probe exchange on tracenet's telemetry event stream: the
// decoded request, the classified outcome, and — when a reply arrived — the
// responder's address, the reply datagram's remaining TTL, and its IP
// identifier. The flight recorder retains these, LoggingTransport renders
// them live, and golden tests replay them.
type ProbeEvent struct {
	Ticks    uint64
	Proto    string
	Dst      ipv4.Addr
	TTL      uint8
	Err      ErrKind
	Outcome  string // reply classification; "" when Err != ErrNone
	From     ipv4.Addr
	ReplyTTL uint8
	IPID     uint16
	// RawLen is the undecodable payload size for ErrDecode events.
	RawLen int
}

// String renders the event as the one-line transcript form:
//
//	icmp 10.0.5.2 ttl=3 -> ttl-exceeded from 10.0.2.1 rttl=61 ipid=3063
func (e ProbeEvent) String() string {
	return string(e.AppendText(nil))
}

// AppendText appends the String form to dst and returns the extended slice —
// the allocation-free rendering path the prober's telemetry hot path uses
// with a reused buffer. Byte-identical to String by construction.
func (e ProbeEvent) AppendText(dst []byte) []byte {
	dst = append(dst, e.Proto...)
	dst = append(dst, ' ')
	dst = e.Dst.AppendText(dst)
	dst = append(dst, " ttl="...)
	dst = strconv.AppendUint(dst, uint64(e.TTL), 10)
	dst = append(dst, " -> "...)
	switch e.Err {
	case ErrTimeout:
		dst = append(dst, "timeout"...)
	case ErrTransportFault:
		dst = append(dst, "error: transport"...)
	case ErrDecode:
		dst = append(dst, "error: decode("...)
		dst = strconv.AppendInt(dst, int64(e.RawLen), 10)
		dst = append(dst, " bytes)"...)
	default:
		dst = append(dst, e.Outcome...)
		dst = append(dst, " from "...)
		dst = e.From.AppendText(dst)
		dst = append(dst, " rttl="...)
		dst = strconv.AppendUint(dst, uint64(e.ReplyTTL), 10)
		dst = append(dst, " ipid="...)
		dst = strconv.AppendUint(dst, uint64(e.IPID), 10)
	}
	return dst
}

// exchangeEvent builds the event for one raw exchange, classifying the error
// kind and, for decodable replies, the reply type. It works from wire bytes
// alone (no prober state), so LoggingTransport can observe any transport; the
// prober itself uses probeEvent with the packets it already decoded.
func exchangeEvent(ticks uint64, raw, reply []byte, err error) ProbeEvent {
	//lint:ignore wireerr an undecodable request degrades the event to proto "?" by design
	sent, _ := wire.Decode(raw)
	var rp *wire.Packet
	var derr error
	if err == nil && reply != nil {
		rp, derr = wire.Decode(reply)
	}
	return probeEvent(ticks, sent, rp, reply, err, derr)
}

// probeEvent builds the event from already-decoded packets — the prober's
// zero-re-decode path. sent may be nil (undecodable request bytes); reply is
// consulted only when err == nil, rawReply != nil, and derr == nil.
func probeEvent(ticks uint64, sent, reply *wire.Packet, rawReply []byte, err, derr error) ProbeEvent {
	ev := ProbeEvent{Ticks: ticks, Proto: "?"}
	if sent != nil {
		ev.Dst = sent.IP.Dst
		ev.TTL = sent.IP.TTL
		switch {
		case sent.ICMP != nil:
			ev.Proto = "icmp"
		case sent.UDP != nil:
			ev.Proto = "udp"
		case sent.TCP != nil:
			ev.Proto = "tcp"
		}
	}
	switch {
	case err != nil:
		ev.Err = ErrTransportFault
	case rawReply == nil:
		ev.Err = ErrTimeout
	case derr != nil:
		ev.Err = ErrDecode
		ev.RawLen = len(rawReply)
	default:
		ev.From = reply.IP.Src
		ev.ReplyTTL = reply.IP.TTL
		ev.IPID = reply.IP.ID
		ev.Outcome = replyName(reply)
	}
	return ev
}

// replyName classifies a decoded reply packet by its wire type.
func replyName(p *wire.Packet) string {
	switch {
	case p.ICMP != nil && p.ICMP.Type == wire.ICMPEchoReply:
		return "echo-reply"
	case p.ICMP != nil && p.ICMP.Type == wire.ICMPTimeExceeded:
		return "ttl-exceeded"
	case p.ICMP != nil && p.ICMP.Type == wire.ICMPDestUnreach && p.ICMP.Code == wire.CodePortUnreach:
		return "port-unreachable"
	case p.ICMP != nil && p.ICMP.Type == wire.ICMPDestUnreach:
		return fmt.Sprintf("unreachable(code %d)", p.ICMP.Code)
	case p.TCP != nil && p.TCP.Flags&wire.TCPFlagRST != 0:
		return "tcp-rst"
	case p.TCP != nil:
		return "tcp"
	}
	return "reply"
}
