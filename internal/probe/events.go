package probe

import (
	"fmt"
	"strings"

	"tracenet/internal/ipv4"
	"tracenet/internal/wire"
)

// ErrKind classifies how a probe exchange failed to produce a usable reply —
// the distinction the old transcript log collapsed into a raw err string.
// Timeouts are ordinary measurement outcomes (silent-by-design address
// space accumulates them); transport and decode failures are fault evidence.
type ErrKind uint8

const (
	// ErrNone: the exchange produced a decodable reply.
	ErrNone ErrKind = iota
	// ErrTimeout: the network stayed silent within the timeout window.
	ErrTimeout
	// ErrTransportFault: the Transport itself failed (socket error, netsim
	// refusing an injection) — the condition ErrTransport wraps.
	ErrTransportFault
	// ErrDecode: a reply arrived but did not parse (mangled datagram).
	ErrDecode
)

func (k ErrKind) String() string {
	switch k {
	case ErrNone:
		return "none"
	case ErrTimeout:
		return "timeout"
	case ErrTransportFault:
		return "transport"
	case ErrDecode:
		return "decode"
	}
	return fmt.Sprintf("errkind(%d)", uint8(k))
}

// ProbeEvent is one probe exchange on tracenet's telemetry event stream: the
// decoded request, the classified outcome, and — when a reply arrived — the
// responder's address, the reply datagram's remaining TTL, and its IP
// identifier. The flight recorder retains these, LoggingTransport renders
// them live, and golden tests replay them.
type ProbeEvent struct {
	Ticks    uint64
	Proto    string
	Dst      ipv4.Addr
	TTL      uint8
	Err      ErrKind
	Outcome  string // reply classification; "" when Err != ErrNone
	From     ipv4.Addr
	ReplyTTL uint8
	IPID     uint16
	// RawLen is the undecodable payload size for ErrDecode events.
	RawLen int
}

// String renders the event as the one-line transcript form:
//
//	icmp 10.0.5.2 ttl=3 -> ttl-exceeded from 10.0.2.1 rttl=61 ipid=3063
func (e ProbeEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %v ttl=%d -> ", e.Proto, e.Dst, e.TTL)
	switch e.Err {
	case ErrTimeout:
		b.WriteString("timeout")
	case ErrTransportFault:
		b.WriteString("error: transport")
	case ErrDecode:
		fmt.Fprintf(&b, "error: decode(%d bytes)", e.RawLen)
	default:
		fmt.Fprintf(&b, "%s from %v rttl=%d ipid=%d", e.Outcome, e.From, e.ReplyTTL, e.IPID)
	}
	return b.String()
}

// exchangeEvent builds the event for one raw exchange, classifying the error
// kind and, for decodable replies, the reply type. It works from wire bytes
// alone (no prober state), so LoggingTransport and the prober share it.
func exchangeEvent(ticks uint64, raw, reply []byte, err error) ProbeEvent {
	ev := ProbeEvent{Ticks: ticks, Proto: "?"}
	if pkt, derr := wire.Decode(raw); derr == nil {
		ev.Dst = pkt.IP.Dst
		ev.TTL = pkt.IP.TTL
		switch {
		case pkt.ICMP != nil:
			ev.Proto = "icmp"
		case pkt.UDP != nil:
			ev.Proto = "udp"
		case pkt.TCP != nil:
			ev.Proto = "tcp"
		}
	}
	switch {
	case err != nil:
		ev.Err = ErrTransportFault
	case reply == nil:
		ev.Err = ErrTimeout
	default:
		p, derr := wire.Decode(reply)
		if derr != nil {
			ev.Err = ErrDecode
			ev.RawLen = len(reply)
			return ev
		}
		ev.From = p.IP.Src
		ev.ReplyTTL = p.IP.TTL
		ev.IPID = p.IP.ID
		ev.Outcome = replyName(p)
	}
	return ev
}

// replyName classifies a decoded reply packet by its wire type.
func replyName(p *wire.Packet) string {
	switch {
	case p.ICMP != nil && p.ICMP.Type == wire.ICMPEchoReply:
		return "echo-reply"
	case p.ICMP != nil && p.ICMP.Type == wire.ICMPTimeExceeded:
		return "ttl-exceeded"
	case p.ICMP != nil && p.ICMP.Type == wire.ICMPDestUnreach && p.ICMP.Code == wire.CodePortUnreach:
		return "port-unreachable"
	case p.ICMP != nil && p.ICMP.Type == wire.ICMPDestUnreach:
		return fmt.Sprintf("unreachable(code %d)", p.ICMP.Code)
	case p.TCP != nil && p.TCP.Flags&wire.TCPFlagRST != 0:
		return "tcp-rst"
	case p.TCP != nil:
		return "tcp"
	}
	return "reply"
}
