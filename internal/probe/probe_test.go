package probe

import (
	"errors"
	"strings"
	"testing"

	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/topo"
	"tracenet/internal/wire"
)

func addr(s string) ipv4.Addr { return ipv4.MustParseAddr(s) }

func newProber(t *testing.T, cfg netsim.Config, opts Options) (*Prober, *netsim.Network) {
	t.Helper()
	n := netsim.New(topo.Figure3(), cfg)
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	return New(port, port.LocalAddr(), opts), n
}

func TestDirectProbeAlive(t *testing.T) {
	p, _ := newProber(t, netsim.Config{}, Options{})
	res, err := p.Direct(addr("10.0.2.3"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Alive() || res.Kind != EchoReply || res.From != addr("10.0.2.3") {
		t.Fatalf("res = %+v", res)
	}
}

func TestDirectProbeDeadAddress(t *testing.T) {
	p, _ := newProber(t, netsim.Config{}, Options{})
	res, err := p.Direct(addr("10.0.2.200"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent() {
		t.Fatalf("res = %+v", res)
	}
}

func TestIndirectProbeTTLExceeded(t *testing.T) {
	p, _ := newProber(t, netsim.Config{}, Options{})
	res, err := p.Probe(addr("10.0.5.2"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Expired() || res.From != addr("10.0.1.1") {
		t.Fatalf("res = %+v", res)
	}
}

func TestProbeTTLValidation(t *testing.T) {
	p, _ := newProber(t, netsim.Config{}, Options{})
	if _, err := p.Probe(addr("10.0.5.2"), 0); err == nil {
		t.Fatal("ttl 0 accepted")
	}
	if _, err := p.Probe(addr("10.0.5.2"), 256); err == nil {
		t.Fatal("ttl 256 accepted")
	}
}

func TestUDPProbing(t *testing.T) {
	p, _ := newProber(t, netsim.Config{}, Options{Protocol: UDP})
	res, err := p.Direct(addr("10.0.2.2"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != PortUnreachable || !res.Alive() {
		t.Fatalf("res = %+v", res)
	}
	res, err = p.Probe(addr("10.0.5.2"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Expired() {
		t.Fatalf("udp indirect res = %+v", res)
	}
}

func TestTCPProbing(t *testing.T) {
	p, _ := newProber(t, netsim.Config{}, Options{Protocol: TCP})
	res, err := p.Direct(addr("10.0.2.2"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != TCPReset || !res.Alive() {
		t.Fatalf("res = %+v", res)
	}
}

func TestRetryOnSilence(t *testing.T) {
	// A 70%-loss network: a single-shot prober misses often, a retrying
	// prober much less. With seed 1 we just verify retry accounting.
	p, _ := newProber(t, netsim.Config{LossRate: 0.7, Seed: 1}, Options{Retries: 3})
	var alive int
	for i := 0; i < 50; i++ {
		res, err := p.Direct(addr("10.0.2.3"))
		if err != nil {
			t.Fatal(err)
		}
		if res.Alive() {
			alive++
		}
	}
	st := p.Stats()
	if st.Retries == 0 {
		t.Fatal("no retries recorded under 70% loss")
	}
	// Four attempts under 70% loss succeed with p ≈ 0.76; a single shot only
	// 0.30. Anything above 30/50 demonstrates the retries are working.
	if alive < 30 {
		t.Fatalf("retrying prober succeeded only %d/50 under 70%% loss", alive)
	}
}

func TestNoRetry(t *testing.T) {
	p, _ := newProber(t, netsim.Config{LossRate: 1, Seed: 1}, Options{NoRetry: true})
	if _, err := p.Direct(addr("10.0.2.3")); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Sent != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want exactly one packet", st)
	}
}

func TestBudgetEnforced(t *testing.T) {
	p, _ := newProber(t, netsim.Config{}, Options{Budget: 3, NoRetry: true})
	for i := 0; i < 3; i++ {
		if _, err := p.Direct(addr("10.0.2.3")); err != nil {
			t.Fatal(err)
		}
	}
	_, err := p.Direct(addr("10.0.2.3"))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestCacheSavesProbes(t *testing.T) {
	p, n := newProber(t, netsim.Config{}, Options{Cache: true})
	for i := 0; i < 5; i++ {
		if _, err := p.Probe(addr("10.0.5.2"), 2); err != nil {
			t.Fatal(err)
		}
	}
	if n.Probes != 1 {
		t.Fatalf("network saw %d probes, want 1 (cached)", n.Probes)
	}
	if st := p.Stats(); st.Cached != 4 {
		t.Fatalf("cached = %d, want 4", st.Cached)
	}
}

func TestCacheDistinguishesTTL(t *testing.T) {
	p, n := newProber(t, netsim.Config{}, Options{Cache: true})
	if _, err := p.Probe(addr("10.0.5.2"), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Probe(addr("10.0.5.2"), 3); err != nil {
		t.Fatal(err)
	}
	if n.Probes != 2 {
		t.Fatalf("network saw %d probes, want 2", n.Probes)
	}
}

func TestStatsAccounting(t *testing.T) {
	p, _ := newProber(t, netsim.Config{}, Options{NoRetry: true})
	_, _ = p.Direct(addr("10.0.2.3"))   // answered
	_, _ = p.Direct(addr("10.0.2.200")) // silent
	st := p.Stats()
	if st.Sent != 2 || st.Answered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKindAndProtocolStrings(t *testing.T) {
	kinds := map[Kind]string{
		None: "none", EchoReply: "echo-reply", TTLExceeded: "ttl-exceeded",
		PortUnreachable: "port-unreachable", HostUnreachable: "host-unreachable",
		TCPReset: "tcp-reset",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("kind %d = %q", k, k.String())
		}
	}
	protos := map[Protocol]string{ICMP: "icmp", UDP: "udp", TCP: "tcp"}
	for p, want := range protos {
		if p.String() != want {
			t.Errorf("protocol %d = %q", p, p.String())
		}
	}
}

// TestSeqSurvivesUint16Wrap pins the sequence-counter widening: the prober's
// send counter is 32-bit, and with VaryFlow the flow window's phase rotates
// each time the low 16 bits lap, so the (flow, seq16) identifier pair a probe
// carries does not repeat after 65k sends. The old uint16 counter wrapped to
// an identical pair one lap later, risking replies of a stale probe being
// associated with a fresh one on long re-scan sessions.
func TestSeqSurvivesUint16Wrap(t *testing.T) {
	capture := func(p *Prober, seq uint32) (flow, seq16 uint16) {
		t.Helper()
		var raw []byte
		p.tr = staticTransport{reply: func(b []byte) []byte {
			raw = append([]byte(nil), b...)
			return nil
		}}
		p.exApp = nil // route through Exchange so the capture sees the bytes
		p.seq = seq
		if _, err := p.Probe(addr("10.0.2.3"), 7); err != nil {
			t.Fatal(err)
		}
		pkt, err := wire.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		return pkt.ICMP.ID, pkt.ICMP.Seq
	}

	p, _ := newProber(t, netsim.Config{}, Options{Protocol: ICMP, VaryFlow: true, NoRetry: true})
	const base = 1<<16 - 2
	flowA, seqA := capture(p, base)
	if got := p.seq; got != base+1 {
		t.Fatalf("seq after send = %d, want %d (wrapped?)", got, base+1)
	}
	flowB, seqB := capture(p, base+1<<16) // same low 16 bits, one lap later
	if seqA != seqB {
		t.Fatalf("low 16 bits differ across laps: %d vs %d", seqA, seqB)
	}
	if flowA == flowB {
		t.Fatalf("flow %d repeated one lap later: (flow, seq16) pair not unique across a 16-bit wrap", flowA)
	}
}

// staticTransport replays canned responses for classifier edge cases.
type staticTransport struct {
	reply func(raw []byte) []byte
}

func (s staticTransport) Exchange(raw []byte) ([]byte, error) {
	if s.reply == nil {
		return nil, nil
	}
	r := s.reply(raw)
	return r, nil
}

func TestClassifierRejectsForeignEcho(t *testing.T) {
	src := addr("10.0.0.1")
	dst := addr("10.0.2.3")
	tr := staticTransport{reply: func(raw []byte) []byte {
		// An echo reply with the wrong ID must be ignored.
		rep := &wire.Packet{
			IP:   wire.IPHeader{TTL: 64, Src: dst, Dst: src},
			ICMP: &wire.ICMP{Type: wire.ICMPEchoReply, ID: 0x9999, Seq: 1},
		}
		out, _ := rep.Encode()
		return out
	}}
	p := New(tr, src, Options{NoRetry: true})
	res, err := p.Direct(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent() {
		t.Fatalf("foreign echo accepted: %+v", res)
	}
}

func TestClassifierRejectsForeignQuote(t *testing.T) {
	src := addr("10.0.0.1")
	dst := addr("10.0.2.3")
	other := addr("172.16.0.9")
	tr := staticTransport{reply: func(raw []byte) []byte {
		// A time-exceeded quoting some other probe must be ignored.
		foreign := wire.NewEchoRequest(src, other, 9, 1, 1)
		rawForeign, _ := foreign.Encode()
		rep := wire.NewICMPError(addr("10.0.1.1"), wire.ICMPTimeExceeded, 0, rawForeign)
		out, _ := rep.Encode()
		return out
	}}
	p := New(tr, src, Options{NoRetry: true})
	res, err := p.Probe(dst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent() {
		t.Fatalf("foreign quote accepted: %+v", res)
	}
}

func TestClassifierToleratesGarbageReply(t *testing.T) {
	tr := staticTransport{reply: func([]byte) []byte { return []byte{1, 2, 3} }}
	p := New(tr, addr("10.0.0.1"), Options{NoRetry: true})
	res, err := p.Direct(addr("10.0.2.3"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent() {
		t.Fatalf("garbage reply classified: %+v", res)
	}
}

func TestRecordRouteStampsReturned(t *testing.T) {
	p, _ := newProber(t, netsim.Config{}, Options{RecordRoute: true})
	// A direct probe four hops deep accumulates three forwarding stamps.
	res, err := p.Direct(addr("10.0.5.2"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Alive() {
		t.Fatalf("res = %+v", res)
	}
	if len(res.Recorded) != 3 {
		t.Fatalf("recorded = %v, want 3 forwarding stamps", res.Recorded)
	}
	// An indirect probe's error quote carries the stamps up to the expiry.
	res, err = p.Probe(addr("10.0.5.2"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Expired() || len(res.Recorded) != 2 {
		t.Fatalf("indirect recorded = %v (kind %v), want 2 stamps", res.Recorded, res.Kind)
	}
}

func TestNoRecordRouteNoStamps(t *testing.T) {
	p, _ := newProber(t, netsim.Config{}, Options{})
	res, err := p.Direct(addr("10.0.5.2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recorded) != 0 {
		t.Fatalf("stamps without the RR option: %v", res.Recorded)
	}
}

func TestIPIDCountersPerRouter(t *testing.T) {
	p, _ := newProber(t, netsim.Config{}, Options{})
	// Consecutive probes answered by one router yield increasing IDs.
	r1, err := p.Direct(addr("10.0.2.3"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Direct(addr("10.0.4.0")) // same router R4
	if err != nil {
		t.Fatal(err)
	}
	if d := r2.IPID - r1.IPID; d == 0 || d > 8 {
		t.Fatalf("same-router IDs not from one counter: %d then %d", r1.IPID, r2.IPID)
	}
	// A different router answers from a far-away counter base.
	r3, err := p.Direct(addr("10.0.2.2")) // R3
	if err != nil {
		t.Fatal(err)
	}
	if d := r3.IPID - r2.IPID; d < 16 && r2.IPID-r3.IPID < 16 {
		t.Fatalf("different routers share a counter region: %d vs %d", r2.IPID, r3.IPID)
	}
}

func TestLoggingTransport(t *testing.T) {
	n := netsim.New(topo.Figure3(), netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	p := New(LoggingTransport{Inner: port, W: &buf}, port.LocalAddr(), Options{NoRetry: true})
	if _, err := p.Direct(addr("10.0.2.3")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Probe(addr("10.0.5.2"), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Direct(addr("10.0.2.200")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"icmp 10.0.2.3 ttl=64", "echo-reply from 10.0.2.3",
		"ttl-exceeded from 10.0.1.1", "timeout"} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript lacks %q:\n%s", want, out)
		}
	}
}
