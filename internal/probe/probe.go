// Package probe implements the two probing primitives tracenet is built on
// (paper §3.1): direct probing — a large-TTL packet testing whether an
// address is alive — and indirect probing — a small-TTL packet soliciting an
// ICMP time-exceeded from the router at that distance. Probes can be carried
// over ICMP, UDP, or TCP, and silent probes are retried once by default
// (paper §3.8: "we re-probe an IP address if we do not get a response for the
// first probe").
//
// The prober talks to the network through the Transport interface, which the
// simulated substrate (internal/netsim) implements; a raw-socket transport
// would satisfy the same contract on a live network.
package probe

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"

	"tracenet/internal/ipv4"
	"tracenet/internal/telemetry"
	"tracenet/internal/wire"
)

// Transport carries one encoded probe to the network and returns the encoded
// reply, or (nil, nil) when the network stays silent (timeout).
type Transport interface {
	Exchange(raw []byte) ([]byte, error)
}

// ExchangeAppender is optionally implemented by Transports that can write the
// reply into a caller-supplied buffer: the reply is appended to dst (normally
// dst[:0] of a reused buffer) and the extended slice returned, or (nil, nil)
// on silence. The prober owns the buffer, so steady-state exchanges allocate
// nothing — and because each prober brings its own buffer, one shared
// transport port can serve concurrent probers without a shared reply slot.
type ExchangeAppender interface {
	ExchangeAppend(raw, dst []byte) ([]byte, error)
}

// Waiter is optionally implemented by Transports whose notion of time can
// advance without sending a packet. The prober's exponential backoff calls
// Wait between retries; the simulated substrate advances its virtual clock
// (letting rate-limit buckets refill), and a raw-socket transport would
// sleep. Transports without Wait simply retry immediately.
type Waiter interface {
	Wait(ticks uint64)
}

// Protocol selects the probe carrier.
type Protocol uint8

const (
	ICMP Protocol = iota
	UDP
	TCP
)

func (p Protocol) String() string {
	switch p {
	case ICMP:
		return "icmp"
	case UDP:
		return "udp"
	case TCP:
		return "tcp"
	}
	return fmt.Sprintf("protocol(%d)", uint8(p))
}

// Kind classifies the outcome of a probe.
type Kind uint8

const (
	// None: no response within the timeout (after retries).
	None Kind = iota
	// EchoReply: ICMP echo reply — the probed address is alive.
	EchoReply
	// TTLExceeded: ICMP time exceeded from an intermediate router.
	TTLExceeded
	// PortUnreachable: ICMP port unreachable — a live UDP-probed endpoint.
	PortUnreachable
	// HostUnreachable: ICMP host/net unreachable from the last router.
	HostUnreachable
	// TCPReset: TCP RST — a live TCP-probed endpoint.
	TCPReset
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case EchoReply:
		return "echo-reply"
	case TTLExceeded:
		return "ttl-exceeded"
	case PortUnreachable:
		return "port-unreachable"
	case HostUnreachable:
		return "host-unreachable"
	case TCPReset:
		return "tcp-reset"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Result is the outcome of one logical probe (including retries).
type Result struct {
	Kind Kind
	// From is the source address of the reply; Zero when silent.
	From ipv4.Addr
	// Recorded holds the record-route stamps carried back by the reply (an
	// echoed option, or the quoted header of an ICMP error) when the prober
	// runs with Options.RecordRoute. The stamps are the outgoing interfaces
	// of the compliant routers the probe traversed, in path order.
	Recorded []ipv4.Addr
	// IPID is the IP identifier of the reply datagram. Routers that share
	// one IP-ID counter across interfaces expose their identity through it
	// (the Ally alias-resolution signal).
	IPID uint16
}

// Alive reports whether the result proves the probed address is in use: for
// ICMP probing an echo reply, for UDP a port unreachable, for TCP a reset.
func (r Result) Alive() bool {
	return r.Kind == EchoReply || r.Kind == PortUnreachable || r.Kind == TCPReset
}

// Expired reports whether the probe died at an intermediate router.
func (r Result) Expired() bool { return r.Kind == TTLExceeded }

// Silent reports whether nothing came back.
func (r Result) Silent() bool { return r.Kind == None }

// Stats accumulates probe accounting across a prober's lifetime; tracenet's
// probing-overhead model (paper §3.6) is validated against these counters.
type Stats struct {
	Sent     uint64 // packets put on the wire, including retries
	Answered uint64 // packets that drew any response
	Retries  uint64 // additional packets sent after silence
	Cached   uint64 // logical probes served from the response cache

	// Resilience accounting (fault injection & graceful degradation).
	Timeouts     uint64 // logical probes still silent after all retries
	Corrupt      uint64 // replies that failed to decode (mangled datagrams)
	BreakerOpens uint64 // circuit-breaker open (or re-open) transitions
	BreakerSkips uint64 // logical probes skipped because a breaker was open
	BackoffTicks uint64 // virtual ticks spent waiting between retries
	PacerTicks   uint64 // virtual ticks spent waiting on the rate pacer
}

// FaultEvents returns the number of definite fault observations: mangled
// replies plus breaker activity. Unlike Timeouts — which silent-by-design
// addresses (unassigned space, firewalled subnets) also accumulate — these
// only occur under network pathologies or active load shedding, so the
// session layer uses them to flag degraded subnets.
func (s Stats) FaultEvents() uint64 {
	return s.Corrupt + s.BreakerSkips
}

// Sub returns the component-wise difference s - base. It underpins Scope:
// two snapshots of a monotonically-growing Stats bracket a phase of work,
// and their difference is that phase's accounting.
func (s Stats) Sub(base Stats) Stats {
	return Stats{
		Sent:         s.Sent - base.Sent,
		Answered:     s.Answered - base.Answered,
		Retries:      s.Retries - base.Retries,
		Cached:       s.Cached - base.Cached,
		Timeouts:     s.Timeouts - base.Timeouts,
		Corrupt:      s.Corrupt - base.Corrupt,
		BreakerOpens: s.BreakerOpens - base.BreakerOpens,
		BreakerSkips: s.BreakerSkips - base.BreakerSkips,
		BackoffTicks: s.BackoffTicks - base.BackoffTicks,
		PacerTicks:   s.PacerTicks - base.PacerTicks,
	}
}

// Scope brackets a phase of probing for attribution: open one before the
// phase, and Delta reports the stats the prober accumulated since. It
// replaces ad-hoc `before := pr.Stats().Sent` snapshot arithmetic at call
// sites, and is what the session layer feeds into span-scoped counters.
type Scope struct {
	pr   *Prober
	base Stats
}

// Scope opens an accounting scope at the prober's current totals.
func (p *Prober) Scope() Scope { return Scope{pr: p, base: p.stats} }

// Delta returns the stats accumulated since the scope was opened.
func (s Scope) Delta() Stats { return s.pr.stats.Sub(s.base) }

// CountInto adds the scope's delta to a span's scoped counters (probes sent,
// answered, retries, cached, fault events). Nil-safe: a nil span discards.
func (s Scope) CountInto(sp *telemetry.Span) {
	d := s.Delta()
	sp.Count("probes_sent", d.Sent)
	sp.Count("answered", d.Answered)
	sp.Count("retries", d.Retries)
	sp.Count("cached", d.Cached)
	sp.Count("fault_events", d.FaultEvents())
}

// ErrBudgetExceeded is returned once a prober exhausts its probe budget.
var ErrBudgetExceeded = errors.New("probe: budget exceeded")

// ErrTransport wraps every error the underlying Transport returns, so the
// session layer can distinguish a faulty network (recoverable: treat the
// probe as silent and degrade) from programming errors and budget
// exhaustion (not recoverable).
var ErrTransport = errors.New("probe: transport")

// RetryPolicy is the consolidated retry configuration: how often a silent
// probe is re-sent and how long the prober backs off between attempts. It
// replaces the Options.Retries / Options.NoRetry pair, whose interplay was
// undocumented at call sites (NoRetry silently overrode Retries).
type RetryPolicy struct {
	// MaxRetries is how many times a silent logical probe is re-sent after
	// its first attempt. 0 disables retrying.
	MaxRetries int
	// BackoffBase is the wait, in transport ticks, before the first retry;
	// each further retry doubles it (exponential backoff). 0 disables
	// backoff: retries are immediate, the seed repository's §3.8 behaviour.
	BackoffBase uint64
	// BackoffMax caps the exponential growth (0 = uncapped).
	BackoffMax uint64
	// Jitter in [0,1) randomizes each wait by ±Jitter of its value, drawn
	// from a deterministic per-prober stream, decorrelating retry storms.
	Jitter float64
}

// Validate rejects out-of-range retry policies.
func (p RetryPolicy) Validate() error {
	if p.MaxRetries < 0 {
		return fmt.Errorf("probe: retry policy: MaxRetries %d < 0", p.MaxRetries)
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		return fmt.Errorf("probe: retry policy: Jitter %v outside [0,1)", p.Jitter)
	}
	if p.Jitter > 0 && p.BackoffBase == 0 {
		return fmt.Errorf("probe: retry policy: Jitter without BackoffBase")
	}
	return nil
}

// wait returns the backoff before retry attempt (0-based), jittered by rng.
func (p RetryPolicy) wait(attempt int, rng *rand.Rand) uint64 {
	if p.BackoffBase == 0 {
		return 0
	}
	w := p.BackoffBase
	for i := 0; i < attempt && (p.BackoffMax == 0 || w < p.BackoffMax); i++ {
		w <<= 1
	}
	if p.BackoffMax > 0 && w > p.BackoffMax {
		w = p.BackoffMax
	}
	if p.Jitter > 0 {
		d := int64(p.Jitter * float64(w) * (2*rng.Float64() - 1))
		if d < 0 && uint64(-d) >= w {
			return 1
		}
		w = uint64(int64(w) + d)
	}
	if w == 0 {
		w = 1
	}
	return w
}

// Options configure a Prober.
type Options struct {
	// Protocol selects ICMP (default), UDP, or TCP probes.
	Protocol Protocol
	// Retry is the consolidated retry policy. When nil, it is derived from
	// the legacy Retries/NoRetry fields (default: one immediate retry, the
	// paper's §3.8 behaviour). Setting Retry together with a non-zero
	// legacy field is a configuration error.
	Retry *RetryPolicy
	// Retries is how many times a silent probe is re-sent. Default 1.
	//
	// Deprecated: use Retry. Kept for existing call sites; NoRetry wins
	// over Retries when both are set (historical behaviour, now enforced
	// in exactly one place: Options.retryPolicy).
	Retries int
	// NoRetry disables retrying entirely (Retries is ignored).
	//
	// Deprecated: use Retry (a zero RetryPolicy disables retrying).
	NoRetry bool
	// FlowID seeds the ICMP identifier / source port. Probes with the same
	// FlowID hash to the same equal-cost path (Paris-style stability); a
	// prober holds it constant for its lifetime.
	FlowID uint16
	// VaryFlow makes every probe use a fresh flow identifier, reproducing
	// classic (non-Paris) traceroute behaviour under load balancing.
	VaryFlow bool
	// Budget caps the number of packets sent (0 = unlimited).
	Budget uint64
	// SharedBudget caps packets across a set of probers (a campaign's
	// workers); nil disables it. Checked before every wire send in addition
	// to the per-prober Budget — whichever trips first stops the prober with
	// ErrBudgetExceeded. The budget is reserved atomically, so concurrent
	// probers can never collectively overspend it.
	SharedBudget *SharedBudget
	// Pacer rate-limits wire sends: before every packet the prober reserves a
	// send slot and sleeps out the returned wait through the transport's
	// Waiter (advancing the virtual clock on the simulated substrate). The
	// daemon shares one pacer across every prober of a tenant, shaping the
	// tenant's aggregate rate; nil disables pacing. Cache hits and
	// breaker-skipped probes bypass it — they put nothing on the wire.
	Pacer Pacer
	// Activity, when set, is marked after every completed wire exchange — a
	// campaign shares one across its probers so the observability plane can
	// read live probe counts and detect stalls without locks (two atomic ops,
	// zero allocations on the hot path; nil disables it).
	Activity *Activity
	// Cache memoizes (destination, TTL) outcomes so repeated logical probes
	// cost no packets. tracenet's rule merging (§3.5: "both H3 and H6
	// require the same single probe") relies on this.
	Cache bool
	// RecordRoute sets the IP record-route option on every probe, the
	// DisCarte mechanism: compliant routers stamp their outgoing interface,
	// yielding a second address per hop for the first nine hops.
	RecordRoute bool
	// Breaker enables the per-zone circuit breaker (nil = disabled, the
	// paper's behaviour). See BreakerConfig.
	Breaker *BreakerConfig
	// Telemetry attaches the run's observability layer: every Stats
	// increment is mirrored into the metrics registry, each exchange becomes
	// a flight-recorder event and a "probe" trace slice, and a breaker
	// opening raises an incident. nil disables instrumentation; the prober
	// then pays only nil checks (see package telemetry).
	Telemetry *telemetry.Telemetry
}

// retryPolicy resolves the consolidated retry policy from the new Retry
// field and the two legacy knobs, validating the combination.
func (o Options) retryPolicy() (RetryPolicy, error) {
	if o.Retry != nil {
		if o.NoRetry || o.Retries != 0 {
			return RetryPolicy{}, errors.New(
				"probe: Options.Retry conflicts with legacy Retries/NoRetry; set only one")
		}
		return *o.Retry, o.Retry.Validate()
	}
	if o.NoRetry {
		return RetryPolicy{}, nil
	}
	r := o.Retries
	if r == 0 {
		r = 1
	}
	if r < 0 {
		return RetryPolicy{}, fmt.Errorf("probe: Options.Retries %d < 0", o.Retries)
	}
	return RetryPolicy{MaxRetries: r}, nil
}

// Prober issues direct and indirect probes through a Transport.
// It is not safe for concurrent use.
type Prober struct {
	tr   Transport
	src  ipv4.Addr
	opts Options

	retry  RetryPolicy
	waiter Waiter // tr's Wait hook, nil when unsupported
	jitter *rand.Rand
	br     *breaker

	// seq numbers every packet the prober ever sends. It is 32-bit — wide
	// enough that long re-scan sessions never silently wrap the probe
	// identifier space (a uint16 wrapped after 65k sends, and with VaryFlow
	// the repeated (ID, Seq) pairs risked reply mis-association).
	seq   uint32
	stats Stats
	cache map[cacheKey]Result

	// Per-probe scratch: the request packet, its transport layer, and the
	// encode buffer are rebuilt in place every exchange instead of being
	// reallocated. Nothing downstream retains them — netsim copies what it
	// keeps (the ipalias invariant) and classify only reads.
	req     wire.Packet
	reqICMP wire.ICMP
	reqUDP  wire.UDP
	reqTCP  wire.TCP
	encBuf  []byte

	// tmpl is the pre-marshaled probe packet, patched in place per send with
	// incremental checksum updates. nil when the probe shape precludes it
	// (RecordRoute options mutate en route), falling back to AppendEncode.
	tmpl *wire.Template
	// exApp is tr's ExchangeAppend hook (nil when unsupported) and replyBuf
	// the prober-owned reply buffer it fills.
	exApp    ExchangeAppender
	replyBuf []byte
	// dec is the reply decode scratch: each reply is decoded in place,
	// overwriting the previous one (nothing retains the decoded reply beyond
	// classify/observe).
	dec wire.DecodeScratch

	// Telemetry mirror of stats: handles are resolved once (SetTelemetry)
	// and nil-safe, so the disabled path costs one nil check per increment.
	// evBuf is the reused flight-recorder message buffer; dstMemo caches the
	// rendered destination (a trace probes one address many times in a row).
	evBuf         []byte
	dstMemo       string
	dstMemoAddr   ipv4.Addr
	tel           *telemetry.Telemetry
	cSent         *telemetry.Counter
	cAnswered     *telemetry.Counter
	cRetries      *telemetry.Counter
	cCached       *telemetry.Counter
	cTimeouts     *telemetry.Counter
	cCorrupt      *telemetry.Counter
	cBreakerOpens *telemetry.Counter
	cBreakerSkips *telemetry.Counter
	cBackoff      *telemetry.Counter
	cPacer        *telemetry.Counter
	hReplyTTL     *telemetry.Histogram
}

type cacheKey struct {
	dst ipv4.Addr
	ttl uint8
}

// DirectTTL is the "large enough TTL value" (paper §3.1(i)) used for direct
// probes.
const DirectTTL = 64

// New creates a prober sourcing probes from src. It panics on inconsistent
// Options (conflicting retry knobs, out-of-range retry or breaker policy) —
// these are programming errors at the call site, not runtime conditions.
func New(tr Transport, src ipv4.Addr, opts Options) *Prober {
	retry, err := opts.retryPolicy()
	if err != nil {
		panic(err)
	}
	if opts.FlowID == 0 {
		opts.FlowID = 0x7a7a
	}
	p := &Prober{tr: tr, src: src, opts: opts, retry: retry}
	if retry.BackoffBase > 0 || opts.Pacer != nil {
		// Backoff and pacing both wait through the transport's clock hook.
		p.waiter, _ = tr.(Waiter)
	}
	if retry.BackoffBase > 0 {
		// The jitter stream is seeded from the flow identifier so a rerun
		// with the same options backs off identically.
		p.jitter = rand.New(rand.NewSource(int64(opts.FlowID)*2654435761 + 1))
	}
	if opts.Breaker != nil {
		if err := opts.Breaker.Validate(); err != nil {
			panic(err)
		}
		p.br = newBreaker(*opts.Breaker)
	}
	if opts.Cache {
		p.cache = make(map[cacheKey]Result)
	}
	if !opts.RecordRoute {
		// Pre-marshal the probe once; per-send fields (TTL, seq, dst, ports)
		// are patched in place with incremental checksum updates. The
		// placeholder field values are overwritten by the first patch.
		var base *wire.Packet
		switch opts.Protocol {
		case ICMP:
			base = wire.NewEchoRequest(src, ipv4.Zero, 1, opts.FlowID, 0)
		case UDP:
			base = wire.NewUDPProbe(src, ipv4.Zero, 1, opts.FlowID, 33434)
		case TCP:
			base = wire.NewTCPProbe(src, ipv4.Zero, 1, opts.FlowID, 80, 0)
		}
		if base != nil {
			tmpl, err := wire.NewTemplate(base)
			if err != nil {
				panic(err) // unreachable: the base probe carries no options
			}
			p.tmpl = tmpl
		}
	}
	p.exApp, _ = tr.(ExchangeAppender)
	p.SetTelemetry(opts.Telemetry)
	return p
}

// ReplyTTLBuckets are the reply-TTL histogram bounds: common initial-TTL
// values sit at 32/64/128/255, so the distance consumed by the return path
// shows up as mass just below each bound.
var ReplyTTLBuckets = []uint64{16, 32, 48, 64, 96, 128, 192, 255}

// SetTelemetry attaches (or, with nil, detaches) a telemetry layer, resolving
// the prober's metric handles once so the hot path never touches the registry.
// Call it before probing starts; the prober is single-goroutine.
func (p *Prober) SetTelemetry(tel *telemetry.Telemetry) {
	p.tel = tel
	proto := p.opts.Protocol.String()
	p.cSent = tel.Counter("tracenet_probe_sent_total", "proto", proto)
	p.cAnswered = tel.Counter("tracenet_probe_answered_total", "proto", proto)
	p.cRetries = tel.Counter("tracenet_probe_retries_total", "proto", proto)
	p.cCached = tel.Counter("tracenet_probe_cached_total", "proto", proto)
	p.cTimeouts = tel.Counter("tracenet_probe_timeouts_total", "proto", proto)
	p.cCorrupt = tel.Counter("tracenet_probe_corrupt_total", "proto", proto)
	p.cBreakerOpens = tel.Counter("tracenet_probe_breaker_opens_total")
	p.cBreakerSkips = tel.Counter("tracenet_probe_breaker_skips_total")
	p.cBackoff = tel.Counter("tracenet_probe_backoff_ticks_total")
	p.cPacer = tel.Counter("tracenet_probe_pacer_wait_ticks_total")
	p.hReplyTTL = tel.Histogram("tracenet_probe_reply_ttl", ReplyTTLBuckets, "proto", proto)
}

// Telemetry returns the attached telemetry layer (nil when disabled), letting
// the layers above the prober — session, alias resolver — share one pipeline.
func (p *Prober) Telemetry() *telemetry.Telemetry { return p.tel }

// RetryPolicy returns the prober's resolved retry policy.
func (p *Prober) RetryPolicy() RetryPolicy { return p.retry }

// Src returns the prober's source address.
func (p *Prober) Src() ipv4.Addr { return p.src }

// Protocol returns the probe carrier protocol.
func (p *Prober) Protocol() Protocol { return p.opts.Protocol }

// Stats returns a snapshot of the probe accounting.
func (p *Prober) Stats() Stats { return p.stats }

// ClearCache empties the prober's response cache (a no-op when caching is
// disabled). The campaign layer clears it before every shared subnet
// exploration so an exploration's probe cost is a pure function of its hop
// context — independent of which worker happens to run it — which is what
// keeps parallel campaigns byte-deterministic. Stats are unaffected.
func (p *Prober) ClearCache() {
	if p.cache != nil {
		p.cache = make(map[cacheKey]Result)
	}
}

// Direct sends a direct probe (large TTL) testing whether dst is alive.
func (p *Prober) Direct(dst ipv4.Addr) (Result, error) {
	return p.Probe(dst, DirectTTL)
}

// Probe sends one logical probe to dst with the given TTL, retrying on
// silence, and classifies the response.
func (p *Prober) Probe(dst ipv4.Addr, ttl int) (Result, error) {
	return p.probe(dst, ttl, true)
}

// ProbeUncached is Probe bypassing the response cache in both directions: the
// cached outcome is ignored and the fresh outcome does not replace it. It is
// the cross-validation primitive of the adversarial defenses — a lying
// responder's first answer must not be able to vouch for itself, and the
// re-probe must not overwrite the evidence of what was originally observed.
func (p *Prober) ProbeUncached(dst ipv4.Addr, ttl int) (Result, error) {
	return p.probe(dst, ttl, false)
}

// probe is the per-probe engine behind Probe and ProbeUncached.
//
//tracenet:hotpath
func (p *Prober) probe(dst ipv4.Addr, ttl int, useCache bool) (Result, error) {
	if ttl < 1 || ttl > 255 {
		return Result{}, fmt.Errorf("probe: ttl %d out of range", ttl)
	}
	key := cacheKey{dst, uint8(ttl)}
	if useCache && p.cache != nil {
		if r, ok := p.cache[key]; ok {
			p.stats.Cached++
			p.cCached.Inc()
			return r, nil
		}
	}
	if p.br != nil && !p.br.allow(dst) {
		// The zone's breaker is open: answer locally with silence instead
		// of hammering a rate-limited or dead router. Skipped outcomes are
		// not cached, so the address gets a real probe once the breaker
		// half-opens.
		p.stats.BreakerSkips++
		p.cBreakerSkips.Inc()
		return Result{}, nil
	}
	var res Result
	for attempt := 0; ; attempt++ {
		if p.opts.Budget > 0 && p.stats.Sent >= p.opts.Budget {
			return Result{}, ErrBudgetExceeded
		}
		if !p.opts.SharedBudget.TrySpend(1) {
			return Result{}, ErrBudgetExceeded
		}
		if p.opts.Pacer != nil {
			// Budget first, pacer second: a refused packet must not burn a
			// rate slot, and a reserved slot is always followed by a send.
			if w := p.opts.Pacer.Reserve(p.tel.Ticks()); w > 0 {
				p.stats.PacerTicks += w
				p.cPacer.Add(w)
				if p.waiter != nil {
					p.waiter.Wait(w)
				}
			}
		}
		r, err := p.once(dst, uint8(ttl))
		if err != nil {
			return Result{}, err
		}
		res = r
		if !r.Silent() || attempt >= p.retry.MaxRetries {
			break
		}
		if w := p.retry.wait(attempt, p.jitter); w > 0 {
			p.stats.BackoffTicks += w
			p.cBackoff.Add(w)
			if p.waiter != nil {
				p.waiter.Wait(w)
			}
		}
		p.stats.Retries++
		p.cRetries.Inc()
	}
	if res.Silent() {
		p.stats.Timeouts++
		p.cTimeouts.Inc()
	}
	if p.br != nil && p.br.record(dst, !res.Silent()) {
		p.stats.BreakerOpens++
		p.cBreakerOpens.Inc()
		// A breaker opening is active load shedding — the degradation signal
		// the flight recorder exists for, so dump the probe history now.
		p.tel.Incident(fmt.Sprintf("breaker-open zone=%v/%d",
			p.br.key(dst), p.br.cfg.KeyBits))
	}
	if useCache && p.cache != nil {
		p.cache[key] = res
	}
	return res, nil
}

// once sends exactly one packet and classifies its reply.
//
//tracenet:hotpath
func (p *Prober) once(dst ipv4.Addr, ttl uint8) (Result, error) {
	p.seq++
	seq16 := uint16(p.seq)
	flow := p.opts.FlowID
	dstPort := uint16(33434) // classic traceroute's unused high-port range
	if p.opts.VaryFlow {
		// Epoch-rotated flow window: each probe draws a fresh flow identifier
		// from a 256-wide window anchored at FlowID, and the window's phase
		// rotates by one every time the 16-bit sequence laps. The bounded
		// window keeps flows from colliding with other probers' FlowID
		// ranges, and the rotation keeps (ID, Seq) pairs unique for 2^24
		// sends instead of repeating after 65k.
		off := uint16((p.seq + p.seq>>16) % 256)
		flow = p.opts.FlowID + off
		dstPort += off
	}
	// The request packet and its transport layer live in prober scratch:
	// mirrors of wire.NewEchoRequest/NewUDPProbe/NewTCPProbe built in place,
	// so the steady-state exchange allocates neither packet structs nor an
	// encode buffer. classify and observeExchange read this mirror; the wire
	// bytes come from the patched template (or AppendEncode when options are
	// carried).
	pkt := &p.req
	switch p.opts.Protocol {
	case ICMP:
		p.reqICMP = wire.ICMP{Type: wire.ICMPEchoRequest, ID: flow, Seq: seq16}
		p.req = wire.Packet{
			IP:   wire.IPHeader{TTL: ttl, Src: p.src, Dst: dst, ID: seq16},
			ICMP: &p.reqICMP,
		}
	case UDP:
		// The destination port doubles as the flow discriminator.
		p.reqUDP = wire.UDP{SrcPort: flow, DstPort: dstPort}
		p.req = wire.Packet{
			IP:  wire.IPHeader{TTL: ttl, Src: p.src, Dst: dst, ID: flow},
			UDP: &p.reqUDP,
		}
	case TCP:
		p.reqTCP = wire.TCP{SrcPort: flow, DstPort: 80, Seq: p.seq, Flags: wire.TCPFlagACK, Window: 1024}
		p.req = wire.Packet{
			IP:  wire.IPHeader{TTL: ttl, Src: p.src, Dst: dst, ID: flow},
			TCP: &p.reqTCP,
		}
	default:
		return Result{}, fmt.Errorf("probe: unknown protocol %v", p.opts.Protocol)
	}
	var raw []byte
	if p.tmpl != nil {
		switch p.opts.Protocol {
		case ICMP:
			p.tmpl.PatchICMPProbe(ttl, seq16, dst, flow, seq16)
		case UDP:
			p.tmpl.PatchUDPProbe(ttl, flow, dst, flow, dstPort)
		case TCP:
			p.tmpl.PatchTCPProbe(ttl, flow, dst, flow, p.seq)
		}
		raw = p.tmpl.Bytes()
	} else {
		if p.opts.RecordRoute {
			pkt.IP.Options = wire.MakeRecordRoute(wire.MaxRecordRouteSlots)
		}
		var err error
		raw, err = pkt.AppendEncode(p.encBuf[:0])
		if err != nil {
			return Result{}, err
		}
		p.encBuf = raw[:0]
	}
	p.stats.Sent++
	p.cSent.Inc()
	var start uint64
	if p.tel != nil {
		start = p.tel.Ticks()
	}
	var rawReply []byte
	var err error
	if p.exApp != nil {
		rawReply, err = p.exApp.ExchangeAppend(raw, p.replyBuf[:0])
		if rawReply != nil {
			p.replyBuf = rawReply[:0]
		}
	} else {
		rawReply, err = p.tr.Exchange(raw)
	}
	// Decode the reply exactly once, into prober-owned scratch; telemetry
	// observation reuses the decoded packet instead of re-decoding both
	// datagrams per exchange. Nothing retains it past this call.
	var reply *wire.Packet
	var derr error
	if err == nil && rawReply != nil {
		reply, derr = p.dec.DecodeInto(rawReply)
	}
	if p.tel != nil {
		p.observeExchange(start, pkt, reply, rawReply, err, derr)
	}
	if p.opts.Activity != nil {
		p.opts.Activity.MarkAt(p.tel.Ticks())
	}
	if err != nil {
		return Result{}, fmt.Errorf("%w: %w", ErrTransport, err)
	}
	if rawReply == nil {
		return Result{}, nil
	}
	if derr != nil {
		// A mangled reply is treated as silence, like a failed checksum on a
		// real socket — but counted, because corruption is definite fault
		// evidence that silence alone is not.
		p.stats.Corrupt++
		p.cCorrupt.Inc()
		return Result{}, nil
	}
	res := p.classify(pkt, reply, dst)
	if res.Kind != None {
		p.stats.Answered++
		p.cAnswered.Inc()
	}
	return res, nil
}

// observeExchange mirrors one raw exchange onto the telemetry pipeline: a
// flight-recorder entry, a "probe" trace slice, and the reply-TTL histogram.
// Only called when p.tel != nil, keeping the disabled path to one nil check.
// It works from the packets the exchange already decoded — re-decoding the
// request and reply here used to cost four heap allocations per telemetered
// probe.
func (p *Prober) observeExchange(start uint64, sent, reply *wire.Packet, rawReply []byte, err, derr error) {
	end := p.tel.Ticks()
	ev := probeEvent(end, sent, reply, rawReply, err, derr)
	outcome := ev.Outcome
	if ev.Err != ErrNone {
		outcome = ev.Err.String()
	}
	// Render the recorder line into prober-owned scratch (copied into
	// recorder-owned storage by RecordBytes) and memoize the destination
	// string — a trace probes one address many times in a row, so the
	// steady-state telemetry cost is a few appends, not a heap of formatting.
	p.evBuf = ev.AppendText(p.evBuf[:0])
	p.tel.RecordBytes("probe", p.evBuf)
	if ev.Dst != p.dstMemoAddr || p.dstMemo == "" {
		p.dstMemoAddr = ev.Dst
		p.dstMemo = ev.Dst.String()
	}
	p.tel.Complete("probe", start, end,
		"dst", p.dstMemo,
		"ttl", strconv.FormatUint(uint64(ev.TTL), 10),
		"outcome", outcome)
	if ev.Err == ErrNone {
		p.hReplyTTL.Observe(uint64(ev.ReplyTTL))
	}
}

// classify maps a decoded reply onto a Result, verifying it answers our probe
// (echo ID match, or embedded-quote destination match for ICMP errors).
func (p *Prober) classify(sent, reply *wire.Packet, dst ipv4.Addr) Result {
	switch {
	case reply.ICMP != nil && reply.ICMP.Type == wire.ICMPEchoReply:
		if sent.ICMP == nil || reply.ICMP.ID != sent.ICMP.ID || reply.ICMP.Seq != sent.ICMP.Seq {
			return Result{}
		}
		return Result{Kind: EchoReply, From: reply.IP.Src, Recorded: wire.RecordedRoute(reply.IP.Options), IPID: reply.IP.ID}
	case reply.ICMP != nil && reply.ICMP.IsError():
		orig, _, err := reply.ICMP.EmbeddedOriginal()
		if err != nil || orig.Dst != dst || orig.Src != p.src {
			return Result{}
		}
		// The quoted header carries the record-route stamps accumulated up
		// to the point where the error was generated.
		recorded := wire.RecordedRoute(orig.Options)
		switch {
		case reply.ICMP.Type == wire.ICMPTimeExceeded:
			return Result{Kind: TTLExceeded, From: reply.IP.Src, Recorded: recorded, IPID: reply.IP.ID}
		case reply.ICMP.Type == wire.ICMPDestUnreach && reply.ICMP.Code == wire.CodePortUnreach:
			return Result{Kind: PortUnreachable, From: reply.IP.Src, Recorded: recorded, IPID: reply.IP.ID}
		case reply.ICMP.Type == wire.ICMPDestUnreach:
			return Result{Kind: HostUnreachable, From: reply.IP.Src, Recorded: recorded, IPID: reply.IP.ID}
		}
		return Result{}
	case reply.TCP != nil && reply.TCP.Flags&wire.TCPFlagRST != 0:
		if sent.TCP == nil || reply.TCP.DstPort != sent.TCP.SrcPort {
			return Result{}
		}
		return Result{Kind: TCPReset, From: reply.IP.Src, IPID: reply.IP.ID}
	}
	return Result{}
}
