package netsim

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"tracenet/internal/ipv4"
	"tracenet/internal/wire"
)

func TestLiarRotatesSpoofedSources(t *testing.T) {
	honest := New(fig3(t), Config{})
	hp := mustPort(t, honest, "vantage")
	truth := echoAt(t, hp, addr("10.0.5.2"), 1, 1)
	if truth == nil {
		t.Fatal("clean network silent at TTL 1")
	}

	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	if err := n.InstallFaults(FaultPlan{Seed: 9, Faults: []Fault{
		{Kind: FaultLiar, Prob: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	sources := map[ipv4.Addr]bool{}
	for i := 0; i < 12; i++ {
		r := echoAt(t, p, addr("10.0.5.2"), 1, uint16(i))
		if r == nil {
			t.Fatal("liar went silent; the fault lies, it does not drop")
		}
		sources[r.IP.Src] = true
	}
	if len(sources) < 2 {
		t.Errorf("liar at prob 1 never rotated: sources %v", sources)
	}
	spoofed := false
	for s := range sources {
		if s != truth.IP.Src {
			spoofed = true
		}
	}
	if !spoofed {
		t.Errorf("every spoofed source equals the honest one %v", truth.IP.Src)
	}
	if fs := n.FaultStats(); fs.LiarSpoofs != 12 {
		t.Errorf("LiarSpoofs = %d, want 12", fs.LiarSpoofs)
	}
}

func TestAliasConfuseCollapsesSources(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	shared := addr("10.0.3.0") // R2's iface on T, nowhere near R1's honest reply
	if err := n.InstallFaults(FaultPlan{Faults: []Fault{
		{Kind: FaultAliasConfuse, Addr: "10.0.3.0"},
	}}); err != nil {
		t.Fatal(err)
	}
	// Distinct hops all answer from the one shared source.
	for ttl := uint8(1); ttl <= 3; ttl++ {
		r := echoAt(t, p, addr("10.0.5.2"), ttl, uint16(ttl))
		if r == nil {
			t.Fatalf("TTL %d silent under alias-confuse", ttl)
		}
		if r.IP.Src != shared {
			t.Errorf("TTL %d reply from %v, want shared %v", ttl, r.IP.Src, shared)
		}
	}
	if fs := n.FaultStats(); fs.AliasShares != 3 {
		t.Errorf("AliasShares = %d, want 3", fs.AliasShares)
	}
}

func TestAliasConfuseDefaultsToLowestIface(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	if err := n.InstallFaults(FaultPlan{Faults: []Fault{
		{Kind: FaultAliasConfuse},
	}}); err != nil {
		t.Fatal(err)
	}
	r := echoAt(t, p, addr("10.0.5.2"), 2, 1)
	if r == nil {
		t.Fatal("silent under alias-confuse")
	}
	// 10.0.0.2 is R1's access iface — the lowest non-host interface address
	// in figure 3.
	if want := addr("10.0.0.2"); r.IP.Src != want {
		t.Errorf("default shared source %v, want lowest iface %v", r.IP.Src, want)
	}
}

func TestHiddenHopForwardsTransparently(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	if err := n.InstallFaults(FaultPlan{Faults: []Fault{
		{Kind: FaultHiddenHop, Router: "R2"},
	}}); err != nil {
		t.Fatal(err)
	}
	// R1 still answers; R2's position reads as a gap.
	if r := echoAt(t, p, addr("10.0.5.2"), 1, 1); r == nil {
		t.Fatal("R1 silent though only R2 is hidden")
	}
	if r := echoAt(t, p, addr("10.0.5.2"), 2, 2); r != nil {
		t.Fatalf("hidden R2 answered: %+v", r)
	}
	// Unlike a blackhole, traffic THROUGH the hidden hop still flows: the
	// hop after it answers, and the destination is reachable.
	if r := echoAt(t, p, addr("10.0.5.2"), 3, 3); r == nil {
		t.Fatal("hop past the hidden router silent; hidden is not blackhole")
	}
	r := echoAt(t, p, addr("10.0.5.2"), 8, 4)
	if r == nil || r.IP.Src != addr("10.0.5.2") {
		t.Fatalf("destination unreachable through hidden hop: %+v", r)
	}
	if fs := n.FaultStats(); fs.HiddenDrops == 0 {
		t.Error("no hidden drops recorded")
	}
}

func TestEchoMirrorsProbedAddress(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	if err := n.InstallFaults(FaultPlan{Seed: 2, Faults: []Fault{
		{Kind: FaultEcho, Prob: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	// A TTL that should expire mid-path instead fabricates "destination
	// reached" — the phantom-host mint.
	r := echoAt(t, p, addr("10.0.5.2"), 1, 1)
	if r == nil {
		t.Fatal("echo responder silent")
	}
	if r.IP.Src != addr("10.0.5.2") || r.ICMP == nil || r.ICMP.Type != wire.ICMPEchoReply {
		t.Fatalf("mid-path echo reply = %+v, want fabricated echo reply from the destination", r)
	}
	// Even an unassigned address springs to life: the router that would
	// have stayed silent mirrors it back.
	ghost := addr("10.0.2.77")
	r = echoAt(t, p, ghost, 8, 2)
	if r == nil {
		t.Fatal("echo responder stayed honest for an unassigned address")
	}
	if r.IP.Src != ghost {
		t.Fatalf("ghost reply from %v, want mirrored %v", r.IP.Src, ghost)
	}
	if fs := n.FaultStats(); fs.EchoMirrors != 2 {
		t.Errorf("EchoMirrors = %d, want 2", fs.EchoMirrors)
	}
}

func TestByzantineStats(t *testing.T) {
	fs := FaultStats{LiarSpoofs: 1, AliasShares: 2, HiddenDrops: 3, EchoMirrors: 4, Corrupted: 10}
	if got := fs.Byzantine(); got != 10 {
		t.Errorf("Byzantine() = %d, want 10", got)
	}
	if got := fs.Total(); got != 20 {
		t.Errorf("Total() = %d, want 20", got)
	}
	for _, k := range []FaultKind{FaultLiar, FaultAliasConfuse, FaultHiddenHop, FaultEcho} {
		if !k.Adversarial() {
			t.Errorf("%v not adversarial", k)
		}
	}
	for _, k := range []FaultKind{FaultLinkFlap, FaultBlackhole, FaultCorrupt, FaultChurn} {
		if k.Adversarial() {
			t.Errorf("%v adversarial", k)
		}
	}
}

func TestUnknownFaultKindNamedError(t *testing.T) {
	var f Fault
	err := json.Unmarshal([]byte(`{"kind": "gremlin"}`), &f)
	if !errors.Is(err, ErrUnknownFaultKind) {
		t.Errorf("decode err = %v, want ErrUnknownFaultKind", err)
	}
	plan := FaultPlan{Faults: []Fault{{Kind: FaultKind(99)}}}
	if err := plan.Validate(); !errors.Is(err, ErrUnknownFaultKind) {
		t.Errorf("validate err = %v, want ErrUnknownFaultKind", err)
	}
}

func TestAdversarialPlanValidation(t *testing.T) {
	for name, plan := range map[string]FaultPlan{
		"liar prob zero":  {Faults: []Fault{{Kind: FaultLiar}}},
		"echo prob big":   {Faults: []Fault{{Kind: FaultEcho, Prob: 1.5}}},
		"alias bad addr":  {Faults: []Fault{{Kind: FaultAliasConfuse, Addr: "not-an-ip"}}},
		"hidden bad addr": {Faults: []Fault{{Kind: FaultHiddenHop, Router: "R99"}}},
	} {
		if name == "hidden bad addr" {
			// Scope errors surface at install time, not validation.
			n := New(fig3(t), Config{})
			if err := n.InstallFaults(plan); err == nil {
				t.Errorf("%s: installed", name)
			}
			continue
		}
		if err := plan.Validate(); err == nil {
			t.Errorf("%s: plan validated", name)
		}
	}
	good := FaultPlan{Seed: 1, Faults: []Fault{
		{Kind: FaultLiar, Prob: 0.5},
		{Kind: FaultAliasConfuse, Addr: "10.0.3.0"},
		{Kind: FaultAliasConfuse},
		{Kind: FaultHiddenHop, Router: "R2"},
		{Kind: FaultEcho, Prob: 1},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("good adversarial plan rejected: %v", err)
	}
}

func TestRandomAdversarialPlanDeterministic(t *testing.T) {
	topo := fig3(t)
	a, b := RandomAdversarialPlan(topo, 7), RandomAdversarialPlan(topo, 7)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed adversarial plans differ:\n%+v\n%+v", a, b)
	}
	if reflect.DeepEqual(a, RandomAdversarialPlan(topo, 8)) {
		t.Error("different seeds produced identical adversarial plans")
	}
	for seed := int64(1); seed <= 20; seed++ {
		plan := RandomAdversarialPlan(topo, seed)
		if err := plan.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(plan.Faults) == 0 {
			t.Fatalf("seed %d: empty plan", seed)
		}
		for _, f := range plan.Faults {
			if !f.Kind.Adversarial() {
				t.Fatalf("seed %d: non-adversarial kind %v", seed, f.Kind)
			}
		}
		n := New(fig3(t), Config{Seed: seed})
		if err := n.InstallFaults(plan); err != nil {
			t.Fatalf("seed %d: install: %v", seed, err)
		}
	}
}
