// Package netsim simulates the network-layer behaviour of an IPv4 internet
// at exactly the granularity tracenet observes: routers with multiple
// addressed interfaces, subnets connecting them, TTL-scoped forwarding, and
// the five router response configurations the paper enumerates in §3.1(iii)
// (nil, probed, incoming, shortest-path, and default interface).
//
// The simulator substitutes for the live Internet the paper measured. A probe
// is injected as encoded wire bytes at a vantage host, walked hop by hop
// through the router graph with standard TTL semantics, and answered (or not)
// according to the visited router's response configuration, protocol
// responsiveness, firewalls, rate limits, and loss. Equal-cost multipath and
// per-packet load balancing reproduce the path-fluctuation dynamics of §3.7.
package netsim

import (
	"fmt"
	"sort"
	"sync/atomic"

	"tracenet/internal/ipv4"
)

// Iface is a single addressed interface: it belongs to exactly one router and
// sits on exactly one subnet.
type Iface struct {
	Addr   ipv4.Addr
	Router *Router
	Subnet *Subnet

	// Responsive gates direct probes to this address. Clearing it models the
	// paper's "partially unresponsive subnet": a mixture of responsive and
	// unresponsive interfaces on one LAN.
	Responsive bool
}

func (i *Iface) String() string {
	if i == nil {
		return "<nil iface>"
	}
	return fmt.Sprintf("%s@%s", i.Addr, i.Router.Name)
}

// ResponsePolicy selects which interface address a router reports as the
// source of its replies (paper §3.1(iii), "Router Response Configuration").
type ResponsePolicy uint8

const (
	// PolicyNil: the router never responds.
	PolicyNil ResponsePolicy = iota
	// PolicyProbed: respond with the probed interface's address. The usual
	// configuration for direct probes; impossible for indirect probes.
	PolicyProbed
	// PolicyIncoming: respond with the address of the interface through which
	// the probe entered the router.
	PolicyIncoming
	// PolicyShortestPath: respond with the address of the interface on the
	// shortest path from the router back to the probe originator.
	PolicyShortestPath
	// PolicyDefault: respond with a pre-designated default address.
	PolicyDefault
)

func (p ResponsePolicy) String() string {
	switch p {
	case PolicyNil:
		return "nil"
	case PolicyProbed:
		return "probed"
	case PolicyIncoming:
		return "incoming"
	case PolicyShortestPath:
		return "shortest-path"
	case PolicyDefault:
		return "default"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ProtoMask is a set of probe protocols a router responds to.
type ProtoMask uint8

const (
	ProtoMaskICMP ProtoMask = 1 << iota
	ProtoMaskUDP
	ProtoMaskTCP
	ProtoMaskAll = ProtoMaskICMP | ProtoMaskUDP | ProtoMaskTCP
)

// Has reports whether the mask admits the given IP protocol number.
func (m ProtoMask) Has(ipProto uint8) bool {
	switch ipProto {
	case 1:
		return m&ProtoMaskICMP != 0
	case 17:
		return m&ProtoMaskUDP != 0
	case 6:
		return m&ProtoMaskTCP != 0
	}
	return false
}

// Router is a forwarding node. Hosts (vantage points, probe targets that are
// end systems) are modelled as single-interface routers with IsHost set; a
// host never forwards because it has only one attachment.
type Router struct {
	Name   string
	Ifaces []*Iface
	IsHost bool

	// DirectPolicy answers direct probes (destined to one of our addresses);
	// IndirectPolicy answers TTL expiry. DefaultIface backs PolicyDefault.
	DirectPolicy   ResponsePolicy
	IndirectPolicy ResponsePolicy
	DefaultIface   *Iface

	// DirectProtos / IndirectProtos gate responsiveness per probe protocol,
	// reproducing the paper's Table 3 observation that routers answer ICMP
	// far more readily than UDP, and UDP more readily than TCP.
	DirectProtos   ProtoMask
	IndirectProtos ProtoMask

	// EmitUnreachable makes the router send ICMP host/net-unreachable for
	// undeliverable destinations instead of staying silent.
	EmitUnreachable bool

	// RRCompliant makes the router honor the IP record-route option,
	// stamping its outgoing interface as it forwards (RFC 791; the DisCarte
	// baseline relies on compliant routers).
	RRCompliant bool

	// RateLimit optionally throttles all replies this router generates.
	RateLimit *TokenBucket

	// ReplyLoss is the probability in [0,1) that any individual reply from
	// this router is dropped — load-dependent responsiveness, the paper's
	// §4.2 explanation for cross-vantage disagreement ("routers or ISPs
	// regulate their responsiveness to probes based on the traffic load").
	// Draws come from the Network's seeded stream, so two campaigns with
	// different seeds observe different subsets of this router's replies.
	ReplyLoss float64

	// IPIDRandom makes the router draw reply IP identifiers from the
	// network's random stream instead of its shared per-router counter.
	// Counter-based routers are what Ally-style alias resolution relies on;
	// random-ID routers defeat it (a known coverage limitation).
	IPIDRandom bool

	idx   int
	edges []edge
	// ipid is the router's shared IP-ID counter, widened to uint32 so it can
	// be advanced atomically (the lock-free injection path increments it from
	// concurrent probers); replies carry its low 16 bits.
	ipid uint32
}

// nextIPID returns the router's next IP identifier. Replies from all of a
// router's interfaces share one counter — the signal the Ally technique uses
// to group interfaces into routers. Atomic: concurrent probers interleave
// draws but the per-router sequence stays strictly increasing (mod 2^16).
func (r *Router) nextIPID() uint16 {
	return uint16(atomic.AddUint32(&r.ipid, 1))
}

// edge is a usable adjacency: a neighbouring router reachable across one
// subnet, together with the interfaces on both ends.
type edge struct {
	to     *Router
	via    *Subnet
	local  *Iface
	remote *Iface
}

// IfaceWithAddr returns the router's interface carrying addr, or nil.
func (r *Router) IfaceWithAddr(addr ipv4.Addr) *Iface {
	for _, i := range r.Ifaces {
		if i.Addr == addr {
			return i
		}
	}
	return nil
}

// IfaceOn returns the router's interface on subnet s, or nil.
func (r *Router) IfaceOn(s *Subnet) *Iface {
	for _, i := range r.Ifaces {
		if i.Subnet == s {
			return i
		}
	}
	return nil
}

// Addr returns the router's (first) address; convenient for hosts.
func (r *Router) Addr() ipv4.Addr {
	if len(r.Ifaces) == 0 {
		return ipv4.Zero
	}
	return r.Ifaces[0].Addr
}

// Subnet is a LAN (point-to-point link or multi-access segment) identified by
// its CIDR prefix, hosting the interfaces directly connected to it.
type Subnet struct {
	Prefix ipv4.Prefix
	Ifaces []*Iface

	// Unresponsive models a firewall in front of the subnet that silently
	// drops every probe destined into the subnet's address range (the paper's
	// "totally unresponsive subnet").
	Unresponsive bool

	idx int
}

// IsPointToPoint reports whether the subnet is a /31 or /30 point-to-point
// link, the paper's distinction between p2p and multi-access LANs.
func (s *Subnet) IsPointToPoint() bool { return s.Prefix.Bits() >= 30 }

// HostAttached reports whether any interface on the subnet belongs to a host
// (vantage point or end system) rather than a router.
func (s *Subnet) HostAttached() bool {
	for _, i := range s.Ifaces {
		if i.Router.IsHost {
			return true
		}
	}
	return false
}

// MemberAddrs returns the subnet's assigned interface addresses in ascending
// order — the ground-truth membership the evaluation layer scores collected
// subnets against.
func (s *Subnet) MemberAddrs() []ipv4.Addr {
	out := make([]ipv4.Addr, 0, len(s.Ifaces))
	for _, i := range s.Ifaces {
		out = append(out, i.Addr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *Subnet) String() string { return s.Prefix.String() }

// Topology is the static router-and-subnet graph plus its address indexes.
// Build one with a Builder; a built topology is immutable and safe for
// concurrent readers.
type Topology struct {
	Routers []*Router
	Subnets []*Subnet
	Hosts   []*Router // subset of Routers with IsHost set

	ifaceByAddr  map[ipv4.Addr]*Iface
	subnetByBits map[int]map[ipv4.Prefix]*Subnet
	prefixLens   []int // descending, for longest-prefix match
	hostByName   map[string]*Router
}

// IfaceByAddr returns the interface assigned addr, or nil if unassigned.
func (t *Topology) IfaceByAddr(addr ipv4.Addr) *Iface { return t.ifaceByAddr[addr] }

// SubnetContaining performs longest-prefix match of addr against all subnets.
func (t *Topology) SubnetContaining(addr ipv4.Addr) *Subnet {
	for _, bits := range t.prefixLens {
		if s, ok := t.subnetByBits[bits][ipv4.NewPrefix(addr, bits)]; ok {
			return s
		}
	}
	return nil
}

// SubnetByPrefix returns the subnet with exactly the given prefix, or nil.
func (t *Topology) SubnetByPrefix(p ipv4.Prefix) *Subnet {
	return t.subnetByBits[p.Bits()][p]
}

// HostByName returns the named host, or nil.
func (t *Topology) HostByName(name string) *Router { return t.hostByName[name] }

// CoreSubnets returns the subnets of the topology excluding host access
// subnets (those with a host attached); these are the ground truth the
// evaluation compares collected subnets against.
func (t *Topology) CoreSubnets() []*Subnet {
	var out []*Subnet
	for _, s := range t.Subnets {
		if !s.HostAttached() {
			out = append(out, s)
		}
	}
	return out
}

// buildIndexes populates the lookup maps and adjacency lists. Called once by
// the Builder after validation.
func (t *Topology) buildIndexes() {
	t.ifaceByAddr = make(map[ipv4.Addr]*Iface)
	t.subnetByBits = make(map[int]map[ipv4.Prefix]*Subnet)
	t.hostByName = make(map[string]*Router)
	for idx, r := range t.Routers {
		r.idx = idx
		if r.IsHost {
			t.hostByName[r.Name] = r
		}
		for _, i := range r.Ifaces {
			t.ifaceByAddr[i.Addr] = i
		}
	}
	lens := map[int]bool{}
	for idx, s := range t.Subnets {
		s.idx = idx
		bits := s.Prefix.Bits()
		if t.subnetByBits[bits] == nil {
			t.subnetByBits[bits] = make(map[ipv4.Prefix]*Subnet)
		}
		t.subnetByBits[bits][s.Prefix] = s
		lens[bits] = true
	}
	t.prefixLens = t.prefixLens[:0]
	for b := range lens {
		t.prefixLens = append(t.prefixLens, b)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(t.prefixLens)))

	// Adjacency: every pair of distinct routers sharing a subnet is an edge,
	// one edge per (subnet, interface pair).
	for _, r := range t.Routers {
		r.edges = r.edges[:0]
	}
	for _, s := range t.Subnets {
		for _, a := range s.Ifaces {
			for _, b := range s.Ifaces {
				if a.Router == b.Router {
					continue
				}
				a.Router.edges = append(a.Router.edges, edge{
					to: b.Router, via: s, local: a, remote: b,
				})
			}
		}
	}
}
