package netsim

import (
	"strings"
	"testing"

	"tracenet/internal/telemetry"
	"tracenet/internal/wire"
)

func telemetryNetwork(t *testing.T, cfg Config) (*Network, *Port, *telemetry.Telemetry) {
	t.Helper()
	n := New(fig3(t), cfg)
	tel := telemetry.New(n)
	tel.Recorder = telemetry.NewFlightRecorder(telemetry.DefaultFlightRecorderSize)
	n.SetTelemetry(tel)
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	return n, port, tel
}

func exchangeEcho(t *testing.T, port *Port, dst string, ttl uint8) []byte {
	t.Helper()
	pkt := wire.NewEchoRequest(port.LocalAddr(), addr(dst), ttl, 0x7a7a, 1)
	raw, err := pkt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	reply, err := port.Exchange(raw)
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

func TestNetworkTelemetryCounters(t *testing.T) {
	n, port, tel := telemetryNetwork(t, Config{})
	exchangeEcho(t, port, "10.0.2.3", 64)   // answered
	exchangeEcho(t, port, "10.0.2.200", 64) // silent (unassigned)
	probes, replies := n.Counters()
	if got := tel.Counter("tracenet_netsim_probes_total").Value(); got != probes {
		t.Errorf("probes counter = %d, want %d", got, probes)
	}
	if got := tel.Counter("tracenet_netsim_replies_total").Value(); got != replies {
		t.Errorf("replies counter = %d, want %d", got, replies)
	}
	if probes != 2 || replies != 1 {
		t.Fatalf("unexpected engine counters: probes=%d replies=%d", probes, replies)
	}
	if got := tel.Gauge("tracenet_netsim_clock_ticks").Value(); uint64(got) != n.Ticks() {
		t.Errorf("clock gauge = %d, want %d", got, n.Ticks())
	}
	port.Wait(5)
	if got := tel.Gauge("tracenet_netsim_clock_ticks").Value(); uint64(got) != n.Ticks() {
		t.Errorf("clock gauge after Wait = %d, want %d", got, n.Ticks())
	}
}

func TestNetworkTicksIsVirtualClock(t *testing.T) {
	n, port, _ := telemetryNetwork(t, Config{})
	before := n.Ticks()
	exchangeEcho(t, port, "10.0.2.3", 64)
	if n.Ticks() != before+1 {
		t.Errorf("Ticks after one injection = %d, want %d", n.Ticks(), before+1)
	}
	port.Wait(7)
	if n.Ticks() != before+8 {
		t.Errorf("Ticks after Wait(7) = %d, want %d", n.Ticks(), before+8)
	}
}

func TestFaultEventsReachTelemetry(t *testing.T) {
	n, port, tel := telemetryNetwork(t, Config{})
	if err := n.InstallFaults(FaultPlan{Faults: []Fault{
		{Kind: FaultCorrupt, Prob: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	reply := exchangeEcho(t, port, "10.0.2.3", 64)
	if reply == nil {
		t.Fatal("corrupt fault swallowed the reply entirely")
	}
	if n.FaultStats().Corrupted == 0 {
		t.Fatal("fault plan inflicted nothing; telemetry path not exercised")
	}
	if got := tel.Counter("tracenet_netsim_fault_events_total", "kind", "corrupt").Value(); got != n.FaultStats().Corrupted {
		t.Errorf("corrupt fault counter = %d, want %d", got, n.FaultStats().Corrupted)
	}
	snap := tel.Recorder.Snapshot()
	if len(snap) == 0 {
		t.Fatal("fault left no flight-recorder event")
	}
	var found bool
	for _, ev := range snap {
		if ev.Kind == "fault" && strings.Contains(ev.Msg, "corrupted reply") {
			found = true
		}
	}
	if !found {
		t.Errorf("no corrupted-reply fault event in recorder: %v", snap)
	}
}

func TestBlackholeFaultRecorded(t *testing.T) {
	n, port, tel := telemetryNetwork(t, Config{})
	if err := n.InstallFaults(FaultPlan{Faults: []Fault{
		{Kind: FaultBlackhole, Router: "R1"},
	}}); err != nil {
		t.Fatal(err)
	}
	if reply := exchangeEcho(t, port, "10.0.5.2", 64); reply != nil {
		t.Fatal("blackholed path still answered")
	}
	if got := tel.Counter("tracenet_netsim_fault_events_total", "kind", "blackhole").Value(); got == 0 {
		t.Error("blackhole drop not counted")
	}
	snap := tel.Recorder.Snapshot()
	var found bool
	for _, ev := range snap {
		if ev.Kind == "fault" && strings.Contains(ev.Msg, "blackhole drop router=R1") {
			found = true
		}
	}
	if !found {
		t.Errorf("no blackhole fault event in recorder: %v", snap)
	}
}
