package netsim

import (
	"fmt"

	"tracenet/internal/ipv4"
)

// Builder assembles a Topology incrementally and validates it on Build.
// The zero value is not usable; call NewBuilder.
type Builder struct {
	topo    *Topology
	errs    []error
	ifaces  map[ipv4.Addr]*Iface
	subnets map[ipv4.Prefix]*Subnet
	names   map[string]bool
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder {
	return &Builder{
		topo:    &Topology{},
		ifaces:  make(map[ipv4.Addr]*Iface),
		subnets: make(map[ipv4.Prefix]*Subnet),
		names:   make(map[string]bool),
	}
}

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Router adds a forwarding router with default response configuration:
// probed-interface for direct probes, incoming-interface for indirect probes,
// responsive to all protocols.
func (b *Builder) Router(name string) *Router {
	if b.names[name] {
		b.errorf("netsim: duplicate node name %q", name)
	}
	b.names[name] = true
	r := &Router{
		Name:           name,
		DirectPolicy:   PolicyProbed,
		IndirectPolicy: PolicyIncoming,
		DirectProtos:   ProtoMaskAll,
		IndirectProtos: ProtoMaskAll,
		RRCompliant:    true,
	}
	b.topo.Routers = append(b.topo.Routers, r)
	return r
}

// Host adds an end system: a single-interface node that answers direct probes
// but never forwards. Attach it to exactly one subnet.
func (b *Builder) Host(name string) *Router {
	r := b.Router(name)
	r.IsHost = true
	b.topo.Hosts = append(b.topo.Hosts, r)
	return r
}

// Subnet declares a LAN with the given CIDR prefix.
func (b *Builder) Subnet(cidr string) *Subnet {
	p, err := ipv4.ParsePrefix(cidr)
	if err != nil {
		b.errorf("netsim: %v", err)
		p = ipv4.NewPrefix(0, 32)
	}
	return b.SubnetP(p)
}

// SubnetP declares a LAN with the given parsed prefix.
func (b *Builder) SubnetP(p ipv4.Prefix) *Subnet {
	if _, dup := b.subnets[p]; dup {
		b.errorf("netsim: duplicate subnet %v", p)
	}
	s := &Subnet{Prefix: p}
	b.subnets[p] = s
	b.topo.Subnets = append(b.topo.Subnets, s)
	return s
}

// Attach gives router r an interface with address addr on subnet s.
func (b *Builder) Attach(r *Router, s *Subnet, addr string) *Iface {
	a, err := ipv4.ParseAddr(addr)
	if err != nil {
		b.errorf("netsim: %v", err)
		return &Iface{Router: r, Subnet: s, Responsive: true}
	}
	return b.AttachA(r, s, a)
}

// AttachA gives router r an interface with the parsed address a on subnet s.
func (b *Builder) AttachA(r *Router, s *Subnet, a ipv4.Addr) *Iface {
	if !s.Prefix.Contains(a) {
		b.errorf("netsim: address %v outside subnet %v", a, s.Prefix)
	}
	if s.Prefix.IsBoundary(a) {
		b.errorf("netsim: address %v is a boundary address of %v", a, s.Prefix)
	}
	if _, dup := b.ifaces[a]; dup {
		b.errorf("netsim: duplicate address %v", a)
	}
	if r.IsHost && len(r.Ifaces) > 0 {
		b.errorf("netsim: host %s may have only one interface", r.Name)
	}
	if prev := r.IfaceOn(s); prev != nil {
		b.errorf("netsim: router %s already attached to %v", r.Name, s.Prefix)
	}
	i := &Iface{Addr: a, Router: r, Subnet: s, Responsive: true}
	b.ifaces[a] = i
	r.Ifaces = append(r.Ifaces, i)
	s.Ifaces = append(s.Ifaces, i)
	if r.DefaultIface == nil {
		r.DefaultIface = i
	}
	return i
}

// AttachNext attaches r to s using the lowest unassigned non-boundary address
// of the subnet, or records an error if the subnet is full.
func (b *Builder) AttachNext(r *Router, s *Subnet) *Iface {
	var free ipv4.Addr
	found := false
	s.Prefix.Addrs(func(a ipv4.Addr) bool {
		if s.Prefix.IsBoundary(a) {
			return true
		}
		if _, used := b.ifaces[a]; !used {
			free, found = a, true
			return false
		}
		return true
	})
	if !found {
		b.errorf("netsim: subnet %v full", s.Prefix)
		return &Iface{Router: r, Subnet: s, Responsive: true}
	}
	return b.AttachA(r, s, free)
}

// Build validates the assembled topology and returns it. All accumulated
// construction errors are reported together.
func (b *Builder) Build() (*Topology, error) {
	for _, r := range b.topo.Routers {
		if len(r.Ifaces) == 0 {
			b.errorf("netsim: node %s has no interfaces", r.Name)
		}
	}
	for _, s := range b.topo.Subnets {
		if len(s.Ifaces) == 0 {
			b.errorf("netsim: subnet %v has no interfaces", s.Prefix)
		}
	}
	for _, s := range b.topo.Subnets {
		for _, q := range b.topo.Subnets {
			if s != q && s.Prefix.Overlaps(q.Prefix) {
				b.errorf("netsim: overlapping subnets %v and %v", s.Prefix, q.Prefix)
			}
		}
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("netsim: invalid topology: %w (%d errors total)", b.errs[0], len(b.errs))
	}
	b.topo.buildIndexes()
	return b.topo, nil
}

// MustBuild is Build panicking on error, for fixtures and generators whose
// inputs are known valid.
func (b *Builder) MustBuild() *Topology {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
