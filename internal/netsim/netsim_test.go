package netsim

import (
	"testing"

	"tracenet/internal/ipv4"
	"tracenet/internal/wire"
)

// fig3 builds a topology shaped like the paper's Figure 3: a vantage host V
// behind R1, an ingress router R2, a multi-access subnet S hosting R2 (the
// contra-pivot side), R3, R4 and R6, a close-fringe /31 between R2 and R7, a
// far-fringe /31 between R4 and R5, and a destination host D behind R4.
//
//	V --A-- R1 --P1-- R2 ==S== {R3, R4, R6}
//	                  |T              |F     \DS
//	                  R7              R5      D
func fig3(t *testing.T) *Topology {
	t.Helper()
	b := NewBuilder()
	v := b.Host("vantage")
	r1 := b.Router("R1")
	r2 := b.Router("R2")
	r3 := b.Router("R3")
	r4 := b.Router("R4")
	r5 := b.Router("R5")
	r6 := b.Router("R6")
	r7 := b.Router("R7")
	d := b.Host("dest")

	a := b.Subnet("10.0.0.0/30")
	b.Attach(v, a, "10.0.0.1")
	b.Attach(r1, a, "10.0.0.2")

	p1 := b.Subnet("10.0.1.0/31")
	b.Attach(r1, p1, "10.0.1.0")
	b.Attach(r2, p1, "10.0.1.1")

	s := b.Subnet("10.0.2.0/24")
	b.Attach(r2, s, "10.0.2.1") // contra-pivot side
	b.Attach(r3, s, "10.0.2.2")
	b.Attach(r4, s, "10.0.2.3")
	b.Attach(r6, s, "10.0.2.4")

	tt := b.Subnet("10.0.3.0/31")
	b.Attach(r2, tt, "10.0.3.0")
	b.Attach(r7, tt, "10.0.3.1")

	f := b.Subnet("10.0.4.0/31")
	b.Attach(r4, f, "10.0.4.0")
	b.Attach(r5, f, "10.0.4.1")

	ds := b.Subnet("10.0.5.0/30")
	b.Attach(r4, ds, "10.0.5.1")
	b.Attach(d, ds, "10.0.5.2")

	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func mustPort(t *testing.T, n *Network, host string) *Port {
	t.Helper()
	p, err := n.PortFor(host)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// exchange sends one encoded probe and decodes the reply (nil for silence).
func exchange(t *testing.T, p *Port, pkt *wire.Packet) *wire.Packet {
	t.Helper()
	raw, err := pkt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rawReply, err := p.Exchange(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rawReply == nil {
		return nil
	}
	reply, err := wire.Decode(rawReply)
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

func addr(s string) ipv4.Addr { return ipv4.MustParseAddr(s) }

func TestDistances(t *testing.T) {
	n := New(fig3(t), Config{})
	cases := []struct {
		addr string
		want int
	}{
		{"10.0.0.1", 0},   // vantage itself
		{"10.0.0.2", 1},   // R1 access iface
		{"10.0.1.0", 1},   // R1 far iface: same router, same distance
		{"10.0.1.1", 2},   // R2
		{"10.0.2.1", 2},   // R2 contra-pivot iface on S
		{"10.0.3.0", 2},   // R2 iface on T
		{"10.0.2.2", 3},   // R3 on S
		{"10.0.2.3", 3},   // R4 on S
		{"10.0.2.4", 3},   // R6 on S
		{"10.0.3.1", 3},   // R7 close fringe
		{"10.0.4.0", 3},   // R4's far-fringe iface: same router as 10.0.2.3
		{"10.0.4.1", 4},   // R5
		{"10.0.5.2", 4},   // destination host
		{"10.0.2.77", -1}, // unassigned
	}
	for _, c := range cases {
		if got := n.DistanceTo("vantage", addr(c.addr)); got != c.want {
			t.Errorf("DistanceTo(%s) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestEchoReplyFromProbedIface(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	reply := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.2.3"), 8, 1, 1))
	if reply == nil || reply.ICMP == nil {
		t.Fatal("no reply")
	}
	if reply.ICMP.Type != wire.ICMPEchoReply {
		t.Fatalf("type = %d", reply.ICMP.Type)
	}
	if reply.IP.Src != addr("10.0.2.3") {
		t.Fatalf("probed-interface policy: reply from %v, want 10.0.2.3", reply.IP.Src)
	}
}

func TestTTLExceededIncomingPolicy(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	// TTL 2 toward the destination expires at R2; incoming interface is R2's
	// side of the R1-R2 link.
	reply := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.5.2"), 2, 1, 1))
	if reply == nil || reply.ICMP == nil || reply.ICMP.Type != wire.ICMPTimeExceeded {
		t.Fatalf("want time-exceeded, got %+v", reply)
	}
	if reply.IP.Src != addr("10.0.1.1") {
		t.Fatalf("incoming policy: reply from %v, want 10.0.1.1", reply.IP.Src)
	}
	// The embedded quote lets the prober match the reply to the probe.
	hdr, _, err := reply.ICMP.EmbeddedOriginal()
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Dst != addr("10.0.5.2") || hdr.Src != p.LocalAddr() {
		t.Fatalf("embedded quote = %+v", hdr)
	}
}

func TestTTLExceededShortestPathPolicy(t *testing.T) {
	topo := fig3(t)
	r4 := topo.Routers[4]
	if r4.Name != "R4" {
		t.Fatal("fixture order changed")
	}
	r4.IndirectPolicy = PolicyShortestPath
	n := New(topo, Config{})
	p := mustPort(t, n, "vantage")
	// TTL 3 toward destination expires at R4; shortest path back to the
	// vantage goes out R4's interface on S.
	reply := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.5.2"), 3, 1, 1))
	if reply == nil || reply.ICMP.Type != wire.ICMPTimeExceeded {
		t.Fatalf("want time-exceeded, got %+v", reply)
	}
	if reply.IP.Src != addr("10.0.2.3") {
		t.Fatalf("shortest-path policy: reply from %v, want 10.0.2.3", reply.IP.Src)
	}
}

func TestTTLExceededDefaultPolicy(t *testing.T) {
	topo := fig3(t)
	r4 := topo.Routers[4]
	r4.IndirectPolicy = PolicyDefault
	r4.DefaultIface = r4.IfaceWithAddr(addr("10.0.4.0"))
	n := New(topo, Config{})
	p := mustPort(t, n, "vantage")
	reply := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.5.2"), 3, 1, 1))
	if reply == nil || reply.IP.Src != addr("10.0.4.0") {
		t.Fatalf("default policy: got %+v", reply)
	}
}

func TestNilPolicyAnonymous(t *testing.T) {
	topo := fig3(t)
	topo.Routers[4].IndirectPolicy = PolicyNil
	n := New(topo, Config{})
	p := mustPort(t, n, "vantage")
	if reply := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.5.2"), 3, 1, 1)); reply != nil {
		t.Fatalf("nil policy must be silent, got %+v", reply)
	}
	// The hop beyond still answers: anonymity is per-router.
	if reply := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.5.2"), 4, 1, 1)); reply == nil {
		t.Fatal("destination must still reply")
	}
}

func TestUDPProbePortUnreachable(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	reply := exchange(t, p, wire.NewUDPProbe(p.LocalAddr(), addr("10.0.2.2"), 8, 40000, 33434))
	if reply == nil || reply.ICMP == nil {
		t.Fatal("no reply")
	}
	if reply.ICMP.Type != wire.ICMPDestUnreach || reply.ICMP.Code != wire.CodePortUnreach {
		t.Fatalf("want port-unreachable, got type=%d code=%d", reply.ICMP.Type, reply.ICMP.Code)
	}
}

func TestTCPProbeReset(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	reply := exchange(t, p, wire.NewTCPProbe(p.LocalAddr(), addr("10.0.2.2"), 8, 55000, 80, 77))
	if reply == nil || reply.TCP == nil {
		t.Fatal("no TCP reply")
	}
	if reply.TCP.Flags&wire.TCPFlagRST == 0 {
		t.Fatalf("want RST, flags=%#x", reply.TCP.Flags)
	}
	if reply.IP.Src != addr("10.0.2.2") {
		t.Fatalf("RST from %v, want probed address", reply.IP.Src)
	}
}

func TestProtocolMaskGatesReplies(t *testing.T) {
	topo := fig3(t)
	r2 := topo.Routers[2]
	if r2.Name != "R2" {
		t.Fatal("fixture order changed")
	}
	r2.IndirectProtos = ProtoMaskICMP // no UDP/TCP time-exceeded
	r2.DirectProtos = ProtoMaskICMP
	n := New(topo, Config{})
	p := mustPort(t, n, "vantage")
	if r := exchange(t, p, wire.NewUDPProbe(p.LocalAddr(), addr("10.0.5.2"), 2, 40000, 33434)); r != nil {
		t.Fatalf("UDP time-exceeded must be suppressed, got %+v", r)
	}
	if r := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.5.2"), 2, 1, 1)); r == nil {
		t.Fatal("ICMP time-exceeded must still work")
	}
	if r := exchange(t, p, wire.NewUDPProbe(p.LocalAddr(), addr("10.0.2.1"), 8, 40000, 33434)); r != nil {
		t.Fatalf("UDP direct reply must be suppressed, got %+v", r)
	}
}

func TestFirewalledSubnetSilent(t *testing.T) {
	topo := fig3(t)
	s := topo.SubnetByPrefix(ipv4.MustParsePrefix("10.0.2.0/24"))
	s.Unresponsive = true
	n := New(topo, Config{})
	p := mustPort(t, n, "vantage")
	// Every address in the range is dead, including the ingress router's own
	// interface on the subnet.
	for _, a := range []string{"10.0.2.1", "10.0.2.2", "10.0.2.3", "10.0.2.99"} {
		if r := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr(a), 8, 1, 1)); r != nil {
			t.Fatalf("probe to firewalled %s answered: %+v", a, r)
		}
	}
	// But transit through the subnet's routers is unaffected.
	if r := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.5.2"), 8, 1, 1)); r == nil {
		t.Fatal("destination behind firewalled subnet must still answer (route does not cross the firewall)")
	}
}

func TestUnassignedAddressSilentByDefault(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	if r := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.2.200"), 8, 1, 1)); r != nil {
		t.Fatalf("unassigned address answered: %+v", r)
	}
}

func TestUnassignedAddressHostUnreachable(t *testing.T) {
	topo := fig3(t)
	for _, r := range topo.Routers {
		r.EmitUnreachable = true
	}
	n := New(topo, Config{})
	p := mustPort(t, n, "vantage")
	r := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.2.200"), 8, 1, 1))
	if r == nil || r.ICMP == nil || r.ICMP.Type != wire.ICMPDestUnreach || r.ICMP.Code != wire.CodeHostUnreach {
		t.Fatalf("want host-unreachable, got %+v", r)
	}
}

func TestNoRouteSilent(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	if r := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("172.16.0.1"), 8, 1, 1)); r != nil {
		t.Fatalf("no-route probe answered: %+v", r)
	}
}

func TestUnresponsiveIface(t *testing.T) {
	topo := fig3(t)
	topo.IfaceByAddr(addr("10.0.2.2")).Responsive = false
	n := New(topo, Config{})
	p := mustPort(t, n, "vantage")
	if r := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.2.2"), 8, 1, 1)); r != nil {
		t.Fatalf("unresponsive interface answered: %+v", r)
	}
	// Its router still answers on other interfaces.
	if r := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.2.3"), 8, 1, 1)); r == nil {
		t.Fatal("responsive sibling must answer")
	}
}

func TestRateLimiting(t *testing.T) {
	topo := fig3(t)
	r3 := topo.Routers[3]
	if r3.Name != "R3" {
		t.Fatal("fixture order changed")
	}
	r3.RateLimit = NewTokenBucket(0, 2)
	n := New(topo, Config{})
	p := mustPort(t, n, "vantage")
	answered := 0
	for i := 0; i < 5; i++ {
		if r := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.2.2"), 8, 1, uint16(i))); r != nil {
			answered++
		}
	}
	if answered != 2 {
		t.Fatalf("rate-limited router answered %d probes, want 2 (burst)", answered)
	}
}

func TestTokenBucketRefill(t *testing.T) {
	tb := NewTokenBucket(0.5, 1)
	if !tb.Allow(0) {
		t.Fatal("bucket must start full")
	}
	if tb.Allow(0) {
		t.Fatal("bucket must be empty after burst")
	}
	if tb.Allow(1) {
		t.Fatal("half a token is not enough")
	}
	if !tb.Allow(3) {
		t.Fatal("bucket must refill over time")
	}
	var nilTB *TokenBucket
	if !nilTB.Allow(0) {
		t.Fatal("nil bucket must always allow")
	}
}

func TestLossDropsReplies(t *testing.T) {
	n := New(fig3(t), Config{LossRate: 1})
	p := mustPort(t, n, "vantage")
	if r := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.2.2"), 8, 1, 1)); r != nil {
		t.Fatalf("lossy network answered: %+v", r)
	}
	if n.Probes != 1 || n.Replies != 0 {
		t.Fatalf("counters probes=%d replies=%d", n.Probes, n.Replies)
	}
}

func TestSelfProbe(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	r := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), p.LocalAddr(), 1, 1, 1))
	if r == nil || r.ICMP.Type != wire.ICMPEchoReply {
		t.Fatalf("self probe: %+v", r)
	}
}

func TestWrongSourceRejected(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	pkt := wire.NewEchoRequest(addr("10.0.5.2"), addr("10.0.2.2"), 8, 1, 1)
	raw, _ := pkt.Encode()
	if _, err := p.Exchange(raw); err == nil {
		t.Fatal("spoofed source must be rejected")
	}
}

func TestPortForUnknownHost(t *testing.T) {
	n := New(fig3(t), Config{})
	if _, err := n.PortFor("nobody"); err == nil {
		t.Fatal("unknown host must error")
	}
}

// diamond builds two equal-cost paths between R1 and R3 for ECMP tests.
func diamond(t *testing.T) *Topology {
	t.Helper()
	b := NewBuilder()
	v := b.Host("vantage")
	r1 := b.Router("R1")
	r2a := b.Router("R2a")
	r2b := b.Router("R2b")
	r3 := b.Router("R3")
	d := b.Host("dest")

	a := b.Subnet("10.1.0.0/30")
	b.Attach(v, a, "10.1.0.1")
	b.Attach(r1, a, "10.1.0.2")

	up1 := b.Subnet("10.1.1.0/31")
	b.Attach(r1, up1, "10.1.1.0")
	b.Attach(r2a, up1, "10.1.1.1")
	up2 := b.Subnet("10.1.2.0/31")
	b.Attach(r1, up2, "10.1.2.0")
	b.Attach(r2b, up2, "10.1.2.1")

	dn1 := b.Subnet("10.1.3.0/31")
	b.Attach(r2a, dn1, "10.1.3.0")
	b.Attach(r3, dn1, "10.1.3.1")
	dn2 := b.Subnet("10.1.4.0/31")
	b.Attach(r2b, dn2, "10.1.4.0")
	b.Attach(r3, dn2, "10.1.4.1")

	ds := b.Subnet("10.1.5.0/30")
	b.Attach(r3, ds, "10.1.5.1")
	b.Attach(d, ds, "10.1.5.2")

	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// hopAt returns the responding address for a TTL-scoped probe with the given
// ICMP flow ID and sequence.
func hopAt(t *testing.T, p *Port, dst ipv4.Addr, ttl uint8, id, seq uint16) ipv4.Addr {
	t.Helper()
	r := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), dst, ttl, id, seq))
	if r == nil {
		return ipv4.Zero
	}
	return r.IP.Src
}

func TestECMPPerFlowStable(t *testing.T) {
	n := New(diamond(t), Config{Mode: PerFlow})
	p := mustPort(t, n, "vantage")
	dst := addr("10.1.5.2")
	first := hopAt(t, p, dst, 2, 7, 0)
	if first == ipv4.Zero {
		t.Fatal("no hop-2 reply")
	}
	for seq := uint16(1); seq < 20; seq++ {
		if got := hopAt(t, p, dst, 2, 7, seq); got != first {
			t.Fatalf("per-flow path changed at seq %d: %v vs %v", seq, got, first)
		}
	}
}

func TestECMPDifferentFlowsSpread(t *testing.T) {
	n := New(diamond(t), Config{Mode: PerFlow})
	p := mustPort(t, n, "vantage")
	dst := addr("10.1.5.2")
	seen := map[ipv4.Addr]bool{}
	for id := uint16(0); id < 64; id++ {
		seen[hopAt(t, p, dst, 2, id, 0)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 distinct flows all hashed to one path: %v", seen)
	}
}

func TestECMPPerPacketFluctuates(t *testing.T) {
	n := New(diamond(t), Config{Mode: PerPacket})
	p := mustPort(t, n, "vantage")
	dst := addr("10.1.5.2")
	seen := map[ipv4.Addr]bool{}
	for i := 0; i < 64; i++ {
		seen[hopAt(t, p, dst, 2, 7, 0)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("per-packet balancing never changed path: %v", seen)
	}
}

func TestBuilderValidation(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
	}{
		{"duplicate address", func(b *Builder) {
			r1, r2 := b.Router("a"), b.Router("b")
			s := b.Subnet("10.0.0.0/29")
			b.Attach(r1, s, "10.0.0.1")
			b.Attach(r2, s, "10.0.0.1")
		}},
		{"address outside subnet", func(b *Builder) {
			r := b.Router("a")
			s := b.Subnet("10.0.0.0/30")
			b.Attach(r, s, "10.0.1.1")
		}},
		{"boundary address", func(b *Builder) {
			r := b.Router("a")
			s := b.Subnet("10.0.0.0/29")
			b.Attach(r, s, "10.0.0.0")
		}},
		{"overlapping subnets", func(b *Builder) {
			r1, r2 := b.Router("a"), b.Router("b")
			s1 := b.Subnet("10.0.0.0/24")
			s2 := b.Subnet("10.0.0.0/25")
			b.Attach(r1, s1, "10.0.0.200")
			b.Attach(r2, s2, "10.0.0.1")
		}},
		{"host with two interfaces", func(b *Builder) {
			h := b.Host("h")
			s1 := b.Subnet("10.0.0.0/30")
			s2 := b.Subnet("10.0.1.0/30")
			b.Attach(h, s1, "10.0.0.1")
			b.Attach(h, s2, "10.0.1.1")
		}},
		{"empty subnet", func(b *Builder) {
			r := b.Router("a")
			s := b.Subnet("10.0.0.0/30")
			b.Attach(r, s, "10.0.0.1")
			b.Subnet("10.0.1.0/30")
		}},
		{"router without interfaces", func(b *Builder) {
			b.Router("a")
			r := b.Router("b")
			s := b.Subnet("10.0.0.0/30")
			b.Attach(r, s, "10.0.0.1")
		}},
		{"duplicate names", func(b *Builder) {
			r := b.Router("a")
			b.Router("a")
			s := b.Subnet("10.0.0.0/30")
			b.Attach(r, s, "10.0.0.1")
		}},
		{"double attach same subnet", func(b *Builder) {
			r := b.Router("a")
			s := b.Subnet("10.0.0.0/29")
			b.Attach(r, s, "10.0.0.1")
			b.Attach(r, s, "10.0.0.2")
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := NewBuilder()
			c.build(b)
			if _, err := b.Build(); err == nil {
				t.Fatalf("Build succeeded, want error")
			}
		})
	}
}

func TestAttachNext(t *testing.T) {
	b := NewBuilder()
	r1, r2, r3 := b.Router("a"), b.Router("b"), b.Router("c")
	s := b.Subnet("10.0.0.0/29")
	i1 := b.AttachNext(r1, s)
	i2 := b.AttachNext(r2, s)
	i3 := b.AttachNext(r3, s)
	if i1.Addr != addr("10.0.0.1") || i2.Addr != addr("10.0.0.2") || i3.Addr != addr("10.0.0.3") {
		t.Fatalf("AttachNext addresses: %v %v %v", i1.Addr, i2.Addr, i3.Addr)
	}
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachNextSkipsBoundary(t *testing.T) {
	b := NewBuilder()
	s := b.Subnet("10.0.0.0/30")
	r1, r2 := b.Router("a"), b.Router("b")
	if got := b.AttachNext(r1, s).Addr; got != addr("10.0.0.1") {
		t.Fatalf("first = %v", got)
	}
	if got := b.AttachNext(r2, s).Addr; got != addr("10.0.0.2") {
		t.Fatalf("second = %v", got)
	}
	r3 := b.Router("c")
	b.AttachNext(r3, s) // subnet full -> error at Build
	if _, err := b.Build(); err == nil {
		t.Fatal("overfull subnet must fail to build")
	}
}

func TestSubnetLookups(t *testing.T) {
	topo := fig3(t)
	if s := topo.SubnetContaining(addr("10.0.2.77")); s == nil || s.Prefix.Bits() != 24 {
		t.Fatalf("SubnetContaining = %v", s)
	}
	if s := topo.SubnetContaining(addr("192.168.0.1")); s != nil {
		t.Fatalf("SubnetContaining outside = %v", s)
	}
	if s := topo.SubnetByPrefix(ipv4.MustParsePrefix("10.0.4.0/31")); s == nil {
		t.Fatal("SubnetByPrefix missed")
	}
	core := topo.CoreSubnets()
	for _, s := range core {
		if s.Prefix == ipv4.MustParsePrefix("10.0.0.0/30") || s.Prefix == ipv4.MustParsePrefix("10.0.5.0/30") {
			t.Fatalf("host access subnet %v in core set", s.Prefix)
		}
	}
	if len(core) != 4 {
		t.Fatalf("core subnets = %d, want 4", len(core))
	}
}

func TestPointToPointClassification(t *testing.T) {
	topo := fig3(t)
	if !topo.SubnetByPrefix(ipv4.MustParsePrefix("10.0.4.0/31")).IsPointToPoint() {
		t.Error("/31 must be point-to-point")
	}
	if topo.SubnetByPrefix(ipv4.MustParsePrefix("10.0.2.0/24")).IsPointToPoint() {
		t.Error("/24 must not be point-to-point")
	}
}

func TestPolicyAndMaskStrings(t *testing.T) {
	for p, want := range map[ResponsePolicy]string{
		PolicyNil: "nil", PolicyProbed: "probed", PolicyIncoming: "incoming",
		PolicyShortestPath: "shortest-path", PolicyDefault: "default",
	} {
		if p.String() != want {
			t.Errorf("policy %d = %q, want %q", p, p.String(), want)
		}
	}
	if !ProtoMaskAll.Has(wire.ProtoICMP) || !ProtoMaskAll.Has(wire.ProtoUDP) || !ProtoMaskAll.Has(wire.ProtoTCP) {
		t.Error("ProtoMaskAll must admit all protocols")
	}
	if ProtoMaskICMP.Has(wire.ProtoUDP) || ProtoMaskAll.Has(99) {
		t.Error("mask admitted wrong protocol")
	}
}

func TestRecordRouteStamping(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	probePkt := wire.NewEchoRequest(p.LocalAddr(), addr("10.0.5.2"), 8, 1, 1)
	probePkt.IP.Options = wire.MakeRecordRoute(9)
	reply := exchange(t, p, probePkt)
	if reply == nil || reply.ICMP.Type != wire.ICMPEchoReply {
		t.Fatalf("reply = %+v", reply)
	}
	// R1, R2, and R4 forward; each stamps its outgoing interface.
	got := wire.RecordedRoute(reply.IP.Options)
	want := []ipv4.Addr{addr("10.0.1.0"), addr("10.0.2.1"), addr("10.0.5.1")}
	if len(got) != len(want) {
		t.Fatalf("stamps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stamp %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRecordRouteQuoteReflectsInFlightState(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	probePkt := wire.NewEchoRequest(p.LocalAddr(), addr("10.0.5.2"), 3, 1, 1)
	probePkt.IP.Options = wire.MakeRecordRoute(9)
	reply := exchange(t, p, probePkt)
	if reply == nil || reply.ICMP.Type != wire.ICMPTimeExceeded {
		t.Fatalf("reply = %+v", reply)
	}
	hdr, _, err := reply.ICMP.EmbeddedOriginal()
	if err != nil {
		t.Fatal(err)
	}
	got := wire.RecordedRoute(hdr.Options)
	// Expiry at R4 (hop 3): R1 and R2 stamped before that.
	if len(got) != 2 || got[0] != addr("10.0.1.0") || got[1] != addr("10.0.2.1") {
		t.Fatalf("quoted stamps = %v", got)
	}
	if hdr.TTL != 0 {
		t.Errorf("quoted TTL = %d, want the decremented 0", hdr.TTL)
	}
}

func TestNonCompliantRouterNoStamp(t *testing.T) {
	top := fig3(t)
	for _, r := range top.Routers {
		r.RRCompliant = false
	}
	n := New(top, Config{})
	p := mustPort(t, n, "vantage")
	probePkt := wire.NewEchoRequest(p.LocalAddr(), addr("10.0.5.2"), 8, 1, 1)
	probePkt.IP.Options = wire.MakeRecordRoute(9)
	reply := exchange(t, p, probePkt)
	if reply == nil {
		t.Fatal("no reply")
	}
	if got := wire.RecordedRoute(reply.IP.Options); len(got) != 0 {
		t.Fatalf("non-compliant network stamped: %v", got)
	}
}

func TestIPIDRandomMode(t *testing.T) {
	top := fig3(t)
	for _, r := range top.Routers {
		if r.Name == "R3" {
			r.IPIDRandom = true
		}
	}
	n := New(top, Config{})
	p := mustPort(t, n, "vantage")
	// Counter routers give consecutive IDs; the random router's sequence
	// must show large jumps somewhere within a handful of replies.
	var last uint16
	jumps := false
	for i := 0; i < 8; i++ {
		r := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.2.2"), 8, 1, uint16(i)))
		if r == nil {
			t.Fatal("no reply")
		}
		if i > 0 {
			if d := r.IP.ID - last; d > 1000 && last-r.IP.ID > 1000 {
				jumps = true
			}
		}
		last = r.IP.ID
	}
	if !jumps {
		t.Fatal("random-ID router produced a counter-like sequence")
	}
}

func TestBuilderBadInputsViaStrings(t *testing.T) {
	// String-based helpers record parse errors for Build to report.
	b := NewBuilder()
	r := b.Router("a")
	s := b.Subnet("not-a-prefix")
	b.Attach(r, s, "not-an-address")
	if _, err := b.Build(); err == nil {
		t.Fatal("builder accepted unparseable inputs")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild on an invalid topology did not panic")
		}
	}()
	b := NewBuilder()
	b.Router("lonely") // no interfaces: invalid
	b.MustBuild()
}

func TestPortHostAccessor(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	if p.Host() == nil || p.Host().Name != "vantage" {
		t.Fatalf("Host() = %+v", p.Host())
	}
	if p.Host().Addr() != addr("10.0.0.1") {
		t.Fatalf("Addr() = %v", p.Host().Addr())
	}
	var empty Router
	if !empty.Addr().IsZero() {
		t.Fatal("interface-less router has a non-zero address")
	}
}

func TestStringers(t *testing.T) {
	topo := fig3(t)
	i := topo.IfaceByAddr(addr("10.0.2.2"))
	if got := i.String(); got != "10.0.2.2@R3" {
		t.Fatalf("iface string = %q", got)
	}
	var nilIface *Iface
	if nilIface.String() != "<nil iface>" {
		t.Fatal("nil iface string wrong")
	}
	s := topo.SubnetByPrefix(ipv4.MustParsePrefix("10.0.2.0/24"))
	if s.String() != "10.0.2.0/24" {
		t.Fatalf("subnet string = %q", s.String())
	}
}

func TestUnreachablePolicyGates(t *testing.T) {
	// EmitUnreachable set, but the router's indirect protocols exclude UDP:
	// no unreachable for UDP probes.
	topo := fig3(t)
	for _, r := range topo.Routers {
		r.EmitUnreachable = true
		if r.Name == "R2" {
			r.IndirectProtos = ProtoMaskICMP
		}
	}
	n := New(topo, Config{})
	p := mustPort(t, n, "vantage")
	if r := exchange(t, p, wire.NewUDPProbe(p.LocalAddr(), addr("10.0.2.200"), 8, 40000, 33434)); r != nil {
		t.Fatalf("UDP unreachable must be suppressed by the protocol mask: %+v", r)
	}
	// ICMP probes still get the host-unreachable.
	if r := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.2.200"), 8, 1, 1)); r == nil {
		t.Fatal("ICMP host-unreachable missing")
	}
	// A nil indirect policy silences unreachables too.
	topo2 := fig3(t)
	for _, r := range topo2.Routers {
		r.EmitUnreachable = true
		if r.Name == "R2" {
			r.IndirectPolicy = PolicyNil
		}
	}
	n2 := New(topo2, Config{})
	p2 := mustPort(t, n2, "vantage")
	if r := exchange(t, p2, wire.NewEchoRequest(p2.LocalAddr(), addr("10.0.2.200"), 8, 1, 1)); r != nil {
		t.Fatalf("nil-policy unreachable leaked: %+v", r)
	}
}

func TestTTLExceededRateLimitGate(t *testing.T) {
	topo := fig3(t)
	for _, r := range topo.Routers {
		if r.Name == "R2" {
			r.RateLimit = NewTokenBucket(0, 1)
		}
	}
	n := New(topo, Config{})
	p := mustPort(t, n, "vantage")
	if r := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.5.2"), 2, 1, 1)); r == nil {
		t.Fatal("first time-exceeded should pass the burst")
	}
	if r := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.5.2"), 2, 1, 2)); r != nil {
		t.Fatalf("rate-limited time-exceeded leaked: %+v", r)
	}
}

func TestShortestPathIfaceFallbacks(t *testing.T) {
	topo := fig3(t)
	r4 := topo.Routers[4]
	r4.IndirectPolicy = PolicyShortestPath
	n := New(topo, Config{})
	p := mustPort(t, n, "vantage")
	// Probe from a source the responder has no route context for would fall
	// back to the default interface; the normal case is covered elsewhere —
	// here exercise the "attached to the source's subnet" branch by probing
	// from the destination host (R4 is attached to DS).
	pd, err := n.PortFor("dest")
	if err != nil {
		t.Fatal(err)
	}
	reply := exchange(t, pd, wire.NewEchoRequest(pd.LocalAddr(), addr("10.0.0.1"), 1, 1, 1))
	if reply == nil {
		t.Fatal("no reply")
	}
	// TTL 1 expires at R4, dest's first hop; the shortest path back to dest
	// is R4's own interface on the DS subnet.
	if reply.IP.Src != addr("10.0.5.1") {
		t.Fatalf("shortest-path reply from %v, want 10.0.5.1", reply.IP.Src)
	}
	_ = p
}

func TestUDPFlowKeySpreads(t *testing.T) {
	// flowKey covers UDP/TCP port pairs: two UDP flows with different ports
	// may take different diamond branches.
	n := New(diamond(t), Config{Mode: PerFlow})
	p := mustPort(t, n, "vantage")
	seen := map[ipv4.Addr]bool{}
	for port := uint16(33434); port < 33434+64; port++ {
		pkt := wire.NewUDPProbe(p.LocalAddr(), addr("10.1.5.2"), 2, 40000, port)
		r := exchange(t, p, pkt)
		if r != nil {
			seen[r.IP.Src] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("UDP flows all hashed to one branch: %v", seen)
	}
	// TCP flow key path.
	seenTCP := map[ipv4.Addr]bool{}
	for port := uint16(1024); port < 1024+64; port++ {
		pkt := wire.NewTCPProbe(p.LocalAddr(), addr("10.1.5.2"), 2, port, 80, 1)
		r := exchange(t, p, pkt)
		if r != nil {
			seenTCP[r.IP.Src] = true
		}
	}
	if len(seenTCP) < 2 {
		t.Fatalf("TCP flows all hashed to one branch: %v", seenTCP)
	}
}
