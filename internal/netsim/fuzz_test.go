package netsim

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadFaultPlan throws arbitrary bytes at the fault-plan decoder. The
// invariants for ANY input: a decode error never panics; unknown kinds fail
// with the named ErrUnknownFaultKind (never a silent zero-value fault); and
// every plan that decodes successfully is valid, survives a
// marshal/re-read round trip unchanged, and installs onto a topology
// without panicking (scope errors are fine — they name a missing router or
// subnet, they do not corrupt the network).
func FuzzReadFaultPlan(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed": 1, "faults": []}`))
	f.Add([]byte(`{"seed": 3, "faults": [{"kind": "corrupt", "prob": 0.4}]}`))
	f.Add([]byte(`{"seed": 5, "faults": [
		{"kind": "flap", "subnet": "10.0.2.0/29", "from": 5, "until": 50},
		{"kind": "blackhole", "router": "R2"},
		{"kind": "storm", "rate": 0.5, "burst": 2},
		{"kind": "churn", "from": 1}
	]}`))
	// One seed per byzantine kind, so the corpus always exercises the
	// adversarial decode paths.
	f.Add([]byte(`{"seed": 7, "faults": [{"kind": "liar", "prob": 0.35}]}`))
	f.Add([]byte(`{"seed": 7, "faults": [{"kind": "alias-confuse", "addr": "10.0.3.0"}]}`))
	f.Add([]byte(`{"seed": 7, "faults": [{"kind": "hidden-hop", "router": "R2"}]}`))
	f.Add([]byte(`{"seed": 7, "faults": [{"kind": "echo", "prob": 0.5}]}`))
	f.Add([]byte(`{"seed": 9, "faults": [{"kind": "gremlin"}]}`))
	f.Add([]byte(`{"seed": 9, "faults": [{"kind": 42}]}`))

	topo := fuzzTopology()
	f.Fuzz(func(t *testing.T, data []byte) {
		plan, err := ReadFaultPlan(bytes.NewReader(data))
		if err != nil {
			if strings.Contains(string(data), `"kind"`) && errors.Is(err, ErrUnknownFaultKind) {
				return // the named rejection path, working as specified
			}
			return
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("decoded plan fails validation: %v\ninput: %s", err, data)
		}
		var buf bytes.Buffer
		if err := WriteFaultPlan(&buf, plan); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := ReadFaultPlan(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read: %v\nencoded: %s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(plan, again) {
			t.Fatalf("round trip changed the plan:\nbefore: %+v\nafter:  %+v", plan, again)
		}
		// Install must never panic; unknown scopes return errors.
		n := New(topo, Config{Seed: 1})
		_ = n.InstallFaults(plan)
	})
}

// fuzzTopology builds a tiny two-router topology for install probing.
func fuzzTopology() *Topology {
	b := NewBuilder()
	v := b.Host("vantage")
	r1 := b.Router("R1")
	r2 := b.Router("R2")
	s1 := b.Subnet("10.0.0.0/30")
	s2 := b.Subnet("10.0.1.0/30")
	b.Attach(v, s1, "10.0.0.1")
	b.Attach(r1, s1, "10.0.0.2")
	b.Attach(r1, s2, "10.0.1.1")
	b.Attach(r2, s2, "10.0.1.2")
	return b.MustBuild()
}
