package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"tracenet/internal/invariant"
	"tracenet/internal/ipv4"
	"tracenet/internal/telemetry"
	"tracenet/internal/wire"
)

// LoadBalanceMode selects how equal-cost candidates are chosen.
type LoadBalanceMode uint8

const (
	// PerFlow hashes the flow identifier only: probes of one flow always take
	// the same path (the common router configuration).
	PerFlow LoadBalanceMode = iota
	// PerPacket additionally hashes the virtual clock: consecutive probes of
	// the same flow may take different equal-cost paths, the worst case for
	// path stability (§3.7).
	PerPacket
)

// maxHops bounds a forwarding walk, like a default initial TTL.
const maxHops = 64

// Config tunes a simulated network.
type Config struct {
	// Mode selects per-flow or per-packet load balancing. Default PerFlow.
	Mode LoadBalanceMode
	// LossRate is the probability in [0,1] that a generated reply is lost
	// (1 silences the network completely).
	LossRate float64
	// Seed makes loss and per-packet balancing deterministic.
	Seed int64
}

// validate rejects out-of-range configuration with a descriptive error.
func (c Config) validate() error {
	if c.LossRate < 0 || c.LossRate > 1 {
		return fmt.Errorf("netsim: Config.LossRate %v outside [0,1]", c.LossRate)
	}
	return nil
}

// needsSerial reports whether the configuration (or the topology itself)
// consumes shared mutable state on the injection path — the random stream
// (loss, per-router reply loss, random IP-IDs), the clock-salted per-packet
// balancer, or per-router rate-limit buckets. Such networks funnel every
// injection through the mutex so their behaviour is byte-identical to the
// historical single-threaded engine; clean networks take the lock-free path.
func (c Config) needsSerial(t *Topology) bool {
	if c.LossRate > 0 || c.Mode == PerPacket {
		return true
	}
	for _, r := range t.Routers {
		if r.RateLimit != nil || r.ReplyLoss > 0 || r.IPIDRandom {
			return true
		}
	}
	return false
}

// Network is a runnable simulation over an immutable Topology.
//
// A Network is safe for concurrent use by multiple vantage Ports: on clean
// configurations (no loss, per-flow balancing, no faults, no rate limits)
// injections run lock-free over the immutable topology with atomic counters,
// so concurrent sessions scale across cores; any configuration that consumes
// the shared random stream or mutable fault state serializes every injection
// behind the internal mutex, preserving the exact historical behaviour.
type Network struct {
	Topo *Topology

	// Probes counts every injected packet; Replies counts non-silent answers.
	// Both are maintained atomically (the lock-free fast path updates them
	// concurrently); use Counters for a consistently-ordered snapshot while
	// probing is in flight.
	Probes  uint64
	Replies uint64

	// Everything from here to mu is immutable after construction (cfg, rt) or
	// set once before probing starts (faults via InstallFaults, telemetry
	// handles via SetTelemetry), or atomic (clock, serial) — the lock-free
	// fast path reads these fields concurrently.
	cfg    Config
	rt     *routingState
	faults *faultState
	clock  atomic.Uint64
	serial atomic.Bool

	// Telemetry mirror of the engine counters; handles are resolved once in
	// SetTelemetry and nil-safe, so the uninstrumented path stays free.
	tel      *telemetry.Telemetry
	cProbes  *telemetry.Counter
	cReplies *telemetry.Counter
	gClock   *telemetry.Gauge
	cFault   [12]*telemetry.Counter // indexed by FaultKind

	// mu serializes the slow path; rng (and the mutable fault state reached
	// through faults) is only touched with it held.
	mu  sync.Mutex
	rng *rand.Rand
}

// New creates a network simulation over topo. It panics if cfg is out of
// range (LossRate must be in [0,1)); use NewChecked to handle the error.
func New(topo *Topology, cfg Config) *Network {
	n, err := NewChecked(topo, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// NewChecked is New returning configuration errors instead of panicking.
func NewChecked(topo *Topology, cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Network{
		Topo: topo,
		cfg:  cfg,
		rt:   newRoutingState(topo),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	n.serial.Store(cfg.needsSerial(topo))
	// Spread the per-router IP-ID counters so distinct routers' sequences
	// don't coincide by construction.
	for i, r := range topo.Routers {
		atomic.StoreUint32(&r.ipid, uint32(uint16(i*1021)))
	}
	return n, nil
}

// Counters returns a race-free snapshot of the probe/reply counters. Replies
// is loaded first, so the snapshot always satisfies replies <= probes even
// while injections are in flight.
func (n *Network) Counters() (probes, replies uint64) {
	replies = atomic.LoadUint64(&n.Replies)
	probes = atomic.LoadUint64(&n.Probes)
	return probes, replies
}

// Ticks returns the current virtual clock, making the Network the natural
// telemetry.Clock for a simulated run: every telemetry timestamp is then an
// injection tick, which is what makes same-seed telemetry byte-identical.
func (n *Network) Ticks() uint64 {
	return n.clock.Load()
}

// SetTelemetry attaches (or, with nil, detaches) the run's telemetry layer,
// resolving the engine's metric handles once so the injection path never
// touches the registry. Call it before probing starts: the lock-free fast
// path reads the handles without synchronization. Inside the engine
// everything records through RecordAt with the current clock — never through
// methods that re-read the clock via Ticks.
func (n *Network) SetTelemetry(tel *telemetry.Telemetry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tel = tel
	n.cProbes = tel.Counter("tracenet_netsim_probes_total")
	n.cReplies = tel.Counter("tracenet_netsim_replies_total")
	n.gClock = tel.Gauge("tracenet_netsim_clock_ticks")
	for _, k := range FaultKinds {
		if k == FaultChurn {
			// Churn perturbs routing choices rather than inflicting countable
			// per-reply events; it has no fault counter.
			continue
		}
		n.cFault[k] = tel.Counter("tracenet_netsim_fault_events_total", "kind", k.String())
	}
}

// observeFault mirrors one inflicted fault onto the telemetry layer: the
// per-kind fault counter and a flight-recorder entry at the current clock.
// Called with n.mu held (faults only occur on the serialized path).
func (n *Network) observeFault(kind FaultKind, msg string) {
	if n.tel == nil {
		return
	}
	n.cFault[kind].Inc()
	n.tel.RecordAt(n.clock.Load(), "fault", msg)
}

// Port binds a vantage host to the network, exposing the probe.Transport
// surface: encoded probe in, encoded reply (or nil for silence) out. Ports
// are stateless; one Port may be shared by concurrent probers, or each
// prober may hold its own Port on the same Network.
type Port struct {
	net  *Network
	host *Router
}

// PortFor returns an injection port for the named host.
func (n *Network) PortFor(hostName string) (*Port, error) {
	h := n.Topo.HostByName(hostName)
	if h == nil {
		return nil, fmt.Errorf("netsim: no host %q", hostName)
	}
	return &Port{net: n, host: h}, nil
}

// Host returns the bound vantage host.
func (p *Port) Host() *Router { return p.host }

// LocalAddr returns the vantage host's source address.
func (p *Port) LocalAddr() ipv4.Addr { return p.host.Addr() }

// Exchange injects one encoded probe sourced at the bound host and returns
// the encoded reply, or (nil, nil) when the network stays silent. When a
// fault plan is installed the reply bytes may come back corrupted or
// truncated, exactly as a mangled datagram would off a raw socket.
// Safe for concurrent use.
//
//tracenet:hotpath
func (p *Port) Exchange(raw []byte) ([]byte, error) {
	pkt, err := wire.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("netsim: undecodable probe: %w", err)
	}
	if pkt.IP.Src != p.host.Addr() {
		return nil, fmt.Errorf("netsim: probe source %v is not host %s (%v)",
			pkt.IP.Src, p.host.Name, p.host.Addr())
	}
	if !p.net.serial.Load() {
		reply := p.net.injectFast(pkt, raw, p.host)
		if reply == nil {
			return nil, nil
		}
		out, err := reply.Encode()
		if err != nil {
			return nil, fmt.Errorf("netsim: encoding reply: %w", err)
		}
		return out, nil
	}
	p.net.mu.Lock()
	defer p.net.mu.Unlock()
	reply := p.net.inject(pkt, raw, p.host)
	if reply == nil {
		return nil, nil
	}
	out, err := reply.Encode()
	if err != nil {
		return nil, fmt.Errorf("netsim: encoding reply: %w", err)
	}
	return p.net.mangleReply(out), nil
}

// Wait advances the network's virtual clock by ticks without injecting a
// packet: the probe layer's backoff hook. Rate-limit buckets (including
// storm buckets) refill against the clock, so backing off genuinely lets a
// hammered router recover.
func (p *Port) Wait(ticks uint64) {
	clock := p.net.clock.Add(ticks)
	p.net.gClock.SetMax(int64(clock))
}

// tick advances the clock and probe counter for one injection, maintaining
// the clock-mirror gauge and the counter invariant. Shared by both injection
// paths; all state it touches is atomic.
func (n *Network) tick() {
	clock := n.clock.Add(1)
	// Replies is loaded before Probes is incremented: every reply increment
	// is preceded by its probe's increment, so this ordering can never
	// observe a spurious violation.
	replies := atomic.LoadUint64(&n.Replies)
	probes := atomic.AddUint64(&n.Probes, 1)
	n.cProbes.Inc()
	n.gClock.SetMax(int64(clock))
	invariant.Assertf(replies <= probes,
		"netsim: replies %d outran probes %d", replies, probes)
	invariant.Assertf(n.cfg.LossRate >= 0 && n.cfg.LossRate <= 1,
		"netsim: LossRate %v escaped [0,1] after construction", n.cfg.LossRate)
}

// injectFast walks one probe through the topology on the lock-free path:
// the topology and routing state are immutable, counters are atomic, and no
// configuration that could consume the shared random stream or mutable fault
// state is active (see Config.needsSerial, checked by Exchange).
func (n *Network) injectFast(pkt *wire.Packet, raw []byte, origin *Router) *wire.Packet {
	n.tick()
	reply, responder := n.walk(pkt, raw, origin)
	if reply == nil {
		return nil
	}
	if responder != nil {
		// IPIDRandom routers force the serialized path, so only the shared
		// atomic counter is reachable here. Counter values interleave across
		// concurrent probers but stay per-router monotonic — the alias signal.
		reply.IP.ID = responder.nextIPID()
	}
	atomic.AddUint64(&n.Replies, 1)
	n.cReplies.Inc()
	return reply
}

// inject walks one probe through the topology and produces its reply on the
// serialized path. Called with n.mu held.
func (n *Network) inject(pkt *wire.Packet, raw []byte, origin *Router) *wire.Packet {
	n.tick()
	reply, responder := n.walk(pkt, raw, origin)
	if reply == nil {
		return nil
	}
	lost := n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate
	if lost && n.duplicateChance() {
		// A duplicated reply gets a second, independent draw against loss.
		lost = n.rng.Float64() < n.cfg.LossRate
	}
	if lost {
		return nil
	}
	if responder != nil {
		// The reply's IP identifier comes from the responding router's
		// shared counter (or a random draw for non-cooperative routers) —
		// the signal Ally-style alias resolution keys on.
		if responder.IPIDRandom {
			reply.IP.ID = uint16(n.rng.Intn(1 << 16))
		} else {
			reply.IP.ID = responder.nextIPID()
		}
	}
	if n.replyDelayed() {
		// The router answered, but the reply misses the prober's timeout
		// window; it consumed the router's tokens and IP-ID all the same.
		return nil
	}
	atomic.AddUint64(&n.Replies, 1)
	n.cReplies.Inc()
	return reply
}

// walk traces one probe hop by hop until it is answered, dropped, or runs out
// of hops, returning the reply and the router that generated it. On the
// serialized path the caller holds n.mu; on the fast path every branch that
// would touch n.rng or mutable fault state (loss, reply loss, rate limits,
// faults) is unreachable by construction, and the remaining reads are
// immutable or atomic.
func (n *Network) walk(pkt *wire.Packet, raw []byte, origin *Router) (*wire.Packet, *Router) {
	dst := pkt.IP.Dst
	ttl := int(pkt.IP.TTL)
	if ttl <= 0 {
		return nil, nil
	}
	// Self-probe: answered locally without entering the network.
	if iface := origin.IfaceWithAddr(dst); iface != nil {
		return n.directReply(origin, iface, nil, pkt, raw)
	}

	cur, in, _, verdict := n.forwardStep(origin, pkt, nil)
	if verdict != stepForwarded && verdict != stepDelivered {
		// The vantage itself cannot reach the destination; hosts do not
		// generate ICMP errors for their own traffic.
		return nil, nil
	}
	if n.subnetDown(in.Subnet) || n.blackholed(cur) {
		return nil, nil
	}
	for hop := 0; hop < maxHops; hop++ {
		// Local delivery: the packet is addressed to one of cur's interfaces.
		if iface := cur.IfaceWithAddr(dst); iface != nil {
			return n.directReply(cur, iface, in, pkt, raw)
		}
		// TTL expires on forwarding.
		ttl--
		pkt.IP.TTL = uint8(ttl)
		if ttl <= 0 {
			return n.ttlExceeded(cur, in, pkt, raw)
		}
		next, nextIn, out, verdict := n.forwardStep(cur, pkt, in)
		if (verdict == stepForwarded || verdict == stepDelivered) &&
			cur.RRCompliant && out != nil && len(pkt.IP.Options) > 0 {
			// RFC 791 record route: a compliant router stamps the address
			// of the outgoing interface as it forwards (the DisCarte
			// mechanism for a second address per hop).
			wire.StampRecordRoute(pkt.IP.Options, out.Addr)
		}
		switch verdict {
		case stepForwarded, stepDelivered:
			// Forwarded to the next router, or delivered onto an attached
			// subnet toward the hosting router. Either way the packet
			// crosses nextIn's subnet and enters next — both of which a
			// fault plan may have taken down.
			if n.subnetDown(nextIn.Subnet) || n.blackholed(next) {
				return nil, nil
			}
			cur, in = next, nextIn
		case stepFirewalled:
			return nil, nil
		case stepUnassigned:
			return n.unreachable(cur, in, pkt, raw, wire.CodeHostUnreach)
		case stepNoRoute:
			return n.unreachable(cur, in, pkt, raw, wire.CodeNetUnreach)
		}
	}
	return nil, nil
}

// quoteBytes re-encodes the in-flight packet for an ICMP error quote, so the
// quoted header reflects the decremented TTL and any record-route stamps
// accumulated on the way. Falls back to the as-sent bytes on encode failure.
func quoteBytes(pkt *wire.Packet, raw []byte) []byte {
	if q, err := pkt.Encode(); err == nil {
		return q
	}
	return raw
}

type stepVerdict uint8

const (
	stepForwarded stepVerdict = iota
	stepDelivered
	stepFirewalled
	stepUnassigned
	stepNoRoute
)

// forwardStep decides cur's next hop for pkt. It returns the next router,
// the interface the packet enters it through, and the outgoing interface on
// cur (for record-route stamping). Serialized path: caller holds n.mu;
// fast path: per-packet salting is inactive and churn faults are absent, so
// only immutable routing state is read.
func (n *Network) forwardStep(cur *Router, pkt *wire.Packet, in *Iface) (*Router, *Iface, *Iface, stepVerdict) {
	dst := pkt.IP.Dst
	s := n.rt.targetSubnet(dst)
	if s == nil {
		return nil, nil, nil, stepNoRoute
	}
	if out := cur.IfaceOn(s); out != nil {
		// Final subnet: deliver across the LAN.
		if s.Unresponsive {
			return nil, nil, nil, stepFirewalled
		}
		dstIface := n.Topo.IfaceByAddr(dst)
		if dstIface == nil || dstIface.Subnet != s {
			return nil, nil, nil, stepUnassigned
		}
		return dstIface.Router, dstIface, out, stepDelivered
	}
	hops := n.rt.nextHops(cur, s)
	if len(hops) == 0 {
		return nil, nil, nil, stepNoRoute
	}
	var salt uint64
	if n.cfg.Mode == PerPacket {
		salt = n.clock.Load()
	}
	// An active churn fault reshuffles equal-cost choices per epoch even for
	// per-flow balancing, modelling mid-session routing changes.
	salt ^= n.churnSalt()
	e := hops[ecmpIndex(pkt, cur, salt, len(hops))]
	return e.to, e.remote, e.local, stepForwarded
}

// directReply answers a probe delivered to iface on router r, returning the
// reply and the responding router. Serialized path: caller holds n.mu; fast
// path: the rate-limit, storm, and reply-loss branches are unreachable.
func (n *Network) directReply(r *Router, iface, in *Iface, pkt *wire.Packet, raw []byte) (*wire.Packet, *Router) {
	if iface.Subnet.Unresponsive {
		// Firewalled subnet: probes into its range die silently, including
		// at the hosting router itself.
		return nil, nil
	}
	if !iface.Responsive {
		return nil, nil
	}
	if r.DirectPolicy == PolicyNil || !r.DirectProtos.Has(pkt.IP.Protocol) {
		return nil, nil
	}
	if n.blackholed(r) {
		return nil, nil
	}
	if !r.RateLimit.Allow(n.clock.Load()) || !n.stormAllows(r) {
		return nil, nil
	}
	if r.ReplyLoss > 0 && n.rng.Float64() < r.ReplyLoss {
		return nil, nil
	}
	src := n.rt.replySource(r, r.DirectPolicy, iface, in, pkt.IP.Src)
	if src == nil {
		return nil, nil
	}
	switch {
	case pkt.ICMP != nil && pkt.ICMP.Type == wire.ICMPEchoRequest:
		return wire.NewEchoReply(src.Addr, pkt), r
	case pkt.UDP != nil:
		// No listener on traceroute-style high ports: port unreachable.
		return wire.NewICMPError(src.Addr, wire.ICMPDestUnreach, wire.CodePortUnreach, quoteBytes(pkt, raw)), r
	case pkt.TCP != nil:
		// Unsolicited ACK probe: RST from the probed address (TCP replies
		// always come from the addressed endpoint).
		return wire.NewTCPReset(iface.Addr, pkt), r
	}
	return nil, nil
}

// ttlExceeded answers a probe whose TTL expired at router r, returning the
// reply and the responding router. Serialized path: caller holds n.mu; fast
// path: the rate-limit, storm, and reply-loss branches are unreachable.
func (n *Network) ttlExceeded(r *Router, in *Iface, pkt *wire.Packet, raw []byte) (*wire.Packet, *Router) {
	// Byzantine faults come first: a transparent hidden hop never answers
	// whatever its honest policy says, and an echo responder fabricates its
	// lie even where the honest router would stay silent.
	if n.hiddenHop(r) {
		return nil, nil
	}
	if n.echoMirrors(r) {
		if fake := fabricateAlive(pkt, raw); fake != nil {
			return fake, r
		}
	}
	if r.IndirectPolicy == PolicyNil || !r.IndirectProtos.Has(pkt.IP.Protocol) {
		return nil, nil
	}
	if n.blackholed(r) {
		return nil, nil
	}
	if !r.RateLimit.Allow(n.clock.Load()) || !n.stormAllows(r) {
		return nil, nil
	}
	if r.ReplyLoss > 0 && n.rng.Float64() < r.ReplyLoss {
		return nil, nil
	}
	src := n.rt.replySource(r, r.IndirectPolicy, nil, in, pkt.IP.Src)
	if src == nil {
		return nil, nil
	}
	return wire.NewICMPError(n.spoofSource(r, src.Addr), wire.ICMPTimeExceeded, wire.CodeTTLExceeded, quoteBytes(pkt, raw)), r
}

// unreachable answers a probe that cannot be delivered past router r,
// returning the reply and the responding router. Serialized path: caller
// holds n.mu; fast path: the rate-limit, storm, and reply-loss branches are
// unreachable.
func (n *Network) unreachable(r *Router, in *Iface, pkt *wire.Packet, raw []byte, code uint8) (*wire.Packet, *Router) {
	// Byzantine faults come first — an echo responder lies about unassigned
	// destinations even when the honest router would drop them silently
	// (EmitUnreachable unset). That lie is exactly how phantom subnet members
	// get minted.
	if n.hiddenHop(r) {
		return nil, nil
	}
	if n.echoMirrors(r) {
		if fake := fabricateAlive(pkt, raw); fake != nil {
			return fake, r
		}
	}
	if !r.EmitUnreachable {
		return nil, nil
	}
	if r.IndirectPolicy == PolicyNil || !r.IndirectProtos.Has(pkt.IP.Protocol) {
		return nil, nil
	}
	if n.blackholed(r) {
		return nil, nil
	}
	if !r.RateLimit.Allow(n.clock.Load()) || !n.stormAllows(r) {
		return nil, nil
	}
	if r.ReplyLoss > 0 && n.rng.Float64() < r.ReplyLoss {
		return nil, nil
	}
	src := n.rt.replySource(r, r.IndirectPolicy, nil, in, pkt.IP.Src)
	if src == nil {
		return nil, nil
	}
	return wire.NewICMPError(n.spoofSource(r, src.Addr), wire.ICMPDestUnreach, code, quoteBytes(pkt, raw)), r
}

// fabricateAlive builds the lie an echo fault tells: a reply of the
// protocol-appropriate "destination alive" shape — echo reply, port
// unreachable, or TCP reset — whose source mirrors the probe's destination,
// indistinguishable on the wire from a genuine endpoint answer. Returns nil
// for probe shapes that have no alive form, letting the caller fall through
// to the honest reply.
func fabricateAlive(pkt *wire.Packet, raw []byte) *wire.Packet {
	dst := pkt.IP.Dst
	switch {
	case pkt.ICMP != nil && pkt.ICMP.Type == wire.ICMPEchoRequest:
		return wire.NewEchoReply(dst, pkt)
	case pkt.UDP != nil:
		return wire.NewICMPError(dst, wire.ICMPDestUnreach, wire.CodePortUnreach, quoteBytes(pkt, raw))
	case pkt.TCP != nil:
		return wire.NewTCPReset(dst, pkt)
	}
	return nil
}

// DistanceTo returns the observed hop distance from the named host to addr:
// the smallest TTL at which a lossless ICMP echo probe is answered with an
// echo reply. It returns -1 when addr never answers (unassigned,
// unresponsive, firewalled, or unreachable). The measurement walk shares the
// routing state but does not perturb the network's clock, counters, or
// random stream. Exposed for tests and ground-truth computation.
func (n *Network) DistanceTo(hostName string, addr ipv4.Addr) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	h := n.Topo.HostByName(hostName)
	if h == nil || h.Addr() == addr {
		if h != nil {
			return 0
		}
		return -1
	}
	probe := &Network{Topo: n.Topo, rt: n.rt, rng: rand.New(rand.NewSource(0))}
	for ttl := 1; ttl <= maxHops; ttl++ {
		pkt := wire.NewEchoRequest(h.Addr(), addr, uint8(ttl), 0xfffe, uint16(ttl))
		raw, err := pkt.Encode()
		if err != nil {
			return -1
		}
		reply, _ := probe.walk(pkt, raw, h)
		if reply != nil && reply.ICMP != nil && reply.ICMP.Type == wire.ICMPEchoReply {
			return ttl
		}
		if reply == nil && ttl > 1 {
			// Once past the expiry region replies stop entirely; keep walking
			// to maxHops anyway — silence at a hop does not imply silence at
			// the destination (anonymous intermediate routers).
			continue
		}
	}
	return -1
}
