package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"tracenet/internal/invariant"
	"tracenet/internal/ipv4"
	"tracenet/internal/telemetry"
	"tracenet/internal/wire"
)

// LoadBalanceMode selects how equal-cost candidates are chosen.
type LoadBalanceMode uint8

const (
	// PerFlow hashes the flow identifier only: probes of one flow always take
	// the same path (the common router configuration).
	PerFlow LoadBalanceMode = iota
	// PerPacket additionally hashes the virtual clock: consecutive probes of
	// the same flow may take different equal-cost paths, the worst case for
	// path stability (§3.7).
	PerPacket
)

// maxHops bounds a forwarding walk, like a default initial TTL.
const maxHops = 64

// Config tunes a simulated network.
type Config struct {
	// Mode selects per-flow or per-packet load balancing. Default PerFlow.
	Mode LoadBalanceMode
	// LossRate is the probability in [0,1] that a generated reply is lost
	// (1 silences the network completely).
	LossRate float64
	// Seed makes loss and per-packet balancing deterministic.
	Seed int64
}

// validate rejects out-of-range configuration with a descriptive error.
func (c Config) validate() error {
	if c.LossRate < 0 || c.LossRate > 1 {
		return fmt.Errorf("netsim: Config.LossRate %v outside [0,1]", c.LossRate)
	}
	return nil
}

// numShards stripes the network's mutable random state by responding router,
// so concurrent injections that end at different routers draw without
// contending. 16 stripes keep contention negligible up to the parallelism the
// campaign engine uses while costing one cache line each.
const (
	numShards = 16
	shardMask = numShards - 1
)

// shardIndex maps a responding router onto its random-stream stripe. A nil
// responder (defensive; every generated reply has one) uses stripe 0.
func shardIndex(r *Router) int {
	if r == nil {
		return 0
	}
	return r.idx & shardMask
}

// rngShard is one stripe of a seeded random stream: a dedicated generator
// behind its own lock, padded out to a cache line so neighbouring stripes do
// not false-share. Each draw locks only its stripe, so routers in different
// stripes never serialize against each other.
type rngShard struct {
	mu  sync.Mutex
	rng *rand.Rand
	_   [40]byte
}

// chance draws one uniform float and reports whether it fell below p.
func (s *rngShard) chance(p float64) bool {
	s.mu.Lock()
	ok := s.rng.Float64() < p
	s.mu.Unlock()
	return ok
}

// intn draws one uniform int in [0, n).
func (s *rngShard) intn(n int) int {
	s.mu.Lock()
	v := s.rng.Intn(n)
	s.mu.Unlock()
	return v
}

// shardSeed derives the seed of stripe i from the stream's base seed. The
// multiplier is the 64-bit golden-ratio constant, so stripe streams are
// decorrelated from each other and from the base seed itself.
func shardSeed(base int64, i int) int64 {
	return base ^ int64(uint64(i+1)*0x9e3779b97f4a7c15)
}

// Network is a runnable simulation over an immutable Topology.
//
// A Network is safe for concurrent use by multiple vantage Ports, and every
// injection runs without a network-wide lock: the topology and routing state
// are immutable, counters and the clock are atomic, and the mutable remainder
// — the seeded random streams and rate-limit buckets — is striped per
// responding router (see rngShard) or locked per bucket. A configuration with
// loss, faults, or rate limits therefore scales across cores exactly like a
// clean one; only probes answered by the same router contend, and only when
// they actually draw randomness or tokens.
type Network struct {
	Topo *Topology

	// Probes counts every injected packet; Replies counts non-silent answers.
	// Both are maintained atomically; use Counters for a consistently-ordered
	// snapshot while probing is in flight.
	Probes  uint64
	Replies uint64

	// cfg and rt are immutable after construction; faults is replaced
	// wholesale by InstallFaults; clock is atomic.
	cfg    Config
	rt     *routingState
	faults atomic.Pointer[faultState]
	clock  atomic.Uint64

	// shards stripe the network's own seeded stream (loss, per-router reply
	// loss, random IP-IDs) by responding router. The fault plan's independent
	// stream is striped the same way inside faultState.
	shards [numShards]rngShard

	// Telemetry mirror of the engine counters; handles are resolved once in
	// SetTelemetry and nil-safe, so the uninstrumented path stays free.
	tel      *telemetry.Telemetry
	cProbes  *telemetry.Counter
	cReplies *telemetry.Counter
	gClock   *telemetry.Gauge
	cFault   [12]*telemetry.Counter // indexed by FaultKind

	// mu guards configuration (telemetry attachment). The injection path
	// never takes it: SetTelemetry must be called before probing starts.
	mu sync.Mutex
}

// New creates a network simulation over topo. It panics if cfg is out of
// range (LossRate must be in [0,1)); use NewChecked to handle the error.
func New(topo *Topology, cfg Config) *Network {
	n, err := NewChecked(topo, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// NewChecked is New returning configuration errors instead of panicking.
func NewChecked(topo *Topology, cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Network{
		Topo: topo,
		cfg:  cfg,
		rt:   newRoutingState(topo),
	}
	n.initShards(cfg.Seed)
	// Spread the per-router IP-ID counters so distinct routers' sequences
	// don't coincide by construction.
	for i, r := range topo.Routers {
		atomic.StoreUint32(&r.ipid, uint32(uint16(i*1021)))
	}
	return n, nil
}

// initShards seeds the network's striped random streams from seed.
func (n *Network) initShards(seed int64) {
	for i := range n.shards {
		s := &n.shards[i]
		s.mu.Lock()
		s.rng = rand.New(rand.NewSource(shardSeed(seed, i)))
		s.mu.Unlock()
	}
}

// Counters returns a race-free snapshot of the probe/reply counters. Replies
// is loaded first, so the snapshot always satisfies replies <= probes even
// while injections are in flight.
func (n *Network) Counters() (probes, replies uint64) {
	replies = atomic.LoadUint64(&n.Replies)
	probes = atomic.LoadUint64(&n.Probes)
	return probes, replies
}

// Ticks returns the current virtual clock, making the Network the natural
// telemetry.Clock for a simulated run: every telemetry timestamp is then an
// injection tick, which is what makes same-seed telemetry byte-identical.
func (n *Network) Ticks() uint64 {
	return n.clock.Load()
}

// SetTelemetry attaches (or, with nil, detaches) the run's telemetry layer,
// resolving the engine's metric handles once so the injection path never
// touches the registry. Call it before probing starts: the injection path
// reads the handles without synchronization. Inside the engine everything
// records through RecordAt with the current clock — never through methods
// that re-read the clock via Ticks.
func (n *Network) SetTelemetry(tel *telemetry.Telemetry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tel = tel
	n.cProbes = tel.Counter("tracenet_netsim_probes_total")
	n.cReplies = tel.Counter("tracenet_netsim_replies_total")
	n.gClock = tel.Gauge("tracenet_netsim_clock_ticks")
	for _, k := range FaultKinds {
		if k == FaultChurn {
			// Churn perturbs routing choices rather than inflicting countable
			// per-reply events; it has no fault counter.
			continue
		}
		n.cFault[k] = tel.Counter("tracenet_netsim_fault_events_total", "kind", k.String())
	}
}

// observeFault mirrors one inflicted fault onto the telemetry layer: the
// per-kind fault counter and a flight-recorder entry at the current clock.
// Counter and recorder are internally synchronized, so fault sites call this
// without holding any engine lock.
func (n *Network) observeFault(kind FaultKind, msg string) {
	if n.tel == nil {
		return
	}
	n.cFault[kind].Inc()
	n.tel.RecordAt(n.clock.Load(), "fault", msg)
}

// exchangeScratch owns every piece of transient storage one injection needs:
// the decode scratch for the probe, the quote buffer an ICMP error embeds,
// the reply packet and its transport struct, and the reply's options copy.
// Exchanges borrow a scratch from scratchPool, so the steady-state injection
// path allocates nothing — the reply is synthesized into the scratch and
// encoded into the caller's buffer before the scratch is returned.
type exchangeScratch struct {
	dec   wire.DecodeScratch
	quote []byte // re-encoded probe bytes backing ICMP error quotes
	opts  []byte // reply's copy of accumulated IP options (echo replies)
	reply wire.Packet
	icmp  wire.ICMP
	tcp   wire.TCP
}

var scratchPool = sync.Pool{New: func() any { return new(exchangeScratch) }}

// quoteBytes materializes the in-flight packet into the scratch quote buffer,
// so an ICMP error quote reflects the decremented TTL and any record-route
// stamps accumulated on the way. An optionless packet can only differ from its
// as-sent bytes in the TTL, so the fast path copies the header plus eight
// payload bytes (all an RFC 792 quote embeds) and patches TTL and header
// checksum in place (RFC 1624) — identical output to a re-encode at a
// fraction of the cost. Packets carrying options re-encode in full; encode
// failure falls back to the as-sent bytes (unreachable for packets that
// decoded).
func (x *exchangeScratch) quoteBytes(pkt *wire.Packet, raw []byte) []byte {
	if len(pkt.IP.Options) == 0 && len(raw) >= wire.HeaderLen && int(raw[0]&0x0f)*4 == wire.HeaderLen {
		n := wire.HeaderLen + 8
		if len(raw) < n {
			n = len(raw)
		}
		q := append(x.quote[:0], raw[:n]...)
		if q[8] != pkt.IP.TTL {
			old := uint16(q[8])<<8 | uint16(q[9])
			q[8] = pkt.IP.TTL
			wire.CsumUpdate(q, 10, old, uint16(q[8])<<8|uint16(q[9]))
		}
		x.quote = q
		return q
	}
	q, err := pkt.AppendEncode(x.quote[:0])
	if err != nil {
		return raw
	}
	x.quote = q
	return q
}

// echoReply synthesizes the echo reply to a decoded echo request into the
// scratch. IP options (such as an accumulated record route) are copied into
// scratch-owned storage, as ping -R relies on.
func (x *exchangeScratch) echoReply(replyFrom ipv4.Addr, req *wire.Packet) *wire.Packet {
	var opts []byte
	if len(req.IP.Options) > 0 {
		x.opts = append(x.opts[:0], req.IP.Options...)
		opts = x.opts
	}
	x.icmp = wire.ICMP{Type: wire.ICMPEchoReply, ID: req.ICMP.ID, Seq: req.ICMP.Seq}
	x.reply = wire.Packet{
		IP:   wire.IPHeader{TTL: 64, Src: replyFrom, Dst: req.IP.Src, Options: opts},
		ICMP: &x.icmp,
	}
	return &x.reply
}

// icmpError synthesizes the ICMP error a router at routerAddr sends for the
// in-flight probe pkt: time-exceeded or destination/port unreachable. Per
// RFC 792 the error embeds the original IP header (including any options)
// plus its first 8 payload bytes; the quote is re-encoded into the scratch,
// and the error is addressed to the decoded probe's source directly — no
// quoted re-parse, unlike the allocating wire.NewICMPError constructor.
func (x *exchangeScratch) icmpError(routerAddr ipv4.Addr, icmpType, code uint8, pkt *wire.Packet, raw []byte) *wire.Packet {
	quote := x.quoteBytes(pkt, raw)
	quoteLen := wire.HeaderLen + 8
	if len(quote) >= 1 {
		if ihl := int(quote[0]&0x0f) * 4; ihl >= wire.HeaderLen {
			quoteLen = ihl + 8
		}
	}
	if len(quote) > quoteLen {
		quote = quote[:quoteLen]
	}
	x.icmp = wire.ICMP{Type: icmpType, Code: code, Payload: quote}
	x.reply = wire.Packet{
		IP:   wire.IPHeader{TTL: 64, Src: routerAddr, Dst: pkt.IP.Src},
		ICMP: &x.icmp,
	}
	return &x.reply
}

// tcpReset synthesizes the RST|ACK a live host returns for an unsolicited
// ACK probe into the scratch.
func (x *exchangeScratch) tcpReset(replyFrom ipv4.Addr, req *wire.Packet) *wire.Packet {
	x.tcp = wire.TCP{
		SrcPort: req.TCP.DstPort,
		DstPort: req.TCP.SrcPort,
		Seq:     req.TCP.Ack,
		Ack:     req.TCP.Seq + 1,
		Flags:   wire.TCPFlagRST | wire.TCPFlagACK,
	}
	x.reply = wire.Packet{
		IP:  wire.IPHeader{TTL: 64, Src: replyFrom, Dst: req.IP.Src},
		TCP: &x.tcp,
	}
	return &x.reply
}

// fabricateAlive builds the lie an echo fault tells: a reply of the
// protocol-appropriate "destination alive" shape — echo reply, port
// unreachable, or TCP reset — whose source mirrors the probe's destination,
// indistinguishable on the wire from a genuine endpoint answer. Returns nil
// for probe shapes that have no alive form, letting the caller fall through
// to the honest reply.
func (x *exchangeScratch) fabricateAlive(pkt *wire.Packet, raw []byte) *wire.Packet {
	dst := pkt.IP.Dst
	switch {
	case pkt.ICMP != nil && pkt.ICMP.Type == wire.ICMPEchoRequest:
		return x.echoReply(dst, pkt)
	case pkt.UDP != nil:
		return x.icmpError(dst, wire.ICMPDestUnreach, wire.CodePortUnreach, pkt, raw)
	case pkt.TCP != nil:
		return x.tcpReset(dst, pkt)
	}
	return nil
}

// Port binds a vantage host to the network, exposing the probe.Transport
// surface: encoded probe in, encoded reply (or nil for silence) out. Ports
// are stateless; one Port may be shared by concurrent probers, or each
// prober may hold its own Port on the same Network.
type Port struct {
	net  *Network
	host *Router
}

// PortFor returns an injection port for the named host.
func (n *Network) PortFor(hostName string) (*Port, error) {
	h := n.Topo.HostByName(hostName)
	if h == nil {
		return nil, fmt.Errorf("netsim: no host %q", hostName)
	}
	return &Port{net: n, host: h}, nil
}

// Host returns the bound vantage host.
func (p *Port) Host() *Router { return p.host }

// LocalAddr returns the vantage host's source address.
func (p *Port) LocalAddr() ipv4.Addr { return p.host.Addr() }

// Exchange injects one encoded probe sourced at the bound host and returns
// the encoded reply, or (nil, nil) when the network stays silent. When a
// fault plan is installed the reply bytes may come back corrupted or
// truncated, exactly as a mangled datagram would off a raw socket.
// Safe for concurrent use.
func (p *Port) Exchange(raw []byte) ([]byte, error) {
	return p.ExchangeAppend(raw, nil)
}

// ExchangeAppend is Exchange writing the reply into dst's spare capacity: the
// reply bytes are appended to dst and the extended slice returned, so a
// caller reusing one buffer (dst[:0]) pays zero steady-state allocations per
// exchange. A nil return with nil error still means silence. This is the
// probe layer's ExchangeAppender fast path. Safe for concurrent use.
//
//tracenet:hotpath
func (p *Port) ExchangeAppend(raw, dst []byte) ([]byte, error) {
	x := scratchPool.Get().(*exchangeScratch)
	defer scratchPool.Put(x)
	pkt, err := x.dec.DecodeInto(raw)
	if err != nil {
		return nil, fmt.Errorf("netsim: undecodable probe: %w", err)
	}
	if pkt.IP.Src != p.host.Addr() {
		return nil, fmt.Errorf("netsim: probe source %v is not host %s (%v)",
			pkt.IP.Src, p.host.Name, p.host.Addr())
	}
	reply, responder := p.net.exchange(x, pkt, raw, p.host)
	if reply == nil {
		return nil, nil
	}
	start := len(dst)
	out, err := reply.AppendEncode(dst)
	if err != nil {
		return nil, fmt.Errorf("netsim: encoding reply: %w", err)
	}
	// Mangling faults touch only the reply region, never a caller prefix; a
	// truncation that consumed the whole datagram reads as silence.
	mangled := p.net.mangleReply(out[start:], responder)
	if len(mangled) == 0 {
		return nil, nil
	}
	return out[:start+len(mangled)], nil
}

// Wait advances the network's virtual clock by ticks without injecting a
// packet: the probe layer's backoff hook. Rate-limit buckets (including
// storm buckets) refill against the clock, so backing off genuinely lets a
// hammered router recover.
func (p *Port) Wait(ticks uint64) {
	clock := p.net.clock.Add(ticks)
	p.net.gClock.SetMax(int64(clock))
}

// tick advances the clock and probe counter for one injection, maintaining
// the clock-mirror gauge and the counter invariant. All state it touches is
// atomic.
func (n *Network) tick() {
	clock := n.clock.Add(1)
	// Replies is loaded before Probes is incremented: every reply increment
	// is preceded by its probe's increment, so this ordering can never
	// observe a spurious violation.
	replies := atomic.LoadUint64(&n.Replies)
	probes := atomic.AddUint64(&n.Probes, 1)
	n.cProbes.Inc()
	n.gClock.SetMax(int64(clock))
	invariant.Assertf(replies <= probes,
		"netsim: replies %d outran probes %d", replies, probes)
	invariant.Assertf(n.cfg.LossRate >= 0 && n.cfg.LossRate <= 1,
		"netsim: LossRate %v escaped [0,1] after construction", n.cfg.LossRate)
}

// exchange walks one probe through the topology and settles its reply: loss,
// IP-ID assignment, and delay faults, every random draw striped by the
// responding router. Returns the reply synthesized in x (nil for silence)
// and the responding router.
func (n *Network) exchange(x *exchangeScratch, pkt *wire.Packet, raw []byte, origin *Router) (*wire.Packet, *Router) {
	n.tick()
	reply, responder := n.walk(x, pkt, raw, origin)
	if reply == nil {
		return nil, nil
	}
	if n.cfg.LossRate > 0 {
		sh := &n.shards[shardIndex(responder)]
		lost := sh.chance(n.cfg.LossRate)
		if lost && n.duplicateChance(responder) {
			// A duplicated reply gets a second, independent draw against loss.
			lost = sh.chance(n.cfg.LossRate)
		}
		if lost {
			return nil, nil
		}
	}
	if responder != nil {
		// The reply's IP identifier comes from the responding router's
		// shared counter (or a random draw for non-cooperative routers) —
		// the signal Ally-style alias resolution keys on.
		if responder.IPIDRandom {
			reply.IP.ID = uint16(n.shards[shardIndex(responder)].intn(1 << 16))
		} else {
			reply.IP.ID = responder.nextIPID()
		}
	}
	if n.replyDelayed(responder) {
		// The router answered, but the reply misses the prober's timeout
		// window; it consumed the router's tokens and IP-ID all the same.
		return nil, nil
	}
	atomic.AddUint64(&n.Replies, 1)
	n.cReplies.Inc()
	return reply, responder
}

// walk traces one probe hop by hop until it is answered, dropped, or runs out
// of hops, returning the reply (synthesized into x) and the router that
// generated it. The topology and routing state it reads are immutable; fault
// windows and counters are atomic; random draws lock only the responding
// router's stripe.
func (n *Network) walk(x *exchangeScratch, pkt *wire.Packet, raw []byte, origin *Router) (*wire.Packet, *Router) {
	dst := pkt.IP.Dst
	ttl := int(pkt.IP.TTL)
	if ttl <= 0 {
		return nil, nil
	}
	// Self-probe: answered locally without entering the network.
	if iface := origin.IfaceWithAddr(dst); iface != nil {
		return n.directReply(x, origin, iface, nil, pkt, raw)
	}

	cur, in, _, verdict := n.forwardStep(origin, pkt, nil)
	if verdict != stepForwarded && verdict != stepDelivered {
		// The vantage itself cannot reach the destination; hosts do not
		// generate ICMP errors for their own traffic.
		return nil, nil
	}
	if n.subnetDown(in.Subnet) || n.blackholed(cur) {
		return nil, nil
	}
	for hop := 0; hop < maxHops; hop++ {
		// Local delivery: the packet is addressed to one of cur's interfaces.
		if iface := cur.IfaceWithAddr(dst); iface != nil {
			return n.directReply(x, cur, iface, in, pkt, raw)
		}
		// TTL expires on forwarding.
		ttl--
		pkt.IP.TTL = uint8(ttl)
		if ttl <= 0 {
			return n.ttlExceeded(x, cur, in, pkt, raw)
		}
		next, nextIn, out, verdict := n.forwardStep(cur, pkt, in)
		if (verdict == stepForwarded || verdict == stepDelivered) &&
			cur.RRCompliant && out != nil && len(pkt.IP.Options) > 0 {
			// RFC 791 record route: a compliant router stamps the address
			// of the outgoing interface as it forwards (the DisCarte
			// mechanism for a second address per hop).
			wire.StampRecordRoute(pkt.IP.Options, out.Addr)
		}
		switch verdict {
		case stepForwarded, stepDelivered:
			// Forwarded to the next router, or delivered onto an attached
			// subnet toward the hosting router. Either way the packet
			// crosses nextIn's subnet and enters next — both of which a
			// fault plan may have taken down.
			if n.subnetDown(nextIn.Subnet) || n.blackholed(next) {
				return nil, nil
			}
			cur, in = next, nextIn
		case stepFirewalled:
			return nil, nil
		case stepUnassigned:
			return n.unreachable(x, cur, in, pkt, raw, wire.CodeHostUnreach)
		case stepNoRoute:
			return n.unreachable(x, cur, in, pkt, raw, wire.CodeNetUnreach)
		}
	}
	return nil, nil
}

type stepVerdict uint8

const (
	stepForwarded stepVerdict = iota
	stepDelivered
	stepFirewalled
	stepUnassigned
	stepNoRoute
)

// forwardStep decides cur's next hop for pkt. It returns the next router,
// the interface the packet enters it through, and the outgoing interface on
// cur (for record-route stamping). Reads only immutable routing state, the
// atomic clock, and the lock-free next-hop memo.
func (n *Network) forwardStep(cur *Router, pkt *wire.Packet, in *Iface) (*Router, *Iface, *Iface, stepVerdict) {
	dst := pkt.IP.Dst
	s := n.rt.targetSubnet(dst)
	if s == nil {
		return nil, nil, nil, stepNoRoute
	}
	if out := cur.IfaceOn(s); out != nil {
		// Final subnet: deliver across the LAN.
		if s.Unresponsive {
			return nil, nil, nil, stepFirewalled
		}
		dstIface := n.Topo.IfaceByAddr(dst)
		if dstIface == nil || dstIface.Subnet != s {
			return nil, nil, nil, stepUnassigned
		}
		return dstIface.Router, dstIface, out, stepDelivered
	}
	hops := n.rt.nextHops(cur, s)
	if len(hops) == 0 {
		return nil, nil, nil, stepNoRoute
	}
	var salt uint64
	if n.cfg.Mode == PerPacket {
		salt = n.clock.Load()
	}
	// An active churn fault reshuffles equal-cost choices per epoch even for
	// per-flow balancing, modelling mid-session routing changes.
	salt ^= n.churnSalt()
	e := hops[ecmpIndex(pkt, cur, salt, len(hops))]
	return e.to, e.remote, e.local, stepForwarded
}

// directReply answers a probe delivered to iface on router r, returning the
// reply (synthesized into x) and the responding router.
func (n *Network) directReply(x *exchangeScratch, r *Router, iface, in *Iface, pkt *wire.Packet, raw []byte) (*wire.Packet, *Router) {
	if iface.Subnet.Unresponsive {
		// Firewalled subnet: probes into its range die silently, including
		// at the hosting router itself.
		return nil, nil
	}
	if !iface.Responsive {
		return nil, nil
	}
	if r.DirectPolicy == PolicyNil || !r.DirectProtos.Has(pkt.IP.Protocol) {
		return nil, nil
	}
	if n.blackholed(r) {
		return nil, nil
	}
	if !r.RateLimit.Allow(n.clock.Load()) || !n.stormAllows(r) {
		return nil, nil
	}
	if r.ReplyLoss > 0 && n.shards[shardIndex(r)].chance(r.ReplyLoss) {
		return nil, nil
	}
	src := n.rt.replySource(r, r.DirectPolicy, iface, in, pkt.IP.Src)
	if src == nil {
		return nil, nil
	}
	switch {
	case pkt.ICMP != nil && pkt.ICMP.Type == wire.ICMPEchoRequest:
		return x.echoReply(src.Addr, pkt), r
	case pkt.UDP != nil:
		// No listener on traceroute-style high ports: port unreachable.
		return x.icmpError(src.Addr, wire.ICMPDestUnreach, wire.CodePortUnreach, pkt, raw), r
	case pkt.TCP != nil:
		// Unsolicited ACK probe: RST from the probed address (TCP replies
		// always come from the addressed endpoint).
		return x.tcpReset(iface.Addr, pkt), r
	}
	return nil, nil
}

// ttlExceeded answers a probe whose TTL expired at router r, returning the
// reply (synthesized into x) and the responding router.
func (n *Network) ttlExceeded(x *exchangeScratch, r *Router, in *Iface, pkt *wire.Packet, raw []byte) (*wire.Packet, *Router) {
	// Byzantine faults come first: a transparent hidden hop never answers
	// whatever its honest policy says, and an echo responder fabricates its
	// lie even where the honest router would stay silent.
	if n.hiddenHop(r) {
		return nil, nil
	}
	if n.echoMirrors(r) {
		if fake := x.fabricateAlive(pkt, raw); fake != nil {
			return fake, r
		}
	}
	if r.IndirectPolicy == PolicyNil || !r.IndirectProtos.Has(pkt.IP.Protocol) {
		return nil, nil
	}
	if n.blackholed(r) {
		return nil, nil
	}
	if !r.RateLimit.Allow(n.clock.Load()) || !n.stormAllows(r) {
		return nil, nil
	}
	if r.ReplyLoss > 0 && n.shards[shardIndex(r)].chance(r.ReplyLoss) {
		return nil, nil
	}
	src := n.rt.replySource(r, r.IndirectPolicy, nil, in, pkt.IP.Src)
	if src == nil {
		return nil, nil
	}
	return x.icmpError(n.spoofSource(r, src.Addr), wire.ICMPTimeExceeded, wire.CodeTTLExceeded, pkt, raw), r
}

// unreachable answers a probe that cannot be delivered past router r,
// returning the reply (synthesized into x) and the responding router.
func (n *Network) unreachable(x *exchangeScratch, r *Router, in *Iface, pkt *wire.Packet, raw []byte, code uint8) (*wire.Packet, *Router) {
	// Byzantine faults come first — an echo responder lies about unassigned
	// destinations even when the honest router would drop them silently
	// (EmitUnreachable unset). That lie is exactly how phantom subnet members
	// get minted.
	if n.hiddenHop(r) {
		return nil, nil
	}
	if n.echoMirrors(r) {
		if fake := x.fabricateAlive(pkt, raw); fake != nil {
			return fake, r
		}
	}
	if !r.EmitUnreachable {
		return nil, nil
	}
	if r.IndirectPolicy == PolicyNil || !r.IndirectProtos.Has(pkt.IP.Protocol) {
		return nil, nil
	}
	if n.blackholed(r) {
		return nil, nil
	}
	if !r.RateLimit.Allow(n.clock.Load()) || !n.stormAllows(r) {
		return nil, nil
	}
	if r.ReplyLoss > 0 && n.shards[shardIndex(r)].chance(r.ReplyLoss) {
		return nil, nil
	}
	src := n.rt.replySource(r, r.IndirectPolicy, nil, in, pkt.IP.Src)
	if src == nil {
		return nil, nil
	}
	return x.icmpError(n.spoofSource(r, src.Addr), wire.ICMPDestUnreach, code, pkt, raw), r
}

// DistanceTo returns the observed hop distance from the named host to addr:
// the smallest TTL at which a lossless ICMP echo probe is answered with an
// echo reply. It returns -1 when addr never answers (unassigned,
// unresponsive, firewalled, or unreachable). The measurement walk shares the
// immutable routing state but has its own scratch and random stream, so it
// does not perturb the network's clock, counters, or configured streams.
// Exposed for tests and ground-truth computation.
func (n *Network) DistanceTo(hostName string, addr ipv4.Addr) int {
	h := n.Topo.HostByName(hostName)
	if h == nil || h.Addr() == addr {
		if h != nil {
			return 0
		}
		return -1
	}
	probe := &Network{Topo: n.Topo, rt: n.rt}
	probe.initShards(0)
	var x exchangeScratch
	for ttl := 1; ttl <= maxHops; ttl++ {
		pkt := wire.NewEchoRequest(h.Addr(), addr, uint8(ttl), 0xfffe, uint16(ttl))
		raw, err := pkt.Encode()
		if err != nil {
			return -1
		}
		reply, _ := probe.walk(&x, pkt, raw, h)
		if reply != nil && reply.ICMP != nil && reply.ICMP.Type == wire.ICMPEchoReply {
			return ttl
		}
		if reply == nil && ttl > 1 {
			// Once past the expiry region replies stop entirely; keep walking
			// to maxHops anyway — silence at a hop does not imply silence at
			// the destination (anonymous intermediate routers).
			continue
		}
	}
	return -1
}
