package netsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"

	"tracenet/internal/ipv4"
)

// FaultKind enumerates the injectable network pathologies. Each kind models
// one of the "what cannot be measured" failure modes a production collector
// faces: silent link failures, dead routers, mangled replies, late replies,
// ICMP rate-limit storms, and mid-session routing churn.
type FaultKind uint8

const (
	// FaultLinkFlap takes a subnet down: any packet that would be forwarded
	// or delivered across it vanishes silently while the fault is active.
	// Scope: Subnet (required).
	FaultLinkFlap FaultKind = iota
	// FaultBlackhole makes a router drop every packet silently — it neither
	// forwards nor generates any reply. Scope: Router ("" = all routers).
	FaultBlackhole
	// FaultCorrupt flips random bytes of an encoded reply with probability
	// Prob per reply. Checksums are not fixed up, so the prober sees a
	// decode failure (a corrupt datagram on a real socket).
	FaultCorrupt
	// FaultTruncate cuts an encoded reply to a random shorter length with
	// probability Prob per reply (a truncated read on a real socket).
	FaultTruncate
	// FaultDelay makes a reply arrive after the prober's timeout with
	// probability Prob per reply: the router answered, but the prober
	// observes silence.
	FaultDelay
	// FaultDuplicate duplicates a reply with probability Prob. The duplicate
	// gives the reply a second, independent chance to survive the network's
	// configured loss, so duplication *improves* delivery — the one benign
	// fault, included because deduplication bugs are a classic collector
	// failure.
	FaultDuplicate
	// FaultRateStorm overrides the reply rate limit of the scoped routers
	// with a much tighter token bucket (Rate tokens/tick, Burst capacity)
	// while active. Scope: Router ("" = all routers).
	FaultRateStorm
	// FaultChurn reshuffles equal-cost path choices every churnPeriod clock
	// ticks while active, modelling mid-walk topology/routing churn even
	// for per-flow (Paris-stable) probing.
	FaultChurn

	// The kinds below are byzantine: instead of losing or mangling traffic,
	// the network actively lies. They model the "Misleading Stars" class of
	// adversarial responders that make tomography infer structure that does
	// not exist.

	// FaultLiar makes scoped routers answer indirect probes (time-exceeded,
	// unreachables) with a rotating spoofed source address drawn from the
	// topology's real interfaces: every reply claims to come from a different
	// router. Scope: Router ("" = all routers); Prob per reply.
	FaultLiar
	// FaultAliasConfuse makes every scoped router answer indirect probes with
	// one shared source address (anycast-style): distinct interfaces at
	// different hop distances collapse onto a single identity. Scope: Router
	// ("" = all routers); Addr optionally pins the shared address (default:
	// the topology's lowest non-host interface address).
	FaultAliasConfuse
	// FaultHiddenHop turns scoped routers into MPLS-style transparent
	// forwarders while active: they decrement TTL and forward exactly as
	// before, but never generate ICMP (no time-exceeded, no unreachables).
	// The hop exists, consumes a TTL, and is unobservable. Scope: Router
	// ("" = all routers).
	FaultHiddenHop
	// FaultEcho makes scoped routers answer probes they would otherwise
	// reject with an ICMP error (TTL expiry, unassigned destination) with a
	// fabricated alive reply whose source mirrors the probe's destination:
	// every address the collector asks about appears to exist. Scope: Router
	// ("" = all routers); Prob per reply.
	FaultEcho
)

// Adversarial reports whether the kind is byzantine (the network lies) rather
// than benign (the network loses, mangles, or delays).
func (k FaultKind) Adversarial() bool {
	switch k {
	case FaultLiar, FaultAliasConfuse, FaultHiddenHop, FaultEcho:
		return true
	}
	return false
}

var faultKindNames = map[FaultKind]string{
	FaultLinkFlap:     "link-flap",
	FaultBlackhole:    "blackhole",
	FaultCorrupt:      "corrupt",
	FaultTruncate:     "truncate",
	FaultDelay:        "delay",
	FaultDuplicate:    "duplicate",
	FaultRateStorm:    "rate-storm",
	FaultChurn:        "churn",
	FaultLiar:         "liar",
	FaultAliasConfuse: "alias-confuse",
	FaultHiddenHop:    "hidden-hop",
	FaultEcho:         "echo",
}

// FaultKinds lists every known kind in enum order, for consumers that need a
// deterministic iteration (telemetry registration, documentation tables).
var FaultKinds = []FaultKind{
	FaultLinkFlap, FaultBlackhole, FaultCorrupt, FaultTruncate, FaultDelay,
	FaultDuplicate, FaultRateStorm, FaultChurn,
	FaultLiar, FaultAliasConfuse, FaultHiddenHop, FaultEcho,
}

func (k FaultKind) String() string {
	if s, ok := faultKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// MarshalJSON renders the kind as its stable string name.
func (k FaultKind) MarshalJSON() ([]byte, error) {
	s, ok := faultKindNames[k]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown fault kind %d", uint8(k))
	}
	return json.Marshal(s)
}

// ErrUnknownFaultKind is returned when a fault plan names a kind this build
// does not know — a plan written for a newer collector, or a typo. Callers
// match it with errors.Is to distinguish schema drift from malformed JSON.
var ErrUnknownFaultKind = errors.New("netsim: unknown fault kind")

// UnmarshalJSON parses a fault kind from its string name. Unknown or future
// kind names fail with ErrUnknownFaultKind instead of silently decoding to an
// arbitrary value.
func (k *FaultKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for kind, name := range faultKindNames {
		if name == s {
			*k = kind
			return nil
		}
	}
	return fmt.Errorf("%w %q", ErrUnknownFaultKind, s)
}

// churnPeriod is how many clock ticks one churn epoch lasts: equal-cost
// decisions are stable within an epoch and reshuffle at its boundary.
const churnPeriod = 16

// Fault is one scheduled fault. The window [From, Until) is expressed in the
// network's virtual clock, which ticks once per injected probe; Until == 0
// leaves the fault active forever.
type Fault struct {
	Kind FaultKind `json:"kind"`
	// From and Until bound the active window on the virtual clock.
	From  uint64 `json:"from,omitempty"`
	Until uint64 `json:"until,omitempty"`
	// Router scopes blackholes and rate storms to one named router; empty
	// means every router.
	Router string `json:"router,omitempty"`
	// Subnet scopes a link flap to one subnet by CIDR prefix (required for
	// FaultLinkFlap, ignored otherwise).
	Subnet string `json:"subnet,omitempty"`
	// Prob is the per-reply probability for corrupt/truncate/delay/duplicate
	// and the byzantine liar/echo kinds.
	Prob float64 `json:"prob,omitempty"`
	// Rate and Burst configure the override token bucket of a rate storm.
	Rate  float64 `json:"rate,omitempty"`
	Burst float64 `json:"burst,omitempty"`
	// Addr pins the shared source address of an alias-confuse fault (dotted
	// quad); empty selects the topology's lowest non-host interface address.
	Addr string `json:"addr,omitempty"`
}

func (f Fault) active(clock uint64) bool {
	return clock >= f.From && (f.Until == 0 || clock < f.Until)
}

// validate checks the fields that can be checked without a topology.
func (f Fault) validate(i int) error {
	if _, ok := faultKindNames[f.Kind]; !ok {
		return fmt.Errorf("netsim: fault %d: %w %d", i, ErrUnknownFaultKind, uint8(f.Kind))
	}
	if f.Until != 0 && f.Until <= f.From {
		return fmt.Errorf("netsim: fault %d (%v): empty window [%d,%d)", i, f.Kind, f.From, f.Until)
	}
	switch f.Kind {
	case FaultCorrupt, FaultTruncate, FaultDelay, FaultDuplicate, FaultLiar, FaultEcho:
		if f.Prob <= 0 || f.Prob > 1 {
			return fmt.Errorf("netsim: fault %d (%v): prob %v outside (0,1]", i, f.Kind, f.Prob)
		}
	case FaultLinkFlap:
		if f.Subnet == "" {
			return fmt.Errorf("netsim: fault %d (link-flap): subnet prefix required", i)
		}
	case FaultRateStorm:
		if f.Rate < 0 || f.Burst < 1 {
			return fmt.Errorf("netsim: fault %d (rate-storm): need rate >= 0 and burst >= 1, got rate=%v burst=%v",
				i, f.Rate, f.Burst)
		}
	case FaultAliasConfuse:
		if f.Addr != "" {
			if _, err := ipv4.ParseAddr(f.Addr); err != nil {
				return fmt.Errorf("netsim: fault %d (alias-confuse): bad addr %q: %v", i, f.Addr, err)
			}
		}
	}
	return nil
}

// FaultPlan is a composable, deterministic schedule of faults. All random
// draws a plan causes come from a stream seeded with Seed, independent of the
// network's own loss/IPID stream, so the same plan over the same probe
// sequence reproduces the same pathologies exactly.
type FaultPlan struct {
	Seed   int64   `json:"seed"`
	Faults []Fault `json:"faults"`
}

// Validate checks the plan's internal consistency (window ordering,
// probability ranges, required scopes). Scope names are resolved against a
// concrete topology by InstallFaults.
func (p FaultPlan) Validate() error {
	for i, f := range p.Faults {
		if err := f.validate(i); err != nil {
			return err
		}
	}
	return nil
}

// ReadFaultPlan decodes a JSON fault plan (the schema documented in
// DESIGN.md) and validates it.
func ReadFaultPlan(r io.Reader) (FaultPlan, error) {
	var p FaultPlan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return FaultPlan{}, fmt.Errorf("netsim: fault plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return FaultPlan{}, err
	}
	return p, nil
}

// WriteFaultPlan encodes the plan as indented JSON.
func WriteFaultPlan(w io.Writer, p FaultPlan) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// FaultStats counts the pathologies a plan actually inflicted on a run.
type FaultStats struct {
	FlapDrops      uint64 // packets dropped on a flapped subnet
	BlackholeDrops uint64 // packets swallowed by a blackholed router
	Corrupted      uint64 // replies with flipped bytes
	Truncated      uint64 // replies cut short
	Delayed        uint64 // replies arriving after the timeout (seen as silence)
	Duplicated     uint64 // replies given a duplicate delivery chance
	StormDrops     uint64 // replies suppressed by a rate-limit storm

	// Byzantine accounting: replies that lied rather than failed.
	LiarSpoofs  uint64 // replies sent with a rotating spoofed source
	AliasShares uint64 // replies collapsed onto the shared anycast source
	HiddenDrops uint64 // ICMP errors suppressed by a transparent hidden hop
	EchoMirrors uint64 // fabricated alive replies mirroring the probed address
}

// Total returns the number of individual fault events inflicted.
func (s FaultStats) Total() uint64 {
	return s.FlapDrops + s.BlackholeDrops + s.Corrupted + s.Truncated +
		s.Delayed + s.Duplicated + s.StormDrops +
		s.LiarSpoofs + s.AliasShares + s.HiddenDrops + s.EchoMirrors
}

// Byzantine returns the number of lying-responder events inflicted (spoofed,
// shared, suppressed, or fabricated replies).
func (s FaultStats) Byzantine() uint64 {
	return s.LiarSpoofs + s.AliasShares + s.HiddenDrops + s.EchoMirrors
}

// faultCounters is the live, atomically-advanced mirror of FaultStats. It is
// a distinct type so the exported snapshot can be read plainly: these fields
// are only ever touched through sync/atomic, FaultStats fields never are.
type faultCounters struct {
	FlapDrops      uint64
	BlackholeDrops uint64
	Corrupted      uint64
	Truncated      uint64
	Delayed        uint64
	Duplicated     uint64
	StormDrops     uint64
	LiarSpoofs     uint64
	AliasShares    uint64
	HiddenDrops    uint64
	EchoMirrors    uint64
}

// faultState is a fault plan compiled against one network: scope names
// resolved to topology objects, with a dedicated random stream. The stream is
// striped by responding router exactly like the network's own (see rngShard),
// so concurrent injections draw their pathologies without a shared lock; the
// stats fields are advanced atomically for the same reason.
type faultState struct {
	plan   FaultPlan
	shards [numShards]rngShard
	stats  faultCounters
	flaps  []scopedFault[*Subnet]
	holes  []scopedFault[*Router] // nil target = every router
	storms []stormFault
	churns []Fault
	// mangles are the per-reply probabilistic faults, applied in plan order.
	mangles []Fault

	// Byzantine state: lying responders, resolved against the topology.
	liars   []scopedFault[*Router] // nil target = every router
	aliases []aliasFault
	hidden  []scopedFault[*Router]
	echoes  []scopedFault[*Router]
	// ifacePool is the rotation space liar faults spoof from: every non-host
	// interface address in topology order. Built only when a liar is armed.
	ifacePool []ipv4.Addr
}

type scopedFault[T any] struct {
	Fault
	target T
}

type stormFault struct {
	Fault
	target *Router // nil = every router
	// buckets holds the override token bucket per router index, pre-resolved
	// at install time so the injection path never mutates shared fault
	// structure; nil entries are routers outside the storm's scope.
	buckets []*TokenBucket
}

type aliasFault struct {
	Fault
	target *Router   // nil = every router
	shared ipv4.Addr // the anycast source every scoped reply collapses onto
}

// InstallFaults validates plan, resolves its scopes against the network's
// topology, and arms it. Installing a plan replaces any previous one and
// resets the fault statistics; install FaultPlan{} to disarm.
func (n *Network) InstallFaults(plan FaultPlan) error {
	if err := plan.Validate(); err != nil {
		return err
	}
	fs := &faultState{plan: plan}
	for i := range fs.shards {
		// The fault stream stays independent of the network's loss/IPID
		// stream (same perturbed base seed as always), striped per router.
		sh := &fs.shards[i]
		sh.mu.Lock()
		sh.rng = rand.New(rand.NewSource(shardSeed(plan.Seed^0x66617531, i)))
		sh.mu.Unlock()
	}
	for i, f := range plan.Faults {
		switch f.Kind {
		case FaultLinkFlap:
			// Resolve the CIDR against the topology's subnets.
			var sub *Subnet
			for _, s := range n.Topo.Subnets {
				if s.Prefix.String() == f.Subnet {
					sub = s
					break
				}
			}
			if sub == nil {
				return fmt.Errorf("netsim: fault %d (link-flap): no subnet %q in topology", i, f.Subnet)
			}
			fs.flaps = append(fs.flaps, scopedFault[*Subnet]{f, sub})
		case FaultBlackhole:
			r, err := n.resolveRouter(i, f)
			if err != nil {
				return err
			}
			fs.holes = append(fs.holes, scopedFault[*Router]{f, r})
		case FaultRateStorm:
			r, err := n.resolveRouter(i, f)
			if err != nil {
				return err
			}
			buckets := make([]*TokenBucket, len(n.Topo.Routers))
			for _, tr := range n.Topo.Routers {
				if r == nil || r == tr {
					buckets[tr.idx] = NewTokenBucket(f.Rate, f.Burst)
				}
			}
			fs.storms = append(fs.storms, stormFault{f, r, buckets})
		case FaultChurn:
			fs.churns = append(fs.churns, f)
		case FaultLiar:
			r, err := n.resolveRouter(i, f)
			if err != nil {
				return err
			}
			fs.liars = append(fs.liars, scopedFault[*Router]{f, r})
		case FaultAliasConfuse:
			r, err := n.resolveRouter(i, f)
			if err != nil {
				return err
			}
			shared, err := n.resolveSharedAddr(i, f)
			if err != nil {
				return err
			}
			fs.aliases = append(fs.aliases, aliasFault{f, r, shared})
		case FaultHiddenHop:
			r, err := n.resolveRouter(i, f)
			if err != nil {
				return err
			}
			fs.hidden = append(fs.hidden, scopedFault[*Router]{f, r})
		case FaultEcho:
			r, err := n.resolveRouter(i, f)
			if err != nil {
				return err
			}
			fs.echoes = append(fs.echoes, scopedFault[*Router]{f, r})
		default:
			fs.mangles = append(fs.mangles, f)
		}
	}
	if len(fs.liars) > 0 {
		// The spoof rotation space, in deterministic topology order.
		for _, r := range n.Topo.Routers {
			if r.IsHost {
				continue
			}
			for _, ifc := range r.Ifaces {
				fs.ifacePool = append(fs.ifacePool, ifc.Addr)
			}
		}
	}
	// Publish atomically: the injection path loads n.faults without a lock.
	// Install the plan before probing starts — replacing a plan mid-flight is
	// safe (in-flight injections finish against whichever state they loaded)
	// but makes the transition boundary nondeterministic.
	n.faults.Store(fs)
	return nil
}

func (n *Network) resolveRouter(i int, f Fault) (*Router, error) {
	if f.Router == "" {
		return nil, nil
	}
	for _, r := range n.Topo.Routers {
		if r.Name == f.Router {
			return r, nil
		}
	}
	return nil, fmt.Errorf("netsim: fault %d (%v): no router %q in topology", i, f.Kind, f.Router)
}

// resolveSharedAddr resolves the anycast source of an alias-confuse fault:
// the pinned Addr when set, otherwise the topology's lowest non-host
// interface address (deterministic whatever the topology's internal order).
func (n *Network) resolveSharedAddr(i int, f Fault) (ipv4.Addr, error) {
	if f.Addr != "" {
		a, err := ipv4.ParseAddr(f.Addr)
		if err != nil {
			return ipv4.Zero, fmt.Errorf("netsim: fault %d (alias-confuse): bad addr %q: %v", i, f.Addr, err)
		}
		return a, nil
	}
	var shared ipv4.Addr
	for _, r := range n.Topo.Routers {
		if r.IsHost {
			continue
		}
		for _, ifc := range r.Ifaces {
			if shared.IsZero() || ifc.Addr < shared {
				shared = ifc.Addr
			}
		}
	}
	if shared.IsZero() {
		return ipv4.Zero, fmt.Errorf("netsim: fault %d (alias-confuse): topology has no non-host interface", i)
	}
	return shared, nil
}

// FaultStats returns a snapshot of the fault accounting; zero when no plan is
// installed. The per-field loads are individually atomic, so a snapshot taken
// while probing is in flight is consistent per counter.
func (n *Network) FaultStats() FaultStats {
	fs := n.faults.Load()
	if fs == nil {
		return FaultStats{}
	}
	s := &fs.stats
	return FaultStats{
		FlapDrops:      atomic.LoadUint64(&s.FlapDrops),
		BlackholeDrops: atomic.LoadUint64(&s.BlackholeDrops),
		Corrupted:      atomic.LoadUint64(&s.Corrupted),
		Truncated:      atomic.LoadUint64(&s.Truncated),
		Delayed:        atomic.LoadUint64(&s.Delayed),
		Duplicated:     atomic.LoadUint64(&s.Duplicated),
		StormDrops:     atomic.LoadUint64(&s.StormDrops),
		LiarSpoofs:     atomic.LoadUint64(&s.LiarSpoofs),
		AliasShares:    atomic.LoadUint64(&s.AliasShares),
		HiddenDrops:    atomic.LoadUint64(&s.HiddenDrops),
		EchoMirrors:    atomic.LoadUint64(&s.EchoMirrors),
	}
}

// --- engine-side queries ---
//
// These run on the lock-free injection path. Fault windows and scope checks
// read immutable compiled state; statistics advance atomically; probabilistic
// draws lock only the responding router's stripe of the fault stream.

// subnetDown reports whether s is currently flapped.
func (n *Network) subnetDown(s *Subnet) bool {
	fs := n.faults.Load()
	if fs == nil || s == nil {
		return false
	}
	for i := range fs.flaps {
		f := &fs.flaps[i]
		if f.target == s && f.active(n.clock.Load()) {
			atomic.AddUint64(&fs.stats.FlapDrops, 1)
			n.observeFault(FaultLinkFlap, "link-flap drop subnet="+s.Prefix.String())
			return true
		}
	}
	return false
}

// blackholed reports whether r currently swallows every packet.
func (n *Network) blackholed(r *Router) bool {
	fs := n.faults.Load()
	if fs == nil {
		return false
	}
	for i := range fs.holes {
		f := &fs.holes[i]
		if (f.target == nil || f.target == r) && f.active(n.clock.Load()) {
			atomic.AddUint64(&fs.stats.BlackholeDrops, 1)
			n.observeFault(FaultBlackhole, "blackhole drop router="+r.Name)
			return true
		}
	}
	return false
}

// stormAllows consults any active rate-storm bucket scoped to r; it reports
// false when a storm suppresses the reply. The buckets were pre-resolved per
// router at install time and synchronize internally.
func (n *Network) stormAllows(r *Router) bool {
	fs := n.faults.Load()
	if fs == nil {
		return true
	}
	for i := range fs.storms {
		st := &fs.storms[i]
		if st.target != nil && st.target != r {
			continue
		}
		if !st.active(n.clock.Load()) {
			continue
		}
		if b := st.buckets[r.idx]; b != nil && !b.Allow(n.clock.Load()) {
			atomic.AddUint64(&fs.stats.StormDrops, 1)
			n.observeFault(FaultRateStorm, "rate-storm drop router="+r.Name)
			return false
		}
	}
	return true
}

// churnSalt perturbs the ECMP hash while a churn fault is active: choices
// stay stable within one churnPeriod epoch and reshuffle at epoch boundaries.
func (n *Network) churnSalt() uint64 {
	fs := n.faults.Load()
	if fs == nil {
		return 0
	}
	for i := range fs.churns {
		if fs.churns[i].active(n.clock.Load()) {
			return (n.clock.Load()/churnPeriod + 1) * 0x9e3779b97f4a7c15
		}
	}
	return 0
}

// replyDelayed reports whether an otherwise-delivered reply from r misses the
// prober's timeout window.
func (n *Network) replyDelayed(r *Router) bool {
	fs := n.faults.Load()
	if fs == nil {
		return false
	}
	for i := range fs.mangles {
		f := &fs.mangles[i]
		if f.Kind == FaultDelay && f.active(n.clock.Load()) && fs.shards[shardIndex(r)].chance(f.Prob) {
			atomic.AddUint64(&fs.stats.Delayed, 1)
			n.observeFault(FaultDelay, "delayed reply (seen as silence)")
			return true
		}
	}
	return false
}

// duplicateChance reports whether a reply from r about to be lost gets a
// second delivery chance from a duplication fault.
func (n *Network) duplicateChance(r *Router) bool {
	fs := n.faults.Load()
	if fs == nil {
		return false
	}
	for i := range fs.mangles {
		f := &fs.mangles[i]
		if f.Kind == FaultDuplicate && f.active(n.clock.Load()) && fs.shards[shardIndex(r)].chance(f.Prob) {
			atomic.AddUint64(&fs.stats.Duplicated, 1)
			n.observeFault(FaultDuplicate, "duplicated reply")
			return true
		}
	}
	return false
}

// mangleReply applies corruption and truncation faults to a reply encoded
// from router r. It may return the bytes modified in place, a shorter slice,
// or nil when truncation consumed the whole datagram.
func (n *Network) mangleReply(raw []byte, r *Router) []byte {
	fs := n.faults.Load()
	if fs == nil || len(raw) == 0 {
		return raw
	}
	sh := &fs.shards[shardIndex(r)]
	for i := range fs.mangles {
		f := &fs.mangles[i]
		if !f.active(n.clock.Load()) {
			continue
		}
		switch f.Kind {
		case FaultCorrupt:
			if sh.chance(f.Prob) {
				// Flip 1–3 bytes with non-zero masks; checksums are left
				// stale, so the prober's decoder rejects the reply.
				flips := 1 + sh.intn(3)
				for j := 0; j < flips; j++ {
					raw[sh.intn(len(raw))] ^= byte(1 + sh.intn(255))
				}
				atomic.AddUint64(&fs.stats.Corrupted, 1)
				n.observeFault(FaultCorrupt, "corrupted reply")
			}
		case FaultTruncate:
			if sh.chance(f.Prob) {
				raw = raw[:sh.intn(len(raw))]
				atomic.AddUint64(&fs.stats.Truncated, 1)
				n.observeFault(FaultTruncate, "truncated reply")
				if len(raw) == 0 {
					return nil
				}
			}
		}
	}
	return raw
}

// hiddenHop reports whether r currently forwards transparently: it keeps
// decrementing TTL and forwarding, but generates no ICMP of any kind while
// the fault is active. Called only at a point where r was about to generate
// a reply — so every true return is one suppressed answer.
func (n *Network) hiddenHop(r *Router) bool {
	fs := n.faults.Load()
	if fs == nil {
		return false
	}
	for i := range fs.hidden {
		f := &fs.hidden[i]
		if (f.target == nil || f.target == r) && f.active(n.clock.Load()) {
			atomic.AddUint64(&fs.stats.HiddenDrops, 1)
			n.observeFault(FaultHiddenHop, "hidden-hop suppressed reply router="+r.Name)
			return true
		}
	}
	return false
}

// spoofSource applies the lying-responder faults (alias-confuse, then liar)
// to the source address r is about to answer an indirect probe with,
// returning the possibly rewritten address. Alias-confuse wins when both are
// armed: the anycast collapse is deterministic, the liar draw is not.
func (n *Network) spoofSource(r *Router, src ipv4.Addr) ipv4.Addr {
	fs := n.faults.Load()
	if fs == nil {
		return src
	}
	clock := n.clock.Load()
	for i := range fs.aliases {
		f := &fs.aliases[i]
		if (f.target == nil || f.target == r) && f.active(clock) {
			atomic.AddUint64(&fs.stats.AliasShares, 1)
			n.observeFault(FaultAliasConfuse, "alias-confuse shared source router="+r.Name)
			return f.shared
		}
	}
	for i := range fs.liars {
		f := &fs.liars[i]
		if (f.target == nil || f.target == r) && f.active(clock) &&
			len(fs.ifacePool) > 0 && fs.shards[shardIndex(r)].chance(f.Prob) {
			spoofed := fs.ifacePool[fs.shards[shardIndex(r)].intn(len(fs.ifacePool))]
			atomic.AddUint64(&fs.stats.LiarSpoofs, 1)
			n.observeFault(FaultLiar, "liar spoofed source router="+r.Name)
			return spoofed
		}
	}
	return src
}

// echoMirrors reports whether r, about to answer a probe with an ICMP error,
// instead fabricates an alive reply mirroring the probe's destination back as
// its source.
func (n *Network) echoMirrors(r *Router) bool {
	fs := n.faults.Load()
	if fs == nil {
		return false
	}
	for i := range fs.echoes {
		f := &fs.echoes[i]
		if (f.target == nil || f.target == r) && f.active(n.clock.Load()) &&
			fs.shards[shardIndex(r)].chance(f.Prob) {
			atomic.AddUint64(&fs.stats.EchoMirrors, 1)
			n.observeFault(FaultEcho, "echo fabricated alive reply router="+r.Name)
			return true
		}
	}
	return false
}

// RandomFaultPlan generates a deterministic, seed-dependent fault plan over
// t: a handful of scheduled faults whose scopes are drawn from the
// topology's routers and core subnets. The chaos harness feeds tracenet
// sessions with these plans to exercise every fault path.
func RandomFaultPlan(t *Topology, seed int64) FaultPlan {
	rng := rand.New(rand.NewSource(seed ^ 0x63616f73))
	var routers []*Router
	for _, r := range t.Routers {
		if !r.IsHost {
			routers = append(routers, r)
		}
	}
	subnets := t.CoreSubnets()

	plan := FaultPlan{Seed: seed}
	window := func() (uint64, uint64) {
		from := uint64(rng.Intn(4000))
		return from, from + 200 + uint64(rng.Intn(3000))
	}
	nFaults := 2 + rng.Intn(4)
	for i := 0; i < nFaults; i++ {
		from, until := window()
		switch rng.Intn(8) {
		case 0:
			if len(subnets) == 0 {
				continue
			}
			s := subnets[rng.Intn(len(subnets))]
			plan.Faults = append(plan.Faults, Fault{
				Kind: FaultLinkFlap, From: from, Until: until, Subnet: s.Prefix.String(),
			})
		case 1:
			if len(routers) == 0 {
				continue
			}
			r := routers[rng.Intn(len(routers))]
			plan.Faults = append(plan.Faults, Fault{
				Kind: FaultBlackhole, From: from, Until: until, Router: r.Name,
			})
		case 2:
			plan.Faults = append(plan.Faults, Fault{
				Kind: FaultCorrupt, From: from, Until: until, Prob: 0.05 + 0.4*rng.Float64(),
			})
		case 3:
			plan.Faults = append(plan.Faults, Fault{
				Kind: FaultTruncate, From: from, Until: until, Prob: 0.05 + 0.3*rng.Float64(),
			})
		case 4:
			plan.Faults = append(plan.Faults, Fault{
				Kind: FaultDelay, From: from, Until: until, Prob: 0.05 + 0.3*rng.Float64(),
			})
		case 5:
			plan.Faults = append(plan.Faults, Fault{
				Kind: FaultDuplicate, From: from, Until: until, Prob: 0.1 + 0.4*rng.Float64(),
			})
		case 6:
			f := Fault{Kind: FaultRateStorm, From: from, Until: until,
				Rate: 0.02 + 0.1*rng.Float64(), Burst: float64(1 + rng.Intn(4))}
			if len(routers) > 0 && rng.Intn(2) == 0 {
				f.Router = routers[rng.Intn(len(routers))].Name
			}
			plan.Faults = append(plan.Faults, f)
		case 7:
			plan.Faults = append(plan.Faults, Fault{Kind: FaultChurn, From: from, Until: until})
		}
	}
	// Every generated plan must validate by construction.
	if err := plan.Validate(); err != nil {
		panic(fmt.Sprintf("netsim: RandomFaultPlan produced an invalid plan: %v", err))
	}
	return plan
}

// RandomAdversarialPlan generates a deterministic, seed-dependent plan of
// byzantine faults over t. It is a separate generator from RandomFaultPlan —
// extending that one's kind switch would silently reshuffle every committed
// benign plan — and uses its own seed perturbation so the two streams never
// correlate. Adversarial faults are mostly always-on: the interesting regime
// is sustained lying, not a transient.
func RandomAdversarialPlan(t *Topology, seed int64) FaultPlan {
	rng := rand.New(rand.NewSource(seed ^ 0x61647673))
	var routers []*Router
	for _, r := range t.Routers {
		if !r.IsHost {
			routers = append(routers, r)
		}
	}

	plan := FaultPlan{Seed: seed}
	scope := func() string {
		// Half the faults hit every router; the rest pick one victim.
		if len(routers) == 0 || rng.Intn(2) == 0 {
			return ""
		}
		return routers[rng.Intn(len(routers))].Name
	}
	nFaults := 1 + rng.Intn(3)
	for i := 0; i < nFaults; i++ {
		switch rng.Intn(4) {
		case 0:
			plan.Faults = append(plan.Faults, Fault{
				Kind: FaultLiar, Router: scope(), Prob: 0.2 + 0.5*rng.Float64(),
			})
		case 1:
			plan.Faults = append(plan.Faults, Fault{
				Kind: FaultAliasConfuse, Router: scope(),
			})
		case 2:
			plan.Faults = append(plan.Faults, Fault{
				Kind: FaultHiddenHop, Router: scope(),
			})
		case 3:
			plan.Faults = append(plan.Faults, Fault{
				Kind: FaultEcho, Router: scope(), Prob: 0.2 + 0.4*rng.Float64(),
			})
		}
	}
	if err := plan.Validate(); err != nil {
		panic(fmt.Sprintf("netsim: RandomAdversarialPlan produced an invalid plan: %v", err))
	}
	return plan
}
