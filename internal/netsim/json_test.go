package netsim

import (
	"bytes"
	"strings"
	"testing"

	"tracenet/internal/ipv4"
	"tracenet/internal/wire"
)

func TestJSONRoundTrip(t *testing.T) {
	topo := fig3(t)
	// Dress it up with non-default state.
	topo.Routers[4].IndirectPolicy = PolicyShortestPath
	topo.Routers[3].ReplyLoss = 0.25
	topo.Routers[2].EmitUnreachable = true
	topo.Routers[2].DirectProtos = ProtoMaskICMP
	topo.IfaceByAddr(addr("10.0.2.2")).Responsive = false
	topo.SubnetByPrefix(ipv4.MustParsePrefix("10.0.3.0/31")).Unresponsive = true

	var buf bytes.Buffer
	if err := topo.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Routers) != len(topo.Routers) || len(got.Subnets) != len(topo.Subnets) {
		t.Fatalf("sizes: %d/%d routers, %d/%d subnets",
			len(got.Routers), len(topo.Routers), len(got.Subnets), len(topo.Subnets))
	}
	for _, orig := range topo.Routers {
		var round *Router
		for _, r := range got.Routers {
			if r.Name == orig.Name {
				round = r
			}
		}
		if round == nil {
			t.Fatalf("router %s lost", orig.Name)
		}
		if round.IsHost != orig.IsHost ||
			round.DirectPolicy != orig.DirectPolicy ||
			round.IndirectPolicy != orig.IndirectPolicy ||
			round.DirectProtos != orig.DirectProtos ||
			round.IndirectProtos != orig.IndirectProtos ||
			round.EmitUnreachable != orig.EmitUnreachable ||
			round.ReplyLoss != orig.ReplyLoss ||
			len(round.Ifaces) != len(orig.Ifaces) {
			t.Fatalf("router %s changed: %+v vs %+v", orig.Name, round, orig)
		}
	}
	if got.IfaceByAddr(addr("10.0.2.2")).Responsive {
		t.Fatal("unresponsive interface flag lost")
	}
	if !got.SubnetByPrefix(ipv4.MustParsePrefix("10.0.3.0/31")).Unresponsive {
		t.Fatal("unresponsive subnet flag lost")
	}

	// Behavioural check: the round-tripped network answers probes the same.
	n := New(got, Config{})
	p, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	reply := exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), addr("10.0.2.3"), 8, 1, 1))
	if reply == nil || reply.IP.Src != addr("10.0.2.3") {
		t.Fatalf("round-tripped network misbehaves: %+v", reply)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":        "not json",
		"bad prefix":     `{"subnets":[{"prefix":"10.0.0.0/99"}],"routers":[]}`,
		"bad policy":     `{"subnets":[{"prefix":"10.0.0.0/30"}],"routers":[{"name":"a","direct_policy":"bogus","ifaces":[{"addr":"10.0.0.1"}]}]}`,
		"uncovered addr": `{"subnets":[{"prefix":"10.0.0.0/30"}],"routers":[{"name":"a","ifaces":[{"addr":"172.0.0.1"}]}]}`,
		"bad addr":       `{"subnets":[{"prefix":"10.0.0.0/30"}],"routers":[{"name":"a","ifaces":[{"addr":"nope"}]}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadJSON succeeded", name)
		}
	}
}
