// Chaos harness: tracenet sessions over an Internet2-like topology under
// randomized fault plans. Lives in package netsim_test so it can drive the
// full stack (topo → netsim → probe → core → metrics) against the fault
// injector without an import cycle.
package netsim_test

import (
	"testing"

	"tracenet/internal/core"
	"tracenet/internal/experiments"
	"tracenet/internal/ipv4"
	"tracenet/internal/metrics"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

// chaosBudget bounds one session's packets; hitting it fails the run, so a
// passing test doubles as a termination proof for every fault plan.
const chaosBudget = 300_000

// chaosRun traces every Internet2 evaluation target through a network with
// the given fault plan installed and returns the session plus its prober.
func chaosRun(t *testing.T, r *topo.Research, plan *netsim.FaultPlan, opts probe.Options) (*core.Session, *probe.Prober, *netsim.Network) {
	t.Helper()
	n := netsim.New(r.Topo, netsim.Config{Seed: 1})
	if plan != nil {
		if err := n.InstallFaults(*plan); err != nil {
			t.Fatalf("installing plan: %v", err)
		}
	}
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = true
	if opts.Budget == 0 {
		opts.Budget = chaosBudget
	}
	pr := probe.New(port, port.LocalAddr(), opts)
	sess := core.NewSession(pr, core.Config{})
	for _, dst := range r.Targets() {
		if _, err := sess.Trace(dst); err != nil {
			t.Fatalf("session aborted tracing %v: %v", dst, err)
		}
	}
	return sess, pr, n
}

// classifyRun classifies the session's collection against the originals and
// returns the per-original class, keyed by original prefix.
func classifyRun(r *topo.Research, sess *core.Session) map[ipv4.Prefix]metrics.Class {
	collected := experiments.CollectedPrefixes(sess.Subnets())
	originals := make([]metrics.Original, len(r.Originals))
	for i, o := range r.Originals {
		originals[i] = metrics.Original{
			Prefix:                o.Prefix,
			TotallyUnresponsive:   o.TotallyUnresponsive,
			PartiallyUnresponsive: o.PartiallyUnresponsive,
		}
	}
	out := map[ipv4.Prefix]metrics.Class{}
	for i, oc := range metrics.Classify(originals, collected) {
		out[originals[i].Prefix] = oc.Class
	}
	return out
}

// exactMatches filters classifyRun down to the exactly-collected originals.
func exactMatches(classes map[ipv4.Prefix]metrics.Class) map[ipv4.Prefix]bool {
	out := map[ipv4.Prefix]bool{}
	for p, c := range classes {
		if c == metrics.Exact {
			out[p] = true
		}
	}
	return out
}

// missing reports whether class c means the original went entirely unseen.
func missing(c metrics.Class) bool {
	return c == metrics.Missing || c == metrics.MissingUnresponsive
}

// TestChaosResilience is the headline robustness property: across 20 seeded
// random fault plans, every session over the Internet2-like topology must
//
//   - terminate (within the probe budget) without error or panic,
//   - never fabricate: an original collected exactly under faults must have
//     been observed (non-missing) by the fault-free run, and
//   - annotate its degradation whenever definite fault evidence was seen.
//
// The fabrication check is deliberately looser than "exact ⊆ baseline
// exact": faults only remove information, but removing addresses from a
// baseline *overestimate* can sharpen it into an exact match. What faults
// must never do is conjure an exact match of an original the clean run could
// not see at all.
func TestChaosResilience(t *testing.T) {
	r := topo.Internet2()
	baseSess, _, _ := chaosRun(t, r, nil, probe.Options{})
	baseClasses := classifyRun(r, baseSess)
	if len(exactMatches(baseClasses)) == 0 {
		t.Fatal("fault-free run collected no exact matches; harness is broken")
	}

	var totalFaultEvents, totalDegraded uint64
	for seed := int64(1); seed <= 20; seed++ {
		plan := netsim.RandomFaultPlan(r.Topo, seed)
		sess, pr, n := chaosRun(t, r, &plan, probe.Options{})

		for p := range exactMatches(classifyRun(r, sess)) {
			if missing(baseClasses[p]) {
				t.Errorf("seed %d: exact match %v was invisible to the fault-free run (fabricated under faults: %+v)",
					seed, p, plan)
			}
		}

		st := pr.Stats()
		totalFaultEvents += st.FaultEvents()
		deg := sess.DegradedSubnets()
		totalDegraded += uint64(len(deg))
		for _, s := range deg {
			// Confidence 0 is legal: a subnet whose fresh probes all faulted,
			// with membership resolved from the probe cache.
			if s.Confidence < 0 || s.Confidence >= 1 {
				t.Errorf("seed %d: degraded subnet %v confidence %v outside [0,1)", seed, s.Prefix, s.Confidence)
			}
		}
		if fs := n.FaultStats(); fs.Total() == 0 && st.FaultEvents() > 0 {
			t.Errorf("seed %d: prober saw fault events but the plan inflicted none", seed)
		}
	}
	// The 20 plans must actually exercise the fault machinery, and definite
	// fault evidence must surface as degraded annotations somewhere.
	if totalFaultEvents == 0 {
		t.Error("20 chaos seeds produced no observable fault events; plans too weak")
	}
	if totalDegraded == 0 {
		t.Error("20 chaos seeds never flagged a degraded subnet")
	}
}

// TestChaosDeterminism: the same fault plan over the same seeds reproduces
// the identical collection — the property that makes chaos failures
// debuggable.
func TestChaosDeterminism(t *testing.T) {
	r := topo.Internet2()
	plan := netsim.RandomFaultPlan(r.Topo, 7)
	s1, p1, _ := chaosRun(t, r, &plan, probe.Options{})
	s2, p2, _ := chaosRun(t, r, &plan, probe.Options{})
	if p1.Stats() != p2.Stats() {
		t.Errorf("stats differ across identical chaos runs:\n%+v\n%+v", p1.Stats(), p2.Stats())
	}
	a, b := s1.Subnets(), s2.Subnets()
	if len(a) != len(b) {
		t.Fatalf("collected %d vs %d subnets", len(a), len(b))
	}
	for i := range a {
		if a[i].Prefix != b[i].Prefix || len(a[i].Addrs) != len(b[i].Addrs) ||
			a[i].Degraded != b[i].Degraded || a[i].Confidence != b[i].Confidence {
			t.Errorf("subnet %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestBreakerReducesStormLoad is the load-shedding acceptance criterion:
// under a sustained ICMP rate-limit storm, enabling the circuit breaker must
// cut the packets sent by at least 30% while keeping the exact-match count
// within 10% of the breaker-less run.
func TestBreakerReducesStormLoad(t *testing.T) {
	r := topo.Internet2()
	storm := &netsim.FaultPlan{Seed: 9, Faults: []netsim.Fault{
		{Kind: netsim.FaultRateStorm, Rate: 0.05, Burst: 2},
	}}
	retry := &probe.RetryPolicy{MaxRetries: 2, BackoffBase: 8, BackoffMax: 64}

	sessOff, prOff, _ := chaosRun(t, r, storm, probe.Options{Retry: retry})
	sessOn, prOn, _ := chaosRun(t, r, storm, probe.Options{
		Retry:   retry,
		Breaker: &probe.BreakerConfig{Threshold: 6, Cooldown: 64, KeyBits: 24},
	})

	off, on := prOff.Stats(), prOn.Stats()
	if on.BreakerOpens == 0 || on.BreakerSkips == 0 {
		t.Fatalf("breaker never engaged under the storm: %+v", on)
	}
	reduction := 1 - float64(on.Sent)/float64(off.Sent)
	if reduction < 0.30 {
		t.Errorf("breaker cut Sent by %.1f%% (%d -> %d), want >= 30%%",
			100*reduction, off.Sent, on.Sent)
	}

	exOff := len(exactMatches(classifyRun(r, sessOff)))
	exOn := len(exactMatches(classifyRun(r, sessOn)))
	lo := int(float64(exOff) * 0.9)
	hi := exOff + (exOff+9)/10
	if exOn < lo || exOn > hi {
		t.Errorf("breaker changed exact matches beyond 10%%: %d without vs %d with", exOff, exOn)
	}
}
