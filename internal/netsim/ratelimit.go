package netsim

import "sync"

// TokenBucket is a deterministic token bucket driven by the network's virtual
// clock (one tick per injected probe). It models ICMP rate limiting on
// routers, which the paper identifies as a cause of cross-vantage
// disagreement (§4.2).
//
// A bucket synchronizes internally: concurrent injections that reach the same
// router contend only on that router's bucket, never on a network-wide lock.
type TokenBucket struct {
	// Rate is tokens added per clock tick; Burst is the bucket capacity.
	// Both are fixed at construction.
	Rate  float64
	Burst float64

	mu       sync.Mutex
	level    float64
	lastTick uint64
	primed   bool
}

// NewTokenBucket returns a bucket that starts full.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	return &TokenBucket{Rate: rate, Burst: burst}
}

// Allow consumes one token at virtual time tick, reporting whether the
// response may be sent. Safe for concurrent use; a nil bucket always allows.
func (tb *TokenBucket) Allow(tick uint64) bool {
	if tb == nil {
		return true
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if !tb.primed {
		tb.level = tb.Burst
		tb.lastTick = tick
		tb.primed = true
	}
	if tick > tb.lastTick {
		tb.level += float64(tick-tb.lastTick) * tb.Rate
		if tb.level > tb.Burst {
			tb.level = tb.Burst
		}
		tb.lastTick = tick
	}
	if tb.level >= 1 {
		tb.level--
		return true
	}
	return false
}
