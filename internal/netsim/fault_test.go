package netsim

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tracenet/internal/ipv4"
	"tracenet/internal/wire"
)

func TestConfigValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.0001, 2} {
		if _, err := NewChecked(fig3(t), Config{LossRate: bad}); err == nil {
			t.Errorf("NewChecked accepted LossRate %v", bad)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New did not panic on LossRate %v", bad)
				}
			}()
			New(fig3(t), Config{LossRate: bad})
		}()
	}
	// Both boundaries are legal: 0 (lossless) and 1 (fully silent).
	for _, ok := range []float64{0, 0.5, 1} {
		if _, err := NewChecked(fig3(t), Config{LossRate: ok}); err != nil {
			t.Errorf("NewChecked rejected LossRate %v: %v", ok, err)
		}
	}
}

// TestConcurrentNetworkAccess hammers one Network from several goroutines;
// the race detector verifies the internal mutex covers every entry point.
func TestConcurrentNetworkAccess(t *testing.T) {
	n := New(fig3(t), Config{Seed: 3})
	p := mustPort(t, n, "vantage")
	if err := n.InstallFaults(FaultPlan{Seed: 1, Faults: []Fault{
		{Kind: FaultCorrupt, Prob: 0.2},
		{Kind: FaultDelay, Prob: 0.1},
	}}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				pkt := wire.NewEchoRequest(p.LocalAddr(), addr("10.0.5.2"), uint8(1+i%8), uint16(g+1), uint16(i))
				raw, err := pkt.Encode()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := p.Exchange(raw); err != nil {
					t.Error(err)
					return
				}
				p.Wait(1)
				n.Counters()
				n.FaultStats()
				n.DistanceTo("vantage", addr("10.0.2.2"))
			}
		}(g)
	}
	wg.Wait()
	if probes, _ := n.Counters(); probes != 200 {
		t.Errorf("probes = %d, want 200", probes)
	}
}

func TestFaultPlanValidate(t *testing.T) {
	for name, plan := range map[string]FaultPlan{
		"unknown kind":     {Faults: []Fault{{Kind: FaultKind(99)}}},
		"empty window":     {Faults: []Fault{{Kind: FaultCorrupt, Prob: 0.5, From: 10, Until: 10}}},
		"inverted window":  {Faults: []Fault{{Kind: FaultCorrupt, Prob: 0.5, From: 10, Until: 5}}},
		"prob zero":        {Faults: []Fault{{Kind: FaultCorrupt}}},
		"prob over one":    {Faults: []Fault{{Kind: FaultDelay, Prob: 1.5}}},
		"flap no subnet":   {Faults: []Fault{{Kind: FaultLinkFlap}}},
		"storm zero burst": {Faults: []Fault{{Kind: FaultRateStorm, Rate: 0.1}}},
		"storm neg rate":   {Faults: []Fault{{Kind: FaultRateStorm, Rate: -1, Burst: 2}}},
	} {
		if err := plan.Validate(); err == nil {
			t.Errorf("%s: plan validated", name)
		}
	}
	good := FaultPlan{Seed: 5, Faults: []Fault{
		{Kind: FaultLinkFlap, Subnet: "10.0.2.0/24", From: 5, Until: 50},
		{Kind: FaultBlackhole, Router: "R2"},
		{Kind: FaultCorrupt, Prob: 1},
		{Kind: FaultRateStorm, Rate: 0.5, Burst: 2},
		{Kind: FaultChurn, From: 1},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

func TestInstallFaultsUnknownScopes(t *testing.T) {
	n := New(fig3(t), Config{})
	if err := n.InstallFaults(FaultPlan{Faults: []Fault{
		{Kind: FaultLinkFlap, Subnet: "192.168.0.0/24"},
	}}); err == nil || !strings.Contains(err.Error(), "no subnet") {
		t.Errorf("unknown flap subnet: err = %v", err)
	}
	if err := n.InstallFaults(FaultPlan{Faults: []Fault{
		{Kind: FaultBlackhole, Router: "R99"},
	}}); err == nil || !strings.Contains(err.Error(), "no router") {
		t.Errorf("unknown blackhole router: err = %v", err)
	}
	if err := n.InstallFaults(FaultPlan{Faults: []Fault{
		{Kind: FaultRateStorm, Router: "R99", Rate: 0.1, Burst: 1},
	}}); err == nil || !strings.Contains(err.Error(), "no router") {
		t.Errorf("unknown storm router: err = %v", err)
	}
}

// echoAt sends one echo request toward dst with the given TTL and returns the
// decoded reply (nil for silence).
func echoAt(t *testing.T, p *Port, dst ipv4.Addr, ttl uint8, seq uint16) *wire.Packet {
	t.Helper()
	return exchange(t, p, wire.NewEchoRequest(p.LocalAddr(), dst, ttl, 7, seq))
}

func TestLinkFlapWindow(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	// Flap the multi-access subnet S for clock ticks [2,4): the first probe
	// (clock 1) crosses it, the next two (clocks 2,3) die on it, the fourth
	// (clock 4) crosses again.
	if err := n.InstallFaults(FaultPlan{Faults: []Fault{
		{Kind: FaultLinkFlap, Subnet: "10.0.2.0/24", From: 2, Until: 4},
	}}); err != nil {
		t.Fatal(err)
	}
	dst := addr("10.0.2.2")
	if r := echoAt(t, p, dst, 8, 1); r == nil {
		t.Fatal("probe before flap window unanswered")
	}
	for i := uint16(2); i <= 3; i++ {
		if r := echoAt(t, p, dst, 8, i); r != nil {
			t.Fatalf("probe %d crossed a flapped subnet: %+v", i, r)
		}
	}
	if r := echoAt(t, p, dst, 8, 4); r == nil {
		t.Fatal("probe after flap window unanswered")
	}
	if fs := n.FaultStats(); fs.FlapDrops != 2 {
		t.Errorf("FlapDrops = %d, want 2", fs.FlapDrops)
	}
}

func TestBlackholeRouter(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	if err := n.InstallFaults(FaultPlan{Faults: []Fault{
		{Kind: FaultBlackhole, Router: "R2"},
	}}); err != nil {
		t.Fatal(err)
	}
	// R1 (hop 1) still answers TTL-expired...
	if r := echoAt(t, p, addr("10.0.5.2"), 1, 1); r == nil {
		t.Fatal("R1 silent though only R2 is blackholed")
	}
	// ...but anything that must pass through or terminate at R2 vanishes.
	if r := echoAt(t, p, addr("10.0.5.2"), 2, 2); r != nil {
		t.Fatalf("blackholed R2 answered: %+v", r)
	}
	if r := echoAt(t, p, addr("10.0.5.2"), 8, 3); r != nil {
		t.Fatalf("probe through blackholed R2 answered: %+v", r)
	}
	if fs := n.FaultStats(); fs.BlackholeDrops == 0 {
		t.Error("no blackhole drops recorded")
	}
}

func TestCorruptReplyFailsDecode(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	if err := n.InstallFaults(FaultPlan{Seed: 11, Faults: []Fault{
		{Kind: FaultCorrupt, Prob: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	raw, err := wire.NewEchoRequest(p.LocalAddr(), addr("10.0.2.2"), 8, 7, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	decodeFailures := 0
	for i := 0; i < 10; i++ {
		out, err := p.Exchange(raw)
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			t.Fatal("corruption should mangle the reply, not drop it")
		}
		if _, err := wire.Decode(out); err != nil {
			decodeFailures++
		}
	}
	if decodeFailures == 0 {
		t.Error("no corrupted reply failed to decode (stale checksums should catch all flips)")
	}
	if fs := n.FaultStats(); fs.Corrupted != 10 {
		t.Errorf("Corrupted = %d, want 10", fs.Corrupted)
	}
}

func TestTruncateReply(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	if err := n.InstallFaults(FaultPlan{Seed: 12, Faults: []Fault{
		{Kind: FaultTruncate, Prob: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	raw, err := wire.NewEchoRequest(p.LocalAddr(), addr("10.0.2.2"), 8, 7, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	full := 0
	for i := 0; i < 10; i++ {
		out, err := p.Exchange(raw)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := wire.Decode(out); err == nil {
			full++ // a truncation that kept the whole datagram is impossible
		}
	}
	if full != 0 {
		t.Errorf("%d truncated replies still decoded", full)
	}
	if fs := n.FaultStats(); fs.Truncated != 10 {
		t.Errorf("Truncated = %d, want 10", fs.Truncated)
	}
}

func TestDelayReadsAsSilence(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	if err := n.InstallFaults(FaultPlan{Faults: []Fault{
		{Kind: FaultDelay, Prob: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if r := echoAt(t, p, addr("10.0.2.2"), 8, 1); r != nil {
		t.Fatalf("delayed reply delivered: %+v", r)
	}
	probes, replies := n.Counters()
	if probes != 1 || replies != 0 {
		t.Errorf("counters = (%d,%d), want (1,0): a delayed reply is not a delivery", probes, replies)
	}
	if fs := n.FaultStats(); fs.Delayed != 1 {
		t.Errorf("Delayed = %d, want 1", fs.Delayed)
	}
}

func TestDuplicateImprovesDelivery(t *testing.T) {
	// With heavy loss, a duplication fault gives each reply a second draw:
	// delivery must be strictly better with the fault than without.
	deliveries := func(dup bool) int {
		n := New(fig3(t), Config{Seed: 4, LossRate: 0.6})
		if dup {
			if err := n.InstallFaults(FaultPlan{Faults: []Fault{
				{Kind: FaultDuplicate, Prob: 1},
			}}); err != nil {
				t.Fatal(err)
			}
		}
		p := mustPort(t, n, "vantage")
		got := 0
		for i := 0; i < 200; i++ {
			if r := echoAt(t, p, addr("10.0.2.2"), 8, uint16(i)); r != nil {
				got++
			}
		}
		return got
	}
	plain, dup := deliveries(false), deliveries(true)
	if dup <= plain {
		t.Errorf("duplication did not improve delivery: %d plain vs %d duplicated", plain, dup)
	}
}

func TestRateStormSuppressesReplies(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	// Zero refill, burst 1: R2 answers exactly once, then the storm eats
	// every further reply.
	if err := n.InstallFaults(FaultPlan{Faults: []Fault{
		{Kind: FaultRateStorm, Router: "R2", Rate: 0, Burst: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	answered := 0
	for i := 0; i < 5; i++ {
		if r := echoAt(t, p, addr("10.0.5.2"), 2, uint16(i)); r != nil {
			answered++
		}
	}
	if answered != 1 {
		t.Errorf("storm-limited router answered %d of 5, want exactly 1", answered)
	}
	if fs := n.FaultStats(); fs.StormDrops != 4 {
		t.Errorf("StormDrops = %d, want 4", fs.StormDrops)
	}
	// An unscoped router is unaffected.
	if r := echoAt(t, p, addr("10.0.5.2"), 1, 9); r == nil {
		t.Error("R1 silent though the storm targets R2")
	}
}

func TestChurnReshufflesEqualCostChoices(t *testing.T) {
	// Two equal-cost paths between vantage and dest; under PerFlow balancing
	// one flow always sees the same TTL-2 router — unless churn is active.
	build := func() *Topology {
		b := NewBuilder()
		v := b.Host("vantage")
		r1 := b.Router("R1")
		ra := b.Router("RA")
		rb := b.Router("RB")
		r4 := b.Router("R4")
		d := b.Host("dest")
		s0 := b.Subnet("10.1.0.0/30")
		b.Attach(v, s0, "10.1.0.1")
		b.Attach(r1, s0, "10.1.0.2")
		sa := b.Subnet("10.1.1.0/31")
		b.Attach(r1, sa, "10.1.1.0")
		b.Attach(ra, sa, "10.1.1.1")
		sb := b.Subnet("10.1.2.0/31")
		b.Attach(r1, sb, "10.1.2.0")
		b.Attach(rb, sb, "10.1.2.1")
		sa2 := b.Subnet("10.1.3.0/31")
		b.Attach(ra, sa2, "10.1.3.0")
		b.Attach(r4, sa2, "10.1.3.1")
		sb2 := b.Subnet("10.1.4.0/31")
		b.Attach(rb, sb2, "10.1.4.0")
		b.Attach(r4, sb2, "10.1.4.1")
		ds := b.Subnet("10.1.5.0/30")
		b.Attach(r4, ds, "10.1.5.1")
		b.Attach(d, ds, "10.1.5.2")
		topo, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return topo
	}
	seen := func(n *Network) map[ipv4.Addr]bool {
		p := mustPort(t, n, "vantage")
		out := map[ipv4.Addr]bool{}
		for i := 0; i < 8*churnPeriod; i++ {
			if r := echoAt(t, p, addr("10.1.5.2"), 2, 42); r != nil {
				out[r.IP.Src] = true
			}
		}
		return out
	}
	stable := seen(New(build(), Config{Mode: PerFlow}))
	if len(stable) != 1 {
		t.Fatalf("per-flow balancing used %d TTL-2 routers, want 1", len(stable))
	}
	churned := New(build(), Config{Mode: PerFlow})
	if err := churned.InstallFaults(FaultPlan{Faults: []Fault{{Kind: FaultChurn}}}); err != nil {
		t.Fatal(err)
	}
	if got := seen(churned); len(got) != 2 {
		t.Errorf("churned per-flow balancing used %d TTL-2 routers, want 2", len(got))
	}
}

func TestFaultPlanJSONRoundTrip(t *testing.T) {
	plan := FaultPlan{Seed: 77, Faults: []Fault{
		{Kind: FaultLinkFlap, Subnet: "10.0.2.0/24", From: 10, Until: 90},
		{Kind: FaultCorrupt, Prob: 0.25},
		{Kind: FaultRateStorm, Router: "R2", Rate: 0.1, Burst: 2, From: 5},
	}}
	var buf bytes.Buffer
	if err := WriteFaultPlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFaultPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, plan) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, plan)
	}
	if _, err := ReadFaultPlan(strings.NewReader(`{"faults": [{"kind": "corrupt", "prob": 0.5, "bogus": 1}]}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ReadFaultPlan(strings.NewReader(`{"faults": [{"kind": "melt"}]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ReadFaultPlan(strings.NewReader(`{"faults": [{"kind": "corrupt", "prob": 7}]}`)); err == nil {
		t.Error("invalid prob accepted")
	}
}

func TestInstallFaultsReplacesAndDisarms(t *testing.T) {
	n := New(fig3(t), Config{})
	p := mustPort(t, n, "vantage")
	if err := n.InstallFaults(FaultPlan{Faults: []Fault{{Kind: FaultDelay, Prob: 1}}}); err != nil {
		t.Fatal(err)
	}
	if r := echoAt(t, p, addr("10.0.2.2"), 8, 1); r != nil {
		t.Fatal("delay plan not armed")
	}
	if err := n.InstallFaults(FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	if r := echoAt(t, p, addr("10.0.2.2"), 8, 2); r == nil {
		t.Fatal("empty plan did not disarm the faults")
	}
	if fs := n.FaultStats(); fs.Total() != 0 {
		t.Errorf("stats not reset on reinstall: %+v", fs)
	}
}

func TestRandomFaultPlanDeterministic(t *testing.T) {
	topo := fig3(t)
	a := RandomFaultPlan(topo, 42)
	b := RandomFaultPlan(topo, 42)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different plans:\n%+v\n%+v", a, b)
	}
	if len(a.Faults) == 0 {
		t.Error("empty random plan")
	}
	c := RandomFaultPlan(topo, 43)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans")
	}
	for seed := int64(0); seed < 50; seed++ {
		plan := RandomFaultPlan(topo, seed)
		if err := plan.Validate(); err != nil {
			t.Fatalf("seed %d: invalid plan: %v", seed, err)
		}
		n := New(fig3(t), Config{})
		if err := n.InstallFaults(plan); err != nil {
			t.Fatalf("seed %d: install failed: %v", seed, err)
		}
	}
}
