package netsim_test

// Race-detector coverage for concurrent Sessions driving one shared Network
// (the campaign engine's substrate, see internal/collect). On a clean
// configuration the engine takes its lock-free injection path, so every
// per-target trace must come out identical to a sequential run — and the
// race detector must stay silent while ≥8 sessions probe simultaneously.

import (
	"fmt"
	"sync"
	"testing"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

// concurrentSpec is shared by the sequential baseline and the concurrent run
// so both operate on identically-generated topologies.
var concurrentSpec = topo.RandomSpec{Seed: 1701, Backbone: 8, Leaves: 16, ExtraLinks: 3}

// traceOne runs one independent session (fresh prober, fresh session state)
// against dst and returns the rendered result.
func traceOne(n *netsim.Network, dst ipv4.Addr) (string, error) {
	port, err := n.PortFor("vantage")
	if err != nil {
		return "", err
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	res, err := core.NewSession(pr, core.Config{}).Trace(dst)
	if err != nil {
		return "", err
	}
	return res.String(), nil
}

func TestConcurrentSessionsSharedNetwork(t *testing.T) {
	tp, targets := topo.Random(concurrentSpec)
	if len(targets) < 8 {
		t.Fatalf("spec yielded %d targets, need >= 8", len(targets))
	}

	// Sequential baseline on its own network instance.
	baseNet := netsim.New(tp, netsim.Config{Seed: 7})
	want := make([]string, len(targets))
	for i, dst := range targets {
		out, err := traceOne(baseNet, dst)
		if err != nil {
			t.Fatalf("baseline trace %v: %v", dst, err)
		}
		want[i] = out
	}
	baseProbes, baseReplies := baseNet.Counters()

	// Concurrent run: one goroutine per target, all sharing one Network.
	tp2, _ := topo.Random(concurrentSpec)
	sharedNet := netsim.New(tp2, netsim.Config{Seed: 7})
	got := make([]string, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, dst := range targets {
		wg.Add(1)
		go func(i int, dst ipv4.Addr) {
			defer wg.Done()
			got[i], errs[i] = traceOne(sharedNet, dst)
		}(i, dst)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent trace %v: %v", targets[i], err)
		}
	}
	for i := range targets {
		if got[i] != want[i] {
			t.Errorf("target %v: concurrent result diverged from sequential baseline\n--- sequential\n%s--- concurrent\n%s",
				targets[i], want[i], got[i])
		}
	}

	// Per-target traces are independent on a clean network, so the shared
	// network must have seen exactly the same wire traffic in aggregate.
	probes, replies := sharedNet.Counters()
	if probes != baseProbes || replies != baseReplies {
		t.Errorf("counters diverged: concurrent probes=%d replies=%d, sequential probes=%d replies=%d",
			probes, replies, baseProbes, baseReplies)
	}
}

// TestConcurrentExchangeSamePort hammers a single shared Port from many
// goroutines: Ports are stateless, so this must be race-free and every
// exchange must behave as if issued alone.
func TestConcurrentExchangeSamePort(t *testing.T) {
	tp, targets := topo.Random(concurrentSpec)
	n := netsim.New(tp, netsim.Config{Seed: 7})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, len(targets))
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
			for _, dst := range targets {
				r, err := pr.Direct(dst)
				if err != nil {
					errc <- fmt.Errorf("worker %d direct %v: %v", w, dst, err)
					return
				}
				if !r.Alive() && !r.Silent() {
					errc <- fmt.Errorf("worker %d direct %v: unexpected outcome %v", w, dst, r.Kind)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
