package netsim

import (
	"sync/atomic"

	"tracenet/internal/ipv4"
	"tracenet/internal/wire"
)

// unreachableDist marks a (router, subnet) pair with no route.
const unreachableDist int32 = 1 << 30

// routingState holds the precomputed hop-count distances from every router to
// every subnet, the basis of shortest-path (and equal-cost multipath)
// forwarding. Distances are computed with a multi-source BFS over the
// bipartite router↔subnet graph, which stays linear in the number of
// interfaces even when subnets are large multi-access LANs (a clique-based
// BFS would be quadratic in LAN size).
type routingState struct {
	topo *Topology
	// dist[s.idx][r.idx] = forwarding steps from router r until attached to
	// subnet s (0 if attached). Immutable after construction.
	dist [][]int32
	// hops memoizes the equal-cost candidate edges per (router, subnet) pair,
	// indexed rIdx*len(subnets)+sIdx. Each slot is an atomic pointer so the
	// memo is lock-free on the injection path: a miss computes the slice and
	// publishes it; racing computations produce identical slices (the scan is
	// a pure function of immutable state), so whichever store wins is correct.
	// Published slices are never mutated.
	hops []atomic.Pointer[[]edge]
}

func newRoutingState(t *Topology) *routingState {
	rs := &routingState{
		topo: t,
		dist: make([][]int32, len(t.Subnets)),
		hops: make([]atomic.Pointer[[]edge], len(t.Routers)*len(t.Subnets)),
	}
	routerQ := make([]*Router, 0, len(t.Routers))
	subnetSeen := make([]bool, len(t.Subnets))
	for _, s := range t.Subnets {
		d := make([]int32, len(t.Routers))
		for i := range d {
			d[i] = unreachableDist
		}
		for i := range subnetSeen {
			subnetSeen[i] = false
		}
		routerQ = routerQ[:0]
		for _, i := range s.Ifaces {
			if d[i.Router.idx] != 0 {
				d[i.Router.idx] = 0
				routerQ = append(routerQ, i.Router)
			}
		}
		subnetSeen[s.idx] = true
		// Alternating BFS: routers at distance k expand through their
		// subnets to routers at distance k+1. Hosts never forward transit
		// traffic, so they are sources (when attached) but never expanded.
		for head := 0; head < len(routerQ); head++ {
			r := routerQ[head]
			if r.IsHost && d[r.idx] != 0 {
				continue
			}
			if r.IsHost {
				continue // hosts do not provide transit even at distance 0
			}
			for _, ri := range r.Ifaces {
				sn := ri.Subnet
				if subnetSeen[sn.idx] {
					continue
				}
				subnetSeen[sn.idx] = true
				for _, ni := range sn.Ifaces {
					nb := ni.Router
					if nb.IsHost {
						continue
					}
					if d[nb.idx] > d[r.idx]+1 {
						d[nb.idx] = d[r.idx] + 1
						routerQ = append(routerQ, nb)
					}
				}
			}
		}
		// Hosts not attached to s originate traffic through their single
		// access subnet.
		for _, h := range t.Hosts {
			if d[h.idx] != unreachableDist {
				continue
			}
			best := unreachableDist
			for _, hi := range h.Ifaces {
				for _, ni := range hi.Subnet.Ifaces {
					nb := ni.Router
					if nb.IsHost {
						continue
					}
					if d[nb.idx] != unreachableDist && d[nb.idx]+1 < best {
						best = d[nb.idx] + 1
					}
				}
			}
			d[h.idx] = best
		}
		rs.dist[s.idx] = d
	}
	return rs
}

// distTo returns the forwarding distance from r to subnet s.
func (rs *routingState) distTo(r *Router, s *Subnet) int32 { return rs.dist[s.idx][r.idx] }

// nextHops returns the equal-cost candidate edges from r toward subnet s.
// The result is ordered as the router's edge list, so selection by flow hash
// is deterministic. Results are memoized: the edge scan over a router with a
// large LAN attachment would otherwise dominate every forwarding step. The
// memo is lock-free (see routingState.hops), making nextHops safe for
// concurrent walks; memoized slices are never mutated after publication.
func (rs *routingState) nextHops(r *Router, s *Subnet) []edge {
	d := rs.dist[s.idx][r.idx]
	if d == unreachableDist || d == 0 {
		return nil
	}
	slot := &rs.hops[r.idx*len(rs.topo.Subnets)+s.idx]
	if memo := slot.Load(); memo != nil {
		return *memo
	}
	var out []edge
	for _, e := range r.edges {
		if e.to.IsHost {
			continue
		}
		if rs.dist[s.idx][e.to.idx] == d-1 {
			out = append(out, e)
		}
	}
	slot.Store(&out)
	return out
}

// flowKey extracts the fields of a probe that identify its "flow" for
// equal-cost multipath hashing. ICMP flows are keyed by (src, dst, ID) — the
// sequence number is excluded, which is why ICMP probing is the least
// affected by load balancing (paper §3.7 and [15]): a prober that holds its
// ICMP ID constant keeps a stable path. UDP and TCP flows are keyed by the
// port pair, so classic UDP traceroute (which increments the destination
// port per probe) fluctuates under ECMP.
func flowKey(p *wire.Packet) (a, b uint16) {
	switch {
	case p.ICMP != nil:
		return p.ICMP.ID, 0
	case p.UDP != nil:
		return p.UDP.SrcPort, p.UDP.DstPort
	case p.TCP != nil:
		return p.TCP.SrcPort, p.TCP.DstPort
	}
	return 0, 0
}

// FNV-1a constants (the 64-bit offset basis and prime), matching hash/fnv.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// ecmpIndex hashes the flow (plus the deciding router and, in per-packet
// mode, the virtual clock) onto one of n equal-cost candidates. The FNV-1a
// hash is inlined rather than taken from hash/fnv: constructing a hash.Hash64
// escapes to the heap, and this runs on every forwarding step of every probe.
// The digest is bit-identical to fnv.New64a over the same bytes, so path
// choices match the historical implementation exactly.
func ecmpIndex(p *wire.Packet, r *Router, perPacketSalt uint64, n int) int {
	if n <= 1 {
		return 0
	}
	var buf [25]byte
	put32 := func(off int, v uint32) {
		buf[off] = byte(v >> 24)
		buf[off+1] = byte(v >> 16)
		buf[off+2] = byte(v >> 8)
		buf[off+3] = byte(v)
	}
	put32(0, uint32(p.IP.Src))
	put32(4, uint32(p.IP.Dst))
	buf[8] = p.IP.Protocol
	ka, kb := flowKey(p)
	buf[9] = byte(ka >> 8)
	buf[10] = byte(ka)
	buf[11] = byte(kb >> 8)
	buf[12] = byte(kb)
	put32(13, uint32(r.idx))
	buf[17] = byte(perPacketSalt >> 56)
	buf[18] = byte(perPacketSalt >> 48)
	buf[19] = byte(perPacketSalt >> 40)
	buf[20] = byte(perPacketSalt >> 32)
	buf[21] = byte(perPacketSalt >> 24)
	buf[22] = byte(perPacketSalt >> 16)
	buf[23] = byte(perPacketSalt >> 8)
	buf[24] = byte(perPacketSalt)
	h := uint64(fnvOffset64)
	for _, c := range buf {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return int(h % uint64(n))
}

// replySource resolves the source address a router uses for a reply under the
// given policy. probed is the locally delivered destination interface (direct
// probes), in is the interface the probe arrived on, and src is the probe
// originator (for shortest-path resolution). Returns nil when the policy
// yields no usable interface (the router stays silent).
func (rs *routingState) replySource(r *Router, policy ResponsePolicy, probed, in *Iface, src ipv4.Addr) *Iface {
	switch policy {
	case PolicyProbed:
		return probed
	case PolicyIncoming:
		return in
	case PolicyDefault:
		return r.DefaultIface
	case PolicyShortestPath:
		return rs.shortestPathIface(r, src)
	}
	return nil
}

// shortestPathIface returns r's interface on the first hop of the shortest
// path from r back to addr.
func (rs *routingState) shortestPathIface(r *Router, addr ipv4.Addr) *Iface {
	s := rs.targetSubnet(addr)
	if s == nil {
		return r.DefaultIface
	}
	if i := r.IfaceOn(s); i != nil {
		return i
	}
	hops := rs.nextHops(r, s)
	if len(hops) == 0 {
		return r.DefaultIface
	}
	return hops[0].local
}

// targetSubnet resolves the subnet a destination address routes toward:
// the assigned interface's subnet, or the longest covering prefix.
func (rs *routingState) targetSubnet(addr ipv4.Addr) *Subnet {
	if i := rs.topo.IfaceByAddr(addr); i != nil {
		return i.Subnet
	}
	return rs.topo.SubnetContaining(addr)
}
