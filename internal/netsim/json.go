package netsim

import (
	"encoding/json"
	"fmt"
	"io"

	"tracenet/internal/ipv4"
)

// topologyJSON is the serialized form of a Topology. Interfaces are stored
// with their routers; subnets are reconstructed from the interface addresses
// and the declared prefixes.
type topologyJSON struct {
	Routers []routerJSON `json:"routers"`
	Subnets []subnetJSON `json:"subnets"`
}

type routerJSON struct {
	Name            string      `json:"name"`
	Host            bool        `json:"host,omitempty"`
	DirectPolicy    string      `json:"direct_policy,omitempty"`
	IndirectPolicy  string      `json:"indirect_policy,omitempty"`
	DefaultAddr     string      `json:"default_addr,omitempty"`
	DirectProtos    uint8       `json:"direct_protos"`
	IndirectProtos  uint8       `json:"indirect_protos"`
	EmitUnreachable bool        `json:"emit_unreachable,omitempty"`
	RRNonCompliant  bool        `json:"rr_noncompliant,omitempty"`
	ReplyLoss       float64     `json:"reply_loss,omitempty"`
	Ifaces          []ifaceJSON `json:"ifaces"`
}

type ifaceJSON struct {
	Addr         string `json:"addr"`
	Unresponsive bool   `json:"unresponsive,omitempty"`
}

type subnetJSON struct {
	Prefix       string `json:"prefix"`
	Unresponsive bool   `json:"unresponsive,omitempty"`
}

func policyName(p ResponsePolicy) string { return p.String() }

func policyFromName(s string) (ResponsePolicy, error) {
	switch s {
	case "", "probed":
		return PolicyProbed, nil
	case "nil":
		return PolicyNil, nil
	case "incoming":
		return PolicyIncoming, nil
	case "shortest-path":
		return PolicyShortestPath, nil
	case "default":
		return PolicyDefault, nil
	}
	return 0, fmt.Errorf("netsim: unknown response policy %q", s)
}

// WriteJSON serializes the topology.
func (t *Topology) WriteJSON(w io.Writer) error {
	out := topologyJSON{}
	for _, s := range t.Subnets {
		out.Subnets = append(out.Subnets, subnetJSON{
			Prefix:       s.Prefix.String(),
			Unresponsive: s.Unresponsive,
		})
	}
	for _, r := range t.Routers {
		rj := routerJSON{
			Name:            r.Name,
			Host:            r.IsHost,
			DirectPolicy:    policyName(r.DirectPolicy),
			IndirectPolicy:  policyName(r.IndirectPolicy),
			DirectProtos:    uint8(r.DirectProtos),
			IndirectProtos:  uint8(r.IndirectProtos),
			EmitUnreachable: r.EmitUnreachable,
			RRNonCompliant:  !r.RRCompliant,
			ReplyLoss:       r.ReplyLoss,
		}
		if r.DefaultIface != nil {
			rj.DefaultAddr = r.DefaultIface.Addr.String()
		}
		for _, i := range r.Ifaces {
			rj.Ifaces = append(rj.Ifaces, ifaceJSON{
				Addr:         i.Addr.String(),
				Unresponsive: !i.Responsive,
			})
		}
		out.Routers = append(out.Routers, rj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserializes and validates a topology.
func ReadJSON(r io.Reader) (*Topology, error) {
	var in topologyJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("netsim: decoding topology: %w", err)
	}
	b := NewBuilder()
	subnets := map[ipv4.Prefix]*Subnet{}
	for _, sj := range in.Subnets {
		p, err := ipv4.ParsePrefix(sj.Prefix)
		if err != nil {
			return nil, fmt.Errorf("netsim: subnet %q: %w", sj.Prefix, err)
		}
		s := b.SubnetP(p)
		s.Unresponsive = sj.Unresponsive
		subnets[p] = s
	}
	findSubnet := func(a ipv4.Addr) (*Subnet, error) {
		for p, s := range subnets {
			if p.Contains(a) {
				return s, nil
			}
		}
		return nil, fmt.Errorf("netsim: address %v not covered by any subnet", a)
	}
	for _, rj := range in.Routers {
		var r *Router
		if rj.Host {
			r = b.Host(rj.Name)
		} else {
			r = b.Router(rj.Name)
		}
		dp, err := policyFromName(rj.DirectPolicy)
		if err != nil {
			return nil, err
		}
		ip, err := policyFromName(rj.IndirectPolicy)
		if err != nil {
			return nil, err
		}
		if rj.IndirectPolicy == "" {
			ip = PolicyIncoming
		}
		r.DirectPolicy, r.IndirectPolicy = dp, ip
		r.DirectProtos = ProtoMask(rj.DirectProtos)
		r.IndirectProtos = ProtoMask(rj.IndirectProtos)
		if rj.DirectProtos == 0 {
			r.DirectProtos = ProtoMaskAll
		}
		if rj.IndirectProtos == 0 {
			r.IndirectProtos = ProtoMaskAll
		}
		r.EmitUnreachable = rj.EmitUnreachable
		r.RRCompliant = !rj.RRNonCompliant
		r.ReplyLoss = rj.ReplyLoss
		for _, ij := range rj.Ifaces {
			a, err := ipv4.ParseAddr(ij.Addr)
			if err != nil {
				return nil, fmt.Errorf("netsim: router %s: %w", rj.Name, err)
			}
			s, err := findSubnet(a)
			if err != nil {
				return nil, err
			}
			iface := b.AttachA(r, s, a)
			iface.Responsive = !ij.Unresponsive
		}
		if rj.DefaultAddr != "" {
			a, err := ipv4.ParseAddr(rj.DefaultAddr)
			if err != nil {
				return nil, fmt.Errorf("netsim: router %s default: %w", rj.Name, err)
			}
			if i := r.IfaceWithAddr(a); i != nil {
				r.DefaultIface = i
			}
		}
	}
	return b.Build()
}
