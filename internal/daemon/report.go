package daemon

import (
	"fmt"
	"strings"

	"tracenet/internal/collect"
	"tracenet/internal/core"
	"tracenet/internal/ipv4"
)

// The daemon renders its own final report instead of reusing
// collect.Report.WriteTo. The collect rendering is byte-stable across
// parallelism but NOT across interruption: a resumed campaign's report
// carries "resumed" placeholder rows, different topology observation
// counts, and a different wire-probe total, because the engine only knows
// what this run did. The daemon, which journals every completed target row
// in the spool, can render the union — so a campaign SIGTERM'd, restarted,
// and resumed produces a report byte-identical to an uninterrupted run.
//
// The price of that invariance is scope: the daemon report renders only
// quantities that are schedule- and resume-independent — per-target rows
// (reached, hops, subnets, trace probes are pure functions of the target on
// a deterministic substrate) and the sorted distinct-subnet inventory. Run
// accounting that genuinely differs across a resume (wire totals, cache
// hits) lives in the metrics exposition and the status document, not here.

// mergeRows folds this run's result rows over the journaled rows from prior
// generations: a row the engine marked resumed is replaced by the journaled
// detail of the run that actually traced it; every other row is converted
// fresh. Only completed targets are journaled — skipped or failed rows are
// retried by a resume, so persisting them would journal a non-outcome.
func mergeRows(results []collect.TargetResult, journaled []TargetRow) []TargetRow {
	rows := make([]TargetRow, 0, len(results))
	for i := range results {
		r := &results[i]
		if r.Status == collect.StatusResumed {
			if j := findRow(journaled, r.Dst.String()); j != nil {
				rows = append(rows, *j)
				continue
			}
			// A checkpoint recorded the target done but the journal has no
			// row (a foreign checkpoint, not a daemon resume): keep the
			// engine's placeholder so the loss is visible, not invented.
			rows = append(rows, TargetRow{Dst: r.Dst.String(), Status: string(r.Status), Note: r.Note})
			continue
		}
		rows = append(rows, TargetRow{
			Dst:         r.Dst.String(),
			Status:      string(r.Status),
			Reached:     r.Reached,
			Hops:        r.Hops,
			Subnets:     r.Subnets,
			TraceProbes: r.TraceProbes,
			Note:        r.Note,
		})
	}
	return rows
}

// journalRows filters merged rows down to what the spool journals: the
// completed targets, in input order.
func journalRows(rows []TargetRow) []TargetRow {
	var done []TargetRow
	for _, r := range rows {
		if r.Status == string(collect.StatusDone) {
			done = append(done, r)
		}
	}
	return done
}

// findRow returns the journaled row for dst, or nil.
func findRow(rows []TargetRow, dst string) *TargetRow {
	for i := range rows {
		if rows[i].Dst == dst {
			return &rows[i]
		}
	}
	return nil
}

// renderReport renders the resume-invariant final report: the campaign
// header, per-target rows in input order, and the distinct subnet inventory
// in its deterministic (prefix, pivot) order.
func renderReport(id, tenant string, targets []ipv4.Addr, rows []TargetRow, subnets []*core.Subnet) []byte {
	var b strings.Builder
	counts := struct{ done, skipped, failed, other int }{}
	for _, r := range rows {
		switch r.Status {
		case string(collect.StatusDone):
			counts.done++
		case string(collect.StatusSkipped):
			counts.skipped++
		case string(collect.StatusFailed):
			counts.failed++
		default:
			counts.other++
		}
	}
	fmt.Fprintf(&b, "campaign %s tenant %s: %d targets (done %d, skipped %d, failed %d, other %d)\n",
		id, tenant, len(targets), counts.done, counts.skipped, counts.failed, counts.other)
	for i := range targets {
		dst := targets[i].String()
		r := findRow(rows, dst)
		if r == nil {
			fmt.Fprintf(&b, "  %-15s %-8s\n", dst, "unknown")
			continue
		}
		fmt.Fprintf(&b, "  %-15s %-8s", dst, r.Status)
		if r.Status == string(collect.StatusDone) {
			fmt.Fprintf(&b, " reached=%v hops=%d subnets=%d trace-probes=%d",
				r.Reached, r.Hops, r.Subnets, r.TraceProbes)
		}
		if r.Note != "" {
			fmt.Fprintf(&b, " (%s)", r.Note)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nsubnets (%d):\n", len(subnets))
	for _, s := range subnets {
		fmt.Fprintf(&b, "  %v\n", s)
	}
	return []byte(b.String())
}
