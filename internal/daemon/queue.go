package daemon

import "tracenet/internal/collect"

// queueEntry is one campaign waiting to run.
type queueEntry struct {
	id       string
	seq      uint64 // admission order, the FIFO key within a priority
	priority int
	tenant   *tenantState
	spec     *Spec
	// notBefore is the freshness deadline in scheduler ticks: the entry is
	// ineligible until the daemon clock reaches it (0 = ready immediately).
	// Re-scan generations are deferred this way.
	notBefore uint64
	// resume and rows carry an interrupted campaign's journaled progress
	// back into its resumed run: the collect checkpoint seeds the cache's
	// frozen tier, the rows restore the resume-invariant report's detail.
	resume *collect.Checkpoint
	rows   []TargetRow
	// rescan is the re-scan generation (0 = the original submission).
	rescan int
}

// queue is the scheduler's pending set. It is a plain slice scanned
// linearly: selection must be deterministic and the pending set is small,
// so ordering logic beats heap bookkeeping. Not self-locking — the daemon's
// mutex guards it.
type queue struct {
	entries []*queueEntry
}

func (q *queue) push(e *queueEntry) {
	q.entries = append(q.entries, e)
}

func (q *queue) len() int { return len(q.entries) }

// pop removes and returns the next runnable entry at tick now: among
// entries whose freshness deadline has passed and whose tenant has a free
// concurrency slot, the highest priority wins and ties break FIFO by
// admission sequence. Returns nil when nothing is runnable.
func (q *queue) pop(now uint64, eligible func(*tenantState) bool) *queueEntry {
	best := -1
	for i, e := range q.entries {
		if e.notBefore > now {
			continue
		}
		if eligible != nil && !eligible(e.tenant) {
			continue
		}
		if best < 0 || e.priority > q.entries[best].priority ||
			(e.priority == q.entries[best].priority && e.seq < q.entries[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return q.removeAt(best)
}

// remove extracts the entry with the given campaign ID, or nil.
func (q *queue) remove(id string) *queueEntry {
	for i, e := range q.entries {
		if e.id == id {
			return q.removeAt(i)
		}
	}
	return nil
}

// removeAt deletes and returns entries[i], zeroing the vacated tail slot: the
// compacting copy leaves the last element duplicated in the slice's spare
// capacity, and a long-lived daemon queue that merely truncated would keep
// that *queueEntry — and its checkpoint, journal rows, and Spec — reachable
// until the slot is overwritten by a future push.
func (q *queue) removeAt(i int) *queueEntry {
	e := q.entries[i]
	last := len(q.entries) - 1
	copy(q.entries[i:], q.entries[i+1:])
	q.entries[last] = nil
	q.entries = q.entries[:last]
	return e
}
