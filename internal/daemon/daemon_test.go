package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tracenet/internal/cli"
	"tracenet/internal/obs"
)

// The daemon tests are in-package on purpose: internal/daemon is inside the
// determinism lint scope, so its tests may not import the time package. All
// waiting is done on channels fed by the test hooks (testTargetDone,
// testCampaignFinished) — never by polling a clock.

// atomicClock is a race-safe manual scheduler clock for freshness tests
// (telemetry.ManualClock is deliberately unsynchronized).
type atomicClock struct{ v atomic.Uint64 }

func (c *atomicClock) Ticks() uint64 { return c.v.Load() }

// harness is one live daemon with its HTTP front end and a channel of
// finished-campaign events.
type harness struct {
	d   *Daemon
	url string
	fin chan finEvent
}

type finEvent struct{ id, status string }

// startDaemon builds a daemon over dir, applies mod (for test hooks) before
// Start, then mounts the API on an httptest server.
func startDaemon(t *testing.T, dir string, cfg Config, mod func(*Daemon)) *harness {
	t.Helper()
	cfg.Spool = dir
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fin := make(chan finEvent, 64)
	d.testCampaignFinished = func(id, status string) { fin <- finEvent{id, status} }
	if mod != nil {
		mod(d)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	osrv := obs.NewServer(d.Telemetry(), nil)
	d.Attach(osrv)
	ts := httptest.NewServer(osrv.Handler())
	t.Cleanup(ts.Close)
	return &harness{d: d, url: ts.URL, fin: fin}
}

// submit POSTs the spec and returns the assigned campaign ID.
func (h *harness) submit(t *testing.T, sp *Spec) string {
	t.Helper()
	code, body := h.do(t, "POST", "/api/v1/campaigns", sp)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", code, body)
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	return doc.ID
}

// do issues one API request; a non-nil spec becomes the JSON body.
func (h *harness) do(t *testing.T, method, path string, sp *Spec) (int, []byte) {
	t.Helper()
	var body io.Reader
	if sp != nil {
		var buf bytes.Buffer
		if err := WriteSpec(&buf, sp); err != nil {
			t.Fatal(err)
		}
		body = &buf
	}
	req, err := http.NewRequest(method, h.url+path, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// await blocks until every listed campaign has reached a final state,
// returning each campaign's final status.
func (h *harness) await(t *testing.T, ids ...string) map[string]string {
	t.Helper()
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	got := map[string]string{}
	for len(got) < len(ids) {
		ev := <-h.fin
		if want[ev.id] {
			got[ev.id] = ev.status
		}
	}
	return got
}

// firstTargets renders the first n destination addresses of a built-in
// scenario, for specs that pin explicit targets.
func firstTargets(t *testing.T, topology string, seed int64, n int) []string {
	t.Helper()
	sc, err := cli.Load(topology, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Destinations) < n {
		t.Fatalf("scenario %s has %d destinations, want >= %d", topology, len(sc.Destinations), n)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = sc.Destinations[i].String()
	}
	return out
}

// TestDaemonLifecycleResumeByteIdentity is the PR's acceptance test: a
// daemon drained (the SIGTERM path) mid-campaign and restarted against the
// same spool produces final artifacts byte-identical to an uninterrupted
// control run, for both the interrupted campaign and the one that was still
// queued behind it.
func TestDaemonLifecycleResumeByteIdentity(t *testing.T) {
	alice := &Spec{Tenant: "alice", Topology: "random", Seed: 42,
		Targets: firstTargets(t, "random", 42, 6), Parallel: 2}
	bob := &Spec{Tenant: "bob", Topology: "figure3", Eval: true}

	// Control: uninterrupted run of both campaigns.
	control := startDaemon(t, t.TempDir(), Config{}, nil)
	a := control.submit(t, alice)
	b := control.submit(t, bob)
	if a != "c0001" || b != "c0002" {
		t.Fatalf("assigned ids %s, %s", a, b)
	}
	st := control.await(t, a, b)
	if st[a] != stateDone || st[b] != stateDone {
		t.Fatalf("control outcomes: %v", st)
	}
	_, wantReportA := control.do(t, "GET", "/api/v1/campaigns/"+a+"/report", nil)
	_, wantReportB := control.do(t, "GET", "/api/v1/campaigns/"+b+"/report", nil)
	_, wantEvalB := control.do(t, "GET", "/api/v1/campaigns/"+b+"/eval", nil)

	// Interrupted run: block alice's workers once two targets are done, then
	// drain — the daemon-side half of a SIGTERM.
	dir := t.TempDir()
	hit := make(chan struct{})
	hold := make(chan struct{})
	var once sync.Once
	h2 := startDaemon(t, dir, Config{}, func(d *Daemon) {
		d.testTargetDone = func(id string, done int) {
			if id != "c0001" || done < 2 {
				return
			}
			once.Do(func() { close(hit) })
			<-hold
		}
	})
	if id := h2.submit(t, alice); id != "c0001" {
		t.Fatalf("assigned id %s", id)
	}
	if id := h2.submit(t, bob); id != "c0002" {
		t.Fatalf("assigned id %s", id)
	}
	<-hit
	drained := make(chan error, 1)
	go func() { drained <- h2.d.Drain(context.Background()) }()
	// Drain cancels the running campaign's context before waiting; release
	// the blocked workers once the cancellation is observable.
	cs := h2.d.campaign("c0001")
	h2.d.mu.Lock()
	cctx := cs.ctx
	h2.d.mu.Unlock()
	<-cctx.Done()
	close(hold)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}

	var persisted State
	if err := (spool{dir: dir}).readJSON("c0001.state.json", &persisted); err != nil {
		t.Fatal(err)
	}
	if persisted.Status != stateInterrupted {
		t.Fatalf("after drain, c0001 state = %s, want interrupted", persisted.Status)
	}
	if len(persisted.Rows) == 0 {
		t.Fatal("interrupted campaign journaled no completed rows")
	}
	if len(persisted.Rows) >= 6 {
		t.Fatalf("interrupt left no work to resume: %d rows journaled", len(persisted.Rows))
	}

	// Restart against the same spool: the interrupted campaign resumes from
	// its checkpoint, the queued one runs for the first time.
	h3 := startDaemon(t, dir, Config{}, nil)
	if got := h3.d.cReplayed.Value(); got != 2 {
		t.Fatalf("spool replayed %d campaigns, want 2", got)
	}
	st = h3.await(t, "c0001", "c0002")
	if st["c0001"] != stateDone || st["c0002"] != stateDone {
		t.Fatalf("resumed outcomes: %v", st)
	}

	code, gotReportA := h3.do(t, "GET", "/api/v1/campaigns/c0001/report", nil)
	if code != http.StatusOK {
		t.Fatalf("resumed report fetch: status %d", code)
	}
	if !bytes.Equal(gotReportA, wantReportA) {
		t.Errorf("resumed c0001 report differs from control:\n--- control\n%s\n--- resumed\n%s", wantReportA, gotReportA)
	}
	_, gotReportB := h3.do(t, "GET", "/api/v1/campaigns/c0002/report", nil)
	if !bytes.Equal(gotReportB, wantReportB) {
		t.Errorf("restarted c0002 report differs from control:\n--- control\n%s\n--- restarted\n%s", wantReportB, gotReportB)
	}
	_, gotEvalB := h3.do(t, "GET", "/api/v1/campaigns/c0002/eval", nil)
	if !bytes.Equal(gotEvalB, wantEvalB) {
		t.Errorf("restarted c0002 eval differs from control:\n--- control\n%s\n--- restarted\n%s", wantEvalB, gotEvalB)
	}
	if code, _ := h3.do(t, "GET", "/api/v1/campaigns/c0001/checkpoint", nil); code != http.StatusOK {
		t.Errorf("checkpoint fetch: status %d", code)
	}
}

// TestRescanFreshness: a completed campaign with a rescan interval enrolls
// its next generation behind a freshness deadline on the scheduler clock,
// and the scheduler holds it until the deadline passes.
func TestRescanFreshness(t *testing.T) {
	clk := &atomicClock{}
	h := startDaemon(t, t.TempDir(), Config{Clock: clk}, nil)
	id := h.submit(t, &Spec{Tenant: "alice", Topology: "figure3", RescanInterval: 100, MaxRescans: 1})
	if st := h.await(t, id); st[id] != stateDone {
		t.Fatalf("outcome: %v", st)
	}

	rescan := id + ".r1"
	doc, err := h.d.Status(rescan)
	if err != nil {
		t.Fatalf("rescan not enrolled: %v", err)
	}
	if doc.Status != stateQueued || doc.NotBefore != 100 {
		t.Fatalf("rescan doc = %+v, want queued at tick 100", doc)
	}

	clk.v.Store(150)
	h.d.Nudge()
	if st := h.await(t, rescan); st[rescan] != stateDone {
		t.Fatalf("rescan outcome: %v", st)
	}
	if got := h.d.cRescans.Value(); got != 1 {
		t.Fatalf("rescans_total = %d, want 1 (max_rescans honoured)", got)
	}
	if _, err := h.d.Status(id + ".r2"); err == nil {
		t.Fatal("a second rescan generation was enrolled past max_rescans")
	}
}

// TestAPIErrors covers the API's error mapping: 400 for a bad spec, 404 for
// unknown campaigns and missing artifacts, 409 for cancelling a final
// campaign, 503 before the daemon starts.
func TestAPIErrors(t *testing.T) {
	h := startDaemon(t, t.TempDir(), Config{}, nil)

	if code, _ := h.do(t, "POST", "/api/v1/campaigns", &Spec{}); code != http.StatusBadRequest {
		t.Errorf("invalid spec: status %d, want 400", code)
	}
	resp, err := http.Post(h.url+"/api/v1/campaigns", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
	if code, _ := h.do(t, "GET", "/api/v1/campaigns/c9999", nil); code != http.StatusNotFound {
		t.Errorf("unknown campaign: status %d, want 404", code)
	}
	if code, _ := h.do(t, "DELETE", "/api/v1/campaigns/c9999", nil); code != http.StatusNotFound {
		t.Errorf("cancel unknown: status %d, want 404", code)
	}

	id := h.submit(t, &Spec{Tenant: "alice", Topology: "figure3"})
	h.await(t, id)
	if code, _ := h.do(t, "DELETE", "/api/v1/campaigns/"+id, nil); code != http.StatusConflict {
		t.Errorf("cancel final: status %d, want 409", code)
	}
	if code, _ := h.do(t, "GET", "/api/v1/campaigns/"+id+"/eval", nil); code != http.StatusNotFound {
		t.Errorf("absent artifact: status %d, want 404", code)
	}

	// A daemon that has not started (or is draining) refuses submissions.
	cold, err := New(Config{Spool: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	osrv := obs.NewServer(cold.Telemetry(), nil)
	cold.Attach(osrv)
	ts := httptest.NewServer(osrv.Handler())
	defer ts.Close()
	var buf bytes.Buffer
	if err := WriteSpec(&buf, &Spec{Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/api/v1/campaigns", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit before start: status %d, want 503", resp.StatusCode)
	}
}

// TestReadinessLifecycle: /readyz tracks the daemon lifecycle — failing
// before start and during spool replay, passing while serving, and failing
// again once draining.
func TestReadinessLifecycle(t *testing.T) {
	d, err := New(Config{Spool: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	osrv := obs.NewServer(d.Telemetry(), nil)
	d.Attach(osrv)
	ts := httptest.NewServer(osrv.Handler())
	defer ts.Close()

	readyz := func() (int, string) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := readyz(); code != http.StatusServiceUnavailable || !strings.Contains(body, "scheduler") {
		t.Errorf("before start: %d %q, want 503 mentioning scheduler", code, body)
	}

	// White-box: hold the daemon in its replaying state to observe the
	// spool-replay readiness gate (the window is otherwise too brief).
	d.mu.Lock()
	d.replaying = true
	d.mu.Unlock()
	if code, body := readyz(); code != http.StatusServiceUnavailable || !strings.Contains(body, "spool-replay") {
		t.Errorf("during replay: %d %q, want 503 mentioning spool-replay", code, body)
	}
	d.mu.Lock()
	d.replaying = false
	d.mu.Unlock()

	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if code, _ := readyz(); code != http.StatusOK {
		t.Errorf("while serving: status %d, want 200", code)
	}

	if err := d.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, body := readyz(); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("after drain: %d %q, want 503 mentioning draining", code, body)
	}
}
