// Package daemon turns the one-shot campaign engine (internal/collect) into
// tracenetd: a long-running collection service. It owns an HTTP submission
// API mounted beside the observability plane (internal/obs), a
// priority/freshness scheduler draining a campaign queue, per-tenant
// accounting (concurrent-campaign caps, an aggregate probe budget, a shared
// token-bucket rate limit), and a crash-safe spool that journals every
// accepted spec so queued and in-flight campaigns survive a restart.
//
// Determinism contract: the daemon never reads the wall clock. Scheduling
// time is an injected telemetry.Clock — by default a cumulative clock that
// advances by each finished campaign's virtual-tick span — and every
// campaign runs on its own seeded netsim substrate, so a same-seed daemon
// fed the same submissions produces byte-identical reports, checkpoints,
// and metric expositions. The daemon's final report rendering is
// additionally resume-invariant: a campaign interrupted by SIGTERM and
// resumed from the spool renders the same bytes as an uninterrupted run
// (see report.go for what that excludes).
package daemon

import (
	"encoding/json"
	"fmt"
	"io"

	"tracenet/internal/cli"
	"tracenet/internal/ipv4"
)

// Spec is one campaign submission: the JSON body of POST /api/v1/campaigns,
// also written to the spool as the accepted campaign's journal entry and
// readable by cmd/tracenet -spec, so the CLI and the daemon share one
// campaign encoding.
type Spec struct {
	// Tenant is the submitting tenant's identity (required). Budgets, rate
	// limits, and concurrency caps are enforced per tenant; see TenantConfig.
	Tenant string `json:"tenant"`
	// Name is an optional human label echoed in status documents.
	Name string `json:"name,omitempty"`

	// Topology selects a built-in topology generator (figure3, figure2,
	// chain, internet2, geant, isps, random); default figure3. File paths
	// are rejected: a network-submitted spec must not read server files.
	Topology string `json:"topology,omitempty"`
	// Seed seeds the simulated substrate (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Vantage overrides the topology's default vantage host.
	Vantage string `json:"vantage,omitempty"`
	// Proto is the probe protocol: icmp (default), udp, tcp.
	Proto string `json:"proto,omitempty"`
	// Targets are the destinations to trace; empty selects the topology's
	// suggested targets. Duplicates are rejected (the resume-invariant
	// report rendering merges rows by destination).
	Targets []string `json:"targets,omitempty"`

	// MaxTTL bounds each trace (default 30). Parallel is the campaign's
	// worker count (default 1). Budget caps the campaign's wire probes
	// (0 = unlimited; the tenant's aggregate budget applies regardless).
	MaxTTL   int    `json:"max_ttl,omitempty"`
	Parallel int    `json:"parallel,omitempty"`
	Budget   uint64 `json:"budget,omitempty"`

	// Priority orders the queue: higher runs first, FIFO within a priority.
	Priority int `json:"priority,omitempty"`

	// Defend hardens inference against lying responders (core.Config.Defend);
	// Chaos installs a random fault plan from the given seed (0 = off);
	// Backoff and Breaker arm the prober's resilience machinery.
	Defend  bool  `json:"defend,omitempty"`
	Chaos   int64 `json:"chaos,omitempty"`
	Backoff bool  `json:"backoff,omitempty"`
	Breaker bool  `json:"breaker,omitempty"`

	// Greedy and DisableCache tune the shared subnet cache exactly like the
	// CLI's -campaign-greedy / -campaign-no-cache flags.
	Greedy       bool `json:"greedy,omitempty"`
	DisableCache bool `json:"disable_cache,omitempty"`

	// Eval scores the collected subnets against the simulated ground truth
	// and stores the JSON artifact beside the report.
	Eval bool `json:"eval,omitempty"`

	// RescanInterval enrolls the campaign's targets for periodic re-scan:
	// after the campaign completes, a fresh campaign over the same spec is
	// queued with a freshness deadline RescanInterval scheduler ticks in the
	// future, up to MaxRescans generations. 0 disables re-scanning.
	RescanInterval uint64 `json:"rescan_interval,omitempty"`
	MaxRescans     int    `json:"max_rescans,omitempty"`
}

// maxSpecBytes bounds a submission body; a campaign spec is small, so
// anything larger is a client error, not a memory obligation.
const maxSpecBytes = 1 << 20

// ReadSpec decodes a JSON campaign spec, rejecting unknown fields (a
// misspelled knob silently ignored would make the daemon lie about what it
// ran) and bodies over maxSpecBytes.
func ReadSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxSpecBytes))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("daemon: spec: %w", err)
	}
	return &sp, nil
}

// WriteSpec serializes a spec as indented JSON — the spool's canonical form.
func WriteSpec(w io.Writer, sp *Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sp)
}

// Validate checks the spec's internal consistency without touching the
// network substrate; Resolve performs the full (deterministic) resolution.
func (sp *Spec) Validate() error {
	if sp.Tenant == "" {
		return fmt.Errorf("daemon: spec: tenant is required")
	}
	if !validName(sp.Tenant) {
		return fmt.Errorf("daemon: spec: tenant %q: use letters, digits, '-', '_', '.'", sp.Tenant)
	}
	if sp.Topology != "" && !builtinTopology(sp.Topology) {
		return fmt.Errorf("daemon: spec: topology %q is not a built-in generator (%v)",
			sp.Topology, cli.BuiltinNames())
	}
	switch sp.Proto {
	case "", "icmp", "udp", "tcp":
	default:
		return fmt.Errorf("daemon: spec: unknown protocol %q", sp.Proto)
	}
	if sp.MaxTTL < 0 || sp.Parallel < 0 || sp.MaxRescans < 0 {
		return fmt.Errorf("daemon: spec: max_ttl, parallel, and max_rescans must be non-negative")
	}
	if sp.RescanInterval == 0 && sp.MaxRescans > 0 {
		return fmt.Errorf("daemon: spec: max_rescans without rescan_interval")
	}
	seen := make(map[string]bool, len(sp.Targets))
	for _, t := range sp.Targets {
		if _, err := ipv4.ParseAddr(t); err != nil {
			return fmt.Errorf("daemon: spec: target %q: %w", t, err)
		}
		if seen[t] {
			return fmt.Errorf("daemon: spec: duplicate target %q", t)
		}
		seen[t] = true
	}
	return nil
}

// validName reports whether s is safe as a tenant identity and a metric
// label value: non-empty, ASCII letters/digits plus '-', '_', '.'.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// builtinTopology reports whether name is one of the built-in generators.
func builtinTopology(name string) bool {
	for _, b := range cli.BuiltinNames() {
		if name == b {
			return true
		}
	}
	return false
}

// seed returns the effective simulation seed.
func (sp *Spec) seed() int64 {
	if sp.Seed == 0 {
		return 1
	}
	return sp.Seed
}

// topology returns the effective topology name.
func (sp *Spec) topology() string {
	if sp.Topology == "" {
		return "figure3"
	}
	return sp.Topology
}

// maxTTL returns the effective trace length bound.
func (sp *Spec) maxTTL() int {
	if sp.MaxTTL == 0 {
		return 30
	}
	return sp.MaxTTL
}
