package daemon

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
)

// TestTenantBudgetReject: a tenant whose aggregate probe budget is spent has
// further submissions refused with 429, and the budget is never overspent —
// the chained per-campaign budgets stop the probe layer at the cap exactly.
func TestTenantBudgetReject(t *testing.T) {
	const cap = 10 // far below one figure3 campaign's wire spend
	h := startDaemon(t, t.TempDir(), Config{
		Tenants: []TenantConfig{{Name: "alice", ProbeBudget: cap}},
	}, nil)

	id := h.submit(t, &Spec{Tenant: "alice", Topology: "figure3"})
	h.await(t, id)

	alice := h.d.tenants.get("alice")
	if used := alice.budget.Used(); used != cap {
		t.Fatalf("budget used = %d, want exactly %d (cap reached, never passed)", used, cap)
	}
	if !alice.budget.Exhausted() {
		t.Fatal("budget not exhausted after overrunning campaign")
	}

	code, body := h.do(t, "POST", "/api/v1/campaigns", &Spec{Tenant: "alice", Topology: "figure3"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit on spent budget: status %d, body %s, want 429", code, body)
	}
	if got := alice.cRejBudget.Value(); got != 1 {
		t.Fatalf("rejects_total{reason=budget} = %d, want 1", got)
	}
	// An unrelated tenant is unaffected.
	other := h.submit(t, &Spec{Tenant: "bob", Topology: "figure3"})
	if st := h.await(t, other); st[other] != stateDone {
		t.Fatalf("bob outcome: %v", st)
	}
}

// TestTenantHammer floods the daemon from many goroutines — submissions for
// a rate-limited, budget-capped, concurrency-capped tenant interleaved with
// an unlimited tenant, plus status reads and cancellations — and asserts the
// tenant invariants hold: the aggregate budget is never overspent and every
// accepted campaign reaches exactly one final state. Run under -race (the CI
// gate does) to check the registry's synchronization.
func TestTenantHammer(t *testing.T) {
	const (
		aliceCap     = 200
		perTenant    = 10
		totalSubmits = 2 * perTenant
	)
	h := startDaemon(t, t.TempDir(), Config{
		Concurrent: 4,
		Tenants: []TenantConfig{{
			Name:          "alice",
			MaxConcurrent: 2,
			ProbeBudget:   aliceCap,
			RateInterval:  1,
			RateBurst:     8,
		}},
	}, nil)

	var mu sync.Mutex
	var accepted []string
	aliceRejected := 0

	var wg sync.WaitGroup
	for i := 0; i < totalSubmits; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := "alice"
			if i%2 == 1 {
				tenant = "bob"
			}
			code, body := h.do(t, "POST", "/api/v1/campaigns", &Spec{Tenant: tenant, Topology: "figure3"})
			switch code {
			case http.StatusAccepted:
				var doc struct {
					ID string `json:"id"`
				}
				if err := json.Unmarshal(body, &doc); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				accepted = append(accepted, doc.ID)
				mu.Unlock()
			case http.StatusTooManyRequests:
				if tenant != "alice" {
					t.Errorf("unlimited tenant %s rejected: %s", tenant, body)
					return
				}
				mu.Lock()
				aliceRejected++
				mu.Unlock()
			default:
				t.Errorf("submit: unexpected status %d, body %s", code, body)
			}
			// Interleave reads and a cancellation attempt with the floods.
			h.do(t, "GET", "/api/v1/campaigns", nil)
			if i%5 == 0 {
				mu.Lock()
				var victim string
				if len(accepted) > 0 {
					victim = accepted[len(accepted)-1]
				}
				mu.Unlock()
				if victim != "" {
					h.do(t, "DELETE", "/api/v1/campaigns/"+victim, nil)
					h.do(t, "GET", "/api/v1/campaigns/"+victim, nil)
				}
			}
		}(i)
	}
	wg.Wait()

	mu.Lock()
	ids := append([]string(nil), accepted...)
	rejected := aliceRejected
	mu.Unlock()
	st := h.await(t, ids...)

	alice := h.d.tenants.get("alice")
	if used := alice.budget.Used(); used > aliceCap {
		t.Errorf("tenant budget overspent: used %d of %d", used, aliceCap)
	}
	if got := alice.cProbes.Value(); got > aliceCap {
		t.Errorf("tracenet_tenant_probes_total = %d, exceeds cap %d", got, aliceCap)
	}
	if got := int(alice.cAccepted.Value()) + rejected; got != perTenant {
		t.Errorf("alice accepted+rejected = %d, want %d", got, perTenant)
	}
	for id, s := range st {
		switch s {
		case stateDone, stateCancelled, stateFailed, stateInterrupted:
		default:
			t.Errorf("campaign %s landed in non-final state %s", id, s)
		}
	}
	if len(st) != len(ids) {
		t.Errorf("awaited %d outcomes for %d accepted campaigns", len(st), len(ids))
	}
}
