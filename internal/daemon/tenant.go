package daemon

import (
	"sync"

	"tracenet/internal/probe"
	"tracenet/internal/telemetry"
)

// TenantConfig is one tenant's resource policy. The zero value grants
// everything: no concurrency cap, no aggregate budget, no rate limit.
type TenantConfig struct {
	Name string `json:"name"`
	// MaxConcurrent caps how many of the tenant's campaigns run at once
	// (0 = unlimited); submissions beyond the cap queue, they are not
	// rejected.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// ProbeBudget is the tenant's aggregate wire-probe allowance across all
	// of its campaigns, for the daemon's lifetime (0 = unlimited). Every
	// campaign budget chains under it (probe.NewChildBudget), so the
	// aggregate can never be overspent however many campaigns race.
	ProbeBudget uint64 `json:"probe_budget,omitempty"`
	// RateInterval and RateBurst configure the tenant's token-bucket probe
	// pacer, shared across all of its campaigns: steady state one wire send
	// per RateInterval virtual ticks, with RateBurst sends allowed
	// back-to-back. RateInterval 0 disables pacing.
	RateInterval uint64 `json:"rate_interval,omitempty"`
	RateBurst    uint64 `json:"rate_burst,omitempty"`
}

// tenantState is one tenant's live accounting: the shared budget root and
// pacer handed to every campaign, the running-campaign count, and the
// pre-resolved tracenet_tenant_* metric handles.
type tenantState struct {
	cfg    TenantConfig
	budget *probe.SharedBudget // aggregate root; campaigns chain under it
	pacer  *probe.TokenBucket  // nil when pacing is disabled

	running int // campaigns currently running; guarded by tenants.mu

	gRunning    *telemetry.Gauge
	gBudgetLeft *telemetry.Gauge
	cProbes     *telemetry.Counter
	cDone       *telemetry.Counter
	cFailed     *telemetry.Counter
	cCancelled  *telemetry.Counter
	cInterrupt  *telemetry.Counter
	cAccepted   *telemetry.Counter
	cRejBudget  *telemetry.Counter
	cRejSpec    *telemetry.Counter
}

// tenants is the tenant registry: configured tenants are materialized at
// daemon start (so their metric families render from the first exposition),
// unknown tenants are admitted on first submission under the default policy.
type tenants struct {
	tel      *telemetry.Telemetry
	defaults TenantConfig

	mu   sync.Mutex
	list []*tenantState // creation order; looked up linearly (tenants are few)
}

func newTenants(tel *telemetry.Telemetry, defaults TenantConfig, configured []TenantConfig) *tenants {
	ts := &tenants{tel: tel, defaults: defaults}
	for _, cfg := range configured {
		ts.materialize(cfg)
	}
	return ts
}

// materialize builds a tenant's state and registers its metric families.
// Caller must not hold a conflicting lock; called from the constructor and
// under mu from get.
func (ts *tenants) materialize(cfg TenantConfig) *tenantState {
	t := &tenantState{
		cfg:    cfg,
		budget: probe.NewSharedBudget(cfg.ProbeBudget),

		gRunning:    ts.tel.Gauge("tracenet_tenant_campaigns_running", "tenant", cfg.Name),
		gBudgetLeft: ts.tel.Gauge("tracenet_tenant_budget_remaining", "tenant", cfg.Name),
		cProbes:     ts.tel.Counter("tracenet_tenant_probes_total", "tenant", cfg.Name),
		cAccepted:   ts.tel.Counter("tracenet_tenant_campaigns_total", "tenant", cfg.Name, "status", "accepted"),
		cDone:       ts.tel.Counter("tracenet_tenant_campaigns_total", "tenant", cfg.Name, "status", "done"),
		cFailed:     ts.tel.Counter("tracenet_tenant_campaigns_total", "tenant", cfg.Name, "status", "failed"),
		cCancelled:  ts.tel.Counter("tracenet_tenant_campaigns_total", "tenant", cfg.Name, "status", "cancelled"),
		cInterrupt:  ts.tel.Counter("tracenet_tenant_campaigns_total", "tenant", cfg.Name, "status", "interrupted"),
		cRejBudget:  ts.tel.Counter("tracenet_tenant_rejects_total", "tenant", cfg.Name, "reason", "budget"),
		cRejSpec:    ts.tel.Counter("tracenet_tenant_rejects_total", "tenant", cfg.Name, "reason", "spec"),
	}
	if cfg.RateInterval > 0 {
		t.pacer = probe.NewTokenBucket(cfg.RateInterval, cfg.RateBurst)
		t.pacer.SetWaitCounter(ts.tel.Counter("tracenet_tenant_pacer_wait_ticks_total", "tenant", cfg.Name))
	}
	if cfg.ProbeBudget > 0 {
		t.gBudgetLeft.Set(int64(cfg.ProbeBudget))
	}
	ts.list = append(ts.list, t)
	return t
}

// get returns the named tenant's state, admitting an unknown tenant under
// the default policy.
func (ts *tenants) get(name string) *tenantState {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, t := range ts.list {
		if t.cfg.Name == name {
			return t
		}
	}
	cfg := ts.defaults
	cfg.Name = name
	return ts.materialize(cfg)
}

// tryAcquire reserves a running-campaign slot, honouring MaxConcurrent.
func (ts *tenants) tryAcquire(t *tenantState) bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if t.cfg.MaxConcurrent > 0 && t.running >= t.cfg.MaxConcurrent {
		return false
	}
	t.running++
	t.gRunning.Set(int64(t.running))
	return true
}

// release returns a running-campaign slot.
func (ts *tenants) release(t *tenantState) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t.running--
	t.gRunning.Set(int64(t.running))
}

// charge accounts a finished campaign's wire spend against the tenant's
// exposition: the probes counter and the remaining-budget gauge (the budget
// itself was charged live by the probe layer's chained reservations).
func (t *tenantState) charge(wireProbes uint64) {
	t.cProbes.Add(wireProbes)
	if t.cfg.ProbeBudget > 0 {
		t.gBudgetLeft.Set(int64(t.budget.Remaining()))
	}
}

// countOutcome bumps the tenant's campaigns_total series for a final status.
func (t *tenantState) countOutcome(status string) {
	switch status {
	case stateDone:
		t.cDone.Inc()
	case stateFailed:
		t.cFailed.Inc()
	case stateCancelled:
		t.cCancelled.Inc()
	case stateInterrupted:
		t.cInterrupt.Inc()
	}
}
