package daemon

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"os"
)

// The submission API, mounted at /api/v1/ beside the observability
// endpoints (obs.Server.Mount):
//
//	POST   /api/v1/campaigns                submit a Spec, returns {id, status}
//	GET    /api/v1/campaigns                list status documents
//	GET    /api/v1/campaigns/{id}           one status document + live progress
//	GET    /api/v1/campaigns/{id}/report    the byte-stable final report
//	GET    /api/v1/campaigns/{id}/eval      the ground-truth evaluation JSON
//	GET    /api/v1/campaigns/{id}/checkpoint the collect checkpoint v1
//	DELETE /api/v1/campaigns/{id}           cancel (queued or running)
//
// Artifacts stream straight from the spool, so a GET observes exactly the
// bytes a restart would resume from.

// apiHandler builds the /api/v1/ mux.
func (d *Daemon) apiHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", d.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", d.handleList)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", d.handleStatus)
	mux.HandleFunc("DELETE /api/v1/campaigns/{id}", d.handleCancel)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/report", d.artifactHandler(".report.txt", "text/plain; charset=utf-8"))
	mux.HandleFunc("GET /api/v1/campaigns/{id}/eval", d.artifactHandler(".eval.json", "application/json"))
	mux.HandleFunc("GET /api/v1/campaigns/{id}/checkpoint", d.artifactHandler(".checkpoint.json", "application/json"))
	return mux
}

// writeJSON renders v as the indented JSON response body. Encoding happens
// before the header is committed, so an encode failure still yields a 500.
func writeJSON(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
}

// errorDoc is the API's error body.
type errorDoc struct {
	Error string `json:"error"`
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	sp, err := ReadSpec(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	id, err := d.Submit(sp)
	if err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrNotAccepting):
			code = http.StatusServiceUnavailable
		case errors.Is(err, ErrBudgetExhausted):
			code = http.StatusTooManyRequests
		}
		writeJSON(w, code, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}{ID: id, Status: stateQueued})
}

func (d *Daemon) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Campaigns []StatusDoc `json:"campaigns"`
	}{Campaigns: d.List()})
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	doc, err := d.Status(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	status, err := d.Cancel(r.PathValue("id"))
	if err != nil {
		code := http.StatusConflict
		if errors.Is(err, ErrUnknownCampaign) {
			code = http.StatusNotFound
		}
		writeJSON(w, code, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}{ID: r.PathValue("id"), Status: status})
}

// artifactHandler streams a spool artifact for a known campaign. The file
// path is derived from the registered campaign ID, never from the request,
// so the spool directory is not traversable.
func (d *Daemon) artifactHandler(suffix, contentType string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		cs := d.campaign(r.PathValue("id"))
		if cs == nil {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: ErrUnknownCampaign.Error()})
			return
		}
		data, err := os.ReadFile(d.sp.path(cs.id + suffix))
		if err != nil {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "artifact not available"})
			return
		}
		w.Header().Set("Content-Type", contentType)
		w.Write(data)
	}
}
