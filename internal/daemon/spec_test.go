package daemon

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error, "" = valid
	}{
		{"minimal", Spec{Tenant: "alice"}, ""},
		{"full", Spec{Tenant: "a-b_c.9", Topology: "random", Seed: 7, Proto: "udp",
			Targets: []string{"10.0.5.2"}, Parallel: 4, Budget: 100,
			RescanInterval: 50, MaxRescans: 3}, ""},
		{"no tenant", Spec{}, "tenant is required"},
		{"bad tenant", Spec{Tenant: "a b"}, "tenant"},
		{"file topology", Spec{Tenant: "a", Topology: "/etc/passwd"}, "not a built-in"},
		{"bad proto", Spec{Tenant: "a", Proto: "gre"}, "protocol"},
		{"bad target", Spec{Tenant: "a", Targets: []string{"nope"}}, "target"},
		{"dup target", Spec{Tenant: "a", Targets: []string{"10.0.0.1", "10.0.0.1"}}, "duplicate"},
		{"rescan without interval", Spec{Tenant: "a", MaxRescans: 1}, "rescan_interval"},
		{"negative parallel", Spec{Tenant: "a", Parallel: -1}, "non-negative"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestSpecRoundTrip: the canonical encoding reads back identical, and
// unknown fields are rejected rather than ignored.
func TestSpecRoundTrip(t *testing.T) {
	sp := &Spec{Tenant: "alice", Topology: "random", Seed: 42,
		Targets: []string{"10.0.5.2"}, Parallel: 2, Budget: 500, Defend: true}
	var buf bytes.Buffer
	if err := WriteSpec(&buf, sp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sp) {
		t.Fatalf("round trip = %+v, want %+v", got, sp)
	}

	if _, err := ReadSpec(strings.NewReader(`{"tenant": "a", "bogus_knob": true}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
