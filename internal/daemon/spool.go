package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The spool directory is the daemon's journal: every accepted campaign
// leaves a spec file and a state file, and completed or interrupted
// campaigns add their artifacts. File names are derived only from
// daemon-generated campaign IDs, never from client input.
//
//	<id>.spec.json        the accepted submission, canonical encoding
//	<id>.state.json       lifecycle state + journaled per-target rows
//	<id>.checkpoint.json  collect checkpoint v1 (interrupted and final)
//	<id>.report.txt       the byte-stable final report
//	<id>.eval.json        ground-truth evaluation (when the spec asks)
//	tracenetd.json        daemon-level state: scheduler clock, next sequence
//
// Writes are atomic (temp file + rename) so a SIGTERM racing a write never
// leaves a half-journaled campaign for the next start to trip over.

// Campaign lifecycle states as persisted and served by the API.
const (
	stateQueued      = "queued"
	stateRunning     = "running"
	stateDone        = "done"
	stateFailed      = "failed"
	stateCancelled   = "cancelled"
	stateInterrupted = "interrupted"
)

// TargetRow is one target's journaled, schedule-independent outcome: the
// resume-invariant report is rendered from these rows, so a row completed
// before a SIGTERM carries identical bytes into the resumed run's report.
type TargetRow struct {
	Dst         string `json:"dst"`
	Status      string `json:"status"`
	Reached     bool   `json:"reached,omitempty"`
	Hops        int    `json:"hops,omitempty"`
	Subnets     int    `json:"subnets,omitempty"`
	TraceProbes uint64 `json:"trace_probes,omitempty"`
	Note        string `json:"note,omitempty"`
}

// State is one campaign's persisted lifecycle record.
type State struct {
	ID       string `json:"id"`
	Seq      uint64 `json:"seq"`
	Tenant   string `json:"tenant"`
	Status   string `json:"status"`
	Priority int    `json:"priority,omitempty"`
	// Rescan is the re-scan generation; NotBefore its freshness deadline in
	// scheduler ticks.
	Rescan    int    `json:"rescan,omitempty"`
	NotBefore uint64 `json:"not_before,omitempty"`
	Error     string `json:"error,omitempty"`
	// Rows journals completed targets (status done) so an interrupted
	// campaign's finished work survives into the resumed report.
	Rows []TargetRow `json:"rows,omitempty"`
}

// daemonState is the spool's daemon-level record, persisted so the
// scheduler clock and ID sequence survive restarts (freshness deadlines are
// measured on that clock).
type daemonState struct {
	Clock   uint64 `json:"clock"`
	NextSeq uint64 `json:"next_seq"`
}

// spool wraps the directory with atomic read/write helpers.
type spool struct {
	dir string
}

func (s spool) path(name string) string { return filepath.Join(s.dir, name) }

// writeFile atomically replaces name with data.
func (s spool) writeFile(name string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, "."+name+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), s.path(name)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// writeJSON atomically writes v as indented JSON.
func (s spool) writeJSON(name string, v any) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return err
	}
	return s.writeFile(name, buf.Bytes())
}

// readJSON decodes name into v.
func (s spool) readJSON(name string, v any) error {
	data, err := os.ReadFile(s.path(name))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("daemon: spool %s: %w", name, err)
	}
	return nil
}

// exists reports whether name is present in the spool.
func (s spool) exists(name string) bool {
	_, err := os.Stat(s.path(name))
	return err == nil
}

// loadStates reads every campaign state file in the spool, ordered by
// admission sequence (ties — impossible in a well-formed spool — break by
// ID) so replay re-admits campaigns in their original order.
func (s spool) loadStates() ([]*State, error) {
	names, err := filepath.Glob(s.path("*.state.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var states []*State
	for _, path := range names {
		name := filepath.Base(path)
		var st State
		if err := s.readJSON(name, &st); err != nil {
			return nil, err
		}
		if st.ID == "" || st.ID+".state.json" != name {
			return nil, fmt.Errorf("daemon: spool %s: state names campaign %q", name, st.ID)
		}
		states = append(states, &st)
	}
	sort.SliceStable(states, func(i, j int) bool {
		if states[i].Seq != states[j].Seq {
			return states[i].Seq < states[j].Seq
		}
		return states[i].ID < states[j].ID
	})
	return states, nil
}

// baseID strips any re-scan suffix ("c0003.r2" -> "c0003").
func baseID(id string) string {
	if i := strings.Index(id, "."); i >= 0 {
		return id[:i]
	}
	return id
}
