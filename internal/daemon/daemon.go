package daemon

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"tracenet/internal/cli"
	"tracenet/internal/collect"
	"tracenet/internal/core"
	"tracenet/internal/groundtruth"
	"tracenet/internal/invariant"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/obs"
	"tracenet/internal/probe"
	"tracenet/internal/telemetry"
)

// Config assembles a Daemon.
type Config struct {
	// Spool is the journal directory (required; created if absent).
	Spool string
	// Tenants are the pre-configured tenant policies, materialized — metric
	// families included — at construction so exposition is byte-stable
	// whether or not a tenant has submitted yet.
	Tenants []TenantConfig
	// TenantDefaults is the policy applied to tenants not listed in Tenants
	// (Name is ignored). The zero value admits unknown tenants unlimited.
	TenantDefaults TenantConfig
	// Concurrent is how many campaigns run at once (default 1; 1 keeps
	// cross-campaign pacing deterministic, see TokenBucket).
	Concurrent int
	// StallWindow configures each campaign's stall watchdog (0 = default).
	StallWindow uint64
	// Clock overrides the scheduler clock (tests inject a ManualClock to
	// drive freshness deadlines). Default: the daemon's cumulative clock,
	// which advances by each finished campaign's virtual-tick span — so
	// scheduling time, like everything else, is derived from the seeds.
	Clock telemetry.Clock
	// Logger receives the daemon's structured log (may be nil).
	Logger *obs.Logger
}

// Submission errors the API maps to status codes.
var (
	// ErrNotAccepting: the daemon is not started yet, replaying its spool,
	// or draining.
	ErrNotAccepting = errors.New("daemon: not accepting submissions")
	// ErrBudgetExhausted: the tenant's aggregate probe budget is spent.
	ErrBudgetExhausted = errors.New("daemon: tenant probe budget exhausted")
	// ErrUnknownCampaign: no campaign with that ID.
	ErrUnknownCampaign = errors.New("daemon: unknown campaign")
	// ErrCampaignFinal: the campaign already reached a final state.
	ErrCampaignFinal = errors.New("daemon: campaign already final")
)

// schedClock is the daemon's own deterministic scheduler clock: a monotone
// counter advanced by each finished campaign's virtual-tick span.
type schedClock struct {
	ticks atomic.Uint64
}

func (c *schedClock) Ticks() uint64    { return c.ticks.Load() }
func (c *schedClock) advance(d uint64) { c.ticks.Add(d) }
func (c *schedClock) restore(v uint64) { c.ticks.Store(v) }

// campaignState is one campaign's in-memory record, mirrored to the spool.
type campaignState struct {
	id     string
	seq    uint64
	rescan int
	tenant *tenantState
	spec   *Spec

	// Mutable fields below are guarded by the daemon mutex.
	status     string
	errText    string
	notBefore  uint64
	rows       []TargetRow // journaled completed-target rows
	prog       *collect.Progress
	wd         *collect.Watchdog
	tel        *telemetry.Telemetry // the campaign's clock domain
	ctx        context.Context
	cancel     context.CancelFunc
	userCancel bool
}

// Daemon is the tracenetd service core: queue, scheduler, tenant registry,
// and spool. Construct with New, then Start (which replays the spool),
// Attach to an obs.Server, and eventually Drain.
type Daemon struct {
	cfg     Config
	tel     *telemetry.Telemetry
	lg      *obs.Logger
	sp      spool
	tenants *tenants
	clock   *schedClock

	mu        sync.Mutex
	cond      *sync.Cond
	q         queue
	campaigns []*campaignState // admission (seq) order
	nextSeq   uint64
	started   bool
	replaying bool
	draining  bool
	wg        sync.WaitGroup

	gQueued      *telemetry.Gauge
	gRunning     *telemetry.Gauge
	gClock       *telemetry.Gauge
	cAccepted    *telemetry.Counter
	cDone        *telemetry.Counter
	cFailed      *telemetry.Counter
	cCancelled   *telemetry.Counter
	cInterrupted *telemetry.Counter
	cRescans     *telemetry.Counter
	cReplayed    *telemetry.Counter

	// testTargetDone, when set before Start, is invoked synchronously from
	// every campaign's OnTargetDone with the campaign ID and the number of
	// rows completed so far — the deterministic interrupt point the
	// lifecycle tests hang their SIGTERM off. testCampaignFinished fires
	// after a campaign's outcome (and artifacts) land in the spool, so tests
	// wait on completion without polling a clock.
	testTargetDone       func(id string, done int)
	testCampaignFinished func(id, status string)
}

// New builds a Daemon over the spool directory. The daemon owns a fresh
// telemetry registry on its scheduler clock; retrieve it with Telemetry to
// mount the exposition server over the same registry.
func New(cfg Config) (*Daemon, error) {
	if cfg.Spool == "" {
		return nil, errors.New("daemon: Config.Spool is required")
	}
	if err := os.MkdirAll(cfg.Spool, 0o755); err != nil {
		return nil, err
	}
	if cfg.Concurrent < 1 {
		cfg.Concurrent = 1
	}
	d := &Daemon{cfg: cfg, sp: spool{dir: cfg.Spool}, clock: &schedClock{}, nextSeq: 1}
	d.cond = sync.NewCond(&d.mu)
	d.tel = telemetry.New(d.Clock())
	d.lg = cfg.Logger
	d.tenants = newTenants(d.tel, cfg.TenantDefaults, cfg.Tenants)

	// Register every tracenet_daemon_* family up front so the exposition
	// lists the same series from the first scrape to the last.
	d.gQueued = d.tel.Gauge("tracenet_daemon_queue_depth")
	d.gRunning = d.tel.Gauge("tracenet_daemon_campaigns_running")
	d.gClock = d.tel.Gauge("tracenet_daemon_clock_ticks")
	d.cAccepted = d.tel.Counter("tracenet_daemon_campaigns_total", "status", "accepted")
	d.cDone = d.tel.Counter("tracenet_daemon_campaigns_total", "status", "done")
	d.cFailed = d.tel.Counter("tracenet_daemon_campaigns_total", "status", "failed")
	d.cCancelled = d.tel.Counter("tracenet_daemon_campaigns_total", "status", "cancelled")
	d.cInterrupted = d.tel.Counter("tracenet_daemon_campaigns_total", "status", "interrupted")
	d.cRescans = d.tel.Counter("tracenet_daemon_rescans_total")
	d.cReplayed = d.tel.Counter("tracenet_daemon_spool_replayed_total")
	return d, nil
}

// Telemetry returns the daemon's registry/recorder bundle, clocked by the
// scheduler clock — hand it to obs.NewServer so /metrics exposes the
// daemon, tenant, and campaign families together.
func (d *Daemon) Telemetry() *telemetry.Telemetry { return d.tel }

// Clock returns the scheduler clock (the injected one, if any).
func (d *Daemon) Clock() telemetry.Clock {
	if d.cfg.Clock != nil {
		return d.cfg.Clock
	}
	return d.clock
}

// SetLogger installs the structured logger. Call before Start.
func (d *Daemon) SetLogger(lg *obs.Logger) { d.lg = lg }

func (d *Daemon) now() uint64 { return d.Clock().Ticks() }

// Start replays the spool — re-admitting queued campaigns and resuming
// interrupted ones — and launches the scheduler runners. Readiness checks
// report not-ready until the replay completes.
func (d *Daemon) Start() error {
	d.mu.Lock()
	if d.started || d.replaying {
		d.mu.Unlock()
		return errors.New("daemon: already started")
	}
	d.replaying = true
	d.mu.Unlock()

	err := d.replay()

	d.mu.Lock()
	d.replaying = false
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.started = true
	d.gQueued.Set(int64(d.q.len()))
	n := d.cfg.Concurrent
	d.mu.Unlock()

	for i := 0; i < n; i++ {
		d.wg.Add(1)
		go d.runner()
	}
	return nil
}

// replay reconstructs the daemon from the spool: the scheduler clock and ID
// sequence, every campaign's record, and the queue — queued entries
// re-admitted as they were, running/interrupted ones re-queued with their
// checkpoint and journaled rows so the resumed run re-renders the same
// report bytes.
func (d *Daemon) replay() error {
	var ds daemonState
	if d.sp.exists("tracenetd.json") {
		if err := d.sp.readJSON("tracenetd.json", &ds); err != nil {
			return err
		}
		d.clock.restore(ds.Clock)
		d.gClock.Set(int64(ds.Clock))
	}
	states, err := d.sp.loadStates()
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if ds.NextSeq > d.nextSeq {
		d.nextSeq = ds.NextSeq
	}
	for _, st := range states {
		var sp Spec
		if err := d.sp.readJSON(st.ID+".spec.json", &sp); err != nil {
			return err
		}
		cs := &campaignState{
			id:        st.ID,
			seq:       st.Seq,
			rescan:    st.Rescan,
			tenant:    d.tenants.get(st.Tenant),
			spec:      &sp,
			status:    st.Status,
			errText:   st.Error,
			notBefore: st.NotBefore,
			rows:      st.Rows,
		}
		if cs.seq >= d.nextSeq {
			d.nextSeq = cs.seq + 1
		}
		d.campaigns = append(d.campaigns, cs)
		switch st.Status {
		case stateQueued:
			d.q.push(d.entryFor(cs, nil))
			d.cReplayed.Inc()
		case stateRunning, stateInterrupted:
			// The previous process died (or drained) mid-campaign: resume
			// from its checkpoint, carrying the journaled rows forward.
			e := d.entryFor(cs, nil)
			if d.sp.exists(st.ID + ".checkpoint.json") {
				f, err := os.Open(d.sp.path(st.ID + ".checkpoint.json"))
				if err != nil {
					return err
				}
				cp, err := collect.ReadCheckpoint(f)
				f.Close()
				if err != nil {
					return err
				}
				e.resume = cp
			}
			cs.status = stateQueued
			d.q.push(e)
			d.cReplayed.Inc()
			if err := d.sp.writeJSON(st.ID+".state.json", d.stateOf(cs)); err != nil {
				return err
			}
		}
	}
	return nil
}

// entryFor builds the queue entry for a campaign record.
func (d *Daemon) entryFor(cs *campaignState, resume *collect.Checkpoint) *queueEntry {
	return &queueEntry{
		id:        cs.id,
		seq:       cs.seq,
		priority:  cs.spec.Priority,
		tenant:    cs.tenant,
		spec:      cs.spec,
		notBefore: cs.notBefore,
		resume:    resume,
		rows:      cs.rows,
		rescan:    cs.rescan,
	}
}

// stateOf snapshots a campaign record for the spool. Caller holds d.mu (or
// exclusive access during replay).
func (d *Daemon) stateOf(cs *campaignState) *State {
	return &State{
		ID:        cs.id,
		Seq:       cs.seq,
		Tenant:    cs.tenant.cfg.Name,
		Status:    cs.status,
		Priority:  cs.spec.Priority,
		Rescan:    cs.rescan,
		NotBefore: cs.notBefore,
		Error:     cs.errText,
		Rows:      cs.rows,
	}
}

// persistDaemonState journals the scheduler clock and ID sequence.
func (d *Daemon) persistDaemonState() error {
	d.mu.Lock()
	ds := daemonState{Clock: d.clock.Ticks(), NextSeq: d.nextSeq}
	d.mu.Unlock()
	return d.sp.writeJSON("tracenetd.json", &ds)
}

// Submit validates and admits a campaign spec, journals it, and queues it.
// Returns the assigned campaign ID.
func (d *Daemon) Submit(sp *Spec) (string, error) {
	if err := sp.Validate(); err != nil {
		return "", err
	}
	t := d.tenants.get(sp.Tenant)
	if t.budget.Exhausted() {
		t.cRejBudget.Inc()
		return "", fmt.Errorf("%w: tenant %s", ErrBudgetExhausted, sp.Tenant)
	}

	d.mu.Lock()
	if !d.started || d.draining {
		d.mu.Unlock()
		return "", ErrNotAccepting
	}
	seq := d.nextSeq
	d.nextSeq++
	cs := &campaignState{
		id:     fmt.Sprintf("c%04d", seq),
		seq:    seq,
		tenant: t,
		spec:   sp,
		status: stateQueued,
	}
	d.campaigns = append(d.campaigns, cs)
	st := d.stateOf(cs)
	d.mu.Unlock()

	if err := d.sp.writeJSON(cs.id+".spec.json", sp); err != nil {
		return "", err
	}
	if err := d.sp.writeJSON(cs.id+".state.json", st); err != nil {
		return "", err
	}
	if err := d.persistDaemonState(); err != nil {
		return "", err
	}
	t.cAccepted.Inc()
	d.cAccepted.Inc()
	d.lg.Info("campaign accepted", "campaign", cs.id, "tenant", sp.Tenant)

	d.mu.Lock()
	d.q.push(d.entryFor(cs, nil))
	d.gQueued.Set(int64(d.q.len()))
	d.cond.Broadcast()
	d.mu.Unlock()
	return cs.id, nil
}

// Nudge wakes the scheduler so it re-evaluates freshness deadlines — for
// callers that advanced an injected Clock.
func (d *Daemon) Nudge() {
	d.mu.Lock()
	d.cond.Broadcast()
	d.mu.Unlock()
}

// Drain stops the daemon: submissions are refused, queued campaigns stay
// journaled for the next start, and running campaigns are cancelled — their
// in-flight targets finish, a checkpoint and the journaled rows land in the
// spool, and their state becomes interrupted. Returns once every runner has
// stopped, or when ctx expires.
func (d *Daemon) Drain(ctx context.Context) error {
	d.mu.Lock()
	d.draining = true
	for _, cs := range d.campaigns {
		if cs.status == stateRunning && cs.cancel != nil {
			cs.cancel()
		}
	}
	d.cond.Broadcast()
	d.mu.Unlock()

	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// runner is one scheduler worker: pull the next runnable entry, run it to
// its outcome, release the tenant slot, repeat until draining.
func (d *Daemon) runner() {
	defer d.wg.Done()
	for {
		e := d.nextEntry()
		if e == nil {
			return
		}
		d.runCampaign(e)
		d.tenants.release(e.tenant)
		d.mu.Lock()
		d.cond.Broadcast()
		d.mu.Unlock()
	}
}

// nextEntry blocks until an entry is runnable (freshness deadline passed,
// tenant below its concurrency cap) or the daemon drains (nil). The tenant
// slot is acquired before returning.
func (d *Daemon) nextEntry() *queueEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.draining {
			return nil
		}
		if e := d.q.pop(d.now(), d.tenants.hasSlot); e != nil {
			if d.tenants.tryAcquire(e.tenant) {
				d.gQueued.Set(int64(d.q.len()))
				return e
			}
			d.q.push(e) // lost the slot between pop and acquire; requeue
		}
		d.cond.Wait()
	}
}

// hasSlot reports whether the tenant may start another campaign.
func (ts *tenants) hasSlot(t *tenantState) bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return t.cfg.MaxConcurrent == 0 || t.running < t.cfg.MaxConcurrent
}

// runCampaign executes one queue entry end to end: resolve the spec into a
// fresh seeded substrate, run the collect engine under the tenant's budget
// and pacer, then land the outcome — artifacts, journal, accounting, and
// possibly the next re-scan generation — in the spool.
func (d *Daemon) runCampaign(e *queueEntry) {
	cs := d.campaign(e.id)
	if cs == nil {
		return // cancelled out of the registry between pop and run
	}

	sc, net, targets, ccfg, err := d.resolve(e)
	if err != nil {
		d.finish(cs, e, nil, nil, nil, err)
		return
	}

	// The campaign's telemetry rides the fresh substrate's virtual clock but
	// shares the daemon's registry and flight recorder, so every campaign's
	// labeled series land in one exposition.
	ctel := telemetry.New(net)
	ctel.Registry = d.tel.Registry
	ctel.Recorder = d.tel.Recorder
	net.SetTelemetry(ctel)

	prog := collect.NewProgress()
	wd := collect.NewCampaignWatchdog(prog, ctel, d.cfg.StallWindow, e.id)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ccfg.Telemetry = ctel
	ccfg.Progress = prog

	hook := d.testTargetDone
	var completed atomic.Int64
	ccfg.OnTargetDone = func(r collect.TargetResult) {
		n := completed.Add(1)
		d.lg.Debug("target done", "campaign", e.id, "dst", r.Dst.String(), "status", string(r.Status))
		if hook != nil {
			hook(e.id, int(n))
		}
	}

	d.mu.Lock()
	cs.status = stateRunning
	cs.prog = prog
	cs.wd = wd
	cs.tel = ctel
	cs.ctx = ctx
	cs.cancel = cancel
	preCancelled := cs.userCancel || d.draining
	st := d.stateOf(cs)
	d.gRunning.Add(1)
	d.mu.Unlock()
	if preCancelled {
		cancel() // a Cancel raced the pop; land the campaign as cancelled
	}
	if err := d.sp.writeJSON(cs.id+".state.json", st); err != nil {
		d.lg.Error("spool write failed", "campaign", cs.id, "err", err.Error())
	}
	d.lg.Info("campaign started", "campaign", cs.id, "tenant", cs.tenant.cfg.Name,
		"targets", fmt.Sprint(len(targets)))

	startTick := net.Ticks()
	rep, err := collect.Run(ctx, *ccfg)
	elapsed := net.Ticks() - startTick
	if d.cfg.Clock == nil {
		d.clock.advance(elapsed)
		d.gClock.Set(int64(d.clock.Ticks()))
	}

	d.mu.Lock()
	d.gRunning.Add(-1)
	d.mu.Unlock()
	d.finish(cs, e, sc, targets, rep, err)
	if err := d.persistDaemonState(); err != nil {
		d.lg.Error("spool write failed", "campaign", cs.id, "err", err.Error())
	}
}

// resolve turns a spec into a runnable collect.Config on a fresh substrate.
func (d *Daemon) resolve(e *queueEntry) (*cli.Scenario, *netsim.Network, []ipv4.Addr, *collect.Config, error) {
	sp := e.spec
	sc, err := cli.Load(sp.topology(), sp.seed())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	vantage := sp.Vantage
	if vantage == "" {
		vantage = sc.Vantage
	}
	var proto probe.Protocol
	switch sp.Proto {
	case "", "icmp":
		proto = probe.ICMP
	case "udp":
		proto = probe.UDP
	case "tcp":
		proto = probe.TCP
	}
	targets := sc.Destinations
	if len(sp.Targets) > 0 {
		targets = nil
		for _, t := range sp.Targets {
			a, err := ipv4.ParseAddr(t)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			targets = append(targets, a)
		}
	}
	if len(targets) == 0 {
		return nil, nil, nil, nil, errors.New("daemon: spec resolves to no targets")
	}

	net := netsim.New(sc.Topo, netsim.Config{Seed: sp.seed()})
	if sp.Chaos != 0 {
		if err := net.InstallFaults(netsim.RandomFaultPlan(sc.Topo, sp.Chaos)); err != nil {
			return nil, nil, nil, nil, err
		}
	}

	popts := probe.Options{Protocol: proto, Cache: true}
	if sp.Backoff {
		popts.Retry = &probe.RetryPolicy{MaxRetries: 2, BackoffBase: 4, BackoffMax: 64, Jitter: 0.25}
	}
	if sp.Breaker {
		popts.Breaker = &probe.BreakerConfig{}
	}

	ccfg := &collect.Config{
		ID:           e.id,
		Targets:      targets,
		Parallel:     sp.Parallel,
		Budget:       sp.Budget,
		BudgetParent: e.tenant.budget,
		DisableCache: sp.DisableCache,
		Greedy:       sp.Greedy,
		Session:      core.Config{MaxTTL: sp.maxTTL(), Defend: sp.Defend},
		Probe:        popts,
		Resume:       e.resume,
		Dial: func(opts probe.Options) (*probe.Prober, error) {
			port, err := net.PortFor(vantage)
			if err != nil {
				return nil, err
			}
			return probe.New(port, port.LocalAddr(), opts), nil
		},
	}
	if e.tenant.pacer != nil {
		ccfg.Pacer = e.tenant.pacer
	}
	return sc, net, targets, ccfg, nil
}

// finish lands a campaign's outcome: classify it, journal the merged rows,
// write the artifacts a completed campaign owes, account the tenant's
// spend, and enroll the next re-scan generation when the spec asks for one.
func (d *Daemon) finish(cs *campaignState, e *queueEntry, sc *cli.Scenario, targets []ipv4.Addr, rep *collect.Report, runErr error) {
	d.mu.Lock()
	status := stateDone
	switch {
	case runErr != nil:
		status = stateFailed
		cs.errText = runErr.Error()
	case cs.ctx != nil && cs.ctx.Err() != nil:
		if cs.userCancel {
			status = stateCancelled
		} else {
			status = stateInterrupted
		}
	}
	cs.status = status
	var merged []TargetRow
	if rep != nil {
		merged = mergeRows(rep.Targets, e.rows)
		cs.rows = journalRows(merged)
	}
	st := d.stateOf(cs)
	d.mu.Unlock()

	if rep != nil {
		cs.tenant.charge(rep.Stats.WireProbes)
		if cap := cs.tenant.cfg.ProbeBudget; cap > 0 {
			invariant.Assertf(cs.tenant.budget.Used() <= cap,
				"daemon: tenant %s overspent aggregate budget: %d of %d",
				cs.tenant.cfg.Name, cs.tenant.budget.Used(), cap)
		}
		var cp bytes.Buffer
		if err := collect.WriteCheckpoint(&cp, rep.Checkpoint()); err == nil {
			if err := d.sp.writeFile(cs.id+".checkpoint.json", cp.Bytes()); err != nil {
				d.lg.Error("spool write failed", "campaign", cs.id, "err", err.Error())
			}
		}
	}
	if status == stateDone && rep != nil {
		report := renderReport(cs.id, cs.tenant.cfg.Name, targets, merged, rep.Subnets())
		if err := d.sp.writeFile(cs.id+".report.txt", report); err != nil {
			d.lg.Error("spool write failed", "campaign", cs.id, "err", err.Error())
		}
		if cs.spec.Eval && sc != nil {
			truth := groundtruth.FromTopology(sc.Topo, groundtruth.Options{})
			score := truth.Score(groundtruth.FromCoreSubnets(rep.Subnets()))
			var buf bytes.Buffer
			if err := score.WriteJSON(&buf); err == nil {
				if err := d.sp.writeFile(cs.id+".eval.json", buf.Bytes()); err != nil {
					d.lg.Error("spool write failed", "campaign", cs.id, "err", err.Error())
				}
			}
		}
	}
	if err := d.sp.writeJSON(cs.id+".state.json", st); err != nil {
		d.lg.Error("spool write failed", "campaign", cs.id, "err", err.Error())
	}

	cs.tenant.countOutcome(status)
	switch status {
	case stateDone:
		d.cDone.Inc()
	case stateFailed:
		d.cFailed.Inc()
	case stateCancelled:
		d.cCancelled.Inc()
	case stateInterrupted:
		d.cInterrupted.Inc()
	}
	d.lg.Info("campaign finished", "campaign", cs.id, "status", status)

	if status == stateDone && cs.spec.RescanInterval > 0 && e.rescan < cs.spec.MaxRescans {
		d.enqueueRescan(cs, e)
	}
	if d.testCampaignFinished != nil {
		d.testCampaignFinished(cs.id, status)
	}
}

// enqueueRescan enrolls the next re-scan generation: a fresh campaign over
// the same spec, deferred until the freshness deadline on the scheduler
// clock.
func (d *Daemon) enqueueRescan(cs *campaignState, e *queueEntry) {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return
	}
	gen := e.rescan + 1
	seq := d.nextSeq
	d.nextSeq++
	next := &campaignState{
		id:        fmt.Sprintf("%s.r%d", baseID(cs.id), gen),
		seq:       seq,
		rescan:    gen,
		tenant:    cs.tenant,
		spec:      cs.spec,
		status:    stateQueued,
		notBefore: d.now() + cs.spec.RescanInterval,
	}
	d.campaigns = append(d.campaigns, next)
	d.q.push(d.entryFor(next, nil))
	d.gQueued.Set(int64(d.q.len()))
	st := d.stateOf(next)
	d.cond.Broadcast()
	d.mu.Unlock()

	d.cRescans.Inc()
	if err := d.sp.writeJSON(next.id+".spec.json", next.spec); err != nil {
		d.lg.Error("spool write failed", "campaign", next.id, "err", err.Error())
	}
	if err := d.sp.writeJSON(next.id+".state.json", st); err != nil {
		d.lg.Error("spool write failed", "campaign", next.id, "err", err.Error())
	}
	d.lg.Info("rescan enrolled", "campaign", next.id, "not_before", fmt.Sprint(next.notBefore))
}

// campaign looks up a campaign record by ID.
func (d *Daemon) campaign(id string) *campaignState {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, cs := range d.campaigns {
		if cs.id == id {
			return cs
		}
	}
	return nil
}

// Cancel cancels a campaign: a queued one is removed from the queue and
// journaled cancelled; a running one has its context cancelled (in-flight
// targets finish, then the campaign lands as cancelled). Returns the
// campaign's resulting status.
func (d *Daemon) Cancel(id string) (string, error) {
	d.mu.Lock()
	var cs *campaignState
	for _, c := range d.campaigns {
		if c.id == id {
			cs = c
			break
		}
	}
	if cs == nil {
		d.mu.Unlock()
		return "", ErrUnknownCampaign
	}
	switch cs.status {
	case stateQueued:
		if d.q.remove(id) == nil {
			// A runner popped the entry but has not marked it running yet:
			// flag the cancel for runCampaign to honour once it has a context.
			cs.userCancel = true
			d.mu.Unlock()
			d.lg.Info("campaign cancelling", "campaign", id)
			return stateRunning, nil
		}
		d.gQueued.Set(int64(d.q.len()))
		cs.status = stateCancelled
		st := d.stateOf(cs)
		d.mu.Unlock()
		if err := d.sp.writeJSON(id+".state.json", st); err != nil {
			d.lg.Error("spool write failed", "campaign", id, "err", err.Error())
		}
		cs.tenant.countOutcome(stateCancelled)
		d.cCancelled.Inc()
		d.lg.Info("campaign cancelled", "campaign", id)
		if d.testCampaignFinished != nil {
			d.testCampaignFinished(id, stateCancelled)
		}
		return stateCancelled, nil
	case stateRunning:
		cs.userCancel = true
		cancel := cs.cancel
		d.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		d.lg.Info("campaign cancelling", "campaign", id)
		return stateRunning, nil
	default:
		st := cs.status
		d.mu.Unlock()
		return st, fmt.Errorf("%w: %s is %s", ErrCampaignFinal, id, st)
	}
}

// StatusDoc is a campaign's API status document.
type StatusDoc struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Name     string `json:"name,omitempty"`
	Status   string `json:"status"`
	Priority int    `json:"priority,omitempty"`
	Rescan   int    `json:"rescan,omitempty"`
	// NotBefore is a deferred campaign's freshness deadline in scheduler
	// ticks.
	NotBefore uint64 `json:"not_before,omitempty"`
	Error     string `json:"error,omitempty"`
	// Progress is the live collect snapshot, present once the campaign has
	// started running.
	Progress *collect.Snapshot `json:"progress,omitempty"`
}

// docOf renders a campaign's status document. Caller holds d.mu.
func docOf(cs *campaignState) StatusDoc {
	doc := StatusDoc{
		ID:        cs.id,
		Tenant:    cs.tenant.cfg.Name,
		Name:      cs.spec.Name,
		Status:    cs.status,
		Priority:  cs.spec.Priority,
		Rescan:    cs.rescan,
		NotBefore: cs.notBefore,
		Error:     cs.errText,
	}
	if cs.prog != nil {
		snap := cs.prog.Snapshot()
		doc.Progress = &snap
	}
	return doc
}

// Status returns one campaign's status document.
func (d *Daemon) Status(id string) (StatusDoc, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, cs := range d.campaigns {
		if cs.id == id {
			return docOf(cs), nil
		}
	}
	return StatusDoc{}, ErrUnknownCampaign
}

// List returns every campaign's status document in admission order.
func (d *Daemon) List() []StatusDoc {
	d.mu.Lock()
	defer d.mu.Unlock()
	docs := make([]StatusDoc, 0, len(d.campaigns))
	for _, cs := range d.campaigns {
		docs = append(docs, docOf(cs))
	}
	return docs
}

// Attach mounts the daemon on an observability server: the /api/v1/
// endpoints join the mux, readiness tracks the scheduler lifecycle and
// every running campaign's stall watchdog, and /campaigns lists running
// campaigns in admission order.
func (d *Daemon) Attach(srv *obs.Server) {
	srv.Mount("/api/v1/", d.apiHandler())
	srv.AddCheckSource(d.readinessChecks)
	srv.AddCampaignSource(d.liveCampaigns)
}

// readinessChecks derives the daemon's dynamic /readyz contribution.
func (d *Daemon) readinessChecks() []obs.Check {
	d.mu.Lock()
	defer d.mu.Unlock()
	var checks []obs.Check
	switch {
	case d.replaying:
		checks = append(checks, obs.Check{Name: "spool-replay", Probe: func() error {
			return errors.New("replaying spool")
		}})
	case !d.started:
		checks = append(checks, obs.Check{Name: "scheduler", Probe: func() error {
			return errors.New("scheduler not started")
		}})
	case d.draining:
		checks = append(checks, obs.Check{Name: "scheduler", Probe: func() error {
			return errors.New("draining")
		}})
	default:
		checks = append(checks, obs.Check{Name: "scheduler", Probe: func() error { return nil }})
	}
	for _, cs := range d.campaigns {
		if cs.status == stateRunning && cs.wd != nil {
			checks = append(checks, obs.StallCheck(cs.wd, cs.tel))
		}
	}
	return checks
}

// liveCampaigns yields the running campaigns, in admission order, for the
// /campaigns endpoint.
func (d *Daemon) liveCampaigns() []obs.CampaignEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	var entries []obs.CampaignEntry
	for _, cs := range d.campaigns {
		if cs.status == stateRunning && cs.prog != nil {
			entries = append(entries, obs.CampaignEntry{Name: cs.id, Prog: cs.prog})
		}
	}
	return entries
}
