package daemon

import "testing"

func entry(id string, seq uint64, prio int, notBefore uint64, t *tenantState) *queueEntry {
	return &queueEntry{id: id, seq: seq, priority: prio, notBefore: notBefore, tenant: t}
}

// TestQueueOrdering: highest priority first, FIFO by admission sequence
// within a priority, freshness deadlines defer eligibility.
func TestQueueOrdering(t *testing.T) {
	var q queue
	q.push(entry("a", 1, 0, 0, nil))
	q.push(entry("b", 2, 5, 0, nil))
	q.push(entry("c", 3, 5, 0, nil))
	q.push(entry("d", 4, 0, 100, nil)) // deferred past now=0

	var got []string
	for {
		e := q.pop(0, nil)
		if e == nil {
			break
		}
		got = append(got, e.id)
	}
	want := []string{"b", "c", "a"}
	if len(got) != len(want) {
		t.Fatalf("pop order = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
	if q.len() != 1 {
		t.Fatalf("deferred entry should remain queued, len = %d", q.len())
	}
	if e := q.pop(99, nil); e != nil {
		t.Fatalf("entry ran before its freshness deadline: %s", e.id)
	}
	if e := q.pop(100, nil); e == nil || e.id != "d" {
		t.Fatalf("deadline reached but pop = %v", e)
	}
}

// TestQueueTenantEligibility: an ineligible tenant's entries are passed
// over without losing their place.
func TestQueueTenantEligibility(t *testing.T) {
	busy := &tenantState{cfg: TenantConfig{Name: "busy"}}
	free := &tenantState{cfg: TenantConfig{Name: "free"}}
	var q queue
	q.push(entry("b1", 1, 9, 0, busy)) // highest priority but blocked
	q.push(entry("f1", 2, 0, 0, free))

	eligible := func(t *tenantState) bool { return t != busy }
	if e := q.pop(0, eligible); e == nil || e.id != "f1" {
		t.Fatalf("pop with busy tenant blocked = %v, want f1", e)
	}
	// Once eligible again, the blocked entry still wins on priority.
	if e := q.pop(0, nil); e == nil || e.id != "b1" {
		t.Fatalf("pop after unblock = %v, want b1", e)
	}
}

// TestQueueRemove: removal by ID extracts exactly that entry.
func TestQueueRemove(t *testing.T) {
	var q queue
	q.push(entry("a", 1, 0, 0, nil))
	q.push(entry("b", 2, 0, 0, nil))
	if e := q.remove("a"); e == nil || e.id != "a" {
		t.Fatalf("remove(a) = %v", e)
	}
	if e := q.remove("a"); e != nil {
		t.Fatalf("second remove(a) = %v, want nil", e)
	}
	if e := q.pop(0, nil); e == nil || e.id != "b" {
		t.Fatalf("pop after remove = %v, want b", e)
	}
}

// TestQueueReleasesRemovedEntries: pop and remove must not keep extracted
// entries reachable through the slice's spare capacity. A daemon queue lives
// for the process lifetime, and each entry pins a campaign Spec, resume
// checkpoint, and journal rows — a stale pointer in the vacated tail slot is
// a leak until some future push happens to overwrite it.
func TestQueueReleasesRemovedEntries(t *testing.T) {
	var q queue
	q.push(entry("a", 1, 0, 0, nil))
	q.push(entry("b", 2, 9, 0, nil)) // popped first (priority), vacating a mid slot
	q.push(entry("c", 3, 0, 0, nil))

	if e := q.pop(0, nil); e == nil || e.id != "b" {
		t.Fatalf("pop = %v, want b", e)
	}
	if e := q.remove("c"); e == nil || e.id != "c" {
		t.Fatalf("remove(c) = %v", e)
	}
	for _, stale := range q.entries[len(q.entries):cap(q.entries)] {
		if stale != nil {
			t.Fatalf("vacated slot still pins entry %q", stale.id)
		}
	}
}
