package report

import (
	"strings"
	"sync"
	"testing"

	"tracenet/internal/experiments"
)

var (
	once sync.Once
	isp  *experiments.ISPResult
	err  error
)

func ispRes(t *testing.T) *experiments.ISPResult {
	t.Helper()
	once.Do(func() { isp, err = experiments.RunISP(7) })
	if err != nil {
		t.Fatal(err)
	}
	return isp
}

func TestResearchTableRendering(t *testing.T) {
	res, err := experiments.Table1Internet2(1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	ResearchTable(&b, res)
	out := b.String()
	for _, want := range []string{
		"Internet2", "orgl", "exmt", `miss\unrs`, `undes\unrs`, "ovres",
		"/24", "/31", "179", "132", "exact match rate", "73.7%",
		"prefix similarity", "size similarity",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table lacks %q:\n%s", want, out)
		}
	}
}

func TestVennRendering(t *testing.T) {
	var b strings.Builder
	Venn(&b, ispRes(t))
	out := b.String()
	for _, want := range []string{"Figure 6", "rice", "uoregon", "umass", "all three", "paper: ~60%", "paper: ~80%"} {
		if !strings.Contains(out, want) {
			t.Errorf("venn lacks %q:\n%s", want, out)
		}
	}
}

func TestIPDistributionRendering(t *testing.T) {
	var b strings.Builder
	IPDistribution(&b, ispRes(t))
	out := b.String()
	for _, want := range []string{"Figure 7", "SprintLink", "NTTAmerica", "un-subnetized", "targets"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 lacks %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "Figure 7") != 3 {
		t.Error("one panel per vantage expected")
	}
}

func TestSubnetAndPrefixRendering(t *testing.T) {
	res := ispRes(t)
	var b strings.Builder
	SubnetPerISP(&b, res)
	PrefixDistribution(&b, res)
	out := b.String()
	for _, want := range []string{"Figure 8", "Figure 9", "Level3", "/30", "/29"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
}

func TestProtocolTableRendering(t *testing.T) {
	rows := []experiments.Table3Row{
		{ISP: "SprintLink", ICMP: 100, UDP: 40, TCP: 1},
		{ISP: "NTTAmerica", ICMP: 50, UDP: 3, TCP: 0},
	}
	var b strings.Builder
	ProtocolTable(&b, rows)
	out := b.String()
	for _, want := range []string{"Table 3", "ICMP", "UDP", "TCP", "Total", "150", "43"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 lacks %q:\n%s", want, out)
		}
	}
}

func TestOverheadAndAblationRendering(t *testing.T) {
	var b strings.Builder
	OverheadTable(&b, []experiments.OverheadPoint{
		{Members: 2, Probes: 5, PaperUpperBound: 21, PointToPoint: true},
		{Members: 10, Probes: 40, PaperUpperBound: 77},
	})
	Ablations(&b, []experiments.AblationResult{
		{Name: "x", Baseline: 1, Ablated: 2, Metric: "probes"},
	})
	Coverage(&b, &experiments.CoverageResult{
		TracerouteAddrs: 10, TracenetAddrs: 30,
		TracerouteProbes: 100, TracenetProbes: 250,
		Subnets: 9, MultiAccess: 2,
	})
	out := b.String()
	for _, want := range []string{"7|S|+7", "Ablations", "Coverage", "traceroute", "tracenet"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
}
