// Package report renders the experiment results as text tables matching the
// rows and series of the paper's Tables 1–3 and Figures 6–9. The
// cmd/experiments binary and the benchmark harness print these.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"tracenet/internal/core"
	"tracenet/internal/experiments"
	"tracenet/internal/metrics"
)

// classRows is the row order of Tables 1 and 2.
var classRows = []metrics.Class{
	metrics.Exact,
	metrics.Missing,
	metrics.MissingUnresponsive,
	metrics.Under,
	metrics.UnderUnresponsive,
	metrics.Over,
	metrics.SplitClass,
	metrics.Merged,
}

// ResearchTable writes a Table 1/2-style distribution for a research-network
// run, followed by the §4.1 headline rates.
func ResearchTable(w io.Writer, res *experiments.ResearchResult) {
	fmt.Fprintf(w, "%s, Original and Collected Subnet Distribution\n", res.Name)

	var bits []int
	for b := range res.Dist.Original {
		bits = append(bits, b)
	}
	sort.Ints(bits)

	fmt.Fprintf(w, "%-12s", "")
	for _, b := range bits {
		fmt.Fprintf(w, "%6s", fmt.Sprintf("/%d", b))
	}
	fmt.Fprintf(w, "%8s\n", "total")

	row := func(name string, cells map[int]int) {
		fmt.Fprintf(w, "%-12s", name)
		total := 0
		for _, b := range bits {
			fmt.Fprintf(w, "%6d", cells[b])
			total += cells[b]
		}
		fmt.Fprintf(w, "%8d\n", total)
	}
	row("orgl", res.Dist.Original)
	for _, cls := range classRows {
		row(cls.String(), res.Dist.PerClass[cls])
	}

	fmt.Fprintf(w, "\nexact match rate:              %5.1f%%  (excl. unresponsive: %5.1f%%)\n",
		100*res.ExactRate, 100*res.ExactRateResponsive)
	fmt.Fprintf(w, "prefix similarity (eq. 3):     %6.3f  (excl. totally unresponsive: %6.3f)\n",
		res.PrefixSimilarity, res.PrefixSimilarityResponsive)
	fmt.Fprintf(w, "size similarity (eq. 5):       %6.3f  (excl. totally unresponsive: %6.3f)\n",
		res.SizeSimilarity, res.SizeSimilarityResponsive)
	fmt.Fprintf(w, "probes spent:                  %d\n", res.Probes)
}

// Venn writes the Figure 6 region counts and agreement fractions.
func Venn(w io.Writer, res *experiments.ISPResult) {
	v := res.Figure6()
	names := make([]string, len(res.Runs))
	for i := range res.Runs {
		names[i] = res.Runs[i].Vantage
	}
	fmt.Fprintf(w, "Figure 6: distribution of exact-match subnets among %s\n", strings.Join(names, ", "))
	fmt.Fprintf(w, "  only %-8s %5d    %s&%s %5d\n", names[0], v.OnlyA, names[0], names[1], v.AB)
	fmt.Fprintf(w, "  only %-8s %5d    %s&%s %5d\n", names[1], v.OnlyB, names[0], names[2], v.AC)
	fmt.Fprintf(w, "  only %-8s %5d    %s&%s %5d\n", names[2], v.OnlyC, names[1], names[2], v.BC)
	fmt.Fprintf(w, "  all three      %5d\n", v.ABC)
	fa, fb, fc := v.AgreementAll()
	ga, gb, gc := v.AgreementAny()
	fmt.Fprintf(w, "  observed by all three:        %.0f%% / %.0f%% / %.0f%%  (paper: ~60%%)\n", 100*fa, 100*fb, 100*fc)
	fmt.Fprintf(w, "  observed by at least one other: %.0f%% / %.0f%% / %.0f%%  (paper: ~80%%)\n", 100*ga, 100*gb, 100*gc)
}

// IPDistribution writes the Figure 7 panels (one per vantage point).
func IPDistribution(w io.Writer, res *experiments.ISPResult) {
	for run := range res.Runs {
		fmt.Fprintf(w, "Figure 7: IP / ISP at vantage %s\n", res.Runs[run].Vantage)
		fmt.Fprintf(w, "  %-12s %8s %11s %13s\n", "ISP", "targets", "subnetized", "un-subnetized")
		for _, d := range res.Figure7(run) {
			fmt.Fprintf(w, "  %-12s %8d %11d %13d\n", d.ISP, d.Targets, d.Subnetized, d.Unsubnetized)
		}
	}
}

// SubnetPerISP writes the Figure 8 series.
func SubnetPerISP(w io.Writer, res *experiments.ISPResult) {
	fmt.Fprintln(w, "Figure 8: subnet / ISP distribution per vantage point")
	fmt.Fprintf(w, "  %-12s", "ISP")
	for i := range res.Runs {
		fmt.Fprintf(w, "%9s", res.Runs[i].Vantage)
	}
	fmt.Fprintln(w)
	for _, p := range res.Profiles {
		fmt.Fprintf(w, "  %-12s", p.Name)
		for run := range res.Runs {
			fmt.Fprintf(w, "%9d", res.Figure8(run)[p.Name])
		}
		fmt.Fprintln(w)
	}
}

// PrefixDistribution writes the Figure 9 series (plotted on a log scale in
// the paper).
func PrefixDistribution(w io.Writer, res *experiments.ISPResult) {
	fmt.Fprintln(w, "Figure 9: subnet prefix length distribution per vantage point")
	all := map[int]bool{}
	hists := make([]map[int]int, len(res.Runs))
	for run := range res.Runs {
		hists[run] = res.Figure9(run)
		for b := range hists[run] {
			all[b] = true
		}
	}
	var bits []int
	for b := range all {
		bits = append(bits, b)
	}
	sort.Ints(bits)
	fmt.Fprintf(w, "  %-8s", "prefix")
	for i := range res.Runs {
		fmt.Fprintf(w, "%9s", res.Runs[i].Vantage)
	}
	fmt.Fprintln(w)
	for _, b := range bits {
		fmt.Fprintf(w, "  /%-7d", b)
		for run := range res.Runs {
			fmt.Fprintf(w, "%9d", hists[run][b])
		}
		fmt.Fprintln(w)
	}
}

// ProtocolTable writes Table 3.
func ProtocolTable(w io.Writer, rows []experiments.Table3Row) {
	fmt.Fprintln(w, "Table 3: tracenet under ICMP, UDP, TCP probing")
	fmt.Fprintf(w, "  %-12s %6s %6s %6s\n", "ISP", "ICMP", "UDP", "TCP")
	totI, totU, totT := 0, 0, 0
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %6d %6d %6d\n", r.ISP, r.ICMP, r.UDP, r.TCP)
		totI += r.ICMP
		totU += r.UDP
		totT += r.TCP
	}
	fmt.Fprintf(w, "  %-12s %6d %6d %6d\n", "Total", totI, totU, totT)
}

// OverheadTable writes the §3.6 probing-overhead sweep.
func OverheadTable(w io.Writer, points []experiments.OverheadPoint) {
	fmt.Fprintln(w, "Probing overhead model (§3.6): measured vs paper envelope 7|S|+7")
	fmt.Fprintf(w, "  %8s %8s %12s %6s\n", "|S|", "probes", "7|S|+7", "p2p")
	for _, p := range points {
		mark := ""
		if p.PointToPoint {
			mark = "yes"
		}
		fmt.Fprintf(w, "  %8d %8d %12d %6s\n", p.Members, p.Probes, p.PaperUpperBound, mark)
	}
}

// Ablations writes the design-choice comparisons.
func Ablations(w io.Writer, results []experiments.AblationResult) {
	fmt.Fprintln(w, "Ablations")
	for _, a := range results {
		fmt.Fprintf(w, "  %-48s baseline %10.1f   ablated %10.1f   (%s)\n",
			a.Name, a.Baseline, a.Ablated, a.Metric)
	}
}

// Coverage writes the collector comparison: traceroute, the DisCarte-style
// record-route baseline, and tracenet.
func Coverage(w io.Writer, c *experiments.CoverageResult) {
	fmt.Fprintln(w, "Coverage: traceroute vs record-route (DisCarte) vs tracenet, Internet2-like network")
	fmt.Fprintf(w, "  %-22s %10s %10s %10s\n", "", "traceroute", "rec-route", "tracenet")
	fmt.Fprintf(w, "  %-22s %10d %10d %10d\n", "addresses discovered", c.TracerouteAddrs, c.DiscarteAddrs, c.TracenetAddrs)
	fmt.Fprintf(w, "  %-22s %10d %10d %10d\n", "probe packets", c.TracerouteProbes, c.DiscarteProbes, c.TracenetProbes)
	fmt.Fprintf(w, "  %-22s %10s %10s %10d\n", "subnets annotated", "-", "-", c.Subnets)
	fmt.Fprintf(w, "  %-22s %10s %10s %10d\n", "multi-access marked", "-", "-", c.MultiAccess)
}

// HeuristicStats writes the stop-reason distribution of a collection run.
func HeuristicStats(w io.Writer, stats map[core.StopReason]int) {
	fmt.Fprintln(w, "Stop-reason distribution (which rule ended each subnet's growth)")
	// OrderedStopCounts renders canonical reasons in paper order and then any
	// unknown reasons sorted by name, so no entry is silently dropped and the
	// output is deterministic regardless of map iteration order.
	for _, sc := range core.OrderedStopCounts(stats) {
		fmt.Fprintf(w, "  %-12s %5d\n", string(sc.Reason), sc.Count)
	}
}

// EntryLimitation writes the fixed-ingress characterization.
func EntryLimitation(w io.Writer, frac map[int]float64) {
	fmt.Fprintln(w, "Fixed-ingress assumption (§3.2(ii)): LAN recovery vs ingress-router count")
	for entries := 1; entries <= 3; entries++ {
		fmt.Fprintf(w, "  %d ingress router(s): %5.1f%% of members recovered\n", entries, 100*frac[entries])
	}
}

// OnlineVsOffline writes the comparison with the offline subnet-inference
// baseline [7].
func OnlineVsOffline(w io.Writer, r *experiments.OnlineVsOfflineResult) {
	fmt.Fprintln(w, "Online (tracenet) vs offline subnet inference from traceroute data [7]")
	fmt.Fprintf(w, "  %-26s %10s %10s\n", "", "offline[7]", "tracenet")
	fmt.Fprintf(w, "  %-26s %10d %10d\n", "input/collected addresses", r.OfflineAddrs, r.OnlineAddrs)
	fmt.Fprintf(w, "  %-26s %9.1f%% %9.1f%%\n", "exact match rate", 100*r.OfflineExact, 100*r.OnlineExact)
	fmt.Fprintf(w, "  %-26s %10d %10d\n", "exact subnets", r.OfflineDist.Count(metrics.Exact), r.OnlineDist.Count(metrics.Exact))
	fmt.Fprintf(w, "  %-26s %10d %10d\n", "missed subnets",
		r.OfflineDist.Count(metrics.Missing)+r.OfflineDist.Count(metrics.MissingUnresponsive),
		r.OnlineDist.Count(metrics.Missing)+r.OnlineDist.Count(metrics.MissingUnresponsive))
}

// RouterMap writes the tracenet + alias-resolution pipeline evaluation.
func RouterMap(w io.Writer, r *experiments.RouterMapResult) {
	fmt.Fprintln(w, "Router-level map: tracenet + Ally alias resolution (subnet-constrained)")
	fmt.Fprintf(w, "  addresses resolved:        %d\n", r.Addresses)
	fmt.Fprintf(w, "  routers inferred:          %d (ground truth %d)\n", r.Groups, r.TrueRouters)
	fmt.Fprintf(w, "  pairwise precision/recall: %.2f / %.2f\n", r.Precision, r.Recall)
	fmt.Fprintf(w, "  alias probes:              %d with subnet constraint, %d without\n",
		r.ProbesWithConstraint, r.ProbesWithout)
}

// AccuracyTable writes the ground-truth accuracy ensemble: one row per
// regime with ensemble-mean precision/recall and verdict totals, plus the
// committed floors the CI gate enforces.
func AccuracyTable(w io.Writer, results []*experiments.AccuracyResult) {
	fmt.Fprintf(w, "Ground-Truth Accuracy Ensemble (%d seeds per regime)\n", len(experiments.AccuracySeeds))
	fmt.Fprintf(w, "%-9s %7s %7s %7s %7s  %5s %6s %8s %7s %6s\n",
		"regime", "sub-P", "sub-R", "addr-P", "addr-R", "exact", "subset", "superset", "phantom", "missed")
	for _, r := range results {
		fmt.Fprintf(w, "%-9s %7.3f %7.3f %7.3f %7.3f  %5d %6d %8d %7d %6d\n",
			r.Regime, r.SubnetPrecision, r.SubnetRecall, r.AddrPrecision, r.AddrRecall,
			r.Exact, r.Subset, r.Superset, r.Phantom, r.Missed)
	}
	fmt.Fprintln(w, "committed floors:")
	for _, regime := range experiments.Regimes {
		f := experiments.AccuracyFloors[regime]
		fmt.Fprintf(w, "%-9s %7.3f %7.3f %7.3f %7.3f\n",
			regime, f.SubnetPrecision, f.SubnetRecall, f.AddrPrecision, f.AddrRecall)
	}
}

// AdversarialTable writes the adversarial robustness ensemble: per regime,
// the undefended collector's accuracy under attack next to the defended
// run's, the defense cost (extra probes, quarantined responders), and the
// blame attribution of the undefended error rows.
func AdversarialTable(w io.Writer, results []*experiments.AdversarialResult) {
	fmt.Fprintf(w, "Adversarial Robustness Ensemble (%d seeds per regime, undefended vs -defend)\n",
		len(experiments.AdversarialSeeds))
	fmt.Fprintf(w, "%-14s %7s %7s | %7s %7s  %6s %6s  %s\n",
		"regime", "sub-P", "sub-R", "sub-P", "sub-R", "quar", "probes", "blamed error rows")
	for _, r := range results {
		fmt.Fprintf(w, "%-14s %7.3f %7.3f | %7.3f %7.3f  %6d %6d  ",
			r.Regime, r.UndefendedSubnetPrecision, r.UndefendedSubnetRecall,
			r.DefendedSubnetPrecision, r.DefendedSubnetRecall,
			r.Quarantined, r.DefenseProbes)
		if len(r.Blames) == 0 {
			fmt.Fprint(w, "-")
		}
		for i, b := range r.Blames {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%s x%d", b.Blame, b.Count)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "committed floors (undefended max-P / defended min-P / defended min-R):")
	for _, regime := range experiments.AdversarialRegimes {
		f := experiments.AdversarialFloors[regime]
		fmt.Fprintf(w, "%-14s %7.2f %16.2f %16.2f\n",
			regime, f.UndefendedSubnetPrecisionMax, f.DefendedSubnetPrecision, f.DefendedSubnetRecall)
	}
}
