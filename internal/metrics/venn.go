package metrics

import "tracenet/internal/ipv4"

// Venn3 holds the seven-region distribution of subnets observed by three
// vantage points (the paper's Figure 6).
type Venn3 struct {
	OnlyA, OnlyB, OnlyC int
	AB, AC, BC          int // pairwise-only regions
	ABC                 int
}

// VennOf computes the three-way distribution of exactly-matching collected
// subnet prefixes.
func VennOf(a, b, c map[ipv4.Prefix]bool) Venn3 {
	union := map[ipv4.Prefix]bool{}
	for p := range a {
		union[p] = true
	}
	for p := range b {
		union[p] = true
	}
	for p := range c {
		union[p] = true
	}
	var v Venn3
	for p := range union {
		switch {
		case a[p] && b[p] && c[p]:
			v.ABC++
		case a[p] && b[p]:
			v.AB++
		case a[p] && c[p]:
			v.AC++
		case b[p] && c[p]:
			v.BC++
		case a[p]:
			v.OnlyA++
		case b[p]:
			v.OnlyB++
		default:
			v.OnlyC++
		}
	}
	return v
}

// TotalA returns the number of subnets vantage A observed.
func (v Venn3) TotalA() int { return v.OnlyA + v.AB + v.AC + v.ABC }

// TotalB returns the number of subnets vantage B observed.
func (v Venn3) TotalB() int { return v.OnlyB + v.AB + v.BC + v.ABC }

// TotalC returns the number of subnets vantage C observed.
func (v Venn3) TotalC() int { return v.OnlyC + v.AC + v.BC + v.ABC }

// AgreementAll returns, for each vantage, the fraction of its subnets also
// observed by both other vantages (the paper's "around 60%" number).
func (v Venn3) AgreementAll() (fa, fb, fc float64) {
	if t := v.TotalA(); t > 0 {
		fa = float64(v.ABC) / float64(t)
	}
	if t := v.TotalB(); t > 0 {
		fb = float64(v.ABC) / float64(t)
	}
	if t := v.TotalC(); t > 0 {
		fc = float64(v.ABC) / float64(t)
	}
	return fa, fb, fc
}

// AgreementAny returns, for each vantage, the fraction of its subnets also
// observed by at least one other vantage (the paper's "roughly 80%" number).
func (v Venn3) AgreementAny() (fa, fb, fc float64) {
	if t := v.TotalA(); t > 0 {
		fa = float64(v.AB+v.AC+v.ABC) / float64(t)
	}
	if t := v.TotalB(); t > 0 {
		fb = float64(v.AB+v.BC+v.ABC) / float64(t)
	}
	if t := v.TotalC(); t > 0 {
		fc = float64(v.AC+v.BC+v.ABC) / float64(t)
	}
	return fa, fb, fc
}
