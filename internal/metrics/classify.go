// Package metrics implements the paper's evaluation machinery (§4):
// classification of collected subnets against the original topology into the
// exact / missing / underestimated / overestimated / split / merged classes
// of Tables 1 and 2 (with unresponsiveness attribution), the prefix and
// size distance factors and normalized similarities of equations (1)–(5),
// and the multi-vantage Venn distribution of Figure 6.
package metrics

import (
	"fmt"

	"tracenet/internal/ipv4"
)

// Class is the evaluation outcome class of one original subnet — the row
// labels of Tables 1 and 2.
type Class uint8

const (
	// Exact: collected with exactly the original prefix ("exmt").
	Exact Class = iota
	// Missing: not discovered at all, attributable to the heuristics
	// ("miss").
	Missing
	// MissingUnresponsive: not discovered because the subnet is totally
	// unresponsive ("miss\unrs").
	MissingUnresponsive
	// Under: inferred smaller than the original ("undes").
	Under
	// UnderUnresponsive: inferred smaller because part of the subnet is
	// unresponsive ("undes\unrs").
	UnderUnresponsive
	// Over: inferred larger than the original ("ovres").
	Over
	// SplitClass: collected as several smaller subnets ("splt").
	SplitClass
	// Merged: collected as a single subnet together with a neighbouring
	// original ("merg").
	Merged
)

func (c Class) String() string {
	switch c {
	case Exact:
		return "exmt"
	case Missing:
		return "miss"
	case MissingUnresponsive:
		return `miss\unrs`
	case Under:
		return "undes"
	case UnderUnresponsive:
		return `undes\unrs`
	case Over:
		return "ovres"
	case SplitClass:
		return "splt"
	case Merged:
		return "merg"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Original is one ground-truth subnet with the responsiveness annotations
// used to attribute misses and underestimations (the paper obtained these by
// post-probing every address of the missing/underestimated subnets, §4.1.1).
type Original struct {
	Prefix                ipv4.Prefix
	TotallyUnresponsive   bool
	PartiallyUnresponsive bool
}

// Outcome is the classification of one original subnet.
type Outcome struct {
	Class Class
	// CollectedBits are the prefix lengths of the collected subnet(s)
	// matched to this original (empty for missing): one entry for
	// exact/under/over/merged, several for split.
	CollectedBits []int
	// Matched are the collected prefixes behind CollectedBits, in the same
	// order, so callers can join the outcome back to per-subnet annotations
	// (e.g. the degraded flag for fault attribution).
	Matched []ipv4.Prefix
}

// Classify matches every original subnet against the collected prefixes and
// assigns a class:
//
//   - exact: some collected subnet has exactly the original prefix;
//   - under/split: collected subnet(s) strictly inside the original;
//   - over/merged: a collected subnet strictly contains the original — over
//     when it covers only this original, merged when it swallows several;
//   - missing: no overlap at all.
//
// Unresponsiveness attribution then refines missing → miss\unrs and
// under → undes\unrs.
func Classify(originals []Original, collected []ipv4.Prefix) []Outcome {
	out := make([]Outcome, len(originals))
	for i, o := range originals {
		out[i] = classifyOne(o, originals, collected)
	}
	return out
}

func classifyOne(o Original, originals []Original, collected []ipv4.Prefix) Outcome {
	var inside, containing []ipv4.Prefix
	exact := false
	for _, c := range collected {
		switch {
		case c == o.Prefix:
			exact = true
		case o.Prefix.Contains(c.Base()) && c.Bits() > o.Prefix.Bits():
			inside = append(inside, c)
		case c.Contains(o.Prefix.Base()) && c.Bits() < o.Prefix.Bits():
			containing = append(containing, c)
		}
	}
	switch {
	case exact:
		return Outcome{Class: Exact, CollectedBits: []int{o.Prefix.Bits()}, Matched: []ipv4.Prefix{o.Prefix}}
	case len(inside) == 1:
		cls := Under
		if o.PartiallyUnresponsive {
			cls = UnderUnresponsive
		}
		return Outcome{Class: cls, CollectedBits: []int{inside[0].Bits()}, Matched: inside}
	case len(inside) > 1:
		bits := make([]int, len(inside))
		for i, c := range inside {
			bits[i] = c.Bits()
		}
		return Outcome{Class: SplitClass, CollectedBits: bits, Matched: inside}
	case len(containing) > 0:
		c := containing[0]
		// Count originals swallowed by c.
		n := 0
		for _, other := range originals {
			if c.Contains(other.Prefix.Base()) && c.Bits() <= other.Prefix.Bits() {
				n++
			}
		}
		cls := Over
		if n >= 2 {
			cls = Merged
		}
		return Outcome{Class: cls, CollectedBits: []int{c.Bits()}, Matched: []ipv4.Prefix{c}}
	default:
		cls := Missing
		if o.TotallyUnresponsive {
			cls = MissingUnresponsive
		}
		return Outcome{Class: cls}
	}
}

// Distribution is a Table 1/2-style cross-tabulation: per class, the count of
// original subnets per original prefix length.
type Distribution struct {
	// Original[bits] is the orgl row.
	Original map[int]int
	// PerClass[class][bits] are the outcome rows.
	PerClass map[Class]map[int]int
}

// Distribute cross-tabulates outcomes by original prefix length.
func Distribute(originals []Original, outcomes []Outcome) Distribution {
	d := Distribution{
		Original: map[int]int{},
		PerClass: map[Class]map[int]int{},
	}
	for i, o := range originals {
		bits := o.Prefix.Bits()
		d.Original[bits]++
		cls := outcomes[i].Class
		if d.PerClass[cls] == nil {
			d.PerClass[cls] = map[int]int{}
		}
		d.PerClass[cls][bits]++
	}
	return d
}

// Count returns the total number of originals in a class.
func (d Distribution) Count(c Class) int {
	n := 0
	for _, v := range d.PerClass[c] {
		n += v
	}
	return n
}

// Total returns the number of original subnets.
func (d Distribution) Total() int {
	n := 0
	for _, v := range d.Original {
		n += v
	}
	return n
}

// ExactRate returns the exact-match rate over all originals (the paper's
// "including unresponsive subnets" number).
func (d Distribution) ExactRate() float64 {
	t := d.Total()
	if t == 0 {
		return 0
	}
	return float64(d.Count(Exact)) / float64(t)
}

// ExactRateResponsive returns the exact-match rate excluding unresponsive
// subnets — both the totally unresponsive (miss\unrs) and the partially
// unresponsive (undes\unrs), which is how the paper's 94.9%/97.3% headline
// numbers are computed (132/139 and 145/149).
func (d Distribution) ExactRateResponsive() float64 {
	t := d.Total() - d.Count(MissingUnresponsive) - d.Count(UnderUnresponsive)
	if t <= 0 {
		return 0
	}
	return float64(d.Count(Exact)) / float64(t)
}
