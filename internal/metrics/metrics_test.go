package metrics

import (
	"math"
	"testing"

	"tracenet/internal/ipv4"
)

func pfx(s string) ipv4.Prefix { return ipv4.MustParsePrefix(s) }

func orig(ps ...string) []Original {
	out := make([]Original, len(ps))
	for i, p := range ps {
		out[i] = Original{Prefix: pfx(p)}
	}
	return out
}

func TestClassifyExact(t *testing.T) {
	o := orig("10.0.0.0/30")
	got := Classify(o, []ipv4.Prefix{pfx("10.0.0.0/30")})
	if got[0].Class != Exact {
		t.Fatalf("class = %v", got[0].Class)
	}
}

func TestClassifyMissing(t *testing.T) {
	o := orig("10.0.0.0/30")
	got := Classify(o, []ipv4.Prefix{pfx("10.9.0.0/30")})
	if got[0].Class != Missing {
		t.Fatalf("class = %v", got[0].Class)
	}
}

func TestClassifyMissingUnresponsive(t *testing.T) {
	o := []Original{{Prefix: pfx("10.0.0.0/30"), TotallyUnresponsive: true}}
	got := Classify(o, nil)
	if got[0].Class != MissingUnresponsive {
		t.Fatalf("class = %v", got[0].Class)
	}
}

func TestClassifyUnder(t *testing.T) {
	o := orig("10.0.0.0/28")
	got := Classify(o, []ipv4.Prefix{pfx("10.0.0.0/30")})
	if got[0].Class != Under || got[0].CollectedBits[0] != 30 {
		t.Fatalf("outcome = %+v", got[0])
	}
}

func TestClassifyUnderUnresponsive(t *testing.T) {
	o := []Original{{Prefix: pfx("10.0.0.0/28"), PartiallyUnresponsive: true}}
	got := Classify(o, []ipv4.Prefix{pfx("10.0.0.0/29")})
	if got[0].Class != UnderUnresponsive {
		t.Fatalf("class = %v", got[0].Class)
	}
}

func TestClassifySplit(t *testing.T) {
	o := orig("10.0.0.0/28")
	got := Classify(o, []ipv4.Prefix{pfx("10.0.0.0/30"), pfx("10.0.0.8/30")})
	if got[0].Class != SplitClass || len(got[0].CollectedBits) != 2 {
		t.Fatalf("outcome = %+v", got[0])
	}
}

func TestClassifyOver(t *testing.T) {
	o := orig("10.0.0.0/30")
	got := Classify(o, []ipv4.Prefix{pfx("10.0.0.0/29")})
	if got[0].Class != Over || got[0].CollectedBits[0] != 29 {
		t.Fatalf("outcome = %+v", got[0])
	}
}

func TestClassifyMerged(t *testing.T) {
	// Two adjacent /31 originals collected as one /30: both merged.
	o := orig("10.0.0.0/31", "10.0.0.2/31")
	got := Classify(o, []ipv4.Prefix{pfx("10.0.0.0/30")})
	if got[0].Class != Merged || got[1].Class != Merged {
		t.Fatalf("outcome = %+v %+v", got[0], got[1])
	}
}

func TestClassifyExactBeatsContaining(t *testing.T) {
	// If an original is matched exactly AND some larger collected subnet
	// covers it, exact wins.
	o := orig("10.0.0.0/30")
	got := Classify(o, []ipv4.Prefix{pfx("10.0.0.0/30"), pfx("10.0.0.0/28")})
	if got[0].Class != Exact {
		t.Fatalf("class = %v", got[0].Class)
	}
}

func TestDistributionCountsAndRates(t *testing.T) {
	originals := []Original{
		{Prefix: pfx("10.0.0.0/30")},
		{Prefix: pfx("10.0.0.4/30")},
		{Prefix: pfx("10.0.1.0/30"), TotallyUnresponsive: true},
		{Prefix: pfx("10.0.2.0/28"), PartiallyUnresponsive: true},
	}
	collected := []ipv4.Prefix{
		pfx("10.0.0.0/30"), // exact
		pfx("10.0.0.4/30"), // exact
		pfx("10.0.2.0/30"), // under the /28
	}
	outcomes := Classify(originals, collected)
	d := Distribute(originals, outcomes)
	if d.Total() != 4 {
		t.Fatalf("total = %d", d.Total())
	}
	if d.Count(Exact) != 2 || d.Count(MissingUnresponsive) != 1 || d.Count(UnderUnresponsive) != 1 {
		t.Fatalf("counts: exact=%d missUnrs=%d undesUnrs=%d",
			d.Count(Exact), d.Count(MissingUnresponsive), d.Count(UnderUnresponsive))
	}
	if got := d.ExactRate(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("exact rate = %v", got)
	}
	// Excluding both unresponsive classes: 2/2.
	if got := d.ExactRateResponsive(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("responsive exact rate = %v", got)
	}
	if d.Original[30] != 3 || d.Original[28] != 1 {
		t.Fatalf("orgl row = %v", d.Original)
	}
}

func TestPrefixSimilarityIdentical(t *testing.T) {
	o := orig("10.0.0.0/30", "10.0.1.0/29", "10.0.2.0/24")
	collected := []ipv4.Prefix{pfx("10.0.0.0/30"), pfx("10.0.1.0/29"), pfx("10.0.2.0/24")}
	outcomes := Classify(o, collected)
	if got := PrefixSimilarity(o, outcomes); got != 1 {
		t.Fatalf("identical similarity = %v", got)
	}
	if got := SizeSimilarity(o, outcomes); got != 1 {
		t.Fatalf("identical size similarity = %v", got)
	}
}

func TestPrefixSimilarityAllMissing(t *testing.T) {
	o := orig("10.0.0.0/30", "10.0.1.0/24")
	outcomes := Classify(o, nil)
	// Every subnet charged its maximum distance: similarity 0.
	if got := PrefixSimilarity(o, outcomes); got != 0 {
		t.Fatalf("all-missing similarity = %v", got)
	}
	if got := SizeSimilarity(o, outcomes); got != 0 {
		t.Fatalf("all-missing size similarity = %v", got)
	}
}

func TestPrefixSimilarityPartial(t *testing.T) {
	// Bounds pl=24, pu=30. The /28 collected as /29 deviates by 1 of max 4;
	// the exact ones contribute 0.
	o := orig("10.0.0.0/30", "10.0.1.0/24", "10.0.2.0/28")
	collected := []ipv4.Prefix{pfx("10.0.0.0/30"), pfx("10.0.1.0/24"), pfx("10.0.2.0/29")}
	outcomes := Classify(o, collected)
	got := PrefixSimilarity(o, outcomes)
	// d = [0, 0, 1]; max = [30-24=6, 30-24=6, max(28-24,30-28)=4]; 1 - 1/16.
	want := 1 - 1.0/16.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("similarity = %v, want %v", got, want)
	}
}

func TestSizeSimilarityWeighsLargeSubnets(t *testing.T) {
	// A /24 collected as /25 (missing 128 addresses) must hurt size
	// similarity more than a /29 collected as /30 (missing 4).
	base := orig("10.0.0.0/24", "10.0.1.0/29", "10.0.2.0/30")
	bigDev := Classify(base, []ipv4.Prefix{pfx("10.0.0.0/25"), pfx("10.0.1.0/29"), pfx("10.0.2.0/30")})
	smallDev := Classify(base, []ipv4.Prefix{pfx("10.0.0.0/24"), pfx("10.0.1.0/30"), pfx("10.0.2.0/30")})
	big := SizeSimilarity(base, bigDev)
	small := SizeSimilarity(base, smallDev)
	if big >= small {
		t.Fatalf("size similarity: /24 deviation %v should score below /29 deviation %v", big, small)
	}
}

func TestMinkowskiOrder1EqualsSum(t *testing.T) {
	o := orig("10.0.0.0/30", "10.0.2.0/28")
	collected := []ipv4.Prefix{pfx("10.0.0.0/30"), pfx("10.0.2.0/29")}
	outcomes := Classify(o, collected)
	if got := MinkowskiDissimilarity(o, outcomes, 1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("order-1 Minkowski = %v, want 1", got)
	}
	if got := MinkowskiDissimilarity(o, outcomes, 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("order-2 Minkowski = %v, want 1", got)
	}
}

func TestBoundsOf(t *testing.T) {
	o := orig("10.0.0.0/30", "10.0.1.0/24")
	outcomes := Classify(o, []ipv4.Prefix{pfx("10.0.0.0/31")})
	b := BoundsOf(o, outcomes)
	if b.Lower != 24 || b.Upper != 31 {
		t.Fatalf("bounds = %+v", b)
	}
}

func TestVenn(t *testing.T) {
	mk := func(ps ...string) map[ipv4.Prefix]bool {
		m := map[ipv4.Prefix]bool{}
		for _, p := range ps {
			m[pfx(p)] = true
		}
		return m
	}
	a := mk("10.0.0.0/30", "10.0.0.4/30", "10.0.1.0/30", "10.0.3.0/30")
	b := mk("10.0.0.0/30", "10.0.0.4/30", "10.0.2.0/30")
	c := mk("10.0.0.0/30", "10.0.1.0/30", "10.0.2.0/30")
	v := VennOf(a, b, c)
	if v.ABC != 1 || v.AB != 1 || v.AC != 1 || v.BC != 1 || v.OnlyA != 1 || v.OnlyB != 0 || v.OnlyC != 0 {
		t.Fatalf("venn = %+v", v)
	}
	if v.TotalA() != 4 || v.TotalB() != 3 || v.TotalC() != 3 {
		t.Fatalf("totals = %d %d %d", v.TotalA(), v.TotalB(), v.TotalC())
	}
	fa, fb, fc := v.AgreementAll()
	if math.Abs(fa-0.25) > 1e-9 || math.Abs(fb-1.0/3) > 1e-9 || math.Abs(fc-1.0/3) > 1e-9 {
		t.Fatalf("agreement all = %v %v %v", fa, fb, fc)
	}
	fa, fb, fc = v.AgreementAny()
	if math.Abs(fa-0.75) > 1e-9 || math.Abs(fb-1) > 1e-9 || math.Abs(fc-1) > 1e-9 {
		t.Fatalf("agreement any = %v %v %v", fa, fb, fc)
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		Exact: "exmt", Missing: "miss", MissingUnresponsive: `miss\unrs`,
		Under: "undes", UnderUnresponsive: `undes\unrs`, Over: "ovres",
		SplitClass: "splt", Merged: "merg",
	}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("class %d = %q, want %q", c, c.String(), w)
		}
	}
}

func TestSizeDistanceSplit(t *testing.T) {
	// A /28 split into a /30 and a /31: the size distance uses the largest
	// collected piece (the /30 = 4 addresses) against the original 16.
	o := orig("10.0.0.0/28")
	outcomes := Classify(o, []ipv4.Prefix{pfx("10.0.0.0/30"), pfx("10.0.0.8/31")})
	if outcomes[0].Class != SplitClass {
		t.Fatalf("class = %v", outcomes[0].Class)
	}
	b := BoundsOf(o, outcomes)
	got := sizeDistance(o[0], outcomes[0], b)
	if got != 12 { // |16 - 4|
		t.Fatalf("split size distance = %v, want 12", got)
	}
	gotP := prefixDistance(o[0], outcomes[0], b)
	if gotP != 3 { // |28 - max{30,31}| = |28-31|
		t.Fatalf("split prefix distance = %v, want 3", gotP)
	}
}

func TestResponsiveSimilarityVariants(t *testing.T) {
	originals := []Original{
		{Prefix: pfx("10.0.0.0/30")},
		{Prefix: pfx("10.0.1.0/28"), TotallyUnresponsive: true},
		{Prefix: pfx("10.0.2.0/24")},
	}
	collected := []ipv4.Prefix{pfx("10.0.0.0/30"), pfx("10.0.2.0/24")}
	outcomes := Classify(originals, collected)
	plain := PrefixSimilarity(originals, outcomes)
	resp := PrefixSimilarityResponsive(originals, outcomes)
	if resp != 1 {
		t.Fatalf("responsive similarity = %v, want 1 (everything responsive matched exactly)", resp)
	}
	if plain >= resp {
		t.Fatalf("plain similarity %v should be dragged down by the unresponsive miss", plain)
	}
	if got := SizeSimilarityResponsive(originals, outcomes); got != 1 {
		t.Fatalf("responsive size similarity = %v, want 1", got)
	}
}

func TestSimilarityEmptyInputs(t *testing.T) {
	if got := PrefixSimilarity(nil, nil); got != 1 {
		t.Fatalf("empty prefix similarity = %v, want 1", got)
	}
	if got := SizeSimilarity(nil, nil); got != 1 {
		t.Fatalf("empty size similarity = %v, want 1", got)
	}
}

func TestDistributionEmpty(t *testing.T) {
	var d Distribution
	d = Distribute(nil, nil)
	if d.Total() != 0 || d.ExactRate() != 0 || d.ExactRateResponsive() != 0 {
		t.Fatalf("empty distribution misbehaves: %+v", d)
	}
}

func TestMergedDistance(t *testing.T) {
	o := orig("10.0.0.0/31", "10.0.0.2/31", "10.0.8.0/24")
	outcomes := Classify(o, []ipv4.Prefix{pfx("10.0.0.0/30"), pfx("10.0.8.0/24")})
	b := BoundsOf(o, outcomes)
	// Each merged /31 is charged |31-30| = 1.
	if got := prefixDistance(o[0], outcomes[0], b); got != 1 {
		t.Fatalf("merged prefix distance = %v, want 1", got)
	}
	if got := sizeDistance(o[0], outcomes[0], b); got != 2 {
		t.Fatalf("merged size distance = %v, want |2-4| = 2", got)
	}
}

func TestOutcomeMatchedPrefixes(t *testing.T) {
	o := orig("10.0.0.0/30", "10.0.1.0/28", "10.0.2.0/29")
	collected := []ipv4.Prefix{pfx("10.0.0.0/30"), pfx("10.0.1.0/30"), pfx("10.0.1.8/30"), pfx("10.0.2.0/28")}
	got := Classify(o, collected)
	if len(got[0].Matched) != 1 || got[0].Matched[0] != pfx("10.0.0.0/30") {
		t.Errorf("exact Matched = %v", got[0].Matched)
	}
	if len(got[1].Matched) != 2 {
		t.Errorf("split Matched = %v", got[1].Matched)
	}
	if len(got[2].Matched) != 1 || got[2].Matched[0] != pfx("10.0.2.0/28") {
		t.Errorf("over Matched = %v", got[2].Matched)
	}
}

func TestAttributeDegraded(t *testing.T) {
	o := orig("10.0.0.0/30", "10.0.1.0/30", "10.0.2.0/30", "10.0.3.0/29")
	collected := []ipv4.Prefix{pfx("10.0.0.0/30"), pfx("10.0.1.0/30"), pfx("10.0.3.0/30")}
	outcomes := Classify(o, collected)
	ann := map[ipv4.Prefix]CollectedAnnotation{
		pfx("10.0.0.0/30"): {Degraded: true, Confidence: 0.5},
		pfx("10.0.1.0/30"): {Confidence: 1},
		// 10.0.3.0/30 has no annotation: counts as clean, confidence 1.
	}
	rows := AttributeDegraded(outcomes, ann)
	ex := rows[Exact]
	if ex.Total != 2 || ex.Degraded != 1 {
		t.Errorf("exact row = %+v, want total 2 degraded 1", ex)
	}
	if ex.MeanConfidence != 0.75 {
		t.Errorf("exact mean confidence = %v, want 0.75", ex.MeanConfidence)
	}
	if m := rows[Missing]; m.Total != 1 || m.Degraded != 0 || m.MeanConfidence != 1 {
		t.Errorf("missing row = %+v", m)
	}
	if u := rows[Under]; u.Total != 1 || u.Degraded != 0 {
		t.Errorf("under row = %+v", u)
	}
}
