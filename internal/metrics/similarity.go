package metrics

import "math"

// Bounds are the upper and lower prefix values found in the original or
// collected topology (pu and pl of equation (1); Internet2 has pu=31, pl=24).
type Bounds struct {
	Lower int // pl: shortest prefix (largest subnet)
	Upper int // pu: longest prefix (smallest subnet)
}

// BoundsOf computes pl and pu over the original prefixes and the matched
// collected prefixes.
func BoundsOf(originals []Original, outcomes []Outcome) Bounds {
	b := Bounds{Lower: 32, Upper: 0}
	add := func(bits int) {
		if bits < b.Lower {
			b.Lower = bits
		}
		if bits > b.Upper {
			b.Upper = bits
		}
	}
	for i, o := range originals {
		add(o.Prefix.Bits())
		for _, c := range outcomes[i].CollectedBits {
			add(c)
		}
	}
	return b
}

// prefixDistance is the distance factor d(Si) of equation (1): the absolute
// prefix-length deviation of the collected subnet from the original, with
// missing subnets charged the maximum distance to the topology bounds "in
// favor of dissimilarity".
func prefixDistance(o Original, out Outcome, b Bounds) float64 {
	so := o.Prefix.Bits()
	switch out.Class {
	case Exact:
		return 0
	case Missing, MissingUnresponsive:
		return math.Max(math.Abs(float64(so-b.Upper)), math.Abs(float64(so-b.Lower)))
	case SplitClass:
		// |so − max{sc}|: the largest collected prefix value.
		maxBits := 0
		for _, c := range out.CollectedBits {
			if c > maxBits {
				maxBits = c
			}
		}
		return math.Abs(float64(so - maxBits))
	default: // Under, UnderUnresponsive, Over, Merged
		return math.Abs(float64(so - out.CollectedBits[0]))
	}
}

// prefixDistanceMax is the per-subnet normalizer of equation (3):
// max{(so − pl), (pu − so)}.
func prefixDistanceMax(o Original, b Bounds) float64 {
	so := o.Prefix.Bits()
	return math.Max(float64(so-b.Lower), float64(b.Upper-so))
}

// PrefixSimilarity computes the normalized prefix-length similarity of
// equation (3): 1 − Σ d(Si) / Σ max{(so−pl), (pu−so)}. One means identical
// topologies, zero totally dissimilar.
func PrefixSimilarity(originals []Original, outcomes []Outcome) float64 {
	b := BoundsOf(originals, outcomes)
	var num, den float64
	for i, o := range originals {
		num += prefixDistance(o, outcomes[i], b)
		den += prefixDistanceMax(o, b)
	}
	if den == 0 {
		return 1
	}
	return 1 - num/den
}

// MinkowskiDissimilarity computes equation (2): the Minkowski distance of
// order k over the per-subnet prefix distance factors.
func MinkowskiDissimilarity(originals []Original, outcomes []Outcome, k float64) float64 {
	b := BoundsOf(originals, outcomes)
	var sum float64
	for i, o := range originals {
		sum += math.Pow(prefixDistance(o, outcomes[i], b), k)
	}
	return math.Pow(sum, 1/k)
}

func sizeOf(bits int) float64 { return math.Exp2(float64(32 - bits)) }

// sizeDistance is the size distance factor d̂(Si) of equation (4): like the
// prefix distance but measured in subnet sizes (2^(32−s)), so that a /23
// versus /24 deviation weighs 256 addresses while /29 versus /30 weighs 4.
func sizeDistance(o Original, out Outcome, b Bounds) float64 {
	so := o.Prefix.Bits()
	switch out.Class {
	case Exact:
		return 0
	case Missing, MissingUnresponsive:
		return math.Max(sizeOf(b.Lower)-sizeOf(so), sizeOf(so)-sizeOf(b.Upper))
	case SplitClass:
		// |2^(32−so) − max{2^(32−sc)}|: the largest collected size.
		var maxSize float64
		for _, c := range out.CollectedBits {
			if s := sizeOf(c); s > maxSize {
				maxSize = s
			}
		}
		return math.Abs(sizeOf(so) - maxSize)
	default:
		return math.Abs(sizeOf(so) - sizeOf(out.CollectedBits[0]))
	}
}

// sizeDistanceMax is the per-subnet normalizer of equation (5).
func sizeDistanceMax(o Original, b Bounds) float64 {
	so := o.Prefix.Bits()
	return math.Max(sizeOf(b.Lower)-sizeOf(so), sizeOf(so)-sizeOf(b.Upper))
}

// SizeSimilarity computes the normalized subnet-size similarity of
// equation (5).
func SizeSimilarity(originals []Original, outcomes []Outcome) float64 {
	b := BoundsOf(originals, outcomes)
	var num, den float64
	for i, o := range originals {
		num += sizeDistance(o, outcomes[i], b)
		den += sizeDistanceMax(o, b)
	}
	if den == 0 {
		return 1
	}
	return 1 - num/den
}

// PrefixSimilarityResponsive is equation (3) restricted to subnets that are
// not totally unresponsive. Applying equation (3) to the paper's own Table 2
// yields ≈0.60, not the reported 0.900; the reported GEANT value is only
// consistent with the formula once totally unresponsive subnets are excluded
// from the sum, so this variant reproduces the paper's GEANT headline.
func PrefixSimilarityResponsive(originals []Original, outcomes []Outcome) float64 {
	fo, fu := filterResponsive(originals, outcomes)
	return PrefixSimilarity(fo, fu)
}

// SizeSimilarityResponsive is equation (5) restricted to subnets that are
// not totally unresponsive (see PrefixSimilarityResponsive).
func SizeSimilarityResponsive(originals []Original, outcomes []Outcome) float64 {
	fo, fu := filterResponsive(originals, outcomes)
	return SizeSimilarity(fo, fu)
}

func filterResponsive(originals []Original, outcomes []Outcome) ([]Original, []Outcome) {
	var fo []Original
	var fu []Outcome
	for i, o := range originals {
		if o.TotallyUnresponsive {
			continue
		}
		fo = append(fo, o)
		fu = append(fu, outcomes[i])
	}
	return fo, fu
}
