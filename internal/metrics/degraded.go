package metrics

import "tracenet/internal/ipv4"

// DegradedRow is one row of the degraded-attribution cross-tab: of the
// originals in a class, how many were matched (at least partly) by a
// collected subnet the session flagged as degraded, and the mean confidence
// over the matched collected subnets.
type DegradedRow struct {
	// Total is the number of originals assigned to the class.
	Total int
	// Degraded is how many of them were matched by ≥1 degraded collected
	// subnet. Missing originals have no match and never count here.
	Degraded int
	// MeanConfidence averages the matched subnets' confidence annotations
	// (1 when a class had no matched subnets with annotations).
	MeanConfidence float64
}

// CollectedAnnotation carries the per-subnet session annotations the
// evaluation joins against (core.Subnet.Degraded / Confidence, keyed by the
// collected prefix).
type CollectedAnnotation struct {
	Degraded   bool
	Confidence float64
}

// AttributeDegraded cross-tabulates classification outcomes against the
// session's degradation annotations: for each class it reports how many
// originals were served by degraded collections. This separates "the
// heuristics got it wrong" from "the network was faulting while we measured"
// — an under-estimation matched by a degraded subnet is evidence of fault
// impact, not a heuristic failure.
//
// annotations maps collected prefixes to their session annotations; outcomes
// must come from Classify over the same collected set. Matched prefixes with
// no annotation entry count as clean with confidence 1.
func AttributeDegraded(outcomes []Outcome, annotations map[ipv4.Prefix]CollectedAnnotation) map[Class]DegradedRow {
	out := map[Class]DegradedRow{}
	confSum := map[Class]float64{}
	confN := map[Class]int{}
	for _, o := range outcomes {
		row := out[o.Class]
		row.Total++
		degraded := false
		for _, p := range o.Matched {
			ann, ok := annotations[p]
			if !ok {
				ann = CollectedAnnotation{Confidence: 1}
			}
			if ann.Degraded {
				degraded = true
			}
			conf := ann.Confidence
			if conf == 0 {
				conf = 1 // unannotated collections are assumed clean
			}
			confSum[o.Class] += conf
			confN[o.Class]++
		}
		if degraded {
			row.Degraded++
		}
		out[o.Class] = row
	}
	for cls, row := range out {
		if confN[cls] > 0 {
			row.MeanConfidence = confSum[cls] / float64(confN[cls])
		} else {
			row.MeanConfidence = 1
		}
		out[cls] = row
	}
	return out
}
