package trace

import (
	"strings"
	"testing"

	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

func addr(s string) ipv4.Addr { return ipv4.MustParseAddr(s) }

func prober(t *testing.T, topol *netsim.Topology, cfg netsim.Config, opts probe.Options) *probe.Prober {
	t.Helper()
	n := netsim.New(topol, cfg)
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	return probe.New(port, port.LocalAddr(), opts)
}

func TestTracerouteFigure3(t *testing.T) {
	p := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{})
	route, err := Run(p, addr("10.0.5.2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !route.Reached {
		t.Fatalf("destination not reached: %v", route)
	}
	want := []ipv4.Addr{
		addr("10.0.0.2"), // R1 (incoming iface)
		addr("10.0.1.1"), // R2
		addr("10.0.2.3"), // R4 enters via S
		addr("10.0.5.2"), // destination echo
	}
	got := route.Addrs()
	if len(got) != len(want) {
		t.Fatalf("hops = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hop %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Traceroute sees exactly one address per hop: the whole point of the
	// paper is everything it misses (10.0.2.1/.2/.4, subnet masks, ...).
	if len(got) != 4 {
		t.Fatalf("traceroute returned %d addresses", len(got))
	}
}

func TestTracerouteChainLength(t *testing.T) {
	p := prober(t, topo.Chain(6), netsim.Config{}, probe.Options{})
	route, err := Run(p, addr("10.9.255.2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !route.Reached || len(route.Hops) != 7 {
		t.Fatalf("chain-6 trace: reached=%v hops=%d", route.Reached, len(route.Hops))
	}
}

func TestTracerouteAnonymousHop(t *testing.T) {
	top := topo.Figure3()
	// Make R2 anonymous for indirect probes.
	for _, r := range top.Routers {
		if r.Name == "R2" {
			r.IndirectPolicy = netsim.PolicyNil
		}
	}
	p := prober(t, top, netsim.Config{}, probe.Options{NoRetry: true})
	route, err := Run(p, addr("10.0.5.2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !route.Reached {
		t.Fatal("not reached")
	}
	if !route.Hops[1].Anonymous() {
		t.Fatalf("hop 2 should be anonymous: %+v", route.Hops[1])
	}
	if s := route.String(); !strings.Contains(s, "*") {
		t.Fatalf("rendering lacks anonymous marker:\n%s", s)
	}
}

func TestTracerouteGivesUpAfterGaps(t *testing.T) {
	p := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{NoRetry: true})
	// 172.16.0.1 has no route: every hop beyond the first is silent.
	route, err := Run(p, addr("172.16.0.1"), Options{MaxConsecutiveGaps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if route.Reached {
		t.Fatal("unroutable destination reported reached")
	}
	if len(route.Hops) > 6 {
		t.Fatalf("trace did not give up: %d hops", len(route.Hops))
	}
}

func TestTracerouteMaxTTL(t *testing.T) {
	top := topo.Chain(12)
	// Destination never answers: direct probes blocked.
	for _, h := range top.Hosts {
		if h.Name == "dest" {
			h.DirectPolicy = netsim.PolicyNil
		}
	}
	p := prober(t, top, netsim.Config{}, probe.Options{NoRetry: true})
	route, err := Run(p, addr("10.9.255.2"), Options{MaxTTL: 5})
	if err != nil {
		t.Fatal(err)
	}
	if route.Reached || len(route.Hops) != 5 {
		t.Fatalf("maxTTL trace: reached=%v hops=%d", route.Reached, len(route.Hops))
	}
}

func TestTracerouteUDP(t *testing.T) {
	p := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{Protocol: probe.UDP})
	route, err := Run(p, addr("10.0.5.2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !route.Reached {
		t.Fatal("UDP trace did not reach destination")
	}
	last := route.Hops[len(route.Hops)-1]
	if last.Kind != probe.PortUnreachable {
		t.Fatalf("UDP terminal hop kind = %v", last.Kind)
	}
}

func TestParisVsClassicUnderLoadBalancing(t *testing.T) {
	// Under per-flow ECMP, a Paris-style prober (stable flow) sees a stable
	// path on every run, while a classic UDP prober (varying destination
	// port) can see a mix of the two equal-cost branches.
	build := func() *netsim.Topology {
		b := netsim.NewBuilder()
		v := b.Host("vantage")
		r1 := b.Router("R1")
		r2a := b.Router("R2a")
		r2b := b.Router("R2b")
		r3 := b.Router("R3")
		d := b.Host("dest")
		a := b.Subnet("10.1.0.0/30")
		b.Attach(v, a, "10.1.0.1")
		b.Attach(r1, a, "10.1.0.2")
		for i, r := range []*netsim.Router{r2a, r2b} {
			up := b.SubnetP(ipv4.NewPrefix(addr("10.1.1.0")+ipv4.Addr(2*i), 31))
			b.AttachA(r1, up, up.Prefix.Base())
			b.AttachA(r, up, up.Prefix.Base()+1)
			dn := b.SubnetP(ipv4.NewPrefix(addr("10.1.2.0")+ipv4.Addr(2*i), 31))
			b.AttachA(r, dn, dn.Prefix.Base())
			b.AttachA(r3, dn, dn.Prefix.Base()+1)
		}
		ds := b.Subnet("10.1.5.0/30")
		b.Attach(r3, ds, "10.1.5.1")
		b.Attach(d, ds, "10.1.5.2")
		return b.MustBuild()
	}

	hop2 := func(opts probe.Options) map[ipv4.Addr]bool {
		seen := map[ipv4.Addr]bool{}
		for run := 0; run < 32; run++ {
			opts.FlowID = uint16(run + 1)
			p := prober(t, build(), netsim.Config{Mode: netsim.PerFlow}, opts)
			route, err := Run(p, addr("10.1.5.2"), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(route.Hops) >= 2 && !route.Hops[1].Anonymous() {
				seen[route.Hops[1].Addr] = true
			}
		}
		return seen
	}

	classic := hop2(probe.Options{Protocol: probe.UDP, VaryFlow: true})
	if len(classic) < 2 {
		t.Fatalf("classic UDP should observe both branches across flows, saw %v", classic)
	}
	paris := map[ipv4.Addr]bool{}
	p := prober(t, build(), netsim.Config{Mode: netsim.PerFlow}, probe.Options{Protocol: probe.ICMP})
	for run := 0; run < 16; run++ {
		route, err := Run(p, addr("10.1.5.2"), Options{})
		if err != nil {
			t.Fatal(err)
		}
		paris[route.Hops[1].Addr] = true
	}
	if len(paris) != 1 {
		t.Fatalf("Paris-style trace must keep a single stable path, saw %v", paris)
	}
}

func TestProbesPerHopCollectsResponders(t *testing.T) {
	// Classic traceroute sends three probes per hop; under per-packet load
	// balancing a hop answers with several addresses, all recorded.
	build := func() *netsim.Topology {
		b := netsim.NewBuilder()
		v := b.Host("vantage")
		r1 := b.Router("R1")
		r2a := b.Router("R2a")
		r2b := b.Router("R2b")
		r3 := b.Router("R3")
		d := b.Host("dest")
		a := b.Subnet("10.1.0.0/30")
		b.Attach(v, a, "10.1.0.1")
		b.Attach(r1, a, "10.1.0.2")
		for i, r := range []*netsim.Router{r2a, r2b} {
			up := b.SubnetP(ipv4.NewPrefix(addr("10.1.1.0")+ipv4.Addr(2*i), 31))
			b.AttachA(r1, up, up.Prefix.Base())
			b.AttachA(r, up, up.Prefix.Base()+1)
			dn := b.SubnetP(ipv4.NewPrefix(addr("10.1.2.0")+ipv4.Addr(2*i), 31))
			b.AttachA(r, dn, dn.Prefix.Base())
			b.AttachA(r3, dn, dn.Prefix.Base()+1)
		}
		ds := b.Subnet("10.1.5.0/30")
		b.Attach(r3, ds, "10.1.5.1")
		b.Attach(d, ds, "10.1.5.2")
		return b.MustBuild()
	}
	p := prober(t, build(), netsim.Config{Mode: netsim.PerPacket, Seed: 3}, probe.Options{})
	route, err := Run(p, addr("10.1.5.2"), Options{ProbesPerHop: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !route.Reached {
		t.Fatal("not reached")
	}
	if len(route.Hops) < 2 {
		t.Fatalf("hops = %d", len(route.Hops))
	}
	if got := len(route.Hops[1].Responders); got < 2 {
		t.Fatalf("hop 2 responders = %v, want both equal-cost branches", route.Hops[1].Responders)
	}
}

func TestProbesPerHopStillOneAddrPerHop(t *testing.T) {
	// On a stable path, extra probes change nothing.
	p := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{})
	route, err := Run(p, addr("10.0.5.2"), Options{ProbesPerHop: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !route.Reached {
		t.Fatal("not reached")
	}
	for _, h := range route.Hops {
		if len(h.Responders) != 1 {
			t.Fatalf("hop %d responders = %v, want exactly 1", h.TTL, h.Responders)
		}
	}
}
