// Package trace implements the traceroute baseline tracenet is compared
// against (paper §1, §2): TTL-scoped probing that records one responding IP
// address per hop. Both classic traceroute (per-probe flow variation, as the
// original UDP tool behaves) and Paris-style traceroute (constant flow
// identifier, immune to per-flow load balancing) are supported through the
// prober's flow options.
package trace

import (
	"fmt"
	"strings"

	"tracenet/internal/ipv4"
	"tracenet/internal/probe"
)

// Hop is one row of a traceroute: the responder at a TTL, or anonymous.
type Hop struct {
	// TTL is the probe TTL that produced this hop (1-based hop index).
	TTL int
	// Addr is the responding interface address; Zero for an anonymous hop.
	Addr ipv4.Addr
	// Kind is the raw probe outcome at this hop.
	Kind probe.Kind
	// Responders lists every distinct address that answered at this TTL
	// when ProbesPerHop > 1 (load-balanced paths answer with several).
	Responders []ipv4.Addr
}

// Anonymous reports whether the hop did not respond.
func (h Hop) Anonymous() bool { return h.Addr.IsZero() }

// Route is a completed path trace.
type Route struct {
	Dst  ipv4.Addr
	Hops []Hop
	// Reached reports whether the destination itself answered.
	Reached bool
}

// Addrs returns the non-anonymous addresses on the route, in hop order.
func (r *Route) Addrs() []ipv4.Addr {
	var out []ipv4.Addr
	for _, h := range r.Hops {
		if !h.Anonymous() {
			out = append(out, h.Addr)
		}
	}
	return out
}

// String renders the route in the familiar one-line-per-hop format.
func (r *Route) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace to %v (%d hops, reached=%v)\n", r.Dst, len(r.Hops), r.Reached)
	for _, h := range r.Hops {
		if h.Anonymous() {
			fmt.Fprintf(&b, "%3d  *\n", h.TTL)
		} else {
			fmt.Fprintf(&b, "%3d  %v\n", h.TTL, h.Addr)
		}
	}
	return b.String()
}

// Options configure a trace run.
type Options struct {
	// MaxTTL bounds the trace length. Default 30.
	MaxTTL int
	// MaxConsecutiveGaps stops the trace after this many anonymous hops in a
	// row (the path is presumed dead). Default 4.
	MaxConsecutiveGaps int
	// ProbesPerHop is how many probes are sent at each TTL, like classic
	// traceroute's three. Under load-balanced paths a hop may answer with
	// several different addresses; all distinct responders are recorded on
	// the hop. Default 1.
	ProbesPerHop int
}

func (o *Options) setDefaults() {
	if o.MaxTTL == 0 {
		o.MaxTTL = 30
	}
	if o.MaxConsecutiveGaps == 0 {
		o.MaxConsecutiveGaps = 4
	}
	if o.ProbesPerHop == 0 {
		o.ProbesPerHop = 1
	}
}

// Run performs a traceroute to dst using the given prober.
func Run(p *probe.Prober, dst ipv4.Addr, opts Options) (*Route, error) {
	opts.setDefaults()
	route := &Route{Dst: dst}
	gaps := 0
	for ttl := 1; ttl <= opts.MaxTTL; ttl++ {
		hop := Hop{TTL: ttl}
		for i := 0; i < opts.ProbesPerHop; i++ {
			res, err := p.Probe(dst, ttl)
			if err != nil {
				return route, err
			}
			if res.Kind == probe.None {
				continue
			}
			if hop.Kind == probe.None || res.Alive() {
				hop.Addr, hop.Kind = res.From, res.Kind
			}
			if !res.From.IsZero() && !containsAddr(hop.Responders, res.From) {
				hop.Responders = append(hop.Responders, res.From)
			}
		}
		route.Hops = append(route.Hops, hop)
		switch {
		case hop.Kind == probe.EchoReply, hop.Kind == probe.PortUnreachable, hop.Kind == probe.TCPReset:
			route.Reached = true
			return route, nil
		case hop.Kind == probe.HostUnreachable:
			// The path ends here; the destination is unreachable.
			return route, nil
		case hop.Kind == probe.None:
			gaps++
			if gaps >= opts.MaxConsecutiveGaps {
				return route, nil
			}
		default:
			gaps = 0
		}
	}
	return route, nil
}

func containsAddr(list []ipv4.Addr, a ipv4.Addr) bool {
	for _, x := range list {
		if x == a {
			return true
		}
	}
	return false
}
