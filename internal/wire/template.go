package wire

import (
	"encoding/binary"
	"fmt"

	"tracenet/internal/ipv4"
)

// Template is a pre-marshaled probe packet whose per-probe fields — TTL, IP
// ID, destination address, ports, sequence numbers — are patched in place
// with RFC 1624 incremental checksum updates. Steady-state sends touch a
// handful of header bytes instead of re-serializing an unchanged packet, and
// never allocate.
//
// Templates carry no IP options: option-bearing probes (record route) mutate
// their option body en route and must take the AppendEncode path instead.
type Template struct {
	buf   []byte
	proto uint8
}

// Template field offsets. Templates reject IP options, so the transport layer
// always starts at HeaderLen.
const (
	tmplIPID = 4  // IP identification
	tmplTTL  = 8  // 16-bit word covering TTL (high byte) and Protocol
	tmplIPCk = 10 // IP header checksum
	tmplDst  = 16 // destination address (two 16-bit words)

	tmplICMPCk  = HeaderLen + 2
	tmplICMPID  = HeaderLen + 4
	tmplICMPSeq = HeaderLen + 6

	tmplPortSrc = HeaderLen + 0 // UDP and TCP share port offsets
	tmplPortDst = HeaderLen + 2
	tmplUDPCk   = HeaderLen + 6
	tmplTCPSeq  = HeaderLen + 4 // two 16-bit words
	tmplTCPCk   = HeaderLen + 16
)

// NewTemplate pre-marshals p into a patchable template. The packet must carry
// exactly one transport layer and no IP options.
func NewTemplate(p *Packet) (*Template, error) {
	if len(p.IP.Options) > 0 {
		return nil, fmt.Errorf("wire: template cannot carry IP options")
	}
	buf, err := p.Encode()
	if err != nil {
		return nil, err
	}
	t := &Template{buf: buf}
	switch {
	case p.ICMP != nil:
		t.proto = ProtoICMP
	case p.UDP != nil:
		t.proto = ProtoUDP
	case p.TCP != nil:
		t.proto = ProtoTCP
	}
	return t, nil
}

// Bytes returns the template's current wire form. The slice aliases the
// template: it is rewritten by the next Patch call, so transports must not
// retain it across exchanges (the same contract raw probe buffers already
// carry).
func (t *Template) Bytes() []byte { return t.buf }

// PatchICMPProbe retargets an echo-request template in place.
func (t *Template) PatchICMPProbe(ttl uint8, ipid uint16, dst ipv4.Addr, id, seq uint16) {
	if t.proto != ProtoICMP {
		panic("wire: PatchICMPProbe on non-ICMP template")
	}
	t.patchTTL(ttl)
	t.patch16(tmplIPID, tmplIPCk, ipid)
	t.patchDst(dst, -1) // ICMP has no pseudo-header: IP checksum only
	t.patch16(tmplICMPID, tmplICMPCk, id)
	t.patch16(tmplICMPSeq, tmplICMPCk, seq)
}

// PatchUDPProbe retargets a UDP probe template in place. The destination
// address feeds the UDP pseudo-header checksum, so both checksums are updated.
func (t *Template) PatchUDPProbe(ttl uint8, ipid uint16, dst ipv4.Addr, srcPort, dstPort uint16) {
	if t.proto != ProtoUDP {
		panic("wire: PatchUDPProbe on non-UDP template")
	}
	t.patchTTL(ttl)
	t.patch16(tmplIPID, tmplIPCk, ipid)
	t.patchDst(dst, tmplUDPCk)
	t.patch16(tmplPortSrc, tmplUDPCk, srcPort)
	t.patch16(tmplPortDst, tmplUDPCk, dstPort)
	// RFC 768: a computed sum of zero is transmitted as all ones (0x0000 on
	// the wire means "no checksum"). Ones-complement arithmetic treats 0x0000
	// and 0xffff identically, so later incremental updates stay correct.
	if t.buf[tmplUDPCk] == 0 && t.buf[tmplUDPCk+1] == 0 {
		t.buf[tmplUDPCk], t.buf[tmplUDPCk+1] = 0xff, 0xff
	}
}

// PatchTCPProbe retargets a TCP ACK-probe template in place.
func (t *Template) PatchTCPProbe(ttl uint8, ipid uint16, dst ipv4.Addr, srcPort uint16, seq uint32) {
	if t.proto != ProtoTCP {
		panic("wire: PatchTCPProbe on non-TCP template")
	}
	t.patchTTL(ttl)
	t.patch16(tmplIPID, tmplIPCk, ipid)
	t.patchDst(dst, tmplTCPCk)
	t.patch16(tmplPortSrc, tmplTCPCk, srcPort)
	t.patch16(tmplTCPSeq, tmplTCPCk, uint16(seq>>16))
	t.patch16(tmplTCPSeq+2, tmplTCPCk, uint16(seq))
}

// patchTTL rewrites the TTL byte via its containing 16-bit word (shared with
// the immutable Protocol byte). The TTL is not part of any pseudo-header, so
// only the IP checksum moves.
func (t *Template) patchTTL(ttl uint8) {
	old := binary.BigEndian.Uint16(t.buf[tmplTTL:])
	val := uint16(ttl)<<8 | old&0xff
	if old == val {
		return
	}
	CsumUpdate(t.buf, tmplIPCk, old, val)
	binary.BigEndian.PutUint16(t.buf[tmplTTL:], val)
}

// patchDst rewrites the destination address. tck names the transport checksum
// to co-update when the address is covered by a pseudo-header, or -1 for none.
func (t *Template) patchDst(dst ipv4.Addr, tck int) {
	o := dst.Octets()
	hi := uint16(o[0])<<8 | uint16(o[1])
	lo := uint16(o[2])<<8 | uint16(o[3])
	if tck >= 0 {
		t.patch16x2(tmplDst, tmplIPCk, tck, hi)
		t.patch16x2(tmplDst+2, tmplIPCk, tck, lo)
	} else {
		t.patch16(tmplDst, tmplIPCk, hi)
		t.patch16(tmplDst+2, tmplIPCk, lo)
	}
}

// patch16 writes val at off, folding the change into the checksum at ck.
func (t *Template) patch16(off, ck int, val uint16) {
	old := binary.BigEndian.Uint16(t.buf[off:])
	if old == val {
		return
	}
	CsumUpdate(t.buf, ck, old, val)
	binary.BigEndian.PutUint16(t.buf[off:], val)
}

// patch16x2 writes val at off, folding the change into two checksums (the IP
// header's and a pseudo-header-covered transport's).
func (t *Template) patch16x2(off, ck1, ck2 int, val uint16) {
	old := binary.BigEndian.Uint16(t.buf[off:])
	if old == val {
		return
	}
	CsumUpdate(t.buf, ck1, old, val)
	CsumUpdate(t.buf, ck2, old, val)
	binary.BigEndian.PutUint16(t.buf[off:], val)
}

// CsumUpdate folds the change of one 16-bit field (old→val) into the Internet
// checksum stored at b[ck:ck+2], per RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m').
// Exported for the simulator's quote fast path, which patches a decremented
// TTL into as-sent probe bytes instead of re-encoding the packet.
func CsumUpdate(b []byte, ck int, old, val uint16) {
	sum := uint32(^binary.BigEndian.Uint16(b[ck:])) + uint32(^old) + uint32(val)
	sum = (sum >> 16) + (sum & 0xffff)
	sum += sum >> 16
	binary.BigEndian.PutUint16(b[ck:], ^uint16(sum))
}
