package wire

import (
	"encoding/binary"
	"fmt"

	"tracenet/internal/ipv4"
)

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCP flag bits.
const (
	TCPFlagFIN = 1 << 0
	TCPFlagSYN = 1 << 1
	TCPFlagRST = 1 << 2
	TCPFlagPSH = 1 << 3
	TCPFlagACK = 1 << 4
)

// TCP is a minimal decoded TCP segment: TCP probing sends an ACK (the second
// packet of the handshake, per paper §3.1(i)) to solicit a RST from a live
// destination; no payload or options are carried.
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
}

// Marshal appends the encoded segment to dst. srcAddr and dstAddr feed the
// pseudo-header checksum.
func (t *TCP) Marshal(dst []byte, srcAddr, dstAddr ipv4.Addr) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, TCPHeaderLen)...)
	b := dst[off:]
	binary.BigEndian.PutUint16(b[0:], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:], t.DstPort)
	binary.BigEndian.PutUint32(b[4:], t.Seq)
	binary.BigEndian.PutUint32(b[8:], t.Ack)
	b[12] = TCPHeaderLen / 4 << 4
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:], t.Window)
	binary.BigEndian.PutUint16(b[16:], checksumWithPseudo(srcAddr.Octets(), dstAddr.Octets(), ProtoTCP, b))
	return dst
}

// Unmarshal decodes a TCP segment from b, verifying the checksum.
func (t *TCP) Unmarshal(b []byte, srcAddr, dstAddr ipv4.Addr) error {
	if len(b) < TCPHeaderLen {
		return ErrTruncated
	}
	dataOff := int(b[12]>>4) * 4
	if dataOff < TCPHeaderLen || dataOff > len(b) {
		return fmt.Errorf("tcp: %w", ErrBadHeader)
	}
	if checksumWithPseudo(srcAddr.Octets(), dstAddr.Octets(), ProtoTCP, b) != 0 {
		return fmt.Errorf("tcp: %w", ErrBadChecksum)
	}
	t.SrcPort = binary.BigEndian.Uint16(b[0:])
	t.DstPort = binary.BigEndian.Uint16(b[2:])
	t.Seq = binary.BigEndian.Uint32(b[4:])
	t.Ack = binary.BigEndian.Uint32(b[8:])
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:])
	return nil
}
