package wire

import (
	"encoding/binary"
	"fmt"

	"tracenet/internal/ipv4"
)

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// UDP is a decoded UDP datagram. Traceroute-style UDP probing sends to a
// likely-unused high port, soliciting an ICMP port-unreachable from the
// destination (paper §3.1(i)).
type UDP struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// Marshal appends the encoded datagram (header + payload) to dst. src and dst
// addresses are needed for the pseudo-header checksum.
func (u *UDP) Marshal(dst []byte, srcAddr, dstAddr ipv4.Addr) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, UDPHeaderLen)...)
	dst = append(dst, u.Payload...)
	b := dst[off:]
	binary.BigEndian.PutUint16(b[0:], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:], u.DstPort)
	binary.BigEndian.PutUint16(b[4:], uint16(UDPHeaderLen+len(u.Payload)))
	sum := checksumWithPseudo(srcAddr.Octets(), dstAddr.Octets(), ProtoUDP, b)
	if sum == 0 {
		sum = 0xffff // RFC 768: transmitted as all ones
	}
	binary.BigEndian.PutUint16(b[6:], sum)
	return dst
}

// Unmarshal decodes a UDP datagram from b, verifying length and checksum.
func (u *UDP) Unmarshal(b []byte, srcAddr, dstAddr ipv4.Addr) error {
	return u.unmarshal(b, srcAddr, dstAddr, nil)
}

// unmarshal is the shared decoder behind Unmarshal and DecodeInto. payloadBuf,
// when non-nil, is the reused backing store the Payload copy lands in.
func (u *UDP) unmarshal(b []byte, srcAddr, dstAddr ipv4.Addr, payloadBuf *[]byte) error {
	if len(b) < UDPHeaderLen {
		return ErrTruncated
	}
	length := binary.BigEndian.Uint16(b[4:])
	if int(length) < UDPHeaderLen || int(length) > len(b) {
		return fmt.Errorf("udp: %w", ErrBadHeader)
	}
	if binary.BigEndian.Uint16(b[6:]) != 0 { // checksum 0 = disabled
		if checksumWithPseudo(srcAddr.Octets(), dstAddr.Octets(), ProtoUDP, b[:length]) != 0 {
			return fmt.Errorf("udp: %w", ErrBadChecksum)
		}
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:])
	u.DstPort = binary.BigEndian.Uint16(b[2:])
	// Copy the payload out of the decode buffer (see ICMP.Unmarshal; enforced
	// by tracenetlint's ipalias).
	if payloadBuf != nil {
		*payloadBuf = append((*payloadBuf)[:0], b[UDPHeaderLen:length]...)
		u.Payload = *payloadBuf
	} else {
		u.Payload = append([]byte(nil), b[UDPHeaderLen:length]...)
	}
	return nil
}
