package wire

import (
	"encoding/binary"
	"fmt"
)

// ICMP message types and codes used by the probers (RFC 792).
const (
	ICMPEchoReply      = 0
	ICMPDestUnreach    = 3
	ICMPEchoRequest    = 8
	ICMPTimeExceeded   = 11
	CodeNetUnreach     = 0
	CodeHostUnreach    = 1
	CodePortUnreach    = 3
	CodeTTLExceeded    = 0
	CodeFragReassembly = 1
)

// ICMPHeaderLen is the fixed part of every ICMP message we emit.
const ICMPHeaderLen = 8

// ICMP is a decoded ICMP message. For echo request/reply, ID and Seq carry
// the identifier and sequence number; for error messages (time exceeded,
// destination unreachable) Payload carries the embedded original IP header
// plus at least 8 bytes of its payload, per RFC 792.
type ICMP struct {
	Type    uint8
	Code    uint8
	ID      uint16 // echo only
	Seq     uint16 // echo only
	Payload []byte // echo data, or embedded original datagram for errors
}

// IsError reports whether the message is an ICMP error (carries an embedded
// original datagram) rather than an echo.
func (m *ICMP) IsError() bool {
	return m.Type == ICMPDestUnreach || m.Type == ICMPTimeExceeded
}

// Marshal appends the encoded message to dst and returns the extended slice.
func (m *ICMP) Marshal(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, ICMPHeaderLen)...)
	dst = append(dst, m.Payload...)
	b := dst[off:]
	b[0] = m.Type
	b[1] = m.Code
	if !m.IsError() {
		binary.BigEndian.PutUint16(b[4:], m.ID)
		binary.BigEndian.PutUint16(b[6:], m.Seq)
	}
	binary.BigEndian.PutUint16(b[2:], Checksum(b))
	return dst
}

// Unmarshal decodes an ICMP message from b, verifying the checksum.
func (m *ICMP) Unmarshal(b []byte) error {
	return m.unmarshal(b, nil)
}

// unmarshal is the shared decoder behind Unmarshal and DecodeInto. payloadBuf,
// when non-nil, is the reused backing store the Payload copy lands in.
func (m *ICMP) unmarshal(b []byte, payloadBuf *[]byte) error {
	if len(b) < ICMPHeaderLen {
		return ErrTruncated
	}
	if Checksum(b) != 0 {
		return fmt.Errorf("icmp: %w", ErrBadChecksum)
	}
	m.Type = b[0]
	m.Code = b[1]
	if b[0] == ICMPEchoRequest || b[0] == ICMPEchoReply {
		m.ID = binary.BigEndian.Uint16(b[4:])
		m.Seq = binary.BigEndian.Uint16(b[6:])
	} else {
		m.ID, m.Seq = 0, 0
	}
	// Copy the payload out of the decode buffer: a transport may reuse the
	// buffer for the next datagram, and a retained alias would rewrite this
	// message's embedded quote under us (enforced by tracenetlint's ipalias).
	if payloadBuf != nil {
		*payloadBuf = append((*payloadBuf)[:0], b[ICMPHeaderLen:]...)
		m.Payload = *payloadBuf
	} else {
		m.Payload = append([]byte(nil), b[ICMPHeaderLen:]...)
	}
	return nil
}

// EmbeddedOriginal extracts the original datagram header (and its leading
// payload bytes) embedded in an ICMP error message. Routers quote the full IP
// header plus at least the first 8 payload bytes of the packet that triggered
// the error; probers use the quote to match replies to outstanding probes.
func (m *ICMP) EmbeddedOriginal() (IPHeader, []byte, error) {
	if !m.IsError() {
		return IPHeader{}, nil, fmt.Errorf("wire: icmp type %d carries no embedded datagram", m.Type)
	}
	var h IPHeader
	payload, err := h.UnmarshalQuoted(m.Payload)
	if err != nil {
		return IPHeader{}, nil, fmt.Errorf("wire: embedded datagram: %w", err)
	}
	return h, payload, nil
}
