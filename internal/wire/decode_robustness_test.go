package wire

import "testing"

// samplePackets returns one encoded packet per kind the collector handles.
func samplePackets(t *testing.T) map[string][]byte {
	t.Helper()
	echo, err := NewEchoRequest(testSrc, testDst, 9, 1, 2).Encode()
	if err != nil {
		t.Fatal(err)
	}
	udp, err := NewUDPProbe(testSrc, testDst, 3, 40000, 33434).Encode()
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := NewTCPProbe(testSrc, testDst, 3, 55000, 80, 7).Encode()
	if err != nil {
		t.Fatal(err)
	}
	rr := NewEchoRequest(testSrc, testDst, 9, 1, 2)
	rr.IP.Options = MakeRecordRoute(9)
	rrRaw, err := rr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ttlx, err := NewICMPError(testSrc, ICMPTimeExceeded, 0, echo).Encode()
	if err != nil {
		t.Fatal(err)
	}
	unreach, err := NewICMPError(testSrc, ICMPDestUnreach, CodePortUnreach, udp).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]byte{
		"echo":        echo,
		"udp":         udp,
		"tcp":         tcp,
		"recordroute": rrRaw,
		"ttlexceeded": ttlx,
		"unreachable": unreach,
	}
}

// TestDecodeTruncated feeds every truncation prefix of every packet kind to
// the decoder: each must return an error (the full length is the only valid
// framing) and none may panic.
func TestDecodeTruncated(t *testing.T) {
	for name, raw := range samplePackets(t) {
		t.Run(name, func(t *testing.T) {
			for n := 0; n < len(raw); n++ {
				if _, err := Decode(raw[:n]); err == nil {
					t.Errorf("%s truncated to %d/%d bytes decoded without error", name, n, len(raw))
				}
			}
		})
	}
}

// TestDecodeCorrupted flips every byte of every packet kind, one at a time.
// The decoder must never panic; each flip must either be rejected with an
// error (the common case — the checksums catch it) or produce a packet that
// still re-encodes.
func TestDecodeCorrupted(t *testing.T) {
	for name, raw := range samplePackets(t) {
		t.Run(name, func(t *testing.T) {
			for i := range raw {
				for _, flip := range []byte{0x01, 0x80, 0xff} {
					mut := append([]byte(nil), raw...)
					mut[i] ^= flip
					p, err := Decode(mut)
					if err != nil {
						continue
					}
					if _, err := p.Encode(); err != nil {
						t.Errorf("%s with byte %d xor %#x decoded but failed to re-encode: %v",
							name, i, flip, err)
					}
				}
			}
		})
	}
}

// TestEmbeddedOriginalShortQuote truncates the quoted original inside an ICMP
// error below the 20 bytes an IP header needs: EmbeddedOriginal must reject
// every such quote with an error, never panic.
func TestEmbeddedOriginalShortQuote(t *testing.T) {
	echo, err := NewEchoRequest(testSrc, testDst, 9, 1, 2).Encode()
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decode(mustEncode(t, NewICMPError(testSrc, ICMPTimeExceeded, 0, echo)))
	if err != nil {
		t.Fatal(err)
	}
	quote := full.ICMP.Payload
	for n := 0; n < 20 && n <= len(quote); n++ {
		m := ICMP{Type: ICMPTimeExceeded, Payload: quote[:n]}
		if _, _, err := m.EmbeddedOriginal(); err == nil {
			t.Errorf("%d-byte quote accepted by EmbeddedOriginal", n)
		}
	}
}

// TestEmbeddedOriginalCorruptQuote corrupts the quoted header's length fields
// so the quote claims more bytes than it carries — must error, not panic.
func TestEmbeddedOriginalCorruptQuote(t *testing.T) {
	echo, err := NewEchoRequest(testSrc, testDst, 9, 1, 2).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mutate func([]byte)
	}{
		{"ihl-over-quote", func(q []byte) { q[0] = 0x4f }}, // IHL 15 → 60-byte header claim
		{"ihl-under-min", func(q []byte) { q[0] = 0x41 }},  // IHL 1 → below minimum
		{"version-6", func(q []byte) { q[0] = 0x65 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			quote := append([]byte(nil), echo...)
			tc.mutate(quote)
			m := ICMP{Type: ICMPTimeExceeded, Payload: quote}
			if _, _, err := m.EmbeddedOriginal(); err == nil {
				t.Errorf("corrupt quote (%s) accepted by EmbeddedOriginal", tc.name)
			}
		})
	}
}

func mustEncode(t *testing.T, p *Packet) []byte {
	t.Helper()
	raw, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestDecodeEmpty pins the degenerate framings.
func TestDecodeEmpty(t *testing.T) {
	for _, raw := range [][]byte{nil, {}, {0x45}, make([]byte, 19)} {
		if _, err := Decode(raw); err == nil {
			t.Errorf("Decode(%d bytes) succeeded", len(raw))
		}
	}
}
