package wire

import (
	"testing"

	"tracenet/internal/ipv4"
)

func TestRecordRouteStampAndParse(t *testing.T) {
	opt := MakeRecordRoute(3)
	addrs := []ipv4.Addr{
		ipv4.MustParseAddr("10.0.0.1"),
		ipv4.MustParseAddr("10.0.0.2"),
		ipv4.MustParseAddr("10.0.0.3"),
	}
	for i, a := range addrs {
		if !StampRecordRoute(opt, a) {
			t.Fatalf("stamp %d rejected", i)
		}
	}
	// Full: further stamps must be refused, not overwrite.
	if StampRecordRoute(opt, ipv4.MustParseAddr("10.9.9.9")) {
		t.Fatal("stamp accepted into a full option")
	}
	got := RecordedRoute(opt)
	if len(got) != 3 {
		t.Fatalf("recorded %d addrs, want 3", len(got))
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Errorf("stamp %d = %v, want %v", i, got[i], addrs[i])
		}
	}
}

func TestRecordRoutePartial(t *testing.T) {
	opt := MakeRecordRoute(9)
	StampRecordRoute(opt, ipv4.MustParseAddr("192.0.2.1"))
	got := RecordedRoute(opt)
	if len(got) != 1 || got[0] != ipv4.MustParseAddr("192.0.2.1") {
		t.Fatalf("recorded = %v", got)
	}
}

func TestRecordRouteSlotClamping(t *testing.T) {
	if got := len(MakeRecordRoute(100)); got != 3+4*MaxRecordRouteSlots {
		t.Errorf("oversized request produced %d bytes", got)
	}
	if got := len(MakeRecordRoute(0)); got != 3+4 {
		t.Errorf("undersized request produced %d bytes", got)
	}
}

func TestFindRecordRouteWithPadding(t *testing.T) {
	// NOP padding before the option must be skipped.
	opt := append([]byte{OptNOP, OptNOP}, MakeRecordRoute(2)...)
	if !StampRecordRoute(opt, ipv4.MustParseAddr("10.1.1.1")) {
		t.Fatal("stamp failed behind NOP padding")
	}
	if got := RecordedRoute(opt); len(got) != 1 {
		t.Fatalf("recorded = %v", got)
	}
}

func TestRecordRouteAbsent(t *testing.T) {
	if StampRecordRoute(nil, ipv4.MustParseAddr("10.0.0.1")) {
		t.Fatal("stamp into nil options succeeded")
	}
	if RecordedRoute(nil) != nil {
		t.Fatal("recorded route from nil options")
	}
	// End-of-options terminates the scan.
	opts := []byte{OptEnd, OptRecordRoute, 7, 4, 0, 0, 0, 0}
	if RecordedRoute(opts) != nil {
		t.Fatal("option found past end-of-options")
	}
	// A malformed option length must not panic or loop.
	if RecordedRoute([]byte{9, 0}) != nil {
		t.Fatal("malformed option parsed")
	}
}

func TestOptionsSurviveEncodeDecode(t *testing.T) {
	p := NewEchoRequest(testSrc, testDst, 9, 1, 1)
	p.IP.Options = MakeRecordRoute(4)
	StampRecordRoute(p.IP.Options, ipv4.MustParseAddr("10.5.5.5"))
	raw, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	rec := RecordedRoute(got.IP.Options)
	if len(rec) != 1 || rec[0] != ipv4.MustParseAddr("10.5.5.5") {
		t.Fatalf("options after round trip = %v", rec)
	}
	if got.ICMP == nil || got.ICMP.Seq != 1 {
		t.Fatal("transport layer lost behind options")
	}
}

func TestQuotedHeaderCarriesOptions(t *testing.T) {
	p := NewEchoRequest(testSrc, testDst, 9, 1, 1)
	p.IP.Options = MakeRecordRoute(4)
	StampRecordRoute(p.IP.Options, ipv4.MustParseAddr("10.5.5.5"))
	raw, _ := p.Encode()
	errPkt := NewICMPError(ipv4.MustParseAddr("203.0.113.1"), ICMPTimeExceeded, 0, raw)
	rawErr, err := errPkt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(rawErr)
	if err != nil {
		t.Fatal(err)
	}
	hdr, _, err := dec.ICMP.EmbeddedOriginal()
	if err != nil {
		t.Fatal(err)
	}
	rec := RecordedRoute(hdr.Options)
	if len(rec) != 1 || rec[0] != ipv4.MustParseAddr("10.5.5.5") {
		t.Fatalf("quoted stamps = %v", rec)
	}
}

func TestQuotedTCPHeaderParses(t *testing.T) {
	// RFC 792 quotes only header + 8 bytes, so a quoted 20-byte TCP header
	// is truncated; the quote parser must tolerate that.
	p := NewTCPProbe(testSrc, testDst, 3, 55000, 80, 1)
	raw, _ := p.Encode()
	errPkt := NewICMPError(ipv4.MustParseAddr("203.0.113.1"), ICMPTimeExceeded, 0, raw)
	rawErr, _ := errPkt.Encode()
	dec, err := Decode(rawErr)
	if err != nil {
		t.Fatal(err)
	}
	hdr, payload, err := dec.ICMP.EmbeddedOriginal()
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Protocol != ProtoTCP || hdr.Dst != testDst {
		t.Fatalf("quoted header = %+v", hdr)
	}
	if len(payload) != 8 {
		t.Fatalf("quoted payload = %d bytes, want the 8-byte RFC 792 prefix", len(payload))
	}
}
