package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tracenet/internal/ipv4"
)

// IP protocol numbers used by the probers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// HeaderLen is the length of an IPv4 header without options.
const HeaderLen = 20

// Errors returned by the decoders.
var (
	ErrTruncated   = errors.New("wire: truncated packet")
	ErrBadVersion  = errors.New("wire: not an IPv4 packet")
	ErrBadChecksum = errors.New("wire: bad checksum")
	ErrBadHeader   = errors.New("wire: malformed header")
)

// IPHeader is an IPv4 header (RFC 791), optionally carrying IP options
// (padded to a 4-byte multiple on the wire).
type IPHeader struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // upper 3 bits of the fragment word
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src      ipv4.Addr
	Dst      ipv4.Addr
	// Options holds the raw IP options (e.g. a record-route option); it is
	// padded with end-of-options bytes to a 4-byte boundary when marshaled.
	Options []byte
}

// headerLen returns the on-wire header length including padded options.
func (h *IPHeader) headerLen() int {
	return HeaderLen + (len(h.Options)+3)/4*4
}

// Marshal appends the encoded header to dst and returns the extended slice.
// The header checksum is computed; TotalLen must already include the payload.
func (h *IPHeader) Marshal(dst []byte) []byte {
	hl := h.headerLen()
	if hl > 60 {
		hl = 60 // RFC 791 maximum; options beyond this are truncated
	}
	off := len(dst)
	dst = append(dst, make([]byte, hl)...)
	b := dst[off:]
	b[0] = 4<<4 | uint8(hl/4)
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	binary.BigEndian.PutUint16(b[6:], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Protocol
	// checksum at b[10:12] left zero for computation
	so, do := h.Src.Octets(), h.Dst.Octets()
	copy(b[12:16], so[:])
	copy(b[16:20], do[:])
	copy(b[HeaderLen:hl], h.Options) // remaining bytes stay 0 = end-of-options
	binary.BigEndian.PutUint16(b[10:], Checksum(b[:hl]))
	return dst
}

// Unmarshal decodes an IPv4 header from b, verifying version, length, and
// checksum. It returns the header and the payload slice (aliasing b).
func (h *IPHeader) Unmarshal(b []byte) (payload []byte, err error) {
	return h.unmarshal(b, nil, false)
}

// UnmarshalQuoted decodes an IPv4 header from the quote inside an ICMP error
// message. RFC 792 routers embed only the header plus the leading 8 payload
// bytes, so TotalLen usually exceeds the quoted bytes; the truncation is
// accepted and the available payload prefix returned. The header checksum is
// still verified.
func (h *IPHeader) UnmarshalQuoted(b []byte) (payload []byte, err error) {
	return h.unmarshal(b, nil, true)
}

// unmarshal is the shared decoder behind Unmarshal and UnmarshalQuoted.
// optBuf, when non-nil, is the reused backing store the Options copy lands in
// (the DecodeInto zero-alloc path); nil allocates a fresh copy per decode.
// Either way Options never aliases b — the ipalias invariant.
func (h *IPHeader) unmarshal(b []byte, optBuf *[]byte, quoted bool) (payload []byte, err error) {
	if len(b) < HeaderLen {
		return nil, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < HeaderLen || len(b) < ihl {
		return nil, ErrBadHeader
	}
	if Checksum(b[:ihl]) != 0 {
		if quoted {
			return nil, fmt.Errorf("ip header quote: %w", ErrBadChecksum)
		}
		return nil, fmt.Errorf("ip header: %w", ErrBadChecksum)
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:])
	h.ID = binary.BigEndian.Uint16(b[4:])
	frag := binary.BigEndian.Uint16(b[6:])
	h.Flags = uint8(frag >> 13)
	h.FragOff = frag & 0x1fff
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Src = ipv4.AddrFromOctets([4]byte(b[12:16]))
	h.Dst = ipv4.AddrFromOctets([4]byte(b[16:20]))
	if ihl > HeaderLen {
		if optBuf != nil {
			*optBuf = append((*optBuf)[:0], b[HeaderLen:ihl]...)
			h.Options = *optBuf
		} else {
			h.Options = append([]byte(nil), b[HeaderLen:ihl]...)
		}
	} else {
		h.Options = nil
	}
	if int(h.TotalLen) < ihl {
		return nil, ErrBadHeader
	}
	end := int(h.TotalLen)
	if end > len(b) {
		if !quoted {
			return nil, ErrBadHeader
		}
		end = len(b)
	}
	return b[ihl:end], nil
}
