// Package wire implements marshaling and unmarshaling of the on-the-wire
// packet formats tracenet exchanges with the network: the IPv4 header, ICMP
// (echo request/reply, time exceeded, destination unreachable), UDP, and a
// minimal TCP header. The simulated network substrate (internal/netsim)
// carries these encoded packets, so the prober and the simulated routers
// communicate only through real serialized bytes, as a raw-socket deployment
// would.
//
// All multi-byte fields are big-endian (network byte order). Checksums follow
// RFC 1071.
package wire

import "encoding/binary"

// Checksum computes the RFC 1071 Internet checksum over b.
//
// The ones-complement sum is arithmetic mod 0xffff (2^16 ≡ 1), so a 32-bit
// big-endian group contributes hi<<16+lo ≡ hi+lo and wider groupings fold to
// the same result. Accumulating two 32-bit loads per iteration into a 64-bit
// sum halves the loop work versus word-at-a-time without changing any output;
// the 64-bit accumulator cannot overflow below 4 GiB of input.
func Checksum(b []byte) uint16 {
	var sum uint64
	for len(b) >= 8 {
		sum += uint64(binary.BigEndian.Uint32(b)) + uint64(binary.BigEndian.Uint32(b[4:8]))
		b = b[8:]
	}
	for len(b) >= 2 {
		sum += uint64(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint64(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial sum of the IPv4 pseudo-header used by
// the UDP and TCP checksums.
func pseudoHeaderSum(src, dst [4]byte, proto uint8, length uint16) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// checksumWithPseudo computes the Internet checksum of b seeded with an IPv4
// pseudo-header.
func checksumWithPseudo(src, dst [4]byte, proto uint8, b []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, uint16(len(b)))
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
