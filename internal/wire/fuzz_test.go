package wire

import (
	"testing"

	"tracenet/internal/ipv4"
)

// FuzzDecode throws arbitrary bytes at the packet decoder: it must never
// panic, and every successfully decoded packet must re-encode.
func FuzzDecode(f *testing.F) {
	// Seed corpus: one valid packet of each kind, plus truncations.
	echo, _ := NewEchoRequest(testSrc, testDst, 9, 1, 2).Encode()
	udp, _ := NewUDPProbe(testSrc, testDst, 3, 40000, 33434).Encode()
	tcp, _ := NewTCPProbe(testSrc, testDst, 3, 55000, 80, 7).Encode()
	rr := NewEchoRequest(testSrc, testDst, 9, 1, 2)
	rr.IP.Options = MakeRecordRoute(9)
	rrRaw, _ := rr.Encode()
	errPkt, _ := NewICMPError(testSrc, ICMPTimeExceeded, 0, echo).Encode()
	for _, seed := range [][]byte{echo, udp, tcp, rrRaw, errPkt, echo[:10], nil} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := Decode(raw)
		if err != nil {
			return
		}
		if _, err := p.Encode(); err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v", err)
		}
	})
}

// FuzzRecordRoute exercises the options parser with arbitrary bytes.
func FuzzRecordRoute(f *testing.F) {
	f.Add(MakeRecordRoute(9))
	f.Add([]byte{OptNOP, OptNOP, OptRecordRoute, 7, 4, 1, 2, 3, 4})
	f.Add([]byte{OptRecordRoute, 0})
	f.Fuzz(func(t *testing.T, opts []byte) {
		buf := append([]byte(nil), opts...)
		StampRecordRoute(buf, ipv4.MustParseAddr("10.0.0.1")) // must not panic
		RecordedRoute(buf)                                    // must not panic
	})
}
