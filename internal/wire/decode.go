package wire

import "fmt"

// DecodeScratch owns the reusable storage behind DecodeInto: one Packet, one
// struct per transport layer, and the byte buffers the Options and Payload
// copies land in. A long-lived owner (one prober, one simulator exchange slot)
// embeds a scratch and decodes every reply through it, paying zero steady-state
// heap allocations once the buffers have warmed to the largest reply seen.
//
// The zero value is ready to use. A scratch must not be shared between
// goroutines.
type DecodeScratch struct {
	pkt     Packet
	icmp    ICMP
	udp     UDP
	tcp     TCP
	options []byte // backing store for pkt.IP.Options
	payload []byte // backing store for icmp/udp Payload
}

// DecodeInto parses raw into the scratch-owned Packet, dispatching on the IP
// protocol exactly like Decode. The returned packet — including its transport
// struct, IP options, and payload slices — is valid only until the next
// DecodeInto call on the same scratch; callers that retain decoded packets
// must deep-copy them or use Decode. The decoded packet never aliases raw
// (the ipalias invariant), so the caller may reuse or discard the reply
// buffer immediately.
func (s *DecodeScratch) DecodeInto(raw []byte) (*Packet, error) {
	p := &s.pkt
	p.ICMP, p.UDP, p.TCP = nil, nil, nil
	payload, err := p.IP.unmarshal(raw, &s.options, false)
	if err != nil {
		return nil, err
	}
	switch p.IP.Protocol {
	case ProtoICMP:
		if err := s.icmp.unmarshal(payload, &s.payload); err != nil {
			return nil, err
		}
		p.ICMP = &s.icmp
	case ProtoUDP:
		if err := s.udp.unmarshal(payload, p.IP.Src, p.IP.Dst, &s.payload); err != nil {
			return nil, err
		}
		p.UDP = &s.udp
	case ProtoTCP:
		if err := s.tcp.Unmarshal(payload, p.IP.Src, p.IP.Dst); err != nil {
			return nil, err
		}
		p.TCP = &s.tcp
	default:
		return nil, fmt.Errorf("wire: unsupported protocol %d", p.IP.Protocol)
	}
	return p, nil
}
