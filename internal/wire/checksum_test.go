package wire

import (
	"testing"
	"testing/quick"
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic RFC 1071 example bytes.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length input pads with a zero byte.
	even := []byte{0xab, 0xcd, 0xef, 0x00}
	odd := []byte{0xab, 0xcd, 0xef}
	if Checksum(even) != Checksum(odd) {
		t.Fatal("odd-length checksum must equal zero-padded even-length checksum")
	}
}

func TestChecksumSelfVerifies(t *testing.T) {
	// Embedding the complement at any aligned position makes the total sum
	// verify to zero — the standard receiver check.
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		buf := make([]byte, len(data)+2)
		copy(buf, data)
		c := Checksum(buf)
		buf[len(data)] = byte(c >> 8)
		buf[len(data)+1] = byte(c)
		return Checksum(buf) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumEmpty(t *testing.T) {
	if got := Checksum(nil); got != 0xffff {
		t.Fatalf("Checksum(nil) = %#x, want 0xffff", got)
	}
}
