package wire

import (
	"bytes"
	"testing"
	"testing/quick"

	"tracenet/internal/ipv4"
)

// TestTemplateICMPMatchesEncode patches an echo template through a sequence of
// (ttl, seq, dst) values and demands byte identity with a fresh full encode at
// every step — the incremental checksum must track the recomputed one exactly.
func TestTemplateICMPMatchesEncode(t *testing.T) {
	tmpl, err := NewTemplate(NewEchoRequest(testSrc, testDst, 1, 0x7a7a, 0))
	if err != nil {
		t.Fatal(err)
	}
	dsts := []ipv4.Addr{testDst, ipv4.MustParseAddr("10.255.0.9"), ipv4.MustParseAddr("0.0.0.1"), testDst}
	for i := 0; i < 64; i++ {
		ttl := uint8(i%32 + 1)
		seq := uint16(i * 2654435761)
		dst := dsts[i%len(dsts)]
		tmpl.PatchICMPProbe(ttl, seq, dst, 0x7a7a, seq)
		want, _ := NewEchoRequest(testSrc, dst, ttl, 0x7a7a, seq).Encode()
		if !bytes.Equal(tmpl.Bytes(), want) {
			t.Fatalf("step %d: template bytes diverge from fresh encode\n got %x\nwant %x", i, tmpl.Bytes(), want)
		}
	}
}

func TestTemplateUDPMatchesEncode(t *testing.T) {
	tmpl, err := NewTemplate(NewUDPProbe(testSrc, testDst, 1, 40000, 33434))
	if err != nil {
		t.Fatal(err)
	}
	f := func(ttl uint8, dstRaw uint32, srcPort, dstPort uint16) bool {
		dst := ipv4.Addr(dstRaw)
		tmpl.PatchUDPProbe(ttl, srcPort, dst, srcPort, dstPort)
		want, _ := NewUDPProbe(testSrc, dst, ttl, srcPort, dstPort).Encode()
		return bytes.Equal(tmpl.Bytes(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTemplateTCPMatchesEncode(t *testing.T) {
	tmpl, err := NewTemplate(NewTCPProbe(testSrc, testDst, 1, 55000, 80, 0))
	if err != nil {
		t.Fatal(err)
	}
	f := func(ttl uint8, dstRaw uint32, srcPort uint16, seq uint32) bool {
		dst := ipv4.Addr(dstRaw)
		tmpl.PatchTCPProbe(ttl, srcPort, dst, srcPort, seq)
		want, _ := NewTCPProbe(testSrc, dst, ttl, srcPort, 80, seq).Encode()
		return bytes.Equal(tmpl.Bytes(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestTemplateUDPZeroChecksum drives the patched UDP checksum through the
// 0x0000/0xffff boundary: whatever values land there, the template must stay
// byte-identical to a fresh Marshal (which transmits a zero sum as all ones).
func TestTemplateUDPZeroChecksum(t *testing.T) {
	tmpl, err := NewTemplate(NewUDPProbe(testSrc, testDst, 1, 40000, 33434))
	if err != nil {
		t.Fatal(err)
	}
	// Sweep source ports exhaustively at a fixed destination: the 64k sweep
	// crosses every checksum residue, including the all-ones normalization.
	sawAllOnes := false
	for sp := 0; sp < 1<<16; sp++ {
		tmpl.PatchUDPProbe(3, uint16(sp), testDst, uint16(sp), 33434)
		if tmpl.buf[tmplUDPCk] == 0xff && tmpl.buf[tmplUDPCk+1] == 0xff {
			sawAllOnes = true
		}
		if tmpl.buf[tmplUDPCk] == 0 && tmpl.buf[tmplUDPCk+1] == 0 {
			t.Fatalf("srcPort %d: UDP checksum left at 0x0000 (means 'disabled' on the wire)", sp)
		}
	}
	if !sawAllOnes {
		t.Fatal("sweep never produced the all-ones checksum; boundary not exercised")
	}
}

func TestTemplateRejectsOptions(t *testing.T) {
	p := NewEchoRequest(testSrc, testDst, 9, 1, 2)
	p.IP.Options = MakeRecordRoute(9)
	if _, err := NewTemplate(p); err == nil {
		t.Fatal("NewTemplate must reject IP options")
	}
}

func TestTemplateBytesDecode(t *testing.T) {
	tmpl, err := NewTemplate(NewEchoRequest(testSrc, testDst, 1, 7, 0))
	if err != nil {
		t.Fatal(err)
	}
	tmpl.PatchICMPProbe(12, 345, testDst, 7, 345)
	got, err := Decode(tmpl.Bytes())
	if err != nil {
		t.Fatalf("patched template does not decode: %v", err)
	}
	if got.IP.TTL != 12 || got.ICMP.Seq != 345 {
		t.Fatalf("decoded template fields = ttl %d seq %d", got.IP.TTL, got.ICMP.Seq)
	}
}

func TestTemplatePatchZeroAlloc(t *testing.T) {
	tmpl, err := NewTemplate(NewEchoRequest(testSrc, testDst, 1, 7, 0))
	if err != nil {
		t.Fatal(err)
	}
	seq := uint16(0)
	allocs := testing.AllocsPerRun(1000, func() {
		seq++
		tmpl.PatchICMPProbe(uint8(seq%30+1), seq, testDst, 7, seq)
	})
	if allocs != 0 {
		t.Fatalf("PatchICMPProbe allocates %.1f/op, want 0", allocs)
	}
}
