package wire

import (
	"bytes"
	"testing"
	"testing/quick"

	"tracenet/internal/ipv4"
)

var (
	testSrc = ipv4.MustParseAddr("10.0.0.1")
	testDst = ipv4.MustParseAddr("192.0.2.77")
)

func TestIPHeaderRoundTrip(t *testing.T) {
	h := IPHeader{
		TOS: 0x10, TotalLen: 28, ID: 0xbeef, Flags: 2, FragOff: 0,
		TTL: 7, Protocol: ProtoICMP, Src: testSrc, Dst: testDst,
	}
	raw := h.Marshal(nil)
	raw = append(raw, make([]byte, 8)...) // payload space to satisfy TotalLen
	var got IPHeader
	payload, err := got.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.TOS != h.TOS || got.TotalLen != h.TotalLen || got.ID != h.ID ||
		got.Flags != h.Flags || got.FragOff != h.FragOff || got.TTL != h.TTL ||
		got.Protocol != h.Protocol || got.Src != h.Src || got.Dst != h.Dst ||
		len(got.Options) != 0 {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
	if len(payload) != 8 {
		t.Fatalf("payload len = %d, want 8", len(payload))
	}
}

func TestIPHeaderChecksumDetectsCorruption(t *testing.T) {
	h := IPHeader{TotalLen: HeaderLen, TTL: 64, Protocol: ProtoUDP, Src: testSrc, Dst: testDst}
	raw := h.Marshal(nil)
	for i := 0; i < HeaderLen; i++ {
		corrupted := bytes.Clone(raw)
		corrupted[i] ^= 0x01
		var got IPHeader
		if _, err := got.Unmarshal(corrupted); err == nil && i != 10 && i != 11 {
			// flipping a non-checksum bit must fail verification
			t.Errorf("corruption at byte %d not detected", i)
		}
	}
}

func TestIPHeaderErrors(t *testing.T) {
	var h IPHeader
	if _, err := h.Unmarshal(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short packet: err = %v, want ErrTruncated", err)
	}
	raw := (&IPHeader{TotalLen: HeaderLen, Src: testSrc, Dst: testDst}).Marshal(nil)
	raw[0] = 6 << 4 // IPv6 version nibble
	if _, err := h.Unmarshal(raw); err != ErrBadVersion {
		t.Errorf("bad version: err = %v, want ErrBadVersion", err)
	}
}

func TestEchoRequestRoundTrip(t *testing.T) {
	p := NewEchoRequest(testSrc, testDst, 5, 0x1234, 9)
	raw, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.ICMP == nil {
		t.Fatal("decoded packet has no ICMP layer")
	}
	if got.ICMP.Type != ICMPEchoRequest || got.ICMP.ID != 0x1234 || got.ICMP.Seq != 9 {
		t.Fatalf("icmp fields = %+v", got.ICMP)
	}
	if got.IP.TTL != 5 || got.IP.Src != testSrc || got.IP.Dst != testDst {
		t.Fatalf("ip fields = %+v", got.IP)
	}
}

func TestUDPProbeRoundTrip(t *testing.T) {
	p := NewUDPProbe(testSrc, testDst, 3, 40000, 33434)
	raw, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.UDP == nil {
		t.Fatal("decoded packet has no UDP layer")
	}
	if got.UDP.SrcPort != 40000 || got.UDP.DstPort != 33434 {
		t.Fatalf("udp ports = %+v", got.UDP)
	}
}

func TestTCPProbeRoundTrip(t *testing.T) {
	p := NewTCPProbe(testSrc, testDst, 9, 55000, 80, 0xdeadbeef)
	raw, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.TCP == nil {
		t.Fatal("decoded packet has no TCP layer")
	}
	if got.TCP.Flags&TCPFlagACK == 0 {
		t.Fatal("probe must carry ACK flag")
	}
	if got.TCP.Seq != 0xdeadbeef || got.TCP.SrcPort != 55000 || got.TCP.DstPort != 80 {
		t.Fatalf("tcp fields = %+v", got.TCP)
	}
}

func TestUDPChecksumDetectsCorruption(t *testing.T) {
	p := NewUDPProbe(testSrc, testDst, 3, 40000, 33434)
	raw, _ := p.Encode()
	raw[HeaderLen] ^= 0xff // corrupt UDP source port
	if _, err := Decode(raw); err == nil {
		t.Fatal("corrupted UDP packet decoded without error")
	}
}

func TestTCPChecksumDetectsCorruption(t *testing.T) {
	p := NewTCPProbe(testSrc, testDst, 3, 40000, 80, 1)
	raw, _ := p.Encode()
	raw[HeaderLen+4] ^= 0xff // corrupt sequence number
	if _, err := Decode(raw); err == nil {
		t.Fatal("corrupted TCP packet decoded without error")
	}
}

func TestICMPChecksumDetectsCorruption(t *testing.T) {
	p := NewEchoRequest(testSrc, testDst, 3, 1, 1)
	raw, _ := p.Encode()
	raw[HeaderLen+4] ^= 0xff // corrupt echo ID
	if _, err := Decode(raw); err == nil {
		t.Fatal("corrupted ICMP packet decoded without error")
	}
}

func TestICMPErrorEmbedsOriginal(t *testing.T) {
	orig := NewUDPProbe(testSrc, testDst, 1, 40001, 33434)
	rawOrig, _ := orig.Encode()
	router := ipv4.MustParseAddr("203.0.113.9")
	errPkt := NewICMPError(router, ICMPTimeExceeded, CodeTTLExceeded, rawOrig)
	raw, err := errPkt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.IP.Src != router || got.IP.Dst != testSrc {
		t.Fatalf("error addressed %v -> %v, want %v -> %v", got.IP.Src, got.IP.Dst, router, testSrc)
	}
	embHdr, embPayload, err := got.ICMP.EmbeddedOriginal()
	if err != nil {
		t.Fatal(err)
	}
	if embHdr.Src != testSrc || embHdr.Dst != testDst || embHdr.Protocol != ProtoUDP {
		t.Fatalf("embedded header = %+v", embHdr)
	}
	if len(embPayload) != 8 {
		t.Fatalf("embedded payload len = %d, want 8 (RFC 792 quote)", len(embPayload))
	}
}

func TestEmbeddedOriginalOnEchoFails(t *testing.T) {
	m := &ICMP{Type: ICMPEchoReply}
	if _, _, err := m.EmbeddedOriginal(); err == nil {
		t.Fatal("EmbeddedOriginal on echo reply must fail")
	}
}

func TestEchoReplyMatchesRequest(t *testing.T) {
	req := NewEchoRequest(testSrc, testDst, 64, 42, 7)
	rep := NewEchoReply(testDst, req)
	if rep.ICMP.ID != 42 || rep.ICMP.Seq != 7 {
		t.Fatalf("reply id/seq = %d/%d", rep.ICMP.ID, rep.ICMP.Seq)
	}
	if rep.IP.Dst != testSrc || rep.IP.Src != testDst {
		t.Fatalf("reply addressing = %v -> %v", rep.IP.Src, rep.IP.Dst)
	}
}

func TestTCPResetMatchesProbe(t *testing.T) {
	req := NewTCPProbe(testSrc, testDst, 64, 55000, 80, 100)
	rst := NewTCPReset(testDst, req)
	if rst.TCP.Flags&TCPFlagRST == 0 {
		t.Fatal("reset must carry RST")
	}
	if rst.TCP.SrcPort != 80 || rst.TCP.DstPort != 55000 {
		t.Fatalf("reset ports = %+v", rst.TCP)
	}
	if rst.TCP.Ack != 101 {
		t.Fatalf("reset ack = %d, want 101", rst.TCP.Ack)
	}
}

func TestEncodeWithoutTransportFails(t *testing.T) {
	p := &Packet{IP: IPHeader{Src: testSrc, Dst: testDst}}
	if _, err := p.Encode(); err == nil {
		t.Fatal("Encode without transport layer must fail")
	}
}

func TestDecodeUnknownProtocol(t *testing.T) {
	h := IPHeader{TotalLen: HeaderLen, TTL: 1, Protocol: 99, Src: testSrc, Dst: testDst}
	raw := h.Marshal(nil)
	if _, err := Decode(raw); err == nil {
		t.Fatal("unknown protocol must fail to decode")
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = Decode(raw) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEchoRoundTripProperty(t *testing.T) {
	f := func(srcRaw, dstRaw uint32, ttl uint8, id, seq uint16) bool {
		p := NewEchoRequest(ipv4.Addr(srcRaw), ipv4.Addr(dstRaw), ttl, id, seq)
		raw, err := p.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(raw)
		if err != nil {
			return false
		}
		return got.IP.Src == ipv4.Addr(srcRaw) && got.IP.Dst == ipv4.Addr(dstRaw) &&
			got.IP.TTL == ttl && got.ICMP.ID == id && got.ICMP.Seq == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
