package wire

import (
	"bytes"
	"testing"

	"tracenet/internal/ipv4"
)

// The per-protocol fuzz targets below attack each Unmarshal path directly,
// beneath the Decode dispatcher, so malformed headers reach the layer that
// parses them even when the outer IP header would have been rejected first.
// Every target enforces the same two properties: Unmarshal never panics on
// arbitrary input, and anything it accepts survives a Marshal→Unmarshal
// round-trip with identical fields. Seed inputs live both in f.Add calls and
// as checked-in corpus files under testdata/fuzz/<FuzzName>/.

// FuzzUnmarshalIPv4 fuzzes IPHeader.Unmarshal and UnmarshalQuoted.
func FuzzUnmarshalIPv4(f *testing.F) {
	hdr := IPHeader{
		TOS: 0, TotalLen: HeaderLen + 4, ID: 7, TTL: 64, Protocol: ProtoICMP,
		Src: testSrc, Dst: testDst,
	}
	full := append(hdr.Marshal(nil), 0xde, 0xad, 0xbe, 0xef)
	opt := hdr
	opt.Options = MakeRecordRoute(3)
	opt.TotalLen = uint16(opt.headerLen()) + 4
	optFull := append(opt.Marshal(nil), 0xde, 0xad, 0xbe, 0xef)
	for _, seed := range [][]byte{full, optFull, full[:HeaderLen], full[:10], nil} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		var h IPHeader
		payload, err := h.Unmarshal(raw)
		if err == nil {
			if len(payload) > len(raw) {
				t.Fatalf("payload longer than input: %d > %d", len(payload), len(raw))
			}
			// Round-trip: re-marshaling the header in front of the same
			// payload must decode to identical fields.
			again := append(h.Marshal(nil), payload...)
			var h2 IPHeader
			payload2, err := h2.Unmarshal(again)
			if err != nil {
				t.Fatalf("re-marshaled header rejected: %v", err)
			}
			if !headersEqual(h, h2) {
				t.Fatalf("round-trip changed header: %+v -> %+v", h, h2)
			}
			if !bytes.Equal(payload, payload2) {
				t.Fatalf("round-trip changed payload")
			}
		}
		var q IPHeader
		q.UnmarshalQuoted(raw) // must not panic on any input
	})
}

// headersEqual compares IPHeaders field by field (IPHeader holds a slice, so
// the struct is not comparable with ==).
func headersEqual(a, b IPHeader) bool {
	return a.TOS == b.TOS && a.TotalLen == b.TotalLen && a.ID == b.ID &&
		a.Flags == b.Flags && a.FragOff == b.FragOff && a.TTL == b.TTL &&
		a.Protocol == b.Protocol && a.Src == b.Src && a.Dst == b.Dst &&
		bytes.Equal(a.Options, b.Options)
}

// FuzzUnmarshalICMP fuzzes ICMP.Unmarshal.
func FuzzUnmarshalICMP(f *testing.F) {
	echo := &ICMP{Type: ICMPEchoRequest, ID: 21, Seq: 3, Payload: []byte("ping")}
	errMsg := &ICMP{Type: ICMPTimeExceeded, Code: CodeTTLExceeded, Payload: bytes.Repeat([]byte{0x45}, 28)}
	for _, seed := range [][]byte{echo.Marshal(nil), errMsg.Marshal(nil), {8, 0, 0, 0}, nil} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		var m ICMP
		if err := m.Unmarshal(raw); err != nil {
			return
		}
		var m2 ICMP
		if err := m2.Unmarshal(m.Marshal(nil)); err != nil {
			t.Fatalf("re-marshaled message rejected: %v", err)
		}
		if m2.Type != m.Type || m2.Code != m.Code || m2.ID != m.ID || m2.Seq != m.Seq ||
			!bytes.Equal(m2.Payload, m.Payload) {
			t.Fatalf("round-trip changed message: %+v -> %+v", m, m2)
		}
	})
}

// FuzzUnmarshalUDP fuzzes UDP.Unmarshal, varying the pseudo-header addresses
// along with the datagram bytes since they participate in the checksum.
func FuzzUnmarshalUDP(f *testing.F) {
	u := &UDP{SrcPort: 40000, DstPort: 33434, Payload: []byte{1, 2, 3, 4}}
	valid := u.Marshal(nil, testSrc, testDst)
	f.Add(valid, uint32(testSrc), uint32(testDst))
	f.Add(valid, uint32(testDst), uint32(testSrc)) // checksum mismatch
	f.Add(valid[:UDPHeaderLen-1], uint32(testSrc), uint32(testDst))
	f.Add([]byte(nil), uint32(0), uint32(0))
	f.Fuzz(func(t *testing.T, raw []byte, srcU, dstU uint32) {
		src, dst := ipv4.Addr(srcU), ipv4.Addr(dstU)
		var u UDP
		if err := u.Unmarshal(raw, src, dst); err != nil {
			return
		}
		var u2 UDP
		if err := u2.Unmarshal(u.Marshal(nil, src, dst), src, dst); err != nil {
			t.Fatalf("re-marshaled datagram rejected: %v", err)
		}
		if u2.SrcPort != u.SrcPort || u2.DstPort != u.DstPort || !bytes.Equal(u2.Payload, u.Payload) {
			t.Fatalf("round-trip changed datagram: %+v -> %+v", u, u2)
		}
	})
}

// FuzzUnmarshalTCP fuzzes TCP.Unmarshal with arbitrary segments and
// pseudo-header addresses.
func FuzzUnmarshalTCP(f *testing.F) {
	seg := &TCP{SrcPort: 55000, DstPort: 80, Seq: 11, Ack: 7, Flags: TCPFlagACK, Window: 1024}
	valid := seg.Marshal(nil, testSrc, testDst)
	f.Add(valid, uint32(testSrc), uint32(testDst))
	f.Add(valid, uint32(testDst), uint32(testSrc)) // checksum mismatch
	f.Add(valid[:TCPHeaderLen-1], uint32(testSrc), uint32(testDst))
	f.Add([]byte(nil), uint32(0), uint32(0))
	f.Fuzz(func(t *testing.T, raw []byte, srcU, dstU uint32) {
		src, dst := ipv4.Addr(srcU), ipv4.Addr(dstU)
		var seg TCP
		if err := seg.Unmarshal(raw, src, dst); err != nil {
			return
		}
		var seg2 TCP
		if err := seg2.Unmarshal(seg.Marshal(nil, src, dst), src, dst); err != nil {
			t.Fatalf("re-marshaled segment rejected: %v", err)
		}
		if seg2 != seg {
			t.Fatalf("round-trip changed segment: %+v -> %+v", seg, seg2)
		}
	})
}
