package wire

import "tracenet/internal/ipv4"

// IP option types (RFC 791).
const (
	OptEnd         = 0
	OptNOP         = 1
	OptRecordRoute = 7
)

// MaxRecordRouteSlots is the largest slot count that fits the 40-byte IP
// option space (3 bytes of option header + 9 × 4 address slots = 39).
const MaxRecordRouteSlots = 9

// MakeRecordRoute builds an empty record-route option with the given number
// of address slots (clamped to MaxRecordRouteSlots). Compliant routers stamp
// the address of the outgoing interface as they forward the packet — the
// mechanism the DisCarte project uses to obtain a second address per hop.
func MakeRecordRoute(slots int) []byte {
	if slots < 1 {
		slots = 1
	}
	if slots > MaxRecordRouteSlots {
		slots = MaxRecordRouteSlots
	}
	opt := make([]byte, 3+4*slots)
	opt[0] = OptRecordRoute
	opt[1] = byte(len(opt)) // option length
	opt[2] = 4              // pointer: 1-based offset of the next free slot
	return opt
}

// findRecordRoute locates the record-route option inside an options block,
// returning its offset or -1.
func findRecordRoute(opts []byte) int {
	i := 0
	for i < len(opts) {
		switch opts[i] {
		case OptEnd:
			return -1
		case OptNOP:
			i++
		default:
			if i+1 >= len(opts) {
				return -1
			}
			l := int(opts[i+1])
			if l < 2 || i+l > len(opts) {
				return -1
			}
			if opts[i] == OptRecordRoute {
				return i
			}
			i += l
		}
	}
	return -1
}

// StampRecordRoute records addr into the next free slot of the record-route
// option inside opts, mutating it in place. It reports whether a stamp was
// written (false when no option is present or all slots are full).
func StampRecordRoute(opts []byte, addr ipv4.Addr) bool {
	i := findRecordRoute(opts)
	if i < 0 {
		return false
	}
	length := int(opts[i+1])
	ptr := int(opts[i+2])
	if ptr+3 > length {
		return false // full
	}
	o := addr.Octets()
	copy(opts[i+ptr-1:], o[:])
	opts[i+2] = byte(ptr + 4)
	return true
}

// RecordedRoute extracts the stamped addresses from the record-route option
// inside opts, in stamping order. It returns nil when no option is present.
func RecordedRoute(opts []byte) []ipv4.Addr {
	i := findRecordRoute(opts)
	if i < 0 {
		return nil
	}
	ptr := int(opts[i+2])
	var out []ipv4.Addr
	for off := 4; off+3 < ptr; off += 4 {
		out = append(out, ipv4.AddrFromOctets([4]byte(opts[i+off-1:i+off+3])))
	}
	return out
}
