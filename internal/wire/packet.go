package wire

import (
	"fmt"

	"tracenet/internal/ipv4"
)

// Packet is a fully decoded probe or reply: an IPv4 header plus exactly one
// transport layer. It is the unit exchanged between the prober and the
// simulated network.
type Packet struct {
	IP   IPHeader
	ICMP *ICMP
	UDP  *UDP
	TCP  *TCP
}

// Encode serializes the packet (IP header plus its single transport layer)
// and fixes up TotalLen.
func (p *Packet) Encode() ([]byte, error) {
	return p.AppendEncode(nil)
}

// zeroHeader reserves space for the largest possible IPv4 header without a
// per-call variable-size make (which would escape to the heap).
var zeroHeader [60]byte

// AppendEncode serializes the packet into dst's spare capacity and returns
// the extended slice — the allocation-free encode path: a caller reusing one
// buffer across probes (dst[:0]) pays zero heap allocations per packet. The
// header region is reserved first, the transport body marshaled after it, and
// the header written last, once TotalLen is known.
func (p *Packet) AppendEncode(dst []byte) ([]byte, error) {
	start := len(dst)
	hl := p.IP.headerLen()
	if hl > 60 {
		hl = 60
	}
	dst = append(dst, zeroHeader[:hl]...)
	switch {
	case p.ICMP != nil:
		p.IP.Protocol = ProtoICMP
		dst = p.ICMP.Marshal(dst)
	case p.UDP != nil:
		p.IP.Protocol = ProtoUDP
		dst = p.UDP.Marshal(dst, p.IP.Src, p.IP.Dst)
	case p.TCP != nil:
		p.IP.Protocol = ProtoTCP
		dst = p.TCP.Marshal(dst, p.IP.Src, p.IP.Dst)
	default:
		return dst[:start], fmt.Errorf("wire: packet has no transport layer")
	}
	p.IP.TotalLen = uint16(len(dst) - start)
	// Marshal the header into the reserved region: the append inside
	// IPHeader.Marshal lands exactly on dst[start:start+hl], whose capacity
	// the body bytes above already secured.
	p.IP.Marshal(dst[start:start:len(dst)])
	return dst, nil
}

// Decode parses raw bytes into a Packet, dispatching on the IP protocol.
func Decode(raw []byte) (*Packet, error) {
	var p Packet
	payload, err := p.IP.Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	switch p.IP.Protocol {
	case ProtoICMP:
		p.ICMP = new(ICMP)
		if err := p.ICMP.Unmarshal(payload); err != nil {
			return nil, err
		}
	case ProtoUDP:
		p.UDP = new(UDP)
		if err := p.UDP.Unmarshal(payload, p.IP.Src, p.IP.Dst); err != nil {
			return nil, err
		}
	case ProtoTCP:
		p.TCP = new(TCP)
		if err := p.TCP.Unmarshal(payload, p.IP.Src, p.IP.Dst); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("wire: unsupported protocol %d", p.IP.Protocol)
	}
	return &p, nil
}

// NewEchoRequest builds an ICMP echo-request probe packet.
func NewEchoRequest(src, dst ipv4.Addr, ttl uint8, id, seq uint16) *Packet {
	return &Packet{
		IP:   IPHeader{TTL: ttl, Src: src, Dst: dst, ID: seq},
		ICMP: &ICMP{Type: ICMPEchoRequest, ID: id, Seq: seq},
	}
}

// NewUDPProbe builds a UDP probe to a (likely unused) high destination port.
func NewUDPProbe(src, dst ipv4.Addr, ttl uint8, srcPort, dstPort uint16) *Packet {
	return &Packet{
		IP:  IPHeader{TTL: ttl, Src: src, Dst: dst, ID: srcPort},
		UDP: &UDP{SrcPort: srcPort, DstPort: dstPort},
	}
}

// NewTCPProbe builds a TCP ACK probe (the "second packet of the TCP handshake
// protocol" per paper §3.1) soliciting a RST from a live destination.
func NewTCPProbe(src, dst ipv4.Addr, ttl uint8, srcPort, dstPort uint16, seq uint32) *Packet {
	return &Packet{
		IP:  IPHeader{TTL: ttl, Src: src, Dst: dst, ID: srcPort},
		TCP: &TCP{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Flags: TCPFlagACK, Window: 1024},
	}
}

// NewICMPError builds the ICMP error message a router at routerAddr sends in
// response to the original (encoded) datagram orig: time-exceeded when the
// TTL ran out, or destination/port unreachable. Per RFC 792 the error embeds
// the original IP header (including any options) plus its first 8 payload
// bytes.
func NewICMPError(routerAddr ipv4.Addr, icmpType, code uint8, orig []byte) *Packet {
	quoteLen := HeaderLen + 8
	if len(orig) >= 1 {
		if ihl := int(orig[0]&0x0f) * 4; ihl >= HeaderLen {
			quoteLen = ihl + 8
		}
	}
	quote := orig
	if len(quote) > quoteLen {
		quote = quote[:quoteLen]
	}
	var origHdr IPHeader
	// Best effort: the quote must be addressed back to the probe source.
	if _, err := origHdr.UnmarshalQuoted(orig); err != nil {
		origHdr.Src = ipv4.Zero
	}
	embedded := make([]byte, len(quote))
	copy(embedded, quote)
	return &Packet{
		IP:   IPHeader{TTL: 64, Src: routerAddr, Dst: origHdr.Src},
		ICMP: &ICMP{Type: icmpType, Code: code, Payload: embedded},
	}
}

// NewEchoReply builds the echo reply to a decoded echo request. IP options
// (such as an accumulated record route) are copied into the reply, as ping -R
// relies on.
func NewEchoReply(replyFrom ipv4.Addr, req *Packet) *Packet {
	var opts []byte
	if len(req.IP.Options) > 0 {
		opts = append(opts, req.IP.Options...)
	}
	return &Packet{
		IP:   IPHeader{TTL: 64, Src: replyFrom, Dst: req.IP.Src, Options: opts},
		ICMP: &ICMP{Type: ICMPEchoReply, ID: req.ICMP.ID, Seq: req.ICMP.Seq},
	}
}

// NewTCPReset builds the RST|ACK a live host returns for an unsolicited ACK
// probe.
func NewTCPReset(replyFrom ipv4.Addr, req *Packet) *Packet {
	return &Packet{
		IP: IPHeader{TTL: 64, Src: replyFrom, Dst: req.IP.Src},
		TCP: &TCP{
			SrcPort: req.TCP.DstPort,
			DstPort: req.TCP.SrcPort,
			Seq:     req.TCP.Ack,
			Ack:     req.TCP.Seq + 1,
			Flags:   TCPFlagRST | TCPFlagACK,
		},
	}
}
