package wire

import (
	"bytes"
	"testing"

	"tracenet/internal/ipv4"
)

// decodeSamples returns one encoded packet of every shape the simulator emits,
// including an option-bearing echo reply and an ICMP error quote.
func decodeSamples(t testing.TB) [][]byte {
	t.Helper()
	echo, _ := NewEchoRequest(testSrc, testDst, 9, 1, 2).Encode()
	udp, _ := NewUDPProbe(testSrc, testDst, 3, 40000, 33434).Encode()
	tcp, _ := NewTCPProbe(testSrc, testDst, 3, 55000, 80, 7).Encode()
	rr := NewEchoRequest(testSrc, testDst, 9, 1, 2)
	rr.IP.Options = MakeRecordRoute(9)
	StampRecordRoute(rr.IP.Options, ipv4.MustParseAddr("10.9.9.9"))
	rrRaw, _ := rr.Encode()
	errPkt, _ := NewICMPError(ipv4.MustParseAddr("203.0.113.9"), ICMPTimeExceeded, CodeTTLExceeded, udp).Encode()
	rst, _ := NewTCPReset(testDst, &Packet{
		IP:  IPHeader{Src: testSrc, Dst: testDst},
		TCP: &TCP{SrcPort: 55000, DstPort: 80, Seq: 7},
	}).Encode()
	return [][]byte{echo, udp, tcp, rrRaw, errPkt, rst}
}

// packetsEquivalent compares two decoded packets field by field, including
// option and payload bytes.
func packetsEquivalent(a, b *Packet) bool {
	if a.IP.TOS != b.IP.TOS || a.IP.TotalLen != b.IP.TotalLen || a.IP.ID != b.IP.ID ||
		a.IP.Flags != b.IP.Flags || a.IP.FragOff != b.IP.FragOff || a.IP.TTL != b.IP.TTL ||
		a.IP.Protocol != b.IP.Protocol || a.IP.Src != b.IP.Src || a.IP.Dst != b.IP.Dst ||
		!bytes.Equal(a.IP.Options, b.IP.Options) {
		return false
	}
	if (a.ICMP == nil) != (b.ICMP == nil) || (a.UDP == nil) != (b.UDP == nil) || (a.TCP == nil) != (b.TCP == nil) {
		return false
	}
	switch {
	case a.ICMP != nil:
		return a.ICMP.Type == b.ICMP.Type && a.ICMP.Code == b.ICMP.Code &&
			a.ICMP.ID == b.ICMP.ID && a.ICMP.Seq == b.ICMP.Seq &&
			bytes.Equal(a.ICMP.Payload, b.ICMP.Payload)
	case a.UDP != nil:
		return a.UDP.SrcPort == b.UDP.SrcPort && a.UDP.DstPort == b.UDP.DstPort &&
			bytes.Equal(a.UDP.Payload, b.UDP.Payload)
	case a.TCP != nil:
		return *a.TCP == *b.TCP
	}
	return false
}

func TestDecodeIntoEquivalence(t *testing.T) {
	var scratch DecodeScratch
	for i, raw := range decodeSamples(t) {
		want, err := Decode(raw)
		if err != nil {
			t.Fatalf("sample %d: Decode: %v", i, err)
		}
		got, err := scratch.DecodeInto(raw)
		if err != nil {
			t.Fatalf("sample %d: DecodeInto: %v", i, err)
		}
		if !packetsEquivalent(got, want) {
			t.Fatalf("sample %d: DecodeInto diverges from Decode:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestDecodeIntoAliasSafety proves the zero-copy decode never aliases the
// reply buffer: clobbering raw after the decode must leave every decoded
// field — including option and payload bytes — untouched. This is the PR 2
// ipalias bug class, re-checked on the scratch path.
func TestDecodeIntoAliasSafety(t *testing.T) {
	var scratch DecodeScratch
	for i, raw := range decodeSamples(t) {
		got, err := scratch.DecodeInto(raw)
		if err != nil {
			t.Fatalf("sample %d: DecodeInto: %v", i, err)
		}
		opts := append([]byte(nil), got.IP.Options...)
		var payload []byte
		if got.ICMP != nil {
			payload = append([]byte(nil), got.ICMP.Payload...)
		} else if got.UDP != nil {
			payload = append([]byte(nil), got.UDP.Payload...)
		}
		for j := range raw {
			raw[j] = 0xee
		}
		if !bytes.Equal(got.IP.Options, opts) {
			t.Fatalf("sample %d: IP options alias the reply buffer", i)
		}
		switch {
		case got.ICMP != nil && !bytes.Equal(got.ICMP.Payload, payload):
			t.Fatalf("sample %d: ICMP payload aliases the reply buffer", i)
		case got.UDP != nil && !bytes.Equal(got.UDP.Payload, payload):
			t.Fatalf("sample %d: UDP payload aliases the reply buffer", i)
		}
	}
}

// TestDecodeIntoScratchReuse pins the ownership contract: a second DecodeInto
// on the same scratch rewrites the previously returned packet in place, so a
// caller deep-copying before the next exchange keeps stable data.
func TestDecodeIntoScratchReuse(t *testing.T) {
	var scratch DecodeScratch
	samples := decodeSamples(t)
	first, err := scratch.DecodeInto(samples[0]) // echo request
	if err != nil {
		t.Fatal(err)
	}
	copied := first.IP // value copy survives reuse
	if _, err := scratch.DecodeInto(samples[2]); err != nil {
		t.Fatal(err)
	}
	if first.IP.Protocol != ProtoTCP {
		t.Fatalf("retained pointer not rewritten: protocol = %d, want %d (TCP)", first.IP.Protocol, ProtoTCP)
	}
	if copied.Protocol != ProtoICMP {
		t.Fatalf("value copy mutated: protocol = %d, want %d (ICMP)", copied.Protocol, ProtoICMP)
	}
}

func TestDecodeIntoZeroAlloc(t *testing.T) {
	var scratch DecodeScratch
	samples := decodeSamples(t)
	// Warm the scratch buffers to the largest sample first.
	for _, raw := range samples {
		if _, err := scratch.DecodeInto(raw); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		raw := samples[i%len(samples)]
		i++
		if _, err := scratch.DecodeInto(raw); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeInto allocates %.1f/op, want 0", allocs)
	}
}

// FuzzDecodeIntoEquivalence throws arbitrary bytes at both decoders: they must
// agree on success/failure, and on success produce equivalent packets — with
// the scratch decode never aliasing the input.
func FuzzDecodeIntoEquivalence(f *testing.F) {
	echo, _ := NewEchoRequest(testSrc, testDst, 9, 1, 2).Encode()
	udp, _ := NewUDPProbe(testSrc, testDst, 3, 40000, 33434).Encode()
	tcp, _ := NewTCPProbe(testSrc, testDst, 3, 55000, 80, 7).Encode()
	errPkt, _ := NewICMPError(testSrc, ICMPTimeExceeded, 0, echo).Encode()
	for _, seed := range [][]byte{echo, udp, tcp, errPkt, echo[:10], nil} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		want, wantErr := Decode(raw)
		var scratch DecodeScratch
		got, gotErr := scratch.DecodeInto(raw)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("decoders disagree: Decode err=%v, DecodeInto err=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if !packetsEquivalent(got, want) {
			t.Fatalf("DecodeInto diverges from Decode:\n got %+v\nwant %+v", got, want)
		}
		for j := range raw {
			raw[j] ^= 0xa5
		}
		if !packetsEquivalent(got, want) {
			t.Fatal("decoded packet aliases the fuzz input")
		}
	})
}
