package experiments

import (
	"sync"
	"testing"
)

// The multi-vantage run is the most expensive fixture; share it across the
// Figure 6–9 tests.
var (
	ispOnce sync.Once
	ispRes  *ISPResult
	ispErr  error
)

func ispFixture(t *testing.T) *ISPResult {
	t.Helper()
	ispOnce.Do(func() {
		ispRes, ispErr = RunISP(7)
	})
	if ispErr != nil {
		t.Fatal(ispErr)
	}
	return ispRes
}

// TestFigure6Venn validates the cross-vantage agreement of Figure 6: around
// 60% of the subnets observed by a vantage point are observed by all three,
// and roughly 80% by at least one other.
func TestFigure6Venn(t *testing.T) {
	res := ispFixture(t)
	v := res.Figure6()
	if v.ABC == 0 {
		t.Fatalf("no three-way agreement at all: %+v", v)
	}
	fa, fb, fc := v.AgreementAll()
	for _, f := range []float64{fa, fb, fc} {
		if f < 0.48 || f > 0.75 {
			t.Errorf("all-three agreement = %.2f, want ≈0.60 (venn %+v)", f, v)
		}
	}
	ga, gb, gc := v.AgreementAny()
	for _, g := range []float64{ga, gb, gc} {
		if g < 0.72 || g > 0.93 {
			t.Errorf("any-other agreement = %.2f, want ≈0.80 (venn %+v)", g, v)
		}
	}
	// The unique regions exist and are substantial — the paper attributes
	// them to different border routers on the paths.
	for _, u := range []int{v.OnlyA, v.OnlyB, v.OnlyC} {
		if u < 20 {
			t.Errorf("unique region too small: %+v", v)
		}
	}
}

// TestFigure7IPDistribution validates the target/subnetized/un-subnetized
// shape: SprintLink is the least responsive ISP (largest un-subnetized
// count), NTT America the most responsive (largest subnetized count, thanks
// to its few but very large subnets).
func TestFigure7IPDistribution(t *testing.T) {
	res := ispFixture(t)
	for run := range res.Runs {
		rows := res.Figure7(run)
		byISP := map[string]IPDistribution{}
		for _, d := range rows {
			byISP[d.ISP] = d
		}
		sprint := byISP["SprintLink"]
		ntt := byISP["NTTAmerica"]
		for _, d := range rows {
			if d.ISP != "SprintLink" && d.Unsubnetized >= sprint.Unsubnetized {
				t.Errorf("run %d: %s un-subnetized %d >= SprintLink %d",
					run, d.ISP, d.Unsubnetized, sprint.Unsubnetized)
			}
			if d.ISP != "NTTAmerica" && d.Subnetized >= ntt.Subnetized {
				t.Errorf("run %d: %s subnetized %d >= NTTAmerica %d",
					run, d.ISP, d.Subnetized, ntt.Subnetized)
			}
		}
		// "not all target IP addresses responded": some targets yield
		// nothing, so subnetized+unsubnetized need not cover the targets.
		if sprint.Unsubnetized < 30 {
			t.Errorf("run %d: SprintLink un-subnetized %d, want a large class", run, sprint.Unsubnetized)
		}
	}
}

// TestFigure8SubnetPerISP validates the per-ISP subnet counts: despite
// hosting the most addresses, NTT America has the fewest subnets (few but
// large), and SprintLink the most — the paper's counter-intuitive pairing of
// Figures 7 and 8.
func TestFigure8SubnetPerISP(t *testing.T) {
	res := ispFixture(t)
	for run := range res.Runs {
		counts := res.Figure8(run)
		if !(counts["SprintLink"] > counts["Level3"] &&
			counts["Level3"] > counts["AboveNet"] &&
			counts["AboveNet"] > counts["NTTAmerica"]) {
			t.Errorf("run %d: subnet counts out of order: %v (want Sprint > Level3 > AboveNet > NTT)",
				run, counts)
		}
	}
}

// TestFigure9PrefixDistribution validates the prefix-length frequency shape:
// point-to-point /31 and /30 dominate, /29 follows with a big drop, then an
// even bigger drop to /28, with a small tail of large subnets (NTT's
// /22–/24).
func TestFigure9PrefixDistribution(t *testing.T) {
	res := ispFixture(t)
	for run := range res.Runs {
		h := res.Figure9(run)
		if h[30] < 2*h[29] {
			t.Errorf("run %d: /30 (%d) should dominate /29 (%d)", run, h[30], h[29])
		}
		if h[29] < 4*h[28] {
			t.Errorf("run %d: /29 (%d) → /28 (%d) should drop sharply", run, h[29], h[28])
		}
		if h[31] < h[29] {
			t.Errorf("run %d: /31 (%d) should exceed /29 (%d)", run, h[31], h[29])
		}
		if h[22]+h[23]+h[24] == 0 {
			t.Errorf("run %d: the large-subnet tail (/22–/24) is missing: %v", run, h)
		}
	}
}

// TestTable3Protocols validates the probing-protocol comparison: ICMP
// collects by far the most subnets, UDP a protocol-filtered fraction, and
// TCP is negligible.
func TestTable3Protocols(t *testing.T) {
	rows, err := Table3(7)
	if err != nil {
		t.Fatal(err)
	}
	totICMP, totUDP, totTCP := 0, 0, 0
	for _, r := range rows {
		if r.ICMP <= r.UDP {
			t.Errorf("%s: ICMP (%d) must dominate UDP (%d)", r.ISP, r.ICMP, r.UDP)
		}
		if r.UDP < r.TCP {
			t.Errorf("%s: UDP (%d) must dominate TCP (%d)", r.ISP, r.UDP, r.TCP)
		}
		totICMP += r.ICMP
		totUDP += r.UDP
		totTCP += r.TCP
	}
	if totICMP < 2*totUDP {
		t.Errorf("ICMP total (%d) should be at least double UDP (%d); paper: 11995 vs 3779", totICMP, totUDP)
	}
	if totTCP > totUDP/5 {
		t.Errorf("TCP total (%d) should be negligible; paper: 68 of 11995", totTCP)
	}
	// The per-ISP UDP/ICMP ratio ordering: NTT America is by far the most
	// UDP-hostile (106/1593 in the paper).
	byISP := map[string]Table3Row{}
	for _, r := range rows {
		byISP[r.ISP] = r
	}
	nttRatio := float64(byISP["NTTAmerica"].UDP) / float64(byISP["NTTAmerica"].ICMP)
	sprintRatio := float64(byISP["SprintLink"].UDP) / float64(byISP["SprintLink"].ICMP)
	if nttRatio >= sprintRatio {
		t.Errorf("NTT UDP ratio (%.2f) should be far below SprintLink's (%.2f)", nttRatio, sprintRatio)
	}
}

// TestMapUnion validates §3.7's re-collection suggestion: the merged map
// over three campaigns strictly dominates every single campaign.
func TestMapUnion(t *testing.T) {
	res := ispFixture(t)
	u := MapUnion(res)
	for i, n := range u.PerVantage {
		if u.Union <= n {
			t.Errorf("union %d subnets does not exceed vantage %d's %d", u.Union, i, n)
		}
		if u.UnionAddrs <= u.PerVantageAddrs[i] {
			t.Errorf("union %d addrs does not exceed vantage %d's %d", u.UnionAddrs, i, u.PerVantageAddrs[i])
		}
	}
}
