package experiments

import (
	"fmt"
	"sort"
	"sync"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/metrics"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

// VantageRun is the outcome of tracing the common target set from one
// vantage point.
type VantageRun struct {
	Vantage string
	// Subnets are the distinct collected subnets (including /32
	// un-subnetized records), across all ISPs.
	Subnets []*core.Subnet
	// Prefixes is the exact-prefix set (bits < 32) for cross-validation.
	Prefixes map[ipv4.Prefix]bool
	// Probes is the total packets this vantage spent.
	Probes uint64
}

// ISPResult bundles the three vantage runs of the §4.2 experiments.
type ISPResult struct {
	Profiles []topo.ISPProfile
	Targets  map[string][]ipv4.Addr
	Runs     []VantageRun
}

// ispConfig tunes the §4.2 environment: light reply loss plus the rate
// limiting encoded in the topology produce the per-vantage disagreement the
// paper observes.
func ispConfig(seed int64) netsim.Config {
	return netsim.Config{Mode: netsim.PerFlow, LossRate: 0.02, Seed: seed}
}

// RunISP traces the common target set from all three vantage points. Each
// vantage gets a freshly generated (structurally identical) topology so that
// rate-limiter state never leaks between runs, mirroring independent
// measurement campaigns. The campaigns share nothing and run concurrently;
// each is individually deterministic, so the combined result is too.
func RunISP(seed int64) (*ISPResult, error) {
	res := &ISPResult{Profiles: topo.ISPProfiles()}
	runs := make([]*VantageRun, len(topo.VantageNames))
	errs := make([]error, len(topo.VantageNames))
	targets := make([]map[string][]ipv4.Addr, len(topo.VantageNames))
	var wg sync.WaitGroup
	for i, vantage := range topo.VantageNames {
		wg.Add(1)
		go func(i int, vantage string) {
			defer wg.Done()
			// Same structure every campaign; a different flaky-router draw
			// per vantage campaign.
			sc := topo.ISPCores(seed, seed+1000*int64(i+1))
			targets[i] = sc.Targets
			runs[i], errs[i] = runVantage(sc, vantage, seed+int64(i)*101, probe.Options{Cache: true, FlowID: uint16(7 + i)})
		}(i, vantage)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Targets = targets[0]
	for _, run := range runs {
		res.Runs = append(res.Runs, *run)
	}
	return res, nil
}

func runVantage(sc *topo.ISPScape, vantage string, seed int64, opts probe.Options) (*VantageRun, error) {
	net := netsim.New(sc.Topo, ispConfig(seed))
	port, err := net.PortFor(vantage)
	if err != nil {
		return nil, err
	}
	pr := probe.New(port, port.LocalAddr(), opts)
	sess := core.NewSession(pr, core.Config{})
	for _, target := range sc.TargetsFor() {
		if _, err := sess.Trace(target); err != nil {
			return nil, fmt.Errorf("experiments: %s tracing %v: %w", vantage, target, err)
		}
	}
	run := &VantageRun{
		Vantage:  vantage,
		Subnets:  sess.Subnets(),
		Prefixes: map[ipv4.Prefix]bool{},
		Probes:   pr.Stats().Sent,
	}
	for _, s := range sess.Subnets() {
		if s.Prefix.Bits() < 32 {
			run.Prefixes[s.Prefix] = true
		}
	}
	return run, nil
}

// Figure6 computes the Venn distribution of exactly matching subnets among
// the three vantage points.
func (r *ISPResult) Figure6() metrics.Venn3 {
	return metrics.VennOf(r.Runs[0].Prefixes, r.Runs[1].Prefixes, r.Runs[2].Prefixes)
}

// IPDistribution is one panel row of Figure 7: per ISP, how many target
// addresses were probed, how many addresses ended up inside subnets, and how
// many were found but could not be subnetized beyond /32.
type IPDistribution struct {
	ISP          string
	Targets      int
	Subnetized   int
	Unsubnetized int
}

// Figure7 computes the per-ISP IP address distribution for one vantage run.
func (r *ISPResult) Figure7(run int) []IPDistribution {
	v := r.Runs[run]
	out := make([]IPDistribution, 0, len(r.Profiles))
	for _, p := range r.Profiles {
		d := IPDistribution{ISP: p.Name, Targets: len(r.Targets[p.Name])}
		sub := map[ipv4.Addr]bool{}
		unsub := map[ipv4.Addr]bool{}
		for _, s := range v.Subnets {
			for _, a := range s.Addrs {
				if !p.Block.Contains(a) {
					continue
				}
				if s.Prefix.Bits() < 32 {
					sub[a] = true
				} else {
					unsub[a] = true
				}
			}
		}
		for a := range sub {
			delete(unsub, a)
		}
		d.Subnetized = len(sub)
		d.Unsubnetized = len(unsub)
		out = append(out, d)
	}
	return out
}

// Figure8 counts collected subnets (bits < 32) per ISP for one vantage run.
func (r *ISPResult) Figure8(run int) map[string]int {
	v := r.Runs[run]
	out := map[string]int{}
	for p := range v.Prefixes {
		if isp := r.ispOf(p.Base()); isp != "" {
			out[isp]++
		}
	}
	return out
}

// Figure9 computes the subnet prefix-length frequency for one vantage run
// (the paper plots it on a log scale: /31 and /30 dominate, /29 follows,
// then a sharp drop with a small tail of large subnets).
func (r *ISPResult) Figure9(run int) map[int]int {
	out := map[int]int{}
	for p := range r.Runs[run].Prefixes {
		if r.ispOf(p.Base()) != "" {
			out[p.Bits()]++
		}
	}
	return out
}

func (r *ISPResult) ispOf(a ipv4.Addr) string {
	for _, p := range r.Profiles {
		if p.Block.Contains(a) {
			return p.Name
		}
	}
	return ""
}

// PrefixBitsPresent lists the prefix lengths present in a Figure 9 result,
// ascending.
func PrefixBitsPresent(hist map[int]int) []int {
	var bits []int
	for b := range hist {
		bits = append(bits, b)
	}
	sort.Ints(bits)
	return bits
}

// Table3Row is one row of Table 3: subnets collected per probing protocol.
type Table3Row struct {
	ISP            string
	ICMP, UDP, TCP int
}

// Table3 runs tracenet from the first vantage point ("rice") with ICMP, UDP,
// and TCP probing and counts collected subnets per ISP.
func Table3(seed int64) ([]Table3Row, error) {
	profiles := topo.ISPProfiles()
	counts := map[probe.Protocol]map[string]int{}
	for _, proto := range []probe.Protocol{probe.ICMP, probe.UDP, probe.TCP} {
		sc := topo.ISPCores(seed, seed+1000)
		run, err := runVantage(sc, topo.VantageNames[0], seed, probe.Options{Cache: true, Protocol: proto})
		if err != nil {
			return nil, err
		}
		byISP := map[string]int{}
		for p := range run.Prefixes {
			for _, prof := range profiles {
				if prof.Block.Contains(p.Base()) {
					byISP[prof.Name]++
				}
			}
		}
		counts[proto] = byISP
	}
	rows := make([]Table3Row, 0, len(profiles))
	for _, prof := range profiles {
		rows = append(rows, Table3Row{
			ISP:  prof.Name,
			ICMP: counts[probe.ICMP][prof.Name],
			UDP:  counts[probe.UDP][prof.Name],
			TCP:  counts[probe.TCP][prof.Name],
		})
	}
	return rows, nil
}
