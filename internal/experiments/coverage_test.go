package experiments

import "testing"

// TestCoverageOrdering validates the paper's motivation numbers: traceroute
// finds the fewest addresses, the DisCarte-style record-route baseline about
// twice as many ("two IP addresses per hop", bounded by nine RR slots), and
// tracenet by far the most — plus the subnet structure the others cannot
// produce — at a bounded probing premium ("a cost effective solution").
func TestCoverageOrdering(t *testing.T) {
	c, err := Coverage(1)
	if err != nil {
		t.Fatal(err)
	}
	if !(c.TracerouteAddrs < c.DiscarteAddrs && c.DiscarteAddrs < c.TracenetAddrs) {
		t.Fatalf("address ordering broken: traceroute %d, discarte %d, tracenet %d",
			c.TracerouteAddrs, c.DiscarteAddrs, c.TracenetAddrs)
	}
	if c.TracenetAddrs < 2*c.TracerouteAddrs {
		t.Errorf("tracenet found %d addrs, want at least 2x traceroute's %d",
			c.TracenetAddrs, c.TracerouteAddrs)
	}
	if c.Subnets == 0 || c.MultiAccess == 0 {
		t.Errorf("subnet annotations missing: %+v", c)
	}
	// The probing premium stays within the paper's "cost effective" claim:
	// a small constant factor, not an order of magnitude.
	if c.TracenetProbes > 5*c.TracerouteProbes {
		t.Errorf("tracenet probes %d exceed 5x traceroute's %d",
			c.TracenetProbes, c.TracerouteProbes)
	}
}
