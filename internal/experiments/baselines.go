package experiments

import (
	"tracenet/internal/alias"
	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/metrics"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/subnetinfer"
	"tracenet/internal/topo"
	"tracenet/internal/trace"
)

// OnlineVsOfflineResult compares tracenet's online subnet collection against
// the paper's own prior offline approach [7]: inferring subnets from
// traceroute output as a post-processing step (§2).
type OnlineVsOfflineResult struct {
	// OfflineDist / OnlineDist are the Table-1-style classifications of the
	// two approaches against the same ground truth.
	OfflineDist, OnlineDist   metrics.Distribution
	OfflineExact, OnlineExact float64
	// OfflineAddrs is how many addresses traceroute gave the offline
	// inference to work with; OnlineAddrs is tracenet's haul.
	OfflineAddrs, OnlineAddrs int
}

// OnlineVsOffline runs both pipelines over the Internet2-like network.
func OnlineVsOffline(seed int64) (*OnlineVsOfflineResult, error) {
	r := topo.Internet2()
	out := &OnlineVsOfflineResult{}
	originals := make([]metrics.Original, len(r.Originals))
	for i, o := range r.Originals {
		originals[i] = metrics.Original{
			Prefix:                o.Prefix,
			TotallyUnresponsive:   o.TotallyUnresponsive,
			PartiallyUnresponsive: o.PartiallyUnresponsive,
		}
	}

	// Offline: traceroute everything, then infer subnets from the hops.
	{
		n := netsim.New(r.Topo, netsim.Config{Seed: seed})
		port, err := n.PortFor("vantage")
		if err != nil {
			return nil, err
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
		byAddr := map[ipv4.Addr]int{}
		for _, target := range r.Targets() {
			route, err := trace.Run(pr, target, trace.Options{})
			if err != nil {
				return nil, err
			}
			for _, h := range route.Hops {
				if !h.Anonymous() {
					if prev, ok := byAddr[h.Addr]; !ok || h.TTL < prev {
						byAddr[h.Addr] = h.TTL
					}
				}
			}
		}
		var obs []subnetinfer.Observation
		for a, d := range byAddr {
			obs = append(obs, subnetinfer.Observation{Addr: a, Dist: d})
		}
		inferred := subnetinfer.Infer(obs, subnetinfer.Options{})
		var prefixes []ipv4.Prefix
		for _, s := range inferred {
			prefixes = append(prefixes, s.Prefix)
		}
		outcomes := metrics.Classify(originals, prefixes)
		out.OfflineDist = metrics.Distribute(originals, outcomes)
		out.OfflineExact = out.OfflineDist.ExactRate()
		out.OfflineAddrs = len(byAddr)
	}

	// Online: tracenet.
	{
		n := netsim.New(r.Topo, netsim.Config{Seed: seed})
		port, err := n.PortFor("vantage")
		if err != nil {
			return nil, err
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
		sess := core.NewSession(pr, core.Config{})
		addrs := map[ipv4.Addr]bool{}
		for _, target := range r.Targets() {
			res, err := sess.Trace(target)
			if err != nil {
				return nil, err
			}
			for _, h := range res.Hops {
				if !h.Anonymous() {
					addrs[h.Addr] = true
				}
			}
		}
		for _, s := range sess.Subnets() {
			for _, a := range s.Addrs {
				addrs[a] = true
			}
		}
		outcomes := metrics.Classify(originals, CollectedPrefixes(sess.Subnets()))
		out.OnlineDist = metrics.Distribute(originals, outcomes)
		out.OnlineExact = out.OnlineDist.ExactRate()
		out.OnlineAddrs = len(addrs)
	}
	return out, nil
}

// RouterMapResult evaluates the full router-level-map pipeline: tracenet
// collects addresses and subnets, Ally-style alias resolution (pruned by the
// same-subnet constraint) groups them into routers, and the grouping is
// scored against the simulator's ground truth.
type RouterMapResult struct {
	// Addresses resolved, alias pairs found, and ground-truth routers hit.
	Addresses, Groups, TrueRouters int
	// Precision: fraction of inferred same-router pairs that are truly on
	// one router. Recall: fraction of true same-router pairs (among the
	// resolved addresses) that were inferred.
	Precision, Recall float64
	// ProbesWithConstraint and ProbesWithout compare the alias-probing cost
	// with and without tracenet's subnet constraint.
	ProbesWithConstraint, ProbesWithout uint64
}

// RouterMap runs the pipeline over the Figure 3 network (small enough for
// exhaustive pairwise resolution).
func RouterMap(seed int64) (*RouterMapResult, error) {
	top := topo.Figure3()
	n := netsim.New(top, netsim.Config{Seed: seed})
	port, err := n.PortFor("vantage")
	if err != nil {
		return nil, err
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	sess := core.NewSession(pr, core.Config{})
	for _, dst := range []string{"10.0.5.2", "10.0.4.1", "10.0.3.1"} {
		if _, err := sess.Trace(ipv4.MustParseAddr(dst)); err != nil {
			return nil, err
		}
	}
	var subnets [][]ipv4.Addr
	seen := map[ipv4.Addr]bool{}
	var addrs []ipv4.Addr
	for _, s := range sess.Subnets() {
		subnets = append(subnets, s.Addrs)
		for _, a := range s.Addrs {
			// Keep router interfaces only (skip the vantage/destination
			// hosts, which are not part of the router-level map).
			if iface := top.IfaceByAddr(a); iface == nil || iface.Router.IsHost {
				continue
			}
			if !seen[a] {
				seen[a] = true
				addrs = append(addrs, a)
			}
		}
	}

	res := &RouterMapResult{Addresses: len(addrs)}

	resolve := func(constrained bool) ([][]ipv4.Addr, uint64, error) {
		rv := alias.NewResolver(port, port.LocalAddr())
		var cs []alias.Constraint
		if constrained {
			cs = append(cs, alias.SameSubnetConstraint(subnets))
		}
		groups, err := rv.Resolve(addrs, cs...)
		return groups, rv.Probes(), err
	}

	groups, cost, err := resolve(true)
	if err != nil {
		return nil, err
	}
	res.ProbesWithConstraint = cost
	if _, costU, err := resolve(false); err != nil {
		return nil, err
	} else {
		res.ProbesWithout = costU
	}
	res.Groups = len(groups)

	// Score pairs against ground truth.
	groupOf := map[ipv4.Addr]int{}
	for gi, g := range groups {
		for _, a := range g {
			groupOf[a] = gi
		}
	}
	routers := map[*netsim.Router]bool{}
	var tp, fp, fn int
	for i := 0; i < len(addrs); i++ {
		routers[top.IfaceByAddr(addrs[i]).Router] = true
		for j := i + 1; j < len(addrs); j++ {
			same := top.IfaceByAddr(addrs[i]).Router == top.IfaceByAddr(addrs[j]).Router
			inferred := groupOf[addrs[i]] == groupOf[addrs[j]]
			switch {
			case same && inferred:
				tp++
			case !same && inferred:
				fp++
			case same && !inferred:
				fn++
			}
		}
	}
	res.TrueRouters = len(routers)
	if tp+fp > 0 {
		res.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		res.Recall = float64(tp) / float64(tp+fn)
	}
	return res, nil
}
