package experiments

import (
	"testing"

	"tracenet/internal/core"
)

// TestOverheadEnvelope validates §3.6 through the experiment harness: the
// point-to-point lower-bound regime costs a small constant, and every
// multi-access measurement stays under the paper's 7|S|+7 worst case.
func TestOverheadEnvelope(t *testing.T) {
	points, err := Overhead()
	if err != nil {
		t.Fatal(err)
	}
	p2p, lans := 0, 0
	for _, p := range points {
		if p.PointToPoint {
			p2p++
			if p.Probes > 12 {
				t.Errorf("p2p |S|=%d cost %d, want small constant", p.Members, p.Probes)
			}
			continue
		}
		lans++
		if p.Probes > uint64(p.PaperUpperBound) {
			t.Errorf("|S|=%d cost %d exceeds the paper bound %d", p.Members, p.Probes, p.PaperUpperBound)
		}
	}
	if p2p == 0 || lans < 5 {
		t.Fatalf("sweep incomplete: %d p2p, %d LANs", p2p, lans)
	}
	// Linearity: cost grows with |S|.
	var prev uint64
	for _, p := range points {
		if p.PointToPoint {
			continue
		}
		if p.Probes < prev {
			t.Errorf("cost not monotone: |S|=%d cost %d after %d", p.Members, p.Probes, prev)
		}
		prev = p.Probes
	}
}

// TestAblationDirections runs every ablation harness and checks that the
// paper's design choice wins in its metric.
func TestAblationDirections(t *testing.T) {
	bu, err := AblationBottomUp()
	if err != nil {
		t.Fatal(err)
	}
	if bu.Baseline >= bu.Ablated {
		t.Errorf("bottom-up (%v probes) should beat top-down (%v)", bu.Baseline, bu.Ablated)
	}
	hf, err := AblationHalfFill()
	if err != nil {
		t.Fatal(err)
	}
	if hf.Baseline >= hf.Ablated {
		t.Errorf("half-fill stop (%v probes) should beat unguarded growth (%v)", hf.Baseline, hf.Ablated)
	}
	ti, err := AblationTwoIngress()
	if err != nil {
		t.Fatal(err)
	}
	if ti.Baseline <= ti.Ablated {
		t.Errorf("two-ingress H6 (%v members) should beat single ingress (%v)", ti.Baseline, ti.Ablated)
	}
	rt, err := AblationRetry()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Baseline <= rt.Ablated {
		t.Errorf("retry (%v subnets) should beat single-shot (%v)", rt.Baseline, rt.Ablated)
	}
}

// TestHeuristicStats checks the stop-reason distribution over the Internet2
// run: every growth terminates through a defined rule, and the boundary
// rules (H2–H8) plus the half-fill stop account for everything.
func TestHeuristicStats(t *testing.T) {
	stats, err := HeuristicStats(1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for reason, n := range stats {
		if reason == core.StopNone {
			t.Errorf("%d subnets terminated without a recorded rule", n)
		}
		total += n
	}
	if total < 150 {
		t.Fatalf("stop stats cover only %d subnets", total)
	}
	if stats[core.StopHalfFill] == 0 {
		t.Error("no half-fill stops on a network full of well-utilized subnets")
	}
	// Adjacent allocations guarantee boundary heuristics fire somewhere.
	boundary := stats[core.StopH2] + stats[core.StopH3] + stats[core.StopH4] +
		stats[core.StopH6] + stats[core.StopH7] + stats[core.StopH8]
	if boundary == 0 {
		t.Error("no boundary heuristic ever fired")
	}
}

// TestEntryLimitation characterizes the fixed-ingress assumption (§3.2(ii)):
// single-ingress subnets are collected whole; multi-ingress subnets have
// several interfaces one hop closer than the pivot and collapse under H3's
// single-contra-pivot rule.
func TestEntryLimitation(t *testing.T) {
	frac, err := EntryLimitation()
	if err != nil {
		t.Fatal(err)
	}
	if frac[1] < 0.95 {
		t.Errorf("single-ingress recovery = %.2f, want ~1.0", frac[1])
	}
	for _, entries := range []int{2, 3} {
		if frac[entries] >= 0.5 {
			t.Errorf("%d-ingress recovery = %.2f, want a collapse below 0.5 (fixed-ingress assumption)",
				entries, frac[entries])
		}
	}
}
