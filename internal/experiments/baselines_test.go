package experiments

import "testing"

// TestOnlineBeatsOffline validates the paper's §2 claim: inferring subnets
// offline from traceroute output [7] sees only one address per router per
// path and must underperform tracenet's online exploration, both in exact
// matches and in address coverage.
func TestOnlineBeatsOffline(t *testing.T) {
	res, err := OnlineVsOffline(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.OnlineExact <= res.OfflineExact {
		t.Errorf("online exact rate %.3f should beat offline %.3f",
			res.OnlineExact, res.OfflineExact)
	}
	// tracenet's online rate stays at its Table 1 level; the offline rate
	// collapses because most members never appear in traceroute output.
	if res.OnlineExact < 0.65 {
		t.Errorf("online exact rate = %.3f, want ≈0.737", res.OnlineExact)
	}
	if res.OfflineExact > 0.45 {
		t.Errorf("offline exact rate = %.3f, expected a collapse below 0.45", res.OfflineExact)
	}
	if res.OnlineAddrs <= res.OfflineAddrs {
		t.Errorf("online addresses %d should exceed offline input %d",
			res.OnlineAddrs, res.OfflineAddrs)
	}
}

// TestRouterMapPipeline validates the downstream pipeline: tracenet + Ally
// alias resolution produces an accurate router-level map, and the subnet
// constraint cuts the probing cost without changing the result.
func TestRouterMapPipeline(t *testing.T) {
	res, err := RouterMap(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Addresses < 8 {
		t.Fatalf("resolved only %d addresses", res.Addresses)
	}
	if res.Precision < 0.99 {
		t.Errorf("precision = %.2f, want ≈1.0 (counter IDs are unambiguous here)", res.Precision)
	}
	if res.Recall < 0.99 {
		t.Errorf("recall = %.2f, want ≈1.0", res.Recall)
	}
	if res.Groups != res.TrueRouters {
		t.Errorf("inferred %d routers, ground truth has %d", res.Groups, res.TrueRouters)
	}
	if res.ProbesWithConstraint >= res.ProbesWithout {
		t.Errorf("subnet constraint saved nothing: %d vs %d probes",
			res.ProbesWithConstraint, res.ProbesWithout)
	}
}
