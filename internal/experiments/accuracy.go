package experiments

import (
	"fmt"

	"tracenet/internal/core"
	"tracenet/internal/groundtruth"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

// Regime names one collection condition of the accuracy ensemble.
type Regime string

const (
	// RegimeClean: no faults, no ECMP — the collector's best case, where
	// inaccuracy can only come from the algorithm itself (or from subnets
	// whose assigned addresses underdetermine the prefix).
	RegimeClean Regime = "clean"
	// RegimeFaulted: a random fault plan (flapping links, blackholes,
	// corruption, delay storms) with retry and circuit-breaker resilience
	// enabled.
	RegimeFaulted Regime = "faulted"
	// RegimeECMP: redundant backbone cross links with per-packet load
	// balancing — the hostile path-instability case.
	RegimeECMP Regime = "ecmp"
)

// Regimes is the canonical regime order for reports and gates.
var Regimes = []Regime{RegimeClean, RegimeFaulted, RegimeECMP}

// AccuracyRun is one seeded topology collected and scored under one regime.
type AccuracyRun struct {
	Seed  int64
	Score *groundtruth.Score
}

// AccuracyResult aggregates an ensemble of seeded runs under one regime.
type AccuracyResult struct {
	Regime Regime
	Runs   []AccuracyRun

	// Mean accuracy over the ensemble, each in [0,1].
	SubnetPrecision float64
	SubnetRecall    float64
	AddrPrecision   float64
	AddrRecall      float64
	// Verdict totals over the ensemble.
	Exact, Subset, Superset, Phantom, Missed int
}

// AccuracyFloor is a committed regression gate: ensemble-mean accuracy under
// a regime must never drop below these values.
type AccuracyFloor struct {
	SubnetPrecision float64
	SubnetRecall    float64
	AddrPrecision   float64
	AddrRecall      float64
}

// AccuracyFloors are the committed per-regime gates, enforced by the tier-1
// tests and scripts/check.sh over AccuracySeeds. The values are pinned
// slightly below the measured ensemble means at the time of commit, so any
// inference regression trips the gate while leaving headroom for intentional
// topology-generator changes (the runs themselves are seeded and fully
// deterministic — there is no run-to-run noise to absorb).
//
// Measured means at commit time (seeds 1–5):
//
//	clean:   subnet P/R 1.000/0.988, addr P/R 1.000/0.993
//	faulted: subnet P/R 1.000/0.144, addr P/R 1.000/0.136
//	ecmp:    subnet P/R 0.970/0.935, addr P/R 1.000/0.903
//
// Note the shape of the faulted row: the random fault plan blackholes and
// flaps most of the topology, so recall collapses — but precision holds at
// 1.0. That is the resilience property worth gating: a degraded collector
// must miss subnets, never invent them.
var AccuracyFloors = map[Regime]AccuracyFloor{
	RegimeClean:   {SubnetPrecision: 0.99, SubnetRecall: 0.95, AddrPrecision: 0.99, AddrRecall: 0.96},
	RegimeFaulted: {SubnetPrecision: 0.99, SubnetRecall: 0.10, AddrPrecision: 0.99, AddrRecall: 0.10},
	RegimeECMP:    {SubnetPrecision: 0.93, SubnetRecall: 0.90, AddrPrecision: 0.97, AddrRecall: 0.85},
}

// AccuracySeeds is the committed ensemble: the seeds the accuracy gate runs.
var AccuracySeeds = []int64{1, 2, 3, 4, 5}

// Violations compares the result against a floor and describes every metric
// below it; empty means the gate passes.
func (r *AccuracyResult) Violations(f AccuracyFloor) []string {
	var out []string
	check := func(name string, got, floor float64) {
		if got < floor {
			out = append(out, fmt.Sprintf("%s/%s %.3f below floor %.3f", r.Regime, name, got, floor))
		}
	}
	check("subnet-precision", r.SubnetPrecision, f.SubnetPrecision)
	check("subnet-recall", r.SubnetRecall, f.SubnetRecall)
	check("addr-precision", r.AddrPrecision, f.AddrPrecision)
	check("addr-recall", r.AddrRecall, f.AddrRecall)
	return out
}

// RunAccuracy collects one seeded random topology under the given regime and
// scores the result against the simulator's ground truth.
func RunAccuracy(regime Regime, seed int64) (*AccuracyRun, error) {
	spec := topo.RandomSpec{Seed: seed, ExtraLinks: -1}
	cfg := netsim.Config{Seed: seed}
	popts := probe.Options{Cache: true}
	switch regime {
	case RegimeClean:
	case RegimeFaulted:
		popts.Retry = &probe.RetryPolicy{MaxRetries: 2, BackoffBase: 4, BackoffMax: 64, Jitter: 0.25}
		popts.Breaker = &probe.BreakerConfig{}
	case RegimeECMP:
		spec.ExtraLinks = 2
		cfg.Mode = netsim.PerPacket
	default:
		return nil, fmt.Errorf("unknown regime %q", regime)
	}

	topol, targets := topo.Random(spec)
	n := netsim.New(topol, cfg)
	if regime == RegimeFaulted {
		if err := n.InstallFaults(netsim.RandomFaultPlan(topol, seed)); err != nil {
			return nil, err
		}
	}
	port, err := n.PortFor("vantage")
	if err != nil {
		return nil, err
	}
	pr := probe.New(port, port.LocalAddr(), popts)
	sess := core.NewSession(pr, core.Config{})
	for _, dst := range targets {
		if _, err := sess.Trace(dst); err != nil {
			return nil, fmt.Errorf("regime %s seed %d trace %v: %w", regime, seed, dst, err)
		}
	}

	truth := groundtruth.FromTopology(topol, groundtruth.Options{})
	score := truth.Score(groundtruth.FromCoreSubnets(sess.Subnets()))
	return &AccuracyRun{Seed: seed, Score: score}, nil
}

// AccuracyEnsemble runs every seed under one regime and aggregates.
func AccuracyEnsemble(regime Regime, seeds []int64) (*AccuracyResult, error) {
	if len(seeds) == 0 {
		seeds = AccuracySeeds
	}
	res := &AccuracyResult{Regime: regime}
	for _, seed := range seeds {
		run, err := RunAccuracy(regime, seed)
		if err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, *run)
		s := run.Score
		res.SubnetPrecision += s.SubnetPrecision
		res.SubnetRecall += s.SubnetRecall
		res.AddrPrecision += s.AddrPrecision
		res.AddrRecall += s.AddrRecall
		res.Exact += s.Count(groundtruth.VerdictExact)
		res.Subset += s.Count(groundtruth.VerdictSubset)
		res.Superset += s.Count(groundtruth.VerdictSuperset)
		res.Phantom += s.Count(groundtruth.VerdictPhantom)
		res.Missed += s.Count(groundtruth.VerdictMissed)
	}
	n := float64(len(res.Runs))
	res.SubnetPrecision /= n
	res.SubnetRecall /= n
	res.AddrPrecision /= n
	res.AddrRecall /= n
	return res, nil
}

// AccuracySweep runs the committed ensemble under every regime, in canonical
// regime order.
func AccuracySweep(seeds []int64) ([]*AccuracyResult, error) {
	var out []*AccuracyResult
	for _, regime := range Regimes {
		res, err := AccuracyEnsemble(regime, seeds)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
