package experiments

import (
	"reflect"
	"testing"

	"tracenet/internal/netsim"
)

// TestAdversarialFloors is the committed adversarial accuracy gate (wired
// into scripts/check.sh and CI): every regime must stay within its floor —
// the attack must keep hurting the undefended collector, and the defenses
// must keep recovering.
func TestAdversarialFloors(t *testing.T) {
	results, err := AdversarialSweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(AdversarialRegimes) {
		t.Fatalf("sweep returned %d regimes, want %d", len(results), len(AdversarialRegimes))
	}
	for _, r := range results {
		floor, ok := AdversarialFloors[r.Regime]
		if !ok {
			t.Fatalf("regime %s has no committed floor", r.Regime)
		}
		for _, v := range r.Violations(floor) {
			t.Error(v)
		}
		t.Logf("%-14s undefended subnet P/R %.3f/%.3f  defended %.3f/%.3f  quarantined %d  defense probes %d",
			r.Regime, r.UndefendedSubnetPrecision, r.UndefendedSubnetRecall,
			r.DefendedSubnetPrecision, r.DefendedSubnetRecall, r.Quarantined, r.DefenseProbes)
	}

	// The headline property the issue gates: at least one regime where the
	// undefended collector invents structure (precision < 1) and the
	// defended run measurably recovers it.
	headline := false
	for _, r := range results {
		if r.UndefendedSubnetPrecision < 1 && r.DefendedSubnetPrecision > r.UndefendedSubnetPrecision {
			headline = true
		}
	}
	if !headline {
		t.Error("no regime shows undefended precision collapse with measurable defended recovery")
	}
}

func TestAdversarialRunProperties(t *testing.T) {
	// The liar regime must actually trigger quarantines, and attribution
	// must blame planned kinds only.
	run, err := RunAdversarial(RegimeLiar, 1)
	if err != nil {
		t.Fatal(err)
	}
	if run.Quarantined == 0 {
		t.Error("defended liar run quarantined nothing")
	}
	if run.DefenseProbes == 0 {
		t.Error("defended liar run spent no defense probes")
	}
	for _, row := range run.Undefended.Rows {
		if row.Blame != "" && row.Blame != netsim.FaultLiar.String() {
			t.Errorf("liar regime blamed %q", row.Blame)
		}
	}

	// The byzantine regime's blame summary must be non-empty and name only
	// planned adversarial kinds.
	res, err := AdversarialEnsemble(RegimeByzantine, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blames) == 0 {
		t.Error("byzantine ensemble attributed no rows")
	}
	for _, b := range res.Blames {
		switch b.Blame {
		case "liar", "alias-confuse", "hidden-hop", "echo":
		default:
			t.Errorf("unexpected blame %q", b.Blame)
		}
	}
}

func TestAdversarialDeterminism(t *testing.T) {
	a, err := AdversarialEnsemble(RegimeByzantine, []int64{2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AdversarialEnsemble(RegimeByzantine, []int64{2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same-seed adversarial ensembles differ")
	}
}

func TestAdversarialPlanRejectsUnknownRegime(t *testing.T) {
	if _, err := AdversarialPlan(Regime("bogus"), 1); err == nil {
		t.Fatal("unknown regime accepted")
	}
}
