package experiments

import (
	"fmt"

	"tracenet/internal/core"
	"tracenet/internal/groundtruth"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

// Adversarial regimes: byzantine responders that lie rather than fail
// (DESIGN.md §11). Each regime runs the same seeded topology twice — once
// with the paper's trusting inference and once with defenses on — so the
// harness measures both the damage an adversary does and how much of it the
// defenses claw back.
const (
	// RegimeLiar: routers answer TTL-expired probes with rotating spoofed
	// sources drawn from real interfaces elsewhere in the topology.
	RegimeLiar Regime = "liar"
	// RegimeAliasConfuse: several routers share one anycast-style source
	// address, collapsing distinct links into one apparent interface.
	RegimeAliasConfuse Regime = "alias-confuse"
	// RegimeHiddenHop: a backbone router forwards transparently without ever
	// generating ICMP errors, like an MPLS LSR with TTL propagation off.
	RegimeHiddenHop Regime = "hidden-hop"
	// RegimeEcho: routers mirror the probed destination back as an alive
	// reply source, minting hosts at addresses nobody owns.
	RegimeEcho Regime = "echo"
	// RegimeByzantine: all four lies at once.
	RegimeByzantine Regime = "byzantine"
)

// AdversarialRegimes is the canonical order for reports and gates.
var AdversarialRegimes = []Regime{RegimeLiar, RegimeAliasConfuse, RegimeHiddenHop, RegimeEcho, RegimeByzantine}

// AdversarialSeeds is the committed ensemble for the adversarial gate. It
// matches AccuracySeeds: the per-seed spread of the probabilistic regimes
// (echo especially) is wide enough that a three-seed mean flips sign on an
// unlucky draw stream, while the five-seed mean is stable.
var AdversarialSeeds = []int64{1, 2, 3, 4, 5}

// AdversarialPlan builds the deterministic always-on fault plan for a
// regime. The probabilities are pinned: high enough that the undefended
// collapse is unmistakable, low enough that a lie repeated under
// cross-validation (which a fabrication must survive twice) is unlikely.
func AdversarialPlan(regime Regime, seed int64) (netsim.FaultPlan, error) {
	plan := netsim.FaultPlan{Seed: seed}
	add := func(kinds ...netsim.Fault) { plan.Faults = append(plan.Faults, kinds...) }
	liar := netsim.Fault{Kind: netsim.FaultLiar, Prob: 0.35}
	alias := netsim.Fault{Kind: netsim.FaultAliasConfuse}
	// bb1 exists in every random topology (default 8 backbone routers) and
	// sits on many paths, so hiding it perturbs real traces.
	hidden := netsim.Fault{Kind: netsim.FaultHiddenHop, Router: "bb1"}
	echo := netsim.Fault{Kind: netsim.FaultEcho, Prob: 0.5}
	switch regime {
	case RegimeLiar:
		add(liar)
	case RegimeAliasConfuse:
		add(alias)
	case RegimeHiddenHop:
		add(hidden)
	case RegimeEcho:
		add(echo)
	case RegimeByzantine:
		add(liar, alias, hidden, echo)
	default:
		return netsim.FaultPlan{}, fmt.Errorf("unknown adversarial regime %q", regime)
	}
	return plan, nil
}

// AdversarialRun is one seeded topology collected twice under one regime.
type AdversarialRun struct {
	Seed int64
	// Undefended is the paper's trusting inference under attack; Defended is
	// the same run with core.Config.Defend on. Both scores are attributed
	// (groundtruth.Attribute) against the regime's plan.
	Undefended *groundtruth.Score
	Defended   *groundtruth.Score
	// Quarantined counts the addresses the defended session quarantined.
	Quarantined int
	// DefenseProbes is the extra probe cost the defenses paid.
	DefenseProbes uint64
}

// AdversarialResult aggregates an ensemble of seeded runs under one regime.
type AdversarialResult struct {
	Regime Regime
	Runs   []AdversarialRun

	// Ensemble means, each in [0,1].
	UndefendedSubnetPrecision float64
	UndefendedSubnetRecall    float64
	DefendedSubnetPrecision   float64
	DefendedSubnetRecall      float64
	UndefendedAddrPrecision   float64
	DefendedAddrPrecision     float64

	// Quarantined / DefenseProbes are ensemble totals.
	Quarantined   int
	DefenseProbes uint64
	// Blames tallies the attributed undefended error rows by fault kind.
	Blames []groundtruth.BlameCount
}

// AdversarialFloor is a committed regression gate for one regime: the
// undefended run must stay visibly broken (precision at or below the
// ceiling — an adversary that stops hurting means the simulation regressed)
// and the defended run must stay good (precision/recall at or above the
// floors).
type AdversarialFloor struct {
	// UndefendedSubnetPrecisionMax is the collapse ceiling: mean undefended
	// subnet precision must not exceed it. 1 disables the ceiling for
	// regimes whose lie degrades recall rather than precision.
	UndefendedSubnetPrecisionMax float64
	// DefendedSubnetPrecision / DefendedSubnetRecall are recovery floors.
	DefendedSubnetPrecision float64
	DefendedSubnetRecall    float64
	// MinPrecisionRecovery requires defended precision to beat undefended
	// precision by at least this margin — the "measurably recovers" gate.
	MinPrecisionRecovery float64
}

// AdversarialFloors are the committed per-regime gates, enforced by the
// tier-1 tests and scripts/check.sh over AdversarialSeeds. Like
// AccuracyFloors they are pinned just past the measured ensemble values —
// deterministic runs have no noise to absorb, the slack only covers
// intentional topology-generator changes.
//
// Measured means at commit time (seeds 1–5, per-router-sharded fault
// streams):
//
//	liar:          undefended subnet P 0.830 → defended 0.928 (R 0.894 → 0.600)
//	alias-confuse: undefended subnet P 1.000 → defended 1.000 (R 0.156 → 0.650)
//	hidden-hop:    undefended subnet P 1.000 → defended 1.000 (R 0.956 → 0.956)
//	echo:          undefended subnet P 0.794 → defended 0.807 (R 0.606 → 0.650)
//	byzantine:     undefended subnet P 0.733 → defended 0.826 (R 0.369 → 0.519)
//
// The shape per regime is the threat model of DESIGN.md §11 made
// measurable. Liar and echo poison precision — the undefended collector
// *invents* subnet structure, the one failure the clean/faulted gates prove
// it never does on honest networks — and the defenses demonstrably claw it
// back. Alias-confuse barely touches precision but collapses recall to
// 0.156 undefended (the repeated shared source trips the loop detector and
// aborts traces early); quarantining the shared address recovers recall to
// 0.650. Hidden hops are invisible by construction, so no defense recovers
// them — the gate just pins that they cost recall, not precision. Echo's
// recovery is real but small in the mean (its per-seed spread is the reason
// the ensemble is five seeds), so its margin gate is the loosest.
var AdversarialFloors = map[Regime]AdversarialFloor{
	RegimeLiar:         {UndefendedSubnetPrecisionMax: 0.87, DefendedSubnetPrecision: 0.91, DefendedSubnetRecall: 0.55, MinPrecisionRecovery: 0.05},
	RegimeAliasConfuse: {UndefendedSubnetPrecisionMax: 1, DefendedSubnetPrecision: 0.99, DefendedSubnetRecall: 0.60},
	RegimeHiddenHop:    {UndefendedSubnetPrecisionMax: 1, DefendedSubnetPrecision: 0.99, DefendedSubnetRecall: 0.94},
	RegimeEcho:         {UndefendedSubnetPrecisionMax: 0.84, DefendedSubnetPrecision: 0.79, DefendedSubnetRecall: 0.62, MinPrecisionRecovery: 0.005},
	RegimeByzantine:    {UndefendedSubnetPrecisionMax: 0.80, DefendedSubnetPrecision: 0.80, DefendedSubnetRecall: 0.48, MinPrecisionRecovery: 0.05},
}

// Violations compares the result against a floor and describes every bound
// broken; empty means the gate passes.
func (r *AdversarialResult) Violations(f AdversarialFloor) []string {
	var out []string
	if r.UndefendedSubnetPrecision > f.UndefendedSubnetPrecisionMax {
		out = append(out, fmt.Sprintf("%s/undefended-subnet-precision %.3f above ceiling %.3f (attack no longer hurts)",
			r.Regime, r.UndefendedSubnetPrecision, f.UndefendedSubnetPrecisionMax))
	}
	if r.DefendedSubnetPrecision < f.DefendedSubnetPrecision {
		out = append(out, fmt.Sprintf("%s/defended-subnet-precision %.3f below floor %.3f",
			r.Regime, r.DefendedSubnetPrecision, f.DefendedSubnetPrecision))
	}
	if r.DefendedSubnetRecall < f.DefendedSubnetRecall {
		out = append(out, fmt.Sprintf("%s/defended-subnet-recall %.3f below floor %.3f",
			r.Regime, r.DefendedSubnetRecall, f.DefendedSubnetRecall))
	}
	if rec := r.DefendedSubnetPrecision - r.UndefendedSubnetPrecision; rec < f.MinPrecisionRecovery {
		out = append(out, fmt.Sprintf("%s/precision-recovery %.3f below minimum %.3f",
			r.Regime, rec, f.MinPrecisionRecovery))
	}
	return out
}

// collectAdversarial runs one seeded topology under a regime's plan and
// scores it. The defended and undefended runs share every other parameter,
// so their difference isolates the defenses.
func collectAdversarial(regime Regime, seed int64, defend bool) (*groundtruth.Score, *core.Session, uint64, error) {
	plan, err := AdversarialPlan(regime, seed)
	if err != nil {
		return nil, nil, 0, err
	}
	topol, targets := topo.Random(topo.RandomSpec{Seed: seed, ExtraLinks: -1})
	n := netsim.New(topol, netsim.Config{Seed: seed})
	if err := n.InstallFaults(plan); err != nil {
		return nil, nil, 0, err
	}
	port, err := n.PortFor("vantage")
	if err != nil {
		return nil, nil, 0, err
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	sess := core.NewSession(pr, core.Config{Defend: defend})
	var defenseProbes uint64
	for _, dst := range targets {
		res, err := sess.Trace(dst)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("regime %s seed %d defend=%v trace %v: %w", regime, seed, defend, dst, err)
		}
		defenseProbes += res.DefenseProbes
	}
	truth := groundtruth.FromTopology(topol, groundtruth.Options{})
	score := truth.Score(groundtruth.FromCoreSubnets(sess.Subnets()))
	groundtruth.Attribute(score, plan)
	return score, sess, defenseProbes, nil
}

// RunAdversarial collects one seeded topology twice — trusting, then
// defended — under one regime.
func RunAdversarial(regime Regime, seed int64) (*AdversarialRun, error) {
	undef, _, _, err := collectAdversarial(regime, seed, false)
	if err != nil {
		return nil, err
	}
	def, sess, probes, err := collectAdversarial(regime, seed, true)
	if err != nil {
		return nil, err
	}
	return &AdversarialRun{
		Seed:          seed,
		Undefended:    undef,
		Defended:      def,
		Quarantined:   len(sess.Quarantined()),
		DefenseProbes: probes,
	}, nil
}

// AdversarialEnsemble runs every seed under one regime and aggregates.
func AdversarialEnsemble(regime Regime, seeds []int64) (*AdversarialResult, error) {
	if len(seeds) == 0 {
		seeds = AdversarialSeeds
	}
	res := &AdversarialResult{Regime: regime}
	blames := map[string]int{}
	for _, seed := range seeds {
		run, err := RunAdversarial(regime, seed)
		if err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, *run)
		res.UndefendedSubnetPrecision += run.Undefended.SubnetPrecision
		res.UndefendedSubnetRecall += run.Undefended.SubnetRecall
		res.DefendedSubnetPrecision += run.Defended.SubnetPrecision
		res.DefendedSubnetRecall += run.Defended.SubnetRecall
		res.UndefendedAddrPrecision += run.Undefended.AddrPrecision
		res.DefendedAddrPrecision += run.Defended.AddrPrecision
		res.Quarantined += run.Quarantined
		res.DefenseProbes += run.DefenseProbes
		for _, b := range run.Undefended.BlameSummary() {
			blames[b.Blame] += b.Count
		}
	}
	n := float64(len(res.Runs))
	res.UndefendedSubnetPrecision /= n
	res.UndefendedSubnetRecall /= n
	res.DefendedSubnetPrecision /= n
	res.DefendedSubnetRecall /= n
	res.UndefendedAddrPrecision /= n
	res.DefendedAddrPrecision /= n
	for _, k := range netsim.FaultKinds {
		if n, ok := blames[k.String()]; ok {
			res.Blames = append(res.Blames, groundtruth.BlameCount{Blame: k.String(), Count: n})
		}
	}
	return res, nil
}

// AdversarialSweep runs the committed ensemble under every adversarial
// regime, in canonical order.
func AdversarialSweep(seeds []int64) ([]*AdversarialResult, error) {
	var out []*AdversarialResult
	for _, regime := range AdversarialRegimes {
		res, err := AdversarialEnsemble(regime, seeds)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
