package experiments

import (
	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

// AblationResult compares the paper's design choice against its ablated
// variant on the same workload.
type AblationResult struct {
	Name string
	// Baseline and Ablated report the headline metric for the two variants;
	// Better reports whether the paper's choice wins, and Metric names what
	// was measured.
	Baseline, Ablated float64
	Metric            string
}

// AblationBottomUp measures §3.8's design choice: bottom-up subnet growth
// versus the top-down strawman, in probe packets spent on a chain of small
// point-to-point subnets (where top-down pays the full assumed-subnet cost).
func AblationBottomUp() (AblationResult, error) {
	run := func(cfg core.Config) (float64, error) {
		n := netsim.New(topo.Chain(5), netsim.Config{})
		port, err := n.PortFor("vantage")
		if err != nil {
			return 0, err
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true, NoRetry: true})
		res, err := core.Trace(pr, ipv4.MustParseAddr("10.9.255.2"), cfg)
		if err != nil {
			return 0, err
		}
		return float64(res.TotalProbes()), nil
	}
	base, err := run(core.Config{})
	if err != nil {
		return AblationResult{}, err
	}
	abl, err := run(core.Config{TopDown: true, MinPrefixBits: 26})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "bottom-up vs top-down growth (§3.8)",
		Baseline: base,
		Ablated:  abl,
		Metric:   "probe packets for a 4-link chain",
	}, nil
}

// AblationHalfFill measures Algorithm 1's lines 19–21 stopping rule: probes
// spent on the sparse Figure 3 subnet with and without the rule.
func AblationHalfFill() (AblationResult, error) {
	run := func(cfg core.Config) (float64, error) {
		n := netsim.New(topo.Figure3(), netsim.Config{})
		port, err := n.PortFor("vantage")
		if err != nil {
			return 0, err
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true, NoRetry: true})
		res, err := core.Trace(pr, ipv4.MustParseAddr("10.0.5.2"), cfg)
		if err != nil {
			return 0, err
		}
		return float64(res.TotalProbes()), nil
	}
	base, err := run(core.Config{})
	if err != nil {
		return AblationResult{}, err
	}
	abl, err := run(core.Config{DisableHalfFillStop: true, MinPrefixBits: 24})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "half-fill stopping rule (Alg. 1, lines 19–21)",
		Baseline: base,
		Ablated:  abl,
		Metric:   "probe packets on a sparse /24",
	}, nil
}

// AblationTwoIngress measures §3.7's two-ingress H6 tolerance under per-flow
// load balancing: the fraction of the parallel-entry subnet's members
// recovered with both entry points accepted versus the single-ingress
// variant, over a scan of flow identifiers.
func AblationTwoIngress() (AblationResult, error) {
	build := func() *netsim.Topology {
		b := netsim.NewBuilder()
		v := b.Host("vantage")
		r1 := b.Router("R1")
		r2 := b.Router("R2")
		r2b := b.Router("R2b")
		a := b.Subnet("10.255.0.0/30")
		b.Attach(v, a, "10.255.0.1")
		b.Attach(r1, a, "10.255.0.2")
		up := b.Subnet("10.255.1.0/31")
		b.Attach(r1, up, "10.255.1.0")
		b.Attach(r2, up, "10.255.1.1")
		up2 := b.Subnet("10.255.1.2/31")
		b.Attach(r1, up2, "10.255.1.2")
		b.Attach(r2b, up2, "10.255.1.3")
		s := b.Subnet("10.7.0.0/28")
		b.Attach(r2, s, "10.7.0.1")
		b.Attach(r2b, s, "10.7.0.2")
		var first *netsim.Router
		for i := 3; i <= 9; i++ {
			m := b.Router("M" + string(rune('0'+i)))
			b.AttachA(m, s, ipv4.MustParseAddr("10.7.0.0")+ipv4.Addr(i))
			if first == nil {
				first = m
			}
		}
		d := b.Host("dest")
		ds := b.Subnet("10.255.2.0/30")
		b.Attach(first, ds, "10.255.2.1")
		b.Attach(d, ds, "10.255.2.2")
		return b.MustBuild()
	}

	members := func(cfg core.Config, flowID uint16) (int, error) {
		n := netsim.New(build(), netsim.Config{Mode: netsim.PerFlow})
		port, err := n.PortFor("vantage")
		if err != nil {
			return 0, err
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true, NoRetry: true, FlowID: flowID})
		res, err := core.Trace(pr, ipv4.MustParseAddr("10.255.2.2"), cfg)
		if err != nil {
			return 0, err
		}
		for _, s := range res.Subnets {
			if s.Prefix.Contains(ipv4.MustParseAddr("10.7.0.3")) {
				return len(s.Addrs), nil
			}
		}
		return 0, nil
	}

	var sumBase, sumAbl int
	for flowID := uint16(1); flowID <= 32; flowID++ {
		nb, err := members(core.Config{}, flowID)
		if err != nil {
			return AblationResult{}, err
		}
		na, err := members(core.Config{SingleIngress: true}, flowID)
		if err != nil {
			return AblationResult{}, err
		}
		sumBase += nb
		sumAbl += na
	}
	return AblationResult{
		Name:     "two-ingress H6 under load balancing (§3.7)",
		Baseline: float64(sumBase) / 32,
		Ablated:  float64(sumAbl) / 32,
		Metric:   "mean members recovered from a 9-interface dual-entry subnet",
	}, nil
}

// AblationRetry measures §3.8's re-probe-on-silence choice: collected-subnet
// count over the Figure 3 workload at 30% reply loss, with and without the
// retry.
func AblationRetry() (AblationResult, error) {
	run := func(opts probe.Options) (float64, error) {
		collected := 0
		for seed := int64(0); seed < 16; seed++ {
			n := netsim.New(topo.Figure3(), netsim.Config{LossRate: 0.3, Seed: seed})
			port, err := n.PortFor("vantage")
			if err != nil {
				return 0, err
			}
			pr := probe.New(port, port.LocalAddr(), opts)
			res, err := core.Trace(pr, ipv4.MustParseAddr("10.0.5.2"), core.Config{})
			if err != nil {
				return 0, err
			}
			for _, s := range res.Subnets {
				if s.Prefix.Bits() < 32 {
					collected++
				}
			}
		}
		return float64(collected) / 16, nil
	}
	base, err := run(probe.Options{Cache: true, Retries: 1})
	if err != nil {
		return AblationResult{}, err
	}
	abl, err := run(probe.Options{Cache: true, NoRetry: true})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "re-probe on silence (§3.8)",
		Baseline: base,
		Ablated:  abl,
		Metric:   "mean subnets collected per session at 30% loss",
	}, nil
}

// entryTopo builds a multi-access /27 reachable through `entries` equal-cost
// ingress routers, plus a destination host behind its first member.
func entryTopo(entries int) *netsim.Topology {
	b := netsim.NewBuilder()
	v := b.Host("vantage")
	r1 := b.Router("R1")
	a := b.Subnet("10.1.0.0/30")
	b.Attach(v, a, "10.1.0.1")
	b.Attach(r1, a, "10.1.0.2")

	s := b.Subnet("10.1.64.0/27")
	for i := 0; i < entries; i++ {
		e := b.Router("E" + string(rune('0'+i)))
		up := b.SubnetP(ipv4.NewPrefix(ipv4.MustParseAddr("10.1.16.0")+ipv4.Addr(16*i), 31))
		b.AttachA(r1, up, up.Prefix.Base())
		b.AttachA(e, up, up.Prefix.Base()+1)
		b.AttachA(e, s, ipv4.MustParseAddr("10.1.64.0")+ipv4.Addr(i+1))
	}
	var first *netsim.Router
	for m := 4; m <= 20; m++ {
		r := b.Router("M" + string(rune('a'+m)))
		b.AttachA(r, s, ipv4.MustParseAddr("10.1.64.0")+ipv4.Addr(m))
		if first == nil {
			first = r
		}
	}
	d := b.Host("dest")
	ds := b.Subnet("10.1.128.0/30")
	b.Attach(first, ds, "10.1.128.1")
	b.Attach(d, ds, "10.1.128.2")
	return b.MustBuild()
}

// EntryLimitation characterizes the paper's fixed-ingress-router assumption
// (§3.2(ii)): the algorithm presumes a subnet is entered through a single
// ingress router, with exactly one contra-pivot interface one hop closer
// than the rest (H3). A subnet reachable through several equal-cost ingress
// routers has several interfaces at that distance, so H3's
// second-contra-pivot rule (or H6's entry check) shrinks it prematurely.
// The result maps ingress count to the mean fraction of the 17-member LAN
// recovered over a scan of flow identifiers: single-ingress subnets are
// collected whole, multi-ingress ones collapse.
func EntryLimitation() (map[int]float64, error) {
	out := map[int]float64{}
	for entries := 1; entries <= 3; entries++ {
		const runs = 16
		total := 0
		for run := 0; run < runs; run++ {
			n := netsim.New(entryTopo(entries), netsim.Config{Mode: netsim.PerFlow})
			port, err := n.PortFor("vantage")
			if err != nil {
				return nil, err
			}
			pr := probe.New(port, port.LocalAddr(), probe.Options{
				Cache: true, NoRetry: true, FlowID: uint16(run + 1),
			})
			res, err := core.Trace(pr, ipv4.MustParseAddr("10.1.128.2"), core.Config{})
			if err != nil {
				return nil, err
			}
			for _, s := range res.Subnets {
				if s.Prefix.Contains(ipv4.MustParseAddr("10.1.64.4")) {
					total += len(s.Addrs)
				}
			}
		}
		out[entries] = float64(total) / runs / float64(17+entries)
	}
	return out, nil
}
