// Package experiments contains one harness per table and figure of the
// paper's evaluation (§4), plus the §3.6 probing-overhead model and the
// ablations listed in DESIGN.md. Each harness is deterministic given its
// seed and returns the rows/series the paper reports; the cmd/experiments
// binary and the repository-level benchmarks print them.
package experiments

import (
	"fmt"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/metrics"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

// ResearchResult is the outcome of a Table 1 / Table 2 run: tracenet over a
// research network from a single vantage point, compared against the derived
// original topology.
type ResearchResult struct {
	Name string
	// Dist is the Table 1/2 cross-tabulation.
	Dist metrics.Distribution
	// Originals and Outcomes back the similarity computations.
	Originals []metrics.Original
	Outcomes  []metrics.Outcome
	// Headline numbers (§4.1).
	ExactRate           float64 // including unresponsive subnets
	ExactRateResponsive float64 // excluding unresponsive subnets
	PrefixSimilarity    float64 // equation (3)
	SizeSimilarity      float64 // equation (5)
	// The *Responsive similarity variants exclude totally unresponsive
	// subnets; the paper's GEANT headline (0.900/0.907) is only consistent
	// with equations (3)/(5) under this exclusion.
	PrefixSimilarityResponsive float64
	SizeSimilarityResponsive   float64
	// Probes is the total packet count of the collection run.
	Probes uint64
	// Collected are the distinct observed subnet prefixes.
	Collected []ipv4.Prefix
}

// RunResearch traces every target of the research network from its vantage
// point and evaluates the collected subnets against the ground truth.
func RunResearch(r *topo.Research, seed int64) (*ResearchResult, error) {
	net := netsim.New(r.Topo, netsim.Config{Seed: seed})
	port, err := net.PortFor("vantage")
	if err != nil {
		return nil, err
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	sess := core.NewSession(pr, core.Config{})
	for _, target := range r.Targets() {
		if _, err := sess.Trace(target); err != nil {
			return nil, fmt.Errorf("experiments: tracing %v: %w", target, err)
		}
	}

	collected := CollectedPrefixes(sess.Subnets())
	originals := make([]metrics.Original, len(r.Originals))
	for i, o := range r.Originals {
		originals[i] = metrics.Original{
			Prefix:                o.Prefix,
			TotallyUnresponsive:   o.TotallyUnresponsive,
			PartiallyUnresponsive: o.PartiallyUnresponsive,
		}
	}
	outcomes := metrics.Classify(originals, collected)
	dist := metrics.Distribute(originals, outcomes)
	return &ResearchResult{
		Name:                       r.Name,
		Dist:                       dist,
		Originals:                  originals,
		Outcomes:                   outcomes,
		ExactRate:                  dist.ExactRate(),
		ExactRateResponsive:        dist.ExactRateResponsive(),
		PrefixSimilarity:           metrics.PrefixSimilarity(originals, outcomes),
		SizeSimilarity:             metrics.SizeSimilarity(originals, outcomes),
		PrefixSimilarityResponsive: metrics.PrefixSimilarityResponsive(originals, outcomes),
		SizeSimilarityResponsive:   metrics.SizeSimilarityResponsive(originals, outcomes),
		Probes:                     pr.Stats().Sent,
		Collected:                  collected,
	}, nil
}

// Table1Internet2 reproduces Table 1: tracenet over the Internet2-like
// network.
func Table1Internet2(seed int64) (*ResearchResult, error) {
	return RunResearch(topo.Internet2(), seed)
}

// Table2GEANT reproduces Table 2: tracenet over the GEANT-like network.
func Table2GEANT(seed int64) (*ResearchResult, error) {
	return RunResearch(topo.GEANT(), seed)
}

// CollectedPrefixes extracts the distinct observed subnet prefixes from a
// session's subnets. Subnets of a single address (/32) are the paper's
// "un-subnetized" class and are not subnets.
func CollectedPrefixes(subnets []*core.Subnet) []ipv4.Prefix {
	seen := map[ipv4.Prefix]bool{}
	var out []ipv4.Prefix
	for _, s := range subnets {
		if s.Prefix.Bits() >= 32 || seen[s.Prefix] {
			continue
		}
		seen[s.Prefix] = true
		out = append(out, s.Prefix)
	}
	return out
}
