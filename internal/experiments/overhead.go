package experiments

import (
	"fmt"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

// OverheadPoint is one measurement of the §3.6 probing-overhead model: the
// observed probe cost of discovering one subnet of |S| interfaces, compared
// with the paper's analytical envelope.
type OverheadPoint struct {
	// Members is |S|, the number of interfaces on the discovered subnet.
	Members int
	// Probes is the measured packet cost of positioning + exploring it.
	Probes uint64
	// PaperUpperBound is the paper's worst-case model 7|S|+7.
	PaperUpperBound int
	// PointToPoint marks the lower-bound regime (constant cost).
	PointToPoint bool
}

// Overhead measures probing cost across subnet sizes: the point-to-point
// lower bound and a sweep of multi-access LAN sizes.
func Overhead() ([]OverheadPoint, error) {
	var out []OverheadPoint

	// Lower bound: on-path point-to-point subnets in a chain.
	{
		top := topo.Chain(5)
		n := netsim.New(top, netsim.Config{})
		port, err := n.PortFor("vantage")
		if err != nil {
			return nil, err
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true, NoRetry: true})
		res, err := core.Trace(pr, ipv4.MustParseAddr("10.9.255.2"), core.Config{})
		if err != nil {
			return nil, err
		}
		for _, s := range res.Subnets {
			if s.PointToPoint() {
				out = append(out, OverheadPoint{
					Members:         len(s.Addrs),
					Probes:          s.Probes,
					PaperUpperBound: 7*len(s.Addrs) + 7,
					PointToPoint:    true,
				})
			}
		}
	}

	// Upper-bound regime: multi-access LANs of growing size.
	for _, k := range []int{6, 10, 16, 24, 40, 60, 100} {
		p, err := lanCost(k)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// lanCost builds a LAN with k member interfaces behind a two-hop core and
// measures the probe cost of collecting it.
func lanCost(k int) (OverheadPoint, error) {
	b := netsim.NewBuilder()
	v := b.Host("vantage")
	r1 := b.Router("R1")
	r2 := b.Router("R2")
	a := b.Subnet("10.255.0.0/30")
	b.Attach(v, a, "10.255.0.1")
	b.Attach(r1, a, "10.255.0.2")
	up := b.Subnet("10.255.1.0/31")
	b.Attach(r1, up, "10.255.1.0")
	b.Attach(r2, up, "10.255.1.1")

	// Smallest prefix fully containing k members plus boundaries.
	bits := 32
	for (uint64(1) << (32 - bits)) < uint64(k)+3 {
		bits--
	}
	base := ipv4.MustParseAddr("10.7.0.0")
	s := b.SubnetP(ipv4.NewPrefix(base, bits))
	b.AttachA(r2, s, base+1)
	var first *netsim.Router
	for i := 2; i <= k; i++ {
		m := b.Router(fmt.Sprintf("M%d", i))
		b.AttachA(m, s, base+ipv4.Addr(i))
		if first == nil {
			first = m
		}
	}
	d := b.Host("dest")
	ds := b.Subnet("10.255.2.0/30")
	b.Attach(first, ds, "10.255.2.1")
	b.Attach(d, ds, "10.255.2.2")

	top, err := b.Build()
	if err != nil {
		return OverheadPoint{}, err
	}
	n := netsim.New(top, netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		return OverheadPoint{}, err
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true, NoRetry: true})
	res, err := core.Trace(pr, ipv4.MustParseAddr("10.255.2.2"), core.Config{})
	if err != nil {
		return OverheadPoint{}, err
	}
	for _, sub := range res.Subnets {
		if sub.Prefix.Contains(base + 2) {
			return OverheadPoint{
				Members:         len(sub.Addrs),
				Probes:          sub.Probes,
				PaperUpperBound: 7*len(sub.Addrs) + 7,
			}, nil
		}
	}
	return OverheadPoint{}, fmt.Errorf("experiments: LAN with %d members not collected", k)
}
