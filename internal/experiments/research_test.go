package experiments

import (
	"math"
	"testing"

	"tracenet/internal/metrics"
)

// TestTable1Internet2 validates the Table 1 reproduction: the collected
// distribution must track the paper's rows and headline rates
// (73.7% exact including unresponsive, 94.9% excluding; prefix similarity
// 0.83; size similarity 0.86).
func TestTable1Internet2(t *testing.T) {
	res, err := Table1Internet2(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist.Total() != 179 {
		t.Fatalf("original subnets = %d, want 179", res.Dist.Total())
	}
	checkRate(t, "exact rate", res.ExactRate, 0.737, 0.06)
	checkRate(t, "responsive exact rate", res.ExactRateResponsive, 0.949, 0.06)
	checkRate(t, "prefix similarity", res.PrefixSimilarity, 0.83, 0.08)
	checkRate(t, "size similarity", res.SizeSimilarity, 0.86, 0.08)

	if got := res.Dist.Count(metrics.MissingUnresponsive); got != 21 {
		t.Errorf("miss\\unrs = %d, want 21", got)
	}
	if got := res.Dist.Count(metrics.UnderUnresponsive); got != 19 {
		t.Errorf("undes\\unrs = %d, want 19", got)
	}
	if got := res.Dist.Count(metrics.Exact); got < 125 || got > 139 {
		t.Errorf("exact = %d, want ~132", got)
	}
}

// TestTable2GEANT validates the Table 2 reproduction (53.5% / 97.3% exact,
// 0.900 prefix similarity, 0.907 size similarity).
func TestTable2GEANT(t *testing.T) {
	res, err := Table2GEANT(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist.Total() != 271 {
		t.Fatalf("original subnets = %d, want 271", res.Dist.Total())
	}
	checkRate(t, "exact rate", res.ExactRate, 0.535, 0.06)
	checkRate(t, "responsive exact rate", res.ExactRateResponsive, 0.973, 0.05)
	// The paper reports 0.900/0.907 for GEANT; those values are only
	// consistent with equations (3)/(5) once totally unresponsive subnets
	// are excluded (see metrics.PrefixSimilarityResponsive). The plain
	// formula applied to the paper's own Table 2 yields ≈0.60.
	checkRate(t, "responsive prefix similarity", res.PrefixSimilarityResponsive, 0.900, 0.08)
	checkRate(t, "responsive size similarity", res.SizeSimilarityResponsive, 0.907, 0.08)
	if res.PrefixSimilarity > 0.8 {
		t.Errorf("plain prefix similarity = %.3f; expected the low (≈0.6) value the formula actually yields", res.PrefixSimilarity)
	}

	if got := res.Dist.Count(metrics.MissingUnresponsive); got != 97 {
		t.Errorf("miss\\unrs = %d, want 97", got)
	}
}

func checkRate(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.3f, want %.3f ± %.2f", name, got, want, tol)
	}
}

// TestResearchSeedIndependence: the Table 1/2 runs involve no randomness
// (lossless network, per-flow balancing on unambiguous paths), so any seed
// must reproduce the identical distribution — the reproduction is a property
// of the algorithm, not of a lucky seed.
func TestResearchSeedIndependence(t *testing.T) {
	a, err := Table1Internet2(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1Internet2(424242)
	if err != nil {
		t.Fatal(err)
	}
	for cls, cells := range a.Dist.PerClass {
		for bits, n := range cells {
			if b.Dist.PerClass[cls][bits] != n {
				t.Fatalf("seed changed cell %v//%d: %d vs %d", cls, bits, n, b.Dist.PerClass[cls][bits])
			}
		}
	}
	if a.Probes != b.Probes {
		t.Fatalf("seed changed probe count: %d vs %d", a.Probes, b.Probes)
	}
}
