package experiments

import (
	"testing"

	"tracenet/internal/groundtruth"
)

// TestAccuracyFloors is the committed regression gate: ensemble-mean accuracy
// under every regime must stay at or above the pinned floors.
func TestAccuracyFloors(t *testing.T) {
	results, err := AccuracySweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Regimes) {
		t.Fatalf("sweep returned %d regimes, want %d", len(results), len(Regimes))
	}
	for _, res := range results {
		floor, ok := AccuracyFloors[res.Regime]
		if !ok {
			t.Fatalf("no committed floor for regime %s", res.Regime)
		}
		for _, v := range res.Violations(floor) {
			t.Error(v)
		}
		if len(res.Runs) != len(AccuracySeeds) {
			t.Errorf("%s: %d runs, want %d", res.Regime, len(res.Runs), len(AccuracySeeds))
		}
	}
}

// TestAccuracyRunDeterministic pins that the same (regime, seed) pair scores
// identically across runs — the property the floors rely on.
func TestAccuracyRunDeterministic(t *testing.T) {
	a, err := RunAccuracy(RegimeECMP, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAccuracy(RegimeECMP, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score.SubnetPrecision != b.Score.SubnetPrecision ||
		a.Score.SubnetRecall != b.Score.SubnetRecall ||
		a.Score.CommonAddrs != b.Score.CommonAddrs ||
		len(a.Score.Rows) != len(b.Score.Rows) {
		t.Fatalf("same seed scored differently:\n%+v\nvs\n%+v", a.Score, b.Score)
	}
}

// TestAccuracyFaultedNeverInvents pins the resilience shape of the faulted
// regime: heavy faults may collapse recall, but the collector must not invent
// subnets or addresses (precision stays perfect on every seed).
func TestAccuracyFaultedNeverInvents(t *testing.T) {
	res, err := AccuracyEnsemble(RegimeFaulted, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range res.Runs {
		if n := run.Score.Count(groundtruth.VerdictPhantom); n != 0 {
			t.Errorf("seed %d: %d phantom subnets under faults", run.Seed, n)
		}
		if run.Score.AddrPrecision != 1 {
			t.Errorf("seed %d: addr precision %v under faults", run.Seed, run.Score.AddrPrecision)
		}
	}
}

func TestAccuracyUnknownRegime(t *testing.T) {
	if _, err := RunAccuracy(Regime("bogus"), 1); err == nil {
		t.Fatal("unknown regime accepted")
	}
}
