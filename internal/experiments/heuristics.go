package experiments

import (
	"tracenet/internal/core"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

// HeuristicStats reports how often each rule terminated subnet growth over a
// full Internet2-like collection run — an analysis the paper does not print
// but that its §3.5/§3.6 discussion implies: on a well-numbered network most
// explorations end at the half-fill rule or at an H2/H6 boundary with a
// neighbouring address block.
func HeuristicStats(seed int64) (map[core.StopReason]int, error) {
	r := topo.Internet2()
	n := netsim.New(r.Topo, netsim.Config{Seed: seed})
	port, err := n.PortFor("vantage")
	if err != nil {
		return nil, err
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	sess := core.NewSession(pr, core.Config{})
	for _, target := range r.Targets() {
		if _, err := sess.Trace(target); err != nil {
			return nil, err
		}
	}
	return sess.StopStats(), nil
}
