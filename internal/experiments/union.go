package experiments

import "tracenet/internal/topomap"

// MapUnion quantifies the paper's §3.7 suggestion that "the same subnet
// could be re-collected at a different time or from a different vantage
// point": the union map over the three vantage campaigns covers more
// subnets and addresses than any single campaign.
type MapUnionResult struct {
	// PerVantage is each campaign's own subnet count; Union the merged
	// map's count (overlapping observations reconciled).
	PerVantage []int
	Union      int
	// PerVantageAddrs / UnionAddrs count distinct member addresses.
	PerVantageAddrs []int
	UnionAddrs      int
}

// MapUnion merges the campaigns of an ISP run into one subnet map.
func MapUnion(res *ISPResult) MapUnionResult {
	out := MapUnionResult{}
	union := topomap.New()
	for _, run := range res.Runs {
		single := topomap.New()
		single.AddSubnets(run.Subnets)
		out.PerVantage = append(out.PerVantage, len(single.Subnets()))
		out.PerVantageAddrs = append(out.PerVantageAddrs, single.AddrCount())
		union.AddSubnets(run.Subnets)
	}
	out.Union = len(union.Subnets())
	out.UnionAddrs = union.AddrCount()
	return out
}
