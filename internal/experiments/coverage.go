package experiments

import (
	"tracenet/internal/core"
	"tracenet/internal/discarte"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
	"tracenet/internal/trace"
)

// CoverageResult quantifies the paper's motivating claim (Figure 1, §1):
// on the same end-to-end path, tracenet discovers the addresses traceroute
// misses, marks multi-access versus point-to-point links, and annotates
// subnets with their masks — at a probing cost traceroute doesn't pay.
type CoverageResult struct {
	// TracerouteAddrs, DiscarteAddrs, and TracenetAddrs are distinct
	// addresses discovered by each collector.
	TracerouteAddrs, DiscarteAddrs, TracenetAddrs int
	// Per-collector packet costs.
	TracerouteProbes, DiscarteProbes, TracenetProbes uint64
	// Subnets and MultiAccess count the collected subnets and how many of
	// them are multi-access LANs — information only tracenet produces.
	Subnets, MultiAccess int
}

// Coverage runs traceroute and tracenet over the same Internet2-like network
// and target set and compares discovery yield.
func Coverage(seed int64) (*CoverageResult, error) {
	r := topo.Internet2()
	out := &CoverageResult{}

	// Baseline traceroute.
	{
		n := netsim.New(r.Topo, netsim.Config{Seed: seed})
		port, err := n.PortFor("vantage")
		if err != nil {
			return nil, err
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
		addrs := map[ipv4.Addr]bool{}
		for _, target := range r.Targets() {
			route, err := trace.Run(pr, target, trace.Options{})
			if err != nil {
				return nil, err
			}
			for _, a := range route.Addrs() {
				addrs[a] = true
			}
		}
		out.TracerouteAddrs = len(addrs)
		out.TracerouteProbes = pr.Stats().Sent
	}

	// DisCarte-style record-route baseline (§2): about two addresses per
	// hop for the first nine hops.
	{
		n := netsim.New(r.Topo, netsim.Config{Seed: seed})
		port, err := n.PortFor("vantage")
		if err != nil {
			return nil, err
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true, RecordRoute: true})
		addrs := map[ipv4.Addr]bool{}
		for _, target := range r.Targets() {
			route, err := discarte.Run(pr, target, discarte.Options{})
			if err != nil {
				return nil, err
			}
			for _, a := range route.Addrs() {
				addrs[a] = true
			}
		}
		out.DiscarteAddrs = len(addrs)
		out.DiscarteProbes = pr.Stats().Sent
	}

	// tracenet.
	{
		n := netsim.New(r.Topo, netsim.Config{Seed: seed})
		port, err := n.PortFor("vantage")
		if err != nil {
			return nil, err
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
		sess := core.NewSession(pr, core.Config{})
		addrs := map[ipv4.Addr]bool{}
		for _, target := range r.Targets() {
			res, err := sess.Trace(target)
			if err != nil {
				return nil, err
			}
			for _, h := range res.Hops {
				if !h.Anonymous() {
					addrs[h.Addr] = true
				}
			}
		}
		for _, s := range sess.Subnets() {
			for _, a := range s.Addrs {
				addrs[a] = true
			}
			if s.Prefix.Bits() < 32 {
				out.Subnets++
				if !s.PointToPoint() {
					out.MultiAccess++
				}
			}
		}
		out.TracenetAddrs = len(addrs)
		out.TracenetProbes = pr.Stats().Sent
	}
	return out, nil
}
