package invariant_test

import (
	"testing"

	"tracenet/internal/invariant"
)

// TestAssert exercises both build modes: with -tags invariants a false
// condition must panic; without it Assert must be inert.
func TestAssert(t *testing.T) {
	invariant.Assert(true, "true never panics")
	invariant.Assertf(true, "true never panics (%s)", "fmt")

	recovered := func() (r any) {
		defer func() { r = recover() }()
		invariant.Assert(false, "boom")
		return nil
	}()
	if invariant.Enabled {
		want := "invariant violated: boom"
		if recovered != want {
			t.Fatalf("Assert(false) with invariants enabled: recovered %v, want %q", recovered, want)
		}
	} else if recovered != nil {
		t.Fatalf("Assert(false) in default build panicked: %v", recovered)
	}
}

func TestAssertf(t *testing.T) {
	recovered := func() (r any) {
		defer func() { r = recover() }()
		invariant.Assertf(false, "bad state %d/%d", 3, 7)
		return nil
	}()
	if invariant.Enabled {
		want := "invariant violated: bad state 3/7"
		if recovered != want {
			t.Fatalf("Assertf(false): recovered %v, want %q", recovered, want)
		}
	} else if recovered != nil {
		t.Fatalf("Assertf(false) in default build panicked: %v", recovered)
	}
}
