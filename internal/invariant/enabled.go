//go:build invariants

package invariant

// Enabled reports whether assertions are compiled in (`-tags invariants`).
const Enabled = true
