// Package invariant is tracenet's runtime complement to the tracenetlint
// static analyzers: executable assertions for properties the type system and
// the linters cannot see (counter monotonicity, state-machine legality,
// checkpoint well-formedness). Assertions compile to no-ops by default so the
// paper-scale campaigns pay nothing; the race-enabled test run in
// scripts/check.sh builds with `-tags invariants`, turning every assertion
// into a crash-on-violation check. A failed invariant panics: these guard
// programming errors, not runtime conditions, and a collector that keeps
// probing past a corrupted engine state produces silently wrong maps — the
// one outcome worse than crashing.
package invariant

import "fmt"

// Assert panics with msg when the invariants build tag is set and cond is
// false. Without the tag it compiles to nothing.
func Assert(cond bool, msg string) {
	if Enabled && !cond {
		panic("invariant violated: " + msg)
	}
}

// Assertf is Assert with formatting. The arguments are only evaluated when
// the invariant fails, but callers should still keep them cheap: the call
// itself is always present, only the body is gated.
func Assertf(cond bool, format string, args ...any) {
	if Enabled && !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}
