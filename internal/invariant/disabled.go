//go:build !invariants

package invariant

// Enabled reports whether assertions are compiled in. In the default build
// they are not: Assert/Assertf bodies are dead code the compiler removes.
const Enabled = false
