package subnetinfer

import (
	"testing"

	"tracenet/internal/ipv4"
)

func addr(s string) ipv4.Addr  { return ipv4.MustParseAddr(s) }
func pfx(s string) ipv4.Prefix { return ipv4.MustParsePrefix(s) }

func TestInferP2PPair(t *testing.T) {
	obs := []Observation{
		{addr("10.0.1.0"), 1},
		{addr("10.0.1.1"), 2},
	}
	got := Infer(obs, Options{})
	if len(got) != 1 || got[0].Prefix != pfx("10.0.1.0/31") {
		t.Fatalf("inferred = %+v", got)
	}
}

func TestInferSlash30UsableHosts(t *testing.T) {
	obs := []Observation{
		{addr("10.0.1.1"), 3},
		{addr("10.0.1.2"), 4},
	}
	got := Infer(obs, Options{})
	if len(got) != 1 || got[0].Prefix != pfx("10.0.1.0/30") {
		t.Fatalf("inferred = %+v", got)
	}
}

func TestDistanceConditionSeparates(t *testing.T) {
	// Mate addresses two hops apart cannot share a subnet.
	obs := []Observation{
		{addr("10.0.1.0"), 2},
		{addr("10.0.1.1"), 5},
	}
	if got := Infer(obs, Options{}); len(got) != 0 {
		t.Fatalf("inferred across a 3-hop gap: %+v", got)
	}
}

func TestBoundarySeparates(t *testing.T) {
	// 10.0.1.7 would be the broadcast of 10.0.1.0/29: the /29 candidate is
	// rejected; the /31 and /30 pairs survive.
	obs := []Observation{
		{addr("10.0.1.1"), 3},
		{addr("10.0.1.2"), 3},
		{addr("10.0.1.7"), 3},
	}
	got := Infer(obs, Options{})
	if len(got) != 1 || got[0].Prefix != pfx("10.0.1.0/30") {
		t.Fatalf("inferred = %+v", got)
	}
}

func TestCompletenessCondition(t *testing.T) {
	// Two addresses spread over a /28 range (2 of 14 hosts) fail the
	// completeness condition at every level past their own /31s.
	obs := []Observation{
		{addr("10.0.1.1"), 3},
		{addr("10.0.1.9"), 3},
	}
	if got := Infer(obs, Options{}); len(got) != 0 {
		t.Fatalf("sparse range inferred: %+v", got)
	}
}

func TestInferLAN(t *testing.T) {
	// Five members of a /29, distances 2 (contra side) and 3.
	obs := []Observation{
		{addr("10.0.2.1"), 2},
		{addr("10.0.2.2"), 3},
		{addr("10.0.2.3"), 3},
		{addr("10.0.2.4"), 3},
		{addr("10.0.2.5"), 3},
	}
	got := Infer(obs, Options{})
	if len(got) != 1 || got[0].Prefix != pfx("10.0.2.0/29") {
		t.Fatalf("inferred = %+v", got)
	}
	if len(got[0].Addrs) != 5 {
		t.Fatalf("members = %v", got[0].Addrs)
	}
}

func TestEachAddressAssignedOnce(t *testing.T) {
	obs := []Observation{
		{addr("10.0.1.0"), 1},
		{addr("10.0.1.1"), 2},
		{addr("10.0.1.2"), 2},
		{addr("10.0.1.3"), 3},
	}
	got := Infer(obs, Options{})
	seen := map[ipv4.Addr]bool{}
	for _, s := range got {
		for _, a := range s.Addrs {
			if seen[a] {
				t.Fatalf("address %v assigned twice: %+v", a, got)
			}
			seen[a] = true
		}
	}
}

func TestEmptyInput(t *testing.T) {
	if got := Infer(nil, Options{}); len(got) != 0 {
		t.Fatalf("inferred from nothing: %+v", got)
	}
}
