// Package subnetinfer implements the offline subnet-inference baseline the
// paper contrasts itself against (Gunes & Sarac [7], "Inferring subnets in
// router-level topology collection studies"): a post-processing step that
// groups the IP addresses found in traceroute output into candidate subnets
// using hierarchical-addressing and hop-distance conditions.
//
// The fundamental handicap — and the paper's point (§2: "unlike the approach
// presented in [7], tracenet discovers subnet topologies as part of the
// online data collection process") — is that traceroute output contains only
// one address per router per path, so most subnet members are simply absent
// from the input and the inferred subnets come out fragmented or missed.
package subnetinfer

import (
	"sort"

	"tracenet/internal/ipv4"
)

// Observation is one address harvested from traceroute output, with the hop
// distance at which it responded.
type Observation struct {
	Addr ipv4.Addr
	// Dist is the hop distance from the vantage point (the TTL of the probe
	// that solicited the response).
	Dist int
}

// Subnet is one inferred subnet.
type Subnet struct {
	Prefix ipv4.Prefix
	Addrs  []ipv4.Addr
}

// Options tune the inference conditions.
type Options struct {
	// MaxPrefix bounds how large an inferred subnet may grow (smallest
	// prefix length considered). Default 24.
	MaxPrefix int
	// MinCompleteness is the utilized fraction of a candidate prefix
	// required to accept it, mirroring [7]'s completeness condition.
	// Default 0.5.
	MinCompleteness float64
}

func (o Options) withDefaults() Options {
	if o.MaxPrefix == 0 {
		o.MaxPrefix = 24
	}
	if o.MinCompleteness == 0 {
		o.MinCompleteness = 0.5
	}
	return o
}

// Infer groups the observations into subnets. For each address it grows the
// candidate prefix from /31 upward while three conditions keep holding,
// mirroring [7]'s formulation:
//
//   - hierarchical addressing: all group members share the prefix, and for
//     prefixes shorter than /31 no member is a network/broadcast address;
//   - distance condition: member hop distances differ by at most one (the
//     paper's unit subnet diameter);
//   - completeness: the group utilizes at least MinCompleteness of the
//     candidate prefix.
//
// Each address joins exactly one inferred subnet (the largest accepted
// candidate); addresses whose /31 candidate already fails stay out of the
// result, like [7]'s unassigned leftovers.
func Infer(obs []Observation, opts Options) []Subnet {
	opts = opts.withDefaults()
	byAddr := map[ipv4.Addr]int{}
	for _, o := range obs {
		byAddr[o.Addr] = o.Dist
	}
	addrs := make([]ipv4.Addr, 0, len(byAddr))
	for a := range byAddr {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	assigned := map[ipv4.Addr]bool{}
	var out []Subnet
	for _, a := range addrs {
		if assigned[a] {
			continue
		}
		best := bestPrefix(a, byAddr, opts)
		if best.Bits() > 31 {
			continue // nothing to pair with
		}
		s := Subnet{Prefix: best}
		best.Addrs(func(m ipv4.Addr) bool {
			if _, ok := byAddr[m]; ok && !assigned[m] {
				s.Addrs = append(s.Addrs, m)
				assigned[m] = true
			}
			return true
		})
		if len(s.Addrs) >= 2 {
			out = append(out, s)
		} else {
			// A degenerate group (the candidates were assigned elsewhere).
			for _, m := range s.Addrs {
				delete(assigned, m)
			}
		}
	}
	return out
}

// InferDefended is Infer hardened against lying responders: addresses
// observed at inconsistent hop distances — the liar / alias-confuse symptom
// in traceroute output, where one source is claimed at positions more than a
// hop apart — are quarantined out of the input before inference and returned
// (ascending) so the caller can report them. Honest multi-path observations
// of one interface legitimately differ by one hop; a wider spread cannot be
// one interface at one place in the topology.
func InferDefended(obs []Observation, opts Options) ([]Subnet, []ipv4.Addr) {
	minD := map[ipv4.Addr]int{}
	maxD := map[ipv4.Addr]int{}
	for _, o := range obs {
		if lo, ok := minD[o.Addr]; !ok || o.Dist < lo {
			minD[o.Addr] = o.Dist
		}
		if hi, ok := maxD[o.Addr]; !ok || o.Dist > hi {
			maxD[o.Addr] = o.Dist
		}
	}
	var quarantined []ipv4.Addr
	for a := range minD {
		if maxD[a]-minD[a] > 1 {
			quarantined = append(quarantined, a)
		}
	}
	if len(quarantined) == 0 {
		return Infer(obs, opts), nil
	}
	sort.Slice(quarantined, func(i, j int) bool { return quarantined[i] < quarantined[j] })
	bad := make(map[ipv4.Addr]bool, len(quarantined))
	for _, a := range quarantined {
		bad[a] = true
	}
	kept := make([]Observation, 0, len(obs))
	for _, o := range obs {
		if !bad[o.Addr] {
			kept = append(kept, o)
		}
	}
	return Infer(kept, opts), quarantined
}

// bestPrefix evaluates every candidate level around a and returns the
// largest acceptable prefix (/32 when none is). Levels are independent: a
// /31 that fails for lack of a mate does not preclude the /30 or /29 whose
// other members make the conditions hold — e.g. the two usable hosts of a
// /30 have no /31 mates but form a valid /30.
func bestPrefix(a ipv4.Addr, byAddr map[ipv4.Addr]int, opts Options) ipv4.Prefix {
	accepted := ipv4.NewPrefix(a, 32)
	for m := 31; m >= opts.MaxPrefix; m-- {
		p := ipv4.NewPrefix(a, m)
		if acceptable(p, byAddr, opts) {
			accepted = p
		}
	}
	return accepted
}

func acceptable(p ipv4.Prefix, byAddr map[ipv4.Addr]int, opts Options) bool {
	count := 0
	minD, maxD := 1<<30, -1
	ok := true
	p.Addrs(func(m ipv4.Addr) bool {
		d, present := byAddr[m]
		if !present {
			return true
		}
		if p.Bits() < 31 && p.IsBoundary(m) {
			ok = false
			return false
		}
		count++
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
		return true
	})
	if !ok || count < 2 {
		return false
	}
	if maxD-minD > 1 {
		return false // unit subnet diameter violated
	}
	return float64(count) >= opts.MinCompleteness*float64(p.HostCount())
}
