package collect

import (
	"fmt"
	"sync/atomic"

	"tracenet/internal/ipv4"
	"tracenet/internal/probe"
	"tracenet/internal/telemetry"
)

// Progress is a live, lock-free view of a running campaign, built for the
// observability plane (internal/obs) to poll while workers are busy. Every
// field the workers touch is an atomic, so publishing progress adds no locks
// — and no allocations — to the per-target or per-probe paths; readers get a
// consistent-enough snapshot without ever blocking a worker.
//
// Determinism contract: Snapshot deliberately exposes only
// schedule-independent quantities once the campaign has finished, so a
// rendered snapshot of a completed same-seed campaign is byte-identical at
// any Parallel value. While the campaign is still running the snapshot
// additionally carries inherently schedule-dependent live detail (in-flight
// counts, per-worker state); that detail disappears from the final snapshot
// rather than poisoning it. The last-activity tick is never exposed in a
// snapshot at all — it feeds the stall Watchdog only.
//
// All methods are safe on a nil *Progress, so the campaign engine calls them
// unconditionally.
type Progress struct {
	targets  atomic.Int64
	inflight atomic.Int64
	done     atomic.Int64
	breaker  atomic.Int64
	resumed  atomic.Int64
	budget   atomic.Int64
	skipped  atomic.Int64
	failed   atomic.Int64

	subnetObs    atomic.Uint64
	distinct     atomic.Int64
	breakerTrips atomic.Uint64
	started      atomic.Bool
	finished     atomic.Bool

	activity probe.Activity

	// bind holds the references fixed at campaign start. It is published
	// atomically because the observability server may snapshot a Progress
	// before the campaign it was handed to has started.
	bind atomic.Pointer[progressBinding]
}

// ID returns the campaign identity bound at start ("" for anonymous
// campaigns, and always before the campaign starts).
func (p *Progress) ID() string {
	if p == nil {
		return ""
	}
	if b := p.bind.Load(); b != nil {
		return b.id
	}
	return ""
}

type progressBinding struct {
	id      string
	budget  *probe.SharedBudget
	cache   *Cache
	workers []atomic.Uint64 // packed worker cells, see packWorker
}

// Worker cells pack (state, target) into one uint64 so a worker's transition
// from idle to tracing is a single atomic store: bit 32 is the busy flag, the
// low 32 bits are the target address.
const workerBusy = uint64(1) << 32

func packWorker(dst ipv4.Addr) uint64 { return workerBusy | uint64(dst) }

// NewProgress creates a Progress ready to hand to Config.Progress and, via
// Activity, to the probe layer.
func NewProgress() *Progress { return &Progress{} }

// Activity returns the campaign-wide probe liveness meter wired into every
// worker's prober; nil on a nil Progress.
func (p *Progress) Activity() *probe.Activity {
	if p == nil {
		return nil
	}
	return &p.activity
}

// start binds the campaign's shared state and publishes the worker table.
// Called once by Run before any worker launches.
func (p *Progress) start(id string, targets, parallel int, budget *probe.SharedBudget, cache *Cache) {
	if p == nil {
		return
	}
	p.targets.Store(int64(targets))
	p.bind.Store(&progressBinding{
		id:      id,
		budget:  budget,
		cache:   cache,
		workers: make([]atomic.Uint64, parallel),
	})
	p.started.Store(true)
}

// workerStart marks worker w as tracing dst.
func (p *Progress) workerStart(w int, dst ipv4.Addr) {
	if p == nil {
		return
	}
	p.inflight.Add(1)
	if b := p.bind.Load(); b != nil && w >= 0 && w < len(b.workers) {
		b.workers[w].Store(packWorker(dst))
	}
}

// workerIdle marks worker w as between targets.
func (p *Progress) workerIdle(w int) {
	if p == nil {
		return
	}
	if b := p.bind.Load(); b != nil && w >= 0 && w < len(b.workers) {
		b.workers[w].Store(0)
	}
	p.inflight.Add(-1)
}

// targetDone accounts one finished target row (including resumed and skipped
// rows, which never reached a worker).
func (p *Progress) targetDone(res TargetResult) {
	if p == nil {
		return
	}
	switch res.Status {
	case StatusDone:
		p.done.Add(1)
	case StatusBreaker:
		p.breaker.Add(1)
	case StatusResumed:
		p.resumed.Add(1)
	case StatusBudget:
		p.budget.Add(1)
	case StatusSkipped:
		p.skipped.Add(1)
	case StatusFailed:
		p.failed.Add(1)
	}
	p.subnetObs.Add(uint64(res.Subnets))
}

// addBreakerTrips accumulates circuit-breaker opens observed by one target's
// prober.
func (p *Progress) addBreakerTrips(n uint64) {
	if p == nil || n == 0 {
		return
	}
	p.breakerTrips.Add(n)
}

// finish seals the progress with the campaign's deterministic final report.
func (p *Progress) finish(rep *Report) {
	if p == nil {
		return
	}
	p.distinct.Store(int64(len(rep.Subnets())))
	p.finished.Store(true)
}

// Started reports whether a campaign has bound this Progress yet.
func (p *Progress) Started() bool { return p != nil && p.started.Load() }

// Finished reports whether the campaign has completed.
func (p *Progress) Finished() bool { return p != nil && p.finished.Load() }

// WireProbes returns the live count of completed wire exchanges.
func (p *Progress) WireProbes() uint64 {
	if p == nil {
		return 0
	}
	return p.activity.Probes()
}

// LastActivityTick returns the tick of the most recent completed exchange —
// schedule-dependent, for stall detection only (see Watchdog).
func (p *Progress) LastActivityTick() uint64 {
	if p == nil {
		return 0
	}
	return p.activity.LastTick()
}

// BreakerTrips returns the live circuit-breaker open count.
func (p *Progress) BreakerTrips() uint64 {
	if p == nil {
		return 0
	}
	return p.breakerTrips.Load()
}

// BudgetExhausted reports whether the campaign's shared probe budget has run
// out (false when unlimited or not yet started).
func (p *Progress) BudgetExhausted() bool {
	if p == nil {
		return false
	}
	b := p.bind.Load()
	return b != nil && b.budget.Exhausted()
}

// WorkerSnapshot is one worker's live state in a Snapshot.
type WorkerSnapshot struct {
	ID     int    `json:"id"`
	State  string `json:"state"` // "idle" | "tracing"
	Target string `json:"target,omitempty"`
}

// Snapshot is a JSON-stable progress view; see Progress for which fields are
// schedule-independent. Field order is fixed by the struct, so rendering is
// deterministic.
type Snapshot struct {
	// ID is the campaign identity (omitted for anonymous campaigns, which
	// keeps the single-campaign /campaigns rendering byte-for-byte).
	ID       string `json:"id,omitempty"`
	Started  bool   `json:"started"`
	Finished bool   `json:"finished"`
	Targets  int64  `json:"targets"`
	Done     int64  `json:"done"`
	Breaker  int64  `json:"breaker"`
	Resumed  int64  `json:"resumed"`
	Budget   int64  `json:"budget"`
	Skipped  int64  `json:"skipped"`
	Failed   int64  `json:"failed"`

	WireProbes   uint64 `json:"wire_probes"`
	BreakerTrips uint64 `json:"breaker_trips"`
	// BudgetCap/BudgetRemaining describe the shared probe budget; both are
	// omitted for unlimited campaigns.
	BudgetCap       uint64 `json:"budget_cap,omitempty"`
	BudgetRemaining uint64 `json:"budget_remaining,omitempty"`

	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	ProbesSaved uint64 `json:"probes_saved"`
	// CacheHitRate is hits/(hits+misses), 0 before any lookup.
	CacheHitRate float64 `json:"cache_hit_rate"`

	// SubnetObservations counts per-target subnet sightings (a subnet crossed
	// by k targets counts k times) — schedule-independent, available live.
	SubnetObservations uint64 `json:"subnet_observations"`
	// DistinctSubnets is the merged report's subnet count, set at completion.
	DistinctSubnets int64 `json:"distinct_subnets"`

	// InFlight and Workers describe live scheduling state; both drain to
	// zero/absent once the campaign finishes, keeping the final snapshot
	// parallelism-independent.
	InFlight int64            `json:"in_flight"`
	Workers  []WorkerSnapshot `json:"workers,omitempty"`
}

// Snapshot assembles the current progress view. Safe at any time, including
// before start and after finish.
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Started:            p.started.Load(),
		Finished:           p.finished.Load(),
		Targets:            p.targets.Load(),
		Done:               p.done.Load(),
		Breaker:            p.breaker.Load(),
		Resumed:            p.resumed.Load(),
		Budget:             p.budget.Load(),
		Skipped:            p.skipped.Load(),
		Failed:             p.failed.Load(),
		WireProbes:         p.activity.Probes(),
		BreakerTrips:       p.breakerTrips.Load(),
		SubnetObservations: p.subnetObs.Load(),
		DistinctSubnets:    p.distinct.Load(),
	}
	b := p.bind.Load()
	if b == nil {
		return s
	}
	s.ID = b.id
	if total := b.budget.Cap(); total > 0 {
		s.BudgetCap = total
		s.BudgetRemaining = b.budget.Remaining()
	}
	if b.cache != nil {
		s.CacheHits = b.cache.Hits()
		s.CacheMisses = b.cache.Misses()
		s.ProbesSaved = b.cache.ProbesSaved()
		if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
			s.CacheHitRate = float64(s.CacheHits) / float64(lookups)
		}
	}
	if !s.Finished {
		s.InFlight = p.inflight.Load()
		s.Workers = make([]WorkerSnapshot, len(b.workers))
		for i := range b.workers {
			cell := b.workers[i].Load()
			s.Workers[i] = WorkerSnapshot{ID: i, State: "idle"}
			if cell&workerBusy != 0 {
				s.Workers[i].State = "tracing"
				s.Workers[i].Target = ipv4.Addr(uint32(cell)).String()
			}
		}
	}
	return s
}

// DefaultStallWindow is the Watchdog window in virtual ticks when none is
// configured: generously beyond any single exchange (netsim advances a few
// ticks per injection; backoff waits run to at most a few hundred), so only a
// genuinely wedged campaign — every worker stuck skipping or waiting without
// completing exchanges — trips it.
const DefaultStallWindow = 4096

// Watchdog detects campaign stalls: a started, unfinished campaign where no
// wire exchange has completed within the configured window of virtual ticks.
// It is poll-driven — Check is called by whoever holds a current tick (the
// /readyz health check, the CLI's progress loop, tests) — because a timer
// goroutine would need the wall clock, which the determinism contract bans
// from the measurement path.
//
// On the first Check that observes a stall the watchdog files exactly one
// flight-recorder incident and increments tracenet_campaign_stalls_total;
// the episode re-arms once activity resumes, so an on-off-on stall pattern
// files one incident per episode, not one per poll.
type Watchdog struct {
	prog    *Progress
	tel     *telemetry.Telemetry
	window  uint64
	id      string
	cStalls *telemetry.Counter
	stalled atomic.Bool
}

// NewWatchdog builds a stall watchdog over prog (window 0 selects
// DefaultStallWindow). The stalls counter is resolved up front so polling
// never pays a by-name registry lookup.
func NewWatchdog(prog *Progress, tel *telemetry.Telemetry, window uint64) *Watchdog {
	return NewCampaignWatchdog(prog, tel, window, "")
}

// NewCampaignWatchdog is NewWatchdog for an identified campaign (see
// Config.ID): the stall counter carries the ("campaign", id) label and stall
// incidents name the campaign, so one watchdog per campaign — the daemon's
// arrangement — files attributable evidence instead of colliding on shared
// series. An empty id is the anonymous single-campaign behaviour.
func NewCampaignWatchdog(prog *Progress, tel *telemetry.Telemetry, window uint64, id string) *Watchdog {
	if window == 0 {
		window = DefaultStallWindow
	}
	labels := []string{}
	if id != "" {
		labels = append(labels, "campaign", id)
	}
	return &Watchdog{
		prog:    prog,
		tel:     tel,
		window:  window,
		id:      id,
		cStalls: tel.Counter("tracenet_campaign_stalls_total", labels...),
	}
}

// Window returns the configured stall window in ticks.
func (w *Watchdog) Window() uint64 {
	if w == nil {
		return 0
	}
	return w.window
}

// ID returns the campaign identity this watchdog labels its evidence with
// ("" for the anonymous single-campaign arrangement).
func (w *Watchdog) ID() string {
	if w == nil {
		return ""
	}
	return w.id
}

// Check evaluates the stall condition at tick now and reports whether the
// campaign is currently considered stalled. Nil-safe.
func (w *Watchdog) Check(now uint64) bool {
	if w == nil || !w.prog.Started() || w.prog.Finished() {
		return false
	}
	last := w.prog.LastActivityTick()
	if now < last || now-last < w.window {
		w.stalled.Store(false) // activity resumed; re-arm the episode
		return false
	}
	if w.stalled.CompareAndSwap(false, true) {
		w.cStalls.Inc()
		subject := "campaign-stall"
		if w.id != "" {
			subject = "campaign-stall " + w.id
		}
		w.tel.Incident(fmt.Sprintf(
			"%s: no exchange completed since tick %d (now %d, window %d)",
			subject, last, now, w.window))
	}
	return true
}
