package collect

import (
	"strings"
	"testing"

	"tracenet/internal/telemetry"
)

// The watchdog files exactly one incident per stall episode: silence trips
// it once, resumed activity re-arms it, and renewed silence trips it again.
func TestWatchdogStallEpisodes(t *testing.T) {
	clock := &telemetry.ManualClock{}
	tel := telemetry.New(clock)
	tel.Recorder = telemetry.NewFlightRecorder(16)
	var dumps strings.Builder
	tel.SetIncidentWriter(&dumps)

	prog := NewProgress()
	prog.start("", 4, 2, nil, nil)
	wd := NewWatchdog(prog, tel, 100)
	stalls := tel.Counter("tracenet_campaign_stalls_total")

	if wd.Check(50) {
		t.Fatal("stalled before the window elapsed")
	}
	prog.Activity().MarkAt(60)
	if wd.Check(159) {
		t.Fatal("stalled with activity inside the window")
	}
	if !wd.Check(160) {
		t.Fatal("no stall after a full silent window")
	}
	if !wd.Check(200) {
		t.Fatal("ongoing stall not reported")
	}
	if got := stalls.Value(); got != 1 {
		t.Fatalf("stalls counter = %d after one episode, want 1", got)
	}
	if got := tel.Incidents(); got != 1 {
		t.Fatalf("incidents = %d after one episode, want 1", got)
	}
	if !strings.Contains(dumps.String(), "campaign-stall: no exchange completed since tick 60") {
		t.Errorf("stall incident dump missing or mislabelled:\n%s", dumps.String())
	}

	prog.Activity().MarkAt(210) // activity resumes: the episode re-arms
	if wd.Check(220) {
		t.Fatal("still stalled after activity resumed")
	}
	if !wd.Check(320) {
		t.Fatal("second silent window not detected")
	}
	if got := stalls.Value(); got != 2 {
		t.Fatalf("stalls counter = %d after two episodes, want 2", got)
	}

	prog.finish(&Report{})
	if wd.Check(9999) {
		t.Fatal("finished campaign reported as stalled")
	}
}

func TestWatchdogIgnoresUnstartedAndNil(t *testing.T) {
	var wd *Watchdog
	if wd.Check(1000) {
		t.Fatal("nil watchdog stalled")
	}
	if wd.Window() != 0 {
		t.Fatal("nil watchdog window nonzero")
	}
	prog := NewProgress() // never started
	wd = NewWatchdog(prog, nil, 0)
	if wd.Window() != DefaultStallWindow {
		t.Fatalf("window = %d, want default %d", wd.Window(), DefaultStallWindow)
	}
	if wd.Check(1 << 40) {
		t.Fatal("unstarted campaign reported as stalled")
	}
}

// A clock reading behind the last activity mark (possible when racing
// workers recorded a slightly newer tick) must read as fresh activity.
func TestWatchdogToleratesClockSkew(t *testing.T) {
	prog := NewProgress()
	prog.start("", 1, 1, nil, nil)
	wd := NewWatchdog(prog, nil, 10)
	prog.Activity().MarkAt(500)
	if wd.Check(499) {
		t.Fatal("now < last activity read as a stall")
	}
}
