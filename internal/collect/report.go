package collect

import (
	"fmt"
	"io"
	"strings"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/topomap"
)

// Stats is the campaign's aggregate accounting. Every field is
// schedule-independent on a deterministic substrate: wire probes and cache
// counters total over work that happens exactly once per target or per
// distinct hop context, however it was interleaved.
type Stats struct {
	Targets int
	Done    int
	Breaker int
	Resumed int
	Budget  int
	Skipped int
	Failed  int

	// CacheHits / CacheMisses / ProbesSaved come from the shared subnet
	// cache (zero when it is disabled): misses are distinct contexts grown,
	// hits are explorations served without probing, ProbesSaved is the wire
	// cost those hits avoided re-spending.
	CacheHits   uint64
	CacheMisses uint64
	ProbesSaved uint64
	// WireProbes is the campaign's total packets on the wire.
	WireProbes uint64
}

// Report is a completed campaign: per-target rows in input order, the merged
// subnet-level topology, and the aggregate stats. Its rendering is
// byte-stable: two campaigns over the same targets on the same substrate
// render identically regardless of worker count or scheduling.
type Report struct {
	// ID is the campaign identity from Config.ID ("" for anonymous runs).
	// It is carried, not rendered: WriteTo output stays identical whether or
	// not the campaign was identified.
	ID      string
	Targets []TargetResult
	// Map is the merged topology over every observation of the campaign
	// (including subnets restored from a resumed checkpoint).
	Map   *topomap.Map
	Stats Stats

	// subnets is the deduplicated, deterministically ordered set of distinct
	// collected subnets, for checkpointing.
	subnets []*core.Subnet
	// resumeDone carries the resumed checkpoint's done list forward.
	resumeDone []ipv4.Addr
}

// merge builds the merged topology and the distinct-subnet set from the
// per-target results, in input order — the same fold whatever order workers
// finished in.
func (r *Report) merge(frozen []*core.Subnet) {
	m := topomap.New()
	m.AddSubnets(frozen)
	seen := make(map[*core.Subnet]bool)
	var subs []*core.Subnet
	add := func(sub *core.Subnet) {
		if !seen[sub] {
			seen[sub] = true
			subs = append(subs, sub)
		}
	}
	for _, sub := range frozen {
		add(sub)
	}
	for i := range r.Targets {
		res := r.Targets[i].Result
		if res == nil {
			continue
		}
		m.AddSession(res)
		for _, sub := range res.Subnets {
			add(sub)
		}
	}
	sortSubnets(subs)
	r.Map = m
	r.subnets = subs
}

// Subnets returns the campaign's distinct collected subnets in deterministic
// order (prefix, then pivot).
func (r *Report) Subnets() []*core.Subnet { return r.subnets }

// WriteTo renders the report. Everything written is schedule-independent;
// see Report for the byte-stability contract.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder

	fmt.Fprintf(&b, "campaign: %d targets (done %d, resumed %d, budget %d, skipped %d, failed %d",
		r.Stats.Targets, r.Stats.Done, r.Stats.Resumed, r.Stats.Budget, r.Stats.Skipped, r.Stats.Failed)
	if r.Stats.Breaker > 0 {
		fmt.Fprintf(&b, ", breaker %d", r.Stats.Breaker)
	}
	b.WriteString(")\n")
	for i := range r.Targets {
		t := &r.Targets[i]
		fmt.Fprintf(&b, "  %-15v %-8s", t.Dst, t.Status)
		switch t.Status {
		case StatusDone, StatusBudget, StatusBreaker:
			fmt.Fprintf(&b, " reached=%v hops=%d subnets=%d trace-probes=%d",
				t.Reached, t.Hops, t.Subnets, t.TraceProbes)
		}
		if t.Note != "" {
			fmt.Fprintf(&b, " (%s)", t.Note)
		}
		b.WriteByte('\n')
	}

	b.WriteByte('\n')
	b.WriteString("merged ")
	b.WriteString(r.Map.String())

	if links := r.Map.AdjacentSubnets(); len(links) > 0 {
		fmt.Fprintf(&b, "subnet links (%d):\n", len(links))
		for _, l := range links {
			fmt.Fprintf(&b, "  %v <-> %v\n", l[0].Prefix, l[1].Prefix)
		}
	}
	if anon := r.Map.AnonymousRouters(); len(anon) > 0 {
		fmt.Fprintf(&b, "anonymous routers (%d):\n", len(anon))
		for _, a := range anon {
			fmt.Fprintf(&b, "  * between %v and %v x%d\n", a.Prev, a.Next, a.Observations)
		}
	}

	fmt.Fprintf(&b, "\nwire probes %d", r.Stats.WireProbes)
	if r.Stats.CacheMisses > 0 || r.Stats.CacheHits > 0 {
		fmt.Fprintf(&b, ", cache hits %d, misses %d, probes saved %d",
			r.Stats.CacheHits, r.Stats.CacheMisses, r.Stats.ProbesSaved)
	}
	b.WriteByte('\n')

	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
