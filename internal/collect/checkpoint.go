package collect

import (
	"encoding/json"
	"fmt"
	"io"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
)

// CheckpointVersion is the campaign checkpoint schema version.
const CheckpointVersion = 1

// Checkpoint is a campaign-granularity snapshot: the target list, the
// destinations whose traces completed, and every distinct subnet collected,
// in the serialized form shared with session checkpoints. A campaign resumed
// from its checkpoint skips the completed targets and never re-explores the
// checkpointed subnets' address space (they seed the cache's frozen member
// tier), so an interrupted run loses at most the in-flight targets' probes.
type Checkpoint struct {
	Version int `json:"version"`
	// CampaignID identifies which campaign wrote the checkpoint (see
	// Config.ID; omitted for anonymous campaigns, keeping the v1 bytes of
	// existing checkpoints unchanged).
	CampaignID string `json:"campaign_id,omitempty"`
	// Targets is the campaign's full destination list, in input order.
	Targets []string `json:"targets,omitempty"`
	// Done lists destinations whose traces ran to completion.
	Done []string `json:"done,omitempty"`
	// Subnets are the distinct collected subnets, deterministically ordered.
	Subnets []core.CheckpointSubnet `json:"subnets,omitempty"`
}

// Checkpoint snapshots the campaign for a later resume. Deterministic: the
// subnet list is sorted by prefix and pivot, the done list follows input
// order, so the serialized bytes are independent of worker scheduling.
func (r *Report) Checkpoint() *Checkpoint {
	cp := &Checkpoint{Version: CheckpointVersion, CampaignID: r.ID}
	for i := range r.Targets {
		cp.Targets = append(cp.Targets, r.Targets[i].Dst.String())
	}
	inDone := make(map[ipv4.Addr]bool)
	for _, d := range r.resumeDone {
		if !inDone[d] {
			inDone[d] = true
			cp.Done = append(cp.Done, d.String())
		}
	}
	for i := range r.Targets {
		t := &r.Targets[i]
		if t.Status == StatusDone && !inDone[t.Dst] {
			inDone[t.Dst] = true
			cp.Done = append(cp.Done, t.Dst.String())
		}
	}
	for _, sub := range r.subnets {
		cp.Subnets = append(cp.Subnets, core.SnapshotSubnet(sub))
	}
	return cp
}

// WriteCheckpoint serializes a campaign checkpoint as indented JSON.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cp)
}

// ReadCheckpoint decodes and validates a JSON campaign checkpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("collect: checkpoint: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("collect: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	return &cp, nil
}

// restore converts the checkpoint back to in-memory form: the subnets (for
// the cache's frozen tier) and the done destinations (to skip).
func (cp *Checkpoint) restore() ([]*core.Subnet, []ipv4.Addr, error) {
	if cp.Version != CheckpointVersion {
		return nil, nil, fmt.Errorf("collect: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	var subs []*core.Subnet
	for _, cs := range cp.Subnets {
		sub, err := cs.Restore()
		if err != nil {
			return nil, nil, err
		}
		subs = append(subs, sub)
	}
	var done []ipv4.Addr
	for _, d := range cp.Done {
		a, err := ipv4.ParseAddr(d)
		if err != nil {
			return nil, nil, fmt.Errorf("collect: checkpoint done list: %w", err)
		}
		done = append(done, a)
	}
	return subs, done, nil
}
