package collect_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"tracenet/internal/collect"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/telemetry"
	"tracenet/internal/topo"
)

// TestCampaignIDSeparatesMetrics runs two identified campaigns against one
// shared telemetry registry — the daemon's arrangement — and checks their
// series stay distinct: each campaign's probes land under its own
// ("campaign", id) label instead of adding into a collision.
func TestCampaignIDSeparatesMetrics(t *testing.T) {
	clk := &telemetry.ManualClock{}
	shared := telemetry.New(clk)

	run := func(id string) *collect.Report {
		t.Helper()
		tp, targets := topo.Random(campaignSpec)
		n := netsim.New(tp, netsim.Config{Seed: 7})
		cfg := collect.Config{
			ID:        id,
			Targets:   targets[:6],
			Probe:     probe.Options{Cache: true},
			Telemetry: shared,
			Progress:  collect.NewProgress(),
			Dial: func(opts probe.Options) (*probe.Prober, error) {
				port, err := n.PortFor("vantage")
				if err != nil {
					return nil, err
				}
				return probe.New(port, port.LocalAddr(), opts), nil
			},
		}
		rep, err := collect.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := cfg.Progress.ID(); got != id {
			t.Fatalf("Progress.ID() = %q, want %q", got, id)
		}
		if snap := cfg.Progress.Snapshot(); snap.ID != id {
			t.Fatalf("Snapshot.ID = %q, want %q", snap.ID, id)
		}
		return rep
	}

	repA := run("c0001")
	repB := run("c0002")

	var metrics bytes.Buffer
	if err := shared.Registry.WritePrometheus(&metrics); err != nil {
		t.Fatal(err)
	}
	exposition := metrics.String()
	for _, id := range []string{"c0001", "c0002"} {
		if !strings.Contains(exposition, `campaign="`+id+`"`) {
			t.Errorf("exposition lacks series for campaign %s:\n%s", id, exposition)
		}
	}
	// Identical same-seed campaigns must report identical per-campaign probe
	// totals — and the labeled counters must agree with the reports.
	for id, rep := range map[string]*collect.Report{"c0001": repA, "c0002": repB} {
		got := shared.Counter("tracenet_campaign_probes_total", "campaign", id).Value()
		if got != rep.Stats.WireProbes {
			t.Errorf("campaign %s probes_total = %d, report says %d", id, got, rep.Stats.WireProbes)
		}
	}

	// The identity follows the artifacts: report and checkpoint.
	if repA.ID != "c0001" || repB.ID != "c0002" {
		t.Fatalf("report IDs = %q, %q", repA.ID, repB.ID)
	}
	cp := repA.Checkpoint()
	if cp.CampaignID != "c0001" {
		t.Fatalf("checkpoint campaign_id = %q", cp.CampaignID)
	}
	var buf bytes.Buffer
	if err := collect.WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"campaign_id": "c0001"`) {
		t.Fatalf("serialized checkpoint lacks campaign_id:\n%s", buf.String())
	}
}

// TestCampaignWatchdogIDLabels: a per-campaign watchdog must label its stall
// counter and name the campaign in the incident it files.
func TestCampaignWatchdogIDLabels(t *testing.T) {
	clk := &telemetry.ManualClock{}
	tel := telemetry.New(clk)
	rec := telemetry.NewFlightRecorder(16)
	tel.Recorder = rec

	prog := collect.NewProgress()
	wd := collect.NewCampaignWatchdog(prog, tel, 100, "c0007")

	// An unstarted campaign never stalls.
	if wd.Check(1000) {
		t.Fatal("unstarted campaign reported stalled")
	}
	release := holdCampaignOpen(t, prog)
	defer release()
	if !wd.Check(5000) {
		t.Fatal("silent started campaign not stalled past the window")
	}
	if got := tel.Counter("tracenet_campaign_stalls_total", "campaign", "c0007").Value(); got != 1 {
		t.Fatalf("labeled stall counter = %d, want 1", got)
	}
	var dump bytes.Buffer
	if err := tel.DumpRecorder(&dump, "test"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump.String(), "campaign-stall c0007") {
		t.Fatalf("incident does not name the campaign:\n%s", dump.String())
	}
}

// holdCampaignOpen starts a real two-target campaign bound to prog and parks
// its first completed target inside OnTargetDone, so the Progress is started
// but guaranteed unfinished while the caller inspects it. The returned
// release lets the campaign run to completion.
func holdCampaignOpen(t *testing.T, prog *collect.Progress) (release func()) {
	t.Helper()
	tp, targets := topo.Random(campaignSpec)
	n := netsim.New(tp, netsim.Config{Seed: 7})
	started := make(chan struct{})
	gate := make(chan struct{})
	var once bool
	done := make(chan struct{})
	cfg := collect.Config{
		ID:       "c0007",
		Targets:  targets[:2],
		Progress: prog,
		Dial: func(opts probe.Options) (*probe.Prober, error) {
			port, err := n.PortFor("vantage")
			if err != nil {
				return nil, err
			}
			return probe.New(port, port.LocalAddr(), opts), nil
		},
		OnTargetDone: func(collect.TargetResult) {
			if !once {
				once = true // Parallel defaults to 1: callbacks are sequential
				close(started)
				<-gate
			}
		},
	}
	go func() {
		defer close(done)
		if _, err := collect.Run(context.Background(), cfg); err != nil {
			t.Error(err)
		}
	}()
	<-started
	return func() {
		close(gate)
		<-done
	}
}
