package collect_test

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"

	"tracenet/internal/collect"
)

func TestProgressNilSafe(t *testing.T) {
	var p *collect.Progress
	if p.Started() || p.Finished() || p.BudgetExhausted() {
		t.Fatal("nil progress reports activity")
	}
	if p.Activity() != nil {
		t.Fatal("nil progress returned a non-nil activity")
	}
	if s := p.Snapshot(); s.Started || s.Targets != 0 {
		t.Fatalf("nil progress snapshot not zero: %+v", s)
	}
}

func TestProgressTracksCampaign(t *testing.T) {
	prog := collect.NewProgress()
	if prog.Started() {
		t.Fatal("fresh progress claims started")
	}
	rep, _, _ := runCampaign(t, 4, func(cfg *collect.Config) {
		cfg.Progress = prog
	})

	if !prog.Started() || !prog.Finished() {
		t.Fatalf("progress lifecycle incomplete: started=%v finished=%v",
			prog.Started(), prog.Finished())
	}
	s := prog.Snapshot()
	if s.Targets != int64(rep.Stats.Targets) || s.Done != int64(rep.Stats.Done) {
		t.Errorf("snapshot counts %d/%d targets done, report says %d/%d",
			s.Done, s.Targets, rep.Stats.Done, rep.Stats.Targets)
	}
	if s.WireProbes != rep.Stats.WireProbes {
		t.Errorf("snapshot wire probes %d, report %d", s.WireProbes, rep.Stats.WireProbes)
	}
	if s.CacheHits != rep.Stats.CacheHits || s.CacheMisses != rep.Stats.CacheMisses {
		t.Errorf("snapshot cache %d/%d, report %d/%d",
			s.CacheHits, s.CacheMisses, rep.Stats.CacheHits, rep.Stats.CacheMisses)
	}
	if s.DistinctSubnets != int64(len(rep.Subnets())) {
		t.Errorf("snapshot distinct subnets %d, report %d", s.DistinctSubnets, len(rep.Subnets()))
	}
	if s.InFlight != 0 || len(s.Workers) != 0 {
		t.Errorf("finished snapshot still carries live state: inflight %d, %d workers",
			s.InFlight, len(s.Workers))
	}
	if s.CacheHitRate <= 0 || s.CacheHitRate > 1 {
		t.Errorf("cache hit rate %v out of range", s.CacheHitRate)
	}
}

// The final snapshot is part of the determinism contract: rendered as JSON it
// must be byte-identical at parallel 1 and parallel 8 — this is what makes
// the /campaigns endpoint golden-testable.
func TestProgressFinalSnapshotDeterministic(t *testing.T) {
	render := func(parallel int) string {
		prog := collect.NewProgress()
		runCampaign(t, parallel, func(cfg *collect.Config) { cfg.Progress = prog })
		out, err := json.MarshalIndent(prog.Snapshot(), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	p1, p8 := render(1), render(8)
	if p1 != p8 {
		t.Errorf("final progress snapshot differs between parallel=1 and parallel=8:\n--- p1\n%s\n--- p8\n%s", p1, p8)
	}
}

// TestProgressReadsDuringCampaign hammers every read path of a shared
// Progress while an 8-worker campaign is writing it — the race-detector gate
// for the lock-free publishing scheme.
func TestProgressReadsDuringCampaign(t *testing.T) {
	cfg := newCampaignNet(t)
	cfg.Parallel = 8
	prog := collect.NewProgress()
	cfg.Progress = prog

	done := make(chan struct{})
	var snaps atomic.Uint64
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := prog.Snapshot()
				if s.Done+s.Breaker+s.Resumed+s.Budget+s.Skipped+s.Failed > s.Targets && s.Started {
					t.Error("snapshot counted more finished targets than targets")
					return
				}
				_ = prog.WireProbes()
				_ = prog.LastActivityTick()
				_ = prog.BudgetExhausted()
				_ = prog.BreakerTrips()
				snaps.Add(1)
			}
		}()
	}

	if _, err := collect.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	close(done)
	readers.Wait()
	if snaps.Load() == 0 {
		t.Fatal("reader goroutines never snapshotted")
	}
	if !prog.Finished() {
		t.Fatal("progress not finished after Run returned")
	}
}

func TestOnTargetDoneFiresPerTarget(t *testing.T) {
	var mu sync.Mutex
	var calls int
	rep, _, _ := runCampaign(t, 4, func(cfg *collect.Config) {
		cfg.OnTargetDone = func(collect.TargetResult) {
			mu.Lock()
			calls++
			mu.Unlock()
		}
	})
	if calls != rep.Stats.Targets {
		t.Fatalf("OnTargetDone fired %d times for %d targets", calls, rep.Stats.Targets)
	}
}
