package collect_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"tracenet/internal/collect"
	"tracenet/internal/core"
	"tracenet/internal/groundtruth"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/telemetry"
	"tracenet/internal/topo"
	"tracenet/internal/topomap"
)

// campaignSpec is a random topology whose 24 leaf destinations share an
// 8-router backbone — the regime where the shared subnet cache pays off.
var campaignSpec = topo.RandomSpec{Seed: 42, Backbone: 8, Leaves: 24, LANFraction: 0.25, ExtraLinks: 2}

// newCampaignNet builds a fresh clean network (and a config targeting its
// leaves) for one run.
func newCampaignNet(t *testing.T) collect.Config {
	t.Helper()
	tp, targets := topo.Random(campaignSpec)
	if len(targets) < 20 {
		t.Fatalf("spec yielded %d targets, need >= 20", len(targets))
	}
	n := netsim.New(tp, netsim.Config{Seed: 7})
	tel := telemetry.New(n)
	n.SetTelemetry(tel)
	return collect.Config{
		Targets:   targets,
		Probe:     probe.Options{Cache: true},
		Telemetry: tel,
		Dial: func(opts probe.Options) (*probe.Prober, error) {
			port, err := n.PortFor("vantage")
			if err != nil {
				return nil, err
			}
			return probe.New(port, port.LocalAddr(), opts), nil
		},
	}
}

// runCampaign executes one campaign and returns the report plus its rendered
// output and metrics exposition.
func runCampaign(t *testing.T, parallel int, mutate func(*collect.Config)) (*collect.Report, string, string) {
	t.Helper()
	cfg := newCampaignNet(t)
	cfg.Parallel = parallel
	if mutate != nil {
		mutate(&cfg)
	}
	rep, err := collect.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("campaign parallel=%d: %v", parallel, err)
	}
	var out bytes.Buffer
	if _, err := rep.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	if err := cfg.Telemetry.Registry.WritePrometheus(&metrics); err != nil {
		t.Fatal(err)
	}
	return rep, out.String(), metrics.String()
}

// TestCampaignDeterminism is the tentpole guarantee: the same targets on the
// same substrate produce a byte-identical report AND byte-identical metrics
// exposition at parallel 1 and parallel 8.
func TestCampaignDeterminism(t *testing.T) {
	rep1, out1, met1 := runCampaign(t, 1, nil)
	rep8, out8, met8 := runCampaign(t, 8, nil)

	if rep1.Stats.Done != rep1.Stats.Targets {
		t.Fatalf("sequential campaign incomplete: %+v", rep1.Stats)
	}
	if out1 != out8 {
		t.Errorf("report rendering differs between parallel=1 and parallel=8:\n--- p1\n%s--- p8\n%s", out1, out8)
	}
	if met1 != met8 {
		t.Errorf("metrics exposition differs between parallel=1 and parallel=8:\n--- p1\n%s--- p8\n%s", met1, met8)
	}
	if rep1.Stats != rep8.Stats {
		t.Errorf("stats differ: p1 %+v, p8 %+v", rep1.Stats, rep8.Stats)
	}
	// Checkpoints are part of the byte-stability contract too.
	var cp1, cp8 bytes.Buffer
	if err := collect.WriteCheckpoint(&cp1, rep1.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	if err := collect.WriteCheckpoint(&cp8, rep8.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	if cp1.String() != cp8.String() {
		t.Errorf("checkpoints differ between parallel=1 and parallel=8")
	}
}

// TestCampaignProbesSaved is the efficiency guarantee: with >= 20
// destinations sharing backbone paths, the cached campaign puts measurably
// fewer packets on the wire than the same destinations traced independently,
// and the probes-saved accounting exposes the difference.
func TestCampaignProbesSaved(t *testing.T) {
	cached, _, _ := runCampaign(t, 4, nil)
	uncached, _, _ := runCampaign(t, 4, func(cfg *collect.Config) {
		cfg.DisableCache = true
	})

	// The uncached campaign IS 24 independent Session.Trace calls (each
	// target gets a fresh prober and session, no sharing).
	if cached.Stats.CacheHits == 0 {
		t.Fatal("cache recorded no hits on a backbone-sharing topology")
	}
	if cached.Stats.ProbesSaved == 0 {
		t.Fatal("probes-saved accounting is zero despite cache hits")
	}
	if cached.Stats.WireProbes >= uncached.Stats.WireProbes {
		t.Fatalf("cached campaign spent %d wire probes, independent traces %d — cache saved nothing",
			cached.Stats.WireProbes, uncached.Stats.WireProbes)
	}
	t.Logf("wire probes: cached %d vs independent %d (hits %d, saved %d)",
		cached.Stats.WireProbes, uncached.Stats.WireProbes,
		cached.Stats.CacheHits, cached.Stats.ProbesSaved)

	// Sharing must be lossless: both campaigns merge to the same topology.
	if cached.Map.String() != uncached.Map.String() {
		t.Errorf("cached and uncached campaigns merged different topologies:\n--- cached\n%s--- uncached\n%s",
			cached.Map.String(), uncached.Map.String())
	}
}

// TestCampaignBudgetBackpressure exhausts a small campaign budget: the cap is
// never overspent, in-flight targets report budget status, and the remainder
// are skipped rather than traced.
func TestCampaignBudgetBackpressure(t *testing.T) {
	const budget = 40
	rep, _, _ := runCampaign(t, 4, func(cfg *collect.Config) {
		cfg.Budget = budget
	})
	if rep.Stats.WireProbes > budget {
		t.Fatalf("campaign overspent: %d wire probes against budget %d", rep.Stats.WireProbes, budget)
	}
	if rep.Stats.Budget == 0 {
		t.Error("no target reports budget exhaustion")
	}
	if rep.Stats.Skipped == 0 {
		t.Error("backpressure never skipped a target")
	}
	if rep.Stats.Done+rep.Stats.Budget+rep.Stats.Skipped+rep.Stats.Failed != rep.Stats.Targets {
		t.Errorf("status counts don't add up: %+v", rep.Stats)
	}
}

// TestCampaignCancellation: a cancelled context stops dispatch but still
// yields a well-formed report with every target accounted for.
func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := newCampaignNet(t)
	cfg.Parallel = 4
	rep, err := collect.Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Skipped != rep.Stats.Targets {
		t.Fatalf("cancelled campaign traced targets anyway: %+v", rep.Stats)
	}
	var out bytes.Buffer
	if _, err := rep.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "campaign cancelled") {
		t.Errorf("report does not mention cancellation:\n%s", out.String())
	}
}

// TestCampaignCheckpointResume: a resumed campaign skips completed targets
// entirely, preserves the checkpointed subnets in its merged topology, and a
// re-checkpoint carries everything forward.
func TestCampaignCheckpointResume(t *testing.T) {
	full, _, _ := runCampaign(t, 4, nil)
	var buf bytes.Buffer
	if err := collect.WriteCheckpoint(&buf, full.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	cp, err := collect.ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	resumed, _, _ := runCampaign(t, 4, func(cfg *collect.Config) {
		cfg.Resume = cp
	})
	if resumed.Stats.Resumed != resumed.Stats.Targets {
		t.Fatalf("resume re-traced targets: %+v", resumed.Stats)
	}
	if resumed.Stats.WireProbes != 0 {
		t.Fatalf("fully-resumed campaign spent %d probes", resumed.Stats.WireProbes)
	}
	assertSameSubnets(t, resumed.Map, full.Map)

	var re bytes.Buffer
	if err := collect.WriteCheckpoint(&re, resumed.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	recp, err := collect.ReadCheckpoint(bytes.NewReader(re.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recp.Done) != len(cp.Done) || len(recp.Subnets) != len(cp.Subnets) {
		t.Errorf("re-checkpoint lost state: done %d->%d, subnets %d->%d",
			len(cp.Done), len(recp.Done), len(cp.Subnets), len(recp.Subnets))
	}
}

// TestCampaignResumeFrozenTier: resuming with a partial done list makes the
// remaining targets draw on the frozen member tier — checkpointed subnets are
// never re-explored, so the cache reports saved probes even for fresh
// targets.
func TestCampaignResumeFrozenTier(t *testing.T) {
	full, _, _ := runCampaign(t, 1, nil)
	cp := full.Checkpoint()
	// Pretend the campaign died after the first half of the targets.
	half := len(cp.Done) / 2
	cp.Done = cp.Done[:half]

	resumed, _, _ := runCampaign(t, 4, func(cfg *collect.Config) {
		cfg.Resume = cp
	})
	if resumed.Stats.Resumed != half {
		t.Fatalf("resumed %d targets, want %d", resumed.Stats.Resumed, half)
	}
	if resumed.Stats.Done != resumed.Stats.Targets-half {
		t.Fatalf("done %d targets, want %d: %+v", resumed.Stats.Done, resumed.Stats.Targets-half, resumed.Stats)
	}
	if resumed.Stats.ProbesSaved == 0 {
		t.Error("frozen tier saved no probes for the remaining targets")
	}
	assertSameSubnets(t, resumed.Map, full.Map)
}

// assertSameSubnets compares two merged topologies by membership: same
// subnets, same addresses. Observation counts are NOT compared — a resumed
// campaign restores subnets from the checkpoint instead of replaying the
// per-target observations that produced them.
func assertSameSubnets(t *testing.T, got, want *topomap.Map) {
	t.Helper()
	gs, ws := got.Subnets(), want.Subnets()
	if len(gs) != len(ws) {
		t.Fatalf("merged %d subnets, want %d:\n--- got\n%s--- want\n%s",
			len(gs), len(ws), got.String(), want.String())
	}
	for i := range gs {
		a, b := gs[i], ws[i]
		if a.Prefix != b.Prefix || fmt.Sprint(a.Addrs) != fmt.Sprint(b.Addrs) {
			t.Errorf("subnet %d differs: got %v %v, want %v %v",
				i, a.Prefix, a.Addrs, b.Prefix, b.Addrs)
		}
	}
}

// TestCampaignGreedyTier: the opt-in member tier is at least as effective as
// the context memo and still merges the same topology (its determinism
// caveat is about probe attribution, not collected values) when sequential.
func TestCampaignGreedyTier(t *testing.T) {
	plain, _, _ := runCampaign(t, 1, nil)
	greedy, _, _ := runCampaign(t, 1, func(cfg *collect.Config) {
		cfg.Greedy = true
	})
	if greedy.Stats.WireProbes > plain.Stats.WireProbes {
		t.Errorf("greedy tier spent more probes (%d) than context memo alone (%d)",
			greedy.Stats.WireProbes, plain.Stats.WireProbes)
	}
	if greedy.Map.String() != plain.Map.String() {
		t.Errorf("greedy campaign merged a different topology:\n--- greedy\n%s--- plain\n%s",
			greedy.Map.String(), plain.Map.String())
	}
}

// TestCampaignMergedEqualsSequentialSession: the campaign's merged topology
// must equal what one long-lived session tracing every target accumulates —
// parallel collection is an optimization, not a different measurement.
func TestCampaignMergedEqualsSequentialSession(t *testing.T) {
	rep, _, _ := runCampaign(t, 8, nil)

	tp, targets := topo.Random(campaignSpec)
	n := netsim.New(tp, netsim.Config{Seed: 7})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	sess := core.NewSession(pr, core.Config{})
	m := topomap.New()
	for _, dst := range targets {
		res, err := sess.Trace(dst)
		if err != nil {
			t.Fatalf("trace %v: %v", dst, err)
		}
		m.AddSession(res)
	}

	// The single session reuses subnets across targets via SkipKnown, the
	// campaign via the shared cache: both must observe the same subnets.
	// (Observation counts differ — SkipKnown dedups within the session — so
	// compare membership, not the full rendering.)
	campaignSubs := rep.Map.Subnets()
	sessionSubs := m.Subnets()
	if len(campaignSubs) != len(sessionSubs) {
		t.Fatalf("campaign merged %d subnets, sequential session %d:\n--- campaign\n%s--- session\n%s",
			len(campaignSubs), len(sessionSubs), rep.Map.String(), m.String())
	}
	for i := range campaignSubs {
		a, b := campaignSubs[i], sessionSubs[i]
		if a.Prefix != b.Prefix || len(a.Addrs) != len(b.Addrs) {
			t.Errorf("subnet %d differs: campaign %v %v, session %v %v",
				i, a.Prefix, a.Addrs, b.Prefix, b.Addrs)
		}
	}
}

// TestCampaignBreakerTruncatedNotDone is the regression test for the
// campaign-level checkpoint/resume hole: a target whose trace the circuit
// breaker cut short ends with err == nil, so it used to be marked done,
// listed in the checkpoint's Done set, and silently skipped on resume. It
// must instead carry the breaker status, stay out of Done, and be retried by
// a resumed campaign.
func TestCampaignBreakerTruncatedNotDone(t *testing.T) {
	tp := topo.Figure3()
	n := netsim.New(tp, netsim.Config{})
	reachable := ipv4.MustParseAddr("10.0.5.2")
	unroutable := ipv4.MustParseAddr("172.16.0.1")
	cfg := collect.Config{
		Targets: []ipv4.Addr{reachable, unroutable},
		Probe: probe.Options{
			Cache:   true,
			NoRetry: true,
			Breaker: &probe.BreakerConfig{Threshold: 2, Cooldown: 64, KeyBits: 24},
		},
		Dial: func(opts probe.Options) (*probe.Prober, error) {
			port, err := n.PortFor("vantage")
			if err != nil {
				return nil, err
			}
			return probe.New(port, port.LocalAddr(), opts), nil
		},
	}

	rep, err := collect.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Targets[0].Status != collect.StatusDone {
		t.Fatalf("reachable target status = %s", rep.Targets[0].Status)
	}
	if rep.Targets[1].Status != collect.StatusBreaker {
		t.Fatalf("breaker-truncated target status = %s, want %s", rep.Targets[1].Status, collect.StatusBreaker)
	}
	if rep.Stats.Breaker != 1 || rep.Stats.Done != 1 {
		t.Fatalf("stats = %+v", rep.Stats)
	}
	var out bytes.Buffer
	if _, err := rep.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "breaker 1") {
		t.Errorf("report does not surface the breaker count:\n%s", out.String())
	}

	cp := rep.Checkpoint()
	if len(cp.Done) != 1 || cp.Done[0] != reachable.String() {
		t.Fatalf("checkpoint done = %v; breaker-truncated target must not be listed", cp.Done)
	}

	// Resume: the done target is skipped, the truncated one is retraced.
	cfg.Resume = cp
	rep2, err := collect.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Targets[0].Status != collect.StatusResumed {
		t.Errorf("resumed campaign retraced the done target: %s", rep2.Targets[0].Status)
	}
	if rep2.Targets[1].Status == collect.StatusResumed {
		t.Error("resumed campaign silently skipped the breaker-truncated target")
	}
}

// TestCampaignResumeEvalEquivalence closes the loop between the checkpoint
// machinery and the ground-truth scorer: a campaign resumed from a half-done
// checkpoint (remaining targets served partly by the cache's frozen tier)
// must score IDENTICALLY against the true topology to the fresh end-to-end
// run — same verdicts, same precision/recall, byte-identical evaluation
// text. And every subnet carried through the checkpoint must keep its
// confidence annotation inside the documented (0,1] range.
func TestCampaignResumeEvalEquivalence(t *testing.T) {
	full, _, _ := runCampaign(t, 1, nil)
	cp := full.Checkpoint()
	half := len(cp.Done) / 2
	cp.Done = cp.Done[:half]

	resumed, _, _ := runCampaign(t, 4, func(cfg *collect.Config) {
		cfg.Resume = cp
	})

	for _, sub := range resumed.Subnets() {
		if sub.Confidence <= 0 || sub.Confidence > 1 {
			t.Errorf("checkpoint-carried subnet %v has confidence %v outside (0,1]",
				sub.Prefix, sub.Confidence)
		}
	}

	tp, _ := topo.Random(campaignSpec)
	truth := groundtruth.FromTopology(tp, groundtruth.Options{})
	fullScore := truth.Score(groundtruth.FromTopomap(full.Map))
	resumedScore := truth.Score(groundtruth.FromTopomap(resumed.Map))

	var fullText, resumedText bytes.Buffer
	if _, err := fullScore.WriteText(&fullText); err != nil {
		t.Fatal(err)
	}
	if _, err := resumedScore.WriteText(&resumedText); err != nil {
		t.Fatal(err)
	}
	if fullText.String() != resumedText.String() {
		t.Errorf("resumed campaign scores differently from fresh run:\n--- fresh\n%s--- resumed\n%s",
			fullText.String(), resumedText.String())
	}
	if fullScore.SubnetPrecision != 1 {
		t.Errorf("clean campaign subnet precision %v, want 1 (collector invented subnets)",
			fullScore.SubnetPrecision)
	}
}
