// Package collect is tracenet's parallel multi-destination collection
// engine: a campaign traces many destinations concurrently from one vantage
// point, shares subnet explorations between workers through a single-flight
// cache, and merges everything into one deterministic subnet-level topology.
//
// The paper collects its datasets by running tracenet against thousands of
// destinations (§4); doing that serially re-explores every backbone subnet
// once per destination that crosses it. The campaign engine removes both
// costs: a worker pool overlaps traces in wall-clock time, and the shared
// cache (internal/collect.Cache) makes each distinct hop context's subnet
// exploration happen exactly once across the whole campaign — the
// Doubletree stop-set idea applied to subnet exploration.
//
// Determinism contract: on a clean deterministic substrate (netsim without
// loss, faults, rate limits, or per-packet ECMP; no retries with jitter; no
// breaker; the greedy cache tier off), a campaign's merged topology, report
// rendering, and metrics exposition are byte-identical at any Parallel
// value. Only scheduling-dependent artifacts — span timestamps in the trace
// output, per-target position/explore probe attribution — vary; everything
// the campaign renders is derived from schedule-independent quantities.
package collect

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"

	"tracenet/internal/core"
	"tracenet/internal/invariant"
	"tracenet/internal/ipv4"
	"tracenet/internal/probe"
	"tracenet/internal/telemetry"
)

// Config tunes one campaign.
type Config struct {
	// ID is an optional stable campaign identity. When set it labels every
	// tracenet_campaign_* metric family with ("campaign", ID), appears in the
	// Progress snapshot and the checkpoint file, and prefixes stall incidents
	// — so several campaigns sharing one process (the daemon case) stay
	// distinguishable in /metrics, /campaigns, and the flight recorder.
	// Empty keeps the unlabeled single-campaign exposition byte-for-byte.
	ID string
	// Targets are the destinations to trace, in input order. The report
	// preserves this order regardless of which worker traced what.
	Targets []ipv4.Addr
	// Parallel is the worker count; <= 1 means sequential.
	Parallel int
	// Budget caps the campaign's total wire packets across all workers
	// (0 = unlimited). When it is exhausted mid-trace the trace ends with a
	// budget status, no further targets are started, and the remainder are
	// marked skipped — the probe layer's atomic reservation guarantees the
	// cap is never overspent.
	Budget uint64
	// BudgetParent, when set, chains the campaign budget under it: every
	// wire packet is charged to both, and the campaign stops when either
	// runs out. The daemon points this at the submitting tenant's aggregate
	// budget so no set of campaigns can overspend the tenant's allowance.
	BudgetParent *probe.SharedBudget
	// Pacer, when set, rate-limits every worker's wire sends (see
	// probe.Options.Pacer). The daemon passes the tenant's shared token
	// bucket. A pacer set on Probe directly wins over this field.
	Pacer probe.Pacer
	// MaxBreakerTrips stops dispatching new targets once the campaign has
	// observed this many circuit-breaker opens across all workers (0 =
	// disabled). Only meaningful when Probe.Breaker is set.
	MaxBreakerTrips uint64
	// DisableCache runs the campaign without the shared subnet cache —
	// every target re-explores its whole path (the ablation baseline the
	// probes-saved accounting is measured against).
	DisableCache bool
	// Greedy enables the cache's live member-address tier: pivots that are
	// members of any subnet grown so far are served without a context match.
	// Saves more probes, but which lookups hit depends on worker timing, so
	// output is no longer parallelism-independent. Off by default.
	Greedy bool

	// Session configures each per-target session. Its Shared field is
	// overwritten by the campaign.
	Session core.Config
	// Probe configures each per-target prober. Its SharedBudget field is
	// overwritten by the campaign; leave retries/breaker unset for
	// deterministic campaigns.
	Probe probe.Options
	// Dial builds the prober a worker uses for one target, from the options
	// the campaign finished assembling — typically netsim's PortFor plus
	// probe.New. Called once per target, possibly from several goroutines.
	Dial func(opts probe.Options) (*probe.Prober, error)

	// Telemetry is the campaign's observability layer (may be nil). Workers
	// share it: registry counters are atomic; note that B/E span nesting in
	// the Chrome trace interleaves when Parallel > 1 (the campaign's own
	// events use duration-complete records, which are interleaving-safe).
	Telemetry *telemetry.Telemetry

	// Progress, when set, receives a live lock-free view of the campaign:
	// per-status target counts, in-flight and per-worker state, probes spent
	// vs the shared budget, cache effectiveness. The campaign also wires
	// Progress.Activity into every worker's prober (unless the caller set
	// Probe.Activity itself) so completed exchanges feed stall detection.
	Progress *Progress

	// OnTargetDone, when set, is invoked once per target row as it completes
	// (including resumed rows, from the coordinator). Calls may arrive
	// concurrently from several workers; the callback must synchronize
	// itself. Completion ORDER is schedule-dependent — deterministic
	// consumers must render only their own call count, not the row content.
	OnTargetDone func(TargetResult)

	// Resume seeds the campaign from a checkpoint: targets listed done are
	// skipped, and the checkpoint's subnets pre-populate the cache's frozen
	// member tier so their address space is never re-explored.
	Resume *Checkpoint
}

// TargetStatus classifies one target's outcome.
type TargetStatus string

const (
	// StatusDone: the trace ran to completion (reached or not).
	StatusDone TargetStatus = "done"
	// StatusBreaker: the trace ended without reaching the destination while
	// the circuit breaker was skipping probes — the terminating silence was
	// locally manufactured, so the partial result is kept but the target is
	// NOT recorded done; a resume (fresh breaker) retries it.
	StatusBreaker TargetStatus = "breaker"
	// StatusResumed: the checkpoint already contained this target.
	StatusResumed TargetStatus = "resumed"
	// StatusBudget: the campaign budget ran out mid-trace; partial result.
	StatusBudget TargetStatus = "budget"
	// StatusSkipped: never started (budget/breaker backpressure or cancel).
	StatusSkipped TargetStatus = "skipped"
	// StatusFailed: the trace aborted on a non-recoverable error.
	StatusFailed TargetStatus = "failed"
)

// TargetResult is one target's row in the campaign report. Only
// schedule-independent fields are rendered; the full Result carries
// schedule-dependent detail (probe phase splits, shared-hop marks) for
// programmatic consumers that know the caveats.
type TargetResult struct {
	Dst    ipv4.Addr
	Status TargetStatus
	// Note carries the skip reason or abort error text.
	Note    string
	Reached bool
	Hops    int
	// Subnets is the number of distinct subnets observed on this trace.
	Subnets int
	// TraceProbes is the trace-collection phase's packet count — a pure
	// function of the target on a deterministic substrate.
	TraceProbes uint64
	// Result is the full per-target session result (nil when not traced).
	Result *core.Result
}

// Run executes a campaign: dispatch every target to the worker pool, collect
// per-target results, and assemble the deterministic merged report. Workers
// stop picking up new targets when ctx is cancelled, the budget is exhausted,
// or the breaker-trip limit is reached; targets already being traced finish
// (a cancelled campaign still returns a well-formed partial report).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Dial == nil {
		return nil, errors.New("collect: Config.Dial is required")
	}
	if len(cfg.Targets) == 0 {
		return nil, errors.New("collect: no targets")
	}
	parallel := cfg.Parallel
	if parallel < 1 {
		parallel = 1
	}
	if parallel > len(cfg.Targets) {
		parallel = len(cfg.Targets)
	}

	c := &campaign{
		cfg:    cfg,
		tel:    cfg.Telemetry,
		budget: probe.NewChildBudget(cfg.Budget, cfg.BudgetParent),
		prog:   cfg.Progress,
	}
	if !cfg.DisableCache {
		c.cache = NewCache(cfg.Greedy)
	}
	resumedDone := make(map[ipv4.Addr]bool)
	if cfg.Resume != nil {
		frozen, done, err := cfg.Resume.restore()
		if err != nil {
			return nil, err
		}
		if c.cache != nil {
			c.cache.Freeze(frozen)
		}
		c.frozen = frozen
		for _, d := range done {
			resumedDone[d] = true
		}
		c.resumeDone = done
	}
	c.bindTelemetry()
	c.prog.start(cfg.ID, len(cfg.Targets), parallel, c.budget, c.cache)

	start := c.tel.Ticks()
	results := make([]TargetResult, len(cfg.Targets))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for idx := range jobs {
				c.collectOne(ctx, w, cfg.Targets[idx], &results[idx])
				if cfg.OnTargetDone != nil {
					cfg.OnTargetDone(results[idx])
				}
			}
		}(w)
	}
	for idx := range cfg.Targets {
		if resumedDone[cfg.Targets[idx]] {
			results[idx] = TargetResult{
				Dst:    cfg.Targets[idx],
				Status: StatusResumed,
				Note:   "completed in checkpoint",
			}
			c.prog.targetDone(results[idx])
			if cfg.OnTargetDone != nil {
				cfg.OnTargetDone(results[idx])
			}
			continue
		}
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	end := c.tel.Ticks()
	c.tel.Complete("campaign", start, end,
		"targets", strconv.Itoa(len(cfg.Targets)),
		"parallel", strconv.Itoa(parallel))

	rep := c.buildReport(results)
	invariant.Assertf(cfg.Budget == 0 || rep.Stats.WireProbes <= cfg.Budget,
		"collect: campaign overspent budget: %d of %d wire probes",
		rep.Stats.WireProbes, cfg.Budget)
	c.exportStats(rep.Stats)
	c.prog.finish(rep)
	return rep, nil
}

// campaign is the running state shared by the coordinator and its workers.
type campaign struct {
	cfg    Config
	tel    *telemetry.Telemetry
	budget *probe.SharedBudget
	cache  *Cache    // nil when the shared cache is disabled
	prog   *Progress // nil when no one is watching; all methods nil-safe

	// frozen and resumeDone carry the restored checkpoint state forward into
	// the next checkpoint.
	frozen     []*core.Subnet
	resumeDone []ipv4.Addr

	wireProbes   atomic.Uint64
	breakerTrips atomic.Uint64

	cTargets  map[TargetStatus]*telemetry.Counter
	cHits     *telemetry.Counter
	cMisses   *telemetry.Counter
	cSaved    *telemetry.Counter
	cProbes   *telemetry.Counter
	gInflight *telemetry.Gauge
}

// metricLabels appends the ("campaign", ID) label pair when the campaign has
// an identity, so concurrent campaigns sharing one registry get distinct
// series instead of adding into each other's.
func (c *campaign) metricLabels(kv ...string) []string {
	if c.cfg.ID != "" {
		kv = append(kv, "campaign", c.cfg.ID)
	}
	return kv
}

// bindTelemetry registers the campaign metric families up front so a
// campaign's exposition always lists the same series, whatever happens.
func (c *campaign) bindTelemetry() {
	c.cTargets = make(map[TargetStatus]*telemetry.Counter)
	for _, st := range []TargetStatus{StatusDone, StatusResumed, StatusBudget, StatusSkipped, StatusFailed} {
		c.cTargets[st] = c.tel.Counter("tracenet_campaign_targets_total",
			c.metricLabels("status", string(st))...)
	}
	c.cHits = c.tel.Counter("tracenet_campaign_cache_hits_total", c.metricLabels()...)
	c.cMisses = c.tel.Counter("tracenet_campaign_cache_misses_total", c.metricLabels()...)
	c.cSaved = c.tel.Counter("tracenet_campaign_probes_saved_total", c.metricLabels()...)
	c.cProbes = c.tel.Counter("tracenet_campaign_probes_total", c.metricLabels()...)
	// Live-observability families: the in-flight gauge breathes during the
	// run and settles back to 0 before exposition is rendered, and the stall
	// counter is bumped by the collect.Watchdog — both registered here so a
	// campaign's series list is the same whether or not they ever move.
	c.gInflight = c.tel.Gauge("tracenet_campaign_workers_inflight", c.metricLabels()...)
	c.tel.Counter("tracenet_campaign_stalls_total", c.metricLabels()...)
}

// backpressure reports why no new target may start, or "" to proceed.
func (c *campaign) backpressure(ctx context.Context) string {
	if ctx.Err() != nil {
		return "campaign cancelled"
	}
	if c.budget.Exhausted() {
		return "campaign budget exhausted"
	}
	if limit := c.cfg.MaxBreakerTrips; limit > 0 && c.breakerTrips.Load() >= limit {
		return "breaker-trip limit reached"
	}
	return ""
}

// collectOne traces a single target with a fresh prober and session, filling
// in its report row. Every error is captured in the row — a failed target
// never takes the campaign down. The worker index w only feeds the progress
// view's per-worker state.
func (c *campaign) collectOne(ctx context.Context, w int, dst ipv4.Addr, out *TargetResult) {
	out.Dst = dst
	defer func() { c.prog.targetDone(*out) }()
	if reason := c.backpressure(ctx); reason != "" {
		out.Status = StatusSkipped
		out.Note = reason
		return
	}
	c.gInflight.Add(1)
	c.prog.workerStart(w, dst)
	defer func() {
		c.prog.workerIdle(w)
		c.gInflight.Add(-1)
	}()

	opts := c.cfg.Probe
	opts.SharedBudget = c.budget
	if opts.Pacer == nil {
		opts.Pacer = c.cfg.Pacer
	}
	if opts.Activity == nil {
		opts.Activity = c.prog.Activity()
	}
	if opts.Telemetry == nil {
		opts.Telemetry = c.tel
	}
	pr, err := c.cfg.Dial(opts)
	if err != nil {
		out.Status = StatusFailed
		out.Note = err.Error()
		return
	}

	scfg := c.cfg.Session
	scfg.Shared = nil
	if c.cache != nil {
		scfg.Shared = c.cache
	}
	sess := core.NewSession(pr, scfg)

	start := c.tel.Ticks()
	res, err := sess.Trace(dst)
	end := c.tel.Ticks()

	st := pr.Stats()
	c.wireProbes.Add(st.Sent)
	c.breakerTrips.Add(st.BreakerOpens)
	c.prog.addBreakerTrips(st.BreakerOpens)

	out.Result = res
	if res != nil {
		out.Reached = res.Reached
		out.Hops = len(res.Hops)
		out.Subnets = len(res.Subnets)
		out.TraceProbes = res.TraceProbes
	}
	switch {
	case err == nil && res != nil && res.BreakerLimited:
		out.Status = StatusBreaker
		out.Note = "breaker-truncated trace; not recorded done"
	case err == nil:
		out.Status = StatusDone
	case errors.Is(err, probe.ErrBudgetExceeded):
		out.Status = StatusBudget
		out.Note = "campaign budget exhausted mid-trace"
	default:
		out.Status = StatusFailed
		out.Note = err.Error()
	}
	c.tel.Complete("target", start, end,
		"dst", dst.String(),
		"status", string(out.Status))
}

// buildReport assembles the deterministic campaign report from the
// per-target rows (already in input order).
func (c *campaign) buildReport(results []TargetResult) *Report {
	rep := &Report{ID: c.cfg.ID, Targets: results}
	for i := range results {
		switch results[i].Status {
		case StatusDone:
			rep.Stats.Done++
		case StatusBreaker:
			rep.Stats.Breaker++
		case StatusResumed:
			rep.Stats.Resumed++
		case StatusBudget:
			rep.Stats.Budget++
		case StatusSkipped:
			rep.Stats.Skipped++
		case StatusFailed:
			rep.Stats.Failed++
		}
	}
	rep.Stats.Targets = len(results)
	rep.Stats.WireProbes = c.wireProbes.Load()
	if c.cache != nil {
		rep.Stats.CacheHits = c.cache.Hits()
		rep.Stats.CacheMisses = c.cache.Misses()
		rep.Stats.ProbesSaved = c.cache.ProbesSaved()
	}
	rep.merge(c.frozen)
	rep.resumeDone = c.resumeDone
	return rep
}

// exportStats mirrors the final campaign accounting onto the metric registry.
func (c *campaign) exportStats(s Stats) {
	c.cTargets[StatusDone].Add(uint64(s.Done))
	c.cTargets[StatusResumed].Add(uint64(s.Resumed))
	c.cTargets[StatusBudget].Add(uint64(s.Budget))
	c.cTargets[StatusSkipped].Add(uint64(s.Skipped))
	c.cTargets[StatusFailed].Add(uint64(s.Failed))
	c.cHits.Add(s.CacheHits)
	c.cMisses.Add(s.CacheMisses)
	c.cSaved.Add(s.ProbesSaved)
	c.cProbes.Add(s.WireProbes)
}
