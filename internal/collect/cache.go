package collect

import (
	"sort"
	"sync"
	"sync/atomic"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
)

// hopContext identifies one subnet exploration: the pivot interface v
// obtained at hop distance d, entered from the previous-hop interface u.
// Traces toward different destinations that cross the same router interface
// share the context, which is what lets a campaign explore each backbone
// subnet once instead of once per destination (the Doubletree insight applied
// to subnet exploration instead of path probing).
type hopContext struct {
	v, u ipv4.Addr
	d    int
}

// cacheEntry is one single-flight exploration slot. The owner closes ready
// after filling g or err; waiters block on ready and then read whichever was
// set. Entries whose growth failed are removed from the cache before ready is
// closed, so errors are never memoized — the next encounter retries.
type cacheEntry struct {
	ready chan struct{}
	g     core.Growth
	err   error
}

// Cache is the campaign's shared subnet cache: a concurrency-safe,
// single-flight memo of subnet explorations keyed by hop context, plus an
// immutable member-address tier seeded from a resumed checkpoint and an
// optional live ("greedy") member tier.
//
// Determinism: with the greedy tier off, every cache decision is a pure
// function of the hop context — the frozen tier never changes during the run,
// and the context memo runs each distinct context's growth exactly once —
// so campaign-wide probe totals and the merged topology are independent of
// worker count and scheduling. The greedy tier trades that guarantee for
// extra savings: whether a pivot address is already indexed when a worker
// looks it up depends on timing, so it is opt-in and documented as
// non-deterministic under parallelism.
type Cache struct {
	greedy bool

	// frozen maps member addresses of checkpoint-restored subnets to their
	// subnet. Built once before workers start; never mutated afterwards.
	frozen map[ipv4.Addr]*core.Subnet
	// frozenSubs keeps the restored subnets in checkpoint order so a
	// follow-up checkpoint carries them forward.
	frozenSubs []*core.Subnet

	mu      sync.Mutex
	entries map[hopContext]*cacheEntry
	// members is the greedy tier: live member-address index over grown
	// subnets. Nil unless greedy.
	members map[ipv4.Addr]core.Growth

	hits   atomic.Uint64
	misses atomic.Uint64
	saved  atomic.Uint64
}

// NewCache creates an empty shared subnet cache. greedy enables the live
// member-address tier (non-deterministic under parallelism, see Cache).
func NewCache(greedy bool) *Cache {
	c := &Cache{
		greedy:  greedy,
		frozen:  make(map[ipv4.Addr]*core.Subnet),
		entries: make(map[hopContext]*cacheEntry),
	}
	if greedy {
		c.members = make(map[ipv4.Addr]core.Growth)
	}
	return c
}

// Freeze seeds the immutable member tier with checkpoint-restored subnets.
// Must be called before any worker starts; the first subnet listing an
// address wins, so seeding order is the caller's (deterministic) order.
func (c *Cache) Freeze(subs []*core.Subnet) {
	for _, sub := range subs {
		c.frozenSubs = append(c.frozenSubs, sub)
		for _, a := range sub.Addrs {
			if _, dup := c.frozen[a]; !dup {
				c.frozen[a] = sub
			}
		}
	}
}

// ExploreHop implements core.SharedSubnetCache: serve the hop context from
// the frozen tier, the greedy member tier, or the context memo — running grow
// exactly once per distinct context across all concurrent callers.
func (c *Cache) ExploreHop(v, u ipv4.Addr, d int, grow func() (core.Growth, error)) (core.Growth, bool, error) {
	if sub, ok := c.frozen[v]; ok {
		g := core.Growth{Subnet: sub, Cost: sub.Probes}
		c.recordHit(g)
		return g, true, nil
	}
	if c.greedy {
		c.mu.Lock()
		g, ok := c.members[v]
		c.mu.Unlock()
		if ok {
			c.recordHit(g)
			return g, true, nil
		}
	}

	key := hopContext{v: v, u: u, d: d}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The owner's growth failed; the entry is already gone from the
			// map, so a later encounter of this context will retry. This
			// waiter surfaces the same error for its session to absorb.
			return core.Growth{}, false, e.err
		}
		c.recordHit(e.g)
		return e.g, true, nil
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	g, err := grow()
	if err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		e.err = err
		close(e.ready)
		return core.Growth{}, false, err
	}
	e.g = g
	c.misses.Add(1)
	if c.greedy && g.Subnet != nil {
		c.mu.Lock()
		for _, a := range g.Subnet.Addrs {
			if _, dup := c.members[a]; !dup {
				c.members[a] = g
			}
		}
		c.mu.Unlock()
	}
	close(e.ready)
	return g, false, nil
}

// recordHit accounts one cache hit: the growth's wire cost is exactly what
// the campaign did not have to spend again.
func (c *Cache) recordHit(g core.Growth) {
	c.hits.Add(1)
	c.saved.Add(g.Cost)
}

// Hits returns how many explorations were served from the cache.
func (c *Cache) Hits() uint64 { return c.hits.Load() }

// Misses returns how many distinct contexts were grown (successfully).
func (c *Cache) Misses() uint64 { return c.misses.Load() }

// ProbesSaved returns the wire packets the cache's hits avoided re-spending.
func (c *Cache) ProbesSaved() uint64 { return c.saved.Load() }

// Subnets returns every distinct subnet the cache knows — checkpoint-restored
// first, then grown — deduplicated and sorted by prefix then pivot, so a
// campaign checkpoint is byte-stable regardless of worker interleaving.
// Call only after all workers have finished.
func (c *Cache) Subnets() []*core.Subnet {
	seen := make(map[*core.Subnet]bool)
	var out []*core.Subnet
	add := func(sub *core.Subnet) {
		if sub != nil && !seen[sub] {
			seen[sub] = true
			out = append(out, sub)
		}
	}
	for _, sub := range c.frozenSubs {
		add(sub)
	}
	c.mu.Lock()
	for _, e := range c.entries {
		select {
		case <-e.ready:
			add(e.g.Subnet)
		default:
			// Unfinished entry (campaign aborted mid-growth): skip.
		}
	}
	c.mu.Unlock()
	sortSubnets(out)
	return out
}

// sortSubnets orders subnets by prefix base, prefix length, then pivot —
// a total order over distinct collected subnets.
func sortSubnets(subs []*core.Subnet) {
	sort.Slice(subs, func(i, j int) bool {
		a, b := subs[i], subs[j]
		if a.Prefix.Base() != b.Prefix.Base() {
			return a.Prefix.Base() < b.Prefix.Base()
		}
		if a.Prefix.Bits() != b.Prefix.Bits() {
			return a.Prefix.Bits() < b.Prefix.Bits()
		}
		if a.Pivot != b.Pivot {
			return a.Pivot < b.Pivot
		}
		return a.PivotDist < b.PivotDist
	})
}
