package obs_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tracenet/internal/collect"
	"tracenet/internal/netsim"
	"tracenet/internal/obs"
	"tracenet/internal/probe"
	"tracenet/internal/telemetry"
	"tracenet/internal/topo"
)

// obsCampaign runs one deterministic campaign with live progress published,
// then mounts its observability plane on an httptest server.
type obsCampaign struct {
	tel  *telemetry.Telemetry
	prog *collect.Progress
	wd   *collect.Watchdog
	net  *netsim.Network
	srv  *obs.Server
	ts   *httptest.Server
}

func runObsCampaign(t *testing.T, parallel int, mutate func(*collect.Config)) *obsCampaign {
	t.Helper()
	tp, targets := topo.Random(topo.RandomSpec{Seed: 42, Backbone: 8, Leaves: 24, LANFraction: 0.25, ExtraLinks: 2})
	n := netsim.New(tp, netsim.Config{Seed: 7})
	tel := telemetry.New(n)
	tel.Recorder = telemetry.NewFlightRecorder(64)
	n.SetTelemetry(tel)

	prog := collect.NewProgress()
	cfg := collect.Config{
		Targets:   targets,
		Parallel:  parallel,
		Probe:     probe.Options{Cache: true},
		Telemetry: tel,
		Progress:  prog,
		Dial: func(opts probe.Options) (*probe.Prober, error) {
			port, err := n.PortFor("vantage")
			if err != nil {
				return nil, err
			}
			return probe.New(port, port.LocalAddr(), opts), nil
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	if _, err := collect.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}

	lg := obs.NewLogger(n, nil, obs.LevelDebug, 0)
	lg.Info("campaign finished")
	wd := collect.NewWatchdog(prog, tel, 0)
	srv := obs.NewServer(tel, lg)
	srv.AddCampaign("campaign", prog)
	srv.AddCheck(obs.BudgetCheck(prog))
	srv.AddCheck(obs.BreakerStormCheck(prog, 0))
	srv.AddCheck(obs.StallCheck(wd, n))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &obsCampaign{tel: tel, prog: prog, wd: wd, net: n, srv: srv, ts: ts}
}

func get(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// The tentpole golden test: /metrics and /campaigns bodies of a finished
// same-seed campaign are byte-identical at parallel 1 and parallel 8.
func TestMetricsAndCampaignsGoldenAcrossParallelism(t *testing.T) {
	fetch := func(parallel int) (string, string) {
		oc := runObsCampaign(t, parallel, nil)
		mcode, metrics := get(t, oc.ts.URL, "/metrics")
		ccode, campaigns := get(t, oc.ts.URL, "/campaigns")
		if mcode != http.StatusOK || ccode != http.StatusOK {
			t.Fatalf("parallel=%d: /metrics %d, /campaigns %d", parallel, mcode, ccode)
		}
		return metrics, campaigns
	}
	m1, c1 := fetch(1)
	m8, c8 := fetch(8)
	if m1 != m8 {
		t.Errorf("/metrics differs between parallel=1 and parallel=8:\n--- p1\n%s--- p8\n%s", m1, m8)
	}
	if c1 != c8 {
		t.Errorf("/campaigns differs between parallel=1 and parallel=8:\n--- p1\n%s--- p8\n%s", c1, c8)
	}
	if !strings.Contains(m1, "tracenet_campaign_workers_inflight 0") {
		t.Errorf("/metrics lacks the settled in-flight gauge:\n%s", m1)
	}
	if !strings.Contains(m1, "tracenet_campaign_stalls_total 0") {
		t.Errorf("/metrics lacks the stall counter family:\n%s", m1)
	}
	for _, want := range []string{`"name": "campaign"`, `"finished": true`, `"wire_probes"`, `"cache_hit_rate"`} {
		if !strings.Contains(c1, want) {
			t.Errorf("/campaigns lacks %s:\n%s", want, c1)
		}
	}
	if strings.Contains(c1, `"workers"`) {
		t.Errorf("/campaigns of a finished campaign must omit per-worker state:\n%s", c1)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	oc := runObsCampaign(t, 4, nil)

	code, body := get(t, oc.ts.URL, "/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok tick=") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = get(t, oc.ts.URL, "/readyz")
	if code != http.StatusOK {
		t.Errorf("/readyz = %d on a healthy finished campaign:\n%s", code, body)
	}
	for _, want := range []string{"ok probe-budget", "ok breaker-storm", "ok campaign-stall", "ready"} {
		if !strings.Contains(body, want) {
			t.Errorf("/readyz lacks %q:\n%s", want, body)
		}
	}

	oc.srv.AddCheck(obs.Check{Name: "always-red", Probe: func() error { return errors.New("boom") }})
	code, body = get(t, oc.ts.URL, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d with a failing check, want 503", code)
	}
	if !strings.Contains(body, "fail always-red: boom") || !strings.Contains(body, "not ready") {
		t.Errorf("/readyz body lacks the failure:\n%s", body)
	}
}

// BudgetCheck must trip while the campaign is live with its budget spent; a
// finished campaign reports healthy again. The mid-run observation rides the
// OnTargetDone callback, the only schedule-safe hook into a running campaign.
func TestBudgetCheckTripsMidRun(t *testing.T) {
	var mu sync.Mutex
	var sawExhausted bool
	prog := collect.NewProgress()
	check := obs.BudgetCheck(prog)
	runObsCampaignWithProgress(t, prog, func(cfg *collect.Config) {
		cfg.Budget = 40 // enough to start, far too little to finish
		cfg.OnTargetDone = func(collect.TargetResult) {
			if check.Probe() != nil {
				mu.Lock()
				sawExhausted = true
				mu.Unlock()
			}
		}
	})
	if !sawExhausted {
		t.Error("BudgetCheck never failed during a budget-starved campaign")
	}
	if err := check.Probe(); err != nil {
		t.Errorf("BudgetCheck still failing after the campaign finished: %v", err)
	}
}

// runObsCampaignWithProgress is runObsCampaign with a caller-owned Progress
// (so checks can be built before the run starts).
func runObsCampaignWithProgress(t *testing.T, prog *collect.Progress, mutate func(*collect.Config)) {
	t.Helper()
	tp, targets := topo.Random(topo.RandomSpec{Seed: 42, Backbone: 8, Leaves: 24, LANFraction: 0.25, ExtraLinks: 2})
	n := netsim.New(tp, netsim.Config{Seed: 7})
	cfg := collect.Config{
		Targets:  targets,
		Parallel: 4,
		Probe:    probe.Options{Cache: true},
		Progress: prog,
		Dial: func(opts probe.Options) (*probe.Prober, error) {
			port, err := n.PortFor("vantage")
			if err != nil {
				return nil, err
			}
			return probe.New(port, port.LocalAddr(), opts), nil
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	if _, err := collect.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStallCheckTripsMidRun(t *testing.T) {
	prog := collect.NewProgress()
	clock := &telemetry.ManualClock{}
	wd := collect.NewWatchdog(prog, nil, 10)
	check := obs.StallCheck(wd, clock)
	var mu sync.Mutex
	var tripped, healthyEarly bool
	runObsCampaignWithProgress(t, prog, func(cfg *collect.Config) {
		cfg.OnTargetDone = func(collect.TargetResult) {
			mu.Lock()
			defer mu.Unlock()
			if tripped {
				return
			}
			// With the manual clock at the last-activity tick the campaign is
			// fresh; jumping it far past the window must read as a stall.
			clock.Advance(prog.LastActivityTick() - clock.Ticks())
			if check.Probe() == nil {
				healthyEarly = true
			}
			clock.Advance(1 << 20)
			if check.Probe() != nil {
				tripped = true
			}
		}
	})
	if !healthyEarly {
		t.Error("StallCheck failed while activity was fresh")
	}
	if !tripped {
		t.Error("StallCheck never tripped a silent window mid-run")
	}
	if err := check.Probe(); err != nil {
		t.Errorf("StallCheck still failing after the campaign finished: %v", err)
	}
}

func TestLogzEndpoint(t *testing.T) {
	lg := obs.NewLogger(nil, nil, obs.LevelDebug, 0)
	lg.Debug("noisy detail")
	lg.Info("target done", "dst", "10.0.3.7")
	lg.Warn("probe exchange failed", "err", "decode")
	srv := obs.NewServer(nil, lg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL, "/logz")
	if code != http.StatusOK || strings.Count(body, "\n") != 3 {
		t.Errorf("/logz = %d with %d lines:\n%s", code, strings.Count(body, "\n"), body)
	}
	code, body = get(t, ts.URL, "/logz?level=warn&n=5")
	if code != http.StatusOK || strings.Count(body, "\n") != 1 || !strings.Contains(body, "decode") {
		t.Errorf("/logz?level=warn = %d:\n%s", code, body)
	}
	if code, _ = get(t, ts.URL, "/logz?n=zero"); code != http.StatusBadRequest {
		t.Errorf("/logz?n=zero = %d, want 400", code)
	}
	if code, _ = get(t, ts.URL, "/logz?level=loud"); code != http.StatusBadRequest {
		t.Errorf("/logz?level=loud = %d, want 400", code)
	}
}

func TestFlightzSnapshot(t *testing.T) {
	oc := runObsCampaign(t, 2, nil)
	code, body := get(t, oc.ts.URL, "/flightz")
	if code != http.StatusOK {
		t.Fatalf("/flightz = %d", code)
	}
	if !strings.Contains(body, "== flight recorder snapshot at tick") ||
		!strings.Contains(body, "events retained") {
		t.Errorf("/flightz body malformed:\n%s", body)
	}
}

func TestServerWithoutTelemetry(t *testing.T) {
	srv := obs.NewServer(nil, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := get(t, ts.URL, "/metrics"); code != http.StatusServiceUnavailable {
		t.Errorf("/metrics without telemetry = %d, want 503", code)
	}
	if code, _ := get(t, ts.URL, "/metrics.json"); code != http.StatusServiceUnavailable {
		t.Errorf("/metrics.json without telemetry = %d, want 503", code)
	}
	if code, body := get(t, ts.URL, "/healthz"); code != http.StatusOK || body != "ok tick=0\n" {
		t.Errorf("/healthz without telemetry = %d %q", code, body)
	}
	if code, body := get(t, ts.URL, "/logz"); code != http.StatusOK || !strings.Contains(body, "disabled") {
		t.Errorf("/logz without logger = %d %q", code, body)
	}
	if code, body := get(t, ts.URL, "/flightz"); code != http.StatusOK || !strings.Contains(body, "not armed") {
		t.Errorf("/flightz without recorder = %d %q", code, body)
	}
	if code, body := get(t, ts.URL, "/"); code != http.StatusOK || !strings.Contains(body, "/campaigns") {
		t.Errorf("index = %d %q", code, body)
	}
	if code, _ := get(t, ts.URL, "/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

func TestPprofMounted(t *testing.T) {
	srv := obs.NewServer(nil, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, body := get(t, ts.URL, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d:\n%.200s", code, body)
	}
}

// The Start/Shutdown lifecycle must bind a real port and serve the same mux.
func TestServerStartShutdown(t *testing.T) {
	lg := obs.NewLogger(nil, nil, obs.LevelInfo, 0)
	srv := obs.NewServer(nil, lg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, fmt.Sprintf("http://%s", addr), "/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok tick=") {
		t.Errorf("live /healthz = %d %q", code, body)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("server still serving after Shutdown")
	}
}

// Hammer every endpoint while an 8-worker campaign runs — the race-detector
// gate for serving live state.
func TestServeDuringLiveCampaign(t *testing.T) {
	tp, targets := topo.Random(topo.RandomSpec{Seed: 42, Backbone: 8, Leaves: 24, LANFraction: 0.25, ExtraLinks: 2})
	n := netsim.New(tp, netsim.Config{Seed: 7})
	tel := telemetry.New(n)
	tel.Recorder = telemetry.NewFlightRecorder(64)
	n.SetTelemetry(tel)

	prog := collect.NewProgress()
	lg := obs.NewLogger(n, nil, obs.LevelDebug, 0)
	wd := collect.NewWatchdog(prog, tel, 0)
	srv := obs.NewServer(tel, lg)
	srv.AddCampaign("campaign", prog)
	srv.AddCheck(obs.BudgetCheck(prog))
	srv.AddCheck(obs.StallCheck(wd, n))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	polled := make(chan int, 1)
	go func() {
		defer close(polled)
		count := 0
		for {
			select {
			case <-done:
				polled <- count
				return
			default:
			}
			for _, path := range []string{"/metrics", "/campaigns", "/readyz", "/logz", "/flightz"} {
				if code, _ := get(t, ts.URL, path); code != http.StatusOK {
					t.Errorf("GET %s = %d during live campaign", path, code)
				}
			}
			count++
		}
	}()

	cfg := collect.Config{
		Targets:   targets,
		Parallel:  8,
		Probe:     probe.Options{Cache: true},
		Telemetry: tel,
		Progress:  prog,
		OnTargetDone: func(collect.TargetResult) {
			lg.Info("target done")
		},
		Dial: func(opts probe.Options) (*probe.Prober, error) {
			port, err := n.PortFor("vantage")
			if err != nil {
				return nil, err
			}
			return probe.New(port, port.LocalAddr(), opts), nil
		},
	}
	if _, err := collect.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	close(done)
	if n := <-polled; n == 0 {
		t.Error("poller never completed a sweep during the campaign")
	}
}
