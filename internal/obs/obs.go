// Package obs is tracenet's live observability plane: the serving surface
// that turns the write-at-exit telemetry layer (internal/telemetry) into a
// continuously pollable one, the on-ramp to the long-running tracenetd
// collection service.
//
// Three pieces compose here. Server is an HTTP exposition server mounting
// the metric registry (/metrics Prometheus text, /metrics.json), liveness
// and readiness (/healthz, /readyz with pluggable checks), recent structured
// logs (/logz), live campaign progress (/campaigns), an on-demand
// flight-recorder snapshot (/flightz), and the runtime profiler
// (/debug/pprof/). Logger is a structured, leveled JSON-lines logger clocked
// by the injected telemetry.Clock, replacing ad-hoc transcript prints. The
// health checks in health.go judge a campaign's Progress/Watchdog state
// (probe-budget exhaustion, breaker storms, stalls).
//
// Determinism: everything this package renders is derived from the virtual
// clock and the deterministic registry, never the wall clock — the package
// sits inside the tracenetlint determinism/clocksource scope. The /metrics
// and /campaigns bodies of a finished same-seed campaign are byte-identical
// at any parallelism (the Snapshot contract in internal/collect); inherently
// schedule-dependent surfaces (/logz ordering under concurrency, live
// mid-run snapshots) are excluded from that contract and from golden tests.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"tracenet/internal/collect"
	"tracenet/internal/telemetry"
)

// Check is one readiness probe: Probe returns nil when healthy, or an error
// describing why the process should not be considered ready.
type Check struct {
	Name  string
	Probe func() error
}

// Server exposes one process's observability surfaces over HTTP. Construct
// with NewServer, register campaigns and readiness checks, then either
// Start it on an address or mount Handler in a test server. All methods are
// safe for concurrent use.
type Server struct {
	tel *telemetry.Telemetry
	log *Logger
	mux *http.ServeMux
	hs  *http.Server

	mu              sync.Mutex
	checks          []Check
	checkSources    []func() []Check
	campaigns       []namedProgress
	campaignSources []func() []CampaignEntry
}

type namedProgress struct {
	name string
	prog *collect.Progress
}

// CampaignEntry is one dynamically published campaign: its display name and
// live progress. See AddCampaignSource.
type CampaignEntry struct {
	Name string
	Prog *collect.Progress
}

// NewServer builds a server over the run's telemetry (may be nil: metric
// endpoints then answer 503) and logger (may be nil: /logz reports logging
// disabled).
func NewServer(tel *telemetry.Telemetry, lg *Logger) *Server {
	s := &Server{tel: tel, log: lg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.serveIndex)
	s.mux.HandleFunc("/metrics", s.serveMetrics)
	s.mux.HandleFunc("/metrics.json", s.serveMetricsJSON)
	s.mux.HandleFunc("/healthz", s.serveHealthz)
	s.mux.HandleFunc("/readyz", s.serveReadyz)
	s.mux.HandleFunc("/logz", s.serveLogz)
	s.mux.HandleFunc("/campaigns", s.serveCampaigns)
	s.mux.HandleFunc("/flightz", s.serveFlightz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.hs = &http.Server{Handler: s.mux}
	return s
}

// AddCheck registers a readiness check; /readyz runs every check on each
// request and answers 503 when any fails.
func (s *Server) AddCheck(c Check) {
	s.mu.Lock()
	s.checks = append(s.checks, c)
	s.mu.Unlock()
}

// AddCheckSource registers a dynamic readiness source: /readyz calls it on
// every request and runs the returned checks after the statically registered
// ones. This is how a daemon keeps readiness honest while its campaign set
// changes — per-campaign stall checks exist exactly while their campaign
// runs, instead of one static check assuming a single campaign per process.
// The source is called without the server lock held and must be safe for
// concurrent use.
func (s *Server) AddCheckSource(src func() []Check) {
	s.mu.Lock()
	s.checkSources = append(s.checkSources, src)
	s.mu.Unlock()
}

// AddCampaign publishes a campaign's live progress under /campaigns.
// Campaigns render in registration order.
func (s *Server) AddCampaign(name string, p *collect.Progress) {
	s.mu.Lock()
	s.campaigns = append(s.campaigns, namedProgress{name: name, prog: p})
	s.mu.Unlock()
}

// AddCampaignSource registers a dynamic campaign source: /campaigns calls it
// on every request and renders the returned entries after the statically
// registered ones, in the order the source yields them (the source owns the
// ordering contract — the daemon yields submission order, keeping the body
// deterministic). Called without the server lock held; must be safe for
// concurrent use.
func (s *Server) AddCampaignSource(src func() []CampaignEntry) {
	s.mu.Lock()
	s.campaignSources = append(s.campaignSources, src)
	s.mu.Unlock()
}

// Mount attaches an additional handler subtree to the server's mux — the
// composition point tracenetd uses to serve its /api/v1/ endpoints on the
// same listener as the observability surfaces. The pattern follows
// http.ServeMux rules; mounting a pattern that collides with a built-in
// endpoint panics, like any duplicate ServeMux registration.
func (s *Server) Mount(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// Handler returns the server's mux, for mounting in tests (httptest) or a
// caller-owned http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (":0" picks a free port) and serves in the
// background until Shutdown. The bound address is returned so callers can
// report the resolved port.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := s.hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.log.Error("observability server failed", "err", err.Error())
		}
	}()
	return ln.Addr(), nil
}

// Shutdown gracefully stops a Started server, waiting for in-flight
// requests up to the context's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.hs.Shutdown(ctx)
}

// endpoints is the index listing; also the documentation order in DESIGN.md.
var endpoints = []struct{ path, desc string }{
	{"/metrics", "metric registry, Prometheus text exposition"},
	{"/metrics.json", "metric registry, JSON exposition"},
	{"/healthz", "liveness: 200 once the process serves"},
	{"/readyz", "readiness: runs the registered health checks"},
	{"/logz", "recent structured logs (?n=100&level=debug)"},
	{"/campaigns", "live campaign progress snapshots, JSON"},
	{"/flightz", "on-demand flight-recorder snapshot"},
	{"/debug/pprof/", "runtime profiler index"},
}

func (s *Server) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "tracenet observability plane")
	for _, e := range endpoints {
		fmt.Fprintf(w, "  %-14s %s\n", e.path, e.desc)
	}
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if s.tel == nil || s.tel.Registry == nil {
		http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.tel.Registry.WritePrometheus(w)
}

func (s *Server) serveMetricsJSON(w http.ResponseWriter, r *http.Request) {
	if s.tel == nil || s.tel.Registry == nil {
		http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.tel.Registry.WriteJSON(w)
}

func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok tick=%d\n", s.tel.Ticks())
}

func (s *Server) serveReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	checks := append([]Check(nil), s.checks...)
	sources := append([]func() []Check(nil), s.checkSources...)
	s.mu.Unlock()
	for _, src := range sources {
		checks = append(checks, src()...)
	}

	type verdict struct {
		name string
		err  error
	}
	verdicts := make([]verdict, 0, len(checks))
	ready := true
	for _, c := range checks {
		err := c.Probe()
		if err != nil {
			ready = false
		}
		verdicts = append(verdicts, verdict{c.Name, err})
	}

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	for _, v := range verdicts {
		if v.err != nil {
			fmt.Fprintf(w, "fail %s: %v\n", v.name, v.err)
		} else {
			fmt.Fprintf(w, "ok %s\n", v.name)
		}
	}
	if ready {
		fmt.Fprintln(w, "ready")
	} else {
		fmt.Fprintln(w, "not ready")
	}
}

func (s *Server) serveLogz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.log == nil {
		fmt.Fprintln(w, "structured logging disabled")
		return
	}
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	min := LevelDebug
	if q := r.URL.Query().Get("level"); q != "" {
		v, err := ParseLevel(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		min = v
	}
	for _, line := range s.log.Tail(n, min) {
		fmt.Fprintln(w, line)
	}
}

// campaignDoc is one /campaigns entry: the registered name plus the progress
// snapshot. Entries render in registration order (names need not be unique,
// so no map is involved and the body stays byte-stable).
type campaignDoc struct {
	Name string `json:"name"`
	collect.Snapshot
}

func (s *Server) serveCampaigns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	campaigns := append([]namedProgress(nil), s.campaigns...)
	sources := append([]func() []CampaignEntry(nil), s.campaignSources...)
	s.mu.Unlock()

	docs := make([]campaignDoc, 0, len(campaigns))
	for _, c := range campaigns {
		docs = append(docs, campaignDoc{Name: c.name, Snapshot: c.prog.Snapshot()})
	}
	for _, src := range sources {
		for _, e := range src() {
			docs = append(docs, campaignDoc{Name: e.Name, Snapshot: e.Prog.Snapshot()})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Campaigns []campaignDoc `json:"campaigns"`
	}{docs}); err != nil {
		// Headers are already on the wire; all that is left is noting the
		// failed response (a closed client connection, usually).
		s.log.Warn("campaigns response failed", "err", err.Error())
	}
}

func (s *Server) serveFlightz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.tel.DumpRecorder(w, "http /flightz")
}
