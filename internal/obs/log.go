package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"tracenet/internal/probe"
	"tracenet/internal/telemetry"
)

// Level orders log severities. The zero value is LevelDebug, so a
// zero-configured logger keeps everything.
type Level uint8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name used in the JSON records.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level" + strconv.Itoa(int(l))
	}
}

// ParseLevel maps a level name (as printed by String) back to its Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// DefaultLogRingSize is the /logz ring capacity when none is configured.
const DefaultLogRingSize = 1024

// Logger is a structured, leveled JSON-lines logger clocked by the injected
// telemetry.Clock: every record is stamped with the virtual tick instead of
// the wall clock, so two same-seed runs emit byte-identical log streams (up
// to goroutine interleaving of independent lines when workers log
// concurrently). One record is one line:
//
//	{"tick":412,"level":"info","msg":"target done","dst":"10.0.3.7","status":"done"}
//
// Fields render in call-site order — like telemetry label pairs, the kv
// variadic alternates key, value — so a given call site always produces the
// same bytes. Records below the minimum level are dropped before rendering.
//
// Every record is retained in a bounded ring (backing the /logz endpoint)
// and, when a writer is attached, appended to it under the logger's lock.
// A nil *Logger is inert, matching the telemetry layer's nil-safety rule.
type Logger struct {
	clock telemetry.Clock
	min   Level

	mu    sync.Mutex
	w     io.Writer
	ring  []logRecord
	total uint64 // records ever kept; ring holds the last min(total, cap)
}

type logRecord struct {
	level Level
	line  string
}

// NewLogger builds a logger over the given clock (nil stamps tick 0). Records
// at or above min are rendered; w may be nil to keep records only in the ring
// (ringSize <= 0 selects DefaultLogRingSize).
func NewLogger(clock telemetry.Clock, w io.Writer, min Level, ringSize int) *Logger {
	if ringSize <= 0 {
		ringSize = DefaultLogRingSize
	}
	return &Logger{clock: clock, min: min, w: w, ring: make([]logRecord, 0, ringSize)}
}

// Debug logs at LevelDebug; kv alternates field keys and values.
func (l *Logger) Debug(msg string, kv ...string) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...string) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...string) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...string) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lvl Level, msg string, kv []string) {
	if l == nil || lvl < l.min {
		return
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd field count %d logging %q", len(kv), msg))
	}
	var tick uint64
	if l.clock != nil {
		tick = l.clock.Ticks()
	}
	var b strings.Builder
	b.WriteString(`{"tick":`)
	b.WriteString(strconv.FormatUint(tick, 10))
	b.WriteString(`,"level":"`)
	b.WriteString(lvl.String())
	b.WriteString(`","msg":`)
	appendQuoted(&b, msg)
	for i := 0; i < len(kv); i += 2 {
		b.WriteByte(',')
		appendQuoted(&b, kv[i])
		b.WriteByte(':')
		appendQuoted(&b, kv[i+1])
	}
	b.WriteByte('}')
	rec := logRecord{level: lvl, line: b.String()}

	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, rec)
	} else {
		l.ring[l.total%uint64(cap(l.ring))] = rec
	}
	l.total++
	if l.w != nil {
		io.WriteString(l.w, rec.line)
		io.WriteString(l.w, "\n")
	}
	l.mu.Unlock()
}

// appendQuoted writes s as a JSON string: quotes, backslashes, and control
// characters are escaped; other bytes (including multi-byte UTF-8) pass
// through, which is valid JSON and keeps rendering allocation-light.
func appendQuoted(b *strings.Builder, s string) {
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c == '\n':
			b.WriteString(`\n`)
		case c == '\t':
			b.WriteString(`\t`)
		case c < 0x20:
			fmt.Fprintf(b, `\u%04x`, c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
}

// Total returns how many records were ever kept (including ones the ring has
// since evicted).
func (l *Logger) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Tail returns up to n of the most recent records at or above min, oldest
// first — the /logz read path. The returned lines are copies; recording may
// continue concurrently.
func (l *Logger) Tail(n int, min Level) []string {
	if l == nil || n <= 0 {
		return nil
	}
	l.mu.Lock()
	snap := make([]logRecord, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) {
		snap = append(snap, l.ring...)
	} else {
		start := l.total % uint64(cap(l.ring))
		snap = append(snap, l.ring[start:]...)
		snap = append(snap, l.ring[:start]...)
	}
	l.mu.Unlock()

	out := make([]string, 0, n)
	// Walk backwards collecting matches, then reverse to oldest-first.
	for i := len(snap) - 1; i >= 0 && len(out) < n; i-- {
		if snap[i].level >= min {
			out = append(out, snap[i].line)
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// ProbeSink adapts the logger into probe.LoggingTransport's structured sink:
// instead of the transport's ad-hoc text lines, every exchange becomes a
// leveled JSON record — clean exchanges and timeouts at debug, transport and
// decode faults at warn.
func ProbeSink(l *Logger) func(probe.ProbeEvent) {
	return func(ev probe.ProbeEvent) {
		kv := []string{
			"proto", ev.Proto,
			"dst", ev.Dst.String(),
			"ttl", strconv.Itoa(int(ev.TTL)),
		}
		switch ev.Err {
		case probe.ErrNone:
			l.Debug("probe exchange", append(kv,
				"outcome", ev.Outcome,
				"from", ev.From.String(),
				"rttl", strconv.Itoa(int(ev.ReplyTTL)))...)
		case probe.ErrTimeout:
			// Timeouts are ordinary measurement outcomes, not faults.
			l.Debug("probe exchange", append(kv, "outcome", "timeout")...)
		default:
			l.Warn("probe exchange failed", append(kv, "err", ev.Err.String())...)
		}
	}
}
