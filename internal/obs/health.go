package obs

import (
	"fmt"

	"tracenet/internal/collect"
	"tracenet/internal/telemetry"
)

// Health checks judge a running campaign's condition for /readyz. Each is a
// pure read over the lock-free Progress/Watchdog state, so polling them
// costs the campaign nothing. All three report healthy once the campaign
// has finished: a completed run is a success, whatever it survived on the
// way — readiness failures exist to tell an operator the live run needs
// attention.

// BudgetCheck fails while the campaign's shared probe budget is exhausted:
// remaining targets will be skipped, so the collection is no longer making
// real progress.
func BudgetCheck(p *collect.Progress) Check {
	return Check{Name: "probe-budget", Probe: func() error {
		if p.Finished() {
			return nil
		}
		if p.BudgetExhausted() {
			return fmt.Errorf("shared probe budget exhausted after %d wire probes", p.WireProbes())
		}
		return nil
	}}
}

// BreakerStormCheck fails when circuit-breaker opens reach maxTrips — the
// campaign is shedding load into silent zones faster than it is collecting
// (maxTrips 0 selects DefaultBreakerStormTrips).
func BreakerStormCheck(p *collect.Progress, maxTrips uint64) Check {
	if maxTrips == 0 {
		maxTrips = DefaultBreakerStormTrips
	}
	return Check{Name: "breaker-storm", Probe: func() error {
		if p.Finished() {
			return nil
		}
		if trips := p.BreakerTrips(); trips >= maxTrips {
			return fmt.Errorf("%d breaker trips (storm threshold %d)", trips, maxTrips)
		}
		return nil
	}}
}

// DefaultBreakerStormTrips is the BreakerStormCheck threshold when none is
// configured: well beyond the isolated trips a faulted-but-working campaign
// accumulates.
const DefaultBreakerStormTrips = 8

// StallCheck fails while the campaign is stalled: no wire exchange completed
// within the watchdog's window of the clock's current tick. Each poll drives
// the watchdog, which files a flight-recorder incident once per stall
// episode (see collect.Watchdog). An identified watchdog (the daemon runs
// one per campaign) gets the campaign ID in the check name, so /readyz
// verdicts from concurrent campaigns stay distinguishable.
func StallCheck(wd *collect.Watchdog, clock telemetry.Clock) Check {
	name := "campaign-stall"
	if id := wd.ID(); id != "" {
		name += " " + id
	}
	return Check{Name: name, Probe: func() error {
		var now uint64
		if clock != nil {
			now = clock.Ticks()
		}
		if wd.Check(now) {
			return fmt.Errorf("no exchange completed within %d ticks of tick %d", wd.Window(), now)
		}
		return nil
	}}
}
