package obs_test

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tracenet/internal/collect"
	"tracenet/internal/obs"
)

// TestMountComposesAPI: a handler mounted beside the built-in endpoints
// serves on the same mux — the tracenetd composition point.
func TestMountComposesAPI(t *testing.T) {
	srv := obs.NewServer(nil, nil)
	srv.Mount("/api/v1/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "api %s", r.URL.Path)
	}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, body := get(t, ts.URL, "/api/v1/campaigns"); code != http.StatusOK || body != "api /api/v1/campaigns" {
		t.Errorf("mounted handler = %d %q", code, body)
	}
	if code, _ := get(t, ts.URL, "/healthz"); code != http.StatusOK {
		t.Errorf("built-in endpoint lost after Mount: %d", code)
	}
}

// TestReadyzCheckSource: dynamic checks join the static ones on every
// request and their verdicts govern readiness.
func TestReadyzCheckSource(t *testing.T) {
	srv := obs.NewServer(nil, nil)
	srv.AddCheck(obs.Check{Name: "static", Probe: func() error { return nil }})
	var mu sync.Mutex
	var dynamic []obs.Check
	srv.AddCheckSource(func() []obs.Check {
		mu.Lock()
		defer mu.Unlock()
		return append([]obs.Check(nil), dynamic...)
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL, "/readyz")
	if code != http.StatusOK || !strings.Contains(body, "ok static") {
		t.Fatalf("/readyz with empty source = %d:\n%s", code, body)
	}

	mu.Lock()
	dynamic = []obs.Check{
		{Name: "campaign-stall c0001", Probe: func() error { return nil }},
		{Name: "spool-replay", Probe: func() error { return errors.New("replaying 3 specs") }},
	}
	mu.Unlock()
	code, body = get(t, ts.URL, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with failing dynamic check = %d, want 503:\n%s", code, body)
	}
	for _, want := range []string{"ok static", "ok campaign-stall c0001",
		"fail spool-replay: replaying 3 specs", "not ready"} {
		if !strings.Contains(body, want) {
			t.Errorf("/readyz lacks %q:\n%s", want, body)
		}
	}

	// The source is re-consulted per request: dropping the failing check
	// restores readiness without re-registration.
	mu.Lock()
	dynamic = dynamic[:1]
	mu.Unlock()
	if code, _ = get(t, ts.URL, "/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after source recovered = %d, want 200", code)
	}
}

// TestCampaignsSource: dynamically sourced campaigns render after the static
// ones, in source order, with their IDs.
func TestCampaignsSource(t *testing.T) {
	srv := obs.NewServer(nil, nil)
	srv.AddCampaign("static", collect.NewProgress())
	var mu sync.Mutex
	var entries []obs.CampaignEntry
	srv.AddCampaignSource(func() []obs.CampaignEntry {
		mu.Lock()
		defer mu.Unlock()
		return append([]obs.CampaignEntry(nil), entries...)
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL, "/campaigns")
	if code != http.StatusOK || !strings.Contains(body, `"name": "static"`) {
		t.Fatalf("/campaigns with empty source = %d:\n%s", code, body)
	}

	mu.Lock()
	entries = []obs.CampaignEntry{
		{Name: "c0001", Prog: collect.NewProgress()},
		{Name: "c0002", Prog: collect.NewProgress()},
	}
	mu.Unlock()
	_, body = get(t, ts.URL, "/campaigns")
	iStatic := strings.Index(body, `"name": "static"`)
	i1 := strings.Index(body, `"name": "c0001"`)
	i2 := strings.Index(body, `"name": "c0002"`)
	if iStatic < 0 || i1 < 0 || i2 < 0 || !(iStatic < i1 && i1 < i2) {
		t.Errorf("/campaigns ordering wrong (static=%d c0001=%d c0002=%d):\n%s",
			iStatic, i1, i2, body)
	}
}
