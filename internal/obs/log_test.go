package obs_test

import (
	"strings"
	"testing"

	"tracenet/internal/ipv4"
	"tracenet/internal/obs"
	"tracenet/internal/probe"
	"tracenet/internal/telemetry"
)

func addr(t *testing.T, s string) ipv4.Addr {
	t.Helper()
	a, err := ipv4.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestLoggerRendersJSONLines(t *testing.T) {
	clock := &telemetry.ManualClock{}
	var out strings.Builder
	lg := obs.NewLogger(clock, &out, obs.LevelDebug, 0)

	clock.Advance(412)
	lg.Info("target done", "dst", "10.0.3.7", "status", "done")
	want := `{"tick":412,"level":"info","msg":"target done","dst":"10.0.3.7","status":"done"}` + "\n"
	if out.String() != want {
		t.Errorf("rendered line:\n got %q\nwant %q", out.String(), want)
	}

	out.Reset()
	lg.Warn(`quote " backslash \ newline`+"\n", "k", "\x01ctl")
	want = `{"tick":412,"level":"warn","msg":"quote \" backslash \\ newline\n","k":"\u0001ctl"}` + "\n"
	if out.String() != want {
		t.Errorf("escaping:\n got %q\nwant %q", out.String(), want)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var out strings.Builder
	lg := obs.NewLogger(nil, &out, obs.LevelWarn, 0)
	lg.Debug("drop me")
	lg.Info("drop me too")
	lg.Error("keep me")
	if got := out.String(); strings.Contains(got, "drop me") || !strings.Contains(got, "keep me") {
		t.Errorf("level filter broken:\n%s", got)
	}
	if lg.Total() != 1 {
		t.Errorf("total = %d, want 1 (filtered records must not count)", lg.Total())
	}
}

// Two identically-driven loggers over the same clock emit byte-identical
// streams — the logging half of the determinism contract.
func TestLoggerDeterministic(t *testing.T) {
	emit := func() string {
		clock := &telemetry.ManualClock{}
		var out strings.Builder
		lg := obs.NewLogger(clock, &out, obs.LevelDebug, 0)
		for i := 0; i < 50; i++ {
			clock.Advance(3)
			lg.Info("probe exchange", "dst", "10.0.1.1", "outcome", "ttl-exceeded")
			lg.Debug("cache", "hit", "true")
		}
		return out.String()
	}
	if a, b := emit(), emit(); a != b {
		t.Error("same-clock log streams differ between runs")
	}
}

func TestLoggerRingTail(t *testing.T) {
	lg := obs.NewLogger(nil, nil, obs.LevelDebug, 4)
	lg.Info("one")
	lg.Warn("two")
	lg.Info("three")
	lg.Warn("four")
	lg.Info("five") // evicts "one"

	tail := lg.Tail(10, obs.LevelDebug)
	if len(tail) != 4 {
		t.Fatalf("tail holds %d lines, want 4 (ring capacity)", len(tail))
	}
	if !strings.Contains(tail[0], "two") || !strings.Contains(tail[3], "five") {
		t.Errorf("tail order wrong: %v", tail)
	}

	warns := lg.Tail(10, obs.LevelWarn)
	if len(warns) != 2 || !strings.Contains(warns[0], "two") || !strings.Contains(warns[1], "four") {
		t.Errorf("level-filtered tail wrong: %v", warns)
	}
	if limited := lg.Tail(1, obs.LevelDebug); len(limited) != 1 || !strings.Contains(limited[0], "five") {
		t.Errorf("count-limited tail must keep the newest: %v", limited)
	}
	if lg.Total() != 5 {
		t.Errorf("total = %d, want 5", lg.Total())
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var lg *obs.Logger
	lg.Info("into the void", "k", "v")
	if lg.Total() != 0 || lg.Tail(5, obs.LevelDebug) != nil {
		t.Fatal("nil logger retained something")
	}
}

func TestLoggerOddFieldsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd kv count did not panic")
		}
	}()
	obs.NewLogger(nil, nil, obs.LevelDebug, 0).Info("bad", "key-without-value")
}

func TestParseLevelRoundTrip(t *testing.T) {
	for _, lvl := range []obs.Level{obs.LevelDebug, obs.LevelInfo, obs.LevelWarn, obs.LevelError} {
		got, err := obs.ParseLevel(lvl.String())
		if err != nil || got != lvl {
			t.Errorf("ParseLevel(%q) = %v, %v", lvl.String(), got, err)
		}
	}
	if _, err := obs.ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestProbeSinkClassifiesEvents(t *testing.T) {
	lg := obs.NewLogger(nil, nil, obs.LevelDebug, 0)
	sink := obs.ProbeSink(lg)

	sink(probe.ProbeEvent{
		Proto: "icmp", Dst: addr(t, "10.0.5.2"), TTL: 3,
		Outcome: "ttl-exceeded", From: addr(t, "10.0.2.1"), ReplyTTL: 61,
	})
	sink(probe.ProbeEvent{Proto: "udp", Dst: addr(t, "10.0.5.3"), TTL: 4, Err: probe.ErrTimeout})
	sink(probe.ProbeEvent{Proto: "tcp", Dst: addr(t, "10.0.5.4"), TTL: 5, Err: probe.ErrDecode})

	all := lg.Tail(10, obs.LevelDebug)
	if len(all) != 3 {
		t.Fatalf("sink produced %d records, want 3: %v", len(all), all)
	}
	if !strings.Contains(all[0], `"outcome":"ttl-exceeded"`) || !strings.Contains(all[0], `"from":"10.0.2.1"`) {
		t.Errorf("clean exchange record wrong: %s", all[0])
	}
	if !strings.Contains(all[1], `"outcome":"timeout"`) || !strings.Contains(all[1], `"level":"debug"`) {
		t.Errorf("timeout must be a debug-level outcome: %s", all[1])
	}
	if !strings.Contains(all[2], `"level":"warn"`) || !strings.Contains(all[2], `"err":"decode"`) {
		t.Errorf("decode fault must log at warn: %s", all[2])
	}
}

// The sink hook replaces LoggingTransport's rendered lines entirely.
func TestLoggingTransportSink(t *testing.T) {
	var events []probe.ProbeEvent
	var out strings.Builder
	tr := probe.LoggingTransport{
		Inner: silentTransport{},
		W:     &out,
		Sink:  func(ev probe.ProbeEvent) { events = append(events, ev) },
	}
	if _, err := tr.Exchange([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("sink saw %d events, want 1", len(events))
	}
	if out.Len() != 0 {
		t.Errorf("sink set but transcript still written: %q", out.String())
	}
}

type silentTransport struct{}

func (silentTransport) Exchange([]byte) ([]byte, error) { return nil, nil }
