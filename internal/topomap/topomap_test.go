package topomap

import (
	"strings"
	"testing"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

func addr(s string) ipv4.Addr  { return ipv4.MustParseAddr(s) }
func pfx(s string) ipv4.Prefix { return ipv4.MustParsePrefix(s) }

func traceInto(t *testing.T, m *Map, topol *netsim.Topology, vantage, dst string) *core.Result {
	t.Helper()
	n := netsim.New(topol, netsim.Config{})
	port, err := n.PortFor(vantage)
	if err != nil {
		t.Fatal(err)
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	res, err := core.Trace(pr, addr(dst), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.AddSession(res)
	return res
}

func TestMapFromFigure3(t *testing.T) {
	m := New()
	traceInto(t, m, topo.Figure3(), "vantage", "10.0.5.2")
	if got := len(m.Subnets()); got != 4 {
		t.Fatalf("subnets = %d, want 4:\n%v", got, m)
	}
	if m.AddrCount() < 10 {
		t.Fatalf("addresses = %d, want >= 10", m.AddrCount())
	}
	e := m.SubnetOf(addr("10.0.2.2"))
	if e == nil || e.Prefix != pfx("10.0.2.0/29") {
		t.Fatalf("SubnetOf(10.0.2.2) = %+v", e)
	}
	if !e.OnPath {
		t.Error("multi-access subnet should be on-path")
	}
}

func TestSameLAN(t *testing.T) {
	m := New()
	traceInto(t, m, topo.Figure3(), "vantage", "10.0.5.2")
	if !m.SameLAN(addr("10.0.2.2"), addr("10.0.2.4")) {
		t.Error("members of S must share a LAN")
	}
	if m.SameLAN(addr("10.0.2.2"), addr("10.0.1.0")) {
		t.Error("addresses on different subnets reported as same LAN")
	}
	if m.SameLAN(addr("10.0.2.2"), addr("172.16.0.1")) {
		t.Error("unknown address reported on a LAN")
	}
}

func TestLinkDisjointFigure2(t *testing.T) {
	// The paper's Figure 2 question answered through the map: paths A→D and
	// B→C share the R2/R4/R5/R8 LAN even though their traceroute address
	// lists are disjoint.
	topol := topo.Figure2()
	m := New()

	var resAD, resBC *core.Result
	// Steer A→D onto the R1 branch (dual-homed host).
	n := netsim.New(topol, netsim.Config{})
	port, err := n.PortFor("A")
	if err != nil {
		t.Fatal(err)
	}
	for flow := uint16(1); flow <= 64; flow++ {
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true, FlowID: flow})
		res, err := core.Trace(pr, addr("10.2.3.1"), core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Hops) > 0 && res.Hops[0].Addr == addr("10.2.0.2") {
			resAD = res
			break
		}
	}
	if resAD == nil {
		t.Fatal("no flow routed A->D via R1")
	}
	m.AddSession(resAD)
	resBC = traceInto(t, m, topol, "B", "10.2.2.1")

	hopAddrs := func(res *core.Result) []ipv4.Addr {
		var out []ipv4.Addr
		for _, h := range res.Hops {
			if !h.Anonymous() {
				out = append(out, h.Addr)
			}
		}
		return out
	}
	pathAD, pathBC := hopAddrs(resAD), hopAddrs(resBC)

	// Address-wise the paths are disjoint...
	inA := map[ipv4.Addr]bool{}
	for _, a := range pathAD {
		inA[a] = true
	}
	for _, b := range pathBC {
		if inA[b] {
			t.Fatalf("fixture broke: paths share address %v", b)
		}
	}
	// ...but the map knows they share the multi-access LAN.
	disjoint, shared := m.LinkDisjoint(pathAD, pathBC)
	if disjoint {
		t.Fatalf("paths reported link-disjoint; map:\n%v", m)
	}
	found := false
	for _, e := range shared {
		if e.Prefix == pfx("10.2.4.0/29") {
			found = true
		}
	}
	if !found {
		t.Fatalf("shared LAN 10.2.4.0/29 not identified: %v", shared)
	}
}

func TestMergeAcrossSessions(t *testing.T) {
	// Two traces over the same network must deduplicate shared subnets and
	// count observations.
	topol := topo.Figure3()
	m := New()
	n := netsim.New(topol, netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	for _, dst := range []string{"10.0.5.2", "10.0.4.1"} {
		// Separate sessions: no SkipKnown reuse between them.
		res, err := core.Trace(pr, addr(dst), core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		m.AddSession(res)
	}
	e := m.SubnetOf(addr("10.0.1.0"))
	if e == nil {
		t.Fatal("R1-R2 link missing")
	}
	if e.Observations != 2 {
		t.Fatalf("observations = %d, want 2", e.Observations)
	}
	// The union of both traces covers the far-fringe link too.
	if m.SubnetOf(addr("10.0.4.1")) == nil {
		t.Fatalf("far link not in map:\n%v", m)
	}
}

func TestOverlappingObservationsReconciled(t *testing.T) {
	m := New()
	// A first campaign underestimates the subnet (/30), a later one sees
	// the full /29: the map keeps one entry with the /29 prefix and the
	// member union.
	m.addSubnet(&core.Subnet{
		Prefix: pfx("10.0.0.0/30"),
		Addrs:  []ipv4.Addr{addr("10.0.0.1"), addr("10.0.0.2")},
	})
	m.addSubnet(&core.Subnet{
		Prefix: pfx("10.0.0.0/29"),
		Addrs:  []ipv4.Addr{addr("10.0.0.2"), addr("10.0.0.5")},
	})
	entries := m.Subnets()
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1 (reconciled)", len(entries))
	}
	e := entries[0]
	if e.Prefix != pfx("10.0.0.0/29") {
		t.Fatalf("prefix = %v, want the larger /29", e.Prefix)
	}
	if len(e.Addrs) != 3 || e.Observations != 2 {
		t.Fatalf("entry = %+v", e)
	}
	// All three members resolve to the same entry.
	if !m.SameLAN(addr("10.0.0.1"), addr("10.0.0.5")) {
		t.Fatal("union membership lost")
	}
}

func TestAdjacentSubnets(t *testing.T) {
	m := New()
	traceInto(t, m, topo.Figure3(), "vantage", "10.0.5.2")
	adj := m.AdjacentSubnets()
	if len(adj) < 3 {
		t.Fatalf("adjacencies = %d, want >= 3", len(adj))
	}
	// The access /30 and the R1-R2 /31 are consecutive on the path.
	found := false
	for _, pair := range adj {
		if pair[0].Prefix == pfx("10.0.0.0/30") && pair[1].Prefix == pfx("10.0.1.0/31") {
			found = true
		}
	}
	if !found {
		t.Fatalf("access->backbone adjacency missing: %v", adj)
	}
}

func TestStringRendering(t *testing.T) {
	m := New()
	traceInto(t, m, topo.Figure3(), "vantage", "10.0.5.2")
	s := m.String()
	for _, want := range []string{"10.0.2.0/29", "lan", "p2p", "4 subnets"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering lacks %q:\n%s", want, s)
		}
	}
}

func TestAnonymousHopBreaksAdjacency(t *testing.T) {
	topol := topo.Figure3()
	for _, r := range topol.Routers {
		if r.Name == "R2" {
			r.IndirectPolicy = netsim.PolicyNil
		}
	}
	m := New()
	n := netsim.New(topol, netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true, NoRetry: true})
	res, err := core.Trace(pr, addr("10.0.5.2"), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.AddSession(res)
	// No adjacency may bridge the anonymous hop 2.
	for _, pair := range m.AdjacentSubnets() {
		if pair[0].Prefix.Contains(addr("10.0.0.2")) && pair[1].Prefix.Contains(addr("10.0.2.3")) {
			t.Fatalf("adjacency bridged an anonymous hop: %v-%v", pair[0].Prefix, pair[1].Prefix)
		}
	}
}

func TestAnonymousRouterResolution(t *testing.T) {
	topol := topo.Figure3()
	for _, r := range topol.Routers {
		if r.Name == "R2" {
			r.IndirectPolicy = netsim.PolicyNil
		}
	}
	m := New()
	n := netsim.New(topol, netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true, NoRetry: true})
	// Two traces through the same anonymous router must merge into one
	// placeholder per neighbour pair.
	for _, dst := range []string{"10.0.5.2", "10.0.5.2"} {
		res, err := core.Trace(pr, addr(dst), core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		m.AddSession(res)
	}
	anons := m.AnonymousRouters()
	if len(anons) != 1 {
		t.Fatalf("anonymous routers = %+v, want exactly one placeholder", anons)
	}
	a := anons[0]
	if a.Prev != addr("10.0.0.2") || a.Observations != 2 {
		t.Fatalf("placeholder = %+v", a)
	}
}

func TestNoAnonymousRoutersOnCleanPath(t *testing.T) {
	m := New()
	traceInto(t, m, topo.Figure3(), "vantage", "10.0.5.2")
	if got := m.AnonymousRouters(); len(got) != 0 {
		t.Fatalf("placeholders on a clean path: %+v", got)
	}
}

// sub builds a synthetic observation for merge tests.
func sub(prefix string, addrs ...string) *core.Subnet {
	s := &core.Subnet{Prefix: pfx(prefix)}
	for _, a := range addrs {
		s.Addrs = append(s.Addrs, addr(a))
	}
	return s
}

// TestMergeOverlappingTracesNoDuplicates merges two traces that observed the
// same subnet: the map must hold one row for it, with the membership union
// counted once (the duplicate-row regression this guards against came from
// merging only the first overlapping entry found in random map order).
func TestMergeOverlappingTracesNoDuplicates(t *testing.T) {
	m := New()
	first := traceInto(t, m, topo.Figure3(), "vantage", "10.0.5.2")
	second := traceInto(t, m, topo.Figure3(), "vantage", "10.0.5.2")
	if len(first.Subnets) != len(second.Subnets) {
		t.Fatalf("traces disagree: %d vs %d subnets", len(first.Subnets), len(second.Subnets))
	}

	entries := m.Subnets()
	if got := len(entries); got != 4 {
		t.Fatalf("merged map has %d rows, want 4 (no duplicates):\n%v", got, m)
	}
	seen := map[ipv4.Prefix]bool{}
	for _, e := range entries {
		if seen[e.Prefix] {
			t.Fatalf("duplicate row for %v:\n%v", e.Prefix, m)
		}
		seen[e.Prefix] = true
		if e.Observations != 2 {
			t.Errorf("%v observed %d times, want 2", e.Prefix, e.Observations)
		}
		addrSeen := map[ipv4.Addr]bool{}
		for _, a := range e.Addrs {
			if addrSeen[a] {
				t.Errorf("%v double-counts member %v", e.Prefix, a)
			}
			addrSeen[a] = true
		}
		if len(e.Conflicts) != 0 {
			t.Errorf("%v reports conflicts %v for agreeing observations", e.Prefix, e.Conflicts)
		}
	}

	// Address accounting must match a single trace: re-observation adds
	// nothing new.
	single := New()
	traceInto(t, single, topo.Figure3(), "vantage", "10.0.5.2")
	if m.AddrCount() != single.AddrCount() {
		t.Errorf("merged map counts %d addresses, single trace %d", m.AddrCount(), single.AddrCount())
	}
}

// TestMergeLargerPrefixAbsorbsAll checks a large observation absorbs EVERY
// overlapping entry, not just the first found: two /31s under one /29 must
// collapse to a single row keyed by the /29, with a conflict note per
// disagreeing observation.
func TestMergeLargerPrefixAbsorbsAll(t *testing.T) {
	m := New()
	m.AddSubnets([]*core.Subnet{
		sub("10.0.3.0/31", "10.0.3.0", "10.0.3.1"),
		sub("10.0.3.4/31", "10.0.3.4", "10.0.3.5"),
		sub("10.0.3.0/29", "10.0.3.2"),
	})
	entries := m.Subnets()
	if len(entries) != 1 {
		t.Fatalf("map has %d rows, want 1:\n%v", len(entries), m)
	}
	e := entries[0]
	if e.Prefix != pfx("10.0.3.0/29") {
		t.Fatalf("survivor keyed %v, want 10.0.3.0/29", e.Prefix)
	}
	if e.Observations != 3 {
		t.Errorf("observations = %d, want 3", e.Observations)
	}
	want := []string{"10.0.3.0", "10.0.3.1", "10.0.3.2", "10.0.3.4", "10.0.3.5"}
	if len(e.Addrs) != len(want) {
		t.Fatalf("members = %v, want %v", e.Addrs, want)
	}
	for i, a := range want {
		if e.Addrs[i] != addr(a) {
			t.Fatalf("members = %v, want %v", e.Addrs, want)
		}
	}
	if len(e.Conflicts) != 2 {
		t.Fatalf("conflicts = %v, want 2 prefix-length disagreements", e.Conflicts)
	}
	for _, a := range want {
		if got := m.SubnetOf(addr(a)); got != e {
			t.Errorf("SubnetOf(%s) = %v, want the merged entry", a, got)
		}
	}
	if !strings.Contains(m.String(), "conflict: ") {
		t.Errorf("rendered map omits conflict notes:\n%v", m)
	}
}

// TestMergeConflictNoteStableOrder checks the conflict note is identical no
// matter which observation arrives first.
func TestMergeConflictNoteStableOrder(t *testing.T) {
	a := New()
	a.AddSubnets([]*core.Subnet{sub("10.0.3.0/30", "10.0.3.1"), sub("10.0.3.0/29", "10.0.3.2")})
	b := New()
	b.AddSubnets([]*core.Subnet{sub("10.0.3.0/29", "10.0.3.2"), sub("10.0.3.0/30", "10.0.3.1")})
	ea, eb := a.Subnets()[0], b.Subnets()[0]
	if len(ea.Conflicts) != 1 || len(eb.Conflicts) != 1 || ea.Conflicts[0] != eb.Conflicts[0] {
		t.Errorf("conflict notes differ by arrival order: %v vs %v", ea.Conflicts, eb.Conflicts)
	}
}
