// Package topomap assembles tracenet session results into a subnet-level
// topology map — the artifact the paper positions tracenet as the collector
// for (§1: subnet-level maps "enrich the router level maps with subnet level
// connectivity info"). The map answers the questions that motivated
// Figure 2: which addresses share a LAN, and whether two paths are really
// link-disjoint.
//
// Sessions from multiple vantage points or campaigns can be merged into one
// map; overlapping observations of the same subnet are reconciled by keeping
// the larger prefix's membership union.
package topomap

import (
	"fmt"
	"sort"
	"strings"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
)

// Map is an accumulating subnet-level topology map.
// The zero value is not usable; call New.
type Map struct {
	// subnets by canonical prefix.
	subnets map[ipv4.Prefix]*Entry
	// addrToPrefix resolves a member address to its subnet.
	addrToPrefix map[ipv4.Addr]ipv4.Prefix
	// hops records every trace adjacency observed: an (earlier hop, later
	// hop) pair of responding addresses on some path.
	hops map[[2]ipv4.Addr]int
	// anon records anonymous hops by their responding neighbours, the
	// standard anonymous-router resolution heuristic ([8]: two '*' nodes
	// with the same known neighbours are one router).
	anon map[[2]ipv4.Addr]int
}

// Entry is one subnet of the map with its accumulated observations.
type Entry struct {
	Prefix ipv4.Prefix
	// Addrs is the union of member addresses over all observations.
	Addrs []ipv4.Addr
	// Observations counts how many sessions contributed.
	Observations int
	// OnPath reports whether any observation found the subnet on its trace
	// path.
	OnPath bool
	// Conflicts records prefix-length disagreements among the observations
	// merged into this entry (e.g. "observed as 10.0.3.0/31 and 10.0.3.0/29"),
	// sorted and deduplicated. A conflicted entry keeps the largest observed
	// prefix; the notes preserve what the losing observations claimed.
	Conflicts []string
	// Confidence is the minimum confidence over the merged observations
	// (core.Subnet.Confidence), capped at conflictedConfidence once any
	// prefix-length conflict is recorded. Observations that do not track
	// confidence (zero value) count as 1. Minimum, OR, and cap are all
	// order-independent, so merged maps stay schedule-deterministic.
	Confidence float64
	// Degraded reports whether any merged observation was degraded, or the
	// observations disagreed about the subnet's size — the conflict-aware
	// demotion of DESIGN.md §11: an adversarially-tainted entry is reported
	// degraded rather than asserted.
	Degraded bool
}

// conflictedConfidence caps the confidence of an entry whose observations
// disagree about the subnet's prefix length: at most one of them can be
// right, so the entry cannot be asserted at more than coin-flip confidence.
const conflictedConfidence = 0.5

// addConflict records a prefix-length disagreement between two observations
// of the same address space, keeping the note list sorted and deduplicated.
func (e *Entry) addConflict(a, b ipv4.Prefix) {
	if a == b {
		return
	}
	e.Degraded = true
	if e.Confidence > conflictedConfidence {
		e.Confidence = conflictedConfidence
	}
	// Canonical operand order keeps the note stable regardless of which
	// observation arrived first.
	if b.Base() < a.Base() || (b.Base() == a.Base() && b.Bits() < a.Bits()) {
		a, b = b, a
	}
	e.addNote(fmt.Sprintf("observed as %v and %v", a, b))
}

// addNote appends a conflict note, keeping the list sorted and deduplicated.
func (e *Entry) addNote(note string) {
	for _, have := range e.Conflicts {
		if have == note {
			return
		}
	}
	e.Conflicts = append(e.Conflicts, note)
	sort.Strings(e.Conflicts)
}

// New returns an empty map.
func New() *Map {
	return &Map{
		subnets:      make(map[ipv4.Prefix]*Entry),
		addrToPrefix: make(map[ipv4.Addr]ipv4.Prefix),
		hops:         make(map[[2]ipv4.Addr]int),
		anon:         make(map[[2]ipv4.Addr]int),
	}
}

// AddSubnets merges collected subnets into the map without trace-path
// context (no adjacency or anonymous-router bookkeeping) — useful when
// merging observations from several vantage points or campaigns.
func (m *Map) AddSubnets(subnets []*core.Subnet) {
	for _, s := range subnets {
		if s.Prefix.Bits() >= 32 {
			continue
		}
		m.addSubnet(s)
	}
}

// AddSession merges one tracenet result into the map.
func (m *Map) AddSession(res *core.Result) {
	for _, s := range res.Subnets {
		if s.Prefix.Bits() >= 32 {
			continue
		}
		m.addSubnet(s)
	}
	var prev ipv4.Addr
	pendingAnon := false
	var anonPrev ipv4.Addr
	for _, h := range res.Hops {
		if h.Anonymous() {
			if !prev.IsZero() {
				pendingAnon, anonPrev = true, prev
			}
			prev = ipv4.Zero
			continue
		}
		if pendingAnon {
			// One anonymous hop between two responders: record the
			// placeholder router by its neighbour pair.
			m.anon[[2]ipv4.Addr{anonPrev, h.Addr}]++
			pendingAnon = false
		}
		if !prev.IsZero() {
			m.hops[[2]ipv4.Addr{prev, h.Addr}]++
		}
		prev = h.Addr
	}
}

func (m *Map) addSubnet(s *core.Subnet) {
	// Reconcile overlapping prefixes: the same physical subnet may have been
	// observed at different sizes from different campaigns; one entry keyed
	// by the largest (shortest) prefix holds the union. A large observation
	// can cover several previously separate entries, so every overlapping
	// entry is absorbed — merging just the first one found would leave
	// duplicate rows for the same address space (and map iteration order
	// would make the survivor random).
	var overlapping []*Entry
	for _, cand := range m.subnets {
		if cand.Prefix.Overlaps(s.Prefix) {
			overlapping = append(overlapping, cand)
		}
	}
	sort.Slice(overlapping, func(i, j int) bool {
		if overlapping[i].Prefix.Base() != overlapping[j].Prefix.Base() {
			return overlapping[i].Prefix.Base() < overlapping[j].Prefix.Base()
		}
		return overlapping[i].Prefix.Bits() < overlapping[j].Prefix.Bits()
	})

	if len(overlapping) == 0 {
		e := &Entry{Prefix: s.Prefix, Confidence: 1}
		m.subnets[e.Prefix] = e
		m.mergeObservation(e, s)
		return
	}

	e := overlapping[0]
	for _, o := range overlapping[1:] {
		// Absorb the later entry: its members, observation count, and any
		// conflict notes it already carried move onto the survivor, and the
		// size disagreement between the two is itself recorded.
		delete(m.subnets, o.Prefix)
		e.addConflict(e.Prefix, o.Prefix)
		for _, c := range o.Conflicts {
			e.addNote(c)
		}
		e.Addrs = append(e.Addrs, o.Addrs...)
		e.Observations += o.Observations
		e.OnPath = e.OnPath || o.OnPath
		e.Degraded = e.Degraded || o.Degraded
		if o.Confidence < e.Confidence {
			e.Confidence = o.Confidence
		}
	}
	if s.Prefix != e.Prefix {
		e.addConflict(e.Prefix, s.Prefix)
	}
	if s.Prefix.Bits() < e.Prefix.Bits() {
		// The new observation is the largest: re-key the survivor.
		delete(m.subnets, e.Prefix)
		e.Prefix = s.Prefix
	}
	m.subnets[e.Prefix] = e
	m.mergeObservation(e, s)
}

// mergeObservation unions one observation's members into e, re-points the
// address index at e's (possibly re-keyed) prefix, and bumps its accounting.
func (m *Map) mergeObservation(e *Entry, s *core.Subnet) {
	have := map[ipv4.Addr]bool{}
	deduped := e.Addrs[:0]
	for _, a := range e.Addrs {
		if !have[a] {
			deduped = append(deduped, a)
			have[a] = true
		}
	}
	e.Addrs = deduped
	for _, a := range s.Addrs {
		if !have[a] {
			e.Addrs = append(e.Addrs, a)
			have[a] = true
		}
	}
	sort.Slice(e.Addrs, func(i, j int) bool { return e.Addrs[i] < e.Addrs[j] })
	for _, a := range e.Addrs {
		m.addrToPrefix[a] = e.Prefix
	}
	e.Observations++
	e.OnPath = e.OnPath || s.OnPath
	e.Degraded = e.Degraded || s.Degraded
	// Subnets built without confidence tracking (handcrafted literals, older
	// checkpoints) carry the zero value; they count as fully confident.
	if conf := s.Confidence; conf > 0 && conf < e.Confidence {
		e.Confidence = conf
	}
}

// Subnets returns the map's entries ordered by prefix base address.
func (m *Map) Subnets() []*Entry {
	out := make([]*Entry, 0, len(m.subnets))
	for _, e := range m.subnets {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Base() != out[j].Prefix.Base() {
			return out[i].Prefix.Base() < out[j].Prefix.Base()
		}
		return out[i].Prefix.Bits() < out[j].Prefix.Bits()
	})
	return out
}

// SubnetOf returns the map's subnet containing addr (as an observed member
// or by prefix), or nil.
func (m *Map) SubnetOf(addr ipv4.Addr) *Entry {
	if p, ok := m.addrToPrefix[addr]; ok {
		return m.subnets[p]
	}
	for p, e := range m.subnets {
		if p.Contains(addr) {
			return e
		}
	}
	return nil
}

// SameLAN reports whether two addresses were observed on the same subnet —
// the "being on the same LAN" relationship of the paper's abstract.
func (m *Map) SameLAN(a, b ipv4.Addr) bool {
	ea, eb := m.SubnetOf(a), m.SubnetOf(b)
	return ea != nil && ea == eb
}

// AddrCount returns the number of distinct member addresses in the map.
func (m *Map) AddrCount() int { return len(m.addrToPrefix) }

// LinkDisjoint reports whether two paths (given as their responding hop
// addresses) share no subnet: the overlay-network question of Figure 2.
// Paths that look disjoint address-wise may still share a LAN; the subnet
// map catches that. The second return value lists the shared subnets.
func (m *Map) LinkDisjoint(pathA, pathB []ipv4.Addr) (bool, []*Entry) {
	inA := map[*Entry]bool{}
	for _, a := range pathA {
		if e := m.SubnetOf(a); e != nil {
			inA[e] = true
		}
	}
	var shared []*Entry
	seen := map[*Entry]bool{}
	for _, b := range pathB {
		if e := m.SubnetOf(b); e != nil && inA[e] && !seen[e] {
			shared = append(shared, e)
			seen[e] = true
		}
	}
	return len(shared) == 0, shared
}

// AdjacentSubnets reports subnet pairs observed consecutively on some trace
// path: the subnet-level links of the map.
func (m *Map) AdjacentSubnets() [][2]*Entry {
	seen := map[[2]ipv4.Prefix]bool{}
	var out [][2]*Entry
	for pair := range m.hops {
		ea, eb := m.SubnetOf(pair[0]), m.SubnetOf(pair[1])
		if ea == nil || eb == nil || ea == eb {
			continue
		}
		key := [2]ipv4.Prefix{ea.Prefix, eb.Prefix}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, [2]*Entry{ea, eb})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0].Prefix.Base() != out[j][0].Prefix.Base() {
			return out[i][0].Prefix.Base() < out[j][0].Prefix.Base()
		}
		return out[i][1].Prefix.Base() < out[j][1].Prefix.Base()
	})
	return out
}

// AnonymousRouter is a placeholder for a router that never answered
// indirect probes, identified by its responding neighbours. Observations
// with the same neighbour pair are merged into one placeholder — the
// neighbour-matching heuristic of anonymous router resolution [8].
type AnonymousRouter struct {
	Prev, Next   ipv4.Addr
	Observations int
}

// AnonymousRouters returns the resolved placeholders, ordered by neighbours.
func (m *Map) AnonymousRouters() []AnonymousRouter {
	out := make([]AnonymousRouter, 0, len(m.anon))
	for pair, n := range m.anon {
		out = append(out, AnonymousRouter{Prev: pair[0], Next: pair[1], Observations: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prev != out[j].Prev {
			return out[i].Prev < out[j].Prev
		}
		return out[i].Next < out[j].Next
	})
	return out
}

// String renders the map, one subnet per line.
func (m *Map) String() string {
	var b strings.Builder
	entries := m.Subnets()
	fmt.Fprintf(&b, "subnet map: %d subnets, %d addresses\n", len(entries), m.AddrCount())
	for _, e := range entries {
		kind := "lan"
		if e.Prefix.Bits() >= 30 {
			kind = "p2p"
		}
		fmt.Fprintf(&b, "  %-18v %s x%d %v", e.Prefix, kind, e.Observations, e.Addrs)
		if e.Degraded {
			fmt.Fprintf(&b, " [degraded conf=%.2f]", e.Confidence)
		}
		b.WriteByte('\n')
		for _, c := range e.Conflicts {
			fmt.Fprintf(&b, "    conflict: %s\n", c)
		}
	}
	return b.String()
}
