// Scorer-driven pinning tests for overlap reconciliation (addSubnet). An
// audit of the absorb-all-overlapping merge found it correct — these tests
// pin the properties the audit checked, using the ground-truth scorer as the
// external judge, so a future regression shows up as a verdict change rather
// than a silent duplicate row. This file is an external test package because
// groundtruth imports topomap.
package topomap_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"tracenet/internal/core"
	"tracenet/internal/groundtruth"
	"tracenet/internal/ipv4"
	"tracenet/internal/topomap"
)

func mustAddr(s string) ipv4.Addr  { return ipv4.MustParseAddr(s) }
func mustPfx(s string) ipv4.Prefix { return ipv4.MustParsePrefix(s) }
func mustAddrs(ss ...string) []ipv4.Addr {
	out := make([]ipv4.Addr, len(ss))
	for i, s := range ss {
		out[i] = mustAddr(s)
	}
	return out
}

// overlapObservations is the reconciliation stress case: the same physical
// /24 observed at four different sizes across campaigns, plus one unrelated
// subnet that must never be absorbed.
func overlapObservations() []*core.Subnet {
	return []*core.Subnet{
		{Prefix: mustPfx("10.0.2.0/31"), Addrs: mustAddrs("10.0.2.1"), Pivot: mustAddr("10.0.2.1")},
		{Prefix: mustPfx("10.0.2.4/30"), Addrs: mustAddrs("10.0.2.5", "10.0.2.6"), Pivot: mustAddr("10.0.2.5")},
		{Prefix: mustPfx("10.0.2.0/24"), Addrs: mustAddrs("10.0.2.1", "10.0.2.9"), Pivot: mustAddr("10.0.2.9")},
		{Prefix: mustPfx("10.0.2.0/29"), Addrs: mustAddrs("10.0.2.2", "10.0.2.3"), Pivot: mustAddr("10.0.2.2")},
		{Prefix: mustPfx("10.0.7.0/30"), Addrs: mustAddrs("10.0.7.1", "10.0.7.2"), Pivot: mustAddr("10.0.7.1")},
	}
}

// overlapTruth is the ground truth the observations sample: one /24 LAN and
// one /30 link.
func overlapTruth() *groundtruth.Truth {
	return groundtruth.FromSubnets([]groundtruth.TrueSubnet{
		{Prefix: mustPfx("10.0.2.0/24"),
			Addrs: mustAddrs("10.0.2.1", "10.0.2.2", "10.0.2.3", "10.0.2.5", "10.0.2.6", "10.0.2.9")},
		{Prefix: mustPfx("10.0.7.0/30"),
			Addrs: mustAddrs("10.0.7.1", "10.0.7.2"), PointToPoint: true},
	})
}

// permutations enumerates every ordering of n indices (Heap's algorithm,
// deterministic).
func permutations(n int) [][]int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			out = append(out, append([]int(nil), idx...))
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				idx[i], idx[k-1] = idx[k-1], idx[i]
			} else {
				idx[0], idx[k-1] = idx[k-1], idx[0]
			}
		}
	}
	rec(n)
	return out
}

func scoreText(t *testing.T, m *topomap.Map) string {
	t.Helper()
	score := overlapTruth().Score(groundtruth.FromTopomap(m))
	var buf bytes.Buffer
	if _, err := score.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// normalizeConflicts replaces the conflict-note lines of a map rendering
// with their count. The notes record which prefix PAIR disagreed at each
// merge, which is arrival-order history by design (campaigns always fold in
// input order, so their rendering stays byte-stable); the topology itself —
// entries, membership, counts, and how many disagreements were seen — must
// not depend on order.
func normalizeConflicts(rendering string) string {
	var out []string
	conflicts := 0
	for _, line := range strings.Split(rendering, "\n") {
		if strings.Contains(line, "conflict: observed as") {
			conflicts++
			continue
		}
		out = append(out, line)
	}
	return fmt.Sprintf("%s\n[%d conflict notes]\n", strings.Join(out, "\n"), conflicts)
}

// TestReconcileOrderIndependent: whatever order the overlapping observations
// arrive in, the merged topology is identical (same entries, membership, and
// conflict count) and the ground-truth scorer hands down identical verdicts.
// This is the property that makes campaign reports schedule-independent.
func TestReconcileOrderIndependent(t *testing.T) {
	obs := overlapObservations()
	var wantMap, wantScore string
	for i, perm := range permutations(len(obs)) {
		m := topomap.New()
		for _, j := range perm {
			m.AddSubnets([]*core.Subnet{obs[j]})
		}
		gotMap, gotScore := normalizeConflicts(m.String()), scoreText(t, m)
		if i == 0 {
			wantMap, wantScore = gotMap, gotScore
			continue
		}
		if gotMap != wantMap {
			t.Fatalf("permutation %v merges a different map:\n--- want\n%s--- got\n%s", perm, wantMap, gotMap)
		}
		if gotScore != wantScore {
			t.Fatalf("permutation %v scores differently:\n--- want\n%s--- got\n%s", perm, wantScore, gotScore)
		}
	}
}

// TestReconcileNoDuplicateRows: after reconciliation no two entries overlap,
// membership is conserved (every observed address appears exactly once, in
// the entry whose prefix contains it), and the observation count is the
// number of AddSubnets calls — absorption moves accounting, never drops it.
func TestReconcileNoDuplicateRows(t *testing.T) {
	obs := overlapObservations()
	m := topomap.New()
	for _, s := range obs {
		m.AddSubnets([]*core.Subnet{s})
	}
	entries := m.Subnets()
	if len(entries) != 2 {
		t.Fatalf("reconciled to %d entries, want 2:\n%v", len(entries), m)
	}
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			if entries[i].Prefix.Overlaps(entries[j].Prefix) {
				t.Errorf("duplicate rows for one address space: %v and %v",
					entries[i].Prefix, entries[j].Prefix)
			}
		}
	}
	want := map[ipv4.Addr]bool{}
	for _, s := range obs {
		for _, a := range s.Addrs {
			want[a] = true
		}
	}
	if m.AddrCount() != len(want) {
		t.Errorf("address count %d, want %d (membership not conserved)", m.AddrCount(), len(want))
	}
	seen := map[ipv4.Addr]int{}
	totalObs := 0
	for _, e := range entries {
		totalObs += e.Observations
		for _, a := range e.Addrs {
			seen[a]++
			if !e.Prefix.Contains(a) {
				t.Errorf("entry %v holds stray member %v", e.Prefix, a)
			}
		}
	}
	for a, n := range seen {
		if n != 1 {
			t.Errorf("address %v appears in %d entries", a, n)
		}
		if !want[a] {
			t.Errorf("address %v was never observed", a)
		}
	}
	if totalObs != len(obs) {
		t.Errorf("observation count %d, want %d (absorption lost accounting)", totalObs, len(obs))
	}
}

// TestReconcileScorerVerdicts: the scorer's view of the reconciled map — one
// exact /24 (all six observed members attributed to it, the /31, /30 and /29
// observations folded in rather than surviving as subset rows) and one exact
// point-to-point /30. Subnet and address precision are 1: reconciliation
// invents nothing.
func TestReconcileScorerVerdicts(t *testing.T) {
	obs := overlapObservations()
	m := topomap.New()
	for _, s := range obs {
		m.AddSubnets([]*core.Subnet{s})
	}
	score := overlapTruth().Score(groundtruth.FromTopomap(m))
	if got := score.Count(groundtruth.VerdictExact); got != 2 {
		t.Fatalf("exact verdicts = %d, want 2:\n%s", got, scoreText(t, m))
	}
	if score.SubnetPrecision != 1 || score.AddrPrecision != 1 {
		t.Errorf("precision subnet=%v addr=%v, want 1/1 — reconciliation invented address space",
			score.SubnetPrecision, score.AddrPrecision)
	}
	if score.AddrRecall != 1 {
		t.Errorf("addr recall %v, want 1 — absorption dropped members", score.AddrRecall)
	}
	// The point-to-point truth must be matched by its own exact row, not
	// folded into the LAN's.
	p2p := mustPfx("10.0.7.0/30")
	found := false
	for _, row := range score.Rows {
		if row.Truth == p2p {
			found = true
			if row.Verdict != groundtruth.VerdictExact || row.Collected != p2p {
				t.Errorf("p2p truth row: verdict=%s collected=%v, want exact %v",
					row.Verdict, row.Collected, p2p)
			}
		}
	}
	if !found {
		t.Error("no row matched the point-to-point truth")
	}
}
