package telemetry

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// These tests exist to run under -race (scripts/check.sh runs the suite with
// -race -tags invariants): concurrent increments against one registry,
// snapshots taken while writers are active, and recorder rings under
// contention. They assert totals too, so they catch lost updates even
// without the race detector.

func TestRegistryConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the workers resolve handles themselves, half go through
			// registration every time: both paths must be safe.
			c := r.Counter("tracenet_race_total")
			h := r.Histogram("tracenet_race_hist", []uint64{10, 100})
			g := r.Gauge("tracenet_race_gauge")
			for i := 0; i < perWorker; i++ {
				if w%2 == 0 {
					c.Inc()
					h.Observe(uint64(i % 150))
					g.Add(1)
				} else {
					r.Counter("tracenet_race_total").Inc()
					r.Histogram("tracenet_race_hist", []uint64{10, 100}).Observe(uint64(i % 150))
					r.Gauge("tracenet_race_gauge").Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("tracenet_race_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d (lost updates)", got, workers*perWorker)
	}
	if got := r.Histogram("tracenet_race_hist", []uint64{10, 100}).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("tracenet_race_gauge").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
}

func TestRegistrySnapshotWhileWriting(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("tracenet_snap_total", "worker", fmt.Sprint(w))
			h := r.Histogram("tracenet_snap_hist", []uint64{4, 16})
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(uint64(i % 20))
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSON(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	const workers, perWorker = 8, 1000
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := f.Snapshot()
				if len(snap) > 64 {
					t.Errorf("snapshot overflows capacity: %d", len(snap))
					return
				}
				if _, err := f.WriteTo(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				f.Record(Event{Ticks: uint64(i), Kind: "probe", Msg: fmt.Sprintf("w%d-%d", w, i)})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if f.Total() != workers*perWorker {
		t.Errorf("total = %d, want %d", f.Total(), workers*perWorker)
	}
	if got := len(f.Snapshot()); got != 64 {
		t.Errorf("retained = %d, want 64", got)
	}
}

func TestTracerConcurrentEmission(t *testing.T) {
	tr := NewTracer(io.Discard)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Complete(uint64(i), uint64(i+1), "probe", "worker", fmt.Sprint(w))
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Events(); got != 8*500 {
		t.Errorf("events = %d, want %d", got, 8*500)
	}
}
