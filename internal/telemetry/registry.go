package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates the three instrument families of a registry.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and inert on a nil receiver, so instrumented code can hold
// nil handles when telemetry is disabled.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// SetMax raises the gauge to v unless the current value is already larger —
// a monotonic Set. Concurrent writers mirroring a monotonic source (like the
// simulator's virtual clock) can race a plain Set so the final value is a
// stale intermediate; SetMax guarantees the gauge converges to the maximum
// regardless of write interleaving.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram over uint64 observations.
// Buckets are inclusive upper bounds in ascending order; an implicit +Inf
// bucket catches everything beyond the last bound.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64
	count  atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on a nil handle).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// snapshot returns per-bucket counts (cumulative form is built at exposition).
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// series is one registered metric: a family name plus an optional label set,
// holding exactly one instrument.
type series struct {
	family string
	labels string // canonical rendered label set, "" when unlabelled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds a run's metrics. Registration (Counter/Gauge/Histogram) and
// instrument updates are safe for concurrent use; handles returned for the
// same (name, labels) are the same instrument, so hot paths should resolve
// their handles once and update through them.
type Registry struct {
	mu       sync.Mutex
	kinds    map[string]metricKind // family name -> kind
	byKey    map[string]*series
	ordered  []*series // registration order; sorted at exposition
	hbuckets map[string][]uint64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    make(map[string]metricKind),
		byKey:    make(map[string]*series),
		hbuckets: make(map[string][]uint64),
	}
}

// labelString canonicalizes alternating key/value pairs into a rendered
// Prometheus label set, sorting by key so the same labels in any order name
// the same series. It panics on an odd pair count: label sets are written at
// instrumentation sites, so a mismatch is a programming error.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// seriesLocked resolves (name, labels) to its series, creating it on first
// use. It panics when one family name is used with two different kinds —
// like a conflicting probe.Options, a call-site programming error.
// Called with r.mu held.
func (r *Registry) seriesLocked(name, ls string, kind metricKind) *series {
	if have, ok := r.kinds[name]; ok && have != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %v and %v", name, have, kind))
	}
	r.kinds[name] = kind
	key := name + ls
	if s, ok := r.byKey[key]; ok {
		return s
	}
	s := &series{family: name, labels: ls}
	r.byKey[key] = s
	r.ordered = append(r.ordered, s)
	return s
}

// Counter returns the counter for (name, labels), registering it on first
// use. Labels are alternating key/value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesLocked(name, ls, kindCounter)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for (name, labels), registering it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesLocked(name, ls, kindGauge)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram for (name, labels) with the given
// ascending inclusive upper bounds, registering it on first use. Every
// series of one family must use identical bounds; a mismatch panics.
func (r *Registry) Histogram(name string, buckets []uint64, labels ...string) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending: %v", name, buckets))
		}
	}
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesLocked(name, ls, kindHistogram)
	if have, ok := r.hbuckets[name]; ok {
		same := len(have) == len(buckets)
		for i := 0; same && i < len(have); i++ {
			same = have[i] == buckets[i]
		}
		if !same {
			panic(fmt.Sprintf("telemetry: histogram %q re-registered with different buckets", name))
		}
	} else {
		r.hbuckets[name] = append([]uint64(nil), buckets...)
	}
	if s.h == nil {
		s.h = &Histogram{bounds: append([]uint64(nil), buckets...)}
		s.h.counts = make([]atomic.Uint64, len(buckets)+1)
	}
	return s.h
}

// sortedSeries snapshots the series list ordered by family name then label
// set — the deterministic exposition order.
func (r *Registry) sortedSeries() []*series {
	r.mu.Lock()
	out := append([]*series(nil), r.ordered...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// kindOf returns the registered kind of a family.
func (r *Registry) kindOf(family string) metricKind {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.kinds[family]
}
