package telemetry

import (
	"strings"
	"testing"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	if got := f.Snapshot(); len(got) != 0 {
		t.Fatalf("fresh recorder holds %d events", len(got))
	}
	f.Record(Event{Ticks: 1, Kind: "probe", Msg: "a"})
	f.Record(Event{Ticks: 2, Kind: "probe", Msg: "b"})
	snap := f.Snapshot()
	if len(snap) != 2 || snap[0].Msg != "a" || snap[1].Msg != "b" {
		t.Fatalf("partial ring snapshot wrong: %v", snap)
	}
	for i, msg := range []string{"c", "d", "e"} {
		f.Record(Event{Ticks: uint64(3 + i), Kind: "probe", Msg: msg})
	}
	snap = f.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("full ring retains %d, want 3", len(snap))
	}
	for i, want := range []string{"c", "d", "e"} {
		if snap[i].Msg != want {
			t.Errorf("snapshot[%d] = %q, want %q (oldest-first order broken)", i, snap[i].Msg, want)
		}
	}
	if f.Total() != 5 {
		t.Errorf("total = %d, want 5", f.Total())
	}
}

func TestFlightRecorderWriteTo(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(Event{Ticks: 42, Kind: "fault", Msg: "link-flap drop subnet=10.0.2.0/29"})
	var b strings.Builder
	if _, err := f.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"1 of 1 events retained", "[    42]", "fault", "link-flap drop"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump lacks %q:\n%s", want, out)
		}
	}
}

func TestIncidentDumpsRecorder(t *testing.T) {
	clock := &ManualClock{}
	tel := New(clock)
	tel.Recorder = NewFlightRecorder(16)
	var dump strings.Builder
	tel.SetIncidentWriter(&dump)

	clock.Advance(9)
	tel.Record("probe", "icmp 10.0.0.1 ttl=3 -> timeout")
	tel.Incident("breaker-open zone=10.0.0.0/24")

	out := dump.String()
	for _, want := range []string{
		"dump #1 at tick 9: breaker-open zone=10.0.0.0/24",
		"2 of 2 events retained", // the probe event plus the incident itself
		"icmp 10.0.0.1 ttl=3 -> timeout",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("incident dump lacks %q:\n%s", want, out)
		}
	}
	if tel.Incidents() != 1 {
		t.Errorf("incidents = %d, want 1", tel.Incidents())
	}
	if got := tel.Counter("tracenet_incidents_total").Value(); got != 1 {
		t.Errorf("incident counter = %d, want 1", got)
	}
	// Without a writer, incidents still count but dump nowhere.
	tel.SetIncidentWriter(nil)
	tel.Incident("second")
	if tel.Incidents() != 2 {
		t.Errorf("incidents = %d, want 2", tel.Incidents())
	}
	if strings.Contains(dump.String(), "second") {
		t.Error("disarmed incident writer still received a dump")
	}
}

func TestDumpToSnapshot(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(Event{Ticks: 3, Kind: "probe", Msg: "icmp 10.0.0.1 ttl=1 -> ttl-exceeded"})
	var b strings.Builder
	if err := f.DumpTo(&b, 17, "sigterm-drain"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"== flight recorder snapshot at tick 17: sigterm-drain",
		"1 of 1 events retained",
		"ttl-exceeded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot lacks %q:\n%s", want, out)
		}
	}

	var nilDump strings.Builder
	var none *FlightRecorder
	if err := none.DumpTo(&nilDump, 0, "x"); err != nil {
		t.Fatal(err)
	}
	if got := nilDump.String(); got != "flight recorder: not armed\n" {
		t.Errorf("nil recorder snapshot = %q", got)
	}
}

// A mid-run snapshot is read-only: the incident dumps of a snapshotted run
// must stay byte-identical to those of a run that was never snapshotted.
// This is the contract that lets SIGTERM drains and /flightz polls coexist
// with deterministic artifacts.
func TestDumpToDoesNotPerturbIncidentDump(t *testing.T) {
	runOnce := func(snapshotMidRun bool) string {
		clock := &ManualClock{}
		tel := New(clock)
		tel.Recorder = NewFlightRecorder(4)
		var dump strings.Builder
		tel.SetIncidentWriter(&dump)

		for i := 0; i < 6; i++ { // overflow the ring so eviction state matters
			clock.Advance(1)
			tel.Record("probe", "probe event")
			if snapshotMidRun && i == 3 {
				var scratch strings.Builder
				if err := tel.DumpRecorder(&scratch, "mid-run poll"); err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(scratch.String(), "snapshot at tick 4: mid-run poll") {
					t.Fatalf("mid-run snapshot malformed:\n%s", scratch.String())
				}
			}
		}
		tel.Incident("breaker-open zone=10.0.0.0/24")
		return dump.String()
	}

	clean, snapshotted := runOnce(false), runOnce(true)
	if clean != snapshotted {
		t.Errorf("mid-run snapshot perturbed the incident dump:\nclean:\n%s\nsnapshotted:\n%s",
			clean, snapshotted)
	}
}

func TestDumpRecorderNilTelemetry(t *testing.T) {
	var tel *Telemetry
	var b strings.Builder
	if err := tel.DumpRecorder(&b, "x"); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "flight recorder: not armed\n" {
		t.Errorf("nil telemetry snapshot = %q", got)
	}
}

func TestFlightRecorderBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 0 did not panic")
		}
	}()
	NewFlightRecorder(0)
}
